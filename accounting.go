package minimaxdp

import (
	"math/big"
	"math/rand"

	"minimaxdp/internal/database"
	"minimaxdp/internal/multiquery"
	"minimaxdp/internal/privacy"
	"minimaxdp/internal/stats"
)

// This file exposes the privacy-accounting and multi-query layers: the
// α ↔ ε conversions, composition rules, accuracy closed forms, the
// multi-query answerer built on the paper's geometric mechanism, and
// the black-box empirical privacy audit.

// AlphaFromEpsilon converts ε-differential privacy (ε ≥ 0) to the
// paper's multiplicative parameter α = e^{−ε}.
func AlphaFromEpsilon(epsilon float64) (float64, error) {
	return privacy.AlphaFromEpsilon(epsilon)
}

// EpsilonFromAlpha converts the paper's α ∈ (0,1] to ε = −ln α.
func EpsilonFromAlpha(alpha float64) (float64, error) {
	return privacy.EpsilonFromAlpha(alpha)
}

// Compose returns the sequential-composition guarantee Π αᵢ of
// releasing several mechanisms' outputs on the same database.
func Compose(alphas []*big.Rat) (*big.Rat, error) { return privacy.Compose(alphas) }

// GroupPrivacy returns the protection level α^g an α-DP mechanism
// extends to groups of g individuals.
func GroupPrivacy(alpha *big.Rat, g int) (*big.Rat, error) { return privacy.Group(alpha, g) }

// GeometricTailBound returns Pr[|noise| ≥ t] = 2α^t/(1+α) for the
// geometric mechanism's unrestricted noise — the accuracy guarantee to
// quote alongside a privacy level.
func GeometricTailBound(alpha *big.Rat, t int) *big.Rat {
	return privacy.GeometricTailBound(alpha, t)
}

// GeometricExpectedAbsError returns E|noise| = 2α/((1−α)(1+α))
// exactly.
func GeometricExpectedAbsError(alpha *big.Rat) *big.Rat {
	return privacy.GeometricExpectedAbsNoise(alpha)
}

// GeometricNoiseVariance returns Var(noise) = 2α/(1−α)² exactly.
func GeometricNoiseVariance(alpha *big.Rat) *big.Rat {
	return privacy.GeometricNoiseVariance(alpha)
}

// Workload is an ordered set of count queries over one database.
type Workload = multiquery.Workload

// MultiAnswer is one released multi-query result.
type MultiAnswer = multiquery.Answer

// MultiAnswerer releases a workload of count queries under one overall
// privacy budget, each answer via the geometric mechanism (so every
// consumer can still post-process each answer optimally, per
// Theorem 1).
type MultiAnswerer = multiquery.Answerer

// NewSequentialAnswerer splits the overall budget alphaTotal across k
// arbitrary queries (sequential composition).
func NewSequentialAnswerer(n, k int, alphaTotal *big.Rat, denom int64) (*MultiAnswerer, error) {
	return multiquery.NewSequential(n, k, alphaTotal, denom)
}

// NewParallelAnswerer answers disjoint workloads (e.g. histograms) at
// the full budget (parallel composition).
func NewParallelAnswerer(n int, alpha *big.Rat) (*MultiAnswerer, error) {
	return multiquery.NewParallel(n, alpha)
}

// AgeHistogram builds a disjoint age-bucket workload.
func AgeHistogram(bounds []int) (Workload, error) { return multiquery.AgeHistogram(bounds) }

// Database is the in-memory row store used by the examples and the
// multi-query layer.
type Database = database.Database

// Row is one individual's record.
type Row = database.Row

// CountQuery counts the rows satisfying a predicate — the paper's
// query class.
type CountQuery = database.CountQuery

// NewDatabase builds a database from rows (copied).
func NewDatabase(rows []Row) *Database { return database.New(rows) }

// SyntheticSurvey generates a reproducible synthetic survey population
// for the flu running example.
func SyntheticSurvey(size int, city string, fluRate float64, rng *rand.Rand) *Database {
	return database.Synthetic(size, city, fluRate, rng)
}

// FluQuery is the paper's running example query: adults in the given
// city who contracted the flu.
func FluQuery(city string) CountQuery { return database.FluQuery(city) }

// AuditDP black-box-estimates a mechanism's privacy level from
// samples; with enough trials it converges to Mechanism.BestAlpha.
func AuditDP(m *Mechanism, trials int, rng *rand.Rand) (*stats.DPAuditResult, error) {
	return stats.AuditDP(m, trials, rng)
}
