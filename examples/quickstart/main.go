// Quickstart: publish one private count and consume it rationally.
//
// This example walks the paper's whole pipeline in ~60 lines:
//
//  1. a data curator perturbs a count-query result with the geometric
//     mechanism at privacy level α;
//  2. an information consumer with a loss function and side
//     information post-processes the released mechanism optimally;
//  3. we verify the headline theorem on this instance: the consumer's
//     loss equals that of the mechanism tailored specifically to it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"minimaxdp"
)

func main() {
	const n = 10        // database size: query result lies in {0..10}
	const trueCount = 6 // the secret true query result

	alpha := minimaxdp.MustRat("1/2") // privacy level (larger = more private)

	// 1. Curator side: build and sample the geometric mechanism.
	g, err := minimaxdp.Geometric(n, alpha)
	if err != nil {
		log.Fatal(err)
	}
	rng := minimaxdp.NewRand(7)
	released := g.Sample(trueCount, rng)
	fmt.Printf("true count: %d (secret)\n", trueCount)
	fmt.Printf("released:   %d (α = %s geometric mechanism)\n\n", released, alpha.RatString())

	// 2. Consumer side: absolute-error loss, knows the count is ≥ 3.
	c := &minimaxdp.Consumer{
		Loss: minimaxdp.AbsoluteLoss(),
		Side: minimaxdp.SideInterval(3, n),
		Name: "analyst",
	}
	inter, err := minimaxdp.OptimalInteraction(c, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumer's optimal post-processing achieves minimax loss %s ≈ %.4f\n",
		inter.Loss.RatString(), float64FromRat(inter.Loss))

	// 3. Theorem 1: that loss equals the consumer's personally
	// tailored optimal α-DP mechanism.
	tailored, err := minimaxdp.OptimalMechanism(c, n, alpha)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tailored optimal mechanism's loss:               %s\n", tailored.Loss.RatString())
	if inter.Loss.Cmp(tailored.Loss) == 0 {
		fmt.Println("\nuniversal optimality verified: deploying the geometric mechanism")
		fmt.Println("cost this consumer nothing relative to a custom-built mechanism.")
	} else {
		log.Fatal("universal optimality violated — this should be impossible")
	}
}

func float64FromRat(r interface{ Float64() (float64, bool) }) float64 {
	f, _ := r.Float64()
	return f
}
