// Census: a multi-query release built on the paper's mechanism.
//
// The paper's conclusion proposes the single-query geometric mechanism
// as a building block for multiple queries. This example releases a
// small "census" over one survey database:
//
//   - an age histogram (disjoint buckets) at the FULL privacy budget,
//     justified by parallel composition — one person's row change
//     perturbs at most one bucket;
//   - two overlapping analyst queries (flu count, adult count) under
//     the SAME overall budget via sequential splitting — each gets a
//     weaker per-query level so the product still meets the budget;
//   - a per-answer consumer post-processing step, because every answer
//     is an ordinary geometric mechanism and Theorem 1 applies to each.
//
// Run with:
//
//	go run ./examples/census
package main

import (
	"fmt"
	"log"

	"minimaxdp"
	"minimaxdp/internal/sample"
)

func main() {
	rng := sample.NewRand(7)
	const n = 50
	db := minimaxdp.SyntheticSurvey(n, "San Diego", 0.2, rng)

	budget := minimaxdp.MustRat("1/2")
	eps, err := minimaxdp.EpsilonFromAlpha(0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("census over %d residents; overall budget α = %s (ε = %.4f)\n\n", n, budget.RatString(), eps)

	// --- Part 1: disjoint histogram at full budget --------------------
	hist, err := minimaxdp.AgeHistogram([]int{18, 40, 65})
	if err != nil {
		log.Fatal(err)
	}
	par, err := minimaxdp.NewParallelAnswerer(n, budget)
	if err != nil {
		log.Fatal(err)
	}
	answers, err := par.Answer(db, hist, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("age histogram (parallel composition, full budget per bucket):")
	for i, q := range hist.Queries {
		fmt.Printf("  %-16s true %2d   released %2d\n", q.Name, q.Eval(db), answers[i].Released)
	}
	fmt.Printf("  per-bucket E|error| = %s ≈ %.3f\n\n",
		par.ExpectedAbsErrorPerQuery().RatString(), ratF(par.ExpectedAbsErrorPerQuery()))

	// --- Part 2: overlapping queries under a split budget -------------
	analyst := minimaxdp.Workload{Queries: []minimaxdp.CountQuery{
		minimaxdp.FluQuery("San Diego"),
		{Name: "adults", Pred: func(r minimaxdp.Row) bool { return r.Age >= 18 }},
	}}
	seq, err := minimaxdp.NewSequentialAnswerer(n, analyst.Size(), budget, 10000)
	if err != nil {
		log.Fatal(err)
	}
	seqAnswers, err := seq.Answer(db, analyst, rng)
	if err != nil {
		log.Fatal(err)
	}
	composed, err := seq.ComposedAlpha(analyst.Size())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analyst queries (sequential composition, split budget):")
	for i, q := range analyst.Queries {
		fmt.Printf("  %-34s true %2d   released %2d  (per-query α = %s)\n",
			q.Name, q.Eval(db), seqAnswers[i].Released, seqAnswers[i].Alpha.RatString())
	}
	fmt.Printf("  composed guarantee Πα = %.6f ≥ budget %.6f: %v\n",
		ratF(composed), ratF(budget), composed.Cmp(budget) >= 0)
	fmt.Printf("  per-query E|error| = %.3f (the accuracy price of overlap)\n\n",
		ratF(seq.ExpectedAbsErrorPerQuery()))

	// --- Part 3: per-answer consumer post-processing ------------------
	// A consumer of the flu answer knows at least 2 cases were already
	// confirmed. Theorem 1 holds per answer: post-processing the
	// per-query geometric mechanism is as good as a tailored one.
	c := &minimaxdp.Consumer{
		Loss: minimaxdp.AbsoluteLoss(),
		Side: minimaxdp.SideInterval(2, 12), // public health floor/ceiling
	}
	inter, err := minimaxdp.OptimalInteraction(c, seq.Mechanism())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("health consumer post-processes the flu answer: minimax loss %s ≈ %.3f\n",
		inter.Loss.RatString(), ratF(inter.Loss))
	fmt.Println("(Theorem 1 applies answer-by-answer: the geometric building block")
	fmt.Println("keeps every consumer optimal, whatever the composition regime.)")
}

func ratF(r interface{ Float64() (float64, bool) }) float64 {
	f, _ := r.Float64()
	return f
}
