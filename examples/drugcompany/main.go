// Drug company: why rational consumers beat naive clamping.
//
// The paper's Example 1: a drug company knows l people bought its flu
// drug, so the true count is at least l. The deployed geometric
// mechanism sometimes releases values below l — "evidently incorrect"
// to this consumer. What should it do with them?
//
// This example compares three strategies against the deployed
// mechanism, for the absolute-error loss:
//
//  1. face value   — believe the released number as-is;
//  2. naive clamp  — round results below l up to l (the "reasonable
//     rule" the paper sketches before §2.4.3);
//  3. optimal LP   — the Section 2.4.3 randomized post-processing.
//
// The optimal interaction is never worse than clamping and usually
// strictly better; it exactly matches the tailored optimum.
//
// Run with:
//
//	go run ./examples/drugcompany
package main

import (
	"fmt"
	"log"
	"math/big"

	"minimaxdp"
	"minimaxdp/internal/matrix"
	"minimaxdp/internal/rational"
)

func main() {
	const n = 12         // count is in {0..12}
	const lowerBound = 5 // drug sales: true count ≥ 5

	alpha := minimaxdp.MustRat("1/2")
	g, err := minimaxdp.Geometric(n, alpha)
	if err != nil {
		log.Fatal(err)
	}
	c := &minimaxdp.Consumer{
		Loss: minimaxdp.AbsoluteLoss(),
		Side: minimaxdp.SideInterval(lowerBound, n),
	}

	// Strategy 1: face value — no post-processing at all.
	faceValue, err := c.MinimaxLoss(g)
	if err != nil {
		log.Fatal(err)
	}

	// Strategy 2: naive clamp into [lowerBound, n].
	clampT := matrix.New(n+1, n+1)
	for r := 0; r <= n; r++ {
		target := r
		if target < lowerBound {
			target = lowerBound
		}
		clampT.Set(r, target, rational.One())
	}
	clamped, err := g.PostProcess(clampT)
	if err != nil {
		log.Fatal(err)
	}
	clampLoss, err := c.MinimaxLoss(clamped)
	if err != nil {
		log.Fatal(err)
	}

	// Strategy 3: the optimal randomized interaction (LP of §2.4.3).
	inter, err := minimaxdp.OptimalInteraction(c, g)
	if err != nil {
		log.Fatal(err)
	}

	// Reference: the tailored optimal mechanism (LP of §2.5).
	tailored, err := minimaxdp.OptimalMechanism(c, n, alpha)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("drug company, loss = |i−r|, side info: count ∈ {%d..%d}, α = %s\n\n",
		lowerBound, n, alpha.RatString())
	fmt.Printf("%-28s %-12s %s\n", "strategy", "exact loss", "≈")
	show("face value (no remap)", faceValue)
	show("naive clamp to [l, n]", clampLoss)
	show("optimal randomized remap", inter.Loss)
	show("tailored optimum (ref.)", tailored.Loss)

	fmt.Println()
	switch {
	case inter.Loss.Cmp(tailored.Loss) != 0:
		log.Fatal("optimal interaction missed the tailored optimum — impossible")
	case inter.Loss.Cmp(clampLoss) < 0:
		fmt.Println("the LP remap strictly beats naive clamping on this instance, and")
		fmt.Println("matches the tailored optimum exactly (Theorem 1).")
	default:
		fmt.Println("clamping happened to be optimal here; the LP remap never does worse.")
	}

	fmt.Println("\noptimal remap of the out-of-range outputs (rows 0..l):")
	for r := 0; r < lowerBound; r++ {
		fmt.Printf("  output %2d → ", r)
		for rp := 0; rp <= n; rp++ {
			v := inter.T.At(r, rp)
			if v.Sign() != 0 {
				fmt.Printf("%d with prob %s  ", rp, v.RatString())
			}
		}
		fmt.Println()
	}
}

func show(name string, v *big.Rat) {
	f, _ := v.Float64()
	fmt.Printf("%-28s %-12s %.5f\n", name, v.RatString(), f)
}
