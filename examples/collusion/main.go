// Collusion: releasing at multiple privacy levels, safely.
//
// Scenario from the paper's introduction: a flu report is produced in
// two versions — a high-utility internal version for government
// executives and a high-privacy public version for the Internet —
// plus, here, several intermediate tiers for partner agencies.
//
// The naive approach (independent noise per tier) lets subscribers to
// several tiers average their copies and cancel the noise. Algorithm 1
// instead derives each more-private result from the previous one, so
// the joint release reveals exactly as much as its least-private
// member (Lemma 4).
//
// This example measures the averaging attack against both schemes.
//
// Run with:
//
//	go run ./examples/collusion
package main

import (
	"fmt"
	"log"
	"math/big"

	"minimaxdp"
	"minimaxdp/internal/sample"
)

func main() {
	const n = 40
	const trueCount = 17
	const trials = 30000

	// Six close privacy tiers: plenty for averaging to bite.
	var alphas []*big.Rat
	for _, s := range []string{"50/100", "52/100", "54/100", "56/100", "58/100", "60/100"} {
		alphas = append(alphas, minimaxdp.MustRat(s))
	}
	plan, err := minimaxdp.NewReleasePlan(n, alphas)
	if err != nil {
		log.Fatal(err)
	}
	rng := sample.NewRand(99)

	naive, cascade, err := plan.CollusionExperiment(trueCount, trials, rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("true count %d, %d privacy tiers, %d Monte-Carlo trials\n\n", trueCount, len(alphas), trials)
	fmt.Printf("%-12s %-22s %s\n", "colluders", "naive mean |error|", "cascade mean |error|")
	for i := range naive {
		fmt.Printf("%-12d %-22.4f %.4f\n", naive[i].Colluders, naive[i].MeanAbsError, cascade[i].MeanAbsError)
	}

	fmt.Println("\nnaive: independent draws — colluders average the noise away")
	fmt.Println("       (error falls roughly like 1/√k, a privacy breach).")
	fmt.Println("cascade (Algorithm 1): every tier is a randomized function of the")
	fmt.Println("       least-private draw — pooling tiers gains the coalition nothing.")

	// Lemma 4's analytic statement for a concrete coalition.
	coalition := []int{3, 4, 5, 6}
	a, err := plan.CollusionAlpha(coalition)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncoalition %v is protected at α = %s (its weakest member's level).\n", coalition, a.RatString())

	// One concrete correlated release, for flavor.
	out, err := plan.Release(trueCount, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\none correlated release (tier 1 = most accurate):")
	for i, v := range out {
		ai, err := plan.Alpha(i + 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  tier %d (α=%s): %d\n", i+1, ai.RatString(), v)
	}
}
