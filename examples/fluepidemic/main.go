// Flu epidemic: the paper's running example end to end.
//
// Query Q: "How many adults from San Diego contracted the flu this
// October?" A synthetic survey database is generated, the geometric
// mechanism is deployed once, and two very different information
// consumers use the same published mechanism:
//
//   - the government tracks the spread of flu → absolute-error loss
//     (it cares about mean error);
//   - a drug company plans vaccine production → squared-error loss
//     (it fears large over-/under-production), and it has side
//     information: l people already bought its flu drug, so the true
//     count is at least l.
//
// Both consumers extract their personal optimum from the single
// deployed mechanism — the paper's non-interactive publishing story.
//
// Run with:
//
//	go run ./examples/fluepidemic
package main

import (
	"fmt"
	"log"

	"minimaxdp"
	"minimaxdp/internal/database"
	"minimaxdp/internal/sample"
)

func main() {
	rng := sample.NewRand(2024)

	// Synthetic survey population for San Diego. (Kept small so the
	// exact rational LPs below solve in seconds; the mechanisms
	// themselves scale to thousands of rows — see cmd/dpserver.)
	const population = 10
	db := database.Synthetic(population, "San Diego", 0.3, rng)
	q := database.FluQuery("San Diego")
	trueCount := q.Eval(db)
	fmt.Printf("survey: %d residents, true flu count = %d (secret)\n\n", population, trueCount)

	// The curator publishes via the geometric mechanism at α = 2/3.
	alpha := minimaxdp.MustRat("2/3")
	g, err := minimaxdp.Geometric(population, alpha)
	if err != nil {
		log.Fatal(err)
	}
	released := g.Sample(trueCount, rng)
	fmt.Printf("published (α = %s): %d\n\n", alpha.RatString(), released)

	// Consumer 1: the government.
	gov := &minimaxdp.Consumer{
		Loss: minimaxdp.AbsoluteLoss(),
		Name: "government (mean error)",
	}
	report(gov, g, population, alpha)

	// Consumer 2: the drug company. It sold 'sold' flu drugs, so the
	// count is at least that; population bounds it above.
	const sold = 2
	drug := &minimaxdp.Consumer{
		Loss: minimaxdp.SquaredLoss(),
		Side: minimaxdp.SideInterval(sold, population),
		Name: fmt.Sprintf("drug company (squared error, count ≥ %d)", sold),
	}
	report(drug, g, population, alpha)

	fmt.Println("one published mechanism served both consumers optimally —")
	fmt.Println("no consumer-specific deployment was needed (Theorem 1).")
}

func report(c *minimaxdp.Consumer, g *minimaxdp.Mechanism, n int, alpha interface{ RatString() string }) {
	inter, err := minimaxdp.OptimalInteraction(c, g)
	if err != nil {
		log.Fatal(err)
	}
	tailored, err := minimaxdp.OptimalMechanism(c, n, minimaxdp.MustRat(alpha.RatString()))
	if err != nil {
		log.Fatal(err)
	}
	status := "MATCHES tailored optimum"
	if inter.Loss.Cmp(tailored.Loss) != 0 {
		status = "MISMATCH (should not happen)"
	}
	fmt.Printf("%s:\n", c.Name)
	fmt.Printf("  optimal post-processed minimax loss: %s\n", inter.Loss.RatString())
	fmt.Printf("  tailored-mechanism optimum:          %s → %s\n\n", tailored.Loss.RatString(), status)
}
