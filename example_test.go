package minimaxdp_test

import (
	"fmt"
	"math/big"

	"minimaxdp"
)

// Build the paper's Table 1(b) mechanism and read off one entry.
func ExampleGeometric() {
	g, err := minimaxdp.Geometric(3, minimaxdp.MustRat("1/4"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("Pr[release 0 | true 0] =", g.Prob(0, 0).RatString())
	fmt.Println("is 1/4-DP:", g.IsDP(minimaxdp.MustRat("1/4")))
	// Output:
	// Pr[release 0 | true 0] = 4/5
	// is 1/4-DP: true
}

// Theorem 1 on the paper's Table 1 instance: the consumer's optimal
// post-processing of the deployed geometric mechanism achieves exactly
// the loss of the mechanism tailored to that consumer.
func ExampleOptimalInteraction() {
	alpha := minimaxdp.MustRat("1/4")
	g, _ := minimaxdp.Geometric(3, alpha)
	c := &minimaxdp.Consumer{Loss: minimaxdp.AbsoluteLoss()}

	inter, _ := minimaxdp.OptimalInteraction(c, g)
	tailored, _ := minimaxdp.OptimalMechanism(c, 3, alpha)

	fmt.Println("interaction loss:", inter.Loss.RatString())
	fmt.Println("tailored loss:   ", tailored.Loss.RatString())
	fmt.Println("equal:", inter.Loss.Cmp(tailored.Loss) == 0)
	// Output:
	// interaction loss: 168/415
	// tailored loss:    168/415
	// equal: true
}

// Theorem 2's characterization rejects the Appendix B mechanism.
func ExampleDerivable() {
	m, _ := minimaxdp.MechanismFromStrings([][]string{
		{"1/9", "2/9", "4/9", "2/9"},
		{"2/9", "1/9", "2/9", "4/9"},
		{"4/9", "2/9", "1/9", "2/9"},
		{"13/18", "1/9", "1/18", "1/9"},
	})
	alpha := minimaxdp.MustRat("1/2")
	fmt.Println("is 1/2-DP:", m.IsDP(alpha))
	fmt.Println("derivable from G:", minimaxdp.Derivable(m, alpha))
	// Output:
	// is 1/2-DP: true
	// derivable from G: false
}

// Lemma 3: privacy can be added by post-processing, exactly.
func ExampleTransition() {
	tr, _ := minimaxdp.Transition(3, minimaxdp.MustRat("1/4"), minimaxdp.MustRat("1/2"))
	fmt.Println("stochastic:", tr.IsStochastic())

	gLo, _ := minimaxdp.Geometric(3, minimaxdp.MustRat("1/4"))
	gHi, _ := minimaxdp.Geometric(3, minimaxdp.MustRat("1/2"))
	prod, _ := gLo.Matrix().Mul(tr)
	fmt.Println("G_1/4 · T == G_1/2:", prod.Equal(gHi.Matrix()))
	// Output:
	// stochastic: true
	// G_1/4 · T == G_1/2: true
}

// Privacy accounting in the paper's α parameterization.
func ExampleCompose() {
	composed, _ := minimaxdp.Compose([]*big.Rat{
		minimaxdp.MustRat("1/2"),
		minimaxdp.MustRat("2/3"),
	})
	fmt.Println("two releases compose to α =", composed.RatString())

	group, _ := minimaxdp.GroupPrivacy(minimaxdp.MustRat("1/2"), 3)
	fmt.Println("a family of 3 is protected at α =", group.RatString())
	// Output:
	// two releases compose to α = 1/3
	// a family of 3 is protected at α = 1/8
}

// Exact accuracy guarantees to publish alongside a privacy level.
func ExampleGeometricTailBound() {
	alpha := minimaxdp.MustRat("1/2")
	fmt.Println("E|error| =", minimaxdp.GeometricExpectedAbsError(alpha).RatString())
	fmt.Println("Pr[|error| >= 3] =", minimaxdp.GeometricTailBound(alpha, 3).RatString())
	// Output:
	// E|error| = 4/3
	// Pr[|error| >= 3] = 1/6
}
