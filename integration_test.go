package minimaxdp

import (
	"math"
	"math/big"
	"testing"

	"minimaxdp/internal/database"
	"minimaxdp/internal/sample"
)

// Integration: the full pipeline — synthetic database → count query →
// geometric release → consumer post-processing → empirical audit —
// crossing database, mechanism, consumer, sample and stats.
func TestIntegrationPipeline(t *testing.T) {
	rng := sample.NewRand(123)
	const n = 20
	db := SyntheticSurvey(n, "San Diego", 0.3, rng)
	q := FluQuery("San Diego")
	truth := q.Eval(db)
	if truth < 0 || truth > n {
		t.Fatalf("true count %d out of range", truth)
	}

	alpha := MustRat("1/2")
	g, err := Geometric(n, alpha)
	if err != nil {
		t.Fatal(err)
	}

	// Release a batch and check the empirical error against the exact
	// tail bound: Pr[|err| ≥ t] ≤ 2α^t/(1+α) (clamping only shrinks
	// error).
	const trials = 40000
	const tt = 4
	exceed := 0
	for i := 0; i < trials; i++ {
		r := g.Sample(truth, rng)
		if d := r - truth; d >= tt || d <= -tt {
			exceed++
		}
	}
	bound := GeometricTailBound(alpha, tt)
	got := float64(exceed) / trials
	if bf, _ := bound.Float64(); got > bf+0.01 {
		t.Errorf("empirical tail %.4f exceeds exact bound %.4f", got, bf)
	}

	// Consumer with public side information post-processes.
	c := &Consumer{Loss: AbsoluteLoss(), Side: SideInterval(1, n-1)}
	inter, err := OptimalInteraction(c, g)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := c.MinimaxLoss(inter.Induced)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cmp(inter.Loss) != 0 {
		t.Errorf("reported interaction loss %s != evaluated %s", inter.Loss.RatString(), direct.RatString())
	}
	// The induced mechanism keeps the privacy guarantee.
	if !inter.Induced.IsDP(alpha) {
		t.Error("post-processed mechanism lost its DP guarantee")
	}

	// Black-box audit of the deployed mechanism converges near α.
	res, err := AuditDP(g, 60000, sample.NewRand(55))
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstAlpha < 0.4 || res.WorstAlpha > 0.6 {
		t.Errorf("audited α = %v, want ≈ 0.5", res.WorstAlpha)
	}
}

// Integration: multi-level release feeding per-level consumers — every
// consumer at every level still achieves its tailored optimum on the
// marginal mechanism it faces (Theorem 1 composed with Algorithm 1).
func TestIntegrationMultiLevelConsumers(t *testing.T) {
	const n = 5
	levels := []*big.Rat{MustRat("1/4"), MustRat("1/2"), MustRat("3/4")}
	plan, err := NewReleasePlan(n, levels)
	if err != nil {
		t.Fatal(err)
	}
	c := &Consumer{Loss: SquaredLoss(), Side: SideInterval(1, 4)}
	for lvl := 1; lvl <= 3; lvl++ {
		marginal, err := plan.Marginal(lvl)
		if err != nil {
			t.Fatal(err)
		}
		inter, err := OptimalInteraction(c, marginal)
		if err != nil {
			t.Fatal(err)
		}
		alpha, err := plan.Alpha(lvl)
		if err != nil {
			t.Fatal(err)
		}
		tailored, err := OptimalMechanism(c, n, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if inter.Loss.Cmp(tailored.Loss) != 0 {
			t.Errorf("level %d: interaction %s != tailored %s",
				lvl, inter.Loss.RatString(), tailored.Loss.RatString())
		}
		// Deeper level (more privacy) never has lower optimal loss.
		if lvl > 1 {
			prevAlpha, err := plan.Alpha(lvl - 1)
			if err != nil {
				t.Fatal(err)
			}
			prev, err := OptimalMechanism(c, n, prevAlpha)
			if err != nil {
				t.Fatal(err)
			}
			if tailored.Loss.Cmp(prev.Loss) < 0 {
				t.Errorf("more privacy gave better utility: level %d %s < level %d %s",
					lvl, tailored.Loss.RatString(), lvl-1, prev.Loss.RatString())
			}
		}
	}
}

// Integration: multi-query census under budget accounting — composed
// guarantees verified against the released answers' marginal
// mechanisms and the α↔ε bridge.
func TestIntegrationCensusAccounting(t *testing.T) {
	rng := sample.NewRand(9)
	const n = 30
	db := SyntheticSurvey(n, "San Diego", 0.25, rng)
	budget := MustRat("2/5")

	// Parallel: histogram buckets disjoint.
	hist, err := AgeHistogram([]int{18, 65})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallelAnswerer(n, budget)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := par.Answer(db, hist, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, q := range hist.Queries {
		total += q.Eval(db)
		if answers[i].Released < 0 || answers[i].Released > n {
			t.Errorf("bucket %d released %d out of range", i, answers[i].Released)
		}
	}
	if total != n {
		t.Errorf("buckets partition %d of %d rows", total, n)
	}

	// Sequential: composed level meets the budget, per-query mechanism
	// is exactly at the per-query α.
	seq, err := NewSequentialAnswerer(n, 3, budget, 10000)
	if err != nil {
		t.Fatal(err)
	}
	composed, err := seq.ComposedAlpha(3)
	if err != nil {
		t.Fatal(err)
	}
	if composed.Cmp(budget) < 0 {
		t.Errorf("composed %s weaker than budget %s", composed.RatString(), budget.RatString())
	}
	if got := seq.Mechanism().BestAlpha(); got.Cmp(seq.PerQueryAlpha()) != 0 {
		t.Errorf("per-query mechanism level %s != declared %s",
			got.RatString(), seq.PerQueryAlpha().RatString())
	}

	// ε bridge: ε(composed) ≤ ε(budget) means α(composed) ≥ α(budget).
	eComposed, err := EpsilonFromAlpha(ratFloat(composed))
	if err != nil {
		t.Fatal(err)
	}
	eBudget, err := EpsilonFromAlpha(ratFloat(budget))
	if err != nil {
		t.Fatal(err)
	}
	if eComposed > eBudget+1e-9 {
		t.Errorf("ε(composed)=%v exceeds ε(budget)=%v", eComposed, eBudget)
	}
}

// Integration: Appendix A path from actual databases — build a
// non-oblivious mechanism over a concrete universe of neighbouring
// databases and confirm its oblivious reduction behaves.
func TestIntegrationObliviousFromSurvey(t *testing.T) {
	base := SyntheticSurvey(4, "X", 0.5, sample.NewRand(3))
	q := CountQuery{Name: "flu", Pred: func(r Row) bool { return r.HasFlu }}

	// Universe: the base plus single-row flips.
	universe := []*Database{base}
	for i := 0; i < base.Size(); i++ {
		row := base.Row(i)
		row.HasFlu = !row.HasFlu
		nb, err := base.WithRow(i, row)
		if err != nil {
			t.Fatal(err)
		}
		universe = append(universe, nb)
	}
	// A noisy but database-dependent mechanism.
	rng := sample.NewRand(17)
	probs := make([][]float64, len(universe))
	for d := range probs {
		row := make([]float64, base.Size()+1)
		sum := 0.0
		for r := range row {
			row[r] = 0.2 + rng.Float64()
			sum += row[r]
		}
		for r := range row {
			row[r] /= sum
		}
		probs[d] = row
	}
	m := nonObliviousForTest(universe, q, probs)
	lossFn := func(i, r int) float64 { return math.Abs(float64(i - r)) }
	before, err := m.WorstCaseLoss(base.Size(), lossFn)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := m.ObliviousReduction(base.Size())
	if err != nil {
		t.Fatal(err)
	}
	after, err := m.ObliviousWorstCaseLoss(base.Size(), reduced, lossFn)
	if err != nil {
		t.Fatal(err)
	}
	if after > before+1e-9 {
		t.Errorf("Appendix A violated: %v → %v", before, after)
	}
	// Audit the reduced mechanism's stochasticity.
	for i, row := range reduced {
		s := 0.0
		for _, v := range row {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("reduced row %d sums to %v", i, s)
		}
	}
}

func nonObliviousForTest(universe []*Database, q CountQuery, probs [][]float64) *database.NonOblivious {
	return &database.NonOblivious{Universe: universe, Query: q, Probs: probs}
}

func ratFloat(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}
