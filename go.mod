module minimaxdp

go 1.22
