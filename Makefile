# Development entry points for minimaxdp. `make check` is the same
# gate CI runs (.github/workflows/ci.yml -> scripts/check.sh).

.PHONY: check build test race vet dpvet dpvet-json dpvet-sarif fuzz-smoke bench bench-json bench-regression

## check: full CI gate (fmt, build, vet, dpvet, race tests, fuzz smoke)
check:
	./scripts/check.sh

## build: compile every package
build:
	go build ./...

## test: run the test suite
test:
	go test ./...

## race: run the test suite under the race detector
race:
	go test -race ./...

## vet: run go vet plus the project's dpvet analyzers
vet:
	go vet ./...
	go run ./cmd/dpvet ./...

## dpvet: run only the project analyzers
dpvet:
	go run ./cmd/dpvet ./...

## dpvet-json: project analyzers with machine-readable output (dpvet/1 schema)
dpvet-json:
	go run ./cmd/dpvet -json ./...

## dpvet-sarif: project analyzers as SARIF 2.1.0 (what CI uploads to code scanning)
dpvet-sarif:
	go run ./cmd/dpvet -sarif ./...

## bench: engine throughput benchmarks, one iteration (a quick smoke);
## use `go test -bench=Engine -benchmem ./internal/engine` for real numbers
bench:
	go test -run='^$$' -bench=Engine -benchtime=1x ./internal/engine

## bench-json: run the benchmark suites and write the committed
## baselines BENCH_lp.json + BENCH_sample.json + BENCH_store.json +
## BENCH_compare.json (op, ns/op, allocs/op per benchmark).
## BENCHTIME=1x default; use `BENCHTIME=2s make bench-json` when
## refreshing the committed baselines.
bench-json:
	./scripts/bench_json.sh

## bench-regression: re-run the JSON suites and fail on >2x per-op
## regressions vs the committed baselines (the CI gate)
bench-regression:
	./scripts/bench_regression.sh

## fuzz-smoke: short run of every fuzz target (FUZZTIME=10s default)
fuzz-smoke:
	go test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$${FUZZTIME:-10s} ./internal/rational
	go test -run='^$$' -fuzz='^FuzzPow$$' -fuzztime=$${FUZZTIME:-10s} ./internal/rational
	go test -run='^$$' -fuzz='^FuzzUnmarshalJSON$$' -fuzztime=$${FUZZTIME:-10s} ./internal/mechanism
	go test -run='^$$' -fuzz='^FuzzParseLevels$$' -fuzztime=$${FUZZTIME:-10s} ./cmd/dpserver
	go test -run='^$$' -fuzz='^FuzzWarmStartMatchesExact$$' -fuzztime=$${FUZZTIME:-10s} ./internal/lp
	go test -run='^$$' -fuzz='^FuzzPresolveMatchesDense$$' -fuzztime=$${FUZZTIME:-10s} ./internal/lp
	go test -run='^$$' -fuzz='^FuzzDyadicAlias$$' -fuzztime=$${FUZZTIME:-10s} ./internal/sample
