package minimaxdp

import (
	"context"
	"math/big"
	"testing"

	"minimaxdp/internal/derive"
	"minimaxdp/internal/sample"
)

// End-to-end through the public API: build the geometric mechanism,
// post-process as a consumer, and confirm universal optimality.
func TestPublicAPIEndToEnd(t *testing.T) {
	alpha := MustRat("1/2")
	g, err := Geometric(5, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsDP(alpha) {
		t.Fatal("geometric mechanism not DP at its own level")
	}
	c := &Consumer{Loss: AbsoluteLoss(), Side: SideInterval(1, 4)}
	inter, err := OptimalInteraction(c, g)
	if err != nil {
		t.Fatal(err)
	}
	tailored, err := OptimalMechanism(c, 5, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Loss.Cmp(tailored.Loss) != 0 {
		t.Errorf("universal optimality: interaction %s != tailored %s",
			inter.Loss.RatString(), tailored.Loss.RatString())
	}
}

func TestPublicRatHelpers(t *testing.T) {
	r, err := Rat("2/3")
	if err != nil || r.RatString() != "2/3" {
		t.Errorf("Rat = %v, %v", r, err)
	}
	if _, err := Rat("zzz"); err == nil {
		t.Error("bad rational accepted")
	}
	if MustRat("1/7").RatString() != "1/7" {
		t.Error("MustRat wrong")
	}
}

func TestPublicBaselines(t *testing.T) {
	u, err := Uniform(3)
	if err != nil || !u.IsDP(MustRat("1")) {
		t.Error("Uniform wrong")
	}
	id, err := IdentityMechanism(3)
	if err != nil || id.IsDP(MustRat("1/2")) {
		t.Error("IdentityMechanism wrong")
	}
	rr, err := RandomizedResponse(3, MustRat("1/2"))
	if err != nil || rr.BestAlpha().Sign() <= 0 {
		t.Error("RandomizedResponse wrong")
	}
}

func TestPublicLossConstructors(t *testing.T) {
	n := 5
	for _, l := range []LossFunction{AbsoluteLoss(), SquaredLoss(), ZeroOneLoss(), DeadbandLoss(1)} {
		if err := ValidateLoss(l, n); err != nil {
			t.Errorf("%s invalid: %v", l.Name(), err)
		}
	}
	if AbsoluteLoss().Loss(2, 5).RatString() != "3" {
		t.Error("AbsoluteLoss wrong")
	}
}

func TestPublicDerivability(t *testing.T) {
	alpha := MustRat("1/2")
	g, err := Geometric(3, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if !Derivable(g, alpha) {
		t.Error("G not derivable from itself")
	}
	if _, err := Factor(g, alpha); err != nil {
		t.Errorf("Factor(G) failed: %v", err)
	}
	counter := derive.AppendixB()
	if Derivable(counter, alpha) {
		t.Error("Appendix B counterexample reported derivable")
	}
	tr, err := Transition(3, MustRat("1/4"), MustRat("1/2"))
	if err != nil || !tr.IsStochastic() {
		t.Errorf("Transition = %v, %v", tr, err)
	}
}

func TestPublicMechanismConstructors(t *testing.T) {
	m, err := MechanismFromStrings([][]string{{"1/2", "1/2"}, {"1/2", "1/2"}})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMechanism(m.Matrix())
	if err != nil || !m2.Equal(m) {
		t.Error("NewMechanism round-trip failed")
	}
}

func TestPublicReleasePlan(t *testing.T) {
	plan, err := NewReleasePlan(10, []*big.Rat{MustRat("1/4"), MustRat("1/2")})
	if err != nil {
		t.Fatal(err)
	}
	rng := sample.NewRand(1)
	out, err := plan.Release(7, rng)
	if err != nil || len(out) != 2 {
		t.Fatalf("Release = %v, %v", out, err)
	}
	a, err := plan.CollusionAlpha([]int{1, 2})
	if err != nil || a.RatString() != "1/4" {
		t.Errorf("CollusionAlpha = %v, %v", a, err)
	}
}

// The Bayesian API path: deterministic remap achieves the Bayesian
// tailored optimum (Ghosh et al.).
func TestPublicBayesian(t *testing.T) {
	alpha := MustRat("1/2")
	g, err := Geometric(3, alpha)
	if err != nil {
		t.Fatal(err)
	}
	b := &Bayesian{Loss: AbsoluteLoss(), Prior: UniformPrior(3)}
	inter, err := OptimalBayesianInteraction(b, g)
	if err != nil {
		t.Fatal(err)
	}
	tailored, err := OptimalBayesianMechanism(b, 3, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Loss.Cmp(tailored.Loss) != 0 {
		t.Errorf("Bayesian optimality: %s != %s", inter.Loss.RatString(), tailored.Loss.RatString())
	}
}

func TestPublicDerivableFromAndDeterministic(t *testing.T) {
	alpha := MustRat("1/2")
	g, err := Geometric(3, alpha)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Uniform(3)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform is derivable from the geometric mechanism (map everything
	// uniformly); the reverse is not.
	if _, err := DerivableFrom(u, g); err != nil {
		t.Errorf("uniform should be derivable from G: %v", err)
	}
	if _, err := DerivableFrom(g, u); err == nil {
		t.Error("G derivable from uniform?!")
	}
	c := &Consumer{Loss: AbsoluteLoss()}
	det, err := OptimalDeterministicInteraction(c, g)
	if err != nil {
		t.Fatal(err)
	}
	randOpt, err := OptimalInteraction(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if det.Loss.Cmp(randOpt.Loss) < 0 {
		t.Error("deterministic beat randomized")
	}
}

func TestPublicEngine(t *testing.T) {
	e := NewEngine(EngineConfig{Seed: 5})
	alpha := MustRat("1/2")
	g1, err := e.Geometric(6, alpha)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := e.Geometric(6, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("engine did not cache the mechanism")
	}
	c := &Consumer{Loss: AbsoluteLoss()}
	tl, err := e.TailoredMechanism(c, 6, alpha)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := e.OptimalInteraction(c, 6, alpha)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 1 through the cached paths.
	if tl.Loss.Cmp(inter.Loss) != 0 {
		t.Errorf("tailored loss %s != interaction loss %s", tl.Loss.RatString(), inter.Loss.RatString())
	}
	s, err := e.Sampler(context.Background(), SamplerSpec{N: 6, Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Sample(3); r < 0 || r > 6 {
		t.Errorf("draw %d out of range", r)
	}
	var m EngineMetrics = e.Metrics()
	if m.Mechanisms.Cache.Hits == 0 || m.SamplerDraws != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

// The compare workbench through the facade: ConsumerModel unifies
// minimax and Bayesian consumers, the baseline constructors build
// exact mechanisms, and Engine.Compare produces the gap scorecard with
// the Theorem 1 zero geometric gap.
func TestPublicCompareWorkbench(t *testing.T) {
	alpha := MustRat("1/2")

	st, err := StaircaseMechanism(4, alpha, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsDP(alpha) {
		t.Error("staircase not α-DP")
	}
	lap, err := TruncatedLaplaceMechanism(4, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if lap.IsDP(alpha) {
		t.Error("truncated Laplace should NOT be α-DP (renormalization breaks the band)")
	}

	sp, err := ParseBaselineSpec("staircase:3")
	if err != nil || sp.Kind != BaselineStaircase || sp.Width != 3 {
		t.Errorf("ParseBaselineSpec = %+v, %v", sp, err)
	}
	if got := len(DefaultBaselines()); got != 3 {
		t.Errorf("DefaultBaselines has %d entries, want 3", got)
	}

	e := NewEngine(EngineConfig{})
	models := []ConsumerModel{
		&Consumer{Loss: AbsoluteLoss(), Side: SideInterval(1, 3)},
		&Bayesian{Loss: SquaredLoss(), Prior: UniformPrior(4)},
	}
	for _, m := range models {
		var cmp *Comparison
		cmp, err = e.Compare(CompareSpec{N: 4, Alpha: alpha, Model: m})
		if err != nil {
			t.Fatal(err)
		}
		if err = cmp.Validate(); err != nil {
			t.Fatal(err)
		}
		var geo *CompareEntry
		for i := range cmp.Entries {
			if cmp.Entries[i].Spec == string(BaselineGeometric) {
				geo = &cmp.Entries[i]
			}
		}
		if geo == nil {
			t.Fatal("no geometric entry in default baseline set")
		}
		if cmp.Model == "minimax" && geo.Gap.Sign() != 0 {
			t.Errorf("minimax geometric gap = %s, want exactly 0", geo.Gap.RatString())
		}
	}

	// The unified engine surface accepts either model directly.
	if _, err = e.TailoredMechanism(models[1], 4, alpha); err != nil {
		t.Fatal(err)
	}
}
