// Package minimaxdp implements universally optimal differentially
// private mechanisms for minimax (risk-averse) information consumers,
// reproducing Gupte & Sundararajan, "Universally Optimal Privacy
// Mechanisms for Minimax Agents" (PODS 2010).
//
// # Model
//
// A count query over an n-row database returns an integer in {0..n}.
// An oblivious privacy mechanism perturbs that result: it is an
// (n+1)×(n+1) row-stochastic matrix x with x[i][r] = Pr[release r |
// true result i]. The mechanism is α-differentially private
// (α ∈ [0,1]) when probabilities on adjacent inputs stay within a
// multiplicative α…1/α band (Definition 2 of the paper); larger α
// means stronger privacy.
//
// An information consumer has a monotone loss function l(i,r) and side
// information S ⊆ {0..n}, and — being risk-averse — evaluates a
// mechanism by its worst-case expected loss over S (the minimax rule).
// A rational consumer post-processes the mechanism's output with the
// randomized reinterpretation that minimizes that worst-case loss.
//
// # Headline result
//
// The paper's Theorem 1, reproduced exactly by this library: deploying
// the geometric mechanism G_{n,α} is simultaneously optimal for every
// minimax consumer — each consumer's optimal post-processing of
// G_{n,α} achieves exactly the loss of the α-DP mechanism that would
// have been tailored to that consumer by the Section 2.5 linear
// program. Furthermore, one result can be released at several privacy
// levels α₁ < … < α_k in a collusion-resistant way by cascading
// stochastic transitions (Algorithm 1).
//
// # Quick start
//
//	alpha := minimaxdp.MustRat("1/2")      // privacy level
//	g, _ := minimaxdp.Geometric(100, alpha) // mechanism for a 100-row DB
//	release := g.Sample(42, rng)            // perturbed query result
//
//	gov := &minimaxdp.Consumer{Loss: minimaxdp.AbsoluteLoss()}
//	best, _ := minimaxdp.OptimalInteraction(gov, g)
//	// best.Induced is the mechanism the consumer effectively sees;
//	// best.Loss equals the tailored optimum (Theorem 1).
//
// All numerics are exact rationals (math/big.Rat): the theorem checks
// in this library are true equalities, not floating-point
// approximations.
package minimaxdp

import (
	"context"
	"math/big"
	"math/rand"

	"minimaxdp/internal/baseline"
	"minimaxdp/internal/consumer"
	"minimaxdp/internal/derive"
	"minimaxdp/internal/engine"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/release"
	"minimaxdp/internal/sample"
	"minimaxdp/internal/store"
)

// Mechanism is an oblivious privacy mechanism for a count query on
// {0..n}: an immutable row-stochastic matrix of release probabilities.
type Mechanism = mechanism.Mechanism

// Matrix is a dense matrix of exact rationals; consumer interactions
// (post-processing matrices) use this type.
type Matrix = matrix.Matrix

// Consumer is a minimax information consumer: a monotone loss function
// plus optional side information (the set of possible true results).
type Consumer = consumer.Consumer

// Bayesian is an information consumer in the Bayesian model of Ghosh
// et al. (STOC 2009), used for the Section 2.7 comparison: a prior
// over true results plus a loss function.
type Bayesian = consumer.Bayesian

// ConsumerModel is the unified consumer-model abstraction: anything
// that can score a mechanism exactly (EvalLoss), react optimally to a
// deployed one (OptimalInteractionCtx), and name its tailored optimum
// (OptimalMechanismCtx). *Consumer (minimax) and *Bayesian implement
// it, and every LP-backed serving surface — Engine.TailoredCtx,
// Engine.InteractionCtx, Engine.Compare, POST /v1/compare — accepts
// either through this one interface.
type ConsumerModel = consumer.Model

// Interaction is a consumer's optimal post-processing of a deployed
// mechanism: the reinterpretation matrix T, the induced mechanism y·T,
// and its minimax loss.
type Interaction = consumer.Interaction

// Tailored is the optimal α-DP mechanism computed for one known
// consumer, together with its loss.
type Tailored = consumer.Tailored

// ReleasePlan is a prepared multi-level release (Algorithm 1): one
// query result published at several privacy levels with correlated
// noise, collusion-resistantly.
type ReleasePlan = release.Plan

// LossFunction is a consumer loss l(i,r), assumed monotone
// non-decreasing in |i−r| (validated by ValidateLoss).
type LossFunction = loss.Function

// DPViolation describes a differential-privacy violation found by
// Mechanism.CheckDP.
type DPViolation = mechanism.DPViolation

// Rat parses an exact rational from a string such as "1/2" or "0.25".
func Rat(s string) (*big.Rat, error) { return rational.Parse(s) }

// MustRat is Rat for compile-time-known literals; panics on bad input.
func MustRat(s string) *big.Rat { return rational.MustParse(s) }

// NewRand returns the deterministic PRNG every sampling entry point of
// this module accepts. It is the single sanctioned constructor
// (enforced by the randsource analyzer in cmd/dpvet): routing all
// randomness through one seedable source keeps every experiment
// reproducible from its -seed flag and leaves one swap point should
// release builds ever move to crypto/rand.
//
// The returned PRNG is NOT goroutine-safe. Concurrent samplers must
// use one PRNG per goroutine or draw through an Engine's pooled
// samplers (Engine.Sampler with a SamplerSpec).
func NewRand(seed int64) *rand.Rand { return sample.NewRand(seed) }

// Geometric returns the range-restricted α-geometric mechanism
// G_{n,α} (Definition 4 of the paper): two-sided geometric noise with
// ratio α added to the true result and clamped into [0,n]. It is
// α-differentially private and, by Theorem 1, universally optimal for
// all minimax consumers.
func Geometric(n int, alpha *big.Rat) (*Mechanism, error) {
	return mechanism.Geometric(n, alpha)
}

// NewMechanism wraps a row-stochastic matrix as a Mechanism,
// validating stochasticity.
func NewMechanism(m *Matrix) (*Mechanism, error) { return mechanism.New(m) }

// MechanismFromStrings builds a mechanism from rational string
// entries, e.g. {{"1/2","1/2"},{"1/4","3/4"}}.
func MechanismFromStrings(rows [][]string) (*Mechanism, error) {
	return mechanism.FromStrings(rows)
}

// Uniform returns the output-independent uniform mechanism on {0..n}
// (perfect privacy, zero utility) — a baseline.
func Uniform(n int) (*Mechanism, error) { return mechanism.Uniform(n) }

// IdentityMechanism returns the mechanism that releases the exact
// result (no privacy) — a baseline.
func IdentityMechanism(n int) (*Mechanism, error) { return mechanism.Identity(n) }

// RandomizedResponse returns the classical randomized-response
// mechanism: truth with probability p, uniform otherwise — a
// non-geometric DP baseline.
func RandomizedResponse(n int, p *big.Rat) (*Mechanism, error) {
	return mechanism.RandomizedResponse(n, p)
}

// AbsoluteLoss returns l(i,r) = |i−r| (mean error).
func AbsoluteLoss() LossFunction { return loss.Absolute{} }

// SquaredLoss returns l(i,r) = (i−r)² (variance of error).
func SquaredLoss() LossFunction { return loss.Squared{} }

// ZeroOneLoss returns l(i,r) = 1{i ≠ r} (frequency of error).
func ZeroOneLoss() LossFunction { return loss.ZeroOne{} }

// DeadbandLoss returns l(i,r) = max(0, |i−r|−width).
func DeadbandLoss(width int) LossFunction { return loss.Deadband{Width: width} }

// ValidateLoss checks the paper's Section 2.3 assumption (monotone
// non-decreasing in |i−r|) on the domain {0..n}.
func ValidateLoss(l LossFunction, n int) error { return loss.Validate(l, n) }

// SideInterval builds contiguous side information {lo..hi}, the common
// case (population upper bounds, sales lower bounds).
func SideInterval(lo, hi int) []int { return consumer.Interval(lo, hi) }

// OptimalInteraction solves the consumer's optimal post-processing LP
// (Section 2.4.3) against a deployed mechanism. By Theorem 1, when the
// deployed mechanism is Geometric(n, α), the result's Loss equals
// OptimalMechanism(c, n, α).Loss for every consumer c.
func OptimalInteraction(c *Consumer, deployed *Mechanism) (*Interaction, error) {
	return consumer.OptimalInteraction(c, deployed)
}

// OptimalInteractionCtx is OptimalInteraction under a context: the
// simplex pivot loop checks ctx between pivots, so canceling aborts a
// long solve promptly with ctx.Err().
func OptimalInteractionCtx(ctx context.Context, c *Consumer, deployed *Mechanism) (*Interaction, error) {
	return consumer.OptimalInteractionCtx(ctx, c, deployed)
}

// OptimalMechanism solves the Section 2.5 LP: the α-DP mechanism
// minimizing the consumer's minimax loss.
func OptimalMechanism(c *Consumer, n int, alpha *big.Rat) (*Tailored, error) {
	return consumer.OptimalMechanism(c, n, alpha)
}

// OptimalMechanismCtx is OptimalMechanism under a context; see
// OptimalInteractionCtx for the cancellation contract.
func OptimalMechanismCtx(ctx context.Context, c *Consumer, n int, alpha *big.Rat) (*Tailored, error) {
	return consumer.OptimalMechanismCtx(ctx, c, n, alpha)
}

// BayesianInteraction is a Bayesian consumer's optimal reaction to a
// deployed mechanism: a deterministic posterior remap.
type BayesianInteraction = consumer.BayesianInteraction

// OptimalBayesianInteraction computes the Bayes-optimal deterministic
// remap of a deployed mechanism's outputs (Section 2.7 comparison).
func OptimalBayesianInteraction(b *Bayesian, deployed *Mechanism) (*BayesianInteraction, error) {
	return consumer.OptimalBayesianInteraction(b, deployed)
}

// OptimalBayesianInteractionCtx is OptimalBayesianInteraction under a
// context; see OptimalInteractionCtx for the cancellation contract.
func OptimalBayesianInteractionCtx(ctx context.Context, b *Bayesian, deployed *Mechanism) (*BayesianInteraction, error) {
	return consumer.OptimalBayesianInteractionCtx(ctx, b, deployed)
}

// OptimalBayesianMechanism solves the Bayesian analogue of the
// Section 2.5 LP (Ghosh et al.'s objective).
func OptimalBayesianMechanism(b *Bayesian, n int, alpha *big.Rat) (*Tailored, error) {
	return consumer.OptimalBayesianMechanism(b, n, alpha)
}

// OptimalBayesianMechanismCtx is OptimalBayesianMechanism under a
// context; see OptimalInteractionCtx for the cancellation contract.
func OptimalBayesianMechanismCtx(ctx context.Context, b *Bayesian, n int, alpha *big.Rat) (*Tailored, error) {
	return consumer.OptimalBayesianMechanismCtx(ctx, b, n, alpha)
}

// UniformPrior returns the uniform prior on {0..n} for Bayesian
// consumers.
func UniformPrior(n int) []*big.Rat { return consumer.UniformPrior(n) }

// Derivable reports whether mechanism m can be obtained from
// Geometric(n, α) by randomized post-processing, via Theorem 2's
// three-term characterization: for every column, (1+α²)·x₂ −
// α·(x₁+x₃) ≥ 0 on all consecutive triples.
func Derivable(m *Mechanism, alpha *big.Rat) bool { return derive.Derivable(m, alpha) }

// Factor computes the unique post-processing T with m = G_{n,α}·T, or
// an error wrapping derive.ErrNotDerivable when none exists.
func Factor(m *Mechanism, alpha *big.Rat) (*Matrix, error) { return derive.Factor(m, alpha) }

// Transition returns the Lemma 3 stochastic matrix T_{α,β} with
// G_{n,β} = G_{n,α}·T_{α,β}, defined whenever α ≤ β (privacy can only
// be added, never removed).
func Transition(n int, alpha, beta *big.Rat) (*Matrix, error) {
	return derive.Transition(n, alpha, beta)
}

// NewReleasePlan prepares Algorithm 1 for privacy levels α₁ < … < α_k:
// Release then publishes one correlated result per level, and any
// coalition of consumers learns no more than its least-private member
// (Lemma 4).
func NewReleasePlan(n int, alphas []*big.Rat) (*ReleasePlan, error) {
	return release.NewPlan(n, alphas)
}

// RowPairStructure describes the Lemma 5 tight-prefix/tight-suffix
// pattern of one adjacent row pair of a mechanism.
type RowPairStructure = consumer.RowPairStructure

// CheckLemma5 verifies the paper's Lemma 5 structure on a mechanism:
// every adjacent row pair is pinned by the privacy constraints except
// for at most one slack column.
func CheckLemma5(m *Mechanism, alpha *big.Rat) ([]RowPairStructure, error) {
	return consumer.CheckLemma5(m, alpha)
}

// OptimalMechanismRefined is OptimalMechanism followed by the
// lexicographic tie-breaking used in the proof of Lemma 5: among
// minimax-optimal mechanisms it returns one minimizing the secondary
// objective Σ x[i][r]·|i−r|, which is guaranteed to satisfy
// CheckLemma5.
func OptimalMechanismRefined(c *Consumer, n int, alpha *big.Rat) (*Tailored, error) {
	return consumer.OptimalMechanismRefined(c, n, alpha)
}

// DerivableFrom decides Definition 3 between arbitrary mechanisms: it
// returns a row-stochastic T with x = y·T when one exists (so a
// consumer of y can simulate x), or an error wrapping
// derive.ErrNotDerivable. Unlike Factor this handles singular deployed
// mechanisms via exact LP feasibility.
func DerivableFrom(x, y *Mechanism) (*Matrix, error) { return derive.DerivableFrom(x, y) }

// OptimalDeterministicInteraction finds the best deterministic remap
// of a deployed mechanism by exhaustive enumeration (n ≤ 6) — the
// restriction §2.7 contrasts with randomized post-processing.
func OptimalDeterministicInteraction(c *Consumer, deployed *Mechanism) (*Interaction, error) {
	return consumer.OptimalDeterministicInteraction(c, deployed)
}

// --- baseline mechanisms and the compare workbench ------------------------

// BaselineKind names a baseline mechanism family for the compare
// workbench; see the Baseline* constants.
type BaselineKind = baseline.Kind

// Baseline mechanism families scored by the compare workbench.
const (
	// BaselineGeometric is G_{n,α} — by Theorem 1, its gap is exactly
	// zero for every minimax consumer.
	BaselineGeometric = baseline.Geometric
	// BaselineStaircase is the Geng–Viswanath banded staircase family;
	// width 1 coincides with the geometric mechanism.
	BaselineStaircase = baseline.KindStaircase
	// BaselineLaplace is the truncated-and-renormalized discrete
	// Laplace. Renormalization breaks the α-DP band, so its BestAlpha
	// is strictly below the construction α.
	BaselineLaplace = baseline.KindLaplace
)

// BaselineSpec selects one baseline mechanism (a kind plus the
// staircase width, where applicable).
type BaselineSpec = baseline.Spec

// ParseBaselineSpec parses a wire-format baseline spec such as
// "geometric", "laplace", or "staircase:3".
func ParseBaselineSpec(s string) (BaselineSpec, error) { return baseline.ParseSpec(s) }

// DefaultBaselines returns the default comparison set: geometric,
// staircase (default width), and truncated Laplace.
func DefaultBaselines() []BaselineSpec { return baseline.DefaultSet() }

// StaircaseMechanism returns the width-w staircase mechanism on
// {0..n}: geometric decay across bands of w equal-probability steps,
// built exactly in rationals. It is exactly α-DP; width 1 coincides
// with Geometric(n, alpha).
func StaircaseMechanism(n int, alpha *big.Rat, w int) (*Mechanism, error) {
	return baseline.Staircase(n, alpha, w)
}

// TruncatedLaplaceMechanism returns the discrete Laplace distribution
// truncated to [0,n] and renormalized. NOTE: renormalization makes it
// NOT α-DP — its actual privacy level (Mechanism.BestAlpha) is
// strictly below the construction α. It is included as the classical
// "clip the noise" strawman the paper's clamping construction fixes.
func TruncatedLaplaceMechanism(n int, alpha *big.Rat) (*Mechanism, error) {
	return baseline.TruncatedLaplace(n, alpha)
}

// Comparison is one consumer's optimality-gap scorecard: the tailored
// LP optimum plus, per baseline, the raw loss, the loss after the
// consumer's optimal post-processing, and the gap to tailored — all
// exact rationals. Produced by Engine.Compare.
type Comparison = baseline.Comparison

// CompareEntry is one baseline's row in a Comparison.
type CompareEntry = baseline.Entry

// CompareSpec asks Engine.Compare for a cached Comparison: domain
// size, privacy level, a ConsumerModel (minimax or Bayesian), and the
// baseline set (nil means DefaultBaselines).
type CompareSpec = engine.CompareSpec

// --- the serving engine ---------------------------------------------------

// Engine is the concurrent mechanism-serving layer: a compute-once,
// concurrency-safe front over every expensive exact artifact
// (geometric mechanisms and inverses, Lemma 3 transitions, release
// plans, and the §2.4.3/§2.5 LP optima), with keyed caches,
// singleflight request coalescing, pooled alias-table samplers, and a
// JSON-ready metrics surface. Construct one per process and share it;
// see internal/engine for cache-key semantics.
//
// Every artifact method has a context-taking form (Engine.TailoredCtx,
// Engine.InteractionCtx, Engine.GeometricCtx, ...): cancellation
// reaches the LP pivot loop, coalesced callers cancel independently,
// and canceled solves are never cached. The LP-backed methods shed
// load with ErrEngineSaturated once EngineConfig.MaxInFlightSolves
// concurrent solves are running.
type Engine = engine.Engine

// EngineConfig tunes an Engine's cache capacities, sampler-pool seed,
// in-flight solve bound, and trace hook; the zero value is ready to
// use.
type EngineConfig = engine.Config

// EngineMetrics is the engine's expvar-style counter snapshot
// (requests, compute time and latency histograms, shed counts, cache
// hit/miss/coalesced/eviction counts per artifact class, and the
// in-flight solve gauge); it marshals directly to JSON.
type EngineMetrics = engine.Metrics

// Sampler draws from a fixed mechanism in O(1) per draw via
// precompiled alias tables. Unlike Mechanism.Sample it is safe for
// concurrent use: each draw borrows a PRNG from its engine's pool.
// Obtain one from Engine.Sampler with a SamplerSpec.
type Sampler = engine.Sampler

// SamplerSpec selects the mechanism Engine.Sampler compiles: set N
// and Alpha for the cached geometric sampler, or Mechanism for an
// uncached arbitrary one.
type SamplerSpec = engine.SamplerSpec

// TraceEvent is one span event on an Engine's serving path (cache
// hit/miss, coalesced join, solve start/finish with duration, shed).
type TraceEvent = engine.TraceEvent

// TraceKind labels a TraceEvent; see the engine.Trace* constants.
type TraceKind = engine.TraceKind

// TraceFunc receives every span event of an Engine when installed via
// EngineConfig.Trace. Hooks run synchronously on the serving
// goroutine and must be cheap and concurrency-safe.
type TraceFunc = engine.TraceFunc

// ErrEngineSaturated is returned by the engine's LP-backed methods
// when the in-flight solve bound is reached: the request was rejected
// before any work started and is safe to retry after backoff.
var ErrEngineSaturated = engine.ErrSaturated

// NewEngine builds a serving engine from cfg (zero value fine).
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// ArtifactStore is the content-addressed disk store for exact
// artifacts (mechanisms, transitions, release plans, tailored
// solutions, alias tables). Payloads are deterministic canonical
// rational encodings — no floats touch disk — and every read is
// checksum-verified: a corrupt entry is quarantined and reported as a
// miss, never returned. Install one via EngineConfig.Store and a
// restarted engine warm-boots from disk with zero LP solves.
type ArtifactStore = store.Store

// ArtifactStoreStats is an ArtifactStore's counter snapshot (hits,
// misses, writes, write errors, quarantined corrupt entries).
type ArtifactStoreStats = store.Stats

// OpenArtifactStore opens (creating if needed) a disk-backed artifact
// store rooted at dir.
func OpenArtifactStore(dir string) (*ArtifactStore, error) { return store.Open(dir) }
