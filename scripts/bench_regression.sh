#!/usr/bin/env bash
# bench_regression.sh — the bench-regression smoke for check.sh:
# re-run the JSON bench suites and fail if any op regressed more than
# 2x against its committed baseline (BENCH_lp.json / BENCH_sample.json /
# BENCH_store.json / BENCH_compare.json).
#
# The gate compares per-op ns/op with a 2x ratio plus an absolute
# slack floor: nanosecond-scale ops (the dyadic kernel is ~3ns) jitter
# by integer nanoseconds under CI load, so a pure ratio would flake.
# An op present in a baseline but missing from the fresh run fails
# too — a silently vanished benchmark is a hole in the gate.
#
# Environment: BENCHTIME (default 0.2s — enough iterations that the
# fresh numbers are stable, cheap enough for every CI run),
# SLACK_NS (absolute regression allowance, default 2000).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-0.2s}"
SLACK_NS="${SLACK_NS:-2000}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

BENCHTIME="${BENCHTIME}" OUT_LP="${tmpdir}/lp.json" OUT_SAMPLE="${tmpdir}/sample.json" \
    OUT_STORE="${tmpdir}/store.json" OUT_COMPARE="${tmpdir}/compare.json" \
    ./scripts/bench_json.sh >/dev/null

# compare <baseline> <fresh>: extract "op ns" pairs from both JSON
# files (the shape is one benchmark object per line, written by
# bench_json.sh) and apply the threshold.
compare() {
    local baseline="$1" fresh="$2"
    awk -v slack="${SLACK_NS}" -v base_name="${baseline}" '
function extract(line) {
    # line: {"op": "BenchmarkX-8", "ns_per_op": 123.4, ...}
    match(line, /"op": "[^"]*"/)
    op = substr(line, RSTART + 7, RLENGTH - 8)
    match(line, /"ns_per_op": [0-9.e+]*/)
    ns = substr(line, RSTART + 13, RLENGTH - 13) + 0
}
FNR == NR && /"op":/ { extract($0); old[op] = ns; next }
FNR != NR && /"op":/ { extract($0); new[op] = ns }
END {
    bad = 0
    for (op in old) {
        if (!(op in new)) {
            printf "MISSING %s (in %s, absent from fresh run)\n", op, base_name
            bad = 1
            continue
        }
        limit = old[op] * 2 + slack
        if (new[op] > limit) {
            printf "REGRESSION %s: %.1f ns/op > limit %.1f (baseline %.1f)\n", \
                op, new[op], limit, old[op]
            bad = 1
        }
    }
    exit bad
}
' "${baseline}" "${fresh}"
}

status=0
compare BENCH_lp.json "${tmpdir}/lp.json" || status=1
compare BENCH_sample.json "${tmpdir}/sample.json" || status=1
compare BENCH_store.json "${tmpdir}/store.json" || status=1
compare BENCH_compare.json "${tmpdir}/compare.json" || status=1
if [ "${status}" -ne 0 ]; then
    echo "bench regression gate FAILED (baselines: BENCH_lp.json, BENCH_sample.json, BENCH_store.json, BENCH_compare.json)" >&2
    exit 1
fi
echo "bench regression gate passed (threshold: 2x + ${SLACK_NS}ns per op)"
