#!/usr/bin/env bash
# bench_json.sh — run the LP-solver and engine benchmarks and distill
# the results into BENCH_lp.json: one record per benchmark op with its
# ns/op and allocs/op. CI runs this with the default single iteration
# as a compile-and-smoke gate (the JSON shape is what's checked in);
# for numbers worth comparing, run longer:
#
#   BENCHTIME=2s ./scripts/bench_json.sh
#
# Environment: BENCHTIME (go test -benchtime, default 1x),
# OUT (output path, default BENCH_lp.json).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_lp.json}"
raw="$(mktemp)"
trap 'rm -f "${raw}"' EXIT

# The LP benchmarks live in the root package (paper-scale simplex
# solves, warm-start vs exact), the serving benchmarks in
# internal/engine. -benchmem is required: allocs/op is half the point
# of the allocation-lean kernel work.
go test -run='^$' \
    -bench='Table1OptimalLP|Simplex|StrongDualityCertificate|InteractionLPvsFactor' \
    -benchmem -benchtime="${BENCHTIME}" . | tee "${raw}"
go test -run='^$' -bench='Engine' -benchmem -benchtime="${BENCHTIME}" \
    ./internal/engine | tee -a "${raw}"

awk -v benchtime="${BENCHTIME}" '
BEGIN {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    n = 0
}
/^Benchmark/ {
    name = $1
    ns = $3
    allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (n++) printf ",\n"
    printf "    {\"op\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs
}
END {
    printf "\n  ]\n}\n"
}
' "${raw}" >"${OUT}"

echo "wrote ${OUT}"
