#!/usr/bin/env bash
# bench_json.sh — run the benchmark suites and distill the results
# into the committed JSON baselines: one record per benchmark op with
# its ns/op and allocs/op.
#
#   BENCH_lp.json      LP-solver benchmarks (root package: paper-scale
#                      simplex, warm-start vs exact) plus the engine's
#                      cache-path benchmarks.
#   BENCH_sample.json  the sampling hot path: dyadic alias kernel
#                      (internal/sample), sharded single/batch/parallel
#                      draws (internal/engine), and the /v1/sample
#                      HTTP handler (cmd/dpserver).
#   BENCH_store.json   the artifact-store warm-boot path: cold LP solve
#                      vs loading the persisted tailored solution from
#                      the content-addressed disk store
#                      (internal/engine BenchmarkStoreWarmBoot).
#   BENCH_compare.json the compare workbench: the warm POST /v1/compare
#                      scorecard read off the compares cache
#                      (internal/engine BenchmarkEngineCompare).
#
# CI re-runs the suites through scripts/bench_regression.sh and fails
# on >2x regressions against the committed files. For refreshing the
# baselines, run longer than the smoke default:
#
#   BENCHTIME=2s ./scripts/bench_json.sh
#
# Environment: BENCHTIME (go test -benchtime, default 1x),
# OUT_LP / OUT_SAMPLE / OUT_STORE / OUT_COMPARE (output paths, default
# the committed names).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT_LP="${OUT_LP:-BENCH_lp.json}"
OUT_SAMPLE="${OUT_SAMPLE:-BENCH_sample.json}"
OUT_STORE="${OUT_STORE:-BENCH_store.json}"
OUT_COMPARE="${OUT_COMPARE:-BENCH_compare.json}"
raw="$(mktemp)"
trap 'rm -f "${raw}"' EXIT

# distill <raw-file> <out-file>: go test -bench output -> JSON.
# -benchmem is required upstream: allocs/op is half the point of the
# allocation-lean kernel work.
distill() {
    awk -v benchtime="${BENCHTIME}" '
BEGIN {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    n = 0
}
/^Benchmark/ {
    name = $1
    ns = $3
    allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (n++) printf ",\n"
    printf "    {\"op\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs
}
END {
    printf "\n  ]\n}\n"
}
' "$1" >"$2"
    echo "wrote $2"
}

# --- LP suite -------------------------------------------------------------
: >"${raw}"
go test -run='^$' \
    -bench='Table1OptimalLP|Simplex|StrongDualityCertificate|InteractionLPvsFactor' \
    -benchmem -benchtime="${BENCHTIME}" . | tee -a "${raw}"
go test -run='^$' -bench='EngineTailored|EngineGeometric' \
    -benchmem -benchtime="${BENCHTIME}" ./internal/engine | tee -a "${raw}"
distill "${raw}" "${OUT_LP}"

# --- sampling suite -------------------------------------------------------
: >"${raw}"
go test -run='^$' -bench='DyadicAlias' -benchmem -benchtime="${BENCHTIME}" \
    ./internal/sample | tee -a "${raw}"
go test -run='^$' -bench='EngineSampler' -benchmem -benchtime="${BENCHTIME}" \
    ./internal/engine | tee -a "${raw}"
go test -run='^$' -bench='HandleSample' -benchmem -benchtime="${BENCHTIME}" \
    ./cmd/dpserver | tee -a "${raw}"
distill "${raw}" "${OUT_SAMPLE}"

# --- artifact-store suite -------------------------------------------------
: >"${raw}"
go test -run='^$' -bench='StoreWarmBoot' -benchmem -benchtime="${BENCHTIME}" \
    ./internal/engine | tee -a "${raw}"
distill "${raw}" "${OUT_STORE}"

# --- compare workbench suite ----------------------------------------------
: >"${raw}"
go test -run='^$' -bench='EngineCompare' -benchmem -benchtime="${BENCHTIME}" \
    ./internal/engine | tee -a "${raw}"
distill "${raw}" "${OUT_COMPARE}"
