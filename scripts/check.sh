#!/usr/bin/env bash
# check.sh — the full CI gate for minimaxdp, runnable locally as
# `make check` or `./scripts/check.sh`.
#
# Order is cheapest-first so broken trees fail fast: format, build,
# the compiler-adjacent vets (go vet + the project's own dpvet
# invariants), then the race-enabled test suite, then a short fuzz
# smoke over the parsing/encoding fuzz targets.
set -euo pipefail
cd "$(dirname "$0")/.."

# Seconds each fuzz target runs; override for longer local soaks:
#   FUZZTIME=60s ./scripts/check.sh
FUZZTIME="${FUZZTIME:-10s}"

echo "==> gofmt"
unformatted="$(gofmt -l .)"
if [ -n "${unformatted}" ]; then
    echo "gofmt required for:" >&2
    echo "${unformatted}" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> dpvet (exactness taint, overflow kernels, hotpath escape gate, randomness, error handling)"
# The suite includes hotpath, which cross-checks //dpvet:hotpath
# annotations against `go build -gcflags=-m`: a heap allocation
# sneaking into an annotated sampler/pivot/handler body fails right
# here. In CI the same findings are also written as SARIF so GitHub
# code scanning annotates the offending lines.
if [ -n "${CI:-}" ]; then
    go run ./cmd/dpvet -sarif ./... >dpvet.sarif
else
    go run ./cmd/dpvet ./...
fi

echo "==> go test -race ./..."
go test -race ./...

echo "==> bench regression gate (fresh run vs committed BENCH_lp.json / BENCH_sample.json)"
./scripts/bench_regression.sh

echo "==> fuzz smoke (${FUZZTIME} per target)"
go test -run='^$' -fuzz='^FuzzParse$' -fuzztime="${FUZZTIME}" ./internal/rational
go test -run='^$' -fuzz='^FuzzPow$' -fuzztime="${FUZZTIME}" ./internal/rational
go test -run='^$' -fuzz='^FuzzWideMatchesBigRat$' -fuzztime="${FUZZTIME}" ./internal/rational
go test -run='^$' -fuzz='^FuzzUnmarshalJSON$' -fuzztime="${FUZZTIME}" ./internal/mechanism
go test -run='^$' -fuzz='^FuzzParseLevels$' -fuzztime="${FUZZTIME}" ./cmd/dpserver
go test -run='^$' -fuzz='^FuzzWarmStartMatchesExact$' -fuzztime="${FUZZTIME}" ./internal/lp
go test -run='^$' -fuzz='^FuzzPresolveMatchesDense$' -fuzztime="${FUZZTIME}" ./internal/lp
go test -run='^$' -fuzz='^FuzzDyadicAlias$' -fuzztime="${FUZZTIME}" ./internal/sample

echo "==> dpserver end-to-end smoke (store-backed run, tenant release, warm-boot restart)"
smokedir="$(mktemp -d)"
trap 'rm -rf "${smokedir}"' EXIT
go build -o "${smokedir}/dpserver" ./cmd/dpserver
cat >"${smokedir}/tenants.json" <<'EOF'
{"tenants": [{"id": "smoke", "n": 8, "truth": 3, "levels": ["1/3", "1/2"], "seed": 7}]}
EOF

# start_server <log>: launch against the shared store dir + tenant
# config and echo the real address once the listener is up.
start_server() {
    local log="$1"
    "${smokedir}/dpserver" -addr 127.0.0.1:0 -n 60 -max-tailored-n 16 \
        -store-dir "${smokedir}/store" -tenants-config "${smokedir}/tenants.json" \
        >"${log}" 2>&1 &
    srv_pid=$!
    base=""
    for _ in $(seq 1 50); do
        base="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "${log}" | head -1)"
        [ -n "${base}" ] && break
        sleep 0.1
    done
    if [ -z "${base}" ]; then
        echo "dpserver smoke: server never reported its address" >&2
        cat "${log}" >&2
        kill "${srv_pid}" 2>/dev/null || true
        exit 1
    fi
}

# stop_server <log>: SIGTERM and require a clean graceful stop.
stop_server() {
    local log="$1"
    kill -TERM "${srv_pid}"
    if ! wait "${srv_pid}"; then
        echo "dpserver smoke: server exited non-zero after SIGTERM" >&2
        cat "${log}" >&2
        exit 1
    fi
    grep -q "dpserver: stopped" "${log}"
}

# Run 1 (cold): exercise the LP-backed surface and a tenant cascaded
# release so the artifact store is populated.
start_server "${smokedir}/dpserver.log"
curl -fsS "http://${base}/healthz" | grep -q ok
curl -fsS "http://${base}/readyz" | grep -q ok
curl -fsS "http://${base}/v1/tailored?loss=absolute&n=6&level=1" | grep -q minimax_loss
# The tailored solve above must have gone through the float-guided
# warm-start path: the engine metrics report at least one hit.
curl -fsS "http://${base}/v1/metrics" | grep -q '"warm_start_hits":[1-9]'
# Large-n cold solve: n=16 exercises the presolve + revised-simplex
# pipeline's dual-repair path end to end (sub-second since the
# revised-simplex rework; it used to be minutes).
curl -fsS "http://${base}/v1/tailored?loss=absolute&n=16&level=1" | grep -q minimax_loss
# The revised path must report its hybrid tier counters: the n=16
# solve runs enough exact ops that the int64 fast tier is non-empty,
# and the Wide/big counters must at least be surfaced.
curl -fsS "http://${base}/v1/metrics" | grep -q '"small_ops":[1-9]'
curl -fsS "http://${base}/v1/metrics" | grep -q '"wide_ops":[0-9]'
curl -fsS "http://${base}/v1/metrics" | grep -q '"big_fallbacks":[0-9]'
# Above the cap the request must be rejected, not queued.
curl -sS "http://${base}/v1/tailored?loss=absolute&n=17&level=1" | grep -q "exceeds the LP cap"
curl -fsS "http://${base}/v1/tenants" | grep -q '"smoke"'
curl -fsS "http://${base}/v1/tenants/smoke/release?level=2" | grep -q '"result"'
curl -fsS "http://${base}/v1/tenants/smoke/accounting" | grep -q '"spent_alpha":"1/3"'
# Compare workbench: the minimax geometric gap must be EXACTLY the
# string "0" (Theorem 1 part 2 — an exact equality, not a tolerance),
# and the identical second POST must be served from the compares
# cache, visible as a hit in the engine metrics.
compare_spec='{"n": 6, "alpha": "1/2", "consumer": {"loss": "absolute", "side": "1-4"}, "baselines": ["geometric", "staircase"]}'
curl -fsS -X POST -d "${compare_spec}" "http://${base}/v1/compare" \
    | grep -q '"baseline":"geometric","loss":"[0-9/]*","interaction_loss":"[0-9/]*","gap":"0"'
curl -fsS -X POST -d "${compare_spec}" "http://${base}/v1/compare" >/dev/null
curl -fsS "http://${base}/v1/metrics" \
    | sed -n 's/.*"compares":\(.*\)"samplers".*/\1/p' | grep -q '"hits":[1-9]'
stop_server "${smokedir}/dpserver.log"

# Run 2 (warm boot): same store dir and tenant config. The whole
# surface — tailored solve included — must come off disk: the engine
# metrics report zero LP solves.
start_server "${smokedir}/dpserver2.log"
curl -fsS "http://${base}/v1/tailored?loss=absolute&n=6&level=1" | grep -q minimax_loss
curl -fsS "http://${base}/v1/tenants/smoke/release?level=1" | grep -q '"result"'
if ! curl -fsS "http://${base}/v1/metrics" | grep -q '"solves":0'; then
    echo "dpserver smoke: warm boot performed LP solves (store not used)" >&2
    curl -fsS "http://${base}/v1/metrics" >&2 || true
    exit 1
fi
stop_server "${smokedir}/dpserver2.log"

echo "==> all checks passed"
