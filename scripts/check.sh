#!/usr/bin/env bash
# check.sh — the full CI gate for minimaxdp, runnable locally as
# `make check` or `./scripts/check.sh`.
#
# Order is cheapest-first so broken trees fail fast: format, build,
# the compiler-adjacent vets (go vet + the project's own dpvet
# invariants), then the race-enabled test suite, then a short fuzz
# smoke over the parsing/encoding fuzz targets.
set -euo pipefail
cd "$(dirname "$0")/.."

# Seconds each fuzz target runs; override for longer local soaks:
#   FUZZTIME=60s ./scripts/check.sh
FUZZTIME="${FUZZTIME:-10s}"

echo "==> gofmt"
unformatted="$(gofmt -l .)"
if [ -n "${unformatted}" ]; then
    echo "gofmt required for:" >&2
    echo "${unformatted}" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> dpvet (exact-arithmetic / randomness / error-handling invariants)"
go run ./cmd/dpvet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> engine benchmarks (compile-and-smoke, 1 iteration each)"
go test -run='^$' -bench=Engine -benchtime=1x ./internal/engine

echo "==> fuzz smoke (${FUZZTIME} per target)"
go test -run='^$' -fuzz='^FuzzParse$' -fuzztime="${FUZZTIME}" ./internal/rational
go test -run='^$' -fuzz='^FuzzPow$' -fuzztime="${FUZZTIME}" ./internal/rational
go test -run='^$' -fuzz='^FuzzUnmarshalJSON$' -fuzztime="${FUZZTIME}" ./internal/mechanism
go test -run='^$' -fuzz='^FuzzParseLevels$' -fuzztime="${FUZZTIME}" ./cmd/dpserver

echo "==> all checks passed"
