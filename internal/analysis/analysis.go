// Package analysis is the driver framework for dpvet, this module's
// custom static-analysis suite. It plays the role of
// golang.org/x/tools/go/analysis in a stdlib-only setting: analyzers
// receive a type-checked package (a Pass), report position-tagged
// diagnostics, and the driver filters suppressions and orders output.
//
// Why a bespoke vet exists at all: the optimality theorems this
// library reproduces hold only under exact rational arithmetic and a
// single seedable randomness source. Those are whole-program
// invariants that the Go compiler cannot see — a stray float64
// conversion in the LP solver or a mutated shared *big.Rat type-checks
// fine and silently invalidates every "exact equality" claim in the
// test suite. The analyzers under internal/analysis/... encode those
// invariants as machine-checked rules; cmd/dpvet runs them in CI.
//
// The driver loads each package exactly once per run (see
// internal/analysis/load) and fans the shared typed AST out to every
// analyzer. Facts that come from outside the type-checker — today the
// compiler's escape-analysis diagnostics consumed by the hotpath
// analyzer — live on a Shared value that is computed at most once per
// run and can be prefetched concurrently with loading.
//
// Suppression: a finding can be silenced with a directive comment
//
//	//dpvet:ignore <analyzer>[,<analyzer>...] <justification>
//
// placed either on the offending line or on the line directly above
// it. The analyzer list is mandatory (there is no blanket ignore) and
// so is the justification: a directive with no justification text is
// itself a finding. The driver also audits every directive for
// staleness — a directive that suppressed nothing in the current run
// is reported under the "ignoreaudit" name — so the suppression
// inventory can only shrink.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"minimaxdp/internal/analysis/load"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dpvet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description shown by `dpvet -list`.
	Doc string
	// Run inspects the pass and reports findings via pass.Reportf.
	Run func(*Pass)
}

// IgnoreAuditName is the analyzer name under which directive-hygiene
// findings (stale or unjustified //dpvet:ignore comments) are
// reported. The checks themselves run inside the driver — only the
// driver knows which directives suppressed something — but they are
// addressable like any analyzer: included in a -run subset, listed by
// -list (via the ignoreaudit package's placeholder Analyzer), and
// suppressible with //dpvet:ignore ignoreaudit <justification>.
const IgnoreAuditName = "ignoreaudit"

// A Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Shared exposes run-wide facts computed outside the
	// type-checker, such as compiler escape-analysis diagnostics.
	// It is never nil when the pass comes from Run.
	Shared *Shared

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.ReportPosf(p.Fset.Position(pos), format, args...)
}

// ReportPosf records a finding at an already-resolved position. It
// exists for analyzers whose evidence comes from outside the parsed
// AST — the hotpath analyzer anchors findings on the file:line the
// compiler printed for an escaping allocation, which need not
// correspond to any token.Pos in the loaded FileSet.
func (p *Pass) ReportPosf(pos token.Position, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// IgnorePrefix is the directive-comment prefix for suppressions.
const IgnorePrefix = "//dpvet:ignore"

// Run applies every analyzer to every package and returns the
// surviving diagnostics sorted by position. Findings matched by a
// //dpvet:ignore directive are dropped; if the run includes the
// ignoreaudit analyzer, directives that are unjustified or that
// suppressed nothing are themselves reported. A nil shared is
// replaced with one derived from res, so callers that never touch
// Shared facts pay nothing.
func Run(res *load.Result, analyzers []*Analyzer, shared *Shared) []Diagnostic {
	if shared == nil {
		shared = NewShared(res.Dir, res.Patterns...)
	}
	ranNames := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ranNames[a.Name] = true
	}

	var diags []Diagnostic
	for _, pkg := range res.Pkgs {
		directives := collectDirectives(res.Fset, pkg.Files)
		index := indexDirectives(directives)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     res.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Shared:   shared,
				diags:    new([]Diagnostic),
			}
			a.Run(pass)
			for _, d := range *pass.diags {
				if !index.suppress(a.Name, d.Pos) {
					diags = append(diags, d)
				}
			}
		}
		if ranNames[IgnoreAuditName] {
			for _, d := range auditDirectives(directives, ranNames) {
				if !index.suppress(IgnoreAuditName, d.Pos) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// auditDirectives turns directive-hygiene violations into
// diagnostics. A directive is stale for an analyzer when that
// analyzer ran and the directive suppressed none of its findings;
// names outside the current run set are skipped so that -run subsets
// do not misreport directives for analyzers that never executed.
// Staleness of an "ignoreaudit" entry itself is not audited: such an
// entry is the escape hatch for intentionally-kept directives and is
// "used" only in the degenerate case where it suppresses this very
// audit.
func auditDirectives(directives []*directive, ranNames map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range directives {
		if dir.justification == "" {
			out = append(out, Diagnostic{
				Pos:      dir.pos,
				Analyzer: IgnoreAuditName,
				Message: fmt.Sprintf("%s directive has no justification (write %s %s <why>)",
					IgnorePrefix, IgnorePrefix, strings.Join(dir.names, ",")),
			})
		}
		for _, name := range dir.names {
			if name == IgnoreAuditName || !ranNames[name] || dir.used[name] {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      dir.pos,
				Analyzer: IgnoreAuditName,
				Message:  fmt.Sprintf("stale %s directive: no %s finding is suppressed here", IgnorePrefix, name),
			})
		}
	}
	return out
}

// directive is one parsed //dpvet:ignore comment.
type directive struct {
	names         []string
	justification string
	pos           token.Position
	used          map[string]bool // analyzer name -> suppressed at least one finding
}

// directiveIndex maps analyzer -> "file:line" -> directives covering
// that line. A directive covers its own line (trailing comment) and
// the line after it (standalone comment).
type directiveIndex map[string]map[string][]*directive

// suppress reports whether a finding by analyzer at pos is covered by
// a directive, marking every covering directive as used.
func (ix directiveIndex) suppress(analyzer string, pos token.Position) bool {
	covering := ix[analyzer][fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]
	for _, d := range covering {
		d.used[analyzer] = true
	}
	return len(covering) > 0
}

func indexDirectives(directives []*directive) directiveIndex {
	ix := make(directiveIndex)
	for _, d := range directives {
		for _, name := range d.names {
			if ix[name] == nil {
				ix[name] = make(map[string][]*directive)
			}
			for _, line := range []int{d.pos.Line, d.pos.Line + 1} {
				key := fmt.Sprintf("%s:%d", d.pos.Filename, line)
				ix[name][key] = append(ix[name][key], d)
			}
		}
	}
	return ix
}

func collectDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, justification, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				out = append(out, &directive{
					names:         names,
					justification: justification,
					pos:           fset.Position(c.Pos()),
					used:          make(map[string]bool),
				})
			}
		}
	}
	return out
}

// parseIgnore splits a //dpvet:ignore directive into its analyzer
// list and justification. The first whitespace-separated field is the
// comma-joined analyzer list; everything after it is the
// justification, except that a nested "//" cuts it short (so a
// trailing comment on the same line — a fixture's `// want ...`
// annotation, say — is not mistaken for a reason). An empty
// justification still suppresses, but the driver reports it under
// ignoreaudit: suppression stays monotone while the hygiene debt
// stays visible.
func parseIgnore(text string) (names []string, justification string, ok bool) {
	if !strings.HasPrefix(text, IgnorePrefix) {
		return nil, "", false
	}
	rest := strings.TrimPrefix(text, IgnorePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false // e.g. //dpvet:ignoreXYZ is not a directive
	}
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", false
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, "", false
	}
	return names, strings.Join(fields[1:], " "), true
}
