// Package analysis is the driver framework for dpvet, this module's
// custom static-analysis suite. It plays the role of
// golang.org/x/tools/go/analysis in a stdlib-only setting: analyzers
// receive a type-checked package (a Pass), report position-tagged
// diagnostics, and the driver filters suppressions and orders output.
//
// Why a bespoke vet exists at all: the optimality theorems this
// library reproduces hold only under exact rational arithmetic and a
// single seedable randomness source. Those are whole-program
// invariants that the Go compiler cannot see — a stray float64
// conversion in the LP solver or a mutated shared *big.Rat type-checks
// fine and silently invalidates every "exact equality" claim in the
// test suite. The analyzers under internal/analysis/... encode those
// invariants as machine-checked rules; cmd/dpvet runs them in CI.
//
// Suppression: a finding can be silenced with a directive comment
//
//	//dpvet:ignore <analyzer>[,<analyzer>...] <justification>
//
// placed either on the offending line or on the line directly above
// it. The analyzer list is mandatory (there is no blanket ignore) and
// a justification is expected by convention; the real-tree test in
// internal/analysis/registry keeps the ignore count honest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"minimaxdp/internal/analysis/load"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dpvet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description shown by `dpvet -list`.
	Doc string
	// Run inspects the pass and reports findings via pass.Reportf.
	Run func(*Pass)
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// IgnorePrefix is the directive-comment prefix for suppressions.
const IgnorePrefix = "//dpvet:ignore"

// Run applies every analyzer to every package and returns the
// surviving diagnostics sorted by position. Findings matched by a
// //dpvet:ignore directive are dropped.
func Run(res *load.Result, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range res.Pkgs {
		ignores := collectIgnores(res.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     res.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    new([]Diagnostic),
			}
			a.Run(pass)
			for _, d := range *pass.diags {
				if !ignores.match(a.Name, d.Pos) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// ignoreSet records, per analyzer, the file lines covered by a
// //dpvet:ignore directive. A directive covers its own line (trailing
// comment) and the line after it (standalone comment).
type ignoreSet map[string]map[string]bool // analyzer -> "file:line" -> true

func (s ignoreSet) match(analyzer string, pos token.Position) bool {
	lines := s[analyzer]
	if lines == nil {
		return false
	}
	return lines[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]
}

func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	set := make(ignoreSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				for _, name := range names {
					if set[name] == nil {
						set[name] = make(map[string]bool)
					}
					set[name][fmt.Sprintf("%s:%d", p.Filename, p.Line)] = true
					set[name][fmt.Sprintf("%s:%d", p.Filename, p.Line+1)] = true
				}
			}
		}
	}
	return set
}

// parseIgnore extracts the analyzer list from a //dpvet:ignore
// directive. Everything after the first whitespace-separated field is
// a human justification and is not interpreted.
func parseIgnore(text string) ([]string, bool) {
	if !strings.HasPrefix(text, IgnorePrefix) {
		return nil, false
	}
	rest := strings.TrimPrefix(text, IgnorePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. //dpvet:ignoreXYZ is not a directive
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}
