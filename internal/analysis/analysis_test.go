package analysis

import (
	"reflect"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text          string
		want          []string
		justification string
	}{
		{"//dpvet:ignore errdiscard read-only file", []string{"errdiscard"}, "read-only file"},
		{"//dpvet:ignore errdiscard,ratmutate shared justification", []string{"errdiscard", "ratmutate"}, "shared justification"},
		// A bare directive still parses (and suppresses) but its
		// missing justification is an ignoreaudit finding.
		{"//dpvet:ignore floatexact", []string{"floatexact"}, ""},
		{"//dpvet:ignore\trandsource tab-separated", []string{"randsource"}, "tab-separated"},
		// A nested comment (e.g. a fixture want annotation) does not
		// count as justification.
		{"//dpvet:ignore floatexact // want `x`", []string{"floatexact"}, ""},
		{"//dpvet:ignore floatexact real reason // want `x`", []string{"floatexact"}, "real reason"},
		{"//dpvet:ignore", nil, ""},             // analyzer list is mandatory
		{"//dpvet:ignoreerrdiscard", nil, ""},   // not a directive
		{"// dpvet:ignore errdiscard", nil, ""}, // space breaks the directive prefix
		{"// plain comment", nil, ""},
	}
	for _, c := range cases {
		got, justification, ok := parseIgnore(c.text)
		if c.want == nil {
			if ok {
				t.Errorf("parseIgnore(%q) = %v, want no directive", c.text, got)
			}
			continue
		}
		if !ok || !reflect.DeepEqual(got, c.want) || justification != c.justification {
			t.Errorf("parseIgnore(%q) = %v/%q/%v, want %v/%q", c.text, got, justification, ok, c.want, c.justification)
		}
	}
}

func TestPathMatches(t *testing.T) {
	cases := []struct {
		path     string
		suffixes []string
		want     bool
	}{
		{"minimaxdp/internal/lp", []string{"minimaxdp/internal/lp"}, true},
		{"minimaxdp/internal/analysis/x/testdata/src/internal/sample", []string{"internal/sample"}, true},
		{"minimaxdp/internal/lpx", []string{"minimaxdp/internal/lp"}, false},
		{"minimaxdp/internal/notlp", []string{"internal/lp"}, false},
		{"internal/sample", []string{"internal/sample"}, true},
		{"minimaxdp/internal/sample", []string{"internal/sample"}, true},
	}
	for _, c := range cases {
		if got := PathMatches(c.path, c.suffixes); got != c.want {
			t.Errorf("PathMatches(%q, %v) = %v, want %v", c.path, c.suffixes, got, c.want)
		}
	}
}
