package analysis

import (
	"reflect"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//dpvet:ignore errdiscard read-only file", []string{"errdiscard"}},
		{"//dpvet:ignore errdiscard,ratmutate shared justification", []string{"errdiscard", "ratmutate"}},
		{"//dpvet:ignore floatexact", []string{"floatexact"}},
		{"//dpvet:ignore\trandsource tab-separated", []string{"randsource"}},
		{"//dpvet:ignore", nil},             // analyzer list is mandatory
		{"//dpvet:ignoreerrdiscard", nil},   // not a directive
		{"// dpvet:ignore errdiscard", nil}, // space breaks the directive prefix
		{"// plain comment", nil},
	}
	for _, c := range cases {
		got, ok := parseIgnore(c.text)
		if c.want == nil {
			if ok {
				t.Errorf("parseIgnore(%q) = %v, want no directive", c.text, got)
			}
			continue
		}
		if !ok || !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseIgnore(%q) = %v/%v, want %v", c.text, got, ok, c.want)
		}
	}
}

func TestPathMatches(t *testing.T) {
	cases := []struct {
		path     string
		suffixes []string
		want     bool
	}{
		{"minimaxdp/internal/lp", []string{"minimaxdp/internal/lp"}, true},
		{"minimaxdp/internal/analysis/x/testdata/src/internal/sample", []string{"internal/sample"}, true},
		{"minimaxdp/internal/lpx", []string{"minimaxdp/internal/lp"}, false},
		{"minimaxdp/internal/notlp", []string{"internal/lp"}, false},
		{"internal/sample", []string{"internal/sample"}, true},
		{"minimaxdp/internal/sample", []string{"internal/sample"}, true},
	}
	for _, c := range cases {
		if got := PathMatches(c.path, c.suffixes); got != c.want {
			t.Errorf("PathMatches(%q, %v) = %v, want %v", c.path, c.suffixes, got, c.want)
		}
	}
}
