// Package fixture exercises the ratmutate analyzer: mutating a
// *big.Rat that aliases caller-owned or shared state is flagged;
// mutating fresh locals or a method's own fields is not.
package fixture

import "math/big"

// shared is package-level state; mutating it corrupts every reader.
var shared = big.NewRat(1, 2)

// MutateParam writes through a parameter the caller still owns.
func MutateParam(a, b *big.Rat) *big.Rat {
	a.Add(a, b) // want `\(\*big\.Rat\)\.Add mutates parameter "a"`
	return a
}

// SetParam covers the Set family.
func SetParam(dst, src *big.Rat) {
	dst.Set(src) // want `\(\*big\.Rat\)\.Set mutates parameter "dst"`
}

// MutateShared writes to a package-level rational.
func MutateShared() {
	shared.Neg(shared) // want `\(\*big\.Rat\)\.Neg mutates package-level value "shared"`
}

// FreshLocalOK is the control: accumulate into a fresh value.
func FreshLocalOK(a, b *big.Rat) *big.Rat {
	out := new(big.Rat)
	out.Add(a, b)
	out.Mul(out, out)
	return out
}

// Holder is a struct whose methods may mutate their own state.
type Holder struct {
	v    *big.Rat
	cell []*big.Rat
}

// Bump mutates receiver-owned state, which is fine.
func (h *Holder) Bump(x *big.Rat) {
	h.v.Add(h.v, x)
}

// Value leaks a live alias into the holder's storage.
func (h *Holder) Value() *big.Rat {
	return h.v // want `returns internal \*big\.Rat state of receiver "h"`
}

// At leaks through an index path.
func (h *Holder) At(i int) *big.Rat {
	return h.cell[i] // want `returns internal \*big\.Rat state of receiver "h"`
}

// ValueCopy is the sanctioned form: hand out a copy.
func (h *Holder) ValueCopy() *big.Rat {
	return new(big.Rat).Set(h.v)
}

// Borrowed documents a deliberate alias with a justified suppression.
func (h *Holder) Borrowed() *big.Rat {
	//dpvet:ignore ratmutate documented borrow; caller contract forbids mutation
	return h.v
}

// NotARat checks the type gate: Set on a non-Rat receiver is ignored.
type NotARat struct{}

// Set is an unrelated method that happens to share a mutator name.
func (NotARat) Set(x int) {}

// CallsOtherSet must not be flagged.
func CallsOtherSet(n NotARat) {
	n.Set(3)
}
