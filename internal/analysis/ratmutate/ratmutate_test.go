package ratmutate_test

import (
	"testing"

	"minimaxdp/internal/analysis/analysistest"
	"minimaxdp/internal/analysis/ratmutate"
)

func TestFixture(t *testing.T) {
	diags := analysistest.Run(t, ".", ratmutate.Analyzer, "./testdata/src/ratmutate")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics; analyzer is inert")
	}
}
