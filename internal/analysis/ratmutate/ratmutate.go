// Package ratmutate implements the dpvet analyzer that hunts *big.Rat
// aliasing bugs.
//
// math/big.Rat has a mutable, pointer-based API: r.Add(a, b) writes
// into r. The conventions in this module (see internal/rational's doc
// comment and DESIGN.md §7) are that exported helpers return fresh
// values and that borrowed state is never mutated — an LP tableau
// whose entries alias a caller's rationals is corrupted the moment
// either side calls Add or Set on a shared pointer. Two rules:
//
//  1. mutation-of-alias: calling a mutating big.Rat method (Add, Sub,
//     Mul, Quo, Set, Neg, Inv, ...) with a receiver that is directly a
//     function parameter or a package-level variable. Locals (fresh
//     values from rational.Zero/Clone/new(big.Rat)) are fine, and so
//     is mutating fields of a method's own receiver — that is what
//     methods are for.
//
//  2. return-of-internal-state: a method returning a *big.Rat reached
//     through its receiver (return m.a[i]) hands the caller a live
//     alias into the structure's storage. Return rational.Clone(...)
//     instead, or document the borrow and suppress with
//     //dpvet:ignore ratmutate <why>.
//
// Both rules are deliberately syntactic (no alias analysis): they
// catch the direct form of the bug with zero false negatives on it,
// and the module's fresh-value convention keeps the indirect forms
// rare enough for review.
package ratmutate

import (
	"go/ast"
	"go/types"

	"minimaxdp/internal/analysis"
)

// mutators are the big.Rat methods that write to their receiver.
var mutators = map[string]bool{
	"Abs": true, "Add": true, "Inv": true, "Mul": true, "Neg": true,
	"Quo": true, "Set": true, "SetFloat64": true, "SetFrac": true,
	"SetFrac64": true, "SetInt": true, "SetInt64": true,
	"SetString": true, "Sub": true,
}

// Analyzer is the production instance.
var Analyzer = &analysis.Analyzer{
	Name: "ratmutate",
	Doc: "flag mutating big.Rat method calls on parameters or package-level values, " +
		"and methods returning un-copied internal *big.Rat state",
	Run: run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	params := paramObjects(pass, fn)
	recv := receiverObject(pass, fn)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures capture the enclosing scope; the parameter set
			// stays valid, so keep walking.
			return true
		case *ast.CallExpr:
			checkMutation(pass, n, params)
		case *ast.ReturnStmt:
			if recv != nil {
				checkReturn(pass, n, recv)
			}
		}
		return true
	})
}

// checkMutation flags rat.Mutator(...) where rat is a parameter or a
// package-level variable.
func checkMutation(pass *analysis.Pass, call *ast.CallExpr, params map[types.Object]bool) {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !mutators[sel.Sel.Name] {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !analysis.IsBigRat(sig.Recv().Type()) {
		return
	}
	id, ok := analysis.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := pass.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	switch {
	case params[obj]:
		pass.Reportf(call.Pos(),
			"(*big.Rat).%s mutates parameter %q, which aliases caller-owned state; operate on rational.Clone(%s) or a fresh value",
			sel.Sel.Name, id.Name, id.Name)
	case isPackageLevel(pass, obj):
		pass.Reportf(call.Pos(),
			"(*big.Rat).%s mutates package-level value %q; shared rational constants must stay immutable",
			sel.Sel.Name, id.Name)
	}
}

// checkReturn flags `return <path rooted at receiver>` of type
// *big.Rat.
func checkReturn(pass *analysis.Pass, ret *ast.ReturnStmt, recv types.Object) {
	for _, res := range ret.Results {
		res = analysis.Unparen(res)
		switch res.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
		default:
			continue // calls, idents, composites: not a direct field path
		}
		tv, ok := pass.Info.Types[res]
		if !ok || !analysis.IsBigRat(tv.Type) {
			continue
		}
		root := analysis.RootIdent(res)
		if root == nil || pass.Info.Uses[root] != recv {
			continue
		}
		pass.Reportf(res.Pos(),
			"method returns internal *big.Rat state of receiver %q without a copy; return rational.Clone(...) or document the borrow with //dpvet:ignore ratmutate",
			root.Name)
	}
}

func paramObjects(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	return params
}

func receiverObject(pass *analysis.Pass, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.Info.Defs[fn.Recv.List[0].Names[0]]
}

func isPackageLevel(pass *analysis.Pass, obj *types.Var) bool {
	return obj.Parent() == pass.Pkg.Scope()
}
