// Package fixture exercises the ctxfirst analyzer: exported
// functions and methods with a context.Context anywhere but first are
// flagged; first-position contexts, context-free signatures, and
// unexported helpers are not.
package fixture

import "context"

// GoodFunc follows the convention.
func GoodFunc(ctx context.Context, n int) error { _ = ctx; _ = n; return nil }

// BadFunc buries the context.
func BadFunc(n int, ctx context.Context) error { _ = ctx; _ = n; return nil } // want `context.Context is parameter 2`

// BadLast puts it at the end of a longer signature.
func BadLast(a, b string, ctx context.Context) { _, _, _ = a, b, ctx } // want `context.Context is parameter 3`

type widget struct{}

// GoodMethod follows the convention (the receiver does not count).
func (widget) GoodMethod(ctx context.Context) { _ = ctx }

// BadMethod buries the context after a value parameter.
func (widget) BadMethod(name string, ctx context.Context) { _, _ = name, ctx } // want `context.Context is parameter 2`

// NoCtx has no context at all.
func NoCtx(a, b int) int { return a + b }

// quiet is unexported; dpvet leaves internal helpers alone.
func quiet(n int, ctx context.Context) { _, _ = n, ctx }

// GoodVariadic keeps ctx first ahead of a variadic tail.
func GoodVariadic(ctx context.Context, xs ...int) { _, _ = ctx, xs }

// Ctx aliases context.Context; types.Unalias must see through it.
type Ctx = context.Context

// BadAlias hides the buried context behind an alias.
func BadAlias(n int, c Ctx) { _, _ = n, c } // want `context.Context is parameter 2`

// BadGeneric shows the convention applies unchanged under type
// parameters.
func BadGeneric[T any](v T, ctx context.Context) { _, _ = v, ctx } // want `context.Context is parameter 2`

type box[T any] struct{ v T }

// Put is an exported method on a generic type; the signature is
// checked like any other.
func (box[T]) Put(v T, ctx context.Context) { _, _ = v, ctx } // want `context.Context is parameter 2`

// BadTwice reports every context after the first position, one
// finding each.
func BadTwice(a context.Context, n int, b context.Context) { _, _, _ = a, n, b } // want `context.Context is parameter 3`

// carrier embeds a context in a struct field. ctxfirst checks
// parameter types, not their innards: smuggling a context inside a
// struct is a different smell with a different (future) check, and
// flagging it here would outlaw legitimate option structs.
type carrier struct{ ctx context.Context }

// GoodCarrier therefore passes.
func GoodCarrier(n int, c carrier) { _, _ = n, c }

// GoodVariadicCtx passes by design: a variadic ...context.Context is
// a []context.Context — a collection of contexts as data, not the
// call's cancellation context.
func GoodVariadicCtx(n int, cs ...context.Context) { _, _ = n, cs }
