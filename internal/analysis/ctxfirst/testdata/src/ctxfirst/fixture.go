// Package fixture exercises the ctxfirst analyzer: exported
// functions and methods with a context.Context anywhere but first are
// flagged; first-position contexts, context-free signatures, and
// unexported helpers are not.
package fixture

import "context"

// GoodFunc follows the convention.
func GoodFunc(ctx context.Context, n int) error { _ = ctx; _ = n; return nil }

// BadFunc buries the context.
func BadFunc(n int, ctx context.Context) error { _ = ctx; _ = n; return nil } // want `context.Context is parameter 2`

// BadLast puts it at the end of a longer signature.
func BadLast(a, b string, ctx context.Context) { _, _, _ = a, b, ctx } // want `context.Context is parameter 3`

type widget struct{}

// GoodMethod follows the convention (the receiver does not count).
func (widget) GoodMethod(ctx context.Context) { _ = ctx }

// BadMethod buries the context after a value parameter.
func (widget) BadMethod(name string, ctx context.Context) { _, _ = name, ctx } // want `context.Context is parameter 2`

// NoCtx has no context at all.
func NoCtx(a, b int) int { return a + b }

// quiet is unexported; dpvet leaves internal helpers alone.
func quiet(n int, ctx context.Context) { _, _ = n, ctx }

// GoodVariadic keeps ctx first ahead of a variadic tail.
func GoodVariadic(ctx context.Context, xs ...int) { _, _ = ctx, xs }
