package ctxfirst_test

import (
	"testing"

	"minimaxdp/internal/analysis/analysistest"
	"minimaxdp/internal/analysis/ctxfirst"
)

func TestFixture(t *testing.T) {
	diags := analysistest.Run(t, ".", ctxfirst.Analyzer, "./testdata/src/ctxfirst")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics; analyzer is inert")
	}
}
