package ctxfirst_test

import (
	"testing"

	"minimaxdp/internal/analysis/analysistest"
	"minimaxdp/internal/analysis/ctxfirst"
)

func TestFixture(t *testing.T) {
	diags := analysistest.Run(t, ".", ctxfirst.Analyzer, "./testdata/src/ctxfirst")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics; analyzer is inert")
	}
	// The fixture encodes the analyzer's full decision table — buried
	// contexts behind aliases, under type parameters, on methods of
	// generic and unexported types, repeated contexts, plus the
	// deliberate non-findings (struct-embedded context, variadic
	// ...context.Context, unexported helpers). Pin the count so a
	// regression that silently drops an edge case cannot hide behind
	// the remaining matches.
	const wantFindings = 7
	if len(diags) != wantFindings {
		t.Fatalf("fixture produced %d findings, want %d: %v", len(diags), wantFindings, diags)
	}
}

// TestServingLayersNotExempt is a change detector: ctxfirst's
// DefaultAllow is an exemption list, so the new serving layers
// (internal/store, internal/tenant) are policed exactly as long as
// nobody adds them to it. Pin the invariant so a future exemption is
// a deliberate, reviewed decision rather than a drive-by edit.
func TestServingLayersNotExempt(t *testing.T) {
	for _, p := range []string{
		"minimaxdp/internal/store",
		"minimaxdp/internal/tenant",
		"minimaxdp/internal/baseline",
		"minimaxdp/internal/loss",
	} {
		for _, allowed := range ctxfirst.DefaultAllow {
			if allowed == p {
				t.Errorf("%s is exempt from ctxfirst; context-taking APIs there would go unpoliced", p)
			}
		}
	}
}
