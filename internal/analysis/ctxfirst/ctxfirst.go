// Package ctxfirst implements the dpvet analyzer that keeps
// context.Context in the conventional first-parameter position on
// exported functions and methods.
//
// The serving pipeline threads cancellation from the HTTP layer down
// into the LP pivot loop, which only works if every layer passes the
// context along. The Go convention — ctx is always the first
// parameter — is what makes that chain auditable at a glance and is
// assumed by every reviewer and linter in the ecosystem. A context
// buried later in the signature still compiles, but it signals an API
// designed around an afterthought and invites call sites that drop or
// duplicate the context. Exported signatures are the contract; this
// analyzer pins the convention there (unexported helpers and test
// files are out of scope — tests are outside dpvet's loading
// universe).
package ctxfirst

import (
	"go/ast"
	"go/types"

	"minimaxdp/internal/analysis"
)

// DefaultAllow lists packages (by import path or "/"-suffix) exempt
// from the check. Empty: the convention has no sanctioned exceptions.
var DefaultAllow = []string{}

// Analyzer is the production instance.
var Analyzer = New(DefaultAllow)

// New builds a ctxfirst analyzer with a custom allow list.
func New(allow []string) *analysis.Analyzer {
	a := &analyzer{allow: allow}
	return &analysis.Analyzer{
		Name: "ctxfirst",
		Doc: "require context.Context to be the first parameter of exported functions " +
			"and methods, keeping cancellation chains auditable",
		Run: a.run,
	}
}

type analyzer struct {
	allow []string
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func (a *analyzer) run(pass *analysis.Pass) {
	if analysis.PathMatches(pass.Pkg.Path(), a.allow) {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			params := sig.Params()
			for i := 1; i < params.Len(); i++ {
				if isContext(params.At(i).Type()) {
					pass.Reportf(params.At(i).Pos(),
						"context.Context is parameter %d of exported %s; make it the first parameter",
						i+1, fd.Name.Name)
				}
			}
		}
	}
}
