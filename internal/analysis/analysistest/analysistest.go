// Package analysistest is the golden-diagnostic harness for dpvet
// analyzers, a stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture package under testdata/src/<analyzer>/ annotates the lines
// it expects findings on with trailing comments of the form
//
//	expr // want `regexp1` `regexp2`
//
// Run loads the fixture through the production loader (so fixtures
// exercise the same type-checking and //dpvet:ignore filtering as real
// code), applies one analyzer, and fails the test unless the reported
// diagnostics and the want annotations match one-to-one per line.
//
// A want may also ride inside a //dpvet:ignore directive comment —
// `//dpvet:ignore x // want ...` — which is how ignoreaudit fixtures
// expect findings on the directive's own line.
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"minimaxdp/internal/analysis"
	"minimaxdp/internal/analysis/load"
)

// expectation is one `want` regexp awaiting a diagnostic on its line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	met  bool
}

var wantRE = regexp.MustCompile("`([^`]+)`")

// Run applies analyzer to the packages matched by patterns (resolved
// relative to dir) and checks diagnostics against // want comments.
// It returns the surviving diagnostics for any extra assertions.
func Run(t *testing.T, dir string, analyzer *analysis.Analyzer, patterns ...string) []analysis.Diagnostic {
	t.Helper()
	return RunSuite(t, dir, []*analysis.Analyzer{analyzer}, patterns...)
}

// RunSuite is Run for several analyzers at once. Driver-level checks
// (the ignoreaudit staleness audit) only make sense against the
// findings of the rest of a suite, so their fixtures need this form.
func RunSuite(t *testing.T, dir string, analyzers []*analysis.Analyzer, patterns ...string) []analysis.Diagnostic {
	t.Helper()
	res, err := load.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	expectations := collectWants(t, res)
	diags := analysis.Run(res, analyzers, nil)

	for _, d := range diags {
		if !claim(expectations, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expectations {
		if !e.met {
			t.Errorf("%s:%d: no diagnostic matched want `%s`", e.file, e.line, e.rx)
		}
	}
	return diags
}

// claim marks the first unmet expectation matching d.
func claim(exps []*expectation, d analysis.Diagnostic) bool {
	for _, e := range exps {
		if !e.met && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.rx.MatchString(d.Message) {
			e.met = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, res *load.Result) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, pkg := range res.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					idx := strings.Index(text, "want ")
					if idx < 0 {
						continue
					}
					// The text before "want " must be empty (a
					// dedicated want comment) or a //dpvet:ignore
					// directive carrying its own expectation.
					if strings.TrimSpace(text[:idx]) != "" && !strings.HasPrefix(c.Text, analysis.IgnorePrefix) {
						continue
					}
					pos := res.Fset.Position(c.Pos())
					body := text[idx+len("want "):]
					matches := wantRE.FindAllStringSubmatch(body, -1)
					if len(matches) == 0 {
						t.Fatalf("%s: malformed want comment %q (patterns must be backquoted)", pos, c.Text)
					}
					for _, m := range matches {
						rx, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
						}
						exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
					}
				}
			}
		}
	}
	return exps
}
