// Package analysistest is the golden-diagnostic harness for dpvet
// analyzers, a stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture package under testdata/src/<analyzer>/ annotates the lines
// it expects findings on with trailing comments of the form
//
//	expr // want `regexp1` `regexp2`
//
// Run loads the fixture through the production loader (so fixtures
// exercise the same type-checking and //dpvet:ignore filtering as real
// code), applies one analyzer, and fails the test unless the reported
// diagnostics and the want annotations match one-to-one per line.
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"minimaxdp/internal/analysis"
	"minimaxdp/internal/analysis/load"
)

// expectation is one `want` regexp awaiting a diagnostic on its line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	met  bool
}

var wantRE = regexp.MustCompile("`([^`]+)`")

// Run applies analyzer to the packages matched by patterns (resolved
// relative to dir) and checks diagnostics against // want comments.
// It returns the surviving diagnostics for any extra assertions.
func Run(t *testing.T, dir string, analyzer *analysis.Analyzer, patterns ...string) []analysis.Diagnostic {
	t.Helper()
	res, err := load.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	expectations := collectWants(t, res)
	diags := analysis.Run(res, []*analysis.Analyzer{analyzer})

	for _, d := range diags {
		if !claim(expectations, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expectations {
		if !e.met {
			t.Errorf("%s:%d: no diagnostic matched want `%s`", e.file, e.line, e.rx)
		}
	}
	return diags
}

// claim marks the first unmet expectation matching d.
func claim(exps []*expectation, d analysis.Diagnostic) bool {
	for _, e := range exps {
		if !e.met && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.rx.MatchString(d.Message) {
			e.met = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, res *load.Result) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, pkg := range res.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					idx := strings.Index(text, "want ")
					if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
						continue
					}
					pos := res.Fset.Position(c.Pos())
					body := text[idx+len("want "):]
					matches := wantRE.FindAllStringSubmatch(body, -1)
					if len(matches) == 0 {
						t.Fatalf("%s: malformed want comment %q (patterns must be backquoted)", pos, c.Text)
					}
					for _, m := range matches {
						rx, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
						}
						exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
					}
				}
			}
		}
	}
	return exps
}
