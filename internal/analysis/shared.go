package analysis

import (
	"sync"

	"minimaxdp/internal/analysis/escape"
)

// Shared holds run-wide analysis facts that come from outside the
// go/types type-checker and are expensive enough that they must be
// computed at most once per dpvet run, no matter how many analyzers
// or packages consume them.
//
// Today it carries one fact: the compiler's escape-analysis
// diagnostics for the loaded pattern set, consumed by the hotpath
// analyzer. The fact is lazy — a run whose analyzers never call
// Escape never shells out to the compiler — and prefetchable:
// cmd/dpvet calls Prefetch before loading so the `go build
// -gcflags=-m` subprocess overlaps with `go list` + parsing +
// type-checking instead of serializing after them.
type Shared struct {
	dir      string
	patterns []string

	escOnce sync.Once
	esc     *escape.Diagnostics
	escErr  error
}

// NewShared returns a Shared for the given load directory and
// patterns (the same values handed to load.Load, so auxiliary facts
// cover exactly the loaded package set).
func NewShared(dir string, patterns ...string) *Shared {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return &Shared{dir: dir, patterns: patterns}
}

// Prefetch starts computing the escape-analysis fact in the
// background. Safe to call any number of times; later Escape calls
// block until the single computation finishes. Any error is not lost,
// only deferred: the first Escape call returns the same cached result.
func (s *Shared) Prefetch() {
	go s.escOnce.Do(s.computeEscape)
}

// Escape returns the compiler's heap-allocation diagnostics for the
// run's pattern set, computing them on first use.
func (s *Shared) Escape() (*escape.Diagnostics, error) {
	s.escOnce.Do(s.computeEscape)
	return s.esc, s.escErr
}

func (s *Shared) computeEscape() {
	s.esc, s.escErr = escape.Run(s.dir, s.patterns...)
}
