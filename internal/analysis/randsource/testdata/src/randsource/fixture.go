// Package fixture exercises the randsource analyzer: ad-hoc PRNG
// construction and global-source draws are flagged; passing *rand.Rand
// values around is not.
package fixture

import "math/rand"

// Construct builds a PRNG directly instead of via sample.NewRand.
func Construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `math/rand\.New use outside internal/sample` `math/rand\.NewSource use outside internal/sample`
}

// GlobalDraw uses the package-global, self-seeded source.
func GlobalDraw() int {
	return rand.Intn(10) // want `math/rand\.Intn use outside internal/sample`
}

// GlobalFloat covers a second global draw.
func GlobalFloat() float64 {
	return rand.Float64() // want `math/rand\.Float64 use outside internal/sample`
}

// TypeUseOK is the control: consuming an injected PRNG is the
// sanctioned pattern everywhere.
func TypeUseOK(rng *rand.Rand) int {
	return rng.Intn(2)
}

// VarOfTypeOK declares variables of rand types without constructing.
func VarOfTypeOK() {
	var src rand.Source
	_ = src
}

// Suppressed shows the justified escape hatch.
func Suppressed() int {
	//dpvet:ignore randsource one-off demo draw, reproducibility irrelevant
	return rand.Int()
}
