// Package sample mimics the real internal/sample: its import path
// suffix puts it on the randsource allow list, so direct math/rand
// construction here is legal.
package sample

import "math/rand"

// NewRand is the one sanctioned PRNG constructor.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// GlobalOK draws from the global source; inside the allow list even
// this is not flagged.
func GlobalOK() int {
	return rand.Int()
}
