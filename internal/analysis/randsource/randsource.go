// Package randsource implements the dpvet analyzer that funnels all
// randomness through internal/sample.
//
// Every experiment binary in this module takes a -seed flag and every
// reported number must be reproducible from it. That works only if
// there is exactly one way to obtain a PRNG: sample.NewRand. A
// rand.New(rand.NewSource(...)) constructed ad hoc forks the seeding
// policy, and a call to a top-level math/rand function (rand.Intn,
// rand.Float64, ...) silently draws from the global, self-seeded
// source — both unreproducible and invisible in review. Centralizing
// construction also keeps a single swap point if sampling ever moves
// to crypto/rand for release builds.
//
// The analyzer forbids referencing any math/rand (or math/rand/v2)
// function outside packages on the Allow list. Using the types
// (*rand.Rand as a parameter, rand.Source as an interface) is fine
// everywhere — the point is that only internal/sample may construct
// or draw without an explicit source.
//
// Test files are outside dpvet's loading universe, so tests may seed
// local PRNGs freely.
package randsource

import (
	"go/ast"
	"go/types"

	"minimaxdp/internal/analysis"
)

// DefaultAllow lists packages (by import path or "/"-suffix) that may
// touch math/rand directly.
var DefaultAllow = []string{
	"minimaxdp/internal/sample",
	"internal/sample",
}

// Analyzer is the production instance.
var Analyzer = New(DefaultAllow)

// New builds a randsource analyzer with a custom allow list.
func New(allow []string) *analysis.Analyzer {
	a := &analyzer{allow: allow}
	return &analysis.Analyzer{
		Name: "randsource",
		Doc: "forbid direct math/rand construction and global-source draws outside " +
			"internal/sample; all randomness flows through sample.NewRand",
		Run: a.run,
	}
}

type analyzer struct {
	allow []string
}

func (a *analyzer) run(pass *analysis.Pass) {
	if analysis.PathMatches(pass.Pkg.Path(), a.allow) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := analysis.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if _, ok := pass.Info.Uses[sel.Sel].(*types.Func); !ok {
				return true // types and constants are fine; only functions are fenced
			}
			pass.Reportf(sel.Pos(),
				"direct %s.%s use outside internal/sample; construct PRNGs with sample.NewRand(seed) so experiments stay seed-reproducible",
				path, sel.Sel.Name)
			return true
		})
	}
}
