package randsource_test

import (
	"strings"
	"testing"

	"minimaxdp/internal/analysis/analysistest"
	"minimaxdp/internal/analysis/randsource"
)

// TestFixture checks both fixture packages in one run: the plain
// fixture must produce every want-annotated finding, and the
// internal/sample-suffixed sibling must stay silent despite
// constructing PRNGs (the allow list matches by path suffix).
func TestFixture(t *testing.T) {
	diags := analysistest.Run(t, ".", randsource.Analyzer,
		"./testdata/src/randsource",
		"./testdata/src/randsource/internal/sample",
	)
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics; analyzer is inert")
	}
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, "internal/sample") {
			t.Errorf("allow-listed package was flagged: %s", d)
		}
	}
}
