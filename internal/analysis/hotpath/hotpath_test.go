package hotpath

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"minimaxdp/internal/analysis/analysistest"
)

func TestFixture(t *testing.T) {
	diags := analysistest.Run(t, ".", Analyzer, "./testdata/src/hotpath")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics; the escape cross-check is inert")
	}
}

// TestProductionAnnotations pins the serving-path annotation set: the
// functions whose zero-alloc behavior the benchmarks (BENCH_sample.json)
// and DESIGN.md §11 promise must stay under the escape gate. Removing
// an annotation would silently drop that function from CI coverage.
func TestProductionAnnotations(t *testing.T) {
	want := map[string][]string{
		"../../../internal/sample/dyadic.go":  {"Uint64", "Block", "Next", "SampleWord"},
		"../../../internal/engine/sampler.go": {"Sample", "SampleInto"},
		"../../../internal/lp/lp.go":          {"pivot", "eliminateRows"},
		"../../../cmd/dpserver/server.go":     {"handleSample"},
	}
	fset := token.NewFileSet()
	for file, fns := range want {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", file, err)
		}
		annotated := make(map[string]bool)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && Annotated(fd) {
				annotated[fd.Name.Name] = true
			}
		}
		for _, fn := range fns {
			if !annotated[fn] {
				t.Errorf("%s: %s has lost its %s annotation", file, fn, Directive)
			}
		}
	}
}

// TestAnnotated pins directive recognition: the directive must sit on
// its own doc-comment line; prose mentioning it does not opt in.
func TestAnnotated(t *testing.T) {
	src := `package p

//dpvet:hotpath
func A() {}

// B mentions //dpvet:hotpath in prose only.
func B() {}

//dpvet:hotpath with trailing words
func C() {}

func D() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"A": true, "B": false, "C": true, "D": false}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if got := Annotated(fd); got != want[fd.Name.Name] {
			t.Errorf("Annotated(%s) = %v, want %v", fd.Name.Name, got, want[fd.Name.Name])
		}
	}
}
