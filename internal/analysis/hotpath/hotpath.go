// Package hotpath implements the dpvet analyzer that keeps annotated
// hot functions allocation-free.
//
// PRs 4–5 made the serving path zero-alloc — the dyadic alias draw
// loop, the pooled simplex pivots, the /v1/sample handler — and
// benchmarks only notice a regression when someone runs them. The
// compiler, by contrast, proves the allocation facts on every build:
// `go build -gcflags=-m` prints exactly which expressions escape to
// the heap. This analyzer cross-checks a source annotation against
// those proofs:
//
//	// SampleWord draws one word ...
//	//
//	//dpvet:hotpath
//	func (d *DyadicAlias) SampleWord(u uint64) int { ... }
//
// Any "escapes to heap"/"moved to heap" diagnostic whose position
// falls inside an annotated function body is a finding. The escape
// data comes from Pass.Shared, computed once per dpvet run (and
// prefetched concurrently with package loading by cmd/dpvet).
//
// Cold paths that must allocate (panic messages, error formatting)
// belong in //go:noinline helpers: inlining attributes a callee's
// allocations to the caller's lines, so an inlined panic guard would
// otherwise show up inside the annotated body. DESIGN.md §12 spells
// out this and the cross-package inlining blind spot.
package hotpath

import (
	"go/ast"
	"go/token"
	"strings"

	"minimaxdp/internal/analysis"
)

// Directive marks a function whose body must stay heap-allocation
// free. It must appear on its own line of the function's doc comment.
const Directive = "//dpvet:hotpath"

// Analyzer is the production instance. There is no scope: the
// annotation itself opts a function in, wherever it lives.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "cross-check //dpvet:hotpath function annotations against go build -gcflags=-m " +
		"escape-analysis diagnostics and flag any heap allocation inside an annotated body",
	Run: run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !Annotated(fd) {
				continue
			}
			esc, err := pass.Shared.Escape()
			if err != nil {
				// One finding, not one per annotation: the whole
				// fact source is unavailable (build failure).
				pass.Reportf(fd.Pos(), "cannot verify %s: %v", Directive, err)
				return
			}
			start := pass.Fset.Position(fd.Pos())
			end := pass.Fset.Position(fd.End())
			for _, a := range esc.Allocations(start.Filename, start.Line, end.Line) {
				pass.ReportPosf(token.Position{Filename: start.Filename, Line: a.Line, Column: a.Col},
					"heap allocation in %s function %s: %s (cold paths that must allocate belong in //go:noinline helpers)",
					Directive, fd.Name.Name, a.Message)
			}
		}
	}
}

// Annotated reports whether a function declaration carries the
// hotpath directive in its doc comment.
func Annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}
