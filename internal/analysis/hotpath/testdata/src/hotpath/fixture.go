// Package fixture seeds hotpath annotations over one allocating and
// one allocation-free function, so the golden test proves the
// analyzer reads the compiler's escape facts rather than guessing.
package fixture

// Alloc breaks its own promise: the annotation says allocation-free,
// the body makes a fresh slice.
//
//dpvet:hotpath
func Alloc(n int) []int {
	return make([]int, n) // want `heap allocation in //dpvet:hotpath function Alloc`
}

// Clean writes in place; the annotation holds.
//
//dpvet:hotpath
func Clean(dst []int) {
	for i := range dst {
		dst[i] = i * 2
	}
}

// Unannotated allocates freely: without the directive it is none of
// hotpath's business.
func Unannotated() *int {
	return new(int)
}
