// Package fixture exercises the errdiscard analyzer: every way of
// silently dropping an error is flagged; handled errors, error-free
// calls, and the fmt/Builder exemptions are not.
package fixture

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func valueAndError() (int, error) { return 0, errors.New("boom") }

func pureValue() int { return 42 }

// BareCall drops the only result.
func BareCall() {
	mayFail() // want `result of call discarded`
}

// BareMultiCall drops a trailing error.
func BareMultiCall() {
	valueAndError() // want `result of call discarded`
}

// DeferredClose drops the error at function exit, where write
// failures surface.
func DeferredClose(f *os.File) {
	defer f.Close() // want `error from deferred call discarded`
}

// GoCall loses the error on another goroutine.
func GoCall() {
	go mayFail() // want `error from goroutine call discarded`
}

// BlankSingle discards via the blank identifier.
func BlankSingle() {
	_ = mayFail() // want `error value assigned to blank identifier`
}

// BlankTuple discards the error position of a tuple.
func BlankTuple() int {
	v, _ := valueAndError() // want `error result 1 of fixture\.valueAndError assigned to blank identifier`
	return v
}

// HandledOK is the control for propagation.
func HandledOK() error {
	if err := mayFail(); err != nil {
		return err
	}
	v, err := valueAndError()
	_ = v
	return err
}

// NoErrorOK: discarding non-error results is not this analyzer's
// business.
func NoErrorOK() {
	pureValue()
	v, exact := 1.5, true
	_ = v
	_ = exact
}

// FmtExemptOK: the fmt print family is exempt by design.
func FmtExemptOK(w *os.File) {
	fmt.Println("hello")
	fmt.Fprintf(w, "x=%d\n", 1)
}

// BuilderExemptOK: strings.Builder and bytes.Buffer never fail.
func BuilderExemptOK() string {
	var b strings.Builder
	b.WriteString("a")
	var buf bytes.Buffer
	buf.WriteByte('b')
	return b.String() + buf.String()
}

// Suppressed shows the justified escape hatch.
func Suppressed(f *os.File) {
	//dpvet:ignore errdiscard read-only handle, Close cannot fail meaningfully
	defer f.Close()
}
