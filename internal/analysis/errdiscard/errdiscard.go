// Package errdiscard implements the dpvet analyzer that forbids
// silently dropped errors in non-test code.
//
// The failure modes this module cares about are quiet ones: an LP
// that returns Infeasible, a mechanism row that fails validation, a
// truncated results file. Discarding such an error converts a loud
// failure into a wrong number in a paper-reproduction table. The
// analyzer flags:
//
//   - expression statements (including go/defer) calling anything
//     whose results include an error, and
//   - assignments that put an error-typed result into the blank
//     identifier (`_ = f()`, `x, _ := g()`).
//
// Exemptions, mirroring errcheck's conventional defaults:
//
//   - the fmt Print/Fprint family — their errors only surface for
//     broken writers, and the binaries here print diagnostics to
//     stdout/stderr or to writers whose Close IS checked;
//   - methods on strings.Builder and bytes.Buffer, which are
//     documented never to return a non-nil error.
//
// Genuinely intentional discards (Close on a read-only file, say)
// carry a //dpvet:ignore errdiscard directive with a justification.
package errdiscard

import (
	"go/ast"
	"go/types"

	"minimaxdp/internal/analysis"
)

// Analyzer is the production instance.
var Analyzer = &analysis.Analyzer{
	Name: "errdiscard",
	Doc: "forbid discarding error results via bare calls, go/defer statements, " +
		"or assignment to the blank identifier in non-test files",
	Run: run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := analysis.Unparen(n.X).(*ast.CallExpr); ok {
					checkBareCall(pass, call, "result of call discarded")
				}
			case *ast.DeferStmt:
				checkBareCall(pass, n.Call, "error from deferred call discarded")
			case *ast.GoStmt:
				checkBareCall(pass, n.Call, "error from goroutine call discarded")
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
}

// checkBareCall flags a call-as-statement whose results include an
// error.
func checkBareCall(pass *analysis.Pass, call *ast.CallExpr, what string) {
	pos, ok := errResultPositions(pass, call)
	if !ok || len(pos) == 0 || exempt(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "%s: %s returns an error; handle it, propagate it, or suppress with //dpvet:ignore errdiscard <why>",
		what, calleeName(pass, call))
}

// checkAssign flags blank-identifier assignment of error values.
func checkAssign(pass *analysis.Pass, assign *ast.AssignStmt) {
	// Multi-value form: x, _ := f().
	if len(assign.Lhs) > 1 && len(assign.Rhs) == 1 {
		call, ok := analysis.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		errPos, ok := errResultPositions(pass, call)
		if !ok || exempt(pass, call) {
			return
		}
		for _, i := range errPos {
			if i < len(assign.Lhs) && isBlank(assign.Lhs[i]) {
				pass.Reportf(assign.Lhs[i].Pos(),
					"error result %d of %s assigned to blank identifier; handle it, propagate it, or suppress with //dpvet:ignore errdiscard <why>",
					i, calleeName(pass, call))
			}
		}
		return
	}
	// Paired form: _ = expr (possibly several pairs).
	if len(assign.Lhs) == len(assign.Rhs) {
		for i, lhs := range assign.Lhs {
			if !isBlank(lhs) {
				continue
			}
			tv, ok := pass.Info.Types[assign.Rhs[i]]
			if !ok || tv.Type == nil || !isErrorType(tv.Type) {
				continue
			}
			if call, ok := analysis.Unparen(assign.Rhs[i]).(*ast.CallExpr); ok && exempt(pass, call) {
				continue
			}
			pass.Reportf(lhs.Pos(),
				"error value assigned to blank identifier; handle it, propagate it, or suppress with //dpvet:ignore errdiscard <why>")
		}
	}
}

// errResultPositions returns the result indices of call that carry an
// error. ok is false when the call's type cannot be determined (or is
// a conversion).
func errResultPositions(pass *analysis.Pass, call *ast.CallExpr) (idx []int, ok bool) {
	tv, found := pass.Info.Types[call]
	if !found || tv.Type == nil || tv.IsType() {
		return nil, false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				idx = append(idx, i)
			}
		}
	default:
		if isErrorType(t) {
			idx = append(idx, 0)
		}
	}
	return idx, true
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// fmtPrinters never carry actionable errors for the writers this
// module uses; see the package comment.
var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func exempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && fmtPrinters[fn.Name()] {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true // documented to never return a non-nil error
	}
	return false
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := analysis.CalleeFunc(pass.Info, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "(" + sig.Recv().Type().String() + ")." + fn.Name()
		}
		if pkg := fn.Pkg(); pkg != nil {
			return pkg.Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
