package errdiscard_test

import (
	"testing"

	"minimaxdp/internal/analysis/analysistest"
	"minimaxdp/internal/analysis/errdiscard"
)

func TestFixture(t *testing.T) {
	diags := analysistest.Run(t, ".", errdiscard.Analyzer, "./testdata/src/errdiscard")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics; analyzer is inert")
	}
}
