// Package escape runs the Go compiler's escape analysis over a
// package pattern and parses the resulting diagnostics into a
// queryable index.
//
// The compiler already proves, on every build, exactly the property
// the hotpath analyzer wants to gate: which expressions are heap
// allocated. `go build -gcflags=-m` prints those proofs as
// file:line:col diagnostics ("x escapes to heap", "moved to heap:
// y"), and — crucially — the build cache replays cached diagnostics
// on repeated builds, so invoking this on a warm tree costs one
// cache-hit build, not a full recompile.
//
// Two attribution caveats, both consequences of inlining, are worth
// knowing when reading findings (DESIGN.md §12 discusses both):
//
//   - when a callee is inlined, allocations on its cold paths (the
//     fmt.Sprintf boxing inside a panic guard, say) are reported at
//     the caller's line — which is precisely why the repo's hot
//     functions route panics through //go:noinline helpers; and
//   - an allocation introduced by a function inlined from another
//     package is reported at the other package's source position and
//     therefore lands outside any annotated body in this package.
//
// One parsing caveat: diagnostic paths are relative to the working
// directory of the `go build` that FIRST compiled the package, and
// cached replays keep those original paths verbatim — so a warm cache
// populated from a different directory yields paths that no current
// directory can resolve by joining. Diagnostics therefore stores
// paths exactly as printed and Allocations matches them against the
// query's absolute path by path suffix (the printed form is always
// the absolute path or a suffix of it: the go tool only relativizes
// paths under the invocation directory).
package escape

import (
	"bytes"
	"fmt"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// An Alloc is one heap-allocation diagnostic from the compiler.
type Alloc struct {
	Line    int
	Col     int
	Message string
}

// Diagnostics indexes heap-allocation diagnostics by file path as
// printed by the compiler (see the package comment on why that is not
// necessarily resolvable against any one directory).
type Diagnostics struct {
	byFile map[string][]Alloc // sorted by (Line, Col)
}

// diagRE matches one "file:line:col: message" compiler diagnostic.
var diagRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// heapMessage reports whether a -m diagnostic records a heap
// allocation (as opposed to inlining decisions, "does not escape"
// proofs, and similar chatter).
func heapMessage(msg string) bool {
	return strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap")
}

// Run builds patterns (resolved relative to dir) with -gcflags=-m and
// returns the parsed heap-allocation diagnostics. A build failure is
// an error carrying the compiler output.
func Run(dir string, patterns ...string) (*Diagnostics, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, patterns...)...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("escape: go build -gcflags=-m: %v\n%s", err, out.String())
	}
	return parse(out.String()), nil
}

func parse(output string) *Diagnostics {
	d := &Diagnostics{byFile: make(map[string][]Alloc)}
	for _, line := range strings.Split(output, "\n") {
		if strings.HasPrefix(line, "#") { // "# minimaxdp/internal/lp" package headers
			continue
		}
		m := diagRE.FindStringSubmatch(line)
		if m == nil || !heapMessage(m[4]) {
			continue
		}
		file := m[1]
		ln, err := strconv.Atoi(m[2])
		if err != nil {
			continue // out-of-range line number; not a real diagnostic
		}
		col, err := strconv.Atoi(m[3])
		if err != nil {
			continue
		}
		d.byFile[file] = append(d.byFile[file], Alloc{Line: ln, Col: col, Message: m[4]})
	}
	for _, allocs := range d.byFile {
		sort.Slice(allocs, func(i, j int) bool {
			if allocs[i].Line != allocs[j].Line {
				return allocs[i].Line < allocs[j].Line
			}
			return allocs[i].Col < allocs[j].Col
		})
	}
	return d
}

// Allocations returns the heap allocations recorded in file (an
// absolute path, as reported by the loader's FileSet) between
// startLine and endLine inclusive, sorted by position. Recorded paths
// match by identity or by path suffix; a multi-component suffix like
// "testdata/src/hotpath/fixture.go" identifies one file per module in
// practice, and a collision could only ever surface spurious findings
// on identically-numbered lines, never hide real ones.
func (d *Diagnostics) Allocations(file string, startLine, endLine int) []Alloc {
	var out []Alloc
	for recorded, allocs := range d.byFile {
		if recorded != file && !strings.HasSuffix(file, "/"+recorded) {
			continue
		}
		for _, a := range allocs {
			if a.Line >= startLine && a.Line <= endLine {
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out
}
