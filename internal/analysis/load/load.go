// Package load resolves Go package patterns and type-checks the
// matched packages using only the standard library.
//
// The exact-arithmetic analyzers in internal/analysis need full
// go/types information (to distinguish a *big.Rat receiver from a
// *Matrix one, or an error result from a bool), but this module is
// deliberately dependency-free, so golang.org/x/tools/go/packages is
// off the table. Instead we do what driver tools did before
// go/packages existed:
//
//  1. shell out to `go list -e -deps -export -json <patterns>` to
//     resolve patterns, file lists, and compiled export data for every
//     dependency (the go command writes export files into the build
//     cache as a side effect);
//  2. parse the matched packages from source with go/parser; and
//  3. type-check them with go/types, importing dependencies through
//     go/importer's gc lookup hook pointed at the export files from
//     step 1.
//
// One Load serves the entire dpvet run: the driver (analysis.Run)
// fans the same parsed, type-checked packages out to every analyzer,
// so the per-package cost — subprocess, parse, type-check — is paid
// once per invocation, not once per analyzer. Parsing is the only
// embarrassingly parallel stage (each file is independent and
// token.FileSet is safe for concurrent use), so Load parses every
// matched file concurrently and then type-checks serially; targets
// never import each other's parsed form — dependencies always come
// from export data — so no inter-target ordering is needed.
//
// Test files (_test.go) are intentionally not loaded: every analyzer
// in this module is specified over non-test code, and the vet
// invariants (exact arithmetic, seeded randomness) do not bind tests.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
)

// Package is one type-checked, pattern-matched package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File // parsed non-test Go files, with comments
	Types      *types.Package
	Info       *types.Info
}

// Result is the outcome of a Load call. Fset is shared by every
// package so diagnostic positions can be printed uniformly. Dir and
// Patterns record what was loaded so that driver-level fact providers
// (the escape-analysis runner behind the hotpath analyzer) can derive
// auxiliary data for exactly the same package set.
type Result struct {
	Fset     *token.FileSet
	Pkgs     []*Package // sorted by import path
	Dir      string     // absolute directory the patterns were resolved in
	Patterns []string   // the patterns as given
}

// listedPackage mirrors the subset of `go list -json` output we
// consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
	Error      *struct {
		Err string
	}
}

// Load resolves patterns relative to dir (any directory inside the
// module) and returns the type-checked packages the patterns matched.
// Dependencies are imported from compiled export data, so only the
// matched packages themselves are parsed from source.
func Load(dir string, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("load: resolving %q: %v", dir, err)
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})

	// Parse every file of every target concurrently: files are
	// independent and FileSet is documented safe for concurrent use.
	parsed, err := parseTargets(fset, targets)
	if err != nil {
		return nil, err
	}

	res := &Result{Fset: fset, Dir: absDir, Patterns: patterns}
	for i, p := range targets {
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typecheck(fset, imp, p, parsed[i])
		if err != nil {
			return nil, err
		}
		res.Pkgs = append(res.Pkgs, pkg)
	}
	sort.Slice(res.Pkgs, func(i, j int) bool {
		return res.Pkgs[i].ImportPath < res.Pkgs[j].ImportPath
	})
	return res, nil
}

// parseTargets parses all files of all target packages concurrently
// and returns them grouped per target, in GoFiles order.
func parseTargets(fset *token.FileSet, targets []*listedPackage) ([][]*ast.File, error) {
	files := make([][]*ast.File, len(targets))
	errs := make([][]error, len(targets))
	var wg sync.WaitGroup
	for i, p := range targets {
		files[i] = make([]*ast.File, len(p.GoFiles))
		errs[i] = make([]error, len(p.GoFiles))
		for j, name := range p.GoFiles {
			wg.Add(1)
			go func(i, j int, path string) {
				defer wg.Done()
				files[i][j], errs[i][j] = parser.ParseFile(fset, path, nil, parser.ParseComments)
			}(i, j, filepath.Join(p.Dir, name))
		}
	}
	wg.Wait()
	for i := range errs {
		for _, err := range errs[i] {
			if err != nil {
				return nil, fmt.Errorf("load: %v", err)
			}
		}
	}
	return files, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("load: patterns %v matched no packages", patterns)
	}
	return out, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, p *listedPackage, files []*ast.File) (*Package, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("load: %s: no Go files", p.ImportPath)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
