// Package registry wires the individual dpvet analyzers into the
// suite that cmd/dpvet and the repo-wide regression test both run.
// It lives outside package analysis to keep the framework free of
// imports on its own analyzers.
package registry

import (
	"minimaxdp/internal/analysis"
	"minimaxdp/internal/analysis/ctxfirst"
	"minimaxdp/internal/analysis/errdiscard"
	"minimaxdp/internal/analysis/floatexact"
	"minimaxdp/internal/analysis/floatflow"
	"minimaxdp/internal/analysis/hotpath"
	"minimaxdp/internal/analysis/ignoreaudit"
	"minimaxdp/internal/analysis/load"
	"minimaxdp/internal/analysis/randsource"
	"minimaxdp/internal/analysis/ratmutate"
	"minimaxdp/internal/analysis/ratoverflow"
)

// All returns the full analyzer suite in stable (alphabetical) order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxfirst.Analyzer,
		errdiscard.Analyzer,
		floatexact.Analyzer,
		floatflow.Analyzer,
		hotpath.Analyzer,
		ignoreaudit.Analyzer,
		randsource.Analyzer,
		ratmutate.Analyzer,
		ratoverflow.Analyzer,
	}
}

// Run loads patterns relative to dir and applies the whole suite. The
// typed packages are loaded once and shared across every analyzer;
// hotpath's escape-analysis build is prefetched concurrently with the
// load so neither waits on the other.
func Run(dir string, patterns ...string) ([]analysis.Diagnostic, error) {
	shared := analysis.NewShared(dir, patterns...)
	shared.Prefetch()
	res, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.Run(res, All(), shared), nil
}
