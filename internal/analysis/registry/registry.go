// Package registry wires the individual dpvet analyzers into the
// suite that cmd/dpvet and the repo-wide regression test both run.
// It lives outside package analysis to keep the framework free of
// imports on its own analyzers.
package registry

import (
	"minimaxdp/internal/analysis"
	"minimaxdp/internal/analysis/ctxfirst"
	"minimaxdp/internal/analysis/errdiscard"
	"minimaxdp/internal/analysis/floatexact"
	"minimaxdp/internal/analysis/load"
	"minimaxdp/internal/analysis/randsource"
	"minimaxdp/internal/analysis/ratmutate"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxfirst.Analyzer,
		errdiscard.Analyzer,
		floatexact.Analyzer,
		randsource.Analyzer,
		ratmutate.Analyzer,
	}
}

// Run loads patterns relative to dir and applies the whole suite.
func Run(dir string, patterns ...string) ([]analysis.Diagnostic, error) {
	res, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.Run(res, All()), nil
}
