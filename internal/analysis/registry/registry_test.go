package registry_test

import (
	"strings"
	"testing"

	"minimaxdp/internal/analysis/registry"
)

// TestRepoTreeClean is the vet gate in test form: the production
// analyzer suite must report zero findings over the whole module.
// Wildcard patterns skip testdata, so the deliberately violating
// fixture packages stay out of this run.
func TestRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	diags, err := registry.Run(".", "minimaxdp/...")
	if err != nil {
		t.Fatalf("running dpvet suite: %v", err)
	}
	if len(diags) > 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString("\n  " + d.String())
		}
		t.Fatalf("dpvet found %d violation(s) in the repo tree:%s", len(diags), b.String())
	}
}

// TestSuiteComposition pins the analyzer roster so a refactor cannot
// silently drop a check from the CI gate.
func TestSuiteComposition(t *testing.T) {
	want := map[string]bool{
		"ctxfirst": true, "errdiscard": true, "floatexact": true,
		"floatflow": true, "hotpath": true, "ignoreaudit": true,
		"randsource": true, "ratmutate": true, "ratoverflow": true,
	}
	got := registry.All()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q in suite", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}
