// Package ratoverflow implements the dpvet analyzer that enforces the
// overflow-fallback boundary of internal/rational's fixed-width
// rational (the ROADMAP item paired with the Small fast path).
//
// big.Rat never overflows; int64 does, silently. A fixed-width
// rational kernel is therefore only sound under a discipline the
// compiler cannot check:
//
//   - every raw fixed-width arithmetic op (int64/uint64 +, −, ·, /,
//     %, shifts, unary minus, ++/−−) lives either in a named checked
//     kernel (addChecked, mulChecked, ... — tiny functions whose whole
//     job is to detect overflow) or in a function that visibly falls
//     back to big.Rat (calls into math/big or produces a
//     big.Rat-carrying value), and
//   - Small and Wide values are built only by the checked
//     constructors: a non-empty Small{...} or Wide{...} composite
//     literal anywhere else bypasses sign normalization and gcd
//     reduction.
//
// The scope is matched by import-path suffix, so the golden fixture
// under testdata/src/ratoverflow/internal/rational exercises exactly
// the production configuration.
package ratoverflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"minimaxdp/internal/analysis"
)

// DefaultScope covers internal/rational (and, by suffix matching, the
// fixture mirror under testdata) plus internal/lp, whose revised
// simplex carries the hybrid Small/big.Rat scalar (revised.go) and is
// therefore bound by the same raw-arithmetic discipline.
var DefaultScope = []string{"internal/rational", "internal/lp"}

// DefaultKernels names the only functions allowed to perform raw
// fixed-width arithmetic. Keep in lockstep with internal/rational's
// checked-kernel section.
var DefaultKernels = []string{
	"addChecked", "subChecked", "mulChecked", "negChecked",
	"abs64", "divExact", "gcd64", "mul64To128",
	// 128-bit limb kernels backing the Wide tier. None of them can
	// reach the big.Rat fallback themselves (they ARE the bottom of
	// the ladder), so they must be named here like their 64-bit
	// siblings.
	"negAbs64", "shl128", "shr128", "div128by64", "div128",
}

// DefaultConstructors names the functions allowed to write non-empty
// Small and Wide composite literals.
var DefaultConstructors = []string{"MakeSmall", "makeWide", "wideFromParts"}

// Analyzer is the production instance.
var Analyzer = New(DefaultScope, DefaultKernels, DefaultConstructors)

// New builds a ratoverflow analyzer with custom allowlists; tests
// point it at fixture packages.
func New(scope, kernels, constructors []string) *analysis.Analyzer {
	a := &analyzer{
		scope:        scope,
		kernels:      toSet(kernels),
		constructors: toSet(constructors),
	}
	return &analysis.Analyzer{
		Name: "ratoverflow",
		Doc: "confine raw int64/uint64 arithmetic in internal/rational to the checked " +
			"overflow kernels or to functions that fall back to big.Rat, and require Small " +
			"values to come from the checked constructors",
		Run: a.run,
	}
}

func toSet(names []string) map[string]bool {
	s := make(map[string]bool, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

type analyzer struct {
	scope        []string
	kernels      map[string]bool
	constructors map[string]bool
}

func (a *analyzer) run(pass *analysis.Pass) {
	if !analysis.PathMatches(pass.Pkg.Path(), a.scope) {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				a.checkFunc(pass, d)
			case *ast.GenDecl:
				// Package-level initializers run outside any
				// constructor: only empty literals are fine.
				ast.Inspect(d, func(n ast.Node) bool {
					if cl, ok := n.(*ast.CompositeLit); ok {
						a.checkLiteral(pass, cl, "package-level initializer")
					}
					return true
				})
			}
		}
	}
}

func (a *analyzer) checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	name := fd.Name.Name
	kernel := a.kernels[name]
	ctor := a.constructors[name]
	fallback := kernel || fallsBack(pass, fd.Body)
	seenLines := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			if !ctor {
				a.checkLiteral(pass, x, name)
			}
		case *ast.BinaryExpr:
			switch x.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
				token.SHL, token.SHR:
				if isFixedWidth(pass.Info, x) {
					a.reportArith(pass, seenLines, x.OpPos, name, kernel, fallback)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.SUB && isFixedWidth(pass.Info, x) {
				a.reportArith(pass, seenLines, x.OpPos, name, kernel, fallback)
			}
		case *ast.IncDecStmt:
			if isFixedWidth(pass.Info, x.X) {
				a.reportArith(pass, seenLines, x.TokPos, name, kernel, fallback)
			}
		case *ast.AssignStmt:
			switch x.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
				token.QUO_ASSIGN, token.REM_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN:
				if len(x.Lhs) == 1 && isFixedWidth(pass.Info, x.Lhs[0]) {
					a.reportArith(pass, seenLines, x.TokPos, name, kernel, fallback)
				}
			}
		}
		return true
	})
}

// reportArith emits at most one finding per source line: one
// expression such as a*d + b*c is one boundary violation, not three.
func (a *analyzer) reportArith(pass *analysis.Pass, seen map[string]bool, pos token.Pos, fn string, kernel, fallback bool) {
	if kernel || fallback {
		return
	}
	p := pass.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
	if seen[key] {
		return
	}
	seen[key] = true
	pass.Reportf(pos,
		"unchecked fixed-width arithmetic in %s: move it into a checked kernel (%v) or put the function on a big.Rat fallback path",
		fn, keysOf(a.kernels))
}

func (a *analyzer) checkLiteral(pass *analysis.Pass, cl *ast.CompositeLit, where string) {
	if len(cl.Elts) == 0 {
		return // the zero value is a legal 0/1
	}
	tv, ok := pass.Info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return
	}
	switch named.Obj().Name() {
	case "Small", "Wide":
	default:
		return
	}
	pass.Reportf(cl.Pos(),
		"non-empty %s literal in %s bypasses the checked constructors (%v): sign normalization and gcd reduction are skipped",
		named.Obj().Name(), where, keysOf(a.constructors))
}

// fallsBack reports whether a function body visibly reaches the
// big.Rat fallback: it calls into math/big or produces a value whose
// type carries big.Rat/big.Int. Raw fixed-width arithmetic is
// tolerated on such paths — overflow there changes speed, not
// results, because the exact value is recomputed.
func fallsBack(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.CalleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math/big" {
			found = true
			return false
		}
		if tv, ok := pass.Info.Types[call]; ok && tv.Type != nil && analysis.ContainsBigExact(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isFixedWidth(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.Value != nil {
		return false // constant-folded: overflow is a compile error, not silent
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int64, types.Uint64:
		return true
	}
	return false
}

func keysOf(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	// Deterministic order for diagnostics and fixtures.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
