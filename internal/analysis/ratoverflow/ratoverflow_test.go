package ratoverflow

import (
	"testing"

	"minimaxdp/internal/analysis"
	"minimaxdp/internal/analysis/analysistest"
	"minimaxdp/internal/analysis/load"
)

func TestFixture(t *testing.T) {
	diags := analysistest.Run(t, ".", Analyzer, "./testdata/src/ratoverflow/...")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics; the boundary check is inert")
	}
}

func TestOutOfScope(t *testing.T) {
	res, err := load.Load(".", "./testdata/src/ratoverflow/...")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	a := New([]string{"no/such/package"}, DefaultKernels, DefaultConstructors)
	if diags := analysis.Run(res, []*analysis.Analyzer{a}, nil); len(diags) != 0 {
		t.Fatalf("out-of-scope run reported %d diagnostics: %v", len(diags), diags)
	}
}

// TestScopeCoversHybridKernels pins the analyzer scope: the hybrid
// Small/big.Rat scalar lives in internal/lp (revised.go), so both
// packages must stay policed. Shrinking this list silently reopens
// the raw-arithmetic hole.
func TestScopeCoversHybridKernels(t *testing.T) {
	for _, p := range []string{"minimaxdp/internal/rational", "minimaxdp/internal/lp"} {
		if !analysis.PathMatches(p, DefaultScope) {
			t.Errorf("%s missing from ratoverflow.DefaultScope; unchecked int64 arithmetic there would overflow silently", p)
		}
	}
	if len(DefaultScope) != 2 {
		t.Errorf("DefaultScope = %v, want exactly the two exact-arithmetic packages", DefaultScope)
	}
}

// TestKernelAllowlistStaysMinimal pins the kernel and constructor
// allowlists: every entry is a hole in the overflow fence, so growing
// either list must be a reviewed, deliberate change.
func TestKernelAllowlistStaysMinimal(t *testing.T) {
	wantKernels := map[string]bool{
		"addChecked": true, "subChecked": true, "mulChecked": true, "negChecked": true,
		"abs64": true, "divExact": true, "gcd64": true, "mul64To128": true,
		"negAbs64": true, "shl128": true, "shr128": true, "div128by64": true, "div128": true,
	}
	if len(DefaultKernels) != len(wantKernels) {
		t.Fatalf("DefaultKernels = %v, want exactly %v", DefaultKernels, wantKernels)
	}
	for _, k := range DefaultKernels {
		if !wantKernels[k] {
			t.Fatalf("unexpected kernel %q in DefaultKernels", k)
		}
	}
	wantCtors := map[string]bool{"MakeSmall": true, "makeWide": true, "wideFromParts": true}
	if len(DefaultConstructors) != len(wantCtors) {
		t.Fatalf("DefaultConstructors = %v, want exactly %v", DefaultConstructors, wantCtors)
	}
	for _, c := range DefaultConstructors {
		if !wantCtors[c] {
			t.Fatalf("unexpected constructor %q in DefaultConstructors", c)
		}
	}
}
