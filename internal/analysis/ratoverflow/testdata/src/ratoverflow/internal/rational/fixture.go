// Package rational is a miniature of internal/rational that seeds
// the overflow-boundary violations the ratoverflow analyzer must
// catch, beside the checked and fallback patterns it must pass. Its
// import path ends in internal/rational on purpose: suffix matching
// makes the fixture run under the production scope.
package rational

import (
	"math"
	"math/big"
)

// Small mirrors the production checked fixed-width rational.
type Small struct{ num, den int64 }

// MakeSmall is the checked constructor (allowlisted): the only place
// a non-empty Small literal is legal.
func MakeSmall(num, den int64) (Small, bool) {
	if den == 0 {
		return Small{}, false
	}
	if den < 0 {
		n, ok := negChecked(num)
		if !ok {
			return Small{}, false
		}
		d, ok := negChecked(den)
		if !ok {
			return Small{}, false
		}
		num, den = n, d
	}
	return Small{num: num, den: den}, true
}

// Rat is the exact big.Rat fallback.
func (s Small) Rat() *big.Rat { return big.NewRat(s.num, s.den) }

// Add is fully checked: every product and sum goes through a kernel,
// so it passes.
func Add(a, b Small) (Small, bool) {
	n1, ok := mulChecked(a.num, b.den)
	if !ok {
		return Small{}, false
	}
	n2, ok := mulChecked(b.num, a.den)
	if !ok {
		return Small{}, false
	}
	n, ok := addChecked(n1, n2)
	if !ok {
		return Small{}, false
	}
	d, ok := mulChecked(a.den, b.den)
	if !ok {
		return Small{}, false
	}
	return MakeSmall(n, d)
}

// AddFallback performs raw arithmetic but visibly lands on the
// big.Rat path, which exempts the function: overflow here changes
// speed, not results.
func AddFallback(a, b Small) *big.Rat {
	hint := a.num * b.den
	_ = hint
	return new(big.Rat).Add(a.Rat(), b.Rat())
}

// UncheckedAdd wraps silently on overflow: the finding ratoverflow
// exists for. One finding per line, not per operator.
func UncheckedAdd(a, b Small) Small {
	n := a.num*b.den + b.num*a.den // want `unchecked fixed-width arithmetic`
	d := a.den * b.den             // want `unchecked fixed-width arithmetic`
	s, _ := MakeSmall(n, d)
	return s
}

// Raw bypasses sign normalization and gcd reduction.
func Raw(n, d int64) Small {
	return Small{num: n, den: d} // want `bypasses the checked constructors`
}

// Bump mutates with an unchecked increment.
func Bump(s Small) Small {
	s.num++ // want `unchecked fixed-width arithmetic`
	return s
}

// Halve shifts without a width check.
func Halve(s Small) Small {
	out, _ := MakeSmall(s.num, s.den)
	out.den >>= 1 // want `unchecked fixed-width arithmetic`
	return out
}

// Wide mirrors the production 128-bit rational tier.
type Wide struct {
	neg                bool
	nhi, nlo, dhi, dlo uint64
}

// wideFromParts is the checked Wide constructor (allowlisted): the
// only place a non-empty Wide literal is legal.
func wideFromParts(neg bool, nhi, nlo, dhi, dlo uint64) (Wide, bool) {
	if dhi == 0 && dlo == 0 {
		return Wide{}, false
	}
	if nhi == 0 && nlo == 0 {
		return Wide{}, true
	}
	return Wide{neg: neg, nhi: nhi, nlo: nlo, dhi: dhi, dlo: dlo}, true
}

// shl128 is an allowlisted 128-bit limb kernel: raw shifts are its
// whole job, like the 64-bit checked kernels.
func shl128(hi, lo uint64, s uint) (uint64, uint64) {
	if s >= 64 {
		return lo << (s - 64), 0
	}
	return hi<<s | lo>>(64-s), lo << s
}

// RawWide bypasses the checked Wide constructor, skipping the
// canonical-zero and reduction invariants.
func RawWide(nlo, dlo uint64) Wide {
	return Wide{nlo: nlo, dlo: dlo} // want `bypasses the checked constructors`
}

// UncheckedWideDouble wraps silently on limb overflow.
func UncheckedWideDouble(w Wide) Wide {
	out, _ := wideFromParts(w.neg, w.nhi*2, w.nlo*2, w.dhi, w.dlo) // want `unchecked fixed-width arithmetic`
	return out
}

func negChecked(a int64) (int64, bool) {
	if a == math.MinInt64 {
		return 0, false
	}
	return -a, true
}

func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}
