// Package ignoreaudit declares the analyzer identity for the
// driver-level //dpvet:ignore audit.
//
// The audit itself cannot run inside a normal analyzer pass: only the
// driver (analysis.Run) sees which directives actually suppressed a
// finding, because suppression happens after every analyzer has
// reported. This package therefore contributes a no-op Run — its job
// is to make the audit addressable like any other analyzer: present
// in `dpvet -list`, selectable with `-run ignoreaudit`, and
// documented in one place.
//
// The audit enforces two rules, so the suppression inventory can only
// shrink:
//
//   - stale: a directive naming an analyzer that ran and suppressed
//     none of its findings is reported (analyzers outside the current
//     -run subset are skipped, so a subset run never misjudges a
//     directive it could not have exercised);
//   - justified: a directive whose analyzer list is not followed by a
//     justification is reported. Unjustified directives still
//     suppress — suppression stays monotone — but the hygiene debt is
//     a finding until the reason is written down.
//
// A directive that must outlive its current usefulness can name
// ignoreaudit itself: //dpvet:ignore <analyzer>,ignoreaudit <why>.
package ignoreaudit

import "minimaxdp/internal/analysis"

// Analyzer is the audit's identity. Run is a no-op; see the package
// comment.
var Analyzer = &analysis.Analyzer{
	Name: analysis.IgnoreAuditName,
	Doc: "flag //dpvet:ignore directives that suppressed no finding of an analyzer in the " +
		"current run, and directives lacking a justification (the audit itself executes in " +
		"the driver, which alone sees directive usage)",
	Run: func(*analysis.Pass) {},
}
