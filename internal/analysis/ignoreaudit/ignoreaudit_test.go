package ignoreaudit_test

import (
	"strings"
	"testing"

	"minimaxdp/internal/analysis"
	"minimaxdp/internal/analysis/analysistest"
	"minimaxdp/internal/analysis/floatexact"
	"minimaxdp/internal/analysis/ignoreaudit"
	"minimaxdp/internal/analysis/load"
)

// TestFixture drives the audit through a real suppression workload: a
// floatexact instance scoped to the fixture produces the findings the
// directives claim to suppress, and the audit judges each directive
// against actual usage.
func TestFixture(t *testing.T) {
	fe := floatexact.New([]string{"testdata/src/ignoreaudit"})
	diags := analysistest.RunSuite(t, ".",
		[]*analysis.Analyzer{fe, ignoreaudit.Analyzer},
		"./testdata/src/ignoreaudit")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics; the directive audit is inert")
	}
	for _, d := range diags {
		if d.Analyzer != analysis.IgnoreAuditName {
			t.Errorf("non-audit diagnostic leaked through a directive: %v", d)
		}
	}
}

// TestSubsetRunSkipsUnexercisedDirectives pins the no-false-stale
// rule: when floatexact does not run, the audit must not call its
// directives stale — it could not know. Only the missing-justification
// finding (a static property) survives.
func TestSubsetRunSkipsUnexercisedDirectives(t *testing.T) {
	res, err := load.Load(".", "./testdata/src/ignoreaudit")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := analysis.Run(res, []*analysis.Analyzer{ignoreaudit.Analyzer}, nil)
	if len(diags) != 1 {
		t.Fatalf("audit-only run reported %d diagnostics, want 1 (the bare directive): %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "no justification") {
		t.Fatalf("audit-only run reported %q, want the missing-justification finding", diags[0].Message)
	}
}
