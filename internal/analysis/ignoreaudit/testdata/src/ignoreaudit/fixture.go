// Package fixture exercises the driver-level //dpvet:ignore audit:
// one directive in each state — used and justified (silent), stale,
// bare, and excused via the ignoreaudit escape hatch.
package fixture

import (
	"math/big"

	"minimaxdp/internal/rational"
)

// Render carries the healthy case: the directive suppresses a real
// floatexact finding on the next line and says why, so the audit
// stays silent about it.
func Render(a *big.Rat) float64 {
	//dpvet:ignore floatexact fixture: sanctioned display conversion
	return rational.Float(a)
}

// Exact drags a directive that no longer earns its keep: nothing on
// the covered lines produces a floatexact finding.
//
//dpvet:ignore floatexact left behind after a refactor // want `stale //dpvet:ignore directive`
func Exact(a, b *big.Rat) *big.Rat {
	return rational.Add(a, b)
}

// Bare omits the justification; the directive is stale too, so the
// audit reports both defects.
//
//dpvet:ignore floatexact // want `no justification` `stale //dpvet:ignore directive`
func Bare(a *big.Rat) *big.Rat {
	return rational.Neg(a)
}

// Kept shows the escape hatch: a deliberately retained directive
// names ignoreaudit alongside the suppressed analyzer, which
// suppresses the audit's own stale finding.
//
//dpvet:ignore floatexact,ignoreaudit retained while the display path is reworked
func Kept(a, b *big.Rat) *big.Rat {
	return rational.Mul(a, b)
}
