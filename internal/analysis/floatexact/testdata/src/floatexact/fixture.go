// Package fixture exercises the floatexact analyzer: every construct
// that crosses the rational/float boundary inside an exact-arithmetic
// package must be flagged, exact rational operations must not.
package fixture

import (
	"math/big"

	"minimaxdp/internal/rational"
)

// LeakFloat loses exactness through the rational package's bridge.
func LeakFloat(a *big.Rat) float64 {
	return rational.Float(a) // want `call to rational\.Float in exact-arithmetic package`
}

// LeakFromFloat smuggles a float into the exact pipeline.
func LeakFromFloat(f float64) *big.Rat {
	r, err := rational.FromFloat(f) // want `call to rational\.FromFloat in exact-arithmetic package`
	if err != nil {
		return rational.Zero()
	}
	return r
}

// ConvertInt is flagged even for integer operands: float64 must not
// appear in exact code at all.
func ConvertInt(n int) float64 {
	return float64(n) // want `float64 conversion in exact-arithmetic package`
}

// ConvertFloat32 covers the float32 kind.
func ConvertFloat32(n int) float32 {
	return float32(n) // want `float32 conversion in exact-arithmetic package`
}

// MethodEscape calls big.Rat's own float accessor directly.
func MethodEscape(a *big.Rat) float64 {
	f, exact := a.Float64() // want `call to \(\*math/big\.Rat\)\.Float64`
	_ = exact
	return f
}

// ExactOnly is the control: pure rational arithmetic stays silent.
func ExactOnly(a, b *big.Rat) *big.Rat {
	return rational.Add(rational.Mul(a, b), rational.One())
}

// Suppressed shows a justified escape hatch.
func Suppressed(a *big.Rat) float64 {
	//dpvet:ignore floatexact display-only rendering helper, exactness not required here
	return rational.Float(a)
}
