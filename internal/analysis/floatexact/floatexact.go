// Package floatexact implements the dpvet analyzer that fences the
// exact-arithmetic core of this module off from floating point.
//
// Theorem 2's derivability test ((1+α²)·x₂ − α·(x₁+x₃) ≥ 0) and the
// LP optima of §2.4.3/§2.5 are exact rational statements; one float64
// round-trip inside the solver turns every downstream "equality" into
// an approximation and silently voids the optimality claims. The
// analyzer therefore rejects, inside the designated exact packages,
// every construct that crosses the rational/float boundary:
//
//   - calls to rational.Float and rational.FromFloat,
//   - calls to (*big.Rat).Float64 / (*big.Rat).Float32, and
//   - conversions to float64 or float32.
//
// Packages that are float-native by design — internal/laplace
// (transcendental noise densities), internal/stats (Monte-Carlo
// estimators), internal/sample — are simply outside Scope.
//
// internal/lp is also outside Scope, but for a different reason: it
// is guarded by the flow-sensitive floatflow analyzer instead. lp
// legitimately hosts the float64 shadow simplex (floatsimplex.go)
// whose only sanctioned export is a []int candidate basis; a blunt
// "no float syntax" rule would need a wholesale per-file exemption
// there, which is exactly the hole floatflow's taint tracking closes.
// See DESIGN.md §12.
package floatexact

import (
	"go/ast"
	"go/types"

	"minimaxdp/internal/analysis"
)

// DefaultScope lists the exact-arithmetic packages (matched by import
// path or "/"-suffix). internal/lp is deliberately absent: floatflow
// owns it (see the package comment).
var DefaultScope = []string{
	"minimaxdp/internal/derive",
	"minimaxdp/internal/consumer",
	"minimaxdp/internal/matrix",
	// The serving engine caches exact artifacts (mechanisms,
	// transitions, LP optima) and must stay exact everywhere —
	// including its samplers: the dyadic alias tables (sampler.go,
	// shard.go) are built from the rational rows by integer
	// quantization with a rational certificate, so not even the draw
	// path needs a float exemption. See DESIGN.md §11.
	"minimaxdp/internal/engine",
	// The compare workbench: baseline mechanism builders (staircase and
	// truncated Laplace are exact-rational constructions by design) and
	// the loss registry behind every consumer-spec codec.
	"minimaxdp/internal/baseline",
	"minimaxdp/internal/loss",
	// The analyzer's own fixture package counts as exact-arithmetic so
	// that the production binary demonstrably fires when pointed at it
	// (`go run ./cmd/dpvet ./internal/analysis/floatexact/testdata/src/floatexact`).
	// Wildcard patterns never descend into testdata, so this entry is
	// inert for ./... runs.
	"testdata/src/floatexact",
}

// Analyzer is the production instance.
var Analyzer = New(DefaultScope)

// New builds a floatexact analyzer over a custom scope; tests point it
// at fixture packages.
//
// There is deliberately no per-file allowlist anymore: the historical
// AllowFiles mechanism (floatsimplex.go rode it) exempted whole files
// from every rule, float escapes included. Packages that need
// float/exact coexistence now move to floatflow's taint scope, where
// only the sanctioned flows pass.
func New(scope []string) *analysis.Analyzer {
	a := &analyzer{scope: scope}
	return &analysis.Analyzer{
		Name: "floatexact",
		Doc: "forbid float64/float32 escapes (rational.Float, rational.FromFloat, " +
			"(*big.Rat).Float64, float conversions) inside exact-arithmetic packages",
		Run: a.run,
	}
}

type analyzer struct {
	scope []string
}

func (a *analyzer) run(pass *analysis.Pass) {
	if !analysis.PathMatches(pass.Pkg.Path(), a.scope) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			a.checkCall(pass, call)
			return true
		})
	}
}

func (a *analyzer) checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Conversions: float64(x), float32(x).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok &&
			(b.Kind() == types.Float64 || b.Kind() == types.Float32) {
			pass.Reportf(call.Pos(),
				"%s conversion in exact-arithmetic package %s (keep the pipeline on *big.Rat; see DESIGN.md §7)",
				b.Name(), pass.Pkg.Path())
		}
		return
	}
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	// Boundary helpers of the rational package.
	if pkg := fn.Pkg(); pkg != nil && analysis.PathMatches(pkg.Path(), []string{"internal/rational"}) {
		if fn.Name() == "Float" || fn.Name() == "FromFloat" {
			pass.Reportf(call.Pos(),
				"call to rational.%s in exact-arithmetic package %s (rational↔float bridges are allowed only in display and Monte-Carlo code)",
				fn.Name(), pass.Pkg.Path())
		}
		return
	}
	// Direct (*big.Rat).Float64 / Float32 method calls.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
		analysis.IsBigRat(sig.Recv().Type()) &&
		(fn.Name() == "Float64" || fn.Name() == "Float32") {
		pass.Reportf(call.Pos(),
			"call to (*math/big.Rat).%s in exact-arithmetic package %s (exactness is lost at this point)",
			fn.Name(), pass.Pkg.Path())
	}
}
