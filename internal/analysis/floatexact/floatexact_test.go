package floatexact_test

import (
	"testing"

	"minimaxdp/internal/analysis"
	"minimaxdp/internal/analysis/analysistest"
	"minimaxdp/internal/analysis/floatexact"
	"minimaxdp/internal/analysis/load"
)

// TestFixture runs the analyzer over the fixture package, scoped so
// the fixture's import path counts as exact-arithmetic, and checks
// diagnostics against the // want annotations.
func TestFixture(t *testing.T) {
	a := floatexact.New([]string{"testdata/src/floatexact"}, nil)
	diags := analysistest.Run(t, ".", a, "./testdata/src/floatexact")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics; analyzer is inert")
	}
}

// TestOutOfScope checks that the fixture is silent when the scope
// names only real exact-arithmetic packages: floatexact must never
// fire outside its fence.
func TestOutOfScope(t *testing.T) {
	a := floatexact.New([]string{"minimaxdp/internal/lp"}, nil)
	if got := rawRun(t, a); len(got) != 0 {
		t.Fatalf("out-of-scope package produced diagnostics: %v", got)
	}
}

// TestAllowFile checks the per-file allowlist: with the fixture file
// allowlisted, every finding disappears.
func TestAllowFile(t *testing.T) {
	a := floatexact.New([]string{"testdata/src/floatexact"}, []string{"fixture.go"})
	if got := rawRun(t, a); len(got) != 0 {
		t.Fatalf("allowlisted file produced diagnostics: %v", got)
	}
}

// TestAllowlistStaysMinimal is a change detector on the production
// exemption list. The engine's sampler.go earned its way OFF this
// list when the dyadic alias rewrite made the draw path exact;
// re-adding it (or any engine sampler file) would silently reopen a
// float hole in the exact fence, so growth must be a deliberate,
// test-acknowledged decision.
func TestAllowlistStaysMinimal(t *testing.T) {
	want := []string{"floatsimplex.go"}
	got := floatexact.DefaultAllowFiles
	if len(got) != len(want) {
		t.Fatalf("DefaultAllowFiles = %v, want exactly %v; update this test only with a documented reason (DESIGN.md §11)", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DefaultAllowFiles[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestEngineSamplerInScope pins the other half of the same contract:
// the engine package (home of sampler.go and shard.go) is inside the
// analyzer's scope, so the zero-findings repo gate
// (registry.TestRepoTreeClean) actively proves the hot sampling path
// float-free.
func TestEngineSamplerInScope(t *testing.T) {
	if !analysis.PathMatches("minimaxdp/internal/engine", floatexact.DefaultScope) {
		t.Fatal("minimaxdp/internal/engine missing from floatexact.DefaultScope")
	}
}

// rawRun applies the analyzer to the fixture without consulting want
// annotations.
func rawRun(t *testing.T, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	res, err := load.Load(".", "./testdata/src/floatexact")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return analysis.Run(res, []*analysis.Analyzer{a})
}
