package floatexact_test

import (
	"testing"

	"minimaxdp/internal/analysis"
	"minimaxdp/internal/analysis/analysistest"
	"minimaxdp/internal/analysis/floatexact"
	"minimaxdp/internal/analysis/load"
)

// TestFixture runs the analyzer over the fixture package, scoped so
// the fixture's import path counts as exact-arithmetic, and checks
// diagnostics against the // want annotations.
func TestFixture(t *testing.T) {
	a := floatexact.New([]string{"testdata/src/floatexact"})
	diags := analysistest.Run(t, ".", a, "./testdata/src/floatexact")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics; analyzer is inert")
	}
}

// TestOutOfScope checks that the fixture is silent when the scope
// names only real exact-arithmetic packages: floatexact must never
// fire outside its fence.
func TestOutOfScope(t *testing.T) {
	a := floatexact.New([]string{"minimaxdp/internal/derive"})
	if got := rawRun(t, a); len(got) != 0 {
		t.Fatalf("out-of-scope package produced diagnostics: %v", got)
	}
}

// TestScopeHandoff pins the division of labor with floatflow. The
// engine package (home of sampler.go and shard.go) stays inside
// floatexact's blunt fence, so the zero-findings repo gate
// (registry.TestRepoTreeClean) actively proves the hot sampling path
// float-free. internal/lp, by contrast, must stay OUT: it hosts the
// sanctioned float64 shadow simplex and is guarded flow-sensitively
// by floatflow. Re-adding lp here would double-report its every float
// and defeat the taint model; dropping engine would open a hole.
func TestScopeHandoff(t *testing.T) {
	if !analysis.PathMatches("minimaxdp/internal/engine", floatexact.DefaultScope) {
		t.Fatal("minimaxdp/internal/engine missing from floatexact.DefaultScope")
	}
	if analysis.PathMatches("minimaxdp/internal/lp", floatexact.DefaultScope) {
		t.Fatal("minimaxdp/internal/lp is back in floatexact.DefaultScope; it belongs to floatflow (DESIGN.md §12)")
	}
	// The compare workbench's packages are exact-rational by design:
	// the baseline builders (staircase, truncated Laplace) feed gap
	// arithmetic that must be a true equality at the Theorem 1 oracle,
	// and the loss registry is instantiated into every LP objective.
	for _, p := range []string{
		"minimaxdp/internal/baseline",
		"minimaxdp/internal/loss",
	} {
		if !analysis.PathMatches(p, floatexact.DefaultScope) {
			t.Errorf("%s missing from floatexact.DefaultScope; a float literal there would corrupt exact gaps", p)
		}
	}
}

// rawRun applies the analyzer to the fixture without consulting want
// annotations.
func rawRun(t *testing.T, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	res, err := load.Load(".", "./testdata/src/floatexact")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return analysis.Run(res, []*analysis.Analyzer{a}, nil)
}
