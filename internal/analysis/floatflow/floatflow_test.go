package floatflow

import (
	"testing"

	"minimaxdp/internal/analysis"
	"minimaxdp/internal/analysis/analysistest"
	"minimaxdp/internal/analysis/load"
)

func TestFixture(t *testing.T) {
	diags := analysistest.Run(t, ".", Analyzer, "./testdata/src/floatflow")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics; the taint engine is inert")
	}
}

func TestOutOfScope(t *testing.T) {
	res, err := load.Load(".", "./testdata/src/floatflow")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	a := New([]string{"no/such/package"})
	if diags := analysis.Run(res, []*analysis.Analyzer{a}, nil); len(diags) != 0 {
		t.Fatalf("out-of-scope run reported %d diagnostics: %v", len(diags), diags)
	}
}

// TestLpInScope pins the division of labor with floatexact: lp is
// policed by taint tracking (floats may exist, but may not become
// exact data), not by the syntactic float ban.
func TestLpInScope(t *testing.T) {
	if !analysis.PathMatches("minimaxdp/internal/lp", DefaultScope) {
		t.Fatal("internal/lp left floatflow's scope; the float simplex would be unpoliced")
	}
	for _, p := range []string{
		"minimaxdp/internal/derive",
		"minimaxdp/internal/consumer",
		"minimaxdp/internal/matrix",
		"minimaxdp/internal/engine",
	} {
		if !analysis.PathMatches(p, DefaultScope) {
			t.Fatalf("%s left floatflow's scope", p)
		}
	}
}

// TestServingLayersInScope is a change detector: the artifact store
// (exact rationals on disk — a float sneaking into an encoder would
// persist corrupt artifacts) and the tenant registry (exact privacy
// accounting) must stay inside both the policed scope and the
// exact-world taint boundary.
func TestServingLayersInScope(t *testing.T) {
	for _, p := range []string{
		"minimaxdp/internal/store",
		"minimaxdp/internal/tenant",
	} {
		if !analysis.PathMatches(p, DefaultScope) {
			t.Errorf("%s left floatflow's scope; its rationals would be unpoliced", p)
		}
		if !analysis.PathMatches(p, exactWorld) {
			t.Errorf("%s left floatflow's exact world; tainted floats could cross into it", p)
		}
	}
}

// TestWorkbenchLayersInScope is a change detector for the compare
// workbench packages: the baseline builders construct exact-rational
// mechanisms (a float seed would corrupt every downstream gap), and
// the loss registry is the shared spec codec for every serving
// surface. Both must stay inside the policed scope and the exact-world
// taint boundary.
func TestWorkbenchLayersInScope(t *testing.T) {
	for _, p := range []string{
		"minimaxdp/internal/baseline",
		"minimaxdp/internal/loss",
	} {
		if !analysis.PathMatches(p, DefaultScope) {
			t.Errorf("%s left floatflow's scope; its rationals would be unpoliced", p)
		}
		if !analysis.PathMatches(p, exactWorld) {
			t.Errorf("%s left floatflow's exact world; tainted floats could cross into it", p)
		}
	}
}
