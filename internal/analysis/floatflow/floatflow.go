// Package floatflow implements the flow-sensitive exactness analyzer
// that replaces floatexact's per-file allowlist with taint tracking
// on the typed AST.
//
// The float simplex (internal/lp/floatsimplex.go) exists precisely to
// compute with floats, so a syntactic float ban there is useless; what
// the optimality theorems actually require is that float-derived DATA
// never becomes exact data. floatflow checks that property directly:
//
//   - Sources: every expression whose type carries float32/float64
//     (literals, conversions, rational.Float results,
//     (*big.Rat).Float64 results, float struct fields, ...).
//
//   - Propagation: taint follows explicit data flow — assignments,
//     composite literals, conversions (int64(f) is tainted!), range
//     clauses, copy, returns, and intra-package calls via per-function
//     summaries computed to a fixpoint. Struct fields are tracked
//     per-field, so an int field of a float-carrying struct stays
//     clean until something tainted is stored in it.
//
//   - Declassification: comparisons (==, <, ...) yield untainted
//     booleans. Implicit flows through control dependence are out of
//     scope by design — that is exactly the sanctioned channel: the
//     float simplex may COMPARE floats to choose a pivot, and the
//     resulting []int candidate basis is float-blind even though every
//     index was selected by float comparisons. The basis handoff in
//     floatCandidateBasis therefore passes with no exemption at all.
//
//   - Sinks: (1) any call that produces an exact artifact (a value
//     whose type structurally contains big.Rat/big.Int) from a tainted
//     input — rational.FromFloat(f), (*big.Rat).SetFloat64(f),
//     tableau construction from laundered ints; (2) a tainted value
//     crossing into another exact-core package through a parameter
//     whose type does not itself carry floats (big.NewRat(n, d) with a
//     laundered n, matrix.Set, sample.NewDyadicAlias weights); (3) an
//     exported function returning a tainted non-float-typed value
//     (laundering past the package boundary); (4) a tainted value
//     stored in a package-level variable.
//
// DESIGN.md §12 documents the model, its sanctioned exemption, and
// its known blind spots.
package floatflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"minimaxdp/internal/analysis"
)

// DefaultScope lists the packages whose float flows are policed
// (matched by import path or "/"-suffix). Unlike floatexact — which
// bans float syntax outright and therefore excludes internal/lp —
// floatflow covers lp too: the float simplex is allowed to exist, but
// its only legal export is comparison-selected data.
var DefaultScope = []string{
	"minimaxdp/internal/lp",
	"minimaxdp/internal/derive",
	"minimaxdp/internal/consumer",
	"minimaxdp/internal/matrix",
	"minimaxdp/internal/engine",
	"minimaxdp/internal/store",
	"minimaxdp/internal/tenant",
	"minimaxdp/internal/baseline",
	"minimaxdp/internal/loss",
	// Fixture package; wildcard patterns never descend into testdata,
	// so this entry is inert for ./... runs.
	"testdata/src/floatflow",
}

// exactWorld lists the packages that hold exact artifacts: a tainted
// value crossing into any of them through a float-blind parameter is
// a finding. math/big is the root of the exact world; the internal
// entries are everything downstream of it.
var exactWorld = []string{
	"math/big",
	"internal/rational",
	"internal/matrix",
	"internal/mechanism",
	"internal/derive",
	"internal/consumer",
	"internal/lp",
	"internal/sample",
	"internal/engine",
	"internal/store",
	"internal/tenant",
	"internal/baseline",
	"internal/loss",
}

// Analyzer is the production instance.
var Analyzer = New(DefaultScope)

// New builds a floatflow analyzer over a custom scope; tests point it
// at fixture packages.
func New(scope []string) *analysis.Analyzer {
	a := &analyzer{scope: scope}
	return &analysis.Analyzer{
		Name: "floatflow",
		Doc: "track float-tainted values through assignments, calls, and returns, and " +
			"forbid them from becoming exact data (big.Rat construction, exact-package " +
			"arguments, exported non-float results); comparisons declassify, so the float " +
			"simplex's candidate basis passes without an exemption",
		Run: a.run,
	}
}

type analyzer struct {
	scope []string
}

const maxFixpointRounds = 64

func (a *analyzer) run(pass *analysis.Pass) {
	if !analysis.PathMatches(pass.Pkg.Path(), a.scope) {
		return
	}
	tr := &tracker{
		pass:     pass,
		tainted:  make(map[types.Object]bool),
		retTaint: make(map[*types.Func]bool),
		reported: make(map[token.Pos]bool),
	}
	for round := 0; round < maxFixpointRounds; round++ {
		tr.changed = false
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body != nil {
						tr.walkBody(tr.funcOf(d), d.Body)
					}
				case *ast.GenDecl:
					if d.Tok == token.VAR {
						tr.walkGlobals(d)
					}
				}
			}
		}
		if !tr.changed {
			break
		}
	}
	tr.report()
}

// tracker holds the taint state for one package.
type tracker struct {
	pass *analysis.Pass
	// tainted records objects (locals, params, named results, fields,
	// package vars) that hold float-derived data despite having a
	// non-float type — "laundered" taint. Objects whose type carries
	// float are tainted by type and need no entry.
	tainted map[types.Object]bool
	// retTaint records functions that return laundered taint in at
	// least one non-float-typed result.
	retTaint map[*types.Func]bool
	reported map[token.Pos]bool
	changed  bool
}

func (tr *tracker) funcOf(d *ast.FuncDecl) *types.Func {
	fn, _ := tr.pass.Info.Defs[d.Name].(*types.Func)
	return fn
}

func (tr *tracker) markObj(obj types.Object) {
	if obj == nil || tr.tainted[obj] {
		return
	}
	tr.tainted[obj] = true
	tr.changed = true
}

func (tr *tracker) setRet(fn *types.Func) {
	if fn == nil || tr.retTaint[fn] {
		return
	}
	tr.retTaint[fn] = true
	tr.changed = true
}

func (tr *tracker) objOf(id *ast.Ident) types.Object {
	if obj := tr.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return tr.pass.Info.Defs[id]
}

// ---- type predicates ----

// carrier reports whether t structurally contains float32/float64 (or
// complex). Values of carrier types are tainted by type alone.
func (tr *tracker) carrier(t types.Type) bool {
	return typeHas(t, func(b *types.Basic) bool {
		return b.Info()&(types.IsFloat|types.IsComplex) != 0
	}, make(map[types.Type]bool))
}

// exactArtifact reports whether t structurally contains big.Rat or
// big.Int — the data the exact pipeline's theorems quantify over.
func exactArtifact(t types.Type) bool {
	return analysis.ContainsBigExact(t)
}

// typeHas walks t's structure looking for a basic-type match,
// guarding against reference cycles.
func typeHas(t types.Type, basic func(*types.Basic) bool, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return basic != nil && basic(u)
	case *types.Pointer:
		return typeHas(u.Elem(), basic, seen)
	case *types.Slice:
		return typeHas(u.Elem(), basic, seen)
	case *types.Array:
		return typeHas(u.Elem(), basic, seen)
	case *types.Chan:
		return typeHas(u.Elem(), basic, seen)
	case *types.Map:
		return typeHas(u.Key(), basic, seen) || typeHas(u.Elem(), basic, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeHas(u.Field(i).Type(), basic, seen) {
				return true
			}
		}
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if typeHas(u.At(i).Type(), basic, seen) {
				return true
			}
		}
	}
	return false
}

func (tr *tracker) carrierExpr(e ast.Expr) bool {
	tv, ok := tr.pass.Info.Types[e]
	return ok && tv.Type != nil && tr.carrier(tv.Type)
}

// ---- taint evaluation ----

// taint reports whether e evaluates to float-derived data: either its
// type carries float, or it reads an object holding laundered taint.
func (tr *tracker) taint(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if tr.carrierExpr(e) {
		return true
	}
	switch x := analysis.Unparen(e).(type) {
	case *ast.Ident:
		return tr.tainted[tr.objOf(x)]
	case *ast.SelectorExpr:
		// Field selection is field-sensitive: the int fields of a
		// float-carrying struct stay clean unless something tainted
		// was stored in them.
		return tr.tainted[tr.objOf(x.Sel)]
	case *ast.IndexExpr:
		return tr.taint(x.X)
	case *ast.IndexListExpr:
		return tr.taint(x.X)
	case *ast.StarExpr:
		return tr.taint(x.X)
	case *ast.UnaryExpr:
		return tr.taint(x.X)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			// Comparison results are float-blind: only the branch
			// decision survives, and implicit flows are the
			// sanctioned channel (the candidate-basis exemption).
			return false
		}
		return tr.taint(x.X) || tr.taint(x.Y)
	case *ast.CallExpr:
		return tr.launderedCall(x)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if tr.taint(el) {
				return true
			}
		}
		return false
	case *ast.TypeAssertExpr:
		return tr.taint(x.X)
	case *ast.SliceExpr:
		return tr.taint(x.X)
	case *ast.FuncLit, *ast.BasicLit:
		return false
	}
	return false
}

// launderedCall reports whether a call yields taint in results whose
// types do NOT carry float (by-type carrier results are handled by
// carrierExpr at the use site). Conversions propagate their operand;
// intra-package calls use the fixpoint summary; cross-package and
// indirect calls are conservative: any tainted input taints every
// result.
func (tr *tracker) launderedCall(call *ast.CallExpr) bool {
	info := tr.pass.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return len(call.Args) == 1 && tr.taint(call.Args[0])
	}
	if b := tr.builtinOf(call); b != nil {
		switch b.Name() {
		case "len", "cap", "make", "new", "delete", "clear", "copy", "close",
			"panic", "recover", "print", "println":
			return false
		}
		return tr.anyArgTaint(call)
	}
	fn := analysis.CalleeFunc(info, call)
	if fn != nil && fn.Pkg() == tr.pass.Pkg {
		return tr.retTaint[fn]
	}
	return tr.anyArgTaint(call)
}

func (tr *tracker) builtinOf(call *ast.CallExpr) *types.Builtin {
	id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	b, _ := tr.pass.Info.Uses[id].(*types.Builtin)
	return b
}

// anyArgTaint reports whether any argument — or the method receiver —
// is tainted.
func (tr *tracker) anyArgTaint(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tr.taint(arg) {
			return true
		}
	}
	if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := tr.pass.Info.Selections[sel]; isMethod && tr.taint(sel.X) {
			return true
		}
	}
	return false
}

// ---- propagation (fixpoint walk) ----

// walkBody propagates taint through one function body. fn is nil for
// function literals, whose returns feed no summary (calls through
// function values are handled conservatively instead).
func (tr *tracker) walkBody(fn *types.Func, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			tr.walkBody(nil, x.Body)
			return false
		case *ast.AssignStmt:
			tr.assign(x.Lhs, x.Rhs, x.Tok)
		case *ast.ValueSpec:
			tr.valueSpec(x)
		case *ast.RangeStmt:
			tr.rangeStmt(x)
		case *ast.ReturnStmt:
			tr.returnStmt(fn, x)
		case *ast.CallExpr:
			tr.injectCall(x)
		}
		return true
	})
}

func (tr *tracker) walkGlobals(d *ast.GenDecl) {
	for _, spec := range d.Specs {
		if vs, ok := spec.(*ast.ValueSpec); ok {
			tr.valueSpec(vs)
		}
	}
}

func (tr *tracker) valueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == len(vs.Names) {
		for i, name := range vs.Names {
			if tr.taint(vs.Values[i]) {
				tr.markObj(tr.objOf(name))
			}
		}
		return
	}
	if len(vs.Values) == 1 { // var a, b = f()
		if call, ok := analysis.Unparen(vs.Values[0]).(*ast.CallExpr); ok && tr.launderedCall(call) {
			for _, name := range vs.Names {
				tr.markObj(tr.objOf(name))
			}
		}
	}
}

func (tr *tracker) assign(lhs, rhs []ast.Expr, tok token.Token) {
	if len(lhs) == len(rhs) {
		for i := range lhs {
			t := tr.taint(rhs[i])
			if tok != token.ASSIGN && tok != token.DEFINE {
				// compound op= : comparison tokens cannot appear here,
				// so arithmetic propagation applies.
				t = t || tr.taint(lhs[i])
			}
			if t {
				tr.markLHS(lhs[i])
			}
		}
		return
	}
	if len(rhs) != 1 {
		return
	}
	// Multi-value: v, ok := f() / m[k] / x.(T) / <-ch. Only laundered
	// taint propagates to ALL targets; a tuple that is carrier merely
	// because one member's type has floats does not taint the others.
	switch r := analysis.Unparen(rhs[0]).(type) {
	case *ast.CallExpr:
		if tr.launderedCall(r) {
			for _, l := range lhs {
				tr.markLHS(l)
			}
		}
	case *ast.IndexExpr:
		if tr.taint(r.X) {
			tr.markLHS(lhs[0])
		}
	case *ast.TypeAssertExpr:
		if tr.taint(r.X) {
			tr.markLHS(lhs[0])
		}
	case *ast.UnaryExpr:
		if tr.taint(r.X) {
			tr.markLHS(lhs[0])
		}
	}
}

// markLHS records taint flowing into an assignment target. Index and
// dereference wrappers are stripped so that ft.row[j] taints the row
// FIELD, not the whole struct.
func (tr *tracker) markLHS(lhs ast.Expr) {
	switch x := analysis.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		tr.markObj(tr.objOf(x))
	case *ast.SelectorExpr:
		tr.markObj(tr.objOf(x.Sel))
	case *ast.IndexExpr:
		tr.markLHS(x.X)
	case *ast.StarExpr:
		tr.markLHS(x.X)
	case *ast.SliceExpr:
		tr.markLHS(x.X)
	}
}

func (tr *tracker) rangeStmt(r *ast.RangeStmt) {
	if !tr.taint(r.X) {
		return
	}
	if r.Value != nil {
		tr.markLHS(r.Value)
	}
	if r.Key != nil {
		// Slice/array indices are float-blind; map keys are data.
		if tv, ok := tr.pass.Info.Types[r.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				tr.markLHS(r.Key)
			}
		}
	}
}

func (tr *tracker) returnStmt(fn *types.Func, ret *ast.ReturnStmt) {
	if fn == nil || tr.retTaint[fn] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	results := sig.Results()
	if len(ret.Results) == 0 { // bare return with named results
		for i := 0; i < results.Len(); i++ {
			r := results.At(i)
			if !tr.carrier(r.Type()) && tr.tainted[r] {
				tr.setRet(fn)
				return
			}
		}
		return
	}
	if len(ret.Results) == 1 && results.Len() > 1 { // return f()
		if call, ok := analysis.Unparen(ret.Results[0]).(*ast.CallExpr); ok && tr.launderedCall(call) {
			tr.setRet(fn)
		}
		return
	}
	for i, expr := range ret.Results {
		if i >= results.Len() {
			break
		}
		if !tr.carrier(results.At(i).Type()) && tr.taint(expr) {
			tr.setRet(fn)
			return
		}
	}
}

// injectCall feeds call-site taint into intra-package callees' param
// objects (the fixpoint then re-evaluates the callee's body), and
// models the copy builtin.
func (tr *tracker) injectCall(call *ast.CallExpr) {
	info := tr.pass.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if b := tr.builtinOf(call); b != nil {
		if b.Name() == "copy" && len(call.Args) == 2 && tr.taint(call.Args[1]) {
			tr.markLHS(call.Args[0])
		}
		return
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() != tr.pass.Pkg {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		if np == 0 || !tr.taint(arg) {
			continue
		}
		pi := i
		if pi >= np {
			if !sig.Variadic() {
				continue
			}
			pi = np - 1
		}
		tr.markObj(sig.Params().At(pi))
	}
}

// ---- sinks (report pass) ----

func (tr *tracker) report() {
	for _, file := range tr.pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					tr.reportBody(d)
				}
			case *ast.GenDecl:
				if d.Tok == token.VAR {
					tr.reportGlobalInit(d)
				}
			}
		}
	}
}

func (tr *tracker) reportGlobalInit(d *ast.GenDecl) {
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) != len(vs.Names) {
			continue
		}
		for i, name := range vs.Names {
			obj := tr.objOf(name)
			if obj != nil && !tr.carrier(obj.Type()) && tr.taint(vs.Values[i]) {
				tr.pass.Reportf(name.Pos(),
					"float-tainted value persisted in package-level %s (DESIGN.md §12)", name.Name)
			}
		}
	}
}

func (tr *tracker) reportBody(fd *ast.FuncDecl) {
	fn := tr.funcOf(fd)
	// Calls first: a reported sink call marks tr.reported so the
	// return check can skip it and avoid cascading findings.
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			tr.checkCallSinks(x)
		case *ast.AssignStmt:
			tr.checkGlobalStore(x)
		}
		return true
	})
	if !fd.Name.IsExported() {
		return
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(node ast.Node) bool {
			switch x := node.(type) {
			case *ast.FuncLit:
				return false // returns inside literals are not the decl's exports
			case *ast.ReturnStmt:
				tr.checkExportedReturn(fn, x)
			}
			return true
		})
	}
	walk(fd.Body)
}

// checkCallSinks flags calls that convert taint into exact data: S2
// (producing an exact artifact from a tainted input) and S1 (a
// tainted value crossing into another exact-core package through a
// float-blind parameter). At most one finding per call.
func (tr *tracker) checkCallSinks(call *ast.CallExpr) {
	info := tr.pass.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if tr.builtinOf(call) != nil {
		return
	}
	fn := analysis.CalleeFunc(info, call)
	// S2: exact artifact produced from tainted input.
	if tv, ok := info.Types[call]; ok && tv.Type != nil && exactArtifact(tv.Type) && tr.anyArgTaint(call) {
		name := "function value"
		if fn != nil {
			name = fn.Name()
		}
		tr.reported[call.Pos()] = true
		tr.pass.Reportf(call.Pos(),
			"float-tainted value becomes exact data via call to %s; floats may guide choices through comparisons but must never construct exact artifacts (DESIGN.md §12)",
			name)
		return
	}
	// S1: tainted argument into a float-blind parameter of another
	// exact-core package.
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == tr.pass.Pkg ||
		!analysis.PathMatches(fn.Pkg().Path(), exactWorld) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if sel, okSel := analysis.Unparen(call.Fun).(*ast.SelectorExpr); okSel && sig.Recv() != nil {
		if _, isMethod := info.Selections[sel]; isMethod &&
			!tr.carrier(sig.Recv().Type()) && tr.taint(sel.X) {
			tr.reported[call.Pos()] = true
			tr.pass.Reportf(call.Pos(),
				"float-tainted receiver in call to (%s).%s of exact package %s (DESIGN.md §12)",
				sig.Recv().Type(), fn.Name(), fn.Pkg().Path())
			return
		}
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		if np == 0 {
			break
		}
		pi := i
		if pi >= np {
			if !sig.Variadic() {
				break
			}
			pi = np - 1
		}
		pt := sig.Params().At(pi).Type()
		if sig.Variadic() && pi == np-1 {
			if s, okS := pt.Underlying().(*types.Slice); okS {
				pt = s.Elem()
			}
		}
		if !tr.carrier(pt) && tr.taint(arg) {
			tr.reported[call.Pos()] = true
			tr.pass.Reportf(arg.Pos(),
				"float-tainted argument crosses into exact package %s via %s; only float-blind data (a comparison-selected basis or index) may cross (DESIGN.md §12)",
				fn.Pkg().Path(), fn.Name())
			return
		}
	}
}

// checkExportedReturn flags exported functions returning laundered
// taint in a non-float-typed result (S3). Returns whose expression is
// a call already reported as a sink are skipped to avoid cascades.
func (tr *tracker) checkExportedReturn(fn *types.Func, ret *ast.ReturnStmt) {
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	results := sig.Results()
	for i, expr := range ret.Results {
		if i >= results.Len() {
			break
		}
		rt := results.At(i).Type()
		if tr.carrier(rt) {
			continue
		}
		if call, okC := analysis.Unparen(expr).(*ast.CallExpr); okC && tr.reported[call.Pos()] {
			continue
		}
		if tr.taint(expr) {
			tr.pass.Reportf(ret.Pos(),
				"exported %s returns float-tainted %s result; the sanctioned float-derived export is a comparison-selected basis/index (DESIGN.md §12)",
				fn.Name(), rt)
			return
		}
	}
}

// checkGlobalStore flags stores of tainted values into package-level
// variables (S4): persisted taint outlives any flow the analyzer can
// see.
func (tr *tracker) checkGlobalStore(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := analysis.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := tr.objOf(id)
		if obj == nil || obj.Parent() != tr.pass.Pkg.Scope() {
			continue
		}
		if !tr.carrier(obj.Type()) && tr.taint(as.Rhs[i]) {
			tr.pass.Reportf(lhs.Pos(),
				"float-tainted value persisted in package-level %s (DESIGN.md §12)", id.Name)
		}
	}
}
