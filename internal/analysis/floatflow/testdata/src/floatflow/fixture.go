// Package fixture seeds the float-to-exact leaks the floatflow
// analyzer must catch, next to the sanctioned patterns it must pass.
// The clean half deliberately mirrors internal/lp/floatsimplex.go:
// float comparisons choosing int indices are the one legal channel
// out of float land.
package fixture

import (
	"math/big"

	"minimaxdp/internal/rational"
)

// Basis mirrors the sanctioned floatsimplex export: indices selected
// purely by float comparisons are float-blind and pass untainted.
func Basis(scores []float64) []int {
	basis := make([]int, 0, len(scores))
	for j := range scores {
		if scores[j] > 0.5 {
			basis = append(basis, j)
		}
	}
	return basis
}

// Mean is pure float work: sources without sinks are fine.
func Mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Exact is pure exact work: no sources at all.
func Exact(a, b *big.Rat) *big.Rat {
	return rational.Add(a, b)
}

// LaunderInt quantizes a float and rebuilds an exact rational from
// it: the canonical leak a syntactic file allowlist cannot see.
func LaunderInt(f float64) *big.Rat {
	n := int64(f * 1000)
	return big.NewRat(n, 1000) // want `float-tainted`
}

func round(f float64) int64 {
	return int64(f + 0.5)
}

// UseHelper launders through an intra-package helper; the taint
// arrives via the fixpoint function summary.
func UseHelper(f float64) *big.Rat {
	return big.NewRat(round(f), 1) // want `float-tainted`
}

// Direct bridges float→exact in one call; the float-typed parameter
// does not excuse constructing an exact artifact from it.
func Direct(f float64) *big.Rat {
	return new(big.Rat).SetFloat64(f) // want `float-tainted`
}

// Bridge launders through rational.FromFloat and then exports the
// contaminated artifact.
func Bridge(f float64) *big.Rat {
	r, err := rational.FromFloat(f) // want `float-tainted`
	if err != nil {
		return nil
	}
	return r // want `float-tainted`
}

// Compare drags a contaminated rational into exact comparisons.
func Compare(f float64, bound *big.Rat) bool {
	r, _ := rational.FromFloat(f) // want `float-tainted`
	return r.Cmp(bound) < 0       // want `float-tainted`
}

// Quantize launders a float into an exported integer result.
func Quantize(f float64) int64 {
	return int64(f * 64) // want `exported Quantize returns float-tainted`
}

var scale int64

// SetScale persists laundered taint in a package-level variable.
func SetScale(f float64) {
	scale = int64(f) // want `float-tainted`
}

// Allowed demonstrates a justified suppression.
func Allowed(f float64) bool {
	//dpvet:ignore floatflow fixture demonstrates a justified suppression
	r, _ := rational.FromFloat(f)
	return r == nil
}

// cleanTab mirrors the float simplex: float rows beside int
// bookkeeping. Field-sensitive tracking keeps the int fields clean.
type cleanTab struct {
	rows   [][]float64
	basis  []int
	pivots int
}

// CandidateBasis mirrors floatCandidateBasis: the int fields only
// ever receive comparison-selected values, so the export is clean.
func CandidateBasis(t *cleanTab) ([]int, int) {
	for r := range t.rows {
		col := -1
		for j := range t.rows[r] {
			if t.rows[r][j] > 0 {
				col = j
				break
			}
		}
		t.basis[r] = col
		t.pivots++
	}
	return t.basis, t.pivots
}

// dirtyTab is a separate type so its poisoned basis field does not
// alias cleanTab's.
type dirtyTab struct {
	rows  [][]float64
	basis []int
}

// PoisonBasis stores laundered float data in the basis and hands it
// to the exact world: the leak "beyond the basis" floatflow exists to
// catch.
func PoisonBasis(t *dirtyTab) *big.Rat {
	t.basis[0] = int(t.rows[0][0])
	return rational.Int(int64(t.basis[0])) // want `float-tainted`
}
