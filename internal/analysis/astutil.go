package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Unparen strips any enclosing parentheses from e.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Callee resolves the object a call expression invokes: a function,
// method, or builtin. It returns nil for calls through function
// values and for type conversions.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// CalleeFunc is Callee narrowed to *types.Func (nil otherwise).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, _ := Callee(info, call).(*types.Func)
	return fn
}

// RootIdent returns the identifier at the root of a selector/index
// chain: RootIdent(m.a[i][j]) == m. It returns nil for expressions
// not rooted at a plain identifier (calls, composites, etc.).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// IsBigRat reports whether t is math/big.Rat or *math/big.Rat.
func IsBigRat(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rat" && obj.Pkg() != nil && obj.Pkg().Path() == "math/big"
}

// ContainsBigExact reports whether t structurally contains math/big's
// Rat or Int — the data types the exact pipeline's theorems quantify
// over. Pointers, slices, arrays, maps, channels, struct fields, and
// tuples are traversed; reference cycles are guarded.
func ContainsBigExact(t types.Type) bool {
	return containsBigExact(t, make(map[types.Type]bool))
}

func containsBigExact(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "math/big" &&
			(obj.Name() == "Rat" || obj.Name() == "Int") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return containsBigExact(u.Elem(), seen)
	case *types.Slice:
		return containsBigExact(u.Elem(), seen)
	case *types.Array:
		return containsBigExact(u.Elem(), seen)
	case *types.Chan:
		return containsBigExact(u.Elem(), seen)
	case *types.Map:
		return containsBigExact(u.Key(), seen) || containsBigExact(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsBigExact(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if containsBigExact(u.At(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// PathMatches reports whether the import path matches any entry in
// suffixes, where a match is either full equality or a "/"-delimited
// suffix. Suffix matching lets analyzer scopes written against real
// module paths also cover the testdata fixture packages, whose import
// paths carry a testdata/src prefix.
func PathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
