// Package matrix implements dense matrices over exact rationals
// (*big.Rat) together with the linear-algebra operations the paper's
// proofs rely on: multiplication, Gauss–Jordan inversion, determinants
// (fraction-free Bareiss and cofactor expansion), Cramer's-rule column
// replacement, and the stochasticity predicates from Section 3 of the
// paper (row-stochastic and generalized row-stochastic matrices).
package matrix

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"minimaxdp/internal/rational"
)

// Matrix is a dense rows×cols matrix of exact rationals.
// The zero value is not usable; construct with New, Identity, FromRows
// or FromStrings.
type Matrix struct {
	rows, cols int
	a          []*big.Rat // row-major, len rows*cols
}

// ErrSingular is returned when an inverse or solve is requested for a
// singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// New returns a rows×cols zero matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	a := make([]*big.Rat, rows*cols)
	for i := range a {
		a[i] = rational.Zero()
	}
	return &Matrix{rows: rows, cols: cols, a: a}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, rational.One())
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rational rows.
// The entries are deep-copied.
func FromRows(rows [][]*big.Rat) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("matrix: empty input")
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: ragged input at row %d (%d vs %d cols)", i, len(r), cols)
		}
		for j, v := range r {
			m.Set(i, j, v)
		}
	}
	return m, nil
}

// FromStrings builds a matrix from string entries such as "3/4".
// Useful in tests and for transcribing the paper's tables verbatim.
func FromStrings(rows [][]string) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("matrix: empty input")
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: ragged input at row %d", i)
		}
		for j, s := range r {
			v, err := rational.Parse(s)
			if err != nil {
				return nil, fmt.Errorf("matrix: entry (%d,%d): %w", i, j, err)
			}
			m.a[i*cols+j] = v
		}
	}
	return m, nil
}

// MustFromStrings is FromStrings that panics on error, for literals.
func MustFromStrings(rows [][]string) *Matrix {
	m, err := FromStrings(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the entry at (i,j). The returned value must not be
// mutated by the caller; use Set to write.
func (m *Matrix) At(i, j int) *big.Rat {
	m.check(i, j)
	//dpvet:ignore ratmutate documented borrow: At is the hot read path (simplex pivots call it in inner loops) and cloning here would dominate; the no-mutation contract is in the doc comment and Set copies on write
	return m.a[i*m.cols+j]
}

// Set stores a deep copy of v at (i,j).
func (m *Matrix) Set(i, j int, v *big.Rat) {
	m.check(i, j)
	m.a[i*m.cols+j] = rational.Clone(v)
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{rows: m.rows, cols: m.cols, a: make([]*big.Rat, len(m.a))}
	for i, v := range m.a {
		out.a[i] = rational.Clone(v)
	}
	return out
}

// Row returns a deep copy of row i.
func (m *Matrix) Row(i int) []*big.Rat {
	out := make([]*big.Rat, m.cols)
	for j := 0; j < m.cols; j++ {
		out[j] = rational.Clone(m.At(i, j))
	}
	return out
}

// Col returns a deep copy of column j.
func (m *Matrix) Col(j int) []*big.Rat {
	out := make([]*big.Rat, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = rational.Clone(m.At(i, j))
	}
	return out
}

// Equal reports whether m and o have identical shape and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.a {
		if m.a[i].Cmp(o.a[i]) != 0 {
			return false
		}
	}
	return true
}

// Mul returns the product m·o.
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	out, _, err := m.MulStats(o)
	return out, err
}

// MulStats returns the product m·o together with the hybrid tier
// counters of this call. The dot products run on the rational.Hval
// ladder (Small → Wide → big.Rat), so mostly-tiny operands — the
// common case for mechanism transition products — stay in machine
// words; the returned stats report the per-call hit rate of each
// tier.
func (m *Matrix) MulStats(o *Matrix) (*Matrix, rational.HybridStats, error) {
	var h rational.HybridStats
	if m.cols != o.rows {
		return nil, h, fmt.Errorf("matrix: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	// Lift both operands onto the ladder once; big-tier entries are
	// aliased, never copied, and Hval ops never mutate operands.
	left := make([]rational.Hval, len(m.a))
	for i, v := range m.a {
		left[i] = rational.HvalFromRat(v)
	}
	right := make([]rational.Hval, len(o.a))
	for i, v := range o.a {
		right[i] = rational.HvalFromRat(v)
	}
	acc := make([]rational.Hval, m.rows*o.cols)
	var zero rational.Hval
	// ikj loop order with a zero-skip on the left factor: products with
	// sparse left operands (e.g. the tridiagonal closed-form inverse of
	// the geometric mechanism) cost O(nnz·cols) instead of O(n³).
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			aik := left[i*m.cols+k]
			if aik.IsZero() {
				continue
			}
			// acc += aik·b is one fused FMS with the negated left
			// factor: a single normalization per update instead of a
			// multiply followed by an add.
			neg := h.SubH(zero, aik)
			orow := right[k*o.cols:]
			for j := 0; j < o.cols; j++ {
				if orow[j].IsZero() {
					continue
				}
				idx := i*o.cols + j
				acc[idx] = h.FMS(acc[idx], neg, orow[j])
			}
		}
	}
	out := New(m.rows, o.cols)
	for idx, v := range acc {
		if v.IsZero() {
			continue
		}
		out.a[idx] = rational.Clone(v.Rat())
	}
	return out, h, nil
}

// MulVec returns the product m·v for a column vector v.
func (m *Matrix) MulVec(v []*big.Rat) ([]*big.Rat, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by vector of length %d", m.rows, m.cols, len(v))
	}
	out := rational.Vector(m.rows)
	tmp := rational.Zero()
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			tmp.Mul(m.a[i*m.cols+k], v[k])
			out[i].Add(out[i], tmp)
		}
	}
	return out, nil
}

// VecMul returns the product vᵀ·m for a row vector v.
func (m *Matrix) VecMul(v []*big.Rat) ([]*big.Rat, error) {
	if m.rows != len(v) {
		return nil, fmt.Errorf("matrix: cannot multiply vector of length %d by %dx%d", len(v), m.rows, m.cols)
	}
	out := rational.Vector(m.cols)
	tmp := rational.Zero()
	for j := 0; j < m.cols; j++ {
		for i := 0; i < m.rows; i++ {
			tmp.Mul(v[i], m.a[i*m.cols+j])
			out[j].Add(out[j], tmp)
		}
	}
	return out, nil
}

// Add returns m+o.
func (m *Matrix) Add(o *Matrix) (*Matrix, error) {
	if m.rows != o.rows || m.cols != o.cols {
		return nil, fmt.Errorf("matrix: cannot add %dx%d and %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	out := m.Clone()
	for i := range out.a {
		out.a[i].Add(out.a[i], o.a[i])
	}
	return out, nil
}

// Sub returns m−o.
func (m *Matrix) Sub(o *Matrix) (*Matrix, error) {
	if m.rows != o.rows || m.cols != o.cols {
		return nil, fmt.Errorf("matrix: cannot subtract %dx%d and %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	out := m.Clone()
	for i := range out.a {
		out.a[i].Sub(out.a[i], o.a[i])
	}
	return out, nil
}

// Scale returns c·m.
func (m *Matrix) Scale(c *big.Rat) *Matrix {
	out := m.Clone()
	for i := range out.a {
		out.a[i].Mul(out.a[i], c)
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// ReplaceCol returns a copy of m with column j replaced by v
// (Cramer's-rule helper; the paper's G(i,x) notation).
func (m *Matrix) ReplaceCol(j int, v []*big.Rat) (*Matrix, error) {
	if len(v) != m.rows {
		return nil, fmt.Errorf("matrix: column length %d does not match %d rows", len(v), m.rows)
	}
	if j < 0 || j >= m.cols {
		return nil, fmt.Errorf("matrix: column %d out of range", j)
	}
	out := m.Clone()
	for i := 0; i < m.rows; i++ {
		out.Set(i, j, v[i])
	}
	return out, nil
}

// Inverse returns m⁻¹ via exact Gauss–Jordan elimination with partial
// (first-nonzero) pivoting. Returns ErrSingular if m is singular.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot invert non-square %dx%d", m.rows, m.cols)
	}
	n := m.rows
	// Augmented [A | I] worked in place.
	aug := make([][]*big.Rat, n)
	for i := 0; i < n; i++ {
		aug[i] = make([]*big.Rat, 2*n)
		for j := 0; j < n; j++ {
			aug[i][j] = rational.Clone(m.At(i, j))
			if i == j {
				aug[i][n+j] = rational.One()
			} else {
				aug[i][n+j] = rational.Zero()
			}
		}
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col].Sign() != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		inv := new(big.Rat).Inv(aug[col][col])
		for j := 0; j < 2*n; j++ {
			aug[col][j].Mul(aug[col][j], inv)
		}
		for r := 0; r < n; r++ {
			if r == col || aug[r][col].Sign() == 0 {
				continue
			}
			factor := rational.Clone(aug[r][col])
			tmp := rational.Zero()
			for j := 0; j < 2*n; j++ {
				tmp.Mul(factor, aug[col][j])
				aug[r][j].Sub(aug[r][j], tmp)
			}
		}
	}
	out := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.a[i*n+j] = aug[i][n+j]
		}
	}
	return out, nil
}

// Solve returns the solution x of m·x = b for square nonsingular m.
func (m *Matrix) Solve(b []*big.Rat) ([]*big.Rat, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(b)
}

// Det returns det(m) using fraction-free Bareiss elimination, which
// keeps intermediate values as exact integers of the common
// denominator and is much faster than cofactor expansion for n ≳ 5.
func (m *Matrix) Det() (*big.Rat, error) {
	det, _, err := m.DetStats()
	return det, err
}

// DetStats returns det(m) together with the hybrid tier counters of
// this call. The elimination runs on the rational.Hval ladder
// (Small → Wide → big.Rat): pivots, row factors, and the fused
// update w[r][j] −= factor·w[col][j] stay in machine words while
// entries fit, and the stats report the per-call hit rate of each
// tier.
func (m *Matrix) DetStats() (*big.Rat, rational.HybridStats, error) {
	var h rational.HybridStats
	if m.rows != m.cols {
		return nil, h, fmt.Errorf("matrix: determinant of non-square %dx%d", m.rows, m.cols)
	}
	n := m.rows
	if n == 1 {
		return rational.Clone(m.At(0, 0)), h, nil
	}
	// Work on a lifted copy; fraction elimination over Hval is exact
	// and the ladder is a representation detail. Track sign from row
	// swaps.
	w := make([][]rational.Hval, n)
	for i := 0; i < n; i++ {
		w[i] = make([]rational.Hval, n)
		for j := 0; j < n; j++ {
			w[i][j] = rational.HvalFromRat(m.a[i*n+j])
		}
	}
	sign := 1
	det := rational.HvalFromRat(rational.One())
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if !w[r][col].IsZero() {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return rational.Zero(), h, nil
		}
		if pivot != col {
			w[col], w[pivot] = w[pivot], w[col]
			sign = -sign
		}
		det = h.Mul(det, w[col][col])
		for r := col + 1; r < n; r++ {
			if w[r][col].IsZero() {
				continue
			}
			factor := h.Quo(w[r][col], w[col][col])
			// Column col of row r is never read again, so start the
			// fused updates at col+1.
			for j := col + 1; j < n; j++ {
				if w[col][j].IsZero() {
					continue
				}
				w[r][j] = h.FMS(w[r][j], factor, w[col][j])
			}
		}
	}
	out := rational.Clone(det.Rat())
	if sign < 0 {
		out.Neg(out)
	}
	return out, h, nil
}

// DetCofactor returns det(m) by recursive cofactor expansion along the
// first row. Exponential time; retained as an oracle for tests and the
// ablation benchmark.
func (m *Matrix) DetCofactor() (*big.Rat, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: determinant of non-square %dx%d", m.rows, m.cols)
	}
	return detCofactor(m), nil
}

func detCofactor(m *Matrix) *big.Rat {
	n := m.rows
	if n == 1 {
		return rational.Clone(m.At(0, 0))
	}
	if n == 2 {
		ad := rational.Mul(m.At(0, 0), m.At(1, 1))
		bc := rational.Mul(m.At(0, 1), m.At(1, 0))
		return ad.Sub(ad, bc)
	}
	out := rational.Zero()
	for j := 0; j < n; j++ {
		if m.At(0, j).Sign() == 0 {
			continue
		}
		minor := New(n-1, n-1)
		for i := 1; i < n; i++ {
			cj := 0
			for k := 0; k < n; k++ {
				if k == j {
					continue
				}
				minor.Set(i-1, cj, m.At(i, k))
				cj++
			}
		}
		term := rational.Mul(m.At(0, j), detCofactor(minor))
		if j%2 == 1 {
			term.Neg(term)
		}
		out.Add(out, term)
	}
	return out
}

// RowSums returns the vector of row sums.
func (m *Matrix) RowSums() []*big.Rat {
	out := rational.Vector(m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out[i].Add(out[i], m.At(i, j))
		}
	}
	return out
}

// IsStochastic reports whether m is row-stochastic: every entry is
// non-negative and every row sums to exactly 1.
func (m *Matrix) IsStochastic() bool {
	one := rational.One()
	for i := 0; i < m.rows; i++ {
		sum := rational.Zero()
		for j := 0; j < m.cols; j++ {
			e := m.At(i, j)
			if e.Sign() < 0 {
				return false
			}
			sum.Add(sum, e)
		}
		if sum.Cmp(one) != 0 {
			return false
		}
	}
	return true
}

// IsGeneralizedStochastic reports whether every row sums to exactly 1,
// with no sign condition on individual entries (the paper's
// "generalized row stochastic" matrices, Section 3).
func (m *Matrix) IsGeneralizedStochastic() bool {
	one := rational.One()
	for _, s := range m.RowSums() {
		if s.Cmp(one) != 0 {
			return false
		}
	}
	return true
}

// IsNonNegative reports whether every entry is ≥ 0.
func (m *Matrix) IsNonNegative() bool {
	for _, v := range m.a {
		if v.Sign() < 0 {
			return false
		}
	}
	return true
}

// Float64 returns the float64 rendering of m, row-major.
func (m *Matrix) Float64() [][]float64 {
	out := make([][]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = make([]float64, m.cols)
		for j := 0; j < m.cols; j++ {
			//dpvet:ignore floatexact Float64 is the one sanctioned float exit of this package: a display/plotting rendering that no exact computation consumes
			out[i][j] = rational.Float(m.At(i, j))
		}
	}
	return out
}

// String renders m with exact rational entries, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	widths := make([]int, m.cols)
	cells := make([][]string, m.rows)
	for i := 0; i < m.rows; i++ {
		cells[i] = make([]string, m.cols)
		for j := 0; j < m.cols; j++ {
			s := m.At(i, j).RatString()
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[j], cells[i][j])
		}
		b.WriteString("]")
		if i < m.rows-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}
