// Package matrix implements dense matrices over exact rationals
// (*big.Rat) together with the linear-algebra operations the paper's
// proofs rely on: multiplication, Gauss–Jordan inversion, determinants
// (fraction-free Bareiss and cofactor expansion), Cramer's-rule column
// replacement, and the stochasticity predicates from Section 3 of the
// paper (row-stochastic and generalized row-stochastic matrices).
package matrix

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"minimaxdp/internal/rational"
)

// Matrix is a dense rows×cols matrix of exact rationals.
// The zero value is not usable; construct with New, Identity, FromRows
// or FromStrings.
type Matrix struct {
	rows, cols int
	a          []*big.Rat // row-major, len rows*cols
}

// ErrSingular is returned when an inverse or solve is requested for a
// singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// New returns a rows×cols zero matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	a := make([]*big.Rat, rows*cols)
	for i := range a {
		a[i] = rational.Zero()
	}
	return &Matrix{rows: rows, cols: cols, a: a}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, rational.One())
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rational rows.
// The entries are deep-copied.
func FromRows(rows [][]*big.Rat) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("matrix: empty input")
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: ragged input at row %d (%d vs %d cols)", i, len(r), cols)
		}
		for j, v := range r {
			m.Set(i, j, v)
		}
	}
	return m, nil
}

// FromStrings builds a matrix from string entries such as "3/4".
// Useful in tests and for transcribing the paper's tables verbatim.
func FromStrings(rows [][]string) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("matrix: empty input")
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: ragged input at row %d", i)
		}
		for j, s := range r {
			v, err := rational.Parse(s)
			if err != nil {
				return nil, fmt.Errorf("matrix: entry (%d,%d): %w", i, j, err)
			}
			m.a[i*cols+j] = v
		}
	}
	return m, nil
}

// MustFromStrings is FromStrings that panics on error, for literals.
func MustFromStrings(rows [][]string) *Matrix {
	m, err := FromStrings(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the entry at (i,j). The returned value must not be
// mutated by the caller; use Set to write.
func (m *Matrix) At(i, j int) *big.Rat {
	m.check(i, j)
	//dpvet:ignore ratmutate documented borrow: At is the hot read path (simplex pivots call it in inner loops) and cloning here would dominate; the no-mutation contract is in the doc comment and Set copies on write
	return m.a[i*m.cols+j]
}

// Set stores a deep copy of v at (i,j).
func (m *Matrix) Set(i, j int, v *big.Rat) {
	m.check(i, j)
	m.a[i*m.cols+j] = rational.Clone(v)
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{rows: m.rows, cols: m.cols, a: make([]*big.Rat, len(m.a))}
	for i, v := range m.a {
		out.a[i] = rational.Clone(v)
	}
	return out
}

// Row returns a deep copy of row i.
func (m *Matrix) Row(i int) []*big.Rat {
	out := make([]*big.Rat, m.cols)
	for j := 0; j < m.cols; j++ {
		out[j] = rational.Clone(m.At(i, j))
	}
	return out
}

// Col returns a deep copy of column j.
func (m *Matrix) Col(j int) []*big.Rat {
	out := make([]*big.Rat, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = rational.Clone(m.At(i, j))
	}
	return out
}

// Equal reports whether m and o have identical shape and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.a {
		if m.a[i].Cmp(o.a[i]) != 0 {
			return false
		}
	}
	return true
}

// Mul returns the product m·o.
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	if m.cols != o.rows {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	out := New(m.rows, o.cols)
	tmp := rational.Zero()
	// ikj loop order with a zero-skip on the left factor: products with
	// sparse left operands (e.g. the tridiagonal closed-form inverse of
	// the geometric mechanism) cost O(nnz·cols) instead of O(n³).
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			aik := m.a[i*m.cols+k]
			if aik.Sign() == 0 {
				continue
			}
			orow := o.a[k*o.cols:]
			for j := 0; j < o.cols; j++ {
				if orow[j].Sign() == 0 {
					continue
				}
				tmp.Mul(aik, orow[j])
				acc := out.a[i*out.cols+j]
				acc.Add(acc, tmp)
			}
		}
	}
	return out, nil
}

// MulVec returns the product m·v for a column vector v.
func (m *Matrix) MulVec(v []*big.Rat) ([]*big.Rat, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by vector of length %d", m.rows, m.cols, len(v))
	}
	out := rational.Vector(m.rows)
	tmp := rational.Zero()
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			tmp.Mul(m.a[i*m.cols+k], v[k])
			out[i].Add(out[i], tmp)
		}
	}
	return out, nil
}

// VecMul returns the product vᵀ·m for a row vector v.
func (m *Matrix) VecMul(v []*big.Rat) ([]*big.Rat, error) {
	if m.rows != len(v) {
		return nil, fmt.Errorf("matrix: cannot multiply vector of length %d by %dx%d", len(v), m.rows, m.cols)
	}
	out := rational.Vector(m.cols)
	tmp := rational.Zero()
	for j := 0; j < m.cols; j++ {
		for i := 0; i < m.rows; i++ {
			tmp.Mul(v[i], m.a[i*m.cols+j])
			out[j].Add(out[j], tmp)
		}
	}
	return out, nil
}

// Add returns m+o.
func (m *Matrix) Add(o *Matrix) (*Matrix, error) {
	if m.rows != o.rows || m.cols != o.cols {
		return nil, fmt.Errorf("matrix: cannot add %dx%d and %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	out := m.Clone()
	for i := range out.a {
		out.a[i].Add(out.a[i], o.a[i])
	}
	return out, nil
}

// Sub returns m−o.
func (m *Matrix) Sub(o *Matrix) (*Matrix, error) {
	if m.rows != o.rows || m.cols != o.cols {
		return nil, fmt.Errorf("matrix: cannot subtract %dx%d and %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	out := m.Clone()
	for i := range out.a {
		out.a[i].Sub(out.a[i], o.a[i])
	}
	return out, nil
}

// Scale returns c·m.
func (m *Matrix) Scale(c *big.Rat) *Matrix {
	out := m.Clone()
	for i := range out.a {
		out.a[i].Mul(out.a[i], c)
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// ReplaceCol returns a copy of m with column j replaced by v
// (Cramer's-rule helper; the paper's G(i,x) notation).
func (m *Matrix) ReplaceCol(j int, v []*big.Rat) (*Matrix, error) {
	if len(v) != m.rows {
		return nil, fmt.Errorf("matrix: column length %d does not match %d rows", len(v), m.rows)
	}
	if j < 0 || j >= m.cols {
		return nil, fmt.Errorf("matrix: column %d out of range", j)
	}
	out := m.Clone()
	for i := 0; i < m.rows; i++ {
		out.Set(i, j, v[i])
	}
	return out, nil
}

// Inverse returns m⁻¹ via exact Gauss–Jordan elimination with partial
// (first-nonzero) pivoting. Returns ErrSingular if m is singular.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot invert non-square %dx%d", m.rows, m.cols)
	}
	n := m.rows
	// Augmented [A | I] worked in place.
	aug := make([][]*big.Rat, n)
	for i := 0; i < n; i++ {
		aug[i] = make([]*big.Rat, 2*n)
		for j := 0; j < n; j++ {
			aug[i][j] = rational.Clone(m.At(i, j))
			if i == j {
				aug[i][n+j] = rational.One()
			} else {
				aug[i][n+j] = rational.Zero()
			}
		}
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col].Sign() != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		inv := new(big.Rat).Inv(aug[col][col])
		for j := 0; j < 2*n; j++ {
			aug[col][j].Mul(aug[col][j], inv)
		}
		for r := 0; r < n; r++ {
			if r == col || aug[r][col].Sign() == 0 {
				continue
			}
			factor := rational.Clone(aug[r][col])
			tmp := rational.Zero()
			for j := 0; j < 2*n; j++ {
				tmp.Mul(factor, aug[col][j])
				aug[r][j].Sub(aug[r][j], tmp)
			}
		}
	}
	out := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.a[i*n+j] = aug[i][n+j]
		}
	}
	return out, nil
}

// Solve returns the solution x of m·x = b for square nonsingular m.
func (m *Matrix) Solve(b []*big.Rat) ([]*big.Rat, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(b)
}

// Det returns det(m) using fraction-free Bareiss elimination, which
// keeps intermediate values as exact integers of the common
// denominator and is much faster than cofactor expansion for n ≳ 5.
func (m *Matrix) Det() (*big.Rat, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: determinant of non-square %dx%d", m.rows, m.cols)
	}
	n := m.rows
	if n == 1 {
		return rational.Clone(m.At(0, 0)), nil
	}
	// Work on a copy; plain fraction elimination over big.Rat is exact
	// and simple. Track sign from row swaps.
	w := make([][]*big.Rat, n)
	for i := 0; i < n; i++ {
		w[i] = m.Row(i)
	}
	sign := 1
	det := rational.One()
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if w[r][col].Sign() != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return rational.Zero(), nil
		}
		if pivot != col {
			w[col], w[pivot] = w[pivot], w[col]
			sign = -sign
		}
		det.Mul(det, w[col][col])
		inv := new(big.Rat).Inv(w[col][col])
		for r := col + 1; r < n; r++ {
			if w[r][col].Sign() == 0 {
				continue
			}
			factor := new(big.Rat).Mul(w[r][col], inv)
			tmp := rational.Zero()
			for j := col; j < n; j++ {
				tmp.Mul(factor, w[col][j])
				w[r][j].Sub(w[r][j], tmp)
			}
		}
	}
	if sign < 0 {
		det.Neg(det)
	}
	return det, nil
}

// DetCofactor returns det(m) by recursive cofactor expansion along the
// first row. Exponential time; retained as an oracle for tests and the
// ablation benchmark.
func (m *Matrix) DetCofactor() (*big.Rat, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: determinant of non-square %dx%d", m.rows, m.cols)
	}
	return detCofactor(m), nil
}

func detCofactor(m *Matrix) *big.Rat {
	n := m.rows
	if n == 1 {
		return rational.Clone(m.At(0, 0))
	}
	if n == 2 {
		ad := rational.Mul(m.At(0, 0), m.At(1, 1))
		bc := rational.Mul(m.At(0, 1), m.At(1, 0))
		return ad.Sub(ad, bc)
	}
	out := rational.Zero()
	for j := 0; j < n; j++ {
		if m.At(0, j).Sign() == 0 {
			continue
		}
		minor := New(n-1, n-1)
		for i := 1; i < n; i++ {
			cj := 0
			for k := 0; k < n; k++ {
				if k == j {
					continue
				}
				minor.Set(i-1, cj, m.At(i, k))
				cj++
			}
		}
		term := rational.Mul(m.At(0, j), detCofactor(minor))
		if j%2 == 1 {
			term.Neg(term)
		}
		out.Add(out, term)
	}
	return out
}

// RowSums returns the vector of row sums.
func (m *Matrix) RowSums() []*big.Rat {
	out := rational.Vector(m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out[i].Add(out[i], m.At(i, j))
		}
	}
	return out
}

// IsStochastic reports whether m is row-stochastic: every entry is
// non-negative and every row sums to exactly 1.
func (m *Matrix) IsStochastic() bool {
	one := rational.One()
	for i := 0; i < m.rows; i++ {
		sum := rational.Zero()
		for j := 0; j < m.cols; j++ {
			e := m.At(i, j)
			if e.Sign() < 0 {
				return false
			}
			sum.Add(sum, e)
		}
		if sum.Cmp(one) != 0 {
			return false
		}
	}
	return true
}

// IsGeneralizedStochastic reports whether every row sums to exactly 1,
// with no sign condition on individual entries (the paper's
// "generalized row stochastic" matrices, Section 3).
func (m *Matrix) IsGeneralizedStochastic() bool {
	one := rational.One()
	for _, s := range m.RowSums() {
		if s.Cmp(one) != 0 {
			return false
		}
	}
	return true
}

// IsNonNegative reports whether every entry is ≥ 0.
func (m *Matrix) IsNonNegative() bool {
	for _, v := range m.a {
		if v.Sign() < 0 {
			return false
		}
	}
	return true
}

// Float64 returns the float64 rendering of m, row-major.
func (m *Matrix) Float64() [][]float64 {
	out := make([][]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = make([]float64, m.cols)
		for j := 0; j < m.cols; j++ {
			//dpvet:ignore floatexact Float64 is the one sanctioned float exit of this package: a display/plotting rendering that no exact computation consumes
			out[i][j] = rational.Float(m.At(i, j))
		}
	}
	return out
}

// String renders m with exact rational entries, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	widths := make([]int, m.cols)
	cells := make([][]string, m.rows)
	for i := 0; i < m.rows; i++ {
		cells[i] = make([]string, m.cols)
		for j := 0; j < m.cols; j++ {
			s := m.At(i, j).RatString()
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[j], cells[i][j])
		}
		b.WriteString("]")
		if i < m.rows-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}
