package matrix

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"minimaxdp/internal/rational"
)

func mustM(t *testing.T, rows [][]string) *Matrix {
	t.Helper()
	m, err := FromStrings(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j).Sign() != 0 {
				t.Errorf("entry (%d,%d) not zero", i, j)
			}
		}
	}
	m.Set(1, 2, rational.New(5, 7))
	if m.At(1, 2).RatString() != "5/7" {
		t.Errorf("Set/At = %s", m.At(1, 2).RatString())
	}
}

func TestSetCopies(t *testing.T) {
	m := New(1, 1)
	v := rational.New(1, 2)
	m.Set(0, 0, v)
	v.SetInt64(9)
	if m.At(0, 0).RatString() != "1/2" {
		t.Error("Set aliases caller's value")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromRowsAndErrors(t *testing.T) {
	rows := [][]*big.Rat{
		{rational.Int(1), rational.Int(2)},
		{rational.Int(3), rational.Int(4)},
	}
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0).RatString() != "3" {
		t.Error("FromRows wrong entry")
	}
	// Deep copy.
	rows[0][0].SetInt64(99)
	if m.At(0, 0).RatString() != "1" {
		t.Error("FromRows aliases input")
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("FromRows(nil) should error")
	}
	if _, err := FromRows([][]*big.Rat{{rational.Int(1)}, {rational.Int(1), rational.Int(2)}}); err == nil {
		t.Error("ragged FromRows should error")
	}
}

func TestFromStringsErrors(t *testing.T) {
	if _, err := FromStrings([][]string{{"1", "bogus"}}); err == nil {
		t.Error("bad entry should error")
	}
	if _, err := FromStrings(nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := FromStrings([][]string{{"1"}, {"1", "2"}}); err == nil {
		t.Error("ragged should error")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	m := mustM(t, [][]string{{"1", "2", "3"}, {"4", "5", "6"}, {"7", "8", "10"}})
	prod, err := m.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(m) {
		t.Error("M·I != M")
	}
	prod, err = id.Mul(m)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(m) {
		t.Error("I·M != M")
	}
}

func TestMul(t *testing.T) {
	a := mustM(t, [][]string{{"1", "2"}, {"3", "4"}})
	b := mustM(t, [][]string{{"5", "6"}, {"7", "8"}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := mustM(t, [][]string{{"19", "22"}, {"43", "50"}})
	if !got.Equal(want) {
		t.Errorf("Mul =\n%s\nwant\n%s", got, want)
	}
	if _, err := a.Mul(New(3, 3)); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestMulVecAndVecMul(t *testing.T) {
	a := mustM(t, [][]string{{"1", "2"}, {"3", "4"}})
	v := []*big.Rat{rational.Int(1), rational.Int(1)}
	got, err := a.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].RatString() != "3" || got[1].RatString() != "7" {
		t.Errorf("MulVec = %v", got)
	}
	got, err = a.VecMul(v)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].RatString() != "4" || got[1].RatString() != "6" {
		t.Errorf("VecMul = %v", got)
	}
	if _, err := a.MulVec(v[:1]); err == nil {
		t.Error("MulVec length mismatch should error")
	}
	if _, err := a.VecMul(v[:1]); err == nil {
		t.Error("VecMul length mismatch should error")
	}
}

func TestAddSubScaleTranspose(t *testing.T) {
	a := mustM(t, [][]string{{"1", "2"}, {"3", "4"}})
	b := mustM(t, [][]string{{"1", "1"}, {"1", "1"}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(1, 1).RatString() != "5" {
		t.Error("Add wrong")
	}
	diff, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if diff.At(0, 0).RatString() != "0" {
		t.Error("Sub wrong")
	}
	sc := a.Scale(rational.New(1, 2))
	if sc.At(1, 1).RatString() != "2" {
		t.Error("Scale wrong")
	}
	tr := a.Transpose()
	if tr.At(0, 1).RatString() != "3" {
		t.Error("Transpose wrong")
	}
	if _, err := a.Add(New(1, 2)); err == nil {
		t.Error("Add shape mismatch should error")
	}
	if _, err := a.Sub(New(1, 2)); err == nil {
		t.Error("Sub shape mismatch should error")
	}
}

func TestRowColClone(t *testing.T) {
	a := mustM(t, [][]string{{"1", "2"}, {"3", "4"}})
	r := a.Row(0)
	r[0].SetInt64(99)
	if a.At(0, 0).RatString() != "1" {
		t.Error("Row aliases matrix")
	}
	c := a.Col(1)
	if c[0].RatString() != "2" || c[1].RatString() != "4" {
		t.Error("Col wrong")
	}
	cl := a.Clone()
	cl.Set(0, 0, rational.Int(42))
	if a.At(0, 0).RatString() != "1" {
		t.Error("Clone aliases matrix")
	}
}

func TestInverse(t *testing.T) {
	a := mustM(t, [][]string{{"2", "1"}, {"1", "1"}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, err := a.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(Identity(2)) {
		t.Errorf("A·A⁻¹ =\n%s", prod)
	}
}

func TestInverseSingular(t *testing.T) {
	a := mustM(t, [][]string{{"1", "2"}, {"2", "4"}})
	if _, err := a.Inverse(); !errors.Is(err, ErrSingular) {
		t.Errorf("expected ErrSingular, got %v", err)
	}
	if _, err := New(2, 3).Inverse(); err == nil {
		t.Error("non-square inverse should error")
	}
}

func TestSolve(t *testing.T) {
	a := mustM(t, [][]string{{"2", "1"}, {"1", "3"}})
	b := []*big.Rat{rational.Int(5), rational.Int(10)}
	x, err := a.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	if !rational.VectorEqual(got, b) {
		t.Errorf("A·x = %v, want %v", got, b)
	}
}

func TestDetKnownValues(t *testing.T) {
	cases := []struct {
		m    [][]string
		want string
	}{
		{[][]string{{"5"}}, "5"},
		{[][]string{{"1", "2"}, {"3", "4"}}, "-2"},
		{[][]string{{"2", "0", "0"}, {"0", "3", "0"}, {"0", "0", "4"}}, "24"},
		{[][]string{{"1", "2"}, {"2", "4"}}, "0"},
		{[][]string{{"0", "1"}, {"1", "0"}}, "-1"}, // forces a row swap
	}
	for _, c := range cases {
		m := mustM(t, c.m)
		d, err := m.Det()
		if err != nil {
			t.Fatal(err)
		}
		if d.RatString() != c.want {
			t.Errorf("Det(%v) = %s, want %s", c.m, d.RatString(), c.want)
		}
		dc, err := m.DetCofactor()
		if err != nil {
			t.Fatal(err)
		}
		if dc.Cmp(d) != 0 {
			t.Errorf("DetCofactor = %s disagrees with Det = %s", dc.RatString(), d.RatString())
		}
	}
	if _, err := New(2, 3).Det(); err == nil {
		t.Error("non-square Det should error")
	}
	if _, err := New(2, 3).DetCofactor(); err == nil {
		t.Error("non-square DetCofactor should error")
	}
}

func TestDetAgreesWithCofactorRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		m := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rational.New(int64(rng.Intn(11)-5), int64(rng.Intn(4)+1)))
			}
		}
		d1, err := m.Det()
		if err != nil {
			t.Fatal(err)
		}
		d2, err := m.DetCofactor()
		if err != nil {
			t.Fatal(err)
		}
		if d1.Cmp(d2) != 0 {
			t.Fatalf("trial %d: Det=%s DetCofactor=%s\n%s", trial, d1.RatString(), d2.RatString(), m)
		}
	}
}

func TestReplaceCol(t *testing.T) {
	a := mustM(t, [][]string{{"1", "2"}, {"3", "4"}})
	v := []*big.Rat{rational.Int(7), rational.Int(8)}
	b, err := a.ReplaceCol(1, v)
	if err != nil {
		t.Fatal(err)
	}
	if b.At(0, 1).RatString() != "7" || b.At(1, 1).RatString() != "8" {
		t.Error("ReplaceCol wrong")
	}
	if a.At(0, 1).RatString() != "2" {
		t.Error("ReplaceCol mutated original")
	}
	if _, err := a.ReplaceCol(5, v); err == nil {
		t.Error("out-of-range column should error")
	}
	if _, err := a.ReplaceCol(0, v[:1]); err == nil {
		t.Error("wrong-length column should error")
	}
}

func TestStochasticPredicates(t *testing.T) {
	s := mustM(t, [][]string{{"1/2", "1/2"}, {"1/4", "3/4"}})
	if !s.IsStochastic() || !s.IsGeneralizedStochastic() || !s.IsNonNegative() {
		t.Error("valid stochastic matrix rejected")
	}
	g := mustM(t, [][]string{{"3/2", "-1/2"}, {"1/4", "3/4"}})
	if g.IsStochastic() {
		t.Error("negative entry accepted as stochastic")
	}
	if !g.IsGeneralizedStochastic() {
		t.Error("generalized stochastic rejected")
	}
	if g.IsNonNegative() {
		t.Error("IsNonNegative wrong")
	}
	bad := mustM(t, [][]string{{"1/2", "1/3"}})
	if bad.IsStochastic() || bad.IsGeneralizedStochastic() {
		t.Error("row sum != 1 accepted")
	}
}

func TestRowSums(t *testing.T) {
	m := mustM(t, [][]string{{"1/2", "1/3"}, {"1", "1"}})
	s := m.RowSums()
	if s[0].RatString() != "5/6" || s[1].RatString() != "2" {
		t.Errorf("RowSums = %v", s)
	}
}

func TestFloat64(t *testing.T) {
	m := mustM(t, [][]string{{"1/2", "1/4"}})
	f := m.Float64()
	if f[0][0] != 0.5 || f[0][1] != 0.25 {
		t.Errorf("Float64 = %v", f)
	}
}

func TestStringRendering(t *testing.T) {
	m := mustM(t, [][]string{{"1/2", "1"}, {"1", "1/2"}})
	s := m.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random small rational matrices.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		mk := func() *Matrix {
			m := New(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					m.Set(i, j, rational.New(int64(rng.Intn(7)-3), int64(rng.Intn(3)+1)))
				}
			}
			return m
		}
		a, b := mk(), mk()
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		lhs := ab.Transpose()
		rhs, err := b.Transpose().Mul(a.Transpose())
		if err != nil {
			return false
		}
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: det(A·B) == det(A)·det(B).
func TestQuickDetMultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		mk := func() *Matrix {
			m := New(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					m.Set(i, j, rational.New(int64(rng.Intn(9)-4), 1))
				}
			}
			return m
		}
		a, b := mk(), mk()
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		da, _ := a.Det()
		db, _ := b.Det()
		dab, _ := ab.Det()
		return dab.Cmp(rational.Mul(da, db)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: for random nonsingular A, A·A⁻¹ == I.
func TestQuickInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		m := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rational.New(int64(rng.Intn(9)-4), int64(rng.Intn(3)+1)))
			}
		}
		d, err := m.Det()
		if err != nil || d.Sign() == 0 {
			return true // skip singular draws
		}
		inv, err := m.Inverse()
		if err != nil {
			return false
		}
		prod, err := m.Mul(inv)
		if err != nil {
			return false
		}
		return prod.Equal(Identity(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMulStatsCountersAndEquivalence pins the hybrid threading of the
// product: small operands stay on the fast tiers (SmallOps > 0, no
// big fallbacks) and the result is identical to entrywise dot
// products over big.Rat.
func TestMulStatsCountersAndEquivalence(t *testing.T) {
	a := mustM(t, [][]string{{"1/2", "1/3"}, {"2/5", "7"}})
	b := mustM(t, [][]string{{"3", "1/7"}, {"1/11", "4/9"}})
	got, stats, err := a.MulStats(b)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: naive big.Rat dot products.
	want := New(2, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			acc := rational.Zero()
			for k := 0; k < 2; k++ {
				acc.Add(acc, rational.Mul(a.At(i, k), b.At(k, j)))
			}
			want.Set(i, j, acc)
		}
	}
	if !got.Equal(want) {
		t.Fatalf("MulStats product mismatch:\n%v\nwant\n%v", got, want)
	}
	if stats.SmallOps == 0 {
		t.Errorf("stats.SmallOps = 0; hybrid fast tier never engaged")
	}
	if stats.BigOps != 0 {
		t.Errorf("stats.BigOps = %d on tiny operands; ladder promoted too eagerly", stats.BigOps)
	}
}

// TestMulStatsEscalatesTiers drives the product across both overflow
// boundaries: entries past int64 engage the Wide tier and entries
// past 128 bits pay the big fallback, with the value always exact.
func TestMulStatsEscalatesTiers(t *testing.T) {
	huge := new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), 100))  // 2^100: Wide-sized
	giant := new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), 200)) // 2^200: big-only
	a := New(2, 2)
	a.Set(0, 0, huge)
	a.Set(0, 1, rational.One())
	a.Set(1, 0, giant)
	a.Set(1, 1, rational.One())
	b := New(2, 2)
	b.Set(0, 0, rational.One())
	b.Set(1, 1, rational.One())
	got, stats, err := a.MulStats(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0).Cmp(huge) != 0 || got.At(1, 0).Cmp(giant) != 0 {
		t.Fatalf("tiered product lost exactness:\n%v", got)
	}
	if stats.WideOps == 0 {
		t.Errorf("stats.WideOps = 0; 2^100 entries should ride the Wide tier")
	}
	if stats.BigOps == 0 {
		t.Errorf("stats.BigOps = 0; 2^200 entries cannot fit 128 bits")
	}
}

// TestDetStatsCountersAndEquivalence pins the hybrid threading of the
// determinant elimination against the cofactor oracle.
func TestDetStatsCountersAndEquivalence(t *testing.T) {
	m := mustM(t, [][]string{
		{"2/3", "1/5", "0", "1"},
		{"1", "3/7", "1/2", "0"},
		{"0", "1/9", "4", "2/11"},
		{"5", "0", "1/13", "3"},
	})
	got, stats, err := m.DetStats()
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.DetCofactor()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("DetStats = %s, cofactor oracle = %s", got.RatString(), want.RatString())
	}
	if stats.SmallOps == 0 {
		t.Errorf("stats.SmallOps = 0; hybrid fast tier never engaged")
	}
}
