package release

import (
	"errors"
	"math"
	"math/big"
	"testing"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
	"minimaxdp/internal/stats"
)

func r(s string) *big.Rat { return rational.MustParse(s) }

func levels(ss ...string) []*big.Rat {
	out := make([]*big.Rat, len(ss))
	for i, s := range ss {
		out[i] = r(s)
	}
	return out
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(0, levels("1/2")); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewPlan(3, nil); err == nil {
		t.Error("no levels accepted")
	}
	if _, err := NewPlan(3, levels("1/2", "1/4")); !errors.Is(err, ErrBadLevels) {
		t.Error("decreasing levels accepted")
	}
	if _, err := NewPlan(3, levels("1/2", "1/2")); !errors.Is(err, ErrBadLevels) {
		t.Error("equal levels accepted")
	}
	if _, err := NewPlan(3, levels("0")); !errors.Is(err, ErrBadLevels) {
		t.Error("α=0 accepted")
	}
	if _, err := NewPlan(3, levels("1")); !errors.Is(err, ErrBadLevels) {
		t.Error("α=1 accepted")
	}
}

func TestPlanAccessors(t *testing.T) {
	p, err := NewPlan(4, levels("1/4", "1/2", "3/4"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Levels() != 3 || p.N() != 4 {
		t.Error("Levels/N wrong")
	}
	a, err := p.Alpha(2)
	if err != nil || a.RatString() != "1/2" {
		t.Errorf("Alpha(2) = %v, %v", a, err)
	}
	if _, err := p.Alpha(0); err == nil {
		t.Error("level 0 accepted")
	}
	if _, err := p.Alpha(4); err == nil {
		t.Error("level 4 accepted")
	}
	m, err := p.Marginal(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 {
		t.Error("marginal has wrong size")
	}
	if _, err := p.Marginal(9); err == nil {
		t.Error("bad marginal level accepted")
	}
	tr, err := p.Transition(1)
	if err != nil || !tr.IsStochastic() {
		t.Errorf("Transition(1) = %v, %v", tr, err)
	}
	if _, err := p.Transition(3); err == nil {
		t.Error("transition 3 of a 3-level plan accepted (only 2 exist)")
	}
}

// Each marginal must be exactly G_{n,αᵢ}, and chaining transitions
// must reproduce it: G_{α1}·T1·…·T_{i−1} = G_{αi} (Algorithm 1's
// invariant).
func TestCascadeMarginalsExact(t *testing.T) {
	p, err := NewPlan(3, levels("1/5", "2/5", "3/5", "4/5"))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := p.Marginal(1)
	if err != nil {
		t.Fatal(err)
	}
	acc := cur.Matrix()
	for lvl := 2; lvl <= p.Levels(); lvl++ {
		tr, err := p.Transition(lvl - 1)
		if err != nil {
			t.Fatal(err)
		}
		acc, err = acc.Mul(tr)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.Marginal(lvl)
		if err != nil {
			t.Fatal(err)
		}
		if !acc.Equal(want.Matrix()) {
			t.Fatalf("chained mechanism at level %d != G_{n,α%d}", lvl, lvl)
		}
	}
}

func TestReleaseShapesAndRanges(t *testing.T) {
	p, err := NewPlan(5, levels("1/4", "1/2"))
	if err != nil {
		t.Fatal(err)
	}
	rng := sample.NewRand(2)
	out, err := p.Release(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d results", len(out))
	}
	for _, v := range out {
		if v < 0 || v > 5 {
			t.Errorf("result %d outside [0,5]", v)
		}
	}
	if _, err := p.Release(9, rng); err == nil {
		t.Error("out-of-range truth accepted")
	}
	if _, err := p.NaiveRelease(9, rng); err == nil {
		t.Error("out-of-range truth accepted by naive")
	}
}

// The marginal law of every cascade level matches its geometric
// mechanism empirically (Algorithm 1 releases G_{n,αᵢ} at level i).
func TestCascadeMarginalLawEmpirical(t *testing.T) {
	p, err := NewPlan(4, levels("1/3", "2/3"))
	if err != nil {
		t.Fatal(err)
	}
	rng := sample.NewRand(31)
	const trials = 150000
	truth := 2
	counts := [2][]int{make([]int, 5), make([]int, 5)}
	for i := 0; i < trials; i++ {
		out, err := p.Release(truth, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[0][out[0]]++
		counts[1][out[1]]++
	}
	for lvl := 1; lvl <= 2; lvl++ {
		m, err := p.Marginal(lvl)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, 5)
		for rr := 0; rr <= 4; rr++ {
			want[rr] = rational.Float(m.Prob(truth, rr))
		}
		got := sample.EmpiricalPMF(counts[lvl-1])
		tv, err := stats.TotalVariation(got, want)
		if err != nil {
			t.Fatal(err)
		}
		if tv > 0.01 {
			t.Errorf("level %d marginal TV distance %.4f", lvl, tv)
		}
	}
}

func TestCollusionAlphaLemma4(t *testing.T) {
	p, err := NewPlan(3, levels("1/4", "1/2", "3/4"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.CollusionAlpha([]int{2, 3})
	if err != nil || a.RatString() != "1/2" {
		t.Errorf("coalition {2,3} α = %v, %v", a, err)
	}
	a, err = p.CollusionAlpha([]int{3, 1, 2})
	if err != nil || a.RatString() != "1/4" {
		t.Errorf("coalition {1,2,3} α = %v, %v", a, err)
	}
	if _, err := p.CollusionAlpha(nil); err == nil {
		t.Error("empty coalition accepted")
	}
	if _, err := p.CollusionAlpha([]int{5}); err == nil {
		t.Error("bad level accepted")
	}
}

func TestAveragingAttack(t *testing.T) {
	if AveragingAttack(nil, 5) != 0 {
		t.Error("empty attack should return 0")
	}
	if AveragingAttack([]int{2, 4}, 5) != 3 {
		t.Error("average of 2,4 should be 3")
	}
	if AveragingAttack([]int{0, 0, 20}, 5) != 5 {
		t.Error("clamp to n failed")
	}
}

// The headline collusion result: against the naive baseline a growing
// coalition's averaging attack gets strictly more accurate, while
// against the Algorithm 1 cascade it does not beat the single
// least-private release.
func TestCollusionExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo experiment")
	}
	// Eight nearby levels so averaging has real cancelling power.
	ls := levels("50/100", "51/100", "52/100", "53/100", "54/100", "55/100", "56/100", "57/100")
	p, err := NewPlan(20, ls)
	if err != nil {
		t.Fatal(err)
	}
	naive, cascade, err := p.CollusionExperiment(10, 4000, sample.NewRand(77))
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) != 8 || len(cascade) != 8 {
		t.Fatalf("result lengths %d/%d", len(naive), len(cascade))
	}
	// Naive: error with all 8 colluders must be clearly below the
	// single-release error.
	if naive[7].MeanAbsError > 0.75*naive[0].MeanAbsError {
		t.Errorf("naive averaging attack did not improve: 1 colluder %.3f, 8 colluders %.3f",
			naive[0].MeanAbsError, naive[7].MeanAbsError)
	}
	// Cascade: no coalition beats the least-private single release by
	// more than Monte-Carlo noise.
	tolerance := 0.05 * cascade[0].MeanAbsError
	for _, res := range cascade[1:] {
		if res.MeanAbsError < cascade[0].MeanAbsError-tolerance {
			t.Errorf("cascade coalition of %d beat single release: %.3f < %.3f",
				res.Colluders, res.MeanAbsError, cascade[0].MeanAbsError)
		}
	}
	_ = math.Abs // keep math import if tolerances change
}

func TestCollusionExperimentValidation(t *testing.T) {
	p, err := NewPlan(3, levels("1/4", "1/2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.CollusionExperiment(9, 10, sample.NewRand(1)); err == nil {
		t.Error("bad truth accepted")
	}
	if _, _, err := p.CollusionExperiment(1, 0, sample.NewRand(1)); err == nil {
		t.Error("zero trials accepted")
	}
}

// Correlation check: cascade results are positively correlated across
// levels (they share the first draw's noise); naive results are
// essentially uncorrelated given the truth.
func TestCascadeCorrelation(t *testing.T) {
	p, err := NewPlan(20, levels("1/2", "11/20"))
	if err != nil {
		t.Fatal(err)
	}
	rng := sample.NewRand(13)
	const trials = 20000
	c1 := make([]float64, trials)
	c2 := make([]float64, trials)
	n1 := make([]float64, trials)
	n2 := make([]float64, trials)
	for i := 0; i < trials; i++ {
		cv, err := p.Release(10, rng)
		if err != nil {
			t.Fatal(err)
		}
		nv, err := p.NaiveRelease(10, rng)
		if err != nil {
			t.Fatal(err)
		}
		c1[i], c2[i] = float64(cv[0]), float64(cv[1])
		n1[i], n2[i] = float64(nv[0]), float64(nv[1])
	}
	cc, err := stats.Correlation(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := stats.Correlation(n1, n2)
	if err != nil {
		t.Fatal(err)
	}
	if cc < 0.5 {
		t.Errorf("cascade correlation %.3f, want strongly positive", cc)
	}
	if math.Abs(nc) > 0.05 {
		t.Errorf("naive correlation %.3f, want ≈ 0", nc)
	}
}

// ViewsFor: per-level optimal interactions exist, and the loss is
// non-decreasing in the privacy level.
func TestViewsFor(t *testing.T) {
	p, err := NewPlan(4, levels("1/4", "1/2", "3/4"))
	if err != nil {
		t.Fatal(err)
	}
	c := &consumer.Consumer{Loss: loss.Absolute{}, Side: consumer.Interval(1, 3)}
	views, err := p.ViewsFor(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("got %d views", len(views))
	}
	for i, v := range views {
		if v.Level != i+1 {
			t.Errorf("view %d has level %d", i, v.Level)
		}
		if v.Interaction == nil || v.Interaction.Loss == nil {
			t.Fatalf("view %d missing interaction", i)
		}
		if i > 0 && v.Interaction.Loss.Cmp(views[i-1].Interaction.Loss) < 0 {
			t.Errorf("loss decreased with more privacy: level %d %s < level %d %s",
				v.Level, v.Interaction.Loss.RatString(), views[i-1].Level, views[i-1].Interaction.Loss.RatString())
		}
	}
	// Bad consumer (empty side) surfaces the error.
	bad := &consumer.Consumer{Loss: loss.Absolute{}, Side: []int{99}}
	if _, err := p.ViewsFor(bad); err == nil {
		t.Error("empty-side consumer accepted")
	}
}
