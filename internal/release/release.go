// Package release implements Section 4.1 of the paper: simultaneous
// release of one count-query result at multiple privacy levels.
//
// Algorithm 1 draws the least-private result r₁ from G_{n,α₁} and then
// produces each more-private result by pushing the previous one
// through the Lemma 3 transition matrix T_{αᵢ,αᵢ₊₁} (so the marginal
// law of rᵢ is exactly G_{n,αᵢ}). Because every rᵢ with i > 1 is a
// randomized function of r₁ alone, any coalition of consumers learns
// no more about the database than the member with the weakest privacy
// level (Lemma 4) — the release is collusion-resistant.
//
// The package also implements the naive baseline the paper warns
// about — independent re-perturbation at every level — together with
// the averaging attack that defeats it.
package release

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/derive"
	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
)

// Plan is a prepared multi-level release: the geometric mechanism at
// the least-private level plus the chain of Lemma 3 transitions.
// Build once with NewPlan, then call Release per query result.
type Plan struct {
	n           int
	alphas      []*big.Rat
	first       *mechanism.Mechanism
	transitions []*matrix.Matrix       // transitions[i]: level i → level i+1
	marginals   []*mechanism.Mechanism // G_{n,αᵢ} for each level
}

// ErrBadLevels is returned when the privacy levels are not strictly
// increasing within (0,1).
var ErrBadLevels = errors.New("release: privacy levels must be strictly increasing within (0,1)")

// validateLevels checks the shared Plan preconditions: n ≥ 1 and a
// non-empty ladder of strictly increasing levels within (0,1).
func validateLevels(n int, alphas []*big.Rat) error {
	if n < 1 {
		return fmt.Errorf("release: n must be ≥ 1, got %d", n)
	}
	if len(alphas) == 0 {
		return fmt.Errorf("release: at least one privacy level required")
	}
	one := rational.One()
	for i, a := range alphas {
		if a == nil {
			return fmt.Errorf("%w: level %d is nil", ErrBadLevels, i+1)
		}
		if a.Sign() <= 0 || a.Cmp(one) >= 0 {
			return fmt.Errorf("%w: level %d is %s", ErrBadLevels, i+1, a.RatString())
		}
		if i > 0 && a.Cmp(alphas[i-1]) <= 0 {
			return fmt.Errorf("%w: level %d (%s) ≤ level %d (%s)",
				ErrBadLevels, i+1, a.RatString(), i, alphas[i-1].RatString())
		}
	}
	return nil
}

// NewPlan validates the levels α₁ < … < α_k (all in (0,1)) and
// precomputes the release chain of Algorithm 1.
func NewPlan(n int, alphas []*big.Rat) (*Plan, error) {
	if err := validateLevels(n, alphas); err != nil {
		return nil, err
	}
	p := &Plan{n: n}
	for _, a := range alphas {
		p.alphas = append(p.alphas, rational.Clone(a))
	}
	var err error
	p.first, err = mechanism.Geometric(n, alphas[0])
	if err != nil {
		return nil, err
	}
	p.marginals = append(p.marginals, p.first)
	for i := 0; i+1 < len(alphas); i++ {
		tr, err := derive.Transition(n, alphas[i], alphas[i+1])
		if err != nil {
			return nil, fmt.Errorf("release: building T_{α%d,α%d}: %w", i+1, i+2, err)
		}
		p.transitions = append(p.transitions, tr)
		g, err := mechanism.Geometric(n, alphas[i+1])
		if err != nil {
			return nil, err
		}
		p.marginals = append(p.marginals, g)
	}
	return p, nil
}

// PlanFromParts reassembles a Plan from its persisted parts — the
// level ladder and the Lemma 3 transition chain — without re-deriving
// the transitions (the expensive step: each T_{αᵢ,αᵢ₊₁} costs an
// exact inverse-and-multiply, while the marginal mechanisms G_{n,αᵢ}
// have a cheap closed form and are rebuilt here). It validates the
// ladder exactly as NewPlan does and additionally checks the chain's
// shape: k−1 transitions, each a row-stochastic (n+1)×(n+1) matrix.
// The transitions are cloned, so the caller's matrices stay private.
//
// PlanFromParts trusts that transitions[i] really is T_{αᵢ,αᵢ₊₁}
// (verifying would mean re-deriving it); callers reassembling from
// untrusted bytes must pair this with checksummed storage.
func PlanFromParts(n int, alphas []*big.Rat, transitions []*matrix.Matrix) (*Plan, error) {
	if err := validateLevels(n, alphas); err != nil {
		return nil, err
	}
	if len(transitions) != len(alphas)-1 {
		return nil, fmt.Errorf("release: %d levels need %d transitions, got %d",
			len(alphas), len(alphas)-1, len(transitions))
	}
	p := &Plan{n: n}
	for _, a := range alphas {
		p.alphas = append(p.alphas, rational.Clone(a))
	}
	for i, tr := range transitions {
		if tr == nil || tr.Rows() != n+1 || tr.Cols() != n+1 {
			return nil, fmt.Errorf("release: transition %d is not (n+1)×(n+1)", i+1)
		}
		if !tr.IsStochastic() {
			return nil, fmt.Errorf("release: transition %d is not row-stochastic", i+1)
		}
		p.transitions = append(p.transitions, tr.Clone())
	}
	for i, a := range p.alphas {
		g, err := mechanism.Geometric(n, a)
		if err != nil {
			return nil, fmt.Errorf("release: rebuilding marginal %d: %w", i+1, err)
		}
		p.marginals = append(p.marginals, g)
	}
	p.first = p.marginals[0]
	return p, nil
}

// Levels returns the number of privacy levels.
func (p *Plan) Levels() int { return len(p.alphas) }

// N returns the database size.
func (p *Plan) N() int { return p.n }

// Alpha returns the privacy parameter of level (1-based, matching the
// paper's α₁ … α_k).
func (p *Plan) Alpha(level int) (*big.Rat, error) {
	if level < 1 || level > len(p.alphas) {
		return nil, fmt.Errorf("release: level %d out of range 1..%d", level, len(p.alphas))
	}
	return rational.Clone(p.alphas[level-1]), nil
}

// Marginal returns the exact marginal mechanism at a level — always
// the geometric mechanism G_{n,αᵢ} (the paper's M_i).
func (p *Plan) Marginal(level int) (*mechanism.Mechanism, error) {
	if level < 1 || level > len(p.marginals) {
		return nil, fmt.Errorf("release: level %d out of range 1..%d", level, len(p.marginals))
	}
	return p.marginals[level-1], nil
}

// Transition returns the Lemma 3 stochastic matrix mapping level i
// results to level i+1 results (1 ≤ i < k).
func (p *Plan) Transition(level int) (*matrix.Matrix, error) {
	if level < 1 || level > len(p.transitions) {
		return nil, fmt.Errorf("release: transition %d out of range 1..%d", level, len(p.transitions))
	}
	return p.transitions[level-1].Clone(), nil
}

// Release runs Algorithm 1: it returns one result per privacy level,
// r[0] for the least-private consumer (α₁) through r[k−1] for the
// most-private (α_k). Successive results are correlated by
// construction: r[i+1] is sampled from the T_{αᵢ,αᵢ₊₁} row of r[i].
func (p *Plan) Release(trueResult int, rng *rand.Rand) ([]int, error) {
	if trueResult < 0 || trueResult > p.n {
		return nil, fmt.Errorf("release: true result %d out of range [0,%d]", trueResult, p.n)
	}
	out := make([]int, len(p.alphas))
	out[0] = p.first.Sample(trueResult, rng)
	for i, tr := range p.transitions {
		out[i+1] = sampleRow(tr, out[i], rng)
	}
	return out, nil
}

// NaiveRelease is the baseline the paper warns against: every level
// gets an independent draw of its geometric mechanism. Marginally each
// result has the right law, but the draws are independent, so
// colluding consumers can average away the noise.
func (p *Plan) NaiveRelease(trueResult int, rng *rand.Rand) ([]int, error) {
	if trueResult < 0 || trueResult > p.n {
		return nil, fmt.Errorf("release: true result %d out of range [0,%d]", trueResult, p.n)
	}
	out := make([]int, len(p.marginals))
	for i, g := range p.marginals {
		out[i] = g.Sample(trueResult, rng)
	}
	return out, nil
}

func sampleRow(m *matrix.Matrix, row int, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	last := m.Cols() - 1
	for j := 0; j <= last; j++ {
		acc += rational.Float(m.At(row, j))
		if u < acc {
			return j
		}
	}
	return last
}

// CollusionAlpha implements Lemma 4's guarantee: a coalition holding
// the results of the given levels (1-based) is protected exactly at
// the weakest member's level, α_min(C).
func (p *Plan) CollusionAlpha(levels []int) (*big.Rat, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("release: empty coalition")
	}
	min := 0
	for _, l := range levels {
		if l < 1 || l > len(p.alphas) {
			return nil, fmt.Errorf("release: level %d out of range 1..%d", l, len(p.alphas))
		}
		if min == 0 || l < min {
			min = l
		}
	}
	return rational.Clone(p.alphas[min-1]), nil
}

// AttackResult summarizes one arm of the collusion experiment.
type AttackResult struct {
	Colluders    int
	MeanAbsError float64 // averaging estimator |estimate − truth|, Monte-Carlo mean
}

// AveragingAttack estimates the true result from a slice of released
// values by averaging and rounding (clamped to [0,n]) — the
// Chernoff-style noise-cancelling attack of Section 2.6.
func AveragingAttack(results []int, n int) int {
	if len(results) == 0 {
		return 0
	}
	s := 0
	for _, r := range results {
		s += r
	}
	est := int(math.Round(float64(s) / float64(len(results))))
	if est < 0 {
		est = 0
	}
	if est > n {
		est = n
	}
	return est
}

// CollusionExperiment runs the Monte-Carlo comparison behind
// experiment ECol: for coalition sizes 1..Levels it measures the mean
// absolute error of the averaging attack against (a) the naive
// independent release and (b) the Algorithm 1 cascade. Under the
// naive baseline the error shrinks as the coalition grows; under the
// cascade it does not improve on the single least-private result.
func (p *Plan) CollusionExperiment(truth, trials int, rng *rand.Rand) (naive, cascade []AttackResult, err error) {
	if truth < 0 || truth > p.n {
		return nil, nil, fmt.Errorf("release: truth %d out of range [0,%d]", truth, p.n)
	}
	if trials <= 0 {
		return nil, nil, fmt.Errorf("release: trials must be positive")
	}
	k := p.Levels()
	naiveErr := make([]float64, k)
	cascadeErr := make([]float64, k)
	for t := 0; t < trials; t++ {
		nv, err := p.NaiveRelease(truth, rng)
		if err != nil {
			return nil, nil, err
		}
		cv, err := p.Release(truth, rng)
		if err != nil {
			return nil, nil, err
		}
		for c := 1; c <= k; c++ {
			ne := AveragingAttack(nv[:c], p.n) - truth
			if ne < 0 {
				ne = -ne
			}
			naiveErr[c-1] += float64(ne)
			ce := AveragingAttack(cv[:c], p.n) - truth
			if ce < 0 {
				ce = -ce
			}
			cascadeErr[c-1] += float64(ce)
		}
	}
	for c := 1; c <= k; c++ {
		naive = append(naive, AttackResult{Colluders: c, MeanAbsError: naiveErr[c-1] / float64(trials)})
		cascade = append(cascade, AttackResult{Colluders: c, MeanAbsError: cascadeErr[c-1] / float64(trials)})
	}
	return naive, cascade, nil
}

// ConsumerView pairs a privacy level with the optimal post-processing
// a given consumer applies to that level's marginal mechanism, and the
// resulting minimax loss.
type ConsumerView struct {
	Level int
	Alpha *big.Rat
	// Interaction is the consumer's optimal randomized remap of the
	// level's geometric mechanism (Theorem 1: its loss equals the
	// tailored optimum at this level).
	Interaction *consumer.Interaction
}

// ViewsFor computes, for every level of the plan, the optimal
// interaction of consumer c with that level's marginal mechanism. The
// slice is ordered least-private first, and losses are non-decreasing
// in the level (more privacy can only cost utility).
func (p *Plan) ViewsFor(c *consumer.Consumer) ([]ConsumerView, error) {
	out := make([]ConsumerView, 0, p.Levels())
	for lvl := 1; lvl <= p.Levels(); lvl++ {
		m, err := p.Marginal(lvl)
		if err != nil {
			return nil, err
		}
		inter, err := consumer.OptimalInteraction(c, m)
		if err != nil {
			return nil, fmt.Errorf("release: level %d interaction: %w", lvl, err)
		}
		a, err := p.Alpha(lvl)
		if err != nil {
			return nil, err
		}
		out = append(out, ConsumerView{Level: lvl, Alpha: a, Interaction: inter})
	}
	return out, nil
}
