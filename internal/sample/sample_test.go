package sample

import (
	"errors"
	"math"
	"testing"
)

func TestGeometricDistribution(t *testing.T) {
	rng := NewRand(1)
	const alpha = 0.5
	const trials = 200000
	counts := CountSamples(trials, 12, func() int { return Geometric(alpha, rng) })
	pmf := EmpiricalPMF(counts)
	for k := 0; k < 8; k++ {
		want := (1 - alpha) * math.Pow(alpha, float64(k))
		if diff := math.Abs(pmf[k] - want); diff > 0.01 {
			t.Errorf("Pr[G=%d] = %.4f, want %.4f", k, pmf[k], want)
		}
	}
}

func TestGeometricPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("α=%v did not panic", a)
				}
			}()
			Geometric(a, NewRand(1))
		}()
	}
}

func TestTwoSidedGeometricLaw(t *testing.T) {
	rng := NewRand(7)
	const alpha = 0.4
	const trials = 300000
	const span = 10 // check z in [-span, span]
	counts := make(map[int]int)
	for i := 0; i < trials; i++ {
		counts[TwoSidedGeometric(alpha, rng)]++
	}
	norm := (1 - alpha) / (1 + alpha)
	for z := -span; z <= span; z++ {
		want := norm * math.Pow(alpha, math.Abs(float64(z)))
		got := float64(counts[z]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Pr[Z=%d] = %.4f, want %.4f", z, got, want)
		}
	}
}

// The two samplers implement the same law (Definition 1); compare
// their empirical PMFs.
func TestTwoSidedSamplersAgree(t *testing.T) {
	rng := NewRand(11)
	const alpha = 0.3
	const trials = 200000
	a := make(map[int]int)
	b := make(map[int]int)
	for i := 0; i < trials; i++ {
		a[TwoSidedGeometric(alpha, rng)]++
		b[TwoSidedGeometricInverse(alpha, rng)]++
	}
	for z := -6; z <= 6; z++ {
		pa := float64(a[z]) / trials
		pb := float64(b[z]) / trials
		if math.Abs(pa-pb) > 0.01 {
			t.Errorf("samplers disagree at z=%d: %.4f vs %.4f", z, pa, pb)
		}
	}
}

func TestTwoSidedInversePanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("α=1 did not panic")
		}
	}()
	TwoSidedGeometricInverse(1, NewRand(1))
}

// Clamped sampling matches the range-restricted mechanism's boundary
// masses: Pr[output 0 | k] = α^k/(1+α).
func TestGeometricMechanismSampleBoundary(t *testing.T) {
	rng := NewRand(3)
	const alpha = 0.5
	const n = 5
	const k = 2
	const trials = 300000
	zeros := 0
	for i := 0; i < trials; i++ {
		v := GeometricMechanismSample(k, n, alpha, rng)
		if v < 0 || v > n {
			t.Fatalf("sample %d outside [0,%d]", v, n)
		}
		if v == 0 {
			zeros++
		}
	}
	want := math.Pow(alpha, k) / (1 + alpha)
	got := float64(zeros) / trials
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Pr[0] = %.4f, want %.4f", got, want)
	}
}

func TestInverseCDF(t *testing.T) {
	s, err := NewInverseCDF([]float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(5)
	counts := CountSamples(100000, 3, func() int { return s.Sample(rng) })
	pmf := EmpiricalPMF(counts)
	want := []float64{0.25, 0.5, 0.25}
	for i := range want {
		if math.Abs(pmf[i]-want[i]) > 0.01 {
			t.Errorf("inverse-CDF pmf[%d] = %.4f, want %.2f", i, pmf[i], want[i])
		}
	}
}

func TestAliasMatchesInverseCDF(t *testing.T) {
	weights := []float64{0.1, 0.4, 0.05, 0.25, 0.2}
	inv, err := NewInverseCDF(weights)
	if err != nil {
		t.Fatal(err)
	}
	al, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(9)
	const trials = 300000
	ci := CountSamples(trials, len(weights), func() int { return inv.Sample(rng) })
	ca := CountSamples(trials, len(weights), func() int { return al.Sample(rng) })
	pi, pa := EmpiricalPMF(ci), EmpiricalPMF(ca)
	for i := range weights {
		if math.Abs(pi[i]-weights[i]) > 0.01 {
			t.Errorf("inverse pmf[%d] = %.4f, want %.2f", i, pi[i], weights[i])
		}
		if math.Abs(pa[i]-weights[i]) > 0.01 {
			t.Errorf("alias pmf[%d] = %.4f, want %.2f", i, pa[i], weights[i])
		}
	}
}

func TestSamplerConstructionErrors(t *testing.T) {
	bad := [][]float64{nil, {}, {0, 0}, {-1, 2}, {math.NaN()}, {math.Inf(1)}}
	for _, w := range bad {
		if _, err := NewInverseCDF(w); !errors.Is(err, ErrBadWeights) {
			t.Errorf("NewInverseCDF(%v) err = %v", w, err)
		}
		if _, err := NewAlias(w); !errors.Is(err, ErrBadWeights) {
			t.Errorf("NewAlias(%v) err = %v", w, err)
		}
	}
}

func TestAliasSingleton(t *testing.T) {
	al, err := NewAlias([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(1)
	for i := 0; i < 100; i++ {
		if al.Sample(rng) != 0 {
			t.Fatal("singleton alias sampled nonzero index")
		}
	}
}

func TestEmpiricalPMF(t *testing.T) {
	pmf := EmpiricalPMF([]int{1, 3, 0})
	if pmf[0] != 0.25 || pmf[1] != 0.75 || pmf[2] != 0 {
		t.Errorf("EmpiricalPMF = %v", pmf)
	}
	zero := EmpiricalPMF([]int{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("zero-count PMF = %v", zero)
	}
}

func TestCountSamplesClamps(t *testing.T) {
	i := -5
	counts := CountSamples(11, 3, func() int { i++; return i })
	// Values -4..6 clamp into [0,2].
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 11 {
		t.Errorf("total = %d", total)
	}
	if counts[0] < 4 || counts[2] < 4 {
		t.Errorf("clamping wrong: %v", counts)
	}
}

func TestReproducibility(t *testing.T) {
	a := NewRand(1234)
	b := NewRand(1234)
	for i := 0; i < 100; i++ {
		if TwoSidedGeometric(0.5, a) != TwoSidedGeometric(0.5, b) {
			t.Fatal("same seed, different streams")
		}
	}
}
