package sample_test

// Kernel-level benchmarks for the dyadic alias sampler; part of the
// BENCH_sample.json suite. DyadicAliasWord is the irreducible cost of
// one draw — table lookup plus compare, PRNG excluded — and
// DyadicAliasSample adds the lock-free splitmix64 word.

import (
	"testing"

	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
)

func benchAlias(b *testing.B) *sample.DyadicAlias {
	b.Helper()
	g, err := mechanism.Geometric(64, rational.MustParse("1/2"))
	if err != nil {
		b.Fatal(err)
	}
	d, err := sample.NewDyadicAlias(g.Row(32))
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkDyadicAliasWord(b *testing.B) {
	d := benchAlias(b)
	b.ReportAllocs()
	b.ResetTimer()
	acc := 0
	for i := 0; i < b.N; i++ {
		// A cheap Weyl sequence stands in for the PRNG so the measured
		// op is the kernel itself.
		acc += d.SampleWord(uint64(i) * 0x9E3779B97F4A7C15)
	}
	sinkInt = acc
}

func BenchmarkDyadicAliasSample(b *testing.B) {
	d := benchAlias(b)
	var rng sample.AtomicSplitmix
	rng.Seed(1)
	b.ReportAllocs()
	b.ResetTimer()
	acc := 0
	for i := 0; i < b.N; i++ {
		acc += d.Sample(&rng)
	}
	sinkInt = acc
}

// BenchmarkDyadicAliasBuild measures table construction (exact Walker
// split plus the rational certificate) — the cost the engine pays
// once per cached mechanism row.
func BenchmarkDyadicAliasBuild(b *testing.B) {
	g, err := mechanism.Geometric(64, rational.MustParse("1/2"))
	if err != nil {
		b.Fatal(err)
	}
	row := g.Row(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sample.NewDyadicAlias(row); err != nil {
			b.Fatal(err)
		}
	}
	_ = row
}

var sinkInt int
