package sample_test

// External test package so the goodness-of-fit tests can lean on
// internal/stats and internal/mechanism without an import cycle.

import (
	"math"
	"math/big"
	"testing"

	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
	"minimaxdp/internal/stats"
)

func ratWeights(ss ...string) []*big.Rat {
	out := make([]*big.Rat, len(ss))
	for i, s := range ss {
		out[i] = rational.MustParse(s)
	}
	return out
}

// chiSquareCritical approximates the upper-tail critical value of the
// chi-square distribution with df degrees of freedom at significance
// 10^−3, via the Wilson–Hilferty cube approximation (z = 3.0902 for
// the 0.999 quantile). Accurate to a few percent for df ≥ 2, plenty
// for a flakiness-averse CI gate.
func chiSquareCritical(df int) float64 {
	z := 3.0902
	d := float64(df)
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// maxDeviation returns max_j |induced(j) − weights(j)/Σweights| as a
// float for reporting; exactness is asserted separately.
func maxDeviation(d *sample.DyadicAlias, weights []*big.Rat) *big.Rat {
	total := new(big.Rat)
	for _, w := range weights {
		total.Add(total, w)
	}
	induced := d.InducedPMF(len(weights))
	max := new(big.Rat)
	dev := new(big.Rat)
	p := new(big.Rat)
	for j, w := range weights {
		p.Quo(w, total)
		dev.Sub(induced[j], p)
		dev.Abs(dev)
		if dev.Cmp(max) > 0 {
			max.Set(dev)
		}
	}
	return max
}

func TestDyadicAliasInducedPMF(t *testing.T) {
	cases := [][]*big.Rat{
		ratWeights("1/2", "1/3", "1/6"),
		ratWeights("1"),                        // single outcome, k=0 sentinel path
		ratWeights("0", "5", "0", "0"),         // zero weights around a point mass
		ratWeights("1/7", "2/7", "4/7"),        // non-dyadic denominators
		ratWeights("3", "1", "1", "1", "2"),    // unnormalized, non-power-of-two
		ratWeights("1/2", "1/4", "1/8", "1/8"), // exactly dyadic: representable exactly
	}
	for ci, weights := range cases {
		d, err := sample.NewDyadicAlias(weights)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		// The constructor certifies ≤ 2^−b; re-derive the bound here
		// as an independent check.
		b := 64 - uint(0)
		for 1<<(64-b) < len(weights) {
			b--
		}
		bound := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), b))
		if dev := maxDeviation(d, weights); dev.Cmp(bound) > 0 {
			t.Errorf("case %d: max deviation %s exceeds 2^−%d", ci, dev.RatString(), b)
		}
	}
}

func TestDyadicAliasExactForDyadicWeights(t *testing.T) {
	// When every probability is a dyadic rational with ≤ b bits the
	// quantization is lossless and the induced PMF equals the input
	// exactly.
	weights := ratWeights("1/2", "1/4", "1/8", "1/8")
	d, err := sample.NewDyadicAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	for j, p := range d.InducedPMF(len(weights)) {
		if p.Cmp(weights[j]) != 0 {
			t.Errorf("induced[%d] = %s, want %s exactly", j, p.RatString(), weights[j].RatString())
		}
	}
}

func TestDyadicAliasZeroWeightNeverSampled(t *testing.T) {
	weights := ratWeights("0", "1/3", "0", "2/3", "0")
	d, err := sample.NewDyadicAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	induced := d.InducedPMF(len(weights))
	for _, j := range []int{0, 2, 4} {
		if induced[j].Sign() != 0 {
			t.Errorf("zero-weight outcome %d has induced mass %s", j, induced[j].RatString())
		}
	}
	var rng sample.AtomicSplitmix
	rng.Seed(11)
	for k := 0; k < 100000; k++ {
		switch r := d.SampleWord(rng.Uint64()); r {
		case 1, 3:
		default:
			t.Fatalf("draw %d hit zero-weight or out-of-range outcome %d", k, r)
		}
	}
}

func TestDyadicAliasBadWeights(t *testing.T) {
	for name, weights := range map[string][]*big.Rat{
		"empty":    {},
		"negative": ratWeights("1/2", "-1/2"),
		"all-zero": ratWeights("0", "0", "0"),
		"nil":      {rational.One(), nil},
	} {
		if _, err := sample.NewDyadicAlias(weights); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestDyadicAliasChiSquareGeometric is the statistical half of the
// certificate: draws through the full fast path (AtomicSplitmix words
// into SampleWord) fit the *exact rational* geometric-mechanism row
// at the 10^−3 level, including at extreme α where the row is nearly
// degenerate.
func TestDyadicAliasChiSquareGeometric(t *testing.T) {
	const n, trials = 16, 200000
	for _, alphaStr := range []string{"1/2", "1/1000", "999/1000"} {
		alpha := rational.MustParse(alphaStr)
		g, err := mechanism.Geometric(n, alpha)
		if err != nil {
			t.Fatal(err)
		}
		for _, input := range []int{0, n / 2} {
			row := g.Row(input)
			d, err := sample.NewDyadicAlias(row)
			if err != nil {
				t.Fatalf("α=%s input=%d: %v", alphaStr, input, err)
			}
			var rng sample.AtomicSplitmix
			rng.SeedStream(7, uint64(input))
			counts := make([]int, n+1)
			blk := rng.Block(trials)
			for k := 0; k < trials; k++ {
				counts[d.SampleWord(blk.Next())]++
			}
			expected := make([]float64, n+1)
			for r := 0; r <= n; r++ {
				expected[r] = rational.Float(row[r])
			}
			// Pool cells with tiny expected mass into their neighbors:
			// Pearson's statistic needs expected counts ≳ 5 per cell.
			obsP, expP := poolCells(counts, expected, 5.0/trials)
			stat, err := stats.ChiSquare(obsP, expP)
			if err != nil {
				t.Fatal(err)
			}
			if crit := chiSquareCritical(len(obsP) - 1); stat > crit {
				t.Errorf("α=%s input=%d: χ² = %.1f > critical %.1f (df=%d)",
					alphaStr, input, stat, crit, len(obsP)-1)
			}
		}
	}
}

// poolCells merges adjacent cells until every pooled cell has
// expected probability ≥ minProb, so the chi-square approximation is
// valid even for near-degenerate rows.
func poolCells(obs []int, exp []float64, minProb float64) ([]int, []float64) {
	var po []int
	var pe []float64
	co, ce := 0, 0.0
	for i := range obs {
		co += obs[i]
		ce += exp[i]
		if ce >= minProb {
			po = append(po, co)
			pe = append(pe, ce)
			co, ce = 0, 0.0
		}
	}
	if ce > 0 || co > 0 {
		if len(po) == 0 {
			return []int{co}, []float64{ce}
		}
		po[len(po)-1] += co
		pe[len(pe)-1] += ce
	}
	return po, pe
}

func TestAtomicSplitmixBlockMatchesSequential(t *testing.T) {
	var a, b sample.AtomicSplitmix
	a.SeedStream(42, 3)
	b.SeedStream(42, 3)
	var seq []uint64
	for i := 0; i < 32; i++ {
		seq = append(seq, a.Uint64())
	}
	blk := b.Block(32)
	for i := 0; i < 32; i++ {
		if got := blk.Next(); got != seq[i] {
			t.Fatalf("block word %d = %#x, want %#x", i, got, seq[i])
		}
	}
}

func TestAtomicSplitmixStreamsDiffer(t *testing.T) {
	var a, b sample.AtomicSplitmix
	a.SeedStream(1, 0)
	b.SeedStream(1, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams 0 and 1 collided on %d of 64 words", same)
	}
}

// FuzzDyadicAlias hammers table construction with arbitrary weight
// vectors: zero weights, single outcomes, extreme magnitude ratios.
// For every accepted vector the built-in certificate must hold (the
// constructor re-verifies it), zero-weight outcomes must carry no
// induced mass, and draws must stay inside the positive-weight
// support.
func FuzzDyadicAlias(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{0, 0, 1, 0})
	f.Add([]byte{255, 1, 255, 1, 255})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 64 {
			t.Skip()
		}
		weights := make([]*big.Rat, len(data))
		sum := 0
		for i, by := range data {
			// Spread magnitudes over ~2^24 so extreme ratios (the α→0
			// and α→1 regimes of a geometric row) are exercised.
			v := int64(by) << (uint(i%4) * 8)
			weights[i] = big.NewRat(v, 1)
			sum += int(by)
		}
		d, err := sample.NewDyadicAlias(weights)
		if sum == 0 {
			if err == nil {
				t.Fatal("all-zero weights accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("valid weights rejected: %v", err)
		}
		induced := d.InducedPMF(len(weights))
		for j, w := range weights {
			if w.Sign() == 0 && induced[j].Sign() != 0 {
				t.Fatalf("zero-weight outcome %d has mass %s", j, induced[j].RatString())
			}
		}
		var rng sample.AtomicSplitmix
		rng.Seed(int64(len(data)))
		for k := 0; k < 256; k++ {
			r := d.SampleWord(rng.Uint64())
			if r < 0 || r >= len(weights) || weights[r].Sign() == 0 {
				t.Fatalf("draw outside positive support: %d", r)
			}
		}
	})
}
