// Portable table form of the dyadic alias kernel, for the disk-backed
// artifact store: a certified DyadicAlias is pure integer data (one
// threshold, one outcome, one alias per slot), so it serializes and
// round-trips exactly — no floats, no rationals, no re-certification
// cost on load.

package sample

import "fmt"

// AliasTables is the portable integer form of one DyadicAlias: the
// table exponent K (the table holds 2^K slots) plus the three slot
// arrays. The slices are owned by the holder; Tables returns copies
// and DyadicAliasFromTables copies again, so a decoded kernel never
// aliases the caller's buffers.
type AliasTables struct {
	K       uint
	Thresh  []uint64
	Outcome []int32
	Alias   []int32
}

// Tables exports the kernel's integer tables as a deep copy.
func (d *DyadicAlias) Tables() AliasTables {
	t := AliasTables{
		K:       d.k,
		Thresh:  make([]uint64, len(d.thresh)),
		Outcome: make([]int32, len(d.outcome)),
		Alias:   make([]int32, len(d.alias)),
	}
	copy(t.Thresh, d.thresh)
	copy(t.Outcome, d.outcome)
	copy(t.Alias, d.alias)
	return t
}

// DyadicAliasFromTables rebuilds a kernel from its portable table
// form, validating every structural invariant NewDyadicAlias
// establishes: consistent table geometry (all three arrays hold
// exactly 2^K entries, K within the MaxDyadicOutcomes bound),
// thresholds within the 2^(64−K) acceptance scale, and outcome/alias
// indices inside the table. It cannot re-certify against the original
// rational weights (they are not part of the table form); integrity
// against bit rot is the storage layer's job (checksums), this
// constructor's job is rejecting structurally impossible tables.
func DyadicAliasFromTables(t AliasTables) (*DyadicAlias, error) {
	maxK := uint(0)
	for 1<<(maxK+1) <= MaxDyadicOutcomes {
		maxK++
	}
	if t.K > maxK {
		return nil, fmt.Errorf("sample: table exponent %d exceeds max %d", t.K, maxK)
	}
	m := 1 << t.K
	if len(t.Thresh) != m || len(t.Outcome) != m || len(t.Alias) != m {
		return nil, fmt.Errorf("sample: table lengths %d/%d/%d do not match 2^%d slots",
			len(t.Thresh), len(t.Outcome), len(t.Alias), t.K)
	}
	// "Always accept" is 2^(64−K), except at K=0 where it saturates to
	// ^0 (see NewDyadicAlias); both are ≤ the bound below.
	full := ^uint64(0)
	if t.K > 0 {
		full = uint64(1) << (64 - t.K)
	}
	d := &DyadicAlias{
		k:       t.K,
		mask:    uint64(m - 1),
		thresh:  make([]uint64, m),
		outcome: make([]int32, m),
		alias:   make([]int32, m),
	}
	for i := 0; i < m; i++ {
		if t.Thresh[i] > full {
			return nil, fmt.Errorf("sample: slot %d threshold %d exceeds scale 2^(64-%d)", i, t.Thresh[i], t.K)
		}
		if t.Outcome[i] < 0 || int(t.Outcome[i]) >= m {
			return nil, fmt.Errorf("sample: slot %d outcome %d outside table [0,%d)", i, t.Outcome[i], m)
		}
		if t.Alias[i] < 0 || int(t.Alias[i]) >= m {
			return nil, fmt.Errorf("sample: slot %d alias %d outside table [0,%d)", i, t.Alias[i], m)
		}
		d.thresh[i] = t.Thresh[i]
		d.outcome[i] = t.Outcome[i]
		d.alias[i] = t.Alias[i]
	}
	return d, nil
}
