// Package sample provides the randomness substrate for the library's
// Monte-Carlo experiments: reproducible RNG streams, exact samplers
// for the two-sided geometric distribution of Definition 1, and two
// generic discrete samplers (inverse-CDF and Walker alias method) used
// by the sampler-strategy ablation benchmark.
package sample

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// NewRand returns a deterministic PRNG for the given seed. All
// experiment binaries accept a seed so every reported number is
// reproducible.
//
// The returned *rand.Rand is NOT safe for concurrent use: its
// internal state is mutated on every draw with no synchronization.
// Give each goroutine its own seeded instance, or route concurrent
// sampling through internal/engine's sampler pool, which keeps one
// pooled PRNG per borrowing goroutine (sync.Pool) precisely so no
// two goroutines ever share a stream.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Geometric draws a geometric random variable on {0,1,2,...} with
// success parameter 1−alpha, i.e. Pr[G = k] = (1−α)·α^k, via
// inversion. alpha must lie in (0,1).
func Geometric(alpha float64, rng *rand.Rand) int {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("sample: Geometric needs α in (0,1), got %v", alpha))
	}
	u := rng.Float64()
	for u == 0 { // log(0) guard; probability 0 events resampled
		u = rng.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(alpha)))
}

// TwoSidedGeometric draws Z with Pr[Z = z] = (1−α)/(1+α)·α^{|z|} for
// every integer z (Definition 1), as the difference of two independent
// geometric variables: if G₁,G₂ ~ Geom(1−α) then G₁−G₂ has exactly
// this two-sided law.
func TwoSidedGeometric(alpha float64, rng *rand.Rand) int {
	return Geometric(alpha, rng) - Geometric(alpha, rng)
}

// TwoSidedGeometricInverse draws Z by direct CDF inversion: it picks
// the magnitude from the folded distribution and then a fair sign.
// Functionally identical to TwoSidedGeometric; kept for the sampler
// ablation benchmark.
func TwoSidedGeometricInverse(alpha float64, rng *rand.Rand) int {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("sample: needs α in (0,1), got %v", alpha))
	}
	// Pr[|Z| = 0] = (1−α)/(1+α); Pr[|Z| = k] = 2(1−α)/(1+α)·α^k.
	u := rng.Float64()
	p0 := (1 - alpha) / (1 + alpha)
	if u < p0 {
		return 0
	}
	// Conditioned on |Z| ≥ 1, |Z|−1 is geometric with ratio α.
	mag := 1 + Geometric(alpha, rng)
	if rng.Intn(2) == 0 {
		return mag
	}
	return -mag
}

// GeometricMechanismSample applies Definition 1 + range restriction:
// true result k plus two-sided geometric noise, clamped into [0, n].
// Clamping is exactly the range-restricted mechanism of Definition 4
// (the tail mass collapses onto the endpoints).
func GeometricMechanismSample(k, n int, alpha float64, rng *rand.Rand) int {
	z := k + TwoSidedGeometric(alpha, rng)
	if z < 0 {
		return 0
	}
	if z > n {
		return n
	}
	return z
}

// --- generic discrete samplers -------------------------------------------

// ErrBadWeights is returned when a sampler is built from an empty,
// negative, or all-zero weight vector.
var ErrBadWeights = errors.New("sample: weights must be non-negative with positive sum")

// InverseCDF samples from a fixed discrete distribution by linear CDF
// walk. Construction is O(n), sampling O(n) worst case; fine for the
// small supports in this library.
type InverseCDF struct {
	cdf []float64
}

// NewInverseCDF builds the sampler from non-negative weights
// (normalization is internal).
func NewInverseCDF(weights []float64) (*InverseCDF, error) {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, ErrBadWeights
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		return nil, ErrBadWeights
	}
	cdf := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cdf[i] = acc
	}
	cdf[len(cdf)-1] = 1 // absorb rounding
	return &InverseCDF{cdf: cdf}, nil
}

// Sample draws one index.
func (s *InverseCDF) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range s.cdf {
		if u < c {
			return i
		}
	}
	return len(s.cdf) - 1
}

// Alias samples from a fixed discrete distribution in O(1) per draw
// using Walker's alias method; construction is O(n).
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds the alias tables from non-negative weights.
func NewAlias(weights []float64) (*Alias, error) {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, ErrBadWeights
		}
		total += w
	}
	n := len(weights)
	if n == 0 || total <= 0 {
		return nil, ErrBadWeights
	}
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// Sample draws one index in O(1).
func (a *Alias) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// EmpiricalPMF converts draw counts into an empirical probability
// vector.
func EmpiricalPMF(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// CountSamples draws trials samples from fn and tallies outcomes into
// a histogram of size buckets; outcomes outside [0, buckets) are
// clamped to the nearest end.
func CountSamples(trials, buckets int, fn func() int) []int {
	counts := make([]int, buckets)
	for t := 0; t < trials; t++ {
		v := fn()
		if v < 0 {
			v = 0
		}
		if v >= buckets {
			v = buckets - 1
		}
		counts[v]++
	}
	return counts
}
