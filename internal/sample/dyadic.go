// Dyadic alias kernel: the production sampling fast path.
//
// The float alias tables in sample.go are fine for ablation studies,
// but the serving hot path (internal/engine, /v1/sample) wants three
// properties the float tables cannot give at once: (1) a draw that is
// one PRNG word, one index, one compare — no float math, no division,
// no allocation; (2) tables derived *exactly* from the mechanism's
// rational PMF, so the sampled law is certified against the paper's
// exact artifacts rather than against a float64 projection of them;
// (3) a per-outcome error bound that is a theorem of the
// construction, checked at build time, not a tolerance that happens
// to hold.
//
// DyadicAlias delivers all three. Construction runs Walker's alias
// algorithm in exact big.Rat arithmetic (so the intermediate "scaled
// probability" bookkeeping is exact — in exact arithmetic the
// small/large worklists empty simultaneously and every leftover slot
// holds probability exactly 1), then quantizes each slot's acceptance
// probability to a dyadic fixed-point threshold: an integer t in
// [0, 2^b] with b = 64−k bits, where the table has 2^k slots. A draw
// consumes one uint64 w: the low k bits select the slot, the high b
// bits form the uniform u, and u < t accepts the slot's primary
// outcome or falls through to its alias. Because 2^k slots times 2^b
// threshold resolution is exactly 2^64, the induced PMF of the
// integer tables is itself an exact rational with denominator 2^64,
// and the constructor certifies |induced(j) − p(j)| ≤ 2^−b for every
// outcome j before returning. Zero-weight outcomes are exact: they
// are never emitted at all (their slots quantize to threshold 0 and
// no slot ever aliases to them).
package sample

import (
	"fmt"
	"math/big"
	"math/bits"
	"sync/atomic"
)

// splitmixGamma is the Weyl increment of the splitmix64 generator
// (Steele, Lea & Flood 2014): the odd constant closest to 2^64/φ.
const splitmixGamma = 0x9E3779B97F4A7C15

// Mix64 is the splitmix64 output mix: a bijective avalanche over
// uint64. Applied to a Weyl sequence state + k·gamma it yields the
// splitmix64 stream; it is also a fine standalone integer hash.
func Mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// AtomicSplitmix is a lock-free splitmix64 PRNG safe for concurrent
// use: the generator state is a Weyl counter advanced by a single
// atomic add, so concurrent callers each observe a distinct counter
// value and therefore a distinct output word — no locks, no torn
// state, no sync.Pool. The zero value is a valid generator seeded at
// stream (0,0); call Seed or SeedStream for reproducible streams.
//
// Unlike *rand.Rand (see NewRand), an AtomicSplitmix may be shared
// freely between goroutines. Its intended use is one generator per
// shard of a sharded sampler: sharding removes cache-line contention
// on the counter, and the atomic add keeps accidental shard collisions
// correct instead of racy.
type AtomicSplitmix struct {
	state atomic.Uint64
}

// Seed positions the generator deterministically for seed.
func (p *AtomicSplitmix) Seed(seed int64) { p.SeedStream(seed, 0) }

// SeedStream positions the generator at stream `stream` of the given
// seed. All streams of one seed walk the same 2^64-cycle Weyl
// sequence at phase offsets chosen by a second avalanche, so a fixed
// (seed, stream) pair always reproduces the same word sequence and
// distinct streams do not overlap within any practical horizon
// (offsets are ≫ 2^32 counter steps apart for all small stream sets).
func (p *AtomicSplitmix) SeedStream(seed int64, stream uint64) {
	p.state.Store(Mix64(uint64(seed)) + Mix64(stream*2+1)*splitmixGamma)
}

// Uint64 returns the next word of the stream. One atomic add plus a
// five-instruction mix; safe for concurrent use.
//
//dpvet:hotpath
func (p *AtomicSplitmix) Uint64() uint64 {
	return Mix64(p.state.Add(splitmixGamma))
}

// Block reserves n consecutive words of the stream with a single
// atomic add and returns an iterator over them. The reservation is
// exclusive: concurrent Block and Uint64 callers never observe the
// reserved counter values. n must be positive.
//
//dpvet:hotpath
func (p *AtomicSplitmix) Block(n int) SplitmixBlock {
	if n <= 0 {
		panicBlockSize(n)
	}
	end := p.state.Add(uint64(n) * splitmixGamma)
	return SplitmixBlock{next: end - uint64(n-1)*splitmixGamma, left: n}
}

// panicBlockSize keeps the cold failure path out of Block: inlined,
// the fmt.Sprintf would charge a heap allocation to Block's own lines
// and trip the hotpath escape gate. It takes the offending size as a
// primitive because varargs boxing happens at the caller.
//
//go:noinline
func panicBlockSize(n int) {
	panic(fmt.Sprintf("sample: Block needs n > 0, got %d", n))
}

// SplitmixBlock iterates a reserved block of splitmix64 words. It is
// a value type owned by one goroutine; Next must be called at most
// the reserved count of times.
type SplitmixBlock struct {
	next uint64
	left int
}

// Next returns the block's next word.
//
//dpvet:hotpath
func (b *SplitmixBlock) Next() uint64 {
	if b.left <= 0 {
		panicExhausted()
	}
	b.left--
	v := Mix64(b.next)
	b.next += splitmixGamma
	return v
}

// panicExhausted is the cold overdraw path, kept out of Next so the
// hotpath escape gate sees an allocation-free body.
//
//go:noinline
func panicExhausted() {
	panic("sample: SplitmixBlock exhausted")
}

// MaxDyadicOutcomes bounds the weight-vector length accepted by
// NewDyadicAlias. 2^24 outcomes leave b = 64−24 = 40 threshold bits,
// keeping the certified per-outcome error below 2^−40 even at the
// maximum table size; real mechanism rows are orders of magnitude
// smaller.
const MaxDyadicOutcomes = 1 << 24

// DyadicAlias samples a fixed discrete distribution in O(1) from a
// single uint64: slot index from the low bits, threshold compare on
// the high bits. Tables are built exactly from rational weights and
// certified at construction; see the package comment at the top of
// this file. The struct is immutable after construction and safe for
// concurrent use (draws read the tables and mutate nothing).
type DyadicAlias struct {
	k       uint     // log2 of the table length
	mask    uint64   // table length − 1, selects the slot
	thresh  []uint64 // acceptance threshold for u = w>>k, scale 2^(64−k)
	outcome []int32  // primary outcome per slot
	alias   []int32  // fallback outcome per slot
}

// NewDyadicAlias builds certified integer alias tables from exact
// non-negative weights (normalization is internal; weights need not
// sum to 1). It returns ErrBadWeights for an empty, negative, or
// all-zero vector, and an error if the vector exceeds
// MaxDyadicOutcomes. The returned kernel's induced PMF deviates from
// the normalized weights by at most 2^−(64−k) per outcome, where 2^k
// is the table length (the smallest power of two ≥ len(weights)) —
// verified exactly, in rational arithmetic, before returning.
func NewDyadicAlias(weights []*big.Rat) (*DyadicAlias, error) {
	n := len(weights)
	if n == 0 || n > MaxDyadicOutcomes {
		if n == 0 {
			return nil, ErrBadWeights
		}
		return nil, fmt.Errorf("sample: %d outcomes exceed MaxDyadicOutcomes=%d", n, MaxDyadicOutcomes)
	}
	total := new(big.Rat)
	for i, w := range weights {
		if w == nil || w.Sign() < 0 {
			return nil, fmt.Errorf("sample: weight %d: %w", i, ErrBadWeights)
		}
		total.Add(total, w)
	}
	if total.Sign() <= 0 {
		return nil, ErrBadWeights
	}

	// Table geometry: 2^k slots (outcomes padded with zero weight up
	// to the next power of two), b = 64−k threshold bits.
	k := uint(0)
	if n > 1 {
		k = uint(bits.Len(uint(n - 1)))
	}
	m := 1 << k
	b := 64 - k

	// Exact Walker construction: scaled[i] = m·w_i/total. The loop
	// invariant Σ scaled over unfinalized slots = #unfinalized holds
	// exactly, so when either worklist empties the other holds only
	// slots with scaled probability exactly 1.
	scaled := make([]*big.Rat, m)
	mRat := new(big.Rat).SetInt64(int64(m))
	for i := 0; i < m; i++ {
		if i < n {
			scaled[i] = new(big.Rat).Mul(weights[i], mRat)
			scaled[i].Quo(scaled[i], total)
		} else {
			scaled[i] = new(big.Rat)
		}
	}
	one := new(big.Rat).SetInt64(1)
	small := make([]int32, 0, m)
	large := make([]int32, 0, m)
	for i := m - 1; i >= 0; i-- {
		if scaled[i].Cmp(one) < 0 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}

	d := &DyadicAlias{
		k:       k,
		mask:    uint64(m - 1),
		thresh:  make([]uint64, m),
		outcome: make([]int32, m),
		alias:   make([]int32, m),
	}
	for i := 0; i < m; i++ {
		out := int32(i)
		if i >= n {
			out = 0 // padding slot; threshold 0 below, never emitted
		}
		d.outcome[i] = out
		d.alias[i] = out
	}

	// full is the threshold meaning "always accept": 2^b, except at
	// k=0 where 2^64 does not fit a uint64 and ^0 is used instead —
	// sound because a full slot's alias equals its outcome, so the
	// one-in-2^64 fall-through returns the same value.
	full := ^uint64(0)
	if k > 0 {
		full = uint64(1) << b
	}
	tmp := new(big.Int)
	quantize := func(p *big.Rat) uint64 {
		// floor(p·2^b): exact integer arithmetic, p ∈ [0,1).
		tmp.Lsh(p.Num(), b)
		tmp.Quo(tmp, p.Denom())
		return tmp.Uint64()
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		d.thresh[s] = quantize(scaled[s])
		d.alias[s] = d.outcome[l]
		// scaled[l] −= 1 − scaled[s], exactly.
		scaled[l].Sub(scaled[l], one)
		scaled[l].Add(scaled[l], scaled[s])
		if scaled[l].Cmp(one) < 0 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Exact arithmetic ⇒ every leftover slot has scaled == 1; both
	// loops are retained for symmetry and defensive completeness.
	for _, i := range large {
		d.thresh[i] = full
	}
	for _, i := range small {
		d.thresh[i] = full
	}

	if err := d.certify(weights, total, n); err != nil {
		return nil, err
	}
	return d, nil
}

// certify recomputes the PMF induced by the integer tables — an exact
// rational with denominator 2^64, since each slot contributes t to
// its outcome and 2^b−t to its alias and 2^k·2^b = 2^64 — and
// verifies |induced(j) − p(j)| ≤ 2^−b for every outcome j. The bound
// is a theorem (each slot's quantization error is < 1 threshold unit
// and at most 2^k slots reference one outcome), so a failure here
// means the construction itself is broken, not the input.
func (d *DyadicAlias) certify(weights []*big.Rat, total *big.Rat, n int) error {
	induced := d.InducedPMF(n)
	b := 64 - d.k
	bound := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), b))
	p := new(big.Rat)
	dev := new(big.Rat)
	for j := 0; j < n; j++ {
		p.Quo(weights[j], total)
		dev.Sub(induced[j], p)
		dev.Abs(dev)
		if dev.Cmp(bound) > 0 {
			return fmt.Errorf("sample: dyadic certification failed at outcome %d: |%s − %s| > 2^−%d",
				j, induced[j].RatString(), p.RatString(), b)
		}
		if weights[j].Sign() == 0 && induced[j].Sign() != 0 {
			return fmt.Errorf("sample: dyadic certification failed: zero-weight outcome %d has induced mass %s",
				j, induced[j].RatString())
		}
	}
	return nil
}

// InducedPMF returns the exact PMF the integer tables sample, as
// rationals with denominator 2^64, over n outcomes. It is the ground
// truth for the construction-time certificate and for goodness-of-fit
// tests; draws from SampleWord on uniform words follow exactly this
// law (not merely approximately — the tables are the distribution).
func (d *DyadicAlias) InducedPMF(n int) []*big.Rat {
	b := 64 - d.k
	full := new(big.Int).Lsh(big.NewInt(1), b)
	acc := make([]*big.Int, n)
	for j := range acc {
		acc[j] = new(big.Int)
	}
	t := new(big.Int)
	rest := new(big.Int)
	for s := range d.thresh {
		t.SetUint64(d.thresh[s])
		if t.Cmp(full) > 0 { // the k=0 ^0 sentinel caps at full
			t.Set(full)
		}
		acc[d.outcome[s]].Add(acc[d.outcome[s]], t)
		rest.Sub(full, t)
		acc[d.alias[s]].Add(acc[d.alias[s]], rest)
	}
	denom := new(big.Int).Lsh(big.NewInt(1), 64)
	out := make([]*big.Rat, n)
	for j := range out {
		out[j] = new(big.Rat).SetFrac(new(big.Int).Set(acc[j]), denom)
	}
	return out
}

// Outcomes returns the table length (≥ the weight-vector length it
// was built from; padding slots carry zero mass).
func (d *DyadicAlias) Outcomes() int { return len(d.thresh) }

// SampleWord maps one uniform uint64 to an outcome: slot from the low
// k bits, acceptance compare of the high 64−k bits against the slot's
// dyadic threshold. Zero allocations, no float math, no divisions.
//
//dpvet:hotpath
func (d *DyadicAlias) SampleWord(w uint64) int {
	s := w & d.mask
	if w>>d.k < d.thresh[s] {
		return int(d.outcome[s])
	}
	return int(d.alias[s])
}

// Sample draws one outcome from rng; the convenience form of
// SampleWord for callers holding a *rand.Rand (ablation benchmarks,
// tests). Hot paths should feed SampleWord from an AtomicSplitmix
// block instead.
func (d *DyadicAlias) Sample(rng interface{ Uint64() uint64 }) int {
	return d.SampleWord(rng.Uint64())
}
