package tenant

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrDuplicateID is returned by Registry.Add for an id that is
// already registered (wrapped with the offending id).
var ErrDuplicateID = errors.New("tenant: id already registered")

// Registry is a concurrency-safe map of live tenants. It owns tenant
// identity only — engines, caches, and HTTP wiring live in the
// serving layer, so the registry stays trivially testable.
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]*Tenant)}
}

// Add registers t, rejecting duplicates: a tenant's accounting state
// must never be silently reset by re-registration.
func (r *Registry) Add(t *Tenant) error {
	if t == nil {
		return fmt.Errorf("tenant: cannot register nil tenant")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[t.id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateID, t.id)
	}
	r.tenants[t.id] = t
	return nil
}

// Get returns the tenant with the given id, or false.
func (r *Registry) Get(id string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[id]
	return t, ok
}

// Delete removes the tenant with the given id, reporting whether it
// existed.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[id]; !ok {
		return false
	}
	delete(r.tenants, id)
	return true
}

// IDs returns the registered tenant ids in sorted order.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.tenants))
	for id := range r.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len returns the number of registered tenants.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tenants)
}
