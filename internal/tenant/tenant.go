// Package tenant turns the single-survey serving story of cmd/dpserver
// into a multi-tenant one: a registry of isolated tenants, each
// carrying its own secret count, domain bound n, α-ladder, loss, and
// side-information set, its own correlated-epoch state (the current
// Algorithm 1 cascade draw behind an atomic pointer), and its own
// privacy accounting.
//
// Accounting follows the paper's composition rules exactly and in
// exact arithmetic. One cascade draw publishes every level of the
// ladder, but by Lemma 4 the coalition of all of a tenant's levels is
// protected at the weakest member's level α₁ — so one epoch advance
// spends α₁, not the product over levels. Draws across epochs are
// independent, so sequential composition (privacy.Compose) multiplies:
// after m epochs the cumulative guarantee is α₁^m. A tenant configured
// with a budget floor (MinAlpha) refuses the draw that would push the
// cumulative spend below the floor — remembering that smaller α means
// weaker privacy (α = e^{−ε}), "below the floor" is "more privacy
// consumed than allowed".
//
// Isolation is structural: a Tenant owns its PRNG, its spent-α
// accumulator, and its epoch snapshots; nothing in this package is
// shared between tenants except the immutable exact artifacts they
// read through the engine, which are safe by construction.
package tenant

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"sync/atomic"

	"minimaxdp/internal/rational"
	"minimaxdp/internal/release"
	"minimaxdp/internal/sample"
)

// MaxIDLength bounds tenant identifiers.
const MaxIDLength = 64

// ErrBudgetExhausted is returned by Advance when one more cascade
// draw would push the tenant's cumulative privacy spend below its
// configured MinAlpha floor. The tenant keeps serving its already
// published epochs; it just refuses to reveal more.
var ErrBudgetExhausted = errors.New("tenant: privacy budget exhausted")

// Config describes one tenant. All fields are copied by New; the
// caller's slices and rationals stay private to the caller.
type Config struct {
	// ID names the tenant in the registry and the HTTP surface:
	// 1..MaxIDLength chars from [a-z0-9-_].
	ID string
	// N is the tenant's domain bound (results lie in {0..N}).
	N int
	// Truth is the tenant's secret query result in [0, N]. It never
	// leaves the Tenant: releases go through Advance, which draws the
	// cascade internally.
	Truth int
	// Alphas is the tenant's privacy ladder: strictly increasing
	// levels within (0,1), least private first (the paper's α₁ < … <
	// α_k).
	Alphas []*big.Rat
	// Loss and LossWidth select the tenant's consumer loss for
	// tailored solves ("absolute", "squared", "zero-one",
	// "deadband"+width). The tenant stores them verbatim; the serving
	// layer interprets them.
	Loss      string
	LossWidth int
	// Side is the tenant's consumer side-information set (empty = full
	// domain).
	Side []int
	// MinAlpha, when non-nil, is the tenant's privacy budget floor in
	// (0,1): Advance refuses a draw that would take the cumulative
	// spent α (the Lemma 4 + sequential-composition product) strictly
	// below it. Nil means unmetered.
	MinAlpha *big.Rat
	// Seed seeds the tenant's private cascade PRNG.
	Seed int64
}

func checkID(id string) error {
	if id == "" || len(id) > MaxIDLength {
		return fmt.Errorf("tenant: id must be 1..%d chars, got %d", MaxIDLength, len(id))
	}
	for _, c := range id {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' && c != '_' {
			return fmt.Errorf("tenant: id %q contains %q (want [a-z0-9-_])", id, string(c))
		}
	}
	return nil
}

// Epoch is one published correlated release: every level's result
// comes from a single Algorithm 1 cascade draw. Immutable once
// published; read it through Tenant.Epoch without locking.
type Epoch struct {
	// Epoch counts from 1 (a registered tenant has always published at
	// least one draw).
	Epoch int
	// Results holds one released value per ladder level, least private
	// first. Read-only.
	Results []int
}

// result returns the released value at a 1-based level.
func (e *Epoch) result(level int) (int, error) {
	if e == nil || level < 1 || level > len(e.Results) {
		return 0, fmt.Errorf("tenant: level %d out of range", level)
	}
	return e.Results[level-1], nil
}

// Result returns the epoch's released value at a 1-based ladder level.
func (e *Epoch) Result(level int) (int, error) { return e.result(level) }

// Tenant is one isolated serving principal. The configuration is
// immutable after New; the mutable state is the epoch snapshot
// (atomic pointer, lock-free reads) and the PRNG + accounting
// accumulator (mutex, touched only by the rare Advance).
type Tenant struct {
	id        string
	n         int
	truth     int
	alphas    []*big.Rat
	loss      string
	lossWidth int
	side      []int
	minAlpha  *big.Rat // nil = unmetered

	state atomic.Pointer[Epoch]

	mu    sync.Mutex // guards rng and spent
	rng   *rand.Rand
	spent *big.Rat // cumulative guarantee: Π α₁ over published epochs; 1 before the first
}

// New validates cfg and builds a tenant with zero published epochs
// (the caller advances it once at registration, so a served tenant
// always has a current cascade).
func New(cfg Config) (*Tenant, error) {
	if err := checkID(cfg.ID); err != nil {
		return nil, err
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("tenant %s: n must be ≥ 1, got %d", cfg.ID, cfg.N)
	}
	if cfg.Truth < 0 || cfg.Truth > cfg.N {
		return nil, fmt.Errorf("tenant %s: truth %d outside [0,%d]", cfg.ID, cfg.Truth, cfg.N)
	}
	one := rational.One()
	if len(cfg.Alphas) == 0 {
		return nil, fmt.Errorf("tenant %s: at least one privacy level required", cfg.ID)
	}
	for i, a := range cfg.Alphas {
		if a == nil || a.Sign() <= 0 || a.Cmp(one) >= 0 {
			return nil, fmt.Errorf("tenant %s: level %d outside (0,1)", cfg.ID, i+1)
		}
		if i > 0 && a.Cmp(cfg.Alphas[i-1]) <= 0 {
			return nil, fmt.Errorf("tenant %s: levels must be strictly increasing", cfg.ID)
		}
	}
	if cfg.MinAlpha != nil && (cfg.MinAlpha.Sign() <= 0 || cfg.MinAlpha.Cmp(one) >= 0) {
		return nil, fmt.Errorf("tenant %s: min alpha outside (0,1)", cfg.ID)
	}
	for _, i := range cfg.Side {
		if i < 0 || i > cfg.N {
			return nil, fmt.Errorf("tenant %s: side point %d outside [0,%d]", cfg.ID, i, cfg.N)
		}
	}
	t := &Tenant{
		id:        cfg.ID,
		n:         cfg.N,
		truth:     cfg.Truth,
		loss:      cfg.Loss,
		lossWidth: cfg.LossWidth,
		side:      append([]int(nil), cfg.Side...),
		rng:       sample.NewRand(cfg.Seed),
		spent:     rational.One(),
	}
	for _, a := range cfg.Alphas {
		t.alphas = append(t.alphas, rational.Clone(a))
	}
	if cfg.MinAlpha != nil {
		t.minAlpha = rational.Clone(cfg.MinAlpha)
	}
	return t, nil
}

// ID returns the tenant's identifier.
func (t *Tenant) ID() string { return t.id }

// N returns the tenant's domain bound.
func (t *Tenant) N() int { return t.n }

// Levels returns the ladder length.
func (t *Tenant) Levels() int { return len(t.alphas) }

// Alphas returns a deep copy of the tenant's ladder.
func (t *Tenant) Alphas() []*big.Rat {
	out := make([]*big.Rat, len(t.alphas))
	for i, a := range t.alphas {
		out[i] = rational.Clone(a)
	}
	return out
}

// Alpha returns the privacy parameter of a 1-based level.
func (t *Tenant) Alpha(level int) (*big.Rat, error) {
	if level < 1 || level > len(t.alphas) {
		return nil, fmt.Errorf("tenant: level %d out of range 1..%d", level, len(t.alphas))
	}
	return rational.Clone(t.alphas[level-1]), nil
}

// Loss returns the tenant's loss selector and deadband width.
func (t *Tenant) Loss() (name string, width int) { return t.loss, t.lossWidth }

// Side returns a copy of the tenant's side-information set.
func (t *Tenant) Side() []int { return append([]int(nil), t.side...) }

// Epoch returns the current published cascade, or nil before the
// first Advance. Lock-free.
func (t *Tenant) Epoch() *Epoch { return t.state.Load() }

// Advance draws one fresh Algorithm 1 cascade from plan and publishes
// it as the tenant's next epoch. The plan must match the tenant's
// geometry (it is built from the tenant's n and ladder by the serving
// layer; the check here keeps a routing bug from ever publishing
// another tenant's draw). Accounting happens first: if the draw would
// push the cumulative spent α below MinAlpha, Advance returns
// ErrBudgetExhausted and publishes nothing.
func (t *Tenant) Advance(plan *release.Plan) (*Epoch, error) {
	if plan == nil || plan.N() != t.n || plan.Levels() != len(t.alphas) {
		return nil, fmt.Errorf("tenant %s: plan does not match tenant geometry", t.id)
	}
	for lvl := 1; lvl <= len(t.alphas); lvl++ {
		pa, err := plan.Alpha(lvl)
		if err != nil {
			return nil, err
		}
		if pa.Cmp(t.alphas[lvl-1]) != 0 {
			return nil, fmt.Errorf("tenant %s: plan level %d is α=%s, tenant has %s",
				t.id, lvl, pa.RatString(), t.alphas[lvl-1].RatString())
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Lemma 4: the full-ladder coalition of this draw is protected at
	// α₁; sequential composition across epochs multiplies.
	next := rational.Mul(t.spent, t.alphas[0])
	if t.minAlpha != nil && next.Cmp(t.minAlpha) < 0 {
		return nil, fmt.Errorf("%w: spending α₁=%s again would take the cumulative guarantee to %s, below the floor %s",
			ErrBudgetExhausted, t.alphas[0].RatString(), next.RatString(), t.minAlpha.RatString())
	}
	out, err := plan.Release(t.truth, t.rng)
	if err != nil {
		return nil, err
	}
	prev := t.state.Load()
	epoch := 1
	if prev != nil {
		epoch = prev.Epoch + 1
	}
	e := &Epoch{Epoch: epoch, Results: out}
	t.spent = next
	t.state.Store(e)
	return e, nil
}

// Accounting is a point-in-time snapshot of a tenant's privacy spend.
// Rationals are exact and rendered by the serving layer; strings here
// would force a format choice on library users.
type Accounting struct {
	// Epochs counts published cascade draws.
	Epochs int
	// SpentAlpha is the cumulative guarantee consumed so far: α₁^Epochs
	// (1/1 before the first draw). Smaller means more privacy consumed.
	SpentAlpha *big.Rat
	// BudgetAlpha is the configured floor, or nil when unmetered.
	BudgetAlpha *big.Rat
	// NextDrawAllowed reports whether one more Advance would fit the
	// budget.
	NextDrawAllowed bool
}

// Accounting snapshots the tenant's privacy accounting.
func (t *Tenant) Accounting() Accounting {
	t.mu.Lock()
	defer t.mu.Unlock()
	epochs := 0
	if e := t.state.Load(); e != nil {
		epochs = e.Epoch
	}
	a := Accounting{
		Epochs:          epochs,
		SpentAlpha:      rational.Clone(t.spent),
		NextDrawAllowed: true,
	}
	if t.minAlpha != nil {
		a.BudgetAlpha = rational.Clone(t.minAlpha)
		if rational.Mul(t.spent, t.alphas[0]).Cmp(t.minAlpha) < 0 {
			a.NextDrawAllowed = false
		}
	}
	return a
}
