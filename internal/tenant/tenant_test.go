package tenant

import (
	"errors"
	"math/big"
	"sync"
	"testing"

	"minimaxdp/internal/rational"
	"minimaxdp/internal/release"
)

func ladder(strs ...string) []*big.Rat {
	out := make([]*big.Rat, len(strs))
	for i, s := range strs {
		out[i] = rational.MustParse(s)
	}
	return out
}

func testPlan(t testing.TB, n int, alphas []*big.Rat) *release.Plan {
	t.Helper()
	p, err := release.NewPlan(n, alphas)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	good := Config{ID: "acme", N: 8, Truth: 3, Alphas: ladder("1/4", "1/2")}
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"empty id", func(c *Config) { c.ID = "" }},
		{"uppercase id", func(c *Config) { c.ID = "Acme" }},
		{"slash id", func(c *Config) { c.ID = "a/b" }},
		{"zero n", func(c *Config) { c.N = 0 }},
		{"truth below", func(c *Config) { c.Truth = -1 }},
		{"truth above", func(c *Config) { c.Truth = 9 }},
		{"no levels", func(c *Config) { c.Alphas = nil }},
		{"nil level", func(c *Config) { c.Alphas = []*big.Rat{nil} }},
		{"level at one", func(c *Config) { c.Alphas = ladder("1/4", "1") }},
		{"level at zero", func(c *Config) { c.Alphas = []*big.Rat{new(big.Rat)} }},
		{"non-increasing", func(c *Config) { c.Alphas = ladder("1/2", "1/2") }},
		{"decreasing", func(c *Config) { c.Alphas = ladder("1/2", "1/4") }},
		{"budget at one", func(c *Config) { c.MinAlpha = rational.One() }},
		{"budget zero", func(c *Config) { c.MinAlpha = new(big.Rat) }},
		{"side below", func(c *Config) { c.Side = []int{-1} }},
		{"side above", func(c *Config) { c.Side = []int{9} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestConfigCopied pins the isolation contract: mutating the caller's
// config after New must not reach into the tenant.
func TestConfigCopied(t *testing.T) {
	alphas := ladder("1/4", "1/2")
	side := []int{1, 2}
	min := rational.MustParse("1/1024")
	tn, err := New(Config{ID: "copy", N: 8, Truth: 3, Alphas: alphas, Side: side, MinAlpha: min})
	if err != nil {
		t.Fatal(err)
	}
	alphas[0].SetInt64(7)
	side[0] = 99
	min.SetInt64(7)
	if got, _ := tn.Alpha(1); got.RatString() != "1/4" {
		t.Errorf("alpha aliased caller memory: %s", got.RatString())
	}
	if got := tn.Side(); got[0] != 1 {
		t.Errorf("side aliased caller memory: %v", got)
	}
	if acc := tn.Accounting(); acc.BudgetAlpha.RatString() != "1/1024" {
		t.Errorf("budget aliased caller memory: %s", acc.BudgetAlpha.RatString())
	}
	// And the reverse: accessors hand out copies, not internals.
	tn.Alphas()[0].SetInt64(9)
	tn.Accounting().SpentAlpha.SetInt64(9)
	if got, _ := tn.Alpha(1); got.RatString() != "1/4" {
		t.Errorf("Alphas leaked internals: %s", got.RatString())
	}
}

func TestAdvanceAndAccounting(t *testing.T) {
	alphas := ladder("1/4", "1/2")
	tn, err := New(Config{ID: "t1", N: 10, Truth: 7, Alphas: alphas, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if tn.Epoch() != nil {
		t.Fatal("fresh tenant has an epoch")
	}
	acc := tn.Accounting()
	if acc.Epochs != 0 || acc.SpentAlpha.RatString() != "1" || !acc.NextDrawAllowed {
		t.Fatalf("fresh accounting = %+v", acc)
	}
	plan := testPlan(t, 10, alphas)
	for i := 1; i <= 3; i++ {
		e, err := tn.Advance(plan)
		if err != nil {
			t.Fatal(err)
		}
		if e.Epoch != i || len(e.Results) != 2 {
			t.Fatalf("epoch %d = %+v", i, e)
		}
		for lvl := 1; lvl <= 2; lvl++ {
			r, err := e.Result(lvl)
			if err != nil || r < 0 || r > 10 {
				t.Fatalf("epoch %d level %d result %d, %v", i, lvl, r, err)
			}
		}
	}
	// Lemma 4 + sequential composition: 3 epochs spend α₁³ = 1/64
	// exactly, regardless of ladder length.
	acc = tn.Accounting()
	if acc.Epochs != 3 || acc.SpentAlpha.RatString() != "1/64" {
		t.Fatalf("after 3 epochs accounting = %+v (spent %s)", acc, acc.SpentAlpha.RatString())
	}
	if acc.BudgetAlpha != nil || !acc.NextDrawAllowed {
		t.Fatalf("unmetered tenant accounting = %+v", acc)
	}
}

func TestAdvanceGeometryMismatch(t *testing.T) {
	tn, err := New(Config{ID: "t1", N: 8, Truth: 3, Alphas: ladder("1/4", "1/2")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Advance(nil); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := tn.Advance(testPlan(t, 9, ladder("1/4", "1/2"))); err == nil {
		t.Error("wrong-n plan accepted")
	}
	if _, err := tn.Advance(testPlan(t, 8, ladder("1/4"))); err == nil {
		t.Error("wrong-level-count plan accepted")
	}
	if _, err := tn.Advance(testPlan(t, 8, ladder("1/3", "1/2"))); err == nil {
		t.Error("wrong-ladder plan accepted")
	}
	if e := tn.Epoch(); e != nil {
		t.Errorf("rejected advances published an epoch: %+v", e)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	alphas := ladder("1/2", "3/4")
	// Floor 1/8 allows exactly three α₁ = 1/2 draws (1/2, 1/4, 1/8);
	// the fourth would land at 1/16 < 1/8.
	tn, err := New(Config{ID: "metered", N: 6, Truth: 2, Alphas: alphas,
		MinAlpha: rational.MustParse("1/8"), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	plan := testPlan(t, 6, alphas)
	for i := 1; i <= 3; i++ {
		if _, err := tn.Advance(plan); err != nil {
			t.Fatalf("draw %d within budget refused: %v", i, err)
		}
	}
	acc := tn.Accounting()
	if acc.SpentAlpha.RatString() != "1/8" || acc.NextDrawAllowed {
		t.Fatalf("at the floor: %+v (spent %s)", acc, acc.SpentAlpha.RatString())
	}
	if _, err := tn.Advance(plan); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over-budget draw: err = %v, want ErrBudgetExhausted", err)
	}
	// The refused draw must not have mutated anything.
	acc = tn.Accounting()
	if acc.Epochs != 3 || acc.SpentAlpha.RatString() != "1/8" {
		t.Fatalf("refused draw mutated accounting: %+v", acc)
	}
	if e := tn.Epoch(); e.Epoch != 3 {
		t.Fatalf("refused draw published epoch %d", e.Epoch)
	}
}

func TestEpochResultBounds(t *testing.T) {
	var nilEpoch *Epoch
	if _, err := nilEpoch.Result(1); err == nil {
		t.Error("nil epoch result accepted")
	}
	e := &Epoch{Epoch: 1, Results: []int{4, 2}}
	for _, lvl := range []int{0, 3, -1} {
		if _, err := e.Result(lvl); err == nil {
			t.Errorf("level %d accepted", lvl)
		}
	}
	if r, err := e.Result(2); err != nil || r != 2 {
		t.Errorf("Result(2) = %d, %v", r, err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(nil); err == nil {
		t.Error("nil tenant registered")
	}
	mk := func(id string) *Tenant {
		tn, err := New(Config{ID: id, N: 4, Truth: 1, Alphas: ladder("1/2")})
		if err != nil {
			t.Fatal(err)
		}
		return tn
	}
	for _, id := range []string{"beta", "alpha"} {
		if err := r.Add(mk(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Add(mk("alpha")); err == nil {
		t.Error("duplicate id registered")
	}
	if got := r.IDs(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Errorf("IDs = %v", got)
	}
	if tn, ok := r.Get("beta"); !ok || tn.ID() != "beta" {
		t.Errorf("Get(beta) = %v, %v", tn, ok)
	}
	if _, ok := r.Get("gamma"); ok {
		t.Error("phantom tenant found")
	}
	if !r.Delete("beta") || r.Delete("beta") {
		t.Error("Delete semantics wrong")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

// TestTenantIsolationConcurrent is the package-level isolation proof:
// three tenants with different geometries advanced and read
// concurrently (run under -race in CI). Each tenant's draws must stay
// within its own domain, its accounting must equal its own α₁^epochs
// exactly, and epoch numbering must be gapless per tenant.
func TestTenantIsolationConcurrent(t *testing.T) {
	type fixture struct {
		tn   *Tenant
		plan *release.Plan
		n    int
		a1   string
	}
	reg := NewRegistry()
	var fixtures []fixture
	for _, cfg := range []struct {
		id string
		n  int
		ls []string
	}{
		{"small", 4, []string{"1/3", "1/2"}},
		{"wide", 16, []string{"1/5", "1/3", "1/2"}},
		{"single", 9, []string{"2/5"}},
	} {
		tn, err := New(Config{ID: cfg.id, N: cfg.n, Truth: cfg.n / 2,
			Alphas: ladder(cfg.ls...), Seed: int64(cfg.n)})
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Add(tn); err != nil {
			t.Fatal(err)
		}
		fixtures = append(fixtures, fixture{tn, testPlan(t, cfg.n, ladder(cfg.ls...)), cfg.n, cfg.ls[0]})
	}
	const advances = 20
	var wg sync.WaitGroup
	for _, f := range fixtures {
		f := f
		wg.Add(2)
		// Writer: advances epochs.
		go func() {
			defer wg.Done()
			for i := 0; i < advances; i++ {
				e, err := f.tn.Advance(f.plan)
				if err != nil {
					t.Errorf("%s advance: %v", f.tn.ID(), err)
					return
				}
				for _, r := range e.Results {
					if r < 0 || r > f.n {
						t.Errorf("%s: draw %d outside its own domain [0,%d]", f.tn.ID(), r, f.n)
					}
				}
			}
		}()
		// Reader: lock-free epoch reads plus accounting snapshots.
		go func() {
			defer wg.Done()
			last := 0
			for i := 0; i < advances*10; i++ {
				if e := f.tn.Epoch(); e != nil {
					if e.Epoch < last {
						t.Errorf("%s: epoch went backwards %d -> %d", f.tn.ID(), last, e.Epoch)
					}
					last = e.Epoch
					if len(e.Results) != f.tn.Levels() {
						t.Errorf("%s: epoch has %d results, want %d", f.tn.ID(), len(e.Results), f.tn.Levels())
					}
				}
				_ = f.tn.Accounting()
			}
		}()
	}
	wg.Wait()
	// Exact post-condition per tenant: spent == α₁^advances.
	for _, f := range fixtures {
		acc := f.tn.Accounting()
		if acc.Epochs != advances {
			t.Errorf("%s: epochs = %d, want %d", f.tn.ID(), acc.Epochs, advances)
		}
		want := new(big.Rat).SetInt64(1)
		a1 := rational.MustParse(f.a1)
		for i := 0; i < advances; i++ {
			want.Mul(want, a1)
		}
		if acc.SpentAlpha.Cmp(want) != 0 {
			t.Errorf("%s: spent = %s, want %s (cross-tenant accounting contamination?)",
				f.tn.ID(), acc.SpentAlpha.RatString(), want.RatString())
		}
	}
}
