package laplace

import (
	"errors"
	"math"
	"testing"

	"minimaxdp/internal/privacy"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
)

func TestSampleMoments(t *testing.T) {
	rng := sample.NewRand(11)
	const b = 2.0
	const trials = 400000
	sum, sumAbs := 0.0, 0.0
	for i := 0; i < trials; i++ {
		z, err := Sample(b, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += z
		sumAbs += math.Abs(z)
	}
	if mean := sum / trials; math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ≈ 0", mean)
	}
	if eAbs := sumAbs / trials; math.Abs(eAbs-b) > 0.02 {
		t.Errorf("E|Z| = %v, want %v", eAbs, b)
	}
}

func TestSampleValidation(t *testing.T) {
	rng := sample.NewRand(1)
	for _, b := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Sample(b, rng); !errors.Is(err, ErrBadScale) {
			t.Errorf("Sample(%v) err = %v", b, err)
		}
	}
}

func TestCDF(t *testing.T) {
	if got := CDF(0, 1); got != 0.5 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := CDF(-1e9, 1); got > 1e-9 {
		t.Errorf("CDF(−∞) = %v", got)
	}
	if got := CDF(1e9, 1); got < 1-1e-9 {
		t.Errorf("CDF(+∞) = %v", got)
	}
	// Symmetry: CDF(−x) = 1 − CDF(x).
	for _, x := range []float64{0.3, 1, 2.5} {
		if d := CDF(-x, 1.5) + CDF(x, 1.5) - 1; math.Abs(d) > 1e-12 {
			t.Errorf("symmetry broken at %v: %v", x, d)
		}
	}
}

func TestRoundedPMFIsDistribution(t *testing.T) {
	for _, eps := range []float64{0.3, 0.7, 1.5} {
		for truth := 0; truth <= 6; truth++ {
			pmf, err := RoundedPMF(truth, 6, eps)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for r, p := range pmf {
				if p < 0 {
					t.Errorf("negative mass at %d", r)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("PMF sums to %v", sum)
			}
		}
	}
	if _, err := RoundedPMF(0, 6, 0); !errors.Is(err, ErrBadScale) {
		t.Error("ε=0 accepted")
	}
	if _, err := RoundedPMF(9, 6, 1); err == nil {
		t.Error("truth out of range accepted")
	}
}

func TestMechanismSampleMatchesPMF(t *testing.T) {
	rng := sample.NewRand(21)
	const n, truth = 8, 3
	const eps = 0.8
	pmf, err := RoundedPMF(truth, n, eps)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 300000
	counts := make([]int, n+1)
	for i := 0; i < trials; i++ {
		r, err := MechanismSample(truth, n, eps, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[r]++
	}
	for r := 0; r <= n; r++ {
		got := float64(counts[r]) / trials
		if math.Abs(got-pmf[r]) > 0.01 {
			t.Errorf("Pr[%d]: empirical %v, CDF-difference %v", r, got, pmf[r])
		}
	}
	if _, err := MechanismSample(3, 8, 0, rng); !errors.Is(err, ErrBadScale) {
		t.Error("ε=0 accepted")
	}
}

// The discretized Laplace mechanism is at least e^{−ε}-DP (rounding is
// post-processing), and its actual level is close to e^{−ε}.
func TestWorstAlphaNearTheory(t *testing.T) {
	const n = 10
	for _, eps := range []float64{0.5, 1, 2} {
		wa, err := WorstAlpha(n, eps)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-eps)
		if wa < want-1e-9 {
			t.Errorf("ε=%v: rounded Laplace α=%v below e^{−ε}=%v (post-processing violated)", eps, wa, want)
		}
		if wa > want+0.1 {
			t.Errorf("ε=%v: rounded Laplace α=%v implausibly above e^{−ε}=%v", eps, wa, want)
		}
	}
	if _, err := WorstAlpha(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestExpectedAbsNoise(t *testing.T) {
	got, err := ExpectedAbsNoise(0.5)
	if err != nil || got != 2 {
		t.Errorf("ExpectedAbsNoise = %v, %v", got, err)
	}
	if _, err := ExpectedAbsNoise(0); !errors.Is(err, ErrBadScale) {
		t.Error("ε=0 accepted")
	}
}

func TestRoundedExpectedAbsError(t *testing.T) {
	// Clamping and rounding can only reduce the distance to the truth
	// for interior truths, so the rounded error is below 1/ε + 1/2.
	const n, truth = 20, 10
	for _, eps := range []float64{0.5, 1} {
		got, err := RoundedExpectedAbsError(truth, n, eps)
		if err != nil {
			t.Fatal(err)
		}
		if got <= 0 || got > 1/eps+0.5 {
			t.Errorf("ε=%v: rounded E|err| = %v outside (0, %v]", eps, got, 1/eps+0.5)
		}
	}
	if _, err := RoundedExpectedAbsError(0, 5, 0); err == nil {
		t.Error("ε=0 accepted")
	}
}

// Matched-privacy comparison: at α = e^{−ε} the geometric noise has
// strictly smaller expected absolute error than the continuous Laplace
// noise for every ε > 0 (2α/(1−α²) < 1/ε) — the discrete mechanism
// wastes nothing on fractional outputs.
func TestGeometricBeatsContinuousLaplace(t *testing.T) {
	for _, eps := range []float64{0.25, 0.5, 1, 2, 4} {
		alphaF := math.Exp(-eps)
		alpha, err := rational.FromFloat(alphaF)
		if err != nil {
			t.Fatal(err)
		}
		geo := rational.Float(privacy.GeometricExpectedAbsNoise(alpha))
		lap, err := ExpectedAbsNoise(eps)
		if err != nil {
			t.Fatal(err)
		}
		if geo >= lap {
			t.Errorf("ε=%v: geometric E|Z|=%v not below Laplace %v", eps, geo, lap)
		}
	}
}
