// Package laplace implements the continuous Laplace mechanism of
// Dwork, McSherry, Nissim & Smith (TCC 2006) — the paper's reference
// [5], of which the geometric mechanism is the discrete analogue — as
// a comparison baseline.
//
// For count queries (sensitivity 1) the Laplace mechanism adds
// Lap(0, 1/ε) noise to the true result. To release integers it is
// conventionally rounded to the nearest integer and clamped to [0, n];
// RoundedPMF gives that discretized mechanism's exact-within-float64
// output distribution via CDF differences, so its differential privacy
// and utility can be measured against the geometric mechanism.
//
// The headline comparison (experiment ELap): at matched privacy
// α = e^{−ε}, the geometric mechanism's expected absolute error is
// strictly below the continuous Laplace noise magnitude, and the
// rounded Laplace mechanism is never better than the tailored optimum
// that the geometric mechanism attains — the paper's optimality made
// quantitative against the classical baseline.
package laplace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadScale is returned for non-positive noise scales.
var ErrBadScale = errors.New("laplace: scale must be positive")

// Sample draws Lap(0, b): density (1/2b)·e^{−|x|/b}.
func Sample(b float64, rng *rand.Rand) (float64, error) {
	if b <= 0 || math.IsNaN(b) || math.IsInf(b, 0) {
		return 0, fmt.Errorf("%w: %v", ErrBadScale, b)
	}
	u := rng.Float64() - 0.5
	// Inverse CDF: −b·sgn(u)·ln(1−2|u|).
	return -b * sign(u) * math.Log(1-2*math.Abs(u)), nil
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// CDF returns the Lap(0,b) cumulative distribution function at x.
func CDF(x, b float64) float64 {
	if x < 0 {
		return 0.5 * math.Exp(x/b)
	}
	return 1 - 0.5*math.Exp(-x/b)
}

// MechanismSample releases a count: truth + Lap(0, 1/ε), rounded to
// the nearest integer and clamped into [0, n].
func MechanismSample(truth, n int, epsilon float64, rng *rand.Rand) (int, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("%w: ε = %v", ErrBadScale, epsilon)
	}
	z, err := Sample(1/epsilon, rng)
	if err != nil {
		return 0, err
	}
	r := int(math.Round(float64(truth) + z))
	if r < 0 {
		r = 0
	}
	if r > n {
		r = n
	}
	return r, nil
}

// RoundedPMF returns the output distribution of the rounded-and-
// clamped Laplace mechanism for the given true result: Pr[out = r] is
// the Lap(truth, 1/ε) mass of the rounding cell [r−1/2, r+1/2],
// with the boundary cells absorbing the clamped tails.
func RoundedPMF(truth, n int, epsilon float64) ([]float64, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("%w: ε = %v", ErrBadScale, epsilon)
	}
	if n < 1 || truth < 0 || truth > n {
		return nil, fmt.Errorf("laplace: truth %d / n %d invalid", truth, n)
	}
	b := 1 / epsilon
	pmf := make([]float64, n+1)
	for r := 0; r <= n; r++ {
		lo := float64(r) - 0.5 - float64(truth)
		hi := float64(r) + 0.5 - float64(truth)
		switch r {
		case 0:
			pmf[r] = CDF(hi, b)
		case n:
			pmf[r] = tailMass(lo, b)
		default:
			pmf[r] = cellMass(lo, hi, b)
		}
	}
	return pmf, nil
}

// cellMass returns Pr[lo < Lap(0,b) ≤ hi] in a cancellation-free form:
// naive CDF differences lose all precision in the far right tail
// (1 − tiny minus 1 − tiny), which corrupts the PMF ratios that the
// privacy-level computation depends on.
func cellMass(lo, hi, b float64) float64 {
	switch {
	case hi <= 0:
		return 0.5 * (math.Exp(hi/b) - math.Exp(lo/b))
	case lo >= 0:
		return 0.5 * (math.Exp(-lo/b) - math.Exp(-hi/b))
	default:
		return 1 - 0.5*(math.Exp(lo/b)+math.Exp(-hi/b))
	}
}

// tailMass returns Pr[Lap(0,b) > lo] without cancellation.
func tailMass(lo, b float64) float64 {
	if lo >= 0 {
		return 0.5 * math.Exp(-lo/b)
	}
	return 1 - 0.5*math.Exp(lo/b)
}

// ExpectedAbsNoise returns E|Lap(0, 1/ε)| = 1/ε, the continuous
// mechanism's expected absolute error before rounding.
func ExpectedAbsNoise(epsilon float64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("%w: ε = %v", ErrBadScale, epsilon)
	}
	return 1 / epsilon, nil
}

// RoundedExpectedAbsError returns the exact-within-float64 expected
// absolute error of the rounded-and-clamped mechanism at the given
// true result.
func RoundedExpectedAbsError(truth, n int, epsilon float64) (float64, error) {
	pmf, err := RoundedPMF(truth, n, epsilon)
	if err != nil {
		return 0, err
	}
	e := 0.0
	for r, p := range pmf {
		e += p * math.Abs(float64(r-truth))
	}
	return e, nil
}

// WorstAlpha returns the empirical-free differential-privacy level of
// the rounded-and-clamped mechanism on {0..n}: the minimum over
// adjacent truths and outputs of the PMF ratio (both directions),
// i.e. the largest α for which the discretized mechanism is α-DP.
func WorstAlpha(n int, epsilon float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("laplace: n must be ≥ 1, got %d", n)
	}
	worst := 1.0
	prev, err := RoundedPMF(0, n, epsilon)
	if err != nil {
		return 0, err
	}
	for i := 1; i <= n; i++ {
		cur, err := RoundedPMF(i, n, epsilon)
		if err != nil {
			return 0, err
		}
		for r := 0; r <= n; r++ {
			a, b := prev[r], cur[r]
			if a == 0 && b == 0 {
				continue
			}
			if a == 0 || b == 0 {
				return 0, nil
			}
			ratio := a / b
			if ratio > 1 {
				ratio = 1 / ratio
			}
			if ratio < worst {
				worst = ratio
			}
		}
		prev = cur
	}
	return worst, nil
}
