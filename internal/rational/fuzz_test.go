package rational

import (
	"testing"
)

// FuzzParse checks that Parse never panics and that every accepted
// string round-trips through RatString.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"1/2", "-3/7", "0", "42", "0.125", "", "x", "1/0", " 5/17 ", "999999999999999999/7"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(r.RatString())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", r.RatString(), s, err)
		}
		if back.Cmp(r) != 0 {
			t.Fatalf("round trip changed value: %q → %s → %s", s, r.RatString(), back.RatString())
		}
	})
}

// FuzzPow checks that Pow agrees with iterated multiplication for
// arbitrary small bases and exponents.
func FuzzPow(f *testing.F) {
	f.Add(int64(2), int64(3), uint8(5))
	f.Add(int64(-7), int64(4), uint8(0))
	f.Fuzz(func(t *testing.T, p, q int64, k uint8) {
		if q == 0 {
			return
		}
		a := New(p, q)
		n := int(k % 12)
		want := One()
		for i := 0; i < n; i++ {
			want.Mul(want, a)
		}
		if got := Pow(a, n); got.Cmp(want) != 0 {
			t.Fatalf("Pow(%s, %d) = %s, want %s", a.RatString(), n, got.RatString(), want.RatString())
		}
	})
}
