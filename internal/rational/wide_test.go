package rational

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// ratFromPairs builds (n1/d1)·(n2/d2) exactly: products of two int64
// fractions cover the full 128-bit Wide range (|num|, den up to 2¹²⁶).
func ratFromPairs(t testing.TB, n1, d1, n2, d2 int64) *big.Rat {
	t.Helper()
	if d1 == 0 || d2 == 0 {
		t.Skip("zero denominator seed")
	}
	a := new(big.Rat).SetFrac(big.NewInt(n1), big.NewInt(d1))
	return a.Mul(a, new(big.Rat).SetFrac(big.NewInt(n2), big.NewInt(d2)))
}

// requireCanonical asserts w is in the representation every
// constructor promises: lowest terms, canonical zero, den > 0 —
// checked by round-tripping through big.Rat (which normalizes) and
// requiring exact struct equality.
func requireCanonical(t *testing.T, w Wide) {
	t.Helper()
	back, ok := WideFromRat(w.Rat())
	if !ok {
		t.Fatalf("Wide %v does not round-trip through big.Rat", w.Rat())
	}
	if back != w {
		t.Fatalf("non-canonical Wide: have %+v, canonical %+v (value %v)", w, back, w.Rat())
	}
}

func TestWideFromSmallEdges(t *testing.T) {
	cases := []struct{ num, den int64 }{
		{0, 1}, {1, 1}, {-1, 1}, {math.MaxInt64, 1}, {-math.MaxInt64, 1},
		{1, math.MaxInt64}, {-3, math.MaxInt64}, {math.MaxInt64 - 1, math.MaxInt64},
	}
	for _, c := range cases {
		s, ok := MakeSmall(c.num, c.den)
		if !ok {
			t.Fatalf("MakeSmall(%d, %d) failed", c.num, c.den)
		}
		w := WideFromSmall(s)
		requireCanonical(t, w)
		if w.Rat().Cmp(s.Rat()) != 0 {
			t.Fatalf("WideFromSmall(%d/%d) = %v", c.num, c.den, w.Rat())
		}
		back, ok := w.Small()
		if !ok || back != s {
			t.Fatalf("Small round-trip of %d/%d: %+v ok=%v", c.num, c.den, back, ok)
		}
	}
}

func TestWideMinInt64Magnitude(t *testing.T) {
	// math.MinInt64 is rejected by MakeSmall but its magnitude 2⁶³ is a
	// first-class Wide value; the Small() narrowing must refuse it.
	r := new(big.Rat).SetInt64(math.MinInt64)
	w, ok := WideFromRat(r)
	if !ok {
		t.Fatal("WideFromRat(MinInt64) failed")
	}
	requireCanonical(t, w)
	if w.Rat().Cmp(r) != 0 {
		t.Fatalf("got %v", w.Rat())
	}
	if s, ok := w.Small(); ok {
		t.Fatalf("Small() accepted 2⁶³ magnitude: %+v", s)
	}
	if got := w.Neg().Rat(); got.Sign() <= 0 || got.Num().BitLen() != 64 {
		t.Fatalf("Neg(MinInt64) = %v", got)
	}
}

func TestWideFromRatBounds(t *testing.T) {
	// 2¹²⁸−1 fits; 2¹²⁸ does not.
	max128 := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 128), big.NewInt(1))
	w, ok := WideFromRat(new(big.Rat).SetInt(max128))
	if !ok {
		t.Fatal("2^128-1 rejected")
	}
	requireCanonical(t, w)
	if w.Bits() != 128 {
		t.Fatalf("Bits() = %d, want 128", w.Bits())
	}
	over := new(big.Rat).SetInt(new(big.Int).Add(max128, big.NewInt(1)))
	if _, ok := WideFromRat(over); ok {
		t.Fatal("2^128 accepted")
	}
	// Denominator bound too.
	if _, ok := WideFromRat(new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Add(max128, big.NewInt(1)))); ok {
		t.Fatal("1/2^128 accepted")
	}
}

func TestWideForcedOverflowFallsBack(t *testing.T) {
	// (2¹²⁸−1)·(2¹²⁸−1) cannot fit: Mul must report failure and the
	// exact fallback must agree with big.Rat.
	max128 := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 128), big.NewInt(1))
	r := new(big.Rat).SetInt(max128)
	w, _ := WideFromRat(r)
	if _, ok := w.Mul(w); ok {
		t.Fatal("overflowing Mul reported success")
	}
	want := new(big.Rat).Mul(r, r)
	if got := MulRatW(w, w); got.Cmp(want) != 0 {
		t.Fatalf("MulRatW = %v, want %v", got, want)
	}
	if _, ok := w.Add(w); ok {
		t.Fatal("overflowing Add reported success")
	}
	if got, want := AddRatW(w, w), new(big.Rat).Add(r, r); got.Cmp(want) != 0 {
		t.Fatalf("AddRatW = %v, want %v", got, want)
	}
}

func TestWideQuoByZero(t *testing.T) {
	one, _ := WideFromRat(new(big.Rat).SetInt64(1))
	if _, ok := one.Quo(Wide{}); ok {
		t.Fatal("Quo by zero reported success")
	}
}

// TestWideKernelsAgainstBigInt drives the raw 128-bit kernels (gcd128,
// div128, div128by64, shifts, mulFull128 via Cmp) against big.Int
// oracles on seeded random words, including two-word divisors — the
// div128 branch ordinary reduction traffic almost never reaches.
func TestWideKernelsAgainstBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	word := func() uint64 {
		// Mix magnitudes: full words, small words, and power-of-two-ish
		// values so gcds and shifts hit both branches.
		switch rng.Intn(4) {
		case 0:
			return rng.Uint64()
		case 1:
			return uint64(rng.Intn(16))
		case 2:
			return 1 << uint(rng.Intn(64))
		default:
			return rng.Uint64() >> uint(rng.Intn(60))
		}
	}
	for i := 0; i < 20000; i++ {
		ahi, alo := word(), word()
		bhi, blo := word(), word()
		a, b := bigFromU128(ahi, alo), bigFromU128(bhi, blo)
		if a.Sign() != 0 || b.Sign() != 0 {
			ghi, glo := gcd128(ahi, alo, bhi, blo)
			if want := new(big.Int).GCD(nil, nil, a, b); bigFromU128(ghi, glo).Cmp(want) != 0 {
				t.Fatalf("gcd128(%v, %v) = %v, want %v", a, b, bigFromU128(ghi, glo), want)
			}
		}
		if b.Sign() != 0 {
			qhi, qlo := div128(ahi, alo, bhi, blo)
			if want := new(big.Int).Quo(a, b); bigFromU128(qhi, qlo).Cmp(want) != 0 {
				t.Fatalf("div128(%v, %v) = %v, want %v", a, b, bigFromU128(qhi, qlo), want)
			}
		}
		if blo != 0 {
			qhi, qlo := div128by64(ahi, alo, blo)
			if want := new(big.Int).Quo(a, new(big.Int).SetUint64(blo)); bigFromU128(qhi, qlo).Cmp(want) != 0 {
				t.Fatalf("div128by64(%v, %d) wrong", a, blo)
			}
		}
		s := uint(rng.Intn(128))
		shHi, shLo := shr128(ahi, alo, s)
		if want := new(big.Int).Rsh(a, s); bigFromU128(shHi, shLo).Cmp(want) != 0 {
			t.Fatalf("shr128(%v, %d) wrong", a, s)
		}
		slHi, slLo := shl128(ahi, alo, s)
		wantL := new(big.Int).Lsh(a, s)
		wantL.And(wantL, new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 128), big.NewInt(1)))
		if bigFromU128(slHi, slLo).Cmp(wantL) != 0 {
			t.Fatalf("shl128(%v, %d) wrong", a, s)
		}
		p3, p2, p1, p0 := mulFull128(ahi, alo, bhi, blo)
		prod := new(big.Int).Mul(a, b)
		hiPart := new(big.Int).Lsh(bigFromU128(p3, p2), 128)
		if hiPart.Or(hiPart, bigFromU128(p1, p0)); hiPart.Cmp(prod) != 0 {
			t.Fatalf("mulFull128(%v, %v) = %v, want %v", a, b, hiPart, prod)
		}
	}
}

// checkWideOp is the shared oracle: the checked op must either return
// the exact big.Rat result or report overflow, in which case the
// named fallback must return it. Overflow may be conservative (a
// pre-reduction intermediate can exceed 128 bits even when the
// reduced result fits) but success is never wrong.
func checkWideOp(t *testing.T, name string, got Wide, ok bool, fallback func() *big.Rat, want *big.Rat) {
	t.Helper()
	if ok {
		requireCanonical(t, got)
		if got.Rat().Cmp(want) != 0 {
			t.Fatalf("%s = %v, want %v", name, got.Rat(), want)
		}
		return
	}
	if fb := fallback(); fb.Cmp(want) != 0 {
		t.Fatalf("%s fallback = %v, want %v", name, fb, want)
	}
}

func FuzzWideMatchesBigRat(f *testing.F) {
	seeds := [][8]int64{
		{1, 1, 1, 1, 2, 3, 5, 7},
		{0, 1, 1, 1, 0, 5, 1, 1},
		{math.MinInt64, 1, 1, 1, math.MaxInt64, 1, 1, 1},
		{math.MaxInt64, math.MaxInt64 - 1, math.MaxInt64 - 2, 3, -math.MaxInt64, 7, math.MaxInt64, 11},
		{math.MinInt64, math.MaxInt64, math.MinInt64, math.MaxInt64, 1, math.MinInt64, 1, 3},
		{1 << 62, 1, 4, 1, 1 << 62, 1, -8, 1},
		{-1, math.MinInt64, 1, math.MaxInt64, 6700417, 641, 274177, 67280421310721},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7])
	}
	f.Fuzz(func(t *testing.T, an1, ad1, an2, ad2, bn1, bd1, bn2, bd2 int64) {
		ar := ratFromPairs(t, an1, ad1, an2, ad2)
		br := ratFromPairs(t, bn1, bd1, bn2, bd2)
		aw, ok := WideFromRat(ar)
		if !ok {
			t.Fatalf("product of int64 fractions must fit 128 bits: %v", ar)
		}
		bw, ok := WideFromRat(br)
		if !ok {
			t.Fatalf("product of int64 fractions must fit 128 bits: %v", br)
		}
		requireCanonical(t, aw)
		requireCanonical(t, bw)

		if got, want := aw.Sign(), ar.Sign(); got != want {
			t.Fatalf("Sign = %d, want %d", got, want)
		}
		if got, want := aw.Cmp(bw), ar.Cmp(br); got != want {
			t.Fatalf("Cmp = %d, want %d", got, want)
		}
		neg := aw.Neg()
		requireCanonical(t, neg)
		if want := new(big.Rat).Neg(ar); neg.Rat().Cmp(want) != 0 {
			t.Fatalf("Neg = %v, want %v", neg.Rat(), want)
		}

		sum, ok := aw.Add(bw)
		checkWideOp(t, "Add", sum, ok, func() *big.Rat { return AddRatW(aw, bw) }, new(big.Rat).Add(ar, br))
		diff, ok := aw.Sub(bw)
		checkWideOp(t, "Sub", diff, ok, func() *big.Rat { return SubRatW(aw, bw) }, new(big.Rat).Sub(ar, br))
		prod, ok := aw.Mul(bw)
		checkWideOp(t, "Mul", prod, ok, func() *big.Rat { return MulRatW(aw, bw) }, new(big.Rat).Mul(ar, br))
		if br.Sign() != 0 {
			quo, ok := aw.Quo(bw)
			checkWideOp(t, "Quo", quo, ok, func() *big.Rat { return QuoRatW(aw, bw) }, new(big.Rat).Quo(ar, br))
		} else if _, ok := aw.Quo(bw); ok {
			t.Fatal("Quo by zero reported success")
		}
		fmsWant := new(big.Rat).Mul(bw.Rat(), bw.Rat())
		fmsWant.Sub(ar, fmsWant)
		fms, ok := aw.FMS(bw, bw)
		checkWideOp(t, "FMS", fms, ok, func() *big.Rat { return FMSRatW(aw, bw, bw) }, fmsWant)

		// Narrowing: Small() must agree with SmallFromRat exactly.
		if s, ok := aw.Small(); ok {
			if s.Rat().Cmp(ar) != 0 {
				t.Fatalf("Small() = %v, want %v", s.Rat(), ar)
			}
		} else if _, fits := SmallFromRat(ar); fits {
			t.Fatalf("Small() rejected %v, which SmallFromRat accepts", ar)
		}
	})
}
