// Package rational provides exact arithmetic helpers over math/big.Rat.
//
// The entire optimality pipeline of this library (mechanism matrices,
// determinants, simplex pivots, loss comparisons) runs on exact
// rationals so that every theorem check from the paper is a true
// equality, not a floating-point approximation. This package collects
// the small constructors and comparison utilities that the rest of the
// code base uses so that call sites stay terse.
package rational

import (
	"fmt"
	"math/big"
	"strings"
)

// New returns the rational p/q. It panics if q == 0, which is a
// programmer error at every call site in this module.
func New(p, q int64) *big.Rat {
	if q == 0 {
		panic("rational: zero denominator")
	}
	return big.NewRat(p, q)
}

// Int returns the rational n/1.
func Int(n int64) *big.Rat { return big.NewRat(n, 1) }

// Zero returns a fresh rational equal to 0.
func Zero() *big.Rat { return new(big.Rat) }

// One returns a fresh rational equal to 1.
func One() *big.Rat { return big.NewRat(1, 1) }

// Clone returns a fresh copy of x.
func Clone(x *big.Rat) *big.Rat { return new(big.Rat).Set(x) }

// Parse converts a string such as "3/4", "-1/98", "2", or "0.25" into
// a rational. It returns an error for malformed input.
func Parse(s string) (*big.Rat, error) {
	r, ok := new(big.Rat).SetString(strings.TrimSpace(s))
	if !ok {
		return nil, fmt.Errorf("rational: cannot parse %q", s)
	}
	return r, nil
}

// MustParse is Parse for compile-time-known literals; it panics on
// malformed input.
func MustParse(s string) *big.Rat {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Add returns a fresh rational a+b.
func Add(a, b *big.Rat) *big.Rat { return new(big.Rat).Add(a, b) }

// Sub returns a fresh rational a−b.
func Sub(a, b *big.Rat) *big.Rat { return new(big.Rat).Sub(a, b) }

// Mul returns a fresh rational a·b.
func Mul(a, b *big.Rat) *big.Rat { return new(big.Rat).Mul(a, b) }

// Div returns a fresh rational a/b. It panics if b == 0.
func Div(a, b *big.Rat) *big.Rat {
	if b.Sign() == 0 {
		panic("rational: division by zero")
	}
	return new(big.Rat).Quo(a, b)
}

// Neg returns a fresh rational −a.
func Neg(a *big.Rat) *big.Rat { return new(big.Rat).Neg(a) }

// Abs returns a fresh rational |a|.
func Abs(a *big.Rat) *big.Rat { return new(big.Rat).Abs(a) }

// Pow returns a fresh rational a^k for k ≥ 0 (a^0 = 1).
func Pow(a *big.Rat, k int) *big.Rat {
	if k < 0 {
		panic("rational: negative exponent")
	}
	out := One()
	base := Clone(a)
	for k > 0 {
		if k&1 == 1 {
			out.Mul(out, base)
		}
		base.Mul(base, base)
		k >>= 1
	}
	return out
}

// Cmp compares a and b: −1 if a<b, 0 if a==b, +1 if a>b.
func Cmp(a, b *big.Rat) int { return a.Cmp(b) }

// Equal reports whether a == b exactly.
func Equal(a, b *big.Rat) bool { return a.Cmp(b) == 0 }

// Less reports whether a < b.
func Less(a, b *big.Rat) bool { return a.Cmp(b) < 0 }

// LessEq reports whether a ≤ b.
func LessEq(a, b *big.Rat) bool { return a.Cmp(b) <= 0 }

// IsZero reports whether a == 0.
func IsZero(a *big.Rat) bool { return a.Sign() == 0 }

// IsNonNegative reports whether a ≥ 0.
func IsNonNegative(a *big.Rat) bool { return a.Sign() >= 0 }

// Min returns a fresh copy of the smaller of a and b.
func Min(a, b *big.Rat) *big.Rat {
	if a.Cmp(b) <= 0 {
		return Clone(a)
	}
	return Clone(b)
}

// Max returns a fresh copy of the larger of a and b.
func Max(a, b *big.Rat) *big.Rat {
	if a.Cmp(b) >= 0 {
		return Clone(a)
	}
	return Clone(b)
}

// Sum returns the sum of xs as a fresh rational (0 for an empty slice).
func Sum(xs []*big.Rat) *big.Rat {
	out := Zero()
	for _, x := range xs {
		out.Add(out, x)
	}
	return out
}

// Dot returns Σ a[i]·b[i]. It panics on length mismatch.
func Dot(a, b []*big.Rat) *big.Rat {
	if len(a) != len(b) {
		panic("rational: dot length mismatch")
	}
	out := Zero()
	tmp := Zero()
	for i := range a {
		tmp.Mul(a[i], b[i])
		out.Add(out, tmp)
	}
	return out
}

// Float returns the float64 value nearest to a.
func Float(a *big.Rat) float64 {
	f, _ := a.Float64()
	return f
}

// String formats a like "3/4" or "2" (denominator 1 suppressed).
func String(a *big.Rat) string {
	return a.RatString()
}

// FromFloat converts a float64 to an exact rational. Only use for
// display-adjacent code paths; core algorithms take rationals directly.
func FromFloat(f float64) (*big.Rat, error) {
	r := new(big.Rat).SetFloat64(f)
	if r == nil {
		return nil, fmt.Errorf("rational: %v is not finite", f)
	}
	return r, nil
}

// Vector returns a fresh slice of n zeros.
func Vector(n int) []*big.Rat {
	v := make([]*big.Rat, n)
	for i := range v {
		v[i] = Zero()
	}
	return v
}

// CloneVector deep-copies a vector.
func CloneVector(v []*big.Rat) []*big.Rat {
	out := make([]*big.Rat, len(v))
	for i, x := range v {
		out[i] = Clone(x)
	}
	return out
}

// VectorEqual reports whether two vectors are elementwise equal.
func VectorEqual(a, b []*big.Rat) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Cmp(b[i]) != 0 {
			return false
		}
	}
	return true
}
