package rational

import (
	"math"
	"math/big"
	"math/bits"
)

// Small is a fixed-width rational: an int64 numerator over a positive
// int64 denominator, always in lowest terms. It exists as the fast
// path under big.Rat for the kernels (alias-table quantization,
// small-instance pivots) where every operand provably fits — but
// "provably" is enforced, not assumed: the only ways to obtain a
// Small are the checked constructors and the checked arithmetic
// methods, each of which reports overflow instead of wrapping, and
// every caller must either handle the failure or fall back to the
// exact big.Rat path (AddRat and friends). The dpvet ratoverflow
// analyzer polices this boundary: raw int64 arithmetic in this
// package is confined to the named checked kernels below.
type Small struct {
	num, den int64 // den > 0, gcd(|num|, den) == 1; zero value is 0/1 via accessors
}

// MakeSmall returns num/den reduced to lowest terms. It reports
// failure when den == 0 or when sign normalization or reduction would
// overflow (both operands at math.MinInt64 edges).
func MakeSmall(num, den int64) (Small, bool) {
	if den == 0 {
		return Small{}, false
	}
	if den < 0 {
		var ok bool
		if num, ok = negChecked(num); !ok {
			return Small{}, false
		}
		if den, ok = negChecked(den); !ok {
			return Small{}, false
		}
	}
	if num == math.MinInt64 {
		// |num| is not representable, so the reduced numerator cannot
		// be either unless the gcd shrinks it; computing |num| would
		// already overflow, so reject the edge outright.
		return Small{}, false
	}
	g := gcd64(abs64(num), den)
	if g > 1 {
		num = divExact(num, g)
		den = divExact(den, g)
	}
	return Small{num: num, den: den}, true
}

// SmallFromRat converts r to a Small, reporting failure when either
// component exceeds int64.
func SmallFromRat(r *big.Rat) (Small, bool) {
	if !r.Num().IsInt64() || !r.Denom().IsInt64() {
		return Small{}, false
	}
	return MakeSmall(r.Num().Int64(), r.Denom().Int64())
}

// Num returns the numerator (negative iff the value is negative).
func (s Small) Num() int64 { return s.num }

// Den returns the positive denominator (1 for the zero value).
func (s Small) Den() int64 {
	if s.den == 0 {
		return 1
	}
	return s.den
}

// Rat returns the exact big.Rat value of s — the fallback every
// overflow path lands on.
func (s Small) Rat() *big.Rat { return big.NewRat(s.num, s.Den()) }

// Sign returns -1, 0, or +1.
func (s Small) Sign() int {
	switch {
	case s.num < 0:
		return -1
	case s.num > 0:
		return 1
	}
	return 0
}

// IsZero reports whether s == 0.
func (s Small) IsZero() bool { return s.num == 0 }

// Add returns s+t, reporting failure on overflow.
func (s Small) Add(t Small) (Small, bool) {
	ad, ok := mulChecked(s.num, t.Den())
	if !ok {
		return Small{}, false
	}
	bc, ok := mulChecked(t.num, s.Den())
	if !ok {
		return Small{}, false
	}
	num, ok := addChecked(ad, bc)
	if !ok {
		return Small{}, false
	}
	den, ok := mulChecked(s.Den(), t.Den())
	if !ok {
		return Small{}, false
	}
	return MakeSmall(num, den)
}

// Sub returns s−t, reporting failure on overflow.
func (s Small) Sub(t Small) (Small, bool) {
	nt, ok := t.Neg()
	if !ok {
		return Small{}, false
	}
	return s.Add(nt)
}

// Mul returns s·t, reporting failure on overflow.
func (s Small) Mul(t Small) (Small, bool) {
	// Cross-reduce first so products stay as small as possible.
	a, b := s, t
	if g := gcd64(abs64(a.num), b.Den()); g > 1 {
		a.num = divExact(a.num, g)
		b.den = divExact(b.Den(), g)
	}
	if g := gcd64(abs64(b.num), a.Den()); g > 1 {
		b.num = divExact(b.num, g)
		a.den = divExact(a.Den(), g)
	}
	num, ok := mulChecked(a.num, b.num)
	if !ok {
		return Small{}, false
	}
	den, ok := mulChecked(a.Den(), b.Den())
	if !ok {
		return Small{}, false
	}
	return MakeSmall(num, den)
}

// Quo returns s/t, reporting failure on overflow or t == 0.
func (s Small) Quo(t Small) (Small, bool) {
	if t.num == 0 {
		return Small{}, false
	}
	num, ok := mulChecked(s.num, t.Den())
	if !ok {
		return Small{}, false
	}
	den, ok := mulChecked(s.Den(), t.num)
	if !ok {
		return Small{}, false
	}
	return MakeSmall(num, den)
}

// Neg returns −s, reporting failure at the math.MinInt64 edge.
func (s Small) Neg() (Small, bool) {
	num, ok := negChecked(s.num)
	if !ok {
		return Small{}, false
	}
	return MakeSmall(num, s.Den())
}

// FMS returns s − b·c, reporting failure on overflow: the fused
// multiply-subtract at the heart of LU elimination and simplex basis
// updates. It composes the checked Mul and Sub, so the raw arithmetic
// stays inside the named kernels.
func (s Small) FMS(b, c Small) (Small, bool) {
	p, ok := b.Mul(c)
	if !ok {
		return Small{}, false
	}
	return s.Sub(p)
}

// Cmp compares s and t exactly (-1, 0, +1) without overflow: the
// cross products are formed in 128 bits.
func (s Small) Cmp(t Small) int {
	lhsHi, lhsLo, lhsNeg := mul64To128(s.num, t.Den())
	rhsHi, rhsLo, rhsNeg := mul64To128(t.num, s.Den())
	switch {
	case lhsNeg && !rhsNeg:
		return -1
	case !lhsNeg && rhsNeg:
		return 1
	}
	// Same sign: compare magnitudes, inverted when both negative.
	cmp := 0
	switch {
	case lhsHi != rhsHi:
		if lhsHi < rhsHi {
			cmp = -1
		} else {
			cmp = 1
		}
	case lhsLo != rhsLo:
		if lhsLo < rhsLo {
			cmp = -1
		} else {
			cmp = 1
		}
	}
	if lhsNeg {
		cmp = -cmp
	}
	return cmp
}

// AddRat is the exact fallback for Add: it never fails, returning the
// big.Rat sum.
func AddRat(s, t Small) *big.Rat { return new(big.Rat).Add(s.Rat(), t.Rat()) }

// SubRat is the exact fallback for Sub.
func SubRat(s, t Small) *big.Rat { return new(big.Rat).Sub(s.Rat(), t.Rat()) }

// MulRat is the exact fallback for Mul.
func MulRat(s, t Small) *big.Rat { return new(big.Rat).Mul(s.Rat(), t.Rat()) }

// QuoRat is the exact fallback for Quo. It panics if t == 0, matching
// Div.
func QuoRat(s, t Small) *big.Rat { return Div(s.Rat(), t.Rat()) }

// FMSRat is the exact fallback for FMS.
func FMSRat(s, b, c Small) *big.Rat {
	p := new(big.Rat).Mul(b.Rat(), c.Rat())
	return p.Sub(s.Rat(), p)
}

// ---- checked kernels ----
//
// These are the only functions in the package allowed to perform raw
// fixed-width arithmetic; the ratoverflow analyzer's kernel allowlist
// names them. Keep them tiny and obviously correct.

// addChecked returns a+b, reporting overflow.
func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// subChecked returns a−b, reporting overflow.
func subChecked(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return 0, false
	}
	return d, true
}

// mulChecked returns a·b, reporting overflow.
func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		// MinInt64 times anything but 1 overflows, and the p/b probe
		// below would itself fault on MinInt64 / -1.
		if a == 1 {
			return b, true
		}
		if b == 1 {
			return a, true
		}
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// negChecked returns −a, reporting overflow at math.MinInt64.
func negChecked(a int64) (int64, bool) {
	if a == math.MinInt64 {
		return 0, false
	}
	return -a, true
}

// abs64 returns |a| for a != math.MinInt64 (callers guard the edge).
func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

// divExact returns a/b for positive b dividing a exactly (gcd
// reduction); |a/b| ≤ |a| for b ≥ 1, so it cannot overflow.
func divExact(a, b int64) int64 { return a / b }

// gcd64 returns gcd(a, b) for non-negative inputs (gcd(0, b) == b).
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// mul64To128 returns |a·b| as a 128-bit magnitude plus the product's
// sign. Inputs at math.MinInt64 are handled: the magnitude 2⁶³ fits
// in the unsigned 128-bit product.
func mul64To128(a, b int64) (hi, lo uint64, neg bool) {
	neg = (a < 0) != (b < 0)
	ua := uint64(a)
	if a < 0 {
		ua = -ua
	}
	ub := uint64(b)
	if b < 0 {
		ub = -ub
	}
	hi, lo = bits.Mul64(ua, ub)
	if hi == 0 && lo == 0 {
		neg = false
	}
	return hi, lo, neg
}
