package rational

import (
	"math"
	"math/big"
	"math/bits"
)

// Wide is the 128-bit tier of the fixed-width rational ladder: a
// sign-and-magnitude rational with two-word (128-bit) numerator and
// denominator, always in lowest terms. It sits between Small (one
// int64 word per component) and big.Rat: kernels that outgrow int64
// promote here and keep running allocation-free on machine words —
// the dual-repair FTRAN/BTRAN entries of the large-n mechanism LPs
// live almost entirely in this band — and only a value that outgrows
// 128 bits pays the big.Rat fallback.
//
// The same discipline as Small applies: Wide values are built only by
// the checked constructors (makeWide, wideFromParts), every
// arithmetic method reports overflow instead of wrapping, and all raw
// fixed-width arithmetic is confined to the named 128-bit kernels at
// the bottom of this file (shl128, shr128, div128by64, div128),
// everything else being composed from math/bits intrinsics. The
// dpvet ratoverflow analyzer polices both rules.
type Wide struct {
	neg      bool   // sign; false for zero
	nhi, nlo uint64 // |numerator|, 128-bit little-endian pair
	dhi, dlo uint64 // denominator > 0; the zero value reads as 0/1
}

// wideFromParts wraps already-reduced components (den > 0,
// gcd(num, den) == 1) without re-normalizing. It is a checked
// constructor in the ratoverflow sense: the only other writer of
// non-empty Wide literals is makeWide, which reduces.
func wideFromParts(neg bool, nhi, nlo, dhi, dlo uint64) Wide {
	if nhi == 0 && nlo == 0 {
		// Canonical zero is the zero value (den() reads the 0 pair as 1),
		// so a Wide zero never carries a stray denominator or sign.
		return Wide{}
	}
	return Wide{neg: neg, nhi: nhi, nlo: nlo, dhi: dhi, dlo: dlo}
}

// makeWide returns ±(nhi·2⁶⁴+nlo)/(dhi·2⁶⁴+dlo) reduced to lowest
// terms, reporting failure when the denominator is zero. Unlike
// MakeSmall there is no representational edge to reject: magnitudes
// are unsigned, so every 128-bit pair is valid.
func makeWide(neg bool, nhi, nlo, dhi, dlo uint64) (Wide, bool) {
	if dhi == 0 && dlo == 0 {
		return Wide{}, false
	}
	if nhi == 0 && nlo == 0 {
		return Wide{}, true
	}
	ghi, glo := gcd128(nhi, nlo, dhi, dlo)
	if ghi != 0 || glo != 1 {
		nhi, nlo = div128(nhi, nlo, ghi, glo)
		dhi, dlo = div128(dhi, dlo, ghi, glo)
	}
	return wideFromParts(neg, nhi, nlo, dhi, dlo), true
}

// WideFromSmall widens s exactly; a Small always fits.
func WideFromSmall(s Small) Wide {
	num, den := s.Num(), s.Den()
	neg := num < 0
	var nlo uint64
	if neg {
		// |num| as uint64; correct even at math.MinInt64.
		nlo = negAbs64(num)
	} else {
		nlo = uint64(num)
	}
	return wideFromParts(neg, 0, nlo, 0, uint64(den))
}

// WideFromRat converts r to a Wide, reporting failure when either
// component exceeds 128 bits. r is already in lowest terms (big.Rat
// normalizes), so no reduction runs.
func WideFromRat(r *big.Rat) (Wide, bool) {
	nhi, nlo, ok := u128FromBig(r.Num())
	if !ok {
		return Wide{}, false
	}
	dhi, dlo, ok := u128FromBig(r.Denom())
	if !ok {
		return Wide{}, false
	}
	return wideFromParts(r.Sign() < 0, nhi, nlo, dhi, dlo), true
}

// Rat returns the exact big.Rat value of w — the fallback every
// 128-bit overflow path lands on.
func (w Wide) Rat() *big.Rat {
	num := bigFromU128(w.nhi, w.nlo)
	if w.neg {
		num.Neg(num)
	}
	dhi, dlo := w.den()
	return new(big.Rat).SetFrac(num, bigFromU128(dhi, dlo))
}

// Small narrows w to the int64 tier, reporting failure when either
// component needs more than one word.
func (w Wide) Small() (Small, bool) {
	dhi, dlo := w.den()
	if w.nhi != 0 || dhi != 0 || w.nlo > math.MaxInt64 || dlo > math.MaxInt64 {
		return Small{}, false
	}
	num := int64(w.nlo)
	if w.neg {
		// Cannot fail: the guard above capped the magnitude at MaxInt64.
		num, _ = negChecked(num)
	}
	return MakeSmall(num, int64(dlo))
}

// den returns the denominator pair, mapping the zero value's 0 to 1.
func (w Wide) den() (hi, lo uint64) {
	if w.dhi == 0 && w.dlo == 0 {
		return 0, 1
	}
	return w.dhi, w.dlo
}

// Sign returns -1, 0, or +1.
func (w Wide) Sign() int {
	if w.nhi == 0 && w.nlo == 0 {
		return 0
	}
	if w.neg {
		return -1
	}
	return 1
}

// IsZero reports whether w == 0.
func (w Wide) IsZero() bool { return w.nhi == 0 && w.nlo == 0 }

// Bits returns the bit length of the wider component — the ladder's
// entry-growth measure (≤ 128 by construction).
func (w Wide) Bits() int {
	nb := bitLen128(w.nhi, w.nlo)
	dhi, dlo := w.den()
	if db := bitLen128(dhi, dlo); db > nb {
		return db
	}
	return nb
}

// Neg returns −w. Sign-and-magnitude has no MinInt64 edge, so unlike
// Small.Neg this cannot fail.
func (w Wide) Neg() Wide {
	return wideFromParts(!w.neg, w.nhi, w.nlo, w.dhi, w.dlo)
}

// Add returns w+t, reporting failure on 128-bit overflow.
func (w Wide) Add(t Wide) (Wide, bool) {
	adhi, adlo := w.den()
	bdhi, bdlo := t.den()
	// Reduce by g = gcd(den_a, den_b) first: num = na·(db/g) ± nb·(da/g)
	// over den = da·(db/g), the form that keeps the cross products as
	// small as the inputs allow.
	ghi, glo := gcd128(adhi, adlo, bdhi, bdlo)
	rdhi, rdlo := bdhi, bdlo // db/g
	sdhi, sdlo := adhi, adlo // da/g
	if ghi != 0 || glo != 1 {
		rdhi, rdlo = div128(rdhi, rdlo, ghi, glo)
		sdhi, sdlo = div128(sdhi, sdlo, ghi, glo)
	}
	t1hi, t1lo, ok := mul128(w.nhi, w.nlo, rdhi, rdlo)
	if !ok {
		return Wide{}, false
	}
	t2hi, t2lo, ok := mul128(t.nhi, t.nlo, sdhi, sdlo)
	if !ok {
		return Wide{}, false
	}
	denhi, denlo, ok := mul128(adhi, adlo, rdhi, rdlo)
	if !ok {
		return Wide{}, false
	}
	var neg bool
	var nhi, nlo uint64
	if w.neg == t.neg {
		nhi, nlo, ok = add128(t1hi, t1lo, t2hi, t2lo)
		if !ok {
			return Wide{}, false
		}
		neg = w.neg
	} else if cmp128(t1hi, t1lo, t2hi, t2lo) >= 0 {
		nhi, nlo = sub128(t1hi, t1lo, t2hi, t2lo)
		neg = w.neg
	} else {
		nhi, nlo = sub128(t2hi, t2lo, t1hi, t1lo)
		neg = t.neg
	}
	return makeWide(neg, nhi, nlo, denhi, denlo)
}

// Sub returns w−t, reporting failure on 128-bit overflow.
func (w Wide) Sub(t Wide) (Wide, bool) { return w.Add(t.Neg()) }

// Mul returns w·t, reporting failure on 128-bit overflow. Operands
// are cross-reduced first, so the products are as small as the lowest
// terms of the result allow — overflow here means the *result* needs
// more than 128 bits, not an avoidable intermediate.
func (w Wide) Mul(t Wide) (Wide, bool) {
	if w.IsZero() || t.IsZero() {
		return Wide{}, true
	}
	anhi, anlo := w.nhi, w.nlo
	adhi, adlo := w.den()
	bnhi, bnlo := t.nhi, t.nlo
	bdhi, bdlo := t.den()
	if ghi, glo := gcd128(anhi, anlo, bdhi, bdlo); ghi != 0 || glo != 1 {
		anhi, anlo = div128(anhi, anlo, ghi, glo)
		bdhi, bdlo = div128(bdhi, bdlo, ghi, glo)
	}
	if ghi, glo := gcd128(bnhi, bnlo, adhi, adlo); ghi != 0 || glo != 1 {
		bnhi, bnlo = div128(bnhi, bnlo, ghi, glo)
		adhi, adlo = div128(adhi, adlo, ghi, glo)
	}
	nhi, nlo, ok := mul128(anhi, anlo, bnhi, bnlo)
	if !ok {
		return Wide{}, false
	}
	dhi, dlo, ok := mul128(adhi, adlo, bdhi, bdlo)
	if !ok {
		return Wide{}, false
	}
	// Inputs were in lowest terms and cross-reduced, so the product is
	// already reduced.
	return wideFromParts(w.neg != t.neg, nhi, nlo, dhi, dlo), true
}

// Quo returns w/t, reporting failure on overflow or t == 0.
func (w Wide) Quo(t Wide) (Wide, bool) {
	if t.IsZero() {
		return Wide{}, false
	}
	tdhi, tdlo := t.den()
	inv := wideFromParts(t.neg, tdhi, tdlo, t.nhi, t.nlo)
	return w.Mul(inv)
}

// FMS returns w − b·c, reporting failure on overflow: the fused
// multiply-subtract of the LU and simplex update kernels, composed
// from the checked Mul and Sub.
func (w Wide) FMS(b, c Wide) (Wide, bool) {
	p, ok := b.Mul(c)
	if !ok {
		return Wide{}, false
	}
	return w.Sub(p)
}

// Cmp compares w and t exactly (-1, 0, +1) without overflow: the
// cross products are formed in 256 bits.
func (w Wide) Cmp(t Wide) int {
	ws, ts := w.Sign(), t.Sign()
	switch {
	case ws < ts:
		return -1
	case ws > ts:
		return 1
	case ws == 0:
		return 0
	}
	tdhi, tdlo := t.den()
	wdhi, wdlo := w.den()
	l3, l2, l1, l0 := mulFull128(w.nhi, w.nlo, tdhi, tdlo)
	r3, r2, r1, r0 := mulFull128(t.nhi, t.nlo, wdhi, wdlo)
	cmp := cmp256(l3, l2, l1, l0, r3, r2, r1, r0)
	if ws < 0 {
		cmp = -cmp
	}
	return cmp
}

// ---- exact fallbacks -----------------------------------------------------

// AddRatW is the exact fallback for Wide.Add: it never fails.
func AddRatW(w, t Wide) *big.Rat { return new(big.Rat).Add(w.Rat(), t.Rat()) }

// SubRatW is the exact fallback for Wide.Sub.
func SubRatW(w, t Wide) *big.Rat { return new(big.Rat).Sub(w.Rat(), t.Rat()) }

// MulRatW is the exact fallback for Wide.Mul.
func MulRatW(w, t Wide) *big.Rat { return new(big.Rat).Mul(w.Rat(), t.Rat()) }

// QuoRatW is the exact fallback for Wide.Quo. It panics if t == 0,
// matching Div.
func QuoRatW(w, t Wide) *big.Rat { return Div(w.Rat(), t.Rat()) }

// FMSRatW is the exact fallback for Wide.FMS.
func FMSRatW(w, b, c Wide) *big.Rat {
	p := new(big.Rat).Mul(b.Rat(), c.Rat())
	return p.Sub(w.Rat(), p)
}

// ---- big.Int bridges -----------------------------------------------------

// u128FromBig extracts |x| as a 128-bit pair, reporting failure when
// x needs more bits. x must be non-negative or have a magnitude that
// fits; callers pass big.Rat components whose sign is read separately.
func u128FromBig(x *big.Int) (hi, lo uint64, ok bool) {
	if x.BitLen() > 128 {
		return 0, 0, false
	}
	var abs big.Int
	abs.Abs(x)
	var word big.Int
	lo = word.And(&abs, u64Mask).Uint64()
	hi = word.Rsh(&abs, 64).Uint64()
	return hi, lo, true
}

var u64Mask = new(big.Int).SetUint64(math.MaxUint64)

// bigFromU128 builds the big.Int value hi·2⁶⁴+lo.
func bigFromU128(hi, lo uint64) *big.Int {
	x := new(big.Int).SetUint64(hi)
	x.Lsh(x, 64)
	return x.Or(x, new(big.Int).SetUint64(lo))
}

// setU128 sets x to hi·2⁶⁴+lo in place, allocating only what the
// magnitude itself needs.
func setU128(x *big.Int, hi, lo uint64) *big.Int {
	if hi == 0 {
		return x.SetUint64(lo)
	}
	x.SetUint64(hi)
	x.Lsh(x, 64)
	var low big.Int
	return x.Or(x, low.SetUint64(lo))
}

// ---- 128-bit checked kernels ---------------------------------------------
//
// Composed from math/bits intrinsics wherever possible; the four
// functions that need raw fixed-width operators (shl128, shr128,
// div128by64, div128) are named in the ratoverflow kernel allowlist.
// Magnitudes are unsigned little-endian (hi, lo) pairs throughout.

// negAbs64 returns |a| as uint64 for a < 0, correct at math.MinInt64
// where -a overflows int64 but the magnitude 2⁶³ fits uint64.
func negAbs64(a int64) uint64 {
	u := uint64(a)
	return -u
}

// add128 returns a+b, reporting overflow past 128 bits.
func add128(ahi, alo, bhi, blo uint64) (hi, lo uint64, ok bool) {
	var carry uint64
	lo, carry = bits.Add64(alo, blo, 0)
	hi, carry = bits.Add64(ahi, bhi, carry)
	return hi, lo, carry == 0
}

// sub128 returns a−b for a ≥ b (callers compare first).
func sub128(ahi, alo, bhi, blo uint64) (hi, lo uint64) {
	var borrow uint64
	lo, borrow = bits.Sub64(alo, blo, 0)
	hi, _ = bits.Sub64(ahi, bhi, borrow)
	return hi, lo
}

// cmp128 compares a and b (-1, 0, +1).
func cmp128(ahi, alo, bhi, blo uint64) int {
	switch {
	case ahi < bhi:
		return -1
	case ahi > bhi:
		return 1
	case alo < blo:
		return -1
	case alo > blo:
		return 1
	}
	return 0
}

// mul128 returns a·b, reporting overflow past 128 bits.
func mul128(ahi, alo, bhi, blo uint64) (hi, lo uint64, ok bool) {
	if ahi != 0 && bhi != 0 {
		return 0, 0, false
	}
	hi, lo = bits.Mul64(alo, blo)
	c1hi, c1lo := bits.Mul64(ahi, blo)
	c2hi, c2lo := bits.Mul64(bhi, alo)
	if c1hi != 0 || c2hi != 0 {
		return 0, 0, false
	}
	var carry uint64
	hi, carry = bits.Add64(hi, c1lo, 0)
	if carry != 0 {
		return 0, 0, false
	}
	hi, carry = bits.Add64(hi, c2lo, 0)
	if carry != 0 {
		return 0, 0, false
	}
	return hi, lo, true
}

// mulFull128 returns the full 256-bit product a·b as four words,
// most significant first. Never overflows; Cmp's cross products run
// through it.
func mulFull128(ahi, alo, bhi, blo uint64) (p3, p2, p1, p0 uint64) {
	h00, p0 := bits.Mul64(alo, blo) // lo·lo
	h01, l01 := bits.Mul64(alo, bhi)
	h10, l10 := bits.Mul64(ahi, blo)
	h11, l11 := bits.Mul64(ahi, bhi)
	var c1, c2, c3, c4 uint64
	p1, c1 = bits.Add64(h00, l01, 0)
	p2, c2 = bits.Add64(h01, h10, c1)
	p1, c3 = bits.Add64(p1, l10, 0)
	p2, c4 = bits.Add64(p2, l11, c3)
	// The product is < 2²⁵⁶, so folding the two middle-word carries
	// into h11 cannot itself carry.
	p3, _ = bits.Add64(h11, c2, 0)
	p3, _ = bits.Add64(p3, c4, 0)
	return p3, p2, p1, p0
}

// cmp256 compares two 256-bit values given most-significant first.
func cmp256(a3, a2, a1, a0, b3, b2, b1, b0 uint64) int {
	for _, p := range [4][2]uint64{{a3, b3}, {a2, b2}, {a1, b1}, {a0, b0}} {
		switch {
		case p[0] < p[1]:
			return -1
		case p[0] > p[1]:
			return 1
		}
	}
	return 0
}

// bitLen128 returns the bit length of (hi, lo).
func bitLen128(hi, lo uint64) int {
	if hi != 0 {
		return 64 + bits.Len64(hi)
	}
	return bits.Len64(lo)
}

// tz128 returns the number of trailing zero bits of (hi, lo) != 0.
func tz128(hi, lo uint64) uint {
	if lo != 0 {
		return uint(bits.TrailingZeros64(lo))
	}
	return uint(64 + bits.TrailingZeros64(hi))
}

// shl128 returns (hi, lo) << s for s < 128. Go defines shifts ≥ the
// operand width as 0, so the two-branch form is total.
func shl128(hi, lo uint64, s uint) (uint64, uint64) {
	if s >= 64 {
		return lo << (s - 64), 0
	}
	return hi<<s | lo>>(64-s), lo << s
}

// shr128 returns (hi, lo) >> s for s < 128.
func shr128(hi, lo uint64, s uint) (uint64, uint64) {
	if s >= 64 {
		return 0, hi >> (s - 64)
	}
	return hi >> s, lo>>s | hi<<(64-s)
}

// gcd128 returns gcd(a, b) for a, b not both zero, by the binary
// (Stein) algorithm: shifts and subtractions only, no division.
func gcd128(ahi, alo, bhi, blo uint64) (hi, lo uint64) {
	if ahi == 0 && alo == 0 {
		return bhi, blo
	}
	if bhi == 0 && blo == 0 {
		return ahi, alo
	}
	za := tz128(ahi, alo)
	zb := tz128(bhi, blo)
	k := za
	if zb < k {
		k = zb
	}
	ahi, alo = shr128(ahi, alo, za)
	bhi, blo = shr128(bhi, blo, zb)
	for {
		if cmp128(ahi, alo, bhi, blo) < 0 {
			ahi, bhi = bhi, ahi
			alo, blo = blo, alo
		}
		ahi, alo = sub128(ahi, alo, bhi, blo)
		if ahi == 0 && alo == 0 {
			return shl128(bhi, blo, k)
		}
		ahi, alo = shr128(ahi, alo, tz128(ahi, alo))
	}
}

// div128by64 returns (hi, lo) / d for d != 0 fitting one word; the
// quotient may need both words. Exact-division callers discard the
// remainder.
func div128by64(hi, lo, d uint64) (qhi, qlo uint64) {
	qhi = hi / d
	rem := hi % d
	qlo, _ = bits.Div64(rem, lo, d)
	return qhi, qlo
}

// div128 returns u / v for v != 0 (floor; callers divide exactly by a
// gcd). The two-word-divisor branch is shift-subtract restoring
// division — at most 64 iterations, reached only when the gcd itself
// exceeds one word, which the reduction workloads almost never do.
func div128(uhi, ulo, vhi, vlo uint64) (qhi, qlo uint64) {
	if vhi == 0 {
		return div128by64(uhi, ulo, vlo)
	}
	if cmp128(uhi, ulo, vhi, vlo) < 0 {
		return 0, 0
	}
	shift := uint(bitLen128(uhi, ulo) - bitLen128(vhi, vlo))
	vhi, vlo = shl128(vhi, vlo, shift)
	var q uint64
	for i := int(shift); i >= 0; i-- {
		q <<= 1
		if cmp128(uhi, ulo, vhi, vlo) >= 0 {
			uhi, ulo = sub128(uhi, ulo, vhi, vlo)
			q |= 1
		}
		vhi, vlo = shr128(vhi, vlo, 1)
	}
	// v ≥ 2⁶⁴ forces the quotient into one word.
	return 0, q
}
