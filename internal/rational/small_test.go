package rational

import (
	"math"
	"math/big"
	"testing"
)

// mustSmall builds a Small or fails the test; for operands the
// oracle tests know are representable.
func mustSmall(t *testing.T, num, den int64) Small {
	t.Helper()
	s, ok := MakeSmall(num, den)
	if !ok {
		t.Fatalf("MakeSmall(%d, %d) unexpectedly failed", num, den)
	}
	return s
}

func TestMakeSmallNormalizes(t *testing.T) {
	cases := []struct {
		num, den         int64
		wantNum, wantDen int64
	}{
		{6, 4, 3, 2},
		{-6, 4, -3, 2},
		{6, -4, -3, 2},
		{-6, -4, 3, 2},
		{0, 7, 0, 1},
		{5, 1, 5, 1},
		{math.MaxInt64, math.MaxInt64, 1, 1},
	}
	for _, c := range cases {
		s := mustSmall(t, c.num, c.den)
		if s.Num() != c.wantNum || s.Den() != c.wantDen {
			t.Errorf("MakeSmall(%d, %d) = %d/%d, want %d/%d",
				c.num, c.den, s.Num(), s.Den(), c.wantNum, c.wantDen)
		}
	}
}

func TestMakeSmallRejects(t *testing.T) {
	cases := []struct{ num, den int64 }{
		{1, 0},
		{math.MinInt64, 3},
		{3, math.MinInt64}, // sign normalization would negate MinInt64
	}
	for _, c := range cases {
		if s, ok := MakeSmall(c.num, c.den); ok {
			t.Errorf("MakeSmall(%d, %d) = %d/%d, want rejection", c.num, c.den, s.Num(), s.Den())
		}
	}
}

func TestSmallZeroValue(t *testing.T) {
	var s Small
	if s.Den() != 1 || s.Num() != 0 || !s.IsZero() || s.Sign() != 0 {
		t.Fatalf("zero Small = %d/%d (sign %d), want 0/1", s.Num(), s.Den(), s.Sign())
	}
	if got := s.Rat(); got.Sign() != 0 {
		t.Fatalf("zero Small.Rat() = %v, want 0", got)
	}
}

// TestSmallArithmeticOracle cross-checks every checked operation
// against big.Rat over a grid that includes overflow-adjacent
// magnitudes; whenever the Small op succeeds it must agree exactly
// with the oracle.
func TestSmallArithmeticOracle(t *testing.T) {
	vals := []int64{0, 1, -1, 2, -3, 7, 360, -360, 1 << 31, math.MaxInt64, math.MaxInt64 - 1, math.MinInt64 + 1}
	dens := []int64{1, 2, 3, 7, 97, 1 << 31, math.MaxInt64}
	var smalls []Small
	for _, n := range vals {
		for _, d := range dens {
			s, ok := MakeSmall(n, d)
			if !ok {
				t.Fatalf("MakeSmall(%d, %d) failed", n, d)
			}
			smalls = append(smalls, s)
		}
	}
	type op struct {
		name     string
		checked  func(a, b Small) (Small, bool)
		fallback func(a, b Small) *big.Rat
	}
	ops := []op{
		{"Add", Small.Add, AddRat},
		{"Sub", Small.Sub, SubRat},
		{"Mul", Small.Mul, MulRat},
		{"Quo", Small.Quo, func(a, b Small) *big.Rat { return QuoRat(a, b) }},
	}
	checkedOK, checkedFail := 0, 0
	for _, a := range smalls {
		for _, b := range smalls {
			for _, o := range ops {
				if o.name == "Quo" && b.IsZero() {
					if _, ok := o.checked(a, b); ok {
						t.Fatalf("Quo(%v, 0) succeeded", a.Rat())
					}
					continue
				}
				want := o.fallback(a, b)
				got, ok := o.checked(a, b)
				if !ok {
					checkedFail++
					continue
				}
				checkedOK++
				if got.Rat().Cmp(want) != 0 {
					t.Fatalf("%s(%v, %v) = %v, want %v", o.name, a.Rat(), b.Rat(), got.Rat(), want)
				}
			}
		}
	}
	if checkedOK == 0 {
		t.Fatal("no checked operation succeeded; grid is degenerate")
	}
	if checkedFail == 0 {
		t.Fatal("no checked operation overflowed; grid never exercises the fallback boundary")
	}
}

func TestSmallCmpOracle(t *testing.T) {
	vals := []int64{0, 1, -1, 5, -5, math.MaxInt64, math.MinInt64 + 1, 1 << 40}
	dens := []int64{1, 3, math.MaxInt64, 1 << 40}
	var smalls []Small
	for _, n := range vals {
		for _, d := range dens {
			if s, ok := MakeSmall(n, d); ok {
				smalls = append(smalls, s)
			}
		}
	}
	for _, a := range smalls {
		for _, b := range smalls {
			if got, want := a.Cmp(b), a.Rat().Cmp(b.Rat()); got != want {
				t.Fatalf("Cmp(%v, %v) = %d, want %d", a.Rat(), b.Rat(), got, want)
			}
		}
	}
}

func TestSmallFromRat(t *testing.T) {
	if s, ok := SmallFromRat(New(22, 7)); !ok || s.Num() != 22 || s.Den() != 7 {
		t.Fatalf("SmallFromRat(22/7) = %d/%d, %v", s.Num(), s.Den(), ok)
	}
	huge := new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 80), big.NewInt(1))
	if _, ok := SmallFromRat(huge); ok {
		t.Fatal("SmallFromRat(2^80) succeeded, want rejection")
	}
}

func TestCheckedKernels(t *testing.T) {
	if _, ok := addChecked(math.MaxInt64, 1); ok {
		t.Error("addChecked(MaxInt64, 1) succeeded")
	}
	if _, ok := subChecked(math.MinInt64, 1); ok {
		t.Error("subChecked(MinInt64, 1) succeeded")
	}
	if _, ok := mulChecked(math.MinInt64, -1); ok {
		t.Error("mulChecked(MinInt64, -1) succeeded")
	}
	if v, ok := mulChecked(math.MinInt64, 1); !ok || v != math.MinInt64 {
		t.Error("mulChecked(MinInt64, 1) failed")
	}
	if _, ok := negChecked(math.MinInt64); ok {
		t.Error("negChecked(MinInt64) succeeded")
	}
	if v, ok := addChecked(40, 2); !ok || v != 42 {
		t.Errorf("addChecked(40, 2) = %d, %v", v, ok)
	}
	if g := gcd64(360, 84); g != 12 {
		t.Errorf("gcd64(360, 84) = %d, want 12", g)
	}
}

// TestSmallFMSOracle cross-checks the fused multiply-subtract — the
// inner operation of LU elimination and revised-simplex updates —
// against big.Rat over an overflow-straddling grid. Whenever the
// checked kernel succeeds it must agree exactly with FMSRat, and the
// grid must exercise both sides of the overflow boundary.
func TestSmallFMSOracle(t *testing.T) {
	vals := []int64{0, 1, -1, 3, -7, 360, 1 << 20, -(1 << 20), 1 << 40, math.MaxInt64 - 1}
	dens := []int64{1, 2, 9, 97, 1 << 20, math.MaxInt64}
	var smalls []Small
	for _, n := range vals {
		for _, d := range dens {
			s, ok := MakeSmall(n, d)
			if !ok {
				t.Fatalf("MakeSmall(%d, %d) failed", n, d)
			}
			smalls = append(smalls, s)
		}
	}
	okCount, failCount := 0, 0
	for _, a := range smalls {
		for _, b := range smalls {
			for _, c := range smalls {
				want := FMSRat(a, b, c)
				got, ok := a.FMS(b, c)
				if !ok {
					failCount++
					continue
				}
				okCount++
				if got.Rat().Cmp(want) != 0 {
					t.Fatalf("FMS(%v, %v, %v) = %v, want %v",
						a.Rat(), b.Rat(), c.Rat(), got.Rat(), want)
				}
			}
		}
	}
	if okCount == 0 {
		t.Fatal("no FMS succeeded; grid is degenerate")
	}
	if failCount == 0 {
		t.Fatal("no FMS overflowed; grid never exercises the fallback boundary")
	}
}
