package rational

import (
	"math/big"
	"math/bits"
)

// Hval is a hybrid exact rational scalar: a three-tier ladder
// Small → Wide → big.Rat. Arithmetic runs on the narrowest tier the
// operands fit — int64 words while values are tiny, two 64-bit words
// when they outgrow that, and only values past 128 bits pay big.Rat
// allocation. Every fallback is exact, never approximate: the ladder
// changes the representation of a value, never the value, and results
// demote back down as soon as they fit (a big-path result that
// reduces to fit 64 or 128 bits re-enters the fast tiers).
//
// Hvals are immutable — operations return fresh values and never
// mutate operands, so aliasing a shared *big.Rat (e.g. a standardForm
// matrix entry) into the big tier is safe. The zero value is 0 on the
// Small tier.
//
// Hval started life as the `hval` hybrid private to internal/lp's
// revised simplex; it lives here so the matrix and mechanism hot
// loops share the ladder without an import cycle.
type Hval struct {
	s    Small
	w    Wide
	r    *big.Rat // non-nil iff tier == tierBig
	tier uint8
}

const (
	tierSmall = iota // value in s (the zero value's tier)
	tierWide         // value in w
	tierBig          // value in r
)

// Exported tier tags for Tier: which rung of the ladder currently
// holds a value. The tier is a representation detail — it never
// changes the value — but tests pin the demotion/promotion invariants
// and telemetry reports the mix.
const (
	TierSmall = tierSmall
	TierWide  = tierWide
	TierBig   = tierBig
)

// Tier reports the rung currently holding the value.
func (a Hval) Tier() int { return int(a.tier) }

// HvalFromSmall wraps an int64-tier value.
func HvalFromSmall(s Small) Hval { return Hval{s: s} }

// HvalFromRat wraps v on the narrowest tier it fits. When v needs the
// big tier it is aliased, not copied — callers keep the no-mutation
// contract.
func HvalFromRat(v *big.Rat) Hval {
	if s, ok := SmallFromRat(v); ok {
		return Hval{s: s}
	}
	if w, ok := WideFromRat(v); ok {
		return Hval{w: w, tier: tierWide}
	}
	return Hval{r: v, tier: tierBig}
}

// hvalFromWide wraps a Wide result, demoting to the Small tier when
// both components fit one word.
func hvalFromWide(w Wide) Hval {
	if s, ok := w.Small(); ok {
		return Hval{s: s}
	}
	return Hval{w: w, tier: tierWide}
}

// wide returns the value as a Wide; the caller guarantees
// tier != tierBig (a Small always widens exactly).
func (a Hval) wide() Wide {
	if a.tier == tierWide {
		return a.w
	}
	return WideFromSmall(a.s)
}

// Rat returns the exact value as a *big.Rat. The result aliases the
// big-tier value and must not be mutated by the caller.
func (a Hval) Rat() *big.Rat {
	switch a.tier {
	case tierBig:
		//dpvet:ignore ratmutate documented borrow: Rat is the hot exit of the hybrid kernels (every big-path FMS/Quo calls it); Hvals are immutable by contract and every escaping consumer (extractFromCols, solution, matrix clones) copies on write
		return a.r
	case tierWide:
		return a.w.Rat()
	}
	return a.s.Rat()
}

// IsZero reports whether a == 0.
func (a Hval) IsZero() bool {
	switch a.tier {
	case tierBig:
		return a.r.Sign() == 0
	case tierWide:
		return a.w.IsZero()
	}
	return a.s.IsZero()
}

// Sign returns -1, 0, or +1.
func (a Hval) Sign() int {
	switch a.tier {
	case tierBig:
		return a.r.Sign()
	case tierWide:
		return a.w.Sign()
	}
	return a.s.Sign()
}

// Cmp compares two Hvals exactly. Up through the Wide tier it uses
// fixed-width cross products and allocates nothing.
func (a Hval) Cmp(b Hval) int {
	if a.tier == tierSmall && b.tier == tierSmall {
		return a.s.Cmp(b.s)
	}
	if a.tier != tierBig && b.tier != tierBig {
		return a.wide().Cmp(b.wide())
	}
	return a.Rat().Cmp(b.Rat())
}

// Bits returns the bit length of the wider component of a — the
// entry-growth measure the refactorization trigger integrates over
// eta chains (≤ 63 on the Small tier, ≤ 128 on Wide).
func (a Hval) Bits() int {
	switch a.tier {
	case tierBig:
		nb := a.r.Num().BitLen()
		if db := a.r.Denom().BitLen(); db > nb {
			return db
		}
		return nb
	case tierWide:
		return a.w.Bits()
	}
	num := a.s.Num()
	var un uint64
	if num < 0 {
		un = negAbs64(num)
	} else {
		un = uint64(num)
	}
	nb := bits.Len64(un)
	if db := bits.Len64(uint64(a.s.Den())); db > nb {
		return db
	}
	return nb
}

// intsInto loads a's numerator and denominator as big.Ints without
// any normalization work: the Small and Wide tiers materialize into
// the caller-provided scratch slots n and d, while the big tier
// aliases the Rat's own components (read-only — callers must not
// mutate the returned Ints). The denominator is always positive.
func (a Hval) intsInto(n, d *big.Int) (num, den *big.Int) {
	switch a.tier {
	case tierBig:
		return a.r.Num(), a.r.Denom()
	case tierWide:
		setU128(n, a.w.nhi, a.w.nlo)
		if a.w.neg {
			n.Neg(n)
		}
		dhi, dlo := a.w.den()
		setU128(d, dhi, dlo)
		return n, d
	}
	n.SetInt64(a.s.Num())
	d.SetInt64(a.s.Den())
	return n, d
}

// hvalFromBigParts normalizes num/den (den > 0 required, num/den need
// not be coprime) into an Hval in one pass: a single SetFrac GCD,
// then the standard narrowing checks. Scratch-backed inputs are
// copied, never aliased.
func hvalFromBigParts(num, den *big.Int) Hval {
	if num.Sign() == 0 {
		return Hval{}
	}
	return HvalFromRat(new(big.Rat).SetFrac(num, den))
}

// bigScratch holds the reusable big.Int temporaries behind the fused
// big-tier kernels, so a hot fms/quo chain allocates only for results
// that genuinely stay past 128 bits.
type bigScratch struct {
	x [6]big.Int // operand extraction slots
	t [3]big.Int // product/accumulator temporaries
}

// HybridStats counts hybrid-kernel operations by the tier that served
// them: SmallOps the int64 fast-path hits, WideOps the 128-bit tier,
// BigOps the exact big.Rat fallbacks (including operations with an
// operand already in big form). The tier mix is the ladder hit rate
// exported through lp.SolveStats and the matrix/mechanism counters.
// The counter fields are plain ints: telemetry, not rational
// arithmetic. A HybridStats also carries the lazily-built scratch
// space for the fused big-tier kernels, so it must not be shared
// across goroutines.
type HybridStats struct {
	SmallOps, WideOps, BigOps int

	scr *bigScratch
}

// scratch returns the receiver's temporary pool, building it on first
// big-tier use.
func (h *HybridStats) scratch() *bigScratch {
	if h.scr == nil {
		h.scr = new(bigScratch)
	}
	return h.scr
}

// Add accumulates o into h (for folding per-call stats into
// longer-lived counters).
func (h *HybridStats) Add(o HybridStats) {
	h.SmallOps += o.SmallOps
	h.WideOps += o.WideOps
	h.BigOps += o.BigOps
}

// FMS returns a − b·c.
//
// The big path is fused: it assembles the result as one numerator and
// one denominator over big.Int products and normalizes exactly once,
// rather than paying a big.Rat normalization GCD per intermediate
// (plus one per Wide→Rat operand conversion). On the entry-growth
// profiles that motivated the Wide tier this is the difference
// between one Lehmer GCD per kernel call and up to five.
func (h *HybridStats) FMS(a, b, c Hval) Hval {
	if a.tier == tierSmall && b.tier == tierSmall && c.tier == tierSmall {
		if v, ok := a.s.FMS(b.s, c.s); ok {
			h.SmallOps++
			return Hval{s: v}
		}
	}
	if a.tier != tierBig && b.tier != tierBig && c.tier != tierBig {
		if v, ok := a.wide().FMS(b.wide(), c.wide()); ok {
			h.WideOps++
			return hvalFromWide(v)
		}
	}
	h.BigOps++
	s := h.scratch()
	an, ad := a.intsInto(&s.x[0], &s.x[1])
	bn, bd := b.intsInto(&s.x[2], &s.x[3])
	cn, cd := c.intsInto(&s.x[4], &s.x[5])
	// num = an·(bd·cd) − (bn·cn)·ad over den = ad·(bd·cd).
	s.t[0].Mul(bd, cd)
	s.t[1].Mul(bn, cn)
	s.t[1].Mul(&s.t[1], ad)
	s.t[2].Mul(an, &s.t[0])
	s.t[2].Sub(&s.t[2], &s.t[1])
	s.t[0].Mul(&s.t[0], ad)
	return hvalFromBigParts(&s.t[2], &s.t[0])
}

// Quo returns a/b for b != 0.
func (h *HybridStats) Quo(a, b Hval) Hval {
	if a.tier == tierSmall && b.tier == tierSmall {
		if v, ok := a.s.Quo(b.s); ok {
			h.SmallOps++
			return Hval{s: v}
		}
	}
	if a.tier != tierBig && b.tier != tierBig {
		if v, ok := a.wide().Quo(b.wide()); ok {
			h.WideOps++
			return hvalFromWide(v)
		}
	}
	h.BigOps++
	s := h.scratch()
	an, ad := a.intsInto(&s.x[0], &s.x[1])
	bn, bd := b.intsInto(&s.x[2], &s.x[3])
	// a/b = (an·bd)/(ad·bn); SetFrac moves bn's sign to the numerator.
	s.t[0].Mul(an, bd)
	s.t[1].Mul(ad, bn)
	if s.t[1].Sign() < 0 {
		s.t[0].Neg(&s.t[0])
		s.t[1].Neg(&s.t[1])
	}
	return hvalFromBigParts(&s.t[0], &s.t[1])
}

// Mul returns a·b.
func (h *HybridStats) Mul(a, b Hval) Hval {
	if a.tier == tierSmall && b.tier == tierSmall {
		if v, ok := a.s.Mul(b.s); ok {
			h.SmallOps++
			return Hval{s: v}
		}
	}
	if a.tier != tierBig && b.tier != tierBig {
		if v, ok := a.wide().Mul(b.wide()); ok {
			h.WideOps++
			return hvalFromWide(v)
		}
	}
	h.BigOps++
	s := h.scratch()
	an, ad := a.intsInto(&s.x[0], &s.x[1])
	bn, bd := b.intsInto(&s.x[2], &s.x[3])
	s.t[0].Mul(an, bn)
	s.t[1].Mul(ad, bd)
	return hvalFromBigParts(&s.t[0], &s.t[1])
}

// AddH returns a+b (named to keep the accumulator method Add free).
func (h *HybridStats) AddH(a, b Hval) Hval {
	if a.tier == tierSmall && b.tier == tierSmall {
		if v, ok := a.s.Add(b.s); ok {
			h.SmallOps++
			return Hval{s: v}
		}
	}
	if a.tier != tierBig && b.tier != tierBig {
		if v, ok := a.wide().Add(b.wide()); ok {
			h.WideOps++
			return hvalFromWide(v)
		}
	}
	h.BigOps++
	s := h.scratch()
	an, ad := a.intsInto(&s.x[0], &s.x[1])
	bn, bd := b.intsInto(&s.x[2], &s.x[3])
	// (an·bd + bn·ad) over ad·bd.
	s.t[0].Mul(an, bd)
	s.t[1].Mul(bn, ad)
	s.t[0].Add(&s.t[0], &s.t[1])
	s.t[1].Mul(ad, bd)
	return hvalFromBigParts(&s.t[0], &s.t[1])
}

// SubH returns a−b.
func (h *HybridStats) SubH(a, b Hval) Hval {
	if a.tier == tierSmall && b.tier == tierSmall {
		if v, ok := a.s.Sub(b.s); ok {
			h.SmallOps++
			return Hval{s: v}
		}
	}
	if a.tier != tierBig && b.tier != tierBig {
		if v, ok := a.wide().Sub(b.wide()); ok {
			h.WideOps++
			return hvalFromWide(v)
		}
	}
	h.BigOps++
	s := h.scratch()
	an, ad := a.intsInto(&s.x[0], &s.x[1])
	bn, bd := b.intsInto(&s.x[2], &s.x[3])
	s.t[0].Mul(an, bd)
	s.t[1].Mul(bn, ad)
	s.t[0].Sub(&s.t[0], &s.t[1])
	s.t[1].Mul(ad, bd)
	return hvalFromBigParts(&s.t[0], &s.t[1])
}

// CmpMul compares the products a·b and c·d exactly without forming
// either quotient: sign(a·b − c·d). Ratio tests are the hot consumer
// — comparing z_j/α_j fractions cross-multiplies into exactly this
// shape, and a fused comparison needs no normalization at all (the
// big path is four big.Int products and a Cmp; denominators are
// positive by invariant).
func (h *HybridStats) CmpMul(a, b, c, d Hval) int {
	if a.tier == tierSmall && b.tier == tierSmall && c.tier == tierSmall && d.tier == tierSmall {
		if p1, ok1 := a.s.Mul(b.s); ok1 {
			if p2, ok2 := c.s.Mul(d.s); ok2 {
				h.SmallOps++
				return p1.Cmp(p2)
			}
		}
	}
	if a.tier != tierBig && b.tier != tierBig && c.tier != tierBig && d.tier != tierBig {
		if p1, ok1 := a.wide().Mul(b.wide()); ok1 {
			if p2, ok2 := c.wide().Mul(d.wide()); ok2 {
				h.WideOps++
				return p1.Cmp(p2)
			}
		}
	}
	h.BigOps++
	s := h.scratch()
	an, ad := a.intsInto(&s.x[0], &s.x[1])
	bn, bd := b.intsInto(&s.x[2], &s.x[3])
	// a·b vs c·d ⟺ an·bn·(cd·dd) vs cn·dn·(ad·bd), dens > 0.
	s.t[0].Mul(an, bn)
	s.t[2].Mul(ad, bd)
	cn, cd := c.intsInto(&s.x[0], &s.x[1])
	dn, dd := d.intsInto(&s.x[2], &s.x[3])
	s.t[1].Mul(cn, dn)
	s.t[1].Mul(&s.t[1], &s.t[2])
	s.t[2].Mul(cd, dd)
	s.t[0].Mul(&s.t[0], &s.t[2])
	return s.t[0].Cmp(&s.t[1])
}
