package rational

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	if got := New(3, 4); got.RatString() != "3/4" {
		t.Errorf("New(3,4) = %s, want 3/4", got.RatString())
	}
	if got := New(-6, 8); got.RatString() != "-3/4" {
		t.Errorf("New(-6,8) = %s, want -3/4 (reduced)", got.RatString())
	}
}

func TestNewPanicsOnZeroDenominator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1,0) did not panic")
		}
	}()
	New(1, 0)
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"3/4", "3/4", true},
		{"-1/98", "-1/98", true},
		{"2", "2", true},
		{"0.25", "1/4", true},
		{"  5/17 ", "5/17", true},
		{"", "", false},
		{"x/y", "", false},
		{"1/0", "", false},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.ok && err != nil {
			t.Errorf("Parse(%q): unexpected error %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("Parse(%q): expected error, got %s", c.in, got.RatString())
			}
			continue
		}
		if got.RatString() != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.in, got.RatString(), c.want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse(garbage) did not panic")
		}
	}()
	MustParse("not-a-rational")
}

func TestArithmetic(t *testing.T) {
	a, b := New(1, 3), New(1, 6)
	if got := Add(a, b); !Equal(got, New(1, 2)) {
		t.Errorf("1/3 + 1/6 = %s, want 1/2", got.RatString())
	}
	if got := Sub(a, b); !Equal(got, New(1, 6)) {
		t.Errorf("1/3 - 1/6 = %s, want 1/6", got.RatString())
	}
	if got := Mul(a, b); !Equal(got, New(1, 18)) {
		t.Errorf("1/3 * 1/6 = %s, want 1/18", got.RatString())
	}
	if got := Div(a, b); !Equal(got, Int(2)) {
		t.Errorf("(1/3) / (1/6) = %s, want 2", got.RatString())
	}
	if got := Neg(a); !Equal(got, New(-1, 3)) {
		t.Errorf("-(1/3) = %s", got.RatString())
	}
	if got := Abs(New(-5, 7)); !Equal(got, New(5, 7)) {
		t.Errorf("|−5/7| = %s", got.RatString())
	}
}

func TestArithmeticDoesNotAliasInputs(t *testing.T) {
	a, b := New(1, 3), New(1, 6)
	_ = Add(a, b)
	if !Equal(a, New(1, 3)) || !Equal(b, New(1, 6)) {
		t.Fatal("Add mutated its inputs")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(One(), Zero())
}

func TestPow(t *testing.T) {
	half := New(1, 2)
	cases := []struct {
		k    int
		want *big.Rat
	}{
		{0, Int(1)},
		{1, New(1, 2)},
		{2, New(1, 4)},
		{7, New(1, 128)},
	}
	for _, c := range cases {
		if got := Pow(half, c.k); !Equal(got, c.want) {
			t.Errorf("(1/2)^%d = %s, want %s", c.k, got.RatString(), c.want.RatString())
		}
	}
}

func TestPowNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pow with negative exponent did not panic")
		}
	}()
	Pow(One(), -1)
}

func TestComparisons(t *testing.T) {
	a, b := New(1, 3), New(1, 2)
	if !Less(a, b) || Less(b, a) {
		t.Error("Less(1/3, 1/2) wrong")
	}
	if !LessEq(a, a) {
		t.Error("LessEq(a, a) should hold")
	}
	if !IsZero(Zero()) || IsZero(a) {
		t.Error("IsZero wrong")
	}
	if !IsNonNegative(Zero()) || !IsNonNegative(a) || IsNonNegative(New(-1, 2)) {
		t.Error("IsNonNegative wrong")
	}
	if Cmp(a, b) != -1 || Cmp(b, a) != 1 || Cmp(a, a) != 0 {
		t.Error("Cmp wrong")
	}
}

func TestMinMax(t *testing.T) {
	a, b := New(1, 3), New(1, 2)
	if got := Min(a, b); !Equal(got, a) {
		t.Errorf("Min = %s", got.RatString())
	}
	if got := Max(a, b); !Equal(got, b) {
		t.Errorf("Max = %s", got.RatString())
	}
	// Results are fresh copies.
	Min(a, b).SetInt64(99)
	if !Equal(a, New(1, 3)) {
		t.Error("Min aliases its argument")
	}
}

func TestSumAndDot(t *testing.T) {
	xs := []*big.Rat{New(1, 2), New(1, 3), New(1, 6)}
	if got := Sum(xs); !Equal(got, One()) {
		t.Errorf("Sum = %s, want 1", got.RatString())
	}
	if got := Sum(nil); !IsZero(got) {
		t.Errorf("Sum(nil) = %s, want 0", got.RatString())
	}
	a := []*big.Rat{Int(1), Int(2), Int(3)}
	b := []*big.Rat{Int(4), Int(5), Int(6)}
	if got := Dot(a, b); !Equal(got, Int(32)) {
		t.Errorf("Dot = %s, want 32", got.RatString())
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch did not panic")
		}
	}()
	Dot([]*big.Rat{Int(1)}, nil)
}

func TestFloatAndString(t *testing.T) {
	if got := Float(New(1, 4)); got != 0.25 {
		t.Errorf("Float(1/4) = %v", got)
	}
	if got := String(New(7, 1)); got != "7" {
		t.Errorf("String(7/1) = %q, want 7", got)
	}
}

func TestFromFloat(t *testing.T) {
	r, err := FromFloat(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(r, New(1, 2)) {
		t.Errorf("FromFloat(0.5) = %s", r.RatString())
	}
	if _, err := FromFloat(math.Inf(1)); err == nil {
		t.Error("FromFloat(+Inf) should error")
	}
	if _, err := FromFloat(math.NaN()); err == nil {
		t.Error("FromFloat(NaN) should error")
	}
}

func TestVectorHelpers(t *testing.T) {
	v := Vector(3)
	if len(v) != 3 {
		t.Fatalf("Vector(3) len = %d", len(v))
	}
	for i, x := range v {
		if !IsZero(x) {
			t.Errorf("Vector entry %d = %s", i, x.RatString())
		}
	}
	v[0].SetInt64(5)
	c := CloneVector(v)
	c[0].SetInt64(9)
	if !Equal(v[0], Int(5)) {
		t.Error("CloneVector aliases entries")
	}
	if !VectorEqual(v, CloneVector(v)) {
		t.Error("VectorEqual false negative")
	}
	if VectorEqual(v, Vector(3)) {
		t.Error("VectorEqual false positive")
	}
	if VectorEqual(v, Vector(2)) {
		t.Error("VectorEqual should reject length mismatch")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(2, 3)
	b := Clone(a)
	b.SetInt64(7)
	if !Equal(a, New(2, 3)) {
		t.Error("Clone aliases its argument")
	}
}

// Property: Add/Sub and Mul/Div round-trip.
func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(p1, p2 int32, q1, q2 uint8) bool {
		a := New(int64(p1), int64(q1)+1)
		b := New(int64(p2), int64(q2)+1)
		return Equal(Sub(Add(a, b), b), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulDivRoundTrip(t *testing.T) {
	f := func(p1, p2 int32, q1, q2 uint8) bool {
		a := New(int64(p1), int64(q1)+1)
		b := New(int64(p2), int64(q2)+1)
		if IsZero(b) {
			return true
		}
		return Equal(Div(Mul(a, b), b), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPowMatchesRepeatedMul(t *testing.T) {
	f := func(p int16, q uint8, k uint8) bool {
		a := New(int64(p), int64(q)+1)
		n := int(k % 8)
		want := One()
		for i := 0; i < n; i++ {
			want.Mul(want, a)
		}
		return Equal(Pow(a, n), want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
