// Package table renders aligned text tables for the experiment
// harness, in two flavors: exact rational matrices (to reproduce the
// paper's Table 1 and Table 2 cell-for-cell) and generic string-cell
// tables with headers for experiment result rows.
package table

import (
	"fmt"
	"io"
	"math/big"
	"strings"

	"minimaxdp/internal/matrix"
	"minimaxdp/internal/rational"
)

// WriteMatrix renders a rational matrix with exact entries, aligned
// per column, prefixed by a title line.
func WriteMatrix(w io.Writer, title string, m *matrix.Matrix) error {
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, m.String())
	return err
}

// WriteMatrixFloat renders a rational matrix in fixed-point decimal
// with the given precision, for eyeballing against the paper's rounded
// tables.
func WriteMatrixFloat(w io.Writer, title string, m *matrix.Matrix, prec int) error {
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	cells := make([][]string, m.Rows())
	for i := 0; i < m.Rows(); i++ {
		cells[i] = make([]string, m.Cols())
		for j := 0; j < m.Cols(); j++ {
			cells[i][j] = fmt.Sprintf("%.*f", prec, rational.Float(m.At(i, j)))
		}
	}
	return writeAligned(w, nil, cells)
}

// Table accumulates rows of string cells under a header and renders
// them column-aligned.
type Table struct {
	header []string
	rows   [][]string
}

// New returns a table with the given column headers.
func New(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; extra or missing cells are tolerated and
// padded at render time.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row where each cell is formatted with %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case *big.Rat:
			row[i] = v.RatString()
		case float64:
			row[i] = fmt.Sprintf("%.6g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Write renders the table to w.
func (t *Table) Write(w io.Writer) error {
	return writeAligned(w, t.header, t.rows)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Write(&b); err != nil {
		return fmt.Sprintf("table: render error: %v", err)
	}
	return b.String()
}

func writeAligned(w io.Writer, header []string, rows [][]string) error {
	cols := len(header)
	for _, r := range rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if header != nil {
		measure(header)
	}
	for _, r := range rows {
		measure(r)
	}
	writeRow := func(r []string) error {
		var b strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if header != nil {
		if err := writeRow(header); err != nil {
			return err
		}
		rule := make([]string, cols)
		for i := range rule {
			rule[i] = strings.Repeat("-", widths[i])
		}
		if err := writeRow(rule); err != nil {
			return err
		}
	}
	for _, r := range rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}
