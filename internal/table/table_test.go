package table

import (
	"strings"
	"testing"

	"minimaxdp/internal/matrix"
)

func TestWriteMatrix(t *testing.T) {
	m := matrix.MustFromStrings([][]string{{"1/2", "1"}, {"1", "1/2"}})
	var b strings.Builder
	if err := WriteMatrix(&b, "G:", m); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "G:") || !strings.Contains(out, "1/2") {
		t.Errorf("output:\n%s", out)
	}
	b.Reset()
	if err := WriteMatrix(&b, "", m); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "G:") {
		t.Error("empty title printed")
	}
}

func TestWriteMatrixFloat(t *testing.T) {
	m := matrix.MustFromStrings([][]string{{"1/4", "3/4"}})
	var b strings.Builder
	if err := WriteMatrixFloat(&b, "M", m, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0.25") || !strings.Contains(b.String(), "0.75") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestTableRendering(t *testing.T) {
	tb := New("id", "value")
	tb.AddRow("a", "1")
	tb.AddRow("bb", "22", "extra")
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "id") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "--") {
		t.Errorf("rule: %q", lines[1])
	}
	if !strings.Contains(lines[3], "extra") {
		t.Errorf("extra cell lost: %q", lines[3])
	}
}

func TestAddRowf(t *testing.T) {
	tb := New("kind", "val")
	tb.AddRowf("rat", matrix.MustFromStrings([][]string{{"1/3"}}).At(0, 0))
	tb.AddRowf("float", 0.5)
	tb.AddRowf("int", 42)
	out := tb.String()
	if !strings.Contains(out, "1/3") || !strings.Contains(out, "0.5") || !strings.Contains(out, "42") {
		t.Errorf("output:\n%s", out)
	}
}
