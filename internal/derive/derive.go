// Package derive implements Section 3 of the paper: the complete
// characterization of mechanisms derivable from the geometric
// mechanism, the factorization T = G⁻¹·M, the Cramer's-rule
// certificates of Lemma 2, the privacy-level transition matrices
// T_{α,β} of Lemma 3, and the Appendix B counterexample.
//
// "M is derivable from G" (Definition 3) means there is a
// row-stochastic reinterpretation matrix T with M = G·T — i.e. a
// consumer receiving G's outputs can simulate M by randomized
// post-processing. Theorem 2 proves M (an oblivious α-DP mechanism) is
// derivable from G_{n,α} iff every three consecutive entries
// x1,x2,x3 of every column of M satisfy (1+α²)·x2 − α·(x1+x3) ≥ 0.
package derive

import (
	"errors"
	"fmt"
	"math/big"

	"minimaxdp/internal/lp"
	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
)

// ErrNotDerivable is wrapped by Factor when M cannot be derived from
// the geometric mechanism.
var ErrNotDerivable = errors.New("derive: mechanism not derivable from the geometric mechanism")

// ConditionViolation pinpoints the first failing triple of Theorem 2's
// characterization.
type ConditionViolation struct {
	Col   int      // column j of M
	Row   int      // middle row i of the triple (i−1, i, i+1)
	Value *big.Rat // (1+α²)x_{i,j} − α(x_{i−1,j}+x_{i+1,j}) < 0
}

func (v *ConditionViolation) Error() string {
	return fmt.Sprintf("derive: Theorem 2 condition fails at column %d, rows %d..%d: (1+α²)x2−α(x1+x3) = %s < 0",
		v.Col, v.Row-1, v.Row+1, v.Value.RatString())
}

// CheckCondition verifies the Theorem 2 characterization directly: for
// every column j and every interior row i, (1+α²)·x[i][j] −
// α·(x[i−1][j]+x[i+1][j]) ≥ 0. Returns nil if the condition holds and
// a *ConditionViolation otherwise.
func CheckCondition(m *mechanism.Mechanism, alpha *big.Rat) error {
	n := m.N()
	onePlusSq := rational.Add(rational.One(), rational.Mul(alpha, alpha))
	for j := 0; j <= n; j++ {
		for i := 1; i < n; i++ {
			mid := rational.Mul(onePlusSq, m.Prob(i, j))
			side := rational.Mul(alpha, rational.Add(m.Prob(i-1, j), m.Prob(i+1, j)))
			mid.Sub(mid, side)
			if mid.Sign() < 0 {
				return &ConditionViolation{Col: j, Row: i, Value: mid}
			}
		}
	}
	return nil
}

// Derivable reports whether m can be derived from G_{n,α} per
// Theorem 2's three-term condition.
func Derivable(m *mechanism.Mechanism, alpha *big.Rat) bool {
	return CheckCondition(m, alpha) == nil
}

// Factor computes the unique generalized-stochastic T with
// M = G_{n,α}·T, and verifies T is actually stochastic (all entries
// ≥ 0), i.e. implementable as a randomized post-processing. On
// success it returns T; when M is not derivable it returns an error
// wrapping ErrNotDerivable together with the offending entry.
func Factor(m *mechanism.Mechanism, alpha *big.Rat) (*matrix.Matrix, error) {
	n := m.N()
	// The closed-form inverse (tridiagonal, O(dim) nonzeros) makes the
	// whole factorization O(dim²) instead of the O(dim³) Gauss–Jordan
	// route; both agree exactly (see mechanism.GeometricInverse tests).
	gInv, err := mechanism.GeometricInverse(n, alpha)
	if err != nil {
		return nil, err
	}
	t, err := gInv.Mul(m.Matrix())
	if err != nil {
		return nil, err
	}
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			if t.At(i, j).Sign() < 0 {
				return nil, fmt.Errorf("%w: T[%d][%d] = %s < 0",
					ErrNotDerivable, i, j, t.At(i, j).RatString())
			}
		}
	}
	// T = G⁻¹M is a product of generalized stochastic matrices, hence
	// generalized stochastic (Poole 1995); with non-negativity it is
	// stochastic. Verify as a defence against construction bugs.
	if !t.IsStochastic() {
		return nil, fmt.Errorf("derive: internal error: factor is not stochastic")
	}
	return t, nil
}

// CramerCertificate returns, for column vector x of length n+1 and
// replacement position i (0-based), the determinant det G_{n,α}(i, x)
// from Lemma 2. Its sign decides whether the corresponding entry of
// T = G⁻¹·M is non-negative: t[i][j] = det G(i, m_j) / det G.
func CramerCertificate(n int, alpha *big.Rat, i int, x []*big.Rat) (*big.Rat, error) {
	if len(x) != n+1 {
		return nil, fmt.Errorf("derive: column length %d, want %d", len(x), n+1)
	}
	g, err := mechanism.Geometric(n, alpha)
	if err != nil {
		return nil, err
	}
	replaced, err := g.Matrix().ReplaceCol(i, x)
	if err != nil {
		return nil, err
	}
	return replaced.Det()
}

// Lemma2Sign evaluates the closed-form sign predicates of Lemma 2 for
// the replacement determinant, without computing any determinant:
//
//	i = 0:   det > 0 iff x[0] > α·x[1]
//	i = n:   det > 0 iff x[n] > α·x[n−1]
//	else:    det ≥ 0 iff (1+α²)·x[i] − α·(x[i−1]+x[i+1]) ≥ 0
//
// It returns the sign in {−1, 0, +1} of the deciding expression.
func Lemma2Sign(n int, alpha *big.Rat, i int, x []*big.Rat) (int, error) {
	if len(x) != n+1 {
		return 0, fmt.Errorf("derive: column length %d, want %d", len(x), n+1)
	}
	if i < 0 || i > n {
		return 0, fmt.Errorf("derive: position %d out of range", i)
	}
	switch {
	case i == 0:
		d := rational.Sub(x[0], rational.Mul(alpha, x[1]))
		return d.Sign(), nil
	case i == n:
		d := rational.Sub(x[n], rational.Mul(alpha, x[n-1]))
		return d.Sign(), nil
	default:
		onePlusSq := rational.Add(rational.One(), rational.Mul(alpha, alpha))
		d := rational.Sub(rational.Mul(onePlusSq, x[i]),
			rational.Mul(alpha, rational.Add(x[i-1], x[i+1])))
		return d.Sign(), nil
	}
}

// Transition computes the Lemma 3 post-processing matrix T_{α,β} with
// G_{n,β} = G_{n,α}·T_{α,β} for privacy parameters α ≤ β (recall that
// larger α means *more* privacy, so T adds privacy). It returns an
// error if α > β, for which no stochastic transition exists.
func Transition(n int, alpha, beta *big.Rat) (*matrix.Matrix, error) {
	if alpha.Cmp(beta) > 0 {
		return nil, fmt.Errorf("derive: no stochastic transition from α=%s to weaker-privacy β=%s",
			alpha.RatString(), beta.RatString())
	}
	gBeta, err := mechanism.Geometric(n, beta)
	if err != nil {
		return nil, err
	}
	if alpha.Cmp(beta) == 0 {
		return matrix.Identity(n + 1), nil
	}
	return Factor(gBeta, alpha)
}

// AppendixB returns the paper's Appendix B example: a mechanism that
// is ½-differentially private yet not derivable from G_{3,1/2}. It
// witnesses that Theorem 2's condition is strictly stronger than
// differential privacy.
func AppendixB() *mechanism.Mechanism {
	m, err := mechanism.FromStrings([][]string{
		{"1/9", "2/9", "4/9", "2/9"},
		{"2/9", "1/9", "2/9", "4/9"},
		{"4/9", "2/9", "1/9", "2/9"},
		{"13/18", "1/9", "1/18", "1/9"},
	})
	if err != nil {
		// The matrix is a fixed valid constant; failure is programmer error.
		panic(err)
	}
	return m
}

// DerivableFrom decides Definition 3 in full generality: can mechanism
// x be derived from deployed mechanism y by randomized post-processing
// — is there a row-stochastic T with x = y·T? Unlike Factor (which
// exploits the geometric mechanism's invertibility), this works for
// arbitrary deployed mechanisms, including singular ones, by solving
// the linear feasibility problem over T exactly. On success it returns
// a witnessing T.
func DerivableFrom(x, y *mechanism.Mechanism) (*matrix.Matrix, error) {
	if x.N() != y.N() {
		return nil, fmt.Errorf("derive: size mismatch: x on {0..%d}, y on {0..%d}", x.N(), y.N())
	}
	n := x.N()
	p := lp.NewProblem(lp.Minimize) // pure feasibility; zero objective
	tv := make([][]lp.Var, n+1)
	for r := 0; r <= n; r++ {
		tv[r] = make([]lp.Var, n+1)
		for rp := 0; rp <= n; rp++ {
			tv[r][rp] = p.NewVariable(fmt.Sprintf("T[%d][%d]", r, rp))
		}
	}
	// y·T = x, entrywise.
	for i := 0; i <= n; i++ {
		for rp := 0; rp <= n; rp++ {
			var terms []lp.Term
			for r := 0; r <= n; r++ {
				c := y.Prob(i, r)
				if c.Sign() != 0 {
					terms = append(terms, lp.T(tv[r][rp], c))
				}
			}
			if len(terms) == 0 {
				if x.Prob(i, rp).Sign() != 0 {
					return nil, fmt.Errorf("%w: y's row %d is zero but x[%d][%d] > 0",
						ErrNotDerivable, i, i, rp)
				}
				continue
			}
			p.AddConstraint(terms, lp.EQ, x.Prob(i, rp))
		}
	}
	// Rows of T are distributions.
	for r := 0; r <= n; r++ {
		terms := make([]lp.Term, 0, n+1)
		for rp := 0; rp <= n; rp++ {
			terms = append(terms, lp.TInt(tv[r][rp], 1))
		}
		p.AddConstraint(terms, lp.EQ, rational.One())
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("%w: no stochastic T with y·T = x", ErrNotDerivable)
	}
	t := matrix.New(n+1, n+1)
	for r := 0; r <= n; r++ {
		for rp := 0; rp <= n; rp++ {
			t.Set(r, rp, sol.Value(tv[r][rp]))
		}
	}
	return t, nil
}
