package derive

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
)

func r(s string) *big.Rat { return rational.MustParse(s) }

func geo(t *testing.T, n int, alpha string) *mechanism.Mechanism {
	t.Helper()
	g, err := mechanism.Geometric(n, r(alpha))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The geometric mechanism is trivially derivable from itself (T = I).
func TestGeometricSelfDerivable(t *testing.T) {
	g := geo(t, 4, "1/3")
	if !Derivable(g, r("1/3")) {
		t.Fatal("G not derivable from itself")
	}
	tm, err := Factor(g, r("1/3"))
	if err != nil {
		t.Fatal(err)
	}
	if !tm.Equal(matrix.Identity(5)) {
		t.Errorf("Factor(G, α) != I:\n%s", tm)
	}
}

// Appendix B: the example mechanism is 1/2-DP but NOT derivable from
// G_{3,1/2}; the specific violating triple is column 1, rows 0..2 with
// value −1/12 ( = (1+α²)·1/9 − α·(2/9+2/9) at α=1/2; the paper reports
// −0.75/9 = −1/12 ).
func TestAppendixBCounterexample(t *testing.T) {
	m := AppendixB()
	if err := m.CheckDP(r("1/2")); err != nil {
		t.Fatalf("Appendix B mechanism should be 1/2-DP: %v", err)
	}
	err := CheckCondition(m, r("1/2"))
	var v *ConditionViolation
	if !errors.As(err, &v) {
		t.Fatalf("expected ConditionViolation, got %v", err)
	}
	if v.Col != 1 || v.Row != 1 {
		t.Errorf("violation at col %d row %d, paper says column 1 rows 0..2", v.Col, v.Row)
	}
	if v.Value.Cmp(r("-1/12")) != 0 {
		t.Errorf("violation value %s, want -1/12", v.Value.RatString())
	}
	if v.Error() == "" {
		t.Error("empty violation message")
	}
	if _, err := Factor(m, r("1/2")); !errors.Is(err, ErrNotDerivable) {
		t.Errorf("Factor should report ErrNotDerivable, got %v", err)
	}
	if Derivable(m, r("1/2")) {
		t.Error("Derivable returned true for the counterexample")
	}
}

// Theorem 2 equivalence, checked both ways on random DP mechanisms:
// CheckCondition(M) == nil  ⇔  G⁻¹·M ≥ 0.
func TestTheorem2EquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alpha := r("1/2")
	derivableSeen, notDerivableSeen := 0, 0
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		m := randomDPMechanism(t, rng, n, alpha)
		condOK := Derivable(m, alpha)
		_, ferr := Factor(m, alpha)
		factorOK := ferr == nil
		if condOK != factorOK {
			t.Fatalf("trial %d: condition says %v but factorization says %v for\n%s",
				trial, condOK, factorOK, m)
		}
		if condOK {
			derivableSeen++
		} else {
			notDerivableSeen++
		}
	}
	if derivableSeen == 0 || notDerivableSeen == 0 {
		t.Logf("coverage note: derivable=%d not-derivable=%d", derivableSeen, notDerivableSeen)
	}
}

// randomDPMechanism builds a random α-DP mechanism by post-processing
// the geometric mechanism with a random stochastic matrix (always DP,
// often derivable) or by mixing with randomized response (often not
// derivable).
func randomDPMechanism(t *testing.T, rng *rand.Rand, n int, alpha *big.Rat) *mechanism.Mechanism {
	t.Helper()
	g, err := mechanism.Geometric(n, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if rng.Intn(2) == 0 {
		tm := randomStochastic(rng, n+1)
		out, err := g.PostProcess(tm)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// Mix the geometric mechanism with a permuted uniform-ish DP
	// mechanism: λ·G + (1−λ)·U stays α-DP (DP is convex).
	u, err := mechanism.Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	lambda := rational.New(int64(rng.Intn(4)), 4)
	gm, um := g.Matrix(), u.Matrix()
	mix := matrix.New(n+1, n+1)
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			a := rational.Mul(lambda, gm.At(i, j))
			b := rational.Mul(rational.Sub(rational.One(), lambda), um.At(i, j))
			mix.Set(i, j, rational.Add(a, b))
		}
	}
	out, err := mechanism.New(mix)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func randomStochastic(rng *rand.Rand, dim int) *matrix.Matrix {
	m := matrix.New(dim, dim)
	for i := 0; i < dim; i++ {
		w := make([]int64, dim)
		var sum int64
		for j := range w {
			w[j] = int64(rng.Intn(6))
			sum += w[j]
		}
		if sum == 0 {
			w[i], sum = 1, 1
		}
		for j := range w {
			m.Set(i, j, rational.New(w[j], sum))
		}
	}
	return m
}

// Factorization really reconstructs M: G·Factor(M) == M.
func TestFactorReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	alpha := r("1/3")
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		g := geo(t, n, "1/3")
		tm := randomStochastic(rng, n+1)
		m, err := g.PostProcess(tm)
		if err != nil {
			t.Fatal(err)
		}
		fac, err := Factor(m, alpha)
		if err != nil {
			t.Fatal(err)
		}
		prod, err := g.Matrix().Mul(fac)
		if err != nil {
			t.Fatal(err)
		}
		if !prod.Equal(m.Matrix()) {
			t.Fatalf("G·T != M on trial %d", trial)
		}
	}
}

// Lemma 3: for α ≤ β, T_{α,β} is stochastic and G_α·T_{α,β} = G_β.
func TestTransitionLemma3(t *testing.T) {
	grid := []string{"1/5", "1/4", "1/3", "1/2", "2/3", "3/4", "4/5"}
	n := 4
	for ai, as := range grid {
		for bi := ai; bi < len(grid); bi++ {
			alpha, beta := r(as), r(grid[bi])
			tr, err := Transition(n, alpha, beta)
			if err != nil {
				t.Fatalf("Transition(%s,%s): %v", as, grid[bi], err)
			}
			if !tr.IsStochastic() {
				t.Errorf("T_{%s,%s} not stochastic", as, grid[bi])
			}
			gA := geo(t, n, as)
			gB := geo(t, n, grid[bi])
			prod, err := gA.Matrix().Mul(tr)
			if err != nil {
				t.Fatal(err)
			}
			if !prod.Equal(gB.Matrix()) {
				t.Errorf("G_%s · T != G_%s", as, grid[bi])
			}
		}
	}
}

func TestTransitionIdentityAndRejection(t *testing.T) {
	tr, err := Transition(3, r("1/2"), r("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(matrix.Identity(4)) {
		t.Error("T_{α,α} should be the identity")
	}
	if _, err := Transition(3, r("3/4"), r("1/2")); err == nil {
		t.Error("privacy cannot be removed: α > β must be rejected")
	}
}

// The reverse direction really is impossible: factoring G_α from G_β
// (α < β) yields a matrix with negative entries.
func TestReverseTransitionNotStochastic(t *testing.T) {
	gA := geo(t, 4, "1/4")
	if _, err := Factor(gA, r("1/2")); !errors.Is(err, ErrNotDerivable) {
		t.Errorf("deriving a weaker-privacy geometric from a stronger one should fail, got %v", err)
	}
}

// Cramer certificates agree in sign with the Lemma 2 closed forms.
func TestCramerCertificateMatchesLemma2(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alpha := r("2/5")
	n := 4
	for trial := 0; trial < 40; trial++ {
		x := make([]*big.Rat, n+1)
		for i := range x {
			x[i] = rational.New(int64(rng.Intn(9)), 9)
		}
		for i := 0; i <= n; i++ {
			det, err := CramerCertificate(n, alpha, i, x)
			if err != nil {
				t.Fatal(err)
			}
			sign, err := Lemma2Sign(n, alpha, i, x)
			if err != nil {
				t.Fatal(err)
			}
			if det.Sign() != sign {
				t.Fatalf("trial %d pos %d: det sign %d, lemma sign %d (x=%v)",
					trial, i, det.Sign(), sign, x)
			}
		}
	}
}

func TestCramerCertificateValidation(t *testing.T) {
	if _, err := CramerCertificate(3, r("1/2"), 0, rational.Vector(2)); err == nil {
		t.Error("wrong-length column accepted")
	}
	if _, err := Lemma2Sign(3, r("1/2"), 0, rational.Vector(2)); err == nil {
		t.Error("wrong-length column accepted by Lemma2Sign")
	}
	if _, err := Lemma2Sign(3, r("1/2"), 9, rational.Vector(4)); err == nil {
		t.Error("out-of-range position accepted")
	}
}

// Randomized response at its own privacy level is generally NOT
// derivable from the geometric mechanism at that level — a natural
// non-counterexample-shaped instance of Appendix B's phenomenon.
func TestRandomizedResponseNotDerivable(t *testing.T) {
	rr, err := mechanism.RandomizedResponse(3, r("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	alpha := rr.BestAlpha()
	if Derivable(rr, alpha) {
		t.Skip("this parameterization happens to be derivable; not a failure")
	}
	if _, err := Factor(rr, alpha); !errors.Is(err, ErrNotDerivable) {
		t.Errorf("expected ErrNotDerivable, got %v", err)
	}
}

// Derivability is transitive through post-processing: if M = G·T then
// any further stochastic T' keeps M·T' derivable.
func TestDerivabilityClosedUnderPostProcessing(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	alpha := r("1/2")
	g := geo(t, 3, "1/2")
	m, err := g.PostProcess(randomStochastic(rng, 4))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := m.PostProcess(randomStochastic(rng, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !Derivable(m2, alpha) {
		t.Error("post-processing broke derivability")
	}
}

// DerivableFrom generalizes Factor: agreement on the geometric case.
func TestDerivableFromMatchesFactor(t *testing.T) {
	alpha := r("1/2")
	g := geo(t, 3, "1/2")
	rng := rand.New(rand.NewSource(41))
	m, err := g.PostProcess(randomStochastic(rng, 4))
	if err != nil {
		t.Fatal(err)
	}
	tm, err := DerivableFrom(m, g)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := g.Matrix().Mul(tm)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(m.Matrix()) {
		t.Error("witness T does not reproduce x")
	}
	// And the Appendix B counterexample is still rejected.
	if _, err := DerivableFrom(AppendixB(), g); !errors.Is(err, ErrNotDerivable) {
		t.Errorf("Appendix B accepted by general derivability: %v", err)
	}
	_ = alpha
}

// DerivableFrom handles singular deployed mechanisms, where Factor's
// inverse route cannot exist: anything is derivable from the identity,
// and only constant-row mechanisms are derivable from the uniform one.
func TestDerivableFromSingularCases(t *testing.T) {
	id, err := mechanism.Identity(3)
	if err != nil {
		t.Fatal(err)
	}
	u, err := mechanism.Uniform(3)
	if err != nil {
		t.Fatal(err)
	}
	// uniform = identity·(uniform matrix): derivable.
	if _, err := DerivableFrom(u, id); err != nil {
		t.Errorf("uniform not derivable from identity: %v", err)
	}
	// identity from uniform: impossible (uniform destroys information).
	if _, err := DerivableFrom(id, u); !errors.Is(err, ErrNotDerivable) {
		t.Errorf("identity derivable from uniform?! %v", err)
	}
	// constant-row mechanism from uniform: derivable (map everything the same way).
	g := geo(t, 3, "1/2")
	if _, err := DerivableFrom(u, u); err != nil {
		t.Errorf("uniform not derivable from itself: %v", err)
	}
	if _, err := DerivableFrom(g, u); !errors.Is(err, ErrNotDerivable) {
		t.Errorf("geometric derivable from uniform?! %v", err)
	}
	// Size mismatch rejected.
	small := geo(t, 2, "1/2")
	if _, err := DerivableFrom(small, g); err == nil {
		t.Error("size mismatch accepted")
	}
}
