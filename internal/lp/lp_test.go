package lp

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"minimaxdp/internal/rational"
)

func r(s string) *big.Rat { return rational.MustParse(s) }

// max 3x+5y s.t. x ≤ 4, 2y ≤ 12, 3x+2y ≤ 18  (classic; optimum 36 at (2,6)).
func buildClassic() *Problem {
	p := NewProblem(Maximize)
	x := p.NewVariable("x")
	y := p.NewVariable("y")
	p.SetObjective(TInt(x, 3), TInt(y, 5))
	p.AddConstraint([]Term{TInt(x, 1)}, LE, r("4"))
	p.AddConstraint([]Term{TInt(y, 2)}, LE, r("12"))
	p.AddConstraint([]Term{TInt(x, 3), TInt(y, 2)}, LE, r("18"))
	return p
}

func TestSolveClassicMax(t *testing.T) {
	sol, err := buildClassic().Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective.RatString() != "36" {
		t.Errorf("objective = %s, want 36", sol.Objective.RatString())
	}
	x, y := sol.X[0], sol.X[1]
	if x.RatString() != "2" || y.RatString() != "6" {
		t.Errorf("x=%s y=%s, want 2, 6", x.RatString(), y.RatString())
	}
}

func TestSolveMinWithGE(t *testing.T) {
	// min 2x+3y s.t. x+y ≥ 10, x ≥ 2, y ≥ 3. Optimum: x=7,y=3 → 23.
	p := NewProblem(Minimize)
	x := p.NewVariable("x")
	y := p.NewVariable("y")
	p.SetObjective(TInt(x, 2), TInt(y, 3))
	p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1)}, GE, r("10"))
	p.AddConstraint([]Term{TInt(x, 1)}, GE, r("2"))
	p.AddConstraint([]Term{TInt(y, 1)}, GE, r("3"))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective.RatString() != "23" {
		t.Errorf("objective = %s, want 23", sol.Objective.RatString())
	}
}

func TestSolveEquality(t *testing.T) {
	// min x+y s.t. x+2y = 4, x−y = 1. Unique point (2,1) → 3.
	p := NewProblem(Minimize)
	x := p.NewVariable("x")
	y := p.NewVariable("y")
	p.SetObjective(TInt(x, 1), TInt(y, 1))
	p.AddConstraint([]Term{TInt(x, 1), TInt(y, 2)}, EQ, r("4"))
	p.AddConstraint([]Term{TInt(x, 1), TInt(y, -1)}, EQ, r("1"))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.X[0].RatString() != "2" || sol.X[1].RatString() != "1" {
		t.Errorf("x=%s y=%s", sol.X[0].RatString(), sol.X[1].RatString())
	}
	if sol.Objective.RatString() != "3" {
		t.Errorf("objective = %s", sol.Objective.RatString())
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.NewVariable("x")
	p.SetObjective(TInt(x, 1))
	p.AddConstraint([]Term{TInt(x, 1)}, LE, r("1"))
	p.AddConstraint([]Term{TInt(x, 1)}, GE, r("2"))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.NewVariable("x")
	p.SetObjective(TInt(x, 1))
	p.AddConstraint([]Term{TInt(x, 1)}, GE, r("0"))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min d s.t. d ≥ x−3, d ≥ 3−x, x = 1 → d = 2 (|x−3| epigraph).
	p := NewProblem(Minimize)
	d := p.FreeVariable("d")
	x := p.NewVariable("x")
	p.SetObjective(TInt(d, 1))
	p.AddConstraint([]Term{TInt(d, 1), TInt(x, -1)}, GE, r("-3"))
	p.AddConstraint([]Term{TInt(d, 1), TInt(x, 1)}, GE, r("3"))
	p.AddConstraint([]Term{TInt(x, 1)}, EQ, r("1"))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective.RatString() != "2" {
		t.Errorf("objective = %s, want 2", sol.Objective.RatString())
	}
}

func TestFreeVariableCanGoNegative(t *testing.T) {
	// min y s.t. y ≥ −5 with y free → y = −5.
	p := NewProblem(Minimize)
	y := p.FreeVariable("y")
	p.SetObjective(TInt(y, 1))
	p.AddConstraint([]Term{TInt(y, 1)}, GE, r("-5"))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.X[0].RatString() != "-5" {
		t.Errorf("y = %s, want -5", sol.X[0].RatString())
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// −x ≤ −4  ⇔  x ≥ 4; min x → 4.
	p := NewProblem(Minimize)
	x := p.NewVariable("x")
	p.SetObjective(TInt(x, 1))
	p.AddConstraint([]Term{TInt(x, -1)}, LE, r("-4"))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.X[0].RatString() != "4" {
		t.Errorf("status=%v x=%v", sol.Status, sol.X)
	}
}

func TestExactRationalAnswer(t *testing.T) {
	// max x s.t. 3x ≤ 1 → x = 1/3 exactly.
	p := NewProblem(Maximize)
	x := p.NewVariable("x")
	p.SetObjective(TInt(x, 1))
	p.AddConstraint([]Term{TInt(x, 3)}, LE, r("1"))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0].RatString() != "1/3" {
		t.Errorf("x = %s, want exactly 1/3", sol.X[0].RatString())
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// A classic cycling-prone example (Beale). Bland's rule must
	// terminate with optimum 1/20 × ... ; we just require termination
	// and a valid optimal status.
	p := NewProblem(Minimize)
	x1 := p.NewVariable("x1")
	x2 := p.NewVariable("x2")
	x3 := p.NewVariable("x3")
	x4 := p.NewVariable("x4")
	p.SetObjective(T(x1, r("-3/4")), TInt(x2, 150), T(x3, r("-1/50")), TInt(x4, 6))
	p.AddConstraint([]Term{T(x1, r("1/4")), TInt(x2, -60), T(x3, r("-1/25")), TInt(x4, 9)}, LE, r("0"))
	p.AddConstraint([]Term{T(x1, r("1/2")), TInt(x2, -90), T(x3, r("-1/50")), TInt(x4, 3)}, LE, r("0"))
	p.AddConstraint([]Term{TInt(x3, 1)}, LE, r("1"))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective.RatString() != "-1/20" {
		t.Errorf("objective = %s, want -1/20", sol.Objective.RatString())
	}
}

func TestSolutionValueAndDescribeVar(t *testing.T) {
	p := buildClassic()
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value(Var(0)).RatString() != "2" {
		t.Error("Value wrong")
	}
	if p.DescribeVar(Var(0)) != "x" || p.DescribeVar(Var(99)) != "var#99" {
		t.Error("DescribeVar wrong")
	}
	if p.NumVariables() != 2 || p.NumConstraints() != 3 {
		t.Error("counters wrong")
	}
}

func TestNoVariablesErrors(t *testing.T) {
	if _, err := NewProblem(Minimize).Solve(); err == nil {
		t.Error("expected error for empty problem")
	}
	if _, err := NewProblem(Minimize).SolveFloat(); err == nil {
		t.Error("expected error for empty float problem")
	}
}

func TestAccumulatedTerms(t *testing.T) {
	// Repeated terms on the same variable must accumulate:
	// x + x ≤ 4 means 2x ≤ 4.
	p := NewProblem(Maximize)
	x := p.NewVariable("x")
	p.SetObjective(TInt(x, 1))
	p.AddConstraint([]Term{TInt(x, 1), TInt(x, 1)}, LE, r("4"))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0].RatString() != "2" {
		t.Errorf("x = %s, want 2", sol.X[0].RatString())
	}
}

func TestSolveFloatMatchesExactOnRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		nv := 2 + rng.Intn(3)
		nc := 1 + rng.Intn(4)
		p := NewProblem(Minimize)
		vars := make([]Var, nv)
		for i := range vars {
			vars[i] = p.NewVariable("v")
			p.SetObjectiveCoeff(vars[i], rational.Int(int64(rng.Intn(9)+1)))
		}
		for c := 0; c < nc; c++ {
			terms := make([]Term, nv)
			for i := range vars {
				terms[i] = TInt(vars[i], int64(rng.Intn(5)))
			}
			p.AddConstraint(terms, GE, rational.Int(int64(rng.Intn(10))))
		}
		exact, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		fl, err := p.SolveFloat()
		if err != nil {
			t.Fatal(err)
		}
		if exact.Status != fl.Status {
			// All-zero constraint rows with positive RHS can be judged
			// differently only through tolerances; statuses should
			// still agree on this family.
			t.Fatalf("trial %d: exact status %v, float status %v", trial, exact.Status, fl.Status)
		}
		if exact.Status == Optimal {
			want := rational.Float(exact.Objective)
			if math.Abs(fl.Objective-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("trial %d: exact obj %v, float obj %v", trial, want, fl.Objective)
			}
		}
	}
}

func TestSolveFloatClassic(t *testing.T) {
	fl, err := buildClassic().SolveFloat()
	if err != nil {
		t.Fatal(err)
	}
	if fl.Status != Optimal {
		t.Fatalf("status = %v", fl.Status)
	}
	if math.Abs(fl.Objective-36) > 1e-9 {
		t.Errorf("objective = %v, want 36", fl.Objective)
	}
}

func TestOpString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" || Op(99).String() != "?" {
		t.Error("Op.String wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(9).String() != "unknown" {
		t.Error("Status.String wrong")
	}
}
