package lp

import (
	"context"
	"errors"
	"testing"
	"time"

	"minimaxdp/internal/rational"
)

// smallLP builds a tiny feasible problem: max x+y s.t. x+y ≤ 4,
// x ≤ 3, with optimum 4.
func smallLP() *Problem {
	p := NewProblem(Maximize)
	x := p.NewVariable("x")
	y := p.NewVariable("y")
	p.SetObjective(TInt(x, 1), TInt(y, 1))
	p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1)}, LE, rational.Int(4))
	p.AddConstraint([]Term{TInt(x, 1)}, LE, rational.Int(3))
	return p
}

func TestSolveCtxBackgroundMatchesSolve(t *testing.T) {
	want, err := smallLP().Solve()
	if err != nil {
		t.Fatal(err)
	}
	got, err := smallLP().SolveCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status || got.Objective.Cmp(want.Objective) != 0 {
		t.Errorf("SolveCtx = (%v, %s), Solve = (%v, %s)",
			got.Status, got.Objective.RatString(), want.Status, want.Objective.RatString())
	}
}

// TestSolveCtxCanceled asserts the pivot-loop checkpoint: a context
// canceled before the solve starts surfaces as ctx.Err() from the
// very first iterate check, with no solution fabricated.
func TestSolveCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := smallLP().SolveCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveCtx(canceled) err = %v, want context.Canceled", err)
	}
	if sol != nil {
		t.Errorf("SolveCtx(canceled) returned a solution: %+v", sol)
	}
}

func TestSolveCtxDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	if _, err := smallLP().SolveCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SolveCtx(expired deadline) err = %v, want context.DeadlineExceeded", err)
	}
}
