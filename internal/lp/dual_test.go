package lp

import (
	"math/rand"
	"testing"

	"minimaxdp/internal/rational"
)

// min 2x+3y s.t. x+y ≥ 10, x ≥ 2, y ≥ 3 — optimum 23.
func buildMinGE() *Problem {
	p := NewProblem(Minimize)
	x := p.NewVariable("x")
	y := p.NewVariable("y")
	p.SetObjective(TInt(x, 2), TInt(y, 3))
	p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1)}, GE, r("10"))
	p.AddConstraint([]Term{TInt(x, 1)}, GE, r("2"))
	p.AddConstraint([]Term{TInt(y, 1)}, GE, r("3"))
	return p
}

func TestStrongDualitySimple(t *testing.T) {
	p := buildMinGE()
	primal, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Dual()
	if err != nil {
		t.Fatal(err)
	}
	dual, err := d.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if dual.Status != Optimal {
		t.Fatalf("dual status %v", dual.Status)
	}
	if primal.Objective.Cmp(dual.Objective) != 0 {
		t.Errorf("strong duality fails: primal %s, dual %s",
			primal.Objective.RatString(), dual.Objective.RatString())
	}
	prices, err := p.DualPrices(dual)
	if err != nil {
		t.Fatal(err)
	}
	if len(prices) != 3 {
		t.Fatalf("got %d prices", len(prices))
	}
	// GE constraints in a min problem have non-negative prices.
	for i, y := range prices {
		if y.Sign() < 0 {
			t.Errorf("price %d = %s negative for a GE row", i, y.RatString())
		}
	}
}

func TestStrongDualityWithMixedOps(t *testing.T) {
	// min x+2y s.t. x+y = 4, x ≤ 3, y ≥ 1 → optimum at (3,1): 5.
	p := NewProblem(Minimize)
	x := p.NewVariable("x")
	y := p.NewVariable("y")
	p.SetObjective(TInt(x, 1), TInt(y, 2))
	p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1)}, EQ, r("4"))
	p.AddConstraint([]Term{TInt(x, 1)}, LE, r("3"))
	p.AddConstraint([]Term{TInt(y, 1)}, GE, r("1"))
	primal, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if primal.Objective.RatString() != "5" {
		t.Fatalf("primal optimum %s, want 5", primal.Objective.RatString())
	}
	d, err := p.Dual()
	if err != nil {
		t.Fatal(err)
	}
	dual, err := d.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if primal.Objective.Cmp(dual.Objective) != 0 {
		t.Errorf("strong duality fails: primal %s, dual %s",
			primal.Objective.RatString(), dual.Objective.RatString())
	}
	prices, err := p.DualPrices(dual)
	if err != nil {
		t.Fatal(err)
	}
	// LE row price must be ≤ 0 after the un-substitution.
	if prices[1].Sign() > 0 {
		t.Errorf("LE price = %s, want ≤ 0", prices[1].RatString())
	}
}

func TestDualValidation(t *testing.T) {
	mx := NewProblem(Maximize)
	v := mx.NewVariable("x")
	mx.SetObjective(TInt(v, 1))
	mx.AddConstraint([]Term{TInt(v, 1)}, LE, r("1"))
	if _, err := mx.Dual(); err == nil {
		t.Error("maximization dualized without error")
	}
	empty := NewProblem(Minimize)
	empty.NewVariable("x")
	if _, err := empty.Dual(); err == nil {
		t.Error("no-constraint problem dualized")
	}
}

func TestDualPricesValidation(t *testing.T) {
	p := buildMinGE()
	if _, err := p.DualPrices(&Solution{Status: Infeasible}); err == nil {
		t.Error("non-optimal dual accepted")
	}
	if _, err := p.DualPrices(&Solution{Status: Optimal, X: rational.Vector(1)}); err == nil {
		t.Error("wrong-length dual accepted")
	}
}

// Strong duality holds exactly on random feasible bounded LPs.
func TestStrongDualityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		nv := 2 + rng.Intn(3)
		nc := 2 + rng.Intn(4)
		p := NewProblem(Minimize)
		vars := make([]Var, nv)
		for i := range vars {
			vars[i] = p.NewVariable("v")
			p.SetObjectiveCoeff(vars[i], rational.Int(int64(rng.Intn(8)+1)))
		}
		for c := 0; c < nc; c++ {
			terms := make([]Term, 0, nv)
			for i := range vars {
				if coef := rng.Intn(5); coef > 0 {
					terms = append(terms, TInt(vars[i], int64(coef)))
				}
			}
			if len(terms) == 0 {
				terms = append(terms, TInt(vars[0], 1))
			}
			op := GE
			if rng.Intn(3) == 0 {
				op = LE
			}
			p.AddConstraint(terms, op, rational.Int(int64(rng.Intn(12))))
		}
		primal, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if primal.Status != Optimal {
			continue
		}
		d, err := p.Dual()
		if err != nil {
			t.Fatal(err)
		}
		dual, err := d.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if dual.Status != Optimal {
			t.Fatalf("trial %d: primal optimal but dual %v", trial, dual.Status)
		}
		if primal.Objective.Cmp(dual.Objective) != 0 {
			t.Fatalf("trial %d: primal %s != dual %s", trial,
				primal.Objective.RatString(), dual.Objective.RatString())
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d bounded instances checked", checked)
	}
}

// The paper's tailored-mechanism LP certified by strong duality: the
// dual optimum equals the primal optimum as exact rationals.
func TestStrongDualityOnMechanismLP(t *testing.T) {
	// Build the Section 2.5 LP for n=3, α=1/4, absolute loss (the
	// Table 1 instance) directly.
	n := 3
	alpha := r("1/4")
	p := NewProblem(Minimize)
	d := p.NewVariable("d")
	xv := make([][]Var, n+1)
	for i := 0; i <= n; i++ {
		xv[i] = make([]Var, n+1)
		for rr := 0; rr <= n; rr++ {
			xv[i][rr] = p.NewVariable("x")
		}
	}
	p.SetObjective(TInt(d, 1))
	for i := 0; i <= n; i++ {
		terms := []Term{TInt(d, 1)}
		for rr := 0; rr <= n; rr++ {
			dd := int64(i - rr)
			if dd < 0 {
				dd = -dd
			}
			if dd != 0 {
				terms = append(terms, T(xv[i][rr], rational.Int(-dd)))
			}
		}
		p.AddConstraint(terms, GE, rational.Zero())
	}
	negAlpha := rational.Neg(alpha)
	for i := 0; i < n; i++ {
		for rr := 0; rr <= n; rr++ {
			p.AddConstraint([]Term{TInt(xv[i][rr], 1), T(xv[i+1][rr], negAlpha)}, GE, rational.Zero())
			p.AddConstraint([]Term{TInt(xv[i+1][rr], 1), T(xv[i][rr], negAlpha)}, GE, rational.Zero())
		}
	}
	for i := 0; i <= n; i++ {
		terms := make([]Term, 0, n+1)
		for rr := 0; rr <= n; rr++ {
			terms = append(terms, TInt(xv[i][rr], 1))
		}
		p.AddConstraint(terms, EQ, rational.One())
	}
	primal, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if primal.Objective.RatString() != "168/415" {
		t.Fatalf("primal optimum %s, want 168/415", primal.Objective.RatString())
	}
	dp, err := p.Dual()
	if err != nil {
		t.Fatal(err)
	}
	dual, err := dp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if dual.Status != Optimal || primal.Objective.Cmp(dual.Objective) != 0 {
		t.Fatalf("Table 1 LP not certified: primal %s, dual %v %s",
			primal.Objective.RatString(), dual.Status, dual.Objective)
	}
}
