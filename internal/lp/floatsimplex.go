package lp

import (
	"errors"
	"math"

	"minimaxdp/internal/rational"
)

// FloatSolution is the result of SolveFloat.
type FloatSolution struct {
	Status    Status
	Objective float64
	X         []float64
}

const floatEps = 1e-9

// SolveFloat solves the same problem with a dense float64 two-phase
// simplex. It exists for the exact-vs-float ablation benchmark
// (DESIGN.md §5); production call sites use Solve. Results can differ
// from Solve on degenerate problems because of the ±1e-9 tolerance.
func (p *Problem) SolveFloat() (*FloatSolution, error) {
	if len(p.vars) == 0 {
		return nil, errors.New("lp: no variables")
	}
	s := newStandardForm(p)
	nrows, ncols := s.nrows, s.ncols

	// Count artificials exactly as the exact solver does.
	basisFromSlack := make([]int, nrows)
	nart := 0
	for r := 0; r < nrows; r++ {
		basisFromSlack[r] = -1
		for j := 0; j < ncols; j++ {
			if s.a[r][j].Sign() > 0 && s.a[r][j].Cmp(rational.One()) == 0 && s.isSlackColumn(j) && s.slackOnlyInRow(j, r) {
				basisFromSlack[r] = j
				break
			}
		}
		if basisFromSlack[r] < 0 {
			nart++
		}
	}
	total := ncols + nart
	rows := make([][]float64, nrows)
	basis := make([]int, nrows)
	artCol := ncols
	for r := 0; r < nrows; r++ {
		row := make([]float64, total+1)
		for j := 0; j < ncols; j++ {
			row[j] = rational.Float(s.a[r][j])
		}
		row[total] = rational.Float(s.b[r])
		if basisFromSlack[r] >= 0 {
			basis[r] = basisFromSlack[r]
		} else {
			row[artCol] = 1
			basis[r] = artCol
			artCol++
		}
		rows[r] = row
	}

	z := make([]float64, total)
	for j := ncols; j < total; j++ {
		z[j] = 1
	}
	obj := 0.0
	for r := 0; r < nrows; r++ {
		if basis[r] >= ncols {
			for j := 0; j < total; j++ {
				z[j] -= rows[r][j]
			}
			obj -= rows[r][total]
		}
	}
	if !floatIterate(rows, basis, z, &obj, total, nil) {
		return &FloatSolution{Status: Infeasible}, nil
	}
	if math.Abs(obj) > floatEps {
		return &FloatSolution{Status: Infeasible}, nil
	}
	for r := 0; r < nrows; r++ {
		if basis[r] < ncols {
			continue
		}
		for j := 0; j < ncols; j++ {
			if math.Abs(rows[r][j]) > floatEps {
				floatPivot(rows, basis, z, &obj, r, j, total)
				break
			}
		}
	}

	// Phase 2.
	c := make([]float64, ncols)
	for j := 0; j < ncols; j++ {
		c[j] = rational.Float(s.c[j])
	}
	for j := range z {
		z[j] = 0
	}
	for j := 0; j < ncols; j++ {
		z[j] = c[j]
	}
	obj = 0
	for r := 0; r < nrows; r++ {
		bi := basis[r]
		cb := 0.0
		if bi < ncols {
			cb = c[bi]
		}
		if cb == 0 {
			continue
		}
		for j := 0; j < total; j++ {
			z[j] -= cb * rows[r][j]
		}
		obj -= cb * rows[r][total]
	}
	banned := make([]bool, total)
	for j := ncols; j < total; j++ {
		banned[j] = true
	}
	if !floatIterate(rows, basis, z, &obj, total, banned) {
		return &FloatSolution{Status: Unbounded}, nil
	}

	colVal := make([]float64, total)
	for r, bi := range basis {
		colVal[bi] = rows[r][total]
	}
	x := make([]float64, len(p.vars))
	objective := 0.0
	for i := range p.vars {
		x[i] = colVal[s.colPos[i]]
		if s.colNeg[i] >= 0 {
			x[i] -= colVal[s.colNeg[i]]
		}
		objective += rational.Float(p.objective[i]) * x[i]
	}
	return &FloatSolution{Status: Optimal, Objective: objective, X: x}, nil
}

func floatIterate(rows [][]float64, basis []int, z []float64, obj *float64, total int, banned []bool) bool {
	for iter := 0; ; iter++ {
		enter := -1
		for j := 0; j < total; j++ {
			if banned != nil && banned[j] {
				continue
			}
			if z[j] < -floatEps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return true
		}
		leave := -1
		best := math.Inf(1)
		for r := range rows {
			arj := rows[r][enter]
			if arj <= floatEps {
				continue
			}
			ratio := rows[r][total] / arj
			if ratio < best-floatEps || (math.Abs(ratio-best) <= floatEps && (leave < 0 || basis[r] < basis[leave])) {
				leave = r
				best = ratio
			}
		}
		if leave < 0 {
			return false
		}
		floatPivot(rows, basis, z, obj, leave, enter, total)
	}
}

func floatPivot(rows [][]float64, basis []int, z []float64, obj *float64, row, col, total int) {
	pr := rows[row]
	inv := 1 / pr[col]
	for j := range pr {
		pr[j] *= inv
	}
	for r := range rows {
		if r == row || rows[r][col] == 0 {
			continue
		}
		f := rows[r][col]
		for j := range rows[r] {
			rows[r][j] -= f * pr[j]
		}
	}
	if zf := z[col]; zf != 0 {
		for j := 0; j < total; j++ {
			z[j] -= zf * pr[j]
		}
		*obj -= zf * pr[total]
	}
	basis[row] = col
}
