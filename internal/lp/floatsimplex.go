package lp

import (
	"errors"
	"math"
	"runtime"
	"sync"

	"minimaxdp/internal/rational"
)

// FloatSolution is the result of SolveFloat.
type FloatSolution struct {
	Status    Status
	Objective float64
	X         []float64
}

const floatEps = 1e-9

// perturbScale sets the anti-degeneracy right-hand-side perturbation
// used by the warm-start candidate solve (floatCandidateBasis): row r
// is shifted by perturbScale·(r+1)/nrows, giving every row a distinct
// positive offset so ratio-test ties — the fuel of degenerate
// stalling, which at tailored n ≳ 20 burned six-figure pivot counts
// before hitting the cap — become strict comparisons. The offsets sit
// far above floatEps (so they actually break ties) and far below the
// problem data (so the located basis is a lexicographic-style basis
// of the true LP). Nothing numeric escapes: the basis is re-certified
// in exact arithmetic against the UNperturbed problem, and a basis
// the perturbation steered wrong simply fails certification and falls
// back. SolveFloat stays unperturbed — its objective values are
// compared against the exact solver at 1e-9 in the ablation tests.
const perturbScale = 1e-5

// floatOutcome classifies a float simplex run. Unlike the exact
// solver, the float solver can also give up: its ±1e-9 tolerances
// void Bland's termination guarantee, so the pivot loop carries an
// iteration cap.
type floatOutcome int

const (
	floatOptimal floatOutcome = iota
	floatUnbounded
	floatCapped
)

// floatTab is the dense float64 analogue of tableau, built from the
// same standardForm and pivoted by the same rules (Dantzig with a
// stall→Bland switch, identical tie-breaks) so that its final basis
// is, in the overwhelmingly common case, exactly the basis the exact
// solver would reach. That lockstep is what makes the warm-start
// crossover (warmstart.go) produce byte-identical solutions to the
// cold exact solve rather than merely equally-optimal ones. (A devex
// pricing experiment took *more* pivots on the tailored family than
// Dantzig does, so lockstep costs nothing here.)
type floatTab struct {
	rows   [][]float64
	basis  []int
	z      []float64
	obj    float64
	total  int // columns incl. artificials
	ncols  int // columns excl. artificials (== standardForm.ncols)
	pivots int
	nz     []int     // pooled pivot-row nonzero list, reused across pivots
	nzv    []float64 // pivot-row values at nz, gathered for sequential reads
	// delta reports that each row carries one extra trailing column (at
	// index total+1) holding the image of the anti-degeneracy RHS
	// perturbation under the pivots so far. B⁻¹b for the TRUE b is then
	// row[total] − row[total+1], which is what the post-optimal dual
	// cleanup (dualCleanup) prices — without it the candidate basis is
	// optimal for the perturbed RHS but primal infeasible for the real
	// one, and every infeasible position costs the crossover an exact
	// dual-simplex pivot at big-rational prices.
	delta bool
}

// newFloatTab builds the phase-1 float tableau, seeding the basis
// from slack columns exactly where the exact phase1 would and adding
// artificials elsewhere. With perturb set, each right-hand side gets
// its anti-degeneracy offset (see perturbScale).
func (s *standardForm) newFloatTab(perturb bool) *floatTab {
	basisFromSlack := s.initialBasis()
	nart := 0
	for r := 0; r < s.nrows; r++ {
		if basisFromSlack[r] < 0 {
			nart++
		}
	}
	ft := &floatTab{
		total: s.ncols + nart,
		ncols: s.ncols,
		basis: make([]int, s.nrows),
		rows:  make([][]float64, s.nrows),
		delta: perturb,
	}
	// One flat slab for all rows: fewer allocations and sequential
	// row-to-row memory, which the elimination loops below stream over.
	// Perturbed tableaus get one extra trailing column per row carrying
	// the perturbation's image (floatTab.delta).
	width := ft.total + 1
	if perturb {
		width++
	}
	slab := make([]float64, s.nrows*width)
	artCol := s.ncols
	for r := 0; r < s.nrows; r++ {
		row := slab[r*width : (r+1)*width : (r+1)*width]
		for _, e := range s.rows[r] {
			row[e.idx] = rational.Float(e.v)
		}
		row[ft.total] = rational.Float(s.b[r])
		if perturb {
			off := perturbScale * float64(r+1) / float64(s.nrows)
			row[ft.total] += off
			row[ft.total+1] = off
		}
		if basisFromSlack[r] >= 0 {
			ft.basis[r] = basisFromSlack[r]
		} else {
			row[artCol] = 1
			ft.basis[r] = artCol
			artCol++
		}
		ft.rows[r] = row
	}
	return ft
}

// maxPivots bounds the total float pivots across both phases.
// Tolerances void Bland's anti-cycling guarantee, so unlike the exact
// solver the float one needs a cap; it is far above any pivot count a
// well-posed LP of this size produces.
func (ft *floatTab) maxPivots() int {
	return 5000 + 50*(len(ft.rows)+ft.total)
}

// floatSolve runs the two-phase dense float64 simplex on s. ok is
// false when the iteration cap was hit (the solve is then
// inconclusive); otherwise st is the float solver's verdict and ft
// holds the final tableau.
func (s *standardForm) floatSolve(perturb bool) (st Status, ft *floatTab, ok bool) {
	ft = s.newFloatTab(perturb)
	pivotCap := ft.maxPivots()

	// Phase 1: minimize the artificial sum.
	ft.z = make([]float64, ft.total)
	for j := s.ncols; j < ft.total; j++ {
		ft.z[j] = 1
	}
	ft.obj = 0
	for r := range ft.rows {
		if ft.basis[r] >= s.ncols {
			for j := 0; j < ft.total; j++ {
				ft.z[j] -= ft.rows[r][j]
			}
			ft.obj -= ft.rows[r][ft.total]
		}
	}
	switch ft.iterate(nil, pivotCap) {
	case floatCapped:
		return NoStatus, ft, false
	case floatUnbounded:
		// Phase 1 is bounded below by 0; treat as inconclusive.
		return NoStatus, ft, false
	}
	if math.Abs(ft.obj) > floatEps {
		return Infeasible, ft, true
	}
	// Drive leftover artificials out of the basis where possible,
	// mirroring the exact phase1.
	for r := range ft.rows {
		if ft.basis[r] < s.ncols {
			continue
		}
		for j := 0; j < s.ncols; j++ {
			if math.Abs(ft.rows[r][j]) > floatEps {
				ft.pivot(r, j)
				break
			}
		}
	}

	// Artificials are dead past this point — phase 2 bans them from
	// entering, so their columns only cost elimination sweeps. Unless
	// one is stuck basic (a degenerate redundant row), chop them off:
	// the right-hand side moves down into the first artificial slot and
	// every row narrows to the structural columns. No pivot choice
	// changes — banned columns were never consulted — so the pivot
	// path, and hence the final basis, is identical to the uncompacted
	// tableau's.
	if ft.total > s.ncols {
		stuck := false
		for _, bi := range ft.basis {
			if bi >= s.ncols {
				stuck = true
				break
			}
		}
		if !stuck {
			for r := range ft.rows {
				row := ft.rows[r]
				row[s.ncols] = row[ft.total]
				if ft.delta {
					row[s.ncols+1] = row[ft.total+1]
					ft.rows[r] = row[:s.ncols+2]
				} else {
					ft.rows[r] = row[:s.ncols+1]
				}
			}
			ft.total = s.ncols
		}
	}

	// Phase 2: the real cost vector, artificials banned.
	c := make([]float64, s.ncols)
	for j := 0; j < s.ncols; j++ {
		c[j] = rational.Float(s.c[j])
	}
	for j := range ft.z {
		ft.z[j] = 0
	}
	copy(ft.z, c)
	ft.obj = 0
	for r := range ft.rows {
		bi := ft.basis[r]
		cb := 0.0
		if bi < s.ncols {
			cb = c[bi]
		}
		if cb == 0 {
			continue
		}
		for j := 0; j < ft.total; j++ {
			ft.z[j] -= cb * ft.rows[r][j]
		}
		ft.obj -= cb * ft.rows[r][ft.total]
	}
	banned := make([]bool, ft.total)
	for j := s.ncols; j < ft.total; j++ {
		banned[j] = true
	}
	switch ft.iterate(banned, pivotCap) {
	case floatCapped:
		return NoStatus, ft, false
	case floatUnbounded:
		return Unbounded, ft, true
	}
	if perturb && !floatSkipDualCleanup {
		// The basis is optimal for the PERTURBED right-hand side; walk
		// it to one primal feasible for the true RHS with float dual
		// pivots, so the exact crossover doesn't have to do the same
		// walk at big-rational prices. Best-effort: on failure the
		// basis is still a valid candidate — the exact dual repair
		// simply has more to do.
		ft.dualCleanup(banned, pivotCap)
	}
	return Optimal, ft, true
}

// floatSkipDualCleanup suppresses the float-side dual cleanup so the
// candidate basis stays optimal for the perturbed RHS only. Tests flip
// it to regenerate the long-eta-chain exact dual repairs the cleanup
// exists to avoid (the refactorization-cadence regression tests);
// production code never sets it.
var floatSkipDualCleanup = false

// dualCleanup runs dual-simplex pivots against the de-perturbed
// right-hand side (row[total] − row[total+1], see floatTab.delta)
// until it is nonnegative within tolerance: leaving row most negative,
// entering column by the dual ratio test min z_j/(−a_rj) over
// a_rj < 0, ties toward the smaller column index — the float mirror
// of the exact solveDualRepair the crossover would otherwise run.
// Returns false when a row cannot be repaired (left for the exact side
// to adjudicate) or the pivot cap is hit.
func (ft *floatTab) dualCleanup(banned []bool, maxPivots int) bool {
	if !ft.delta {
		return true
	}
	d := ft.total + 1
	for ft.pivots < maxPivots {
		leave := -1
		worst := -floatEps
		for r := range ft.rows {
			row := ft.rows[r]
			if tv := row[ft.total] - row[d]; tv < worst {
				worst = tv
				leave = r
			}
		}
		if leave < 0 {
			return true
		}
		lr := ft.rows[leave]
		enter := -1
		best := math.Inf(1)
		for j := 0; j < ft.total; j++ {
			if banned != nil && j < len(banned) && banned[j] {
				continue
			}
			a := lr[j]
			if a >= -floatEps {
				continue
			}
			ratio := ft.z[j] / -a
			if enter < 0 || ratio < best-floatEps {
				enter = j
				best = ratio
			}
		}
		if enter < 0 {
			return false
		}
		ft.pivot(leave, enter)
	}
	return false
}

// floatCandidateBasis runs the float simplex and returns its final
// basis (one column index per row) as the warm-start candidate. ok is
// false whenever the run is unusable for crossover: iteration cap
// hit, a non-Optimal verdict, or an artificial column stuck in the
// basis. Float Infeasible/Unbounded claims are deliberately never
// trusted — tolerance could fabricate either — so those also report
// ok=false and the caller falls back to the exact two-phase solve.
func (s *standardForm) floatCandidateBasis() (basis []int, pivots int, ok bool) {
	st, ft, ok := s.floatSolve(true)
	pivots = ft.pivots
	if !ok || st != Optimal {
		return nil, pivots, false
	}
	for _, bi := range ft.basis {
		if bi >= s.ncols {
			return nil, pivots, false
		}
	}
	return ft.basis, pivots, true
}

// SolveFloat solves the same problem with a dense float64 two-phase
// simplex. It exists for the exact-vs-float ablation benchmark
// (DESIGN.md §5) and as the basis oracle for the warm-start crossover;
// production call sites use Solve. Results can differ from Solve on
// degenerate problems because of the ±1e-9 tolerance.
func (p *Problem) SolveFloat() (*FloatSolution, error) {
	if len(p.vars) == 0 {
		return nil, errors.New("lp: no variables")
	}
	s := newStandardForm(p)
	st, ft, ok := s.floatSolve(false)
	if !ok {
		return nil, errors.New("lp: float simplex hit its iteration cap")
	}
	if st != Optimal {
		return &FloatSolution{Status: st}, nil
	}
	colVal := make([]float64, ft.total)
	for r, bi := range ft.basis {
		colVal[bi] = ft.rows[r][ft.total]
	}
	x := make([]float64, len(p.vars))
	objective := 0.0
	for i := range p.vars {
		x[i] = colVal[s.colPos[i]]
		if s.colNeg[i] >= 0 {
			x[i] -= colVal[s.colNeg[i]]
		}
		objective += rational.Float(p.objective[i]) * x[i]
	}
	return &FloatSolution{Status: Optimal, Objective: objective, X: x}, nil
}

// iterate mirrors tableau.iterate pivot-for-pivot: Dantzig entering
// column (most negative reduced cost, first wins ties) switching to
// Bland's rule after stallLimit degenerate pivots, leaving row by
// minimum ratio with ties broken toward the smaller basis index.
func (ft *floatTab) iterate(banned []bool, maxPivots int) floatOutcome {
	const stallLimit = 12 // keep in lockstep with tableau.iterate
	stalled := 0
	lastObj := ft.obj
	for {
		if ft.pivots >= maxPivots {
			return floatCapped
		}
		useBland := stalled >= stallLimit
		enter := -1
		best := 0.0
		for j := 0; j < ft.total; j++ {
			if banned != nil && banned[j] {
				continue
			}
			if ft.z[j] >= -floatEps {
				continue
			}
			if useBland {
				enter = j
				break // Bland: smallest eligible index
			}
			if enter < 0 || ft.z[j] < best {
				enter = j
				best = ft.z[j]
			}
		}
		if enter < 0 {
			return floatOptimal
		}
		leave := -1
		bestRatio := math.Inf(1)
		for r := range ft.rows {
			arj := ft.rows[r][enter]
			if arj <= floatEps {
				continue
			}
			ratio := ft.rows[r][ft.total] / arj
			if ratio < bestRatio-floatEps ||
				(math.Abs(ratio-bestRatio) <= floatEps && (leave < 0 || ft.basis[r] < ft.basis[leave])) {
				leave = r
				bestRatio = ratio
			}
		}
		if leave < 0 {
			return floatUnbounded
		}
		ft.pivot(leave, enter)
		if math.Abs(ft.obj-lastObj) <= floatEps {
			stalled++
		} else {
			stalled = 0
			lastObj = ft.obj
		}
	}
}

// pivot mirrors tableau.pivot's sparsity trick: only the nonzero
// columns of the pivot row participate in the elimination. Entries the
// dense loop would have touched with pr[j] == 0 are no-ops (x − f·0 is
// exactly x in IEEE arithmetic), so the produced tableau — and hence
// the pivot path and final basis — is unchanged. Once the pivot row
// has filled in past ~2/3 density the indirect nonzero walk loses to
// a straight sequential sweep, so the elimination switches between
// the two forms per pivot; both compute identical values.
func (ft *floatTab) pivot(row, col int) {
	ft.pivots++
	pr := ft.rows[row]
	inv := 1 / pr[col]
	nz := ft.nz[:0]
	nzv := ft.nzv[:0]
	for j := range pr {
		if pr[j] == 0 {
			continue
		}
		pr[j] *= inv
		nz = append(nz, j)
		nzv = append(nzv, pr[j])
	}
	ft.nz = nz
	ft.nzv = nzv
	ft.eliminate(row, col, 0, len(ft.rows))
	if zf := ft.z[col]; zf != 0 {
		for _, j := range nz {
			if j < ft.total {
				ft.z[j] -= zf * pr[j]
			} else if j == ft.total {
				ft.obj -= zf * pr[j]
			}
			// j == ft.total+1 is the perturbation-delta column: it has
			// no reduced cost or objective contribution.
		}
	}
	ft.basis[row] = col
}

// floatParallelWork is the pivot work (rows × pivot-row nonzeros)
// below which the fan-out overhead of parallel elimination outweighs
// the arithmetic it spreads. Measured on the tailored family: the
// crossover sits near 2¹⁴ multiply-adds; the threshold is set above
// it so small LPs never pay a goroutine spawn.
const floatParallelWork = 1 << 15

// eliminate applies the scaled pivot row to rows [lo, hi), switching
// between the dense sweep and the gathered sparse walk per the pivot
// row's fill. It fans the row range out across GOMAXPROCS workers
// when the pivot is large enough to amortize the spawns; workers own
// disjoint row chunks and only read pr/nz/nzv, so the result is
// bitwise identical to the serial sweep regardless of scheduling.
func (ft *floatTab) eliminate(row, col, lo, hi int) {
	if workers := runtime.GOMAXPROCS(0); workers > 1 && (hi-lo) > 1 &&
		(hi-lo)*len(ft.nz) >= floatParallelWork {
		chunk := (hi - lo + workers - 1) / workers
		var wg sync.WaitGroup
		for l := lo; l < hi; l += chunk {
			h := l + chunk
			if h > hi {
				h = hi
			}
			wg.Add(1)
			go func(l, h int) {
				defer wg.Done()
				ft.eliminateRange(row, col, l, h)
			}(l, h)
		}
		wg.Wait()
		return
	}
	ft.eliminateRange(row, col, lo, hi)
}

// eliminateRange is the serial worker behind eliminate.
func (ft *floatTab) eliminateRange(row, col, lo, hi int) {
	pr := ft.rows[row]
	nz, nzv := ft.nz, ft.nzv
	dense := 3*len(nz) >= 2*len(pr)
	for r := lo; r < hi; r++ {
		if r == row {
			continue
		}
		tr := ft.rows[r]
		f := tr[col]
		if f == 0 {
			continue
		}
		if dense {
			tr := tr[:len(pr)] // bounds-check elimination for the sweep
			for j, p := range pr {
				tr[j] -= f * p
			}
		} else {
			// The gathered nzv turns the pivot-row reads sequential;
			// only the tr writes stay scattered.
			for k, j := range nz {
				tr[j] -= f * nzv[k]
			}
		}
	}
}
