package lp

import (
	"context"
	"math/big"
	"testing"

	"minimaxdp/internal/rational"
)

// TestHvalDemotion pins the hybrid scalar's representation invariant:
// values that fit int64 live on the Small tier, values past int64 but
// within 128 bits on the Wide tier, only wider ones on big.Rat, and
// results demote back down whenever they re-fit. Every observable
// (Rat, Sign, Cmp) agrees with the big.Rat view regardless of tier.
func TestHvalDemotion(t *testing.T) {
	small := hvRat(rational.New(22, 7))
	if small.Tier() != rational.TierSmall {
		t.Error("22/7 should sit on the Small tier")
	}
	wideR := new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 90), big.NewInt(3))
	widev := hvRat(wideR)
	if widev.Tier() != rational.TierWide {
		t.Error("2^90/3 should sit on the Wide tier")
	}
	if widev.Rat().Cmp(wideR) != 0 {
		t.Errorf("Rat() = %v, want %v", widev.Rat(), wideR)
	}
	hugeR := new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 200), big.NewInt(3))
	bigv := hvRat(hugeR)
	if bigv.Tier() != rational.TierBig {
		t.Error("2^200/3 should sit on the big tier")
	}
	var h hstats
	// (2^90/3) − (2^90/3)·1 == 0: a Wide-tier op whose result re-fits.
	z := h.fms(widev, widev, hvRat(rational.One()))
	if z.Tier() != rational.TierSmall {
		t.Error("zero result should demote to the Small tier")
	}
	if !z.IsZero() || z.Sign() != 0 {
		t.Errorf("fms(x, x, 1) = %v, want 0", z.Rat())
	}
	if h.WideOps == 0 {
		t.Error("Wide-tier operation not counted")
	}
	// A big-tier op whose result re-fits 128 bits must land on Wide.
	z2 := h.fms(bigv, bigv, hvRat(rational.One()))
	if !z2.IsZero() {
		t.Errorf("fms(big, big, 1) = %v, want 0", z2.Rat())
	}
	if h.BigOps == 0 {
		t.Error("big-path operation not counted")
	}
	if small.Cmp(widev) >= 0 || widev.Cmp(small) <= 0 || widev.Cmp(bigv) >= 0 {
		t.Error("Cmp ordering across representations is wrong")
	}
}

// TestHstatsKernelOracle drives fms and quo across both overflow
// boundaries (int64 → Wide and Wide → big.Rat) and cross-checks every
// result against big.Rat, asserting all three tier counters move.
func TestHstatsKernelOracle(t *testing.T) {
	mk := func(n, d int64) hval { return hvRat(rational.New(n, d)) }
	wide1 := hvRat(new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 70), big.NewInt(7)))
	big1 := hvRat(new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 140), big.NewInt(11)))
	cases := []hval{
		mk(0, 1), mk(1, 1), mk(-3, 7), mk(5, 2),
		mk(1<<40, 3), mk(-(1 << 40), 9), wide1, big1,
	}
	var h hstats
	ref := func(v hval) *big.Rat { return new(big.Rat).Set(v.Rat()) }
	for _, a := range cases {
		for _, b := range cases {
			for _, c := range cases {
				got := h.fms(a, b, c)
				want := new(big.Rat).Mul(ref(b), ref(c))
				want.Sub(ref(a), want)
				if got.Rat().Cmp(want) != 0 {
					t.Fatalf("fms(%v,%v,%v) = %v, want %v",
						ref(a), ref(b), ref(c), got.Rat(), want)
				}
			}
			if b.IsZero() {
				continue
			}
			got := h.quo(a, b)
			want := new(big.Rat).Quo(ref(a), ref(b))
			if got.Rat().Cmp(want) != 0 {
				t.Fatalf("quo(%v,%v) = %v, want %v", ref(a), ref(b), got.Rat(), want)
			}
		}
	}
	if h.SmallOps == 0 || h.WideOps == 0 || h.BigOps == 0 {
		t.Fatalf("kernel grid missed a tier: small=%d wide=%d big=%d",
			h.SmallOps, h.WideOps, h.BigOps)
	}
}

// luTestSetup builds the n=3 tailored LP's standard form and a
// certified optimal basis for it via the float solver.
func luTestSetup(t *testing.T) (*standardForm, []int) {
	t.Helper()
	s := newStandardForm(tailoredTestLP(3, rational.New(1, 4)))
	basis, _, ok := s.floatCandidateBasis()
	if !ok {
		t.Fatal("float solver failed to produce a basis")
	}
	return s, basis
}

// residualB asserts B·xB = b for the given basis, multiplying the
// original sparse columns directly — an oracle entirely independent
// of the LU representation under test.
func residualB(t *testing.T, s *standardForm, basis []int, xB []hval) {
	t.Helper()
	acc := rational.Vector(s.nrows)
	tmp := new(big.Rat)
	cols := s.columns()
	for k, j := range basis {
		xv := xB[k].Rat()
		for _, e := range cols[j] {
			tmp.Mul(e.v, xv)
			acc[e.idx].Add(acc[e.idx], tmp)
		}
	}
	for i := range acc {
		if acc[i].Cmp(s.b[i]) != 0 {
			t.Fatalf("(B·xB)[%d] = %s, want %s", i, acc[i].RatString(), s.b[i].RatString())
		}
	}
}

// TestSparseLUSolveExact factorizes a serving-shaped basis and checks
// both triangular solves against direct sparse multiplication:
// B·solve(b) = b and Bᵀ·solveTranspose(cB) = cB.
func TestSparseLUSolveExact(t *testing.T) {
	s, basis := luTestSetup(t)
	var h hstats
	lu, ok := s.factorizeSparse(basis, &h)
	if !ok {
		t.Fatal("factorizeSparse reported the float basis singular")
	}
	xB := lu.solve(s.b)
	residualB(t, s, basis, xB)

	cB := make([]hval, s.nrows)
	for k, j := range basis {
		cB[k] = hvRat(s.c[j])
	}
	y := lu.solveTranspose(cB)
	// Bᵀy = cB componentwise: column basis[k] of A dotted with y.
	cols := s.columns()
	tmp := new(big.Rat)
	dot := new(big.Rat)
	for k, j := range basis {
		dot.SetInt64(0)
		for _, e := range cols[j] {
			tmp.Mul(e.v, y[e.idx].Rat())
			dot.Add(dot, tmp)
		}
		if dot.Cmp(cB[k].Rat()) != 0 {
			t.Fatalf("(Bᵀy)[%d] = %s, want %s", k, dot.RatString(), cB[k].Rat().RatString())
		}
	}
	if h.SmallOps == 0 {
		t.Error("factorize+solves never used the Small fast path")
	}
}

// TestSparseLUEtaUpdate replaces one basis column through the
// product-form eta mechanism and checks the updated factorization
// still solves B'·xB = b exactly, for both a column swap and a
// refactorization cross-check.
func TestSparseLUEtaUpdate(t *testing.T) {
	s, basis := luTestSetup(t)
	var h hstats
	lu, ok := s.factorizeSparse(basis, &h)
	if !ok {
		t.Fatal("factorizeSparse failed")
	}
	inBasis := make([]bool, s.ncols)
	for _, j := range basis {
		inBasis[j] = true
	}
	cols := s.columns()
	// Find a nonbasic column and a pivotable position for it.
	enter, leave := -1, -1
	var w []hval
	for j := 0; j < s.ncols && enter < 0; j++ {
		if inBasis[j] || len(cols[j]) == 0 {
			continue
		}
		col := make([]hTerm, 0, len(cols[j]))
		for _, e := range cols[j] {
			col = append(col, hTerm{idx: int32(e.idx), v: hvRat(e.v)})
		}
		cand := lu.ftran(col)
		for p := range cand {
			if !cand[p].IsZero() {
				enter, leave, w = j, p, cand
				break
			}
		}
	}
	if enter < 0 {
		t.Fatal("no eta-updatable column found")
	}
	lu.pushEta(leave, w)
	basis[leave] = enter
	if len(lu.etas) != 1 {
		t.Fatalf("len(etas) = %d, want 1", len(lu.etas))
	}
	xB := lu.solve(s.b)
	residualB(t, s, basis, xB)
	// A fresh factorization of the updated basis must agree entry for
	// entry with the eta-updated solve.
	lu2, ok := s.factorizeSparse(basis, &h)
	if !ok {
		t.Fatal("updated basis reported singular")
	}
	xB2 := lu2.solve(s.b)
	for k := range xB {
		if xB[k].Cmp(xB2[k]) != 0 {
			t.Fatalf("eta solve and refactorized solve disagree at %d: %s vs %s",
				k, xB[k].Rat().RatString(), xB2[k].Rat().RatString())
		}
	}
}

// TestFactorizeSparseSingular hands the factorization a defective
// basis (a repeated column) and requires a clean ok=false.
func TestFactorizeSparseSingular(t *testing.T) {
	s, basis := luTestSetup(t)
	basis[1] = basis[0]
	var h hstats
	if _, ok := s.factorizeSparse(basis, &h); ok {
		t.Fatal("factorizeSparse accepted a repeated-column basis")
	}
}

// TestFindPos pins the binary search used for stale-list filtering.
func TestFindPos(t *testing.T) {
	idx := []int32{2, 3, 5, 9, 14}
	for want, c := range map[int]int32{0: 2, 2: 5, 4: 14} {
		if got := findPos(idx, c); got != want {
			t.Errorf("findPos(%d) = %d, want %d", c, got, want)
		}
	}
	for _, c := range []int32{1, 4, 15} {
		if got := findPos(idx, c); got != -1 {
			t.Errorf("findPos(%d) = %d, want -1", c, got)
		}
	}
	if got := findPos(nil, 3); got != -1 {
		t.Errorf("findPos(nil, 3) = %d, want -1", got)
	}
}

// TestDualRepairMagnitudeRefactor is the refactorization-cadence
// regression test: a long exact dual-repair walk on the degenerate
// n=20 tailored LP must collapse its eta chain on the entry-MAGNITUDE
// trigger (sparseLU.etaBits crossing etaBitBudget), not merely the
// pivot-count backstop. Before magnitude-triggered refactorization,
// exactly this walk was where FTRAN/BTRAN entries outgrew every fast
// tier and big.Rat allocation dominated the n ≥ 20 solves.
//
// The float dual cleanup (floatsimplex.go) now hands the exact side a
// primal-feasible basis on this family, so the test disables it to
// regenerate the dirty perturbed-optimal basis the repair exists for.
func TestDualRepairMagnitudeRefactor(t *testing.T) {
	defer func(old bool) { floatSkipDualCleanup = old }(floatSkipDualCleanup)
	floatSkipDualCleanup = true

	s := newStandardForm(tailoredTestLP(20, rational.New(1, 2)))
	basis, _, ok := s.floatCandidateBasis()
	if !ok {
		t.Fatal("float candidate basis unavailable")
	}
	var h hstats
	lu, ok := s.factorizeSparse(basis, &h)
	if !ok {
		t.Fatal("candidate basis singular")
	}
	xB := lu.solve(s.b)
	hasNeg := false
	for _, v := range xB {
		if v.Sign() < 0 {
			hasNeg = true
			break
		}
	}
	if !hasNeg {
		t.Fatal("perturbed candidate basis already primal feasible; the dirty-basis premise no longer holds")
	}
	cB := make([]hval, s.nrows)
	for k, j := range basis {
		cB[k] = hvRat(s.c[j])
	}
	if s.dualCertificate(basis, lu.solveTranspose(cB), &h) != dualStrict {
		t.Fatal("candidate basis not strictly dual feasible; dual repair premise broken")
	}

	var stats SolveStats
	opts := &SolveOpts{Stats: &stats}
	lu, xB, ok, err := s.solveDualRepair(context.Background(), basis, xB, lu, &h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("dual repair gave up on a strictly-dual-feasible basis")
	}
	_ = lu
	for k, v := range xB {
		if v.Sign() < 0 {
			t.Fatalf("repaired basis still primal infeasible at row %d", k)
		}
	}
	if stats.MagnitudeRefactors < 1 {
		t.Errorf("MagnitudeRefactors = %d, want ≥ 1: the eta-chain magnitude trigger never fired (Refactorizations = %d, RevisedPivots = %d)",
			stats.MagnitudeRefactors, stats.Refactorizations, stats.RevisedPivots)
	}
	if stats.Refactorizations < stats.MagnitudeRefactors {
		t.Errorf("Refactorizations = %d < MagnitudeRefactors = %d; counters inconsistent",
			stats.Refactorizations, stats.MagnitudeRefactors)
	}
}
