package lp

import (
	"math/big"
	"testing"

	"minimaxdp/internal/rational"
)

// TestHvalDemotion pins the hybrid scalar's representation invariant:
// values that fit int64 live on the Small fast path, overflowing
// results demote back to Small whenever they re-fit, and every
// observable (rat, sign, cmp) agrees with the big.Rat view.
func TestHvalDemotion(t *testing.T) {
	small := hvRat(rational.New(22, 7))
	if small.r != nil {
		t.Error("22/7 should sit on the Small path")
	}
	huge := new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 90), big.NewInt(3))
	bigv := hvRat(huge)
	if bigv.r == nil {
		t.Error("2^90/3 should sit on the big path")
	}
	if bigv.rat().Cmp(huge) != 0 {
		t.Errorf("rat() = %v, want %v", bigv.rat(), huge)
	}
	var h hstats
	// (2^90/3) − (2^90/3)·1 == 0: a big-path op whose result re-fits.
	z := h.fms(bigv, bigv, hvRat(rational.One()))
	if z.r != nil {
		t.Error("zero result should demote to the Small path")
	}
	if !z.isZero() || z.sign() != 0 {
		t.Errorf("fms(x, x, 1) = %v, want 0", z.rat())
	}
	if h.big == 0 {
		t.Error("big-path operation not counted")
	}
	if small.cmp(bigv) >= 0 || bigv.cmp(small) <= 0 {
		t.Error("cmp ordering across representations is wrong")
	}
}

// TestHstatsKernelOracle drives fms and quo across the int64 overflow
// boundary and cross-checks every result against big.Rat, asserting
// both counters move.
func TestHstatsKernelOracle(t *testing.T) {
	mk := func(n, d int64) hval { return hvRat(rational.New(n, d)) }
	big1 := hvRat(new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 70), big.NewInt(7)))
	cases := []hval{
		mk(0, 1), mk(1, 1), mk(-3, 7), mk(5, 2),
		mk(1<<40, 3), mk(-(1 << 40), 9), big1,
	}
	var h hstats
	ref := func(v hval) *big.Rat { return new(big.Rat).Set(v.rat()) }
	for _, a := range cases {
		for _, b := range cases {
			for _, c := range cases {
				got := h.fms(a, b, c)
				want := new(big.Rat).Mul(ref(b), ref(c))
				want.Sub(ref(a), want)
				if got.rat().Cmp(want) != 0 {
					t.Fatalf("fms(%v,%v,%v) = %v, want %v",
						ref(a), ref(b), ref(c), got.rat(), want)
				}
			}
			if b.isZero() {
				continue
			}
			got := h.quo(a, b)
			want := new(big.Rat).Quo(ref(a), ref(b))
			if got.rat().Cmp(want) != 0 {
				t.Fatalf("quo(%v,%v) = %v, want %v", ref(a), ref(b), got.rat(), want)
			}
		}
	}
	if h.small == 0 || h.big == 0 {
		t.Fatalf("kernel grid missed a path: small=%d big=%d", h.small, h.big)
	}
}

// luTestSetup builds the n=3 tailored LP's standard form and a
// certified optimal basis for it via the float solver.
func luTestSetup(t *testing.T) (*standardForm, []int) {
	t.Helper()
	s := newStandardForm(tailoredTestLP(3, rational.New(1, 4)))
	basis, _, ok := s.floatCandidateBasis()
	if !ok {
		t.Fatal("float solver failed to produce a basis")
	}
	return s, basis
}

// residualB asserts B·xB = b for the given basis, multiplying the
// original sparse columns directly — an oracle entirely independent
// of the LU representation under test.
func residualB(t *testing.T, s *standardForm, basis []int, xB []hval) {
	t.Helper()
	acc := rational.Vector(s.nrows)
	tmp := new(big.Rat)
	cols := s.columns()
	for k, j := range basis {
		xv := xB[k].rat()
		for _, e := range cols[j] {
			tmp.Mul(e.v, xv)
			acc[e.idx].Add(acc[e.idx], tmp)
		}
	}
	for i := range acc {
		if acc[i].Cmp(s.b[i]) != 0 {
			t.Fatalf("(B·xB)[%d] = %s, want %s", i, acc[i].RatString(), s.b[i].RatString())
		}
	}
}

// TestSparseLUSolveExact factorizes a serving-shaped basis and checks
// both triangular solves against direct sparse multiplication:
// B·solve(b) = b and Bᵀ·solveTranspose(cB) = cB.
func TestSparseLUSolveExact(t *testing.T) {
	s, basis := luTestSetup(t)
	var h hstats
	lu, ok := s.factorizeSparse(basis, &h)
	if !ok {
		t.Fatal("factorizeSparse reported the float basis singular")
	}
	xB := lu.solve(s.b)
	residualB(t, s, basis, xB)

	cB := make([]hval, s.nrows)
	for k, j := range basis {
		cB[k] = hvRat(s.c[j])
	}
	y := lu.solveTranspose(cB)
	// Bᵀy = cB componentwise: column basis[k] of A dotted with y.
	cols := s.columns()
	tmp := new(big.Rat)
	dot := new(big.Rat)
	for k, j := range basis {
		dot.SetInt64(0)
		for _, e := range cols[j] {
			tmp.Mul(e.v, y[e.idx].rat())
			dot.Add(dot, tmp)
		}
		if dot.Cmp(cB[k].rat()) != 0 {
			t.Fatalf("(Bᵀy)[%d] = %s, want %s", k, dot.RatString(), cB[k].rat().RatString())
		}
	}
	if h.small == 0 {
		t.Error("factorize+solves never used the Small fast path")
	}
}

// TestSparseLUEtaUpdate replaces one basis column through the
// product-form eta mechanism and checks the updated factorization
// still solves B'·xB = b exactly, for both a column swap and a
// refactorization cross-check.
func TestSparseLUEtaUpdate(t *testing.T) {
	s, basis := luTestSetup(t)
	var h hstats
	lu, ok := s.factorizeSparse(basis, &h)
	if !ok {
		t.Fatal("factorizeSparse failed")
	}
	inBasis := make([]bool, s.ncols)
	for _, j := range basis {
		inBasis[j] = true
	}
	cols := s.columns()
	// Find a nonbasic column and a pivotable position for it.
	enter, leave := -1, -1
	var w []hval
	for j := 0; j < s.ncols && enter < 0; j++ {
		if inBasis[j] || len(cols[j]) == 0 {
			continue
		}
		col := make([]hTerm, 0, len(cols[j]))
		for _, e := range cols[j] {
			col = append(col, hTerm{idx: int32(e.idx), v: hvRat(e.v)})
		}
		cand := lu.ftran(col)
		for p := range cand {
			if !cand[p].isZero() {
				enter, leave, w = j, p, cand
				break
			}
		}
	}
	if enter < 0 {
		t.Fatal("no eta-updatable column found")
	}
	lu.pushEta(leave, w)
	basis[leave] = enter
	if len(lu.etas) != 1 {
		t.Fatalf("len(etas) = %d, want 1", len(lu.etas))
	}
	xB := lu.solve(s.b)
	residualB(t, s, basis, xB)
	// A fresh factorization of the updated basis must agree entry for
	// entry with the eta-updated solve.
	lu2, ok := s.factorizeSparse(basis, &h)
	if !ok {
		t.Fatal("updated basis reported singular")
	}
	xB2 := lu2.solve(s.b)
	for k := range xB {
		if xB[k].cmp(xB2[k]) != 0 {
			t.Fatalf("eta solve and refactorized solve disagree at %d: %s vs %s",
				k, xB[k].rat().RatString(), xB2[k].rat().RatString())
		}
	}
}

// TestFactorizeSparseSingular hands the factorization a defective
// basis (a repeated column) and requires a clean ok=false.
func TestFactorizeSparseSingular(t *testing.T) {
	s, basis := luTestSetup(t)
	basis[1] = basis[0]
	var h hstats
	if _, ok := s.factorizeSparse(basis, &h); ok {
		t.Fatal("factorizeSparse accepted a repeated-column basis")
	}
}

// TestFindPos pins the binary search used for stale-list filtering.
func TestFindPos(t *testing.T) {
	idx := []int32{2, 3, 5, 9, 14}
	for want, c := range map[int]int32{0: 2, 2: 5, 4: 14} {
		if got := findPos(idx, c); got != want {
			t.Errorf("findPos(%d) = %d, want %d", c, got, want)
		}
	}
	for _, c := range []int32{1, 4, 15} {
		if got := findPos(idx, c); got != -1 {
			t.Errorf("findPos(%d) = %d, want -1", c, got)
		}
	}
	if got := findPos(nil, 3); got != -1 {
		t.Errorf("findPos(nil, 3) = %d, want -1", got)
	}
}
