package lp

import (
	"errors"
	"fmt"
	"math/big"

	"minimaxdp/internal/rational"
)

// Dual constructs the linear-programming dual of a minimization
// problem in the standard correspondence:
//
//	primal: min cᵀx    s.t.  aᵢᵀx ≥ bᵢ (yᵢ ≥ 0)
//	                          aᵢᵀx ≤ bᵢ (yᵢ ≤ 0, modelled as −z, z ≥ 0)
//	                          aᵢᵀx = bᵢ (yᵢ free)
//	                          xⱼ ≥ 0 or free
//	dual:   max bᵀy    s.t.  Σᵢ yᵢ·aᵢⱼ ≤ cⱼ  for xⱼ ≥ 0
//	                          Σᵢ yᵢ·aᵢⱼ = cⱼ  for xⱼ free
//
// Together with exact arithmetic this yields a strong-duality
// certificate: solving both problems and checking that the optima are
// *equal rationals* proves optimality of both solutions independently
// of any property of the simplex implementation. DualValue maps a
// dual solution back to per-primal-constraint prices.
func (p *Problem) Dual() (*Problem, error) {
	if p.sense != Minimize {
		return nil, errors.New("lp: Dual is defined here for minimization problems; negate the objective first")
	}
	if len(p.cons) == 0 {
		return nil, errors.New("lp: cannot dualize a problem with no constraints")
	}
	d := NewProblem(Maximize)
	// One dual variable per primal constraint.
	dv := make([]Var, len(p.cons))
	const (
		signPos = iota // yᵢ ≥ 0
		signNeg        // yᵢ ≤ 0 via −z substitution
		signFree
	)
	sign := make([]int, len(p.cons))
	for i, con := range p.cons {
		switch con.op {
		case GE:
			dv[i] = d.NewVariable(fmt.Sprintf("y%d", i))
			sign[i] = signPos
		case LE:
			// y ≤ 0 modelled as −z with z ≥ 0.
			dv[i] = d.NewVariable(fmt.Sprintf("z%d", i))
			sign[i] = signNeg
		case EQ:
			dv[i] = d.FreeVariable(fmt.Sprintf("y%d", i))
			sign[i] = signFree
		}
	}
	// Objective: max Σ bᵢ·yᵢ (with the −z substitution for LE rows).
	var obj []Term
	for i, con := range p.cons {
		coef := rational.Clone(con.rhs)
		if sign[i] == signNeg {
			coef.Neg(coef)
		}
		if coef.Sign() != 0 {
			obj = append(obj, T(dv[i], coef))
		}
	}
	d.SetObjective(obj...)
	// Constraints: one per primal variable. Accumulate columns.
	cols := make([]map[int]*big.Rat, len(p.vars))
	for i, con := range p.cons {
		for _, t := range con.terms {
			j := int(t.Var)
			if cols[j] == nil {
				cols[j] = make(map[int]*big.Rat)
			}
			if cols[j][i] == nil {
				cols[j][i] = rational.Zero()
			}
			cols[j][i].Add(cols[j][i], t.Coeff)
		}
	}
	for j := range p.vars {
		var terms []Term
		for i, cell := range cols[j] {
			coef := rational.Clone(cell)
			if sign[i] == signNeg {
				coef.Neg(coef)
			}
			if coef.Sign() != 0 {
				terms = append(terms, T(dv[i], coef))
			}
		}
		op := LE
		if p.vars[j].free {
			op = EQ
		}
		if len(terms) == 0 {
			// Empty column: constraint is 0 {≤,=} cⱼ; check
			// consistency eagerly so callers get a clear error.
			cj := p.objective[j]
			if (op == LE && cj.Sign() < 0) || (op == EQ && cj.Sign() != 0) {
				return nil, fmt.Errorf("lp: dual infeasible by construction at variable %s", p.vars[j].name)
			}
			continue
		}
		d.AddConstraint(terms, op, p.objective[j])
	}
	return d, nil
}

// DualPrices maps a dual solution (from solving p.Dual()) back to one
// price per primal constraint, undoing the −z substitution on ≤ rows.
func (p *Problem) DualPrices(dualSol *Solution) ([]*big.Rat, error) {
	if dualSol.Status != Optimal {
		return nil, fmt.Errorf("lp: dual solution status %v", dualSol.Status)
	}
	if len(dualSol.X) != len(p.cons) {
		return nil, fmt.Errorf("lp: dual solution has %d values for %d constraints", len(dualSol.X), len(p.cons))
	}
	out := make([]*big.Rat, len(p.cons))
	for i, con := range p.cons {
		v := rational.Clone(dualSol.X[i])
		if con.op == LE {
			v.Neg(v)
		}
		out[i] = v
	}
	return out, nil
}
