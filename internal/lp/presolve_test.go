package lp

import (
	"context"
	"fmt"
	"testing"

	"minimaxdp/internal/rational"
)

// presolveCase is one hand-built LP exercising a specific reduction.
type presolveCase struct {
	name  string
	build func() *Problem
	// minimum reductions the presolver must report
	minRows, minCols int
	wantStatus       Status
	wantDemoted      bool // tied optimum: presolved path must demote to Fallback
}

func presolveCases() []presolveCase {
	return []presolveCase{
		{
			name: "empty-row-drops",
			build: func() *Problem {
				p := NewProblem(Minimize)
				x := p.NewVariable("x")
				p.SetObjective(TInt(x, 1))
				p.AddConstraint([]Term{TInt(x, 0)}, LE, rational.One()) // 0 ≤ 1
				p.AddConstraint([]Term{TInt(x, 1)}, GE, rational.Int(2))
				return p
			},
			minRows: 2, wantStatus: Optimal, // empty row + shifted bound row
		},
		{
			name: "empty-row-infeasible",
			build: func() *Problem {
				p := NewProblem(Minimize)
				x := p.NewVariable("x")
				p.SetObjective(TInt(x, 1))
				p.AddConstraint([]Term{TInt(x, 0)}, GE, rational.Int(3)) // 0 ≥ 3
				return p
			},
			wantStatus: Infeasible,
		},
		{
			name: "non-binding-row-drops",
			build: func() *Problem {
				p := NewProblem(Minimize)
				x := p.NewVariable("x")
				y := p.NewVariable("y")
				p.SetObjective(TInt(x, 1), TInt(y, 2))
				p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1)}, GE, rational.Int(-1)) // activity ≥ 0
				p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1)}, GE, rational.Int(4))
				return p
			},
			minRows: 1, wantStatus: Optimal,
		},
		{
			name: "forcing-row-fixes-all",
			build: func() *Problem {
				p := NewProblem(Maximize)
				x := p.NewVariable("x")
				y := p.NewVariable("y")
				z := p.NewVariable("z")
				p.SetObjective(TInt(x, 1), TInt(y, 1), TInt(z, 1))
				p.AddConstraint([]Term{TInt(x, 1), TInt(y, 2)}, LE, rational.Zero()) // forces x=y=0
				p.AddConstraint([]Term{TInt(z, 1)}, LE, rational.Int(5))
				return p
			},
			minRows: 1, minCols: 2, wantStatus: Optimal,
		},
		{
			name: "singleton-eq-fixes",
			build: func() *Problem {
				p := NewProblem(Minimize)
				x := p.NewVariable("x")
				y := p.NewVariable("y")
				p.SetObjective(TInt(x, 1), TInt(y, 3))
				p.AddConstraint([]Term{TInt(x, 2)}, EQ, rational.Int(4)) // x = 2
				p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1)}, GE, rational.Int(3))
				return p
			},
			minRows: 1, minCols: 1, wantStatus: Optimal,
		},
		{
			name: "singleton-eq-negative-infeasible",
			build: func() *Problem {
				p := NewProblem(Minimize)
				x := p.NewVariable("x")
				p.SetObjective(TInt(x, 1))
				p.AddConstraint([]Term{TInt(x, 2)}, EQ, rational.Int(-4))
				return p
			},
			wantStatus: Infeasible,
		},
		{
			name: "singleton-ge-shifts",
			build: func() *Problem {
				p := NewProblem(Minimize)
				x := p.NewVariable("x")
				y := p.NewVariable("y")
				p.SetObjective(TInt(x, 2), TInt(y, 1))
				p.AddConstraint([]Term{TInt(x, 1)}, GE, rational.Int(3)) // x = x' + 3
				p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1)}, GE, rational.Int(5))
				return p
			},
			minRows: 1, wantStatus: Optimal,
		},
		{
			name: "singleton-le-zero-fixes",
			build: func() *Problem {
				p := NewProblem(Minimize)
				x := p.NewVariable("x")
				y := p.NewVariable("y")
				p.SetObjective(TInt(x, -1), TInt(y, 1))
				p.AddConstraint([]Term{TInt(x, 3)}, LE, rational.Zero()) // x = 0
				p.AddConstraint([]Term{TInt(y, 1)}, GE, rational.One())
				return p
			},
			minRows: 1, minCols: 1, wantStatus: Optimal,
		},
		{
			name: "singleton-le-negative-infeasible",
			build: func() *Problem {
				p := NewProblem(Minimize)
				x := p.NewVariable("x")
				p.SetObjective(TInt(x, 1))
				p.AddConstraint([]Term{TInt(x, 1)}, LE, rational.Int(-1))
				return p
			},
			wantStatus: Infeasible,
		},
		{
			name: "empty-column-fixes-at-zero",
			build: func() *Problem {
				p := NewProblem(Minimize)
				x := p.NewVariable("x")
				u := p.NewVariable("unused") // positive cost, no rows
				p.SetObjective(TInt(x, 1), TInt(u, 7))
				p.AddConstraint([]Term{TInt(x, 1)}, GE, rational.Int(2))
				return p
			},
			minCols: 1, wantStatus: Optimal,
		},
		{
			name: "empty-column-unbounded",
			build: func() *Problem {
				p := NewProblem(Minimize)
				x := p.NewVariable("x")
				u := p.NewVariable("ray") // negative cost, no rows: improving ray
				p.SetObjective(TInt(x, 1), TInt(u, -1))
				p.AddConstraint([]Term{TInt(x, 1)}, GE, rational.Int(2))
				return p
			},
			wantStatus: Unbounded,
		},
		{
			name: "infeasibility-beats-unbounded-ray",
			build: func() *Problem {
				p := NewProblem(Minimize)
				x := p.NewVariable("x")
				u := p.NewVariable("ray")
				p.SetObjective(TInt(x, 1), TInt(u, -1))
				p.AddConstraint([]Term{TInt(x, 1)}, GE, rational.Int(2))
				p.AddConstraint([]Term{TInt(x, 1), TInt(x, 1)}, LE, rational.Int(2)) // 2x ≤ 2
				return p
			},
			wantStatus: Infeasible,
		},
		{
			name: "free-singleton-eq-substitutes",
			build: func() *Problem {
				p := NewProblem(Minimize)
				f := p.FreeVariable("f")
				x := p.NewVariable("x")
				p.SetObjective(TInt(f, 2), TInt(x, 1))
				p.AddConstraint([]Term{TInt(f, 1), TInt(x, 1)}, EQ, rational.Int(5)) // f = 5 − x
				p.AddConstraint([]Term{TInt(x, 1)}, LE, rational.Int(3))
				return p
			},
			minRows: 1, minCols: 1, wantStatus: Optimal,
		},
		{
			name: "implied-slack-relaxes-equation",
			build: func() *Problem {
				p := NewProblem(Maximize)
				x := p.NewVariable("x")
				y := p.NewVariable("y")
				s := p.NewVariable("s") // zero cost, only in the equation: a slack
				p.SetObjective(TInt(x, 2), TInt(y, 1))
				p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1), TInt(s, 1)}, EQ, rational.Int(4))
				return p
			},
			minCols: 1, wantStatus: Optimal,
		},
		{
			name: "tied-optimum-demotes-to-fallback",
			build: func() *Problem {
				p := NewProblem(Maximize)
				x := p.NewVariable("x")
				y := p.NewVariable("y")
				s := p.NewVariable("s")
				p.SetObjective(TInt(x, 1), TInt(y, 1)) // x+y ≤ 4: a tied face
				p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1), TInt(s, 1)}, EQ, rational.Int(4))
				return p
			},
			minCols: 1, wantStatus: Optimal, wantDemoted: true,
		},
	}
}

// TestPresolveReductions runs every reduction case through both
// strategies, demanding byte-identical results, the expected status,
// and that the presolver actually performed (at least) the advertised
// reductions.
func TestPresolveReductions(t *testing.T) {
	for _, tc := range presolveCases() {
		t.Run(tc.name, func(t *testing.T) {
			var stats SolveStats
			exact, warm := solveBoth(t, tc.build(), &stats)
			assertIdentical(t, exact, warm)
			if warm.Status != tc.wantStatus {
				t.Fatalf("status = %v, want %v", warm.Status, tc.wantStatus)
			}
			if stats.PresolveRows < tc.minRows {
				t.Errorf("PresolveRows = %d, want ≥ %d", stats.PresolveRows, tc.minRows)
			}
			if stats.PresolveCols < tc.minCols {
				t.Errorf("PresolveCols = %d, want ≥ %d", stats.PresolveCols, tc.minCols)
			}
			if tc.wantDemoted && !stats.Fallback {
				t.Errorf("tied optimum should demote to the fallback path, got %+v", stats)
			}
		})
	}
}

// TestPresolveNoPresolveKnob asserts the opt-out really skips the
// reductions and still produces the identical answer.
func TestPresolveNoPresolveKnob(t *testing.T) {
	build := func() *Problem {
		p := NewProblem(Minimize)
		x := p.NewVariable("x")
		y := p.NewVariable("y")
		p.SetObjective(TInt(x, 1), TInt(y, 3))
		p.AddConstraint([]Term{TInt(x, 2)}, EQ, rational.Int(4))
		p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1)}, GE, rational.Int(3))
		return p
	}
	var on, off SolveStats
	with, err := build().SolveWithOpts(context.Background(), SolveOpts{Stats: &on})
	if err != nil {
		t.Fatal(err)
	}
	without, err := build().SolveWithOpts(context.Background(), SolveOpts{NoPresolve: true, Stats: &off})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, with, without)
	if on.PresolveRows == 0 && on.PresolveCols == 0 {
		t.Error("presolve fired nothing on a reducible problem")
	}
	if off.PresolveRows != 0 || off.PresolveCols != 0 {
		t.Errorf("NoPresolve still reduced: %+v", off)
	}
}

// TestPresolvePostsolveStrongDuality is the property test required of
// the postsolve: the reconstructed solution must satisfy the original
// problem exactly (Verify) and its objective must equal the optimum
// of the original problem's dual — the strong-duality certificate,
// computed entirely on the *unreduced* LP.
func TestPresolvePostsolveStrongDuality(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Problem
	}{
		{"free-singleton-eq", func() *Problem {
			p := NewProblem(Minimize)
			f := p.FreeVariable("f")
			x := p.NewVariable("x")
			p.SetObjective(TInt(f, 2), TInt(x, 1))
			p.AddConstraint([]Term{TInt(f, 1), TInt(x, 1)}, EQ, rational.Int(5))
			p.AddConstraint([]Term{TInt(x, 1)}, LE, rational.Int(3))
			return p
		}},
		{"implied-slack", func() *Problem {
			p := NewProblem(Minimize)
			x := p.NewVariable("x")
			y := p.NewVariable("y")
			s := p.NewVariable("s")
			p.SetObjective(TInt(x, -2), TInt(y, -1))
			p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1), TInt(s, 1)}, EQ, rational.Int(4))
			return p
		}},
		{"shift-and-fix", func() *Problem {
			p := NewProblem(Minimize)
			x := p.NewVariable("x")
			y := p.NewVariable("y")
			z := p.NewVariable("z")
			p.SetObjective(TInt(x, 2), TInt(y, 1), TInt(z, 5))
			p.AddConstraint([]Term{TInt(x, 1)}, GE, rational.Int(3))
			p.AddConstraint([]Term{TInt(z, 1)}, EQ, rational.Int(2))
			p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1)}, GE, rational.Int(5))
			return p
		}},
		{"tailored-n3", func() *Problem { return tailoredTestLP(3, rational.New(1, 4)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.build()
			sol, err := p.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != Optimal {
				t.Fatalf("status = %v", sol.Status)
			}
			if err := sol.Verify(p); err != nil {
				t.Fatalf("postsolved solution fails Verify on the original LP: %v", err)
			}
			dual, err := p.Dual()
			if err != nil {
				t.Fatalf("dual: %v", err)
			}
			dsol, err := dual.Solve()
			if err != nil {
				t.Fatalf("dual solve: %v", err)
			}
			if dsol.Status != Optimal {
				t.Fatalf("dual status = %v", dsol.Status)
			}
			if sol.Objective.Cmp(dsol.Objective) != 0 {
				t.Fatalf("strong duality violated: primal %s, dual %s",
					sol.Objective.RatString(), dsol.Objective.RatString())
			}
		})
	}
}

// TestPresolveAllVariablesEliminated covers the path where presolve
// alone determines every variable and no reduced solve runs.
func TestPresolveAllVariablesEliminated(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.NewVariable("x")
	y := p.NewVariable("y")
	p.SetObjective(TInt(x, 3), TInt(y, -2))
	p.AddConstraint([]Term{TInt(x, 2)}, EQ, rational.Int(6))
	p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1)}, EQ, rational.Int(3)) // after x=3: y=0
	var stats SolveStats
	sol, err := p.SolveWithOpts(context.Background(), SolveOpts{Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if got := sol.Value(x); got.Cmp(rational.Int(3)) != 0 {
		t.Errorf("x = %s, want 3", got.RatString())
	}
	if got := sol.Value(y); got.Sign() != 0 {
		t.Errorf("y = %s, want 0", got.RatString())
	}
	if sol.Objective.Cmp(rational.Int(9)) != 0 {
		t.Errorf("objective = %s, want 9", sol.Objective.RatString())
	}
	if stats.PresolveCols != 2 {
		t.Errorf("PresolveCols = %d, want 2", stats.PresolveCols)
	}
	if stats.FloatPivots != 0 || stats.ExactPivots != 0 || stats.RevisedPivots != 0 {
		t.Errorf("fully-presolved LP still ran the solver: %+v", stats)
	}
	if err := sol.Verify(p); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// FuzzPresolveMatchesDense decodes deliberately sparse LPs — rows with
// few nonzeros, so empty rows, singletons, and empty columns abound —
// and asserts the presolve+revised pipeline is byte-identical to the
// pure dense two-phase oracle, and that Optimal solutions verify
// against the original problem. The committed corpus under
// testdata/fuzz includes tied-optimum and degenerate seeds.
func FuzzPresolveMatchesDense(f *testing.F) {
	// nv, nc, then per constraint: per var a sparse coefficient nibble,
	// an operator, an rhs. A spread of shapes incl. ties/degeneracy.
	f.Add([]byte{2, 1, 9, 9, 0, 4, 251, 251})       // x+y ≤ 4, max x+y: tied edge
	f.Add([]byte{3, 2, 9, 0, 0, 2, 0, 9, 9, 0, 4})  // singleton + pair
	f.Add([]byte{1, 1, 0, 1, 3, 5})                 // empty row
	f.Add([]byte{4, 3, 9, 1, 0, 0, 2, 8, 0, 9, 10}) // mixed ops
	f.Add([]byte{2, 2, 9, 10, 1, 0, 10, 9, 2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := fuzzSparseProblem(data)
		if p == nil {
			t.Skip()
		}
		exact, errExact := p.SolveWithOpts(context.Background(), SolveOpts{Strategy: StrategyExact})
		var stats SolveStats
		warm, errWarm := p.SolveWithOpts(context.Background(), SolveOpts{Stats: &stats})
		if (errExact == nil) != (errWarm == nil) {
			t.Fatalf("error mismatch: exact %v, warm %v", errExact, errWarm)
		}
		if errExact != nil {
			return
		}
		if exact.Status != warm.Status {
			t.Fatalf("status: exact %v, presolved %v (stats %+v)", exact.Status, warm.Status, stats)
		}
		if exact.Status != Optimal {
			return
		}
		if exact.Objective.Cmp(warm.Objective) != 0 {
			t.Fatalf("objective: exact %s, presolved %s",
				exact.Objective.RatString(), warm.Objective.RatString())
		}
		for i := range exact.X {
			if exact.X[i].Cmp(warm.X[i]) != 0 {
				t.Fatalf("X[%d]: exact %s, presolved %s (stats %+v)",
					i, exact.X[i].RatString(), warm.X[i].RatString(), stats)
			}
		}
		if err := warm.Verify(p); err != nil {
			t.Fatalf("postsolved solution fails Verify: %v", err)
		}
	})
}

// fuzzSparseProblem decodes an LP whose rows are mostly sparse:
// coefficient bytes map to zero more than half the time, free
// variables and all three operators occur, and costs take both signs.
func fuzzSparseProblem(data []byte) *Problem {
	if len(data) < 2 {
		return nil
	}
	nv := 1 + int(data[0]%5)
	nc := 1 + int(data[1]%5)
	idx := 2
	next := func() byte {
		if idx < len(data) {
			b := data[idx]
			idx++
			return b
		}
		return 0
	}
	p := NewProblem(Minimize)
	vars := make([]Var, nv)
	for i := range vars {
		if next()%7 == 0 {
			vars[i] = p.FreeVariable(fmt.Sprintf("f%d", i))
		} else {
			vars[i] = p.NewVariable(fmt.Sprintf("v%d", i))
		}
		p.SetObjectiveCoeff(vars[i], rational.Int(int64(next()%9)-4))
	}
	for c := 0; c < nc; c++ {
		var terms []Term
		for i := range vars {
			// 0..4 → zero (sparse), 5..12 → −4..3 skipping 0
			b := next() % 13
			if b < 5 {
				continue
			}
			coeff := int64(b) - 9
			if coeff >= 0 {
				coeff++
			}
			terms = append(terms, TInt(vars[i], coeff))
		}
		op := Op(next() % 3)
		rhs := rational.Int(int64(next()%11) - 4)
		// A termless constraint is a legitimate empty row.
		p.AddConstraint(terms, op, rhs)
	}
	return p
}
