// Revised simplex over a sparse exact LU factorization.
//
// This file supplies the two pieces that turned the warm-start
// crossover from "cheaper than a cold solve" into "microseconds":
//
//   - sparseLU, an exact PBQ = LU factorization of the basis columns
//     that eliminates in fill-minimizing order (singleton columns
//     first — the mechanism LPs' slack columns make most of the basis
//     triangular for free) and stores only nonzeros. It replaces the
//     dense m³/3 factorization warmstart.go used to build.
//
//   - solveRevised, a revised primal simplex that resumes exact
//     phase-2 pivoting from a certified-feasible basis using
//     BTRAN/FTRAN against the factorization plus product-form eta
//     updates, instead of rebuilding and pivoting a dense tableau.
//
// Every scalar is an hval (= rational.Hval): the three-tier ladder
// Small → Wide → big.Rat of overflow-*checked* fixed-width rationals.
// Arithmetic runs on the int64 Small tier while operands fit — on the
// paper's LPs the basis entries start tiny — climbs to the two-word
// Wide tier when eta-chain entry growth outruns int64 (the dominant
// regime of the large-n dual-repair pivots), and only values past 128
// bits pay big.Rat allocation, re-entering the fast tiers as soon as
// a result fits again. The fallback is exact, never approximate: the
// ladder changes the representation of a value, never the value. All
// raw fixed-width arithmetic stays inside internal/rational's checked
// kernels; the ratoverflow analyzer's scope covers this package to
// keep it that way.
//
// Identity with the dense solver is certified, not assumed: the
// revised path returns a Solution only when the final basis passes
// the same strict (uniqueness) dual certificate as a warm-start hit.
// A tied optimum falls back to the full-tableau solver, which remains
// the oracle (FuzzPresolveMatchesDense, FuzzWarmStartMatchesExact).
package lp

import (
	"context"
	"math/big"

	"minimaxdp/internal/rational"
)

// hval is the hybrid exact rational scalar of the revised-simplex
// kernels: rational.Hval, the three-tier Small → Wide → big.Rat
// ladder (see internal/rational/hybrid.go — it moved there so the
// matrix and mechanism hot loops share it). hvals are immutable;
// aliasing a shared *big.Rat (e.g. a standardForm matrix entry) into
// the big tier is safe.
type hval = rational.Hval

// hvRat wraps v on the narrowest tier it fits.
func hvRat(v *big.Rat) hval { return rational.HvalFromRat(v) }

// hstats accumulates the per-solve tier counters; fold maps them into
// SolveStats at solve exit.
type hstats struct {
	rational.HybridStats
}

func (h *hstats) fold(stats *SolveStats) {
	if stats != nil {
		//dpvet:ignore ratoverflow telemetry counter, not rational arithmetic; wraparound would skew stats, never results
		stats.SmallOps += int64(h.SmallOps)
		//dpvet:ignore ratoverflow telemetry counter, as above
		stats.WideOps += int64(h.WideOps)
		//dpvet:ignore ratoverflow telemetry counter, as above
		stats.BigFallbacks += int64(h.BigOps)
	}
}

// fms returns a − b·c.
func (h *hstats) fms(a, b, c hval) hval { return h.FMS(a, b, c) }

// quo returns a/b for b != 0.
func (h *hstats) quo(a, b hval) hval { return h.Quo(a, b) }

// --- sparse LU ------------------------------------------------------------

// hTerm is one nonzero of a sparse hval vector.
type hTerm struct {
	idx int32
	v   hval
}

// eta is one product-form basis update: basis position p was replaced
// by a column whose FTRAN image w had pivot element wp and the listed
// off-pivot nonzeros.
type eta struct {
	p  int32
	w  []hTerm // nonzeros of w excluding position p
	wp hval
}

// sparseLU is an exact PBQ = LU factorization of the m×m basis-column
// matrix (rows = constraint rows, columns = basis positions), stored
// as per-elimination-step sparse rows, plus a stack of eta updates
// applied by the revised simplex since the last refactorization.
type sparseLU struct {
	m       int
	h       *hstats
	rowPerm []int32   // step -> original row eliminated there
	colPerm []int32   // step -> basis position eliminated there
	rowStep []int32   // original row -> step
	colStep []int32   // basis position -> step
	uIdx    [][]int32 // per step: U-row basis positions (pivot excluded)
	uVal    [][]hval
	diag    []hval    // per step: the pivot value
	lRow    [][]int32 // per step: original rows receiving a multiplier
	lVal    [][]hval

	etas []eta
	// etaBits integrates entry growth across the eta chain: the sum,
	// over pushed etas, of the widest entry's bit length. FTRAN/BTRAN
	// cost scales with both the number of etas and how wide their
	// entries are, so the refactorization trigger watches this measure
	// rather than a bare pivot count (needsRefactor).
	etaBits int
}

// findPos binary-searches the sorted position list for c.
func findPos(idx []int32, c int32) int {
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if idx[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(idx) && idx[lo] == c {
		return lo
	}
	return -1
}

// factorizeSparse LU-factorizes the basis columns in a
// fill-minimizing elimination order: singleton columns are retired
// first (they cost nothing — no other row holds the pivot column),
// then Markowitz selection picks the (row, column) pair minimizing
// the fill bound (rowcount−1)·(colcount−1) over a bounded candidate
// list of sparsest columns. Over exact rationals any nonzero pivot is
// numerically valid, so the ordering is purely a sparsity choice —
// and sparsity is what bounds entry growth: every fill-in is a fresh
// fms product, and fill compounds through later steps and the eta
// chains built on top of the factors. ok=false reports a singular
// basis.
func (s *standardForm) factorizeSparse(basis []int, h *hstats) (*sparseLU, bool) {
	m := s.nrows
	if len(basis) != m {
		return nil, false
	}
	cols := s.columns()
	// Active matrix, row-wise: basis positions (sorted) and values.
	// A counting pass sizes every per-row list exactly — the appends
	// below never reallocate, which matters because factorization is
	// on the per-solve hot path (and, with dual repair, re-runs every
	// time needsRefactor fires).
	rowNNZ := make([]int32, m)
	for _, j := range basis {
		for _, e := range cols[j] {
			rowNNZ[e.idx]++
		}
	}
	rows := make([][]int32, m)
	vals := make([][]hval, m)
	for i, c := range rowNNZ {
		rows[i] = make([]int32, 0, c)
		vals[i] = make([]hval, 0, c)
	}
	for k, j := range basis {
		for _, e := range cols[j] {
			rows[e.idx] = append(rows[e.idx], int32(k))
			vals[e.idx] = append(vals[e.idx], hvRat(e.v))
		}
	}
	colCount := make([]int32, m)
	colRows := make([][]int32, m) // membership lists; may go stale, filtered on use
	for _, r := range rows {
		for _, c := range r {
			colCount[c]++
		}
	}
	for c, n := range colCount {
		colRows[c] = make([]int32, 0, n)
	}
	for i, r := range rows {
		for _, c := range r {
			colRows[c] = append(colRows[c], int32(i))
		}
	}
	rowAlive := make([]bool, m)
	colAlive := make([]bool, m)
	singles := make([]int32, 0, m) // stack of candidate singleton columns
	for c := 0; c < m; c++ {
		rowAlive[c] = true
		colAlive[c] = true
		if colCount[c] == 1 {
			singles = append(singles, int32(c))
		}
	}

	f := &sparseLU{
		m:       m,
		h:       h,
		rowPerm: make([]int32, m),
		colPerm: make([]int32, m),
		rowStep: make([]int32, m),
		colStep: make([]int32, m),
		uIdx:    make([][]int32, m),
		uVal:    make([][]hval, m),
		diag:    make([]hval, m),
		lRow:    make([][]int32, m),
		lVal:    make([][]hval, m),
	}

	for step := 0; step < m; step++ {
		// Pick the pivot: a singleton column if one is queued (Markowitz
		// score 0 — the elimination touches no other row), else the
		// (row, column) pair minimizing the Markowitz fill bound
		// (rowcount−1)·(colcount−1) over a bounded candidate list of
		// the sparsest alive columns. Bounding the list keeps selection
		// linear per step instead of scanning every (row, column) pair;
		// the minimum essentially always lives among the sparsest
		// columns, and a miss costs only a slightly worse ordering,
		// never correctness.
		pc, pr := int32(-1), int32(-1)
		for len(singles) > 0 {
			c := singles[len(singles)-1]
			singles = singles[:len(singles)-1]
			if colAlive[c] && colCount[c] == 1 {
				pc = c
				break
			}
		}
		if pc >= 0 {
			// The unique alive row holding the singleton column.
			for _, ri := range colRows[pc] {
				if rowAlive[ri] && findPos(rows[ri], pc) >= 0 {
					pr = ri
					break
				}
			}
		} else {
			const markowitzCandidates = 4
			var cand [markowitzCandidates]int32
			ncand := 0
			for c := 0; c < m; c++ {
				if !colAlive[c] {
					continue
				}
				if colCount[c] == 0 {
					return nil, false // structurally singular
				}
				// Insert c into the count-sorted candidate list (stable:
				// ties keep the smaller column index first).
				pos := ncand
				for pos > 0 && colCount[cand[pos-1]] > colCount[c] {
					pos--
				}
				if pos >= markowitzCandidates {
					continue
				}
				if ncand < markowitzCandidates {
					ncand++
				}
				for i := ncand - 1; i > pos; i-- {
					cand[i] = cand[i-1]
				}
				cand[pos] = int32(c)
			}
			bestScore, bestLen := -1, 0
			for k := 0; k < ncand && bestScore != 0; k++ {
				c := cand[k]
				cc := int(colCount[c]) - 1
				for _, ri := range colRows[c] {
					if !rowAlive[ri] || findPos(rows[ri], c) < 0 {
						continue // stale membership
					}
					rl := len(rows[ri])
					score := (rl - 1) * cc
					better := bestScore < 0 || score < bestScore
					if !better && score == bestScore {
						// Deterministic tie-breaks: sparser row, then
						// smaller column index, then smaller row index.
						better = rl < bestLen ||
							(rl == bestLen && (c < pc || (c == pc && ri < pr)))
					}
					if better {
						pc, pr = c, ri
						bestScore, bestLen = score, rl
					}
				}
			}
		}
		if pc < 0 || pr < 0 {
			return nil, false
		}
		pp := findPos(rows[pr], pc)
		piv := vals[pr][pp]
		// Eliminate pc from every other alive row holding it by a
		// sorted merge against the pivot row.
		var lr []int32
		var lv []hval
		for _, ri := range colRows[pc] {
			i := int(ri)
			if !rowAlive[i] || ri == pr {
				continue
			}
			pos := findPos(rows[i], pc)
			if pos < 0 {
				continue // stale membership (entry canceled earlier)
			}
			l := h.quo(vals[i][pos], piv)
			lr = append(lr, ri)
			lv = append(lv, l)
			ni := make([]int32, 0, len(rows[i])+len(rows[pr]))
			nv := make([]hval, 0, len(rows[i])+len(rows[pr]))
			a, b := 0, 0
			ridx, rval := rows[i], vals[i]
			for a < len(ridx) || b < len(rows[pr]) {
				var ca, cb int32 = 1 << 30, 1 << 30
				if a < len(ridx) {
					ca = ridx[a]
				}
				if b < len(rows[pr]) {
					cb = rows[pr][b]
				}
				switch {
				case ca == pc:
					a++ // the pivot-column entry is eliminated by construction
				case cb == pc:
					b++
				case ca < cb:
					ni = append(ni, ca)
					nv = append(nv, rval[a])
					a++
				case cb < ca:
					// Fill-in: 0 − l·pivot entry.
					v := h.fms(hval{}, l, vals[pr][b])
					ni = append(ni, cb)
					nv = append(nv, v)
					colCount[cb]++
					colRows[cb] = append(colRows[cb], ri)
					b++
				default:
					v := h.fms(rval[a], l, vals[pr][b])
					if v.IsZero() {
						// Exact cancellation: the entry leaves the column.
						colCount[ca]--
						if colCount[ca] == 1 && colAlive[ca] {
							singles = append(singles, ca)
						}
					} else {
						ni = append(ni, ca)
						nv = append(nv, v)
					}
					a++
					b++
				}
			}
			rows[i], vals[i] = ni, nv
		}
		colCount[pc] = 0
		// Retire the pivot row: its entries leave the active submatrix;
		// the off-pivot part becomes the U row for this step.
		uIdx := make([]int32, 0, len(rows[pr])-1)
		uVal := make([]hval, 0, len(rows[pr])-1)
		for n, c := range rows[pr] {
			if c == pc {
				continue
			}
			uIdx = append(uIdx, c)
			uVal = append(uVal, vals[pr][n])
			colCount[c]--
			if colCount[c] == 1 && colAlive[c] {
				singles = append(singles, c)
			}
		}
		rowAlive[pr] = false
		colAlive[pc] = false
		f.rowPerm[step] = pr
		f.colPerm[step] = pc
		f.rowStep[pr] = int32(step)
		f.colStep[pc] = int32(step)
		f.uIdx[step] = uIdx
		f.uVal[step] = uVal
		f.diag[step] = piv
		f.lRow[step] = lr
		f.lVal[step] = lv
		rows[pr], vals[pr] = nil, nil
	}
	return f, true
}

// applyFactor solves L U x = t for the factorization alone (no etas).
// t is indexed by original row and is consumed; the result is indexed
// by basis position.
func (f *sparseLU) applyFactor(t []hval) []hval {
	h := f.h
	// Forward substitution: multipliers recorded at step k apply the
	// (final) value of the step's pivot row to rows eliminated later.
	for k := 0; k < f.m; k++ {
		tp := t[f.rowPerm[k]]
		if tp.IsZero() {
			continue
		}
		for n, i := range f.lRow[k] {
			t[i] = h.fms(t[i], f.lVal[k][n], tp)
		}
	}
	// Back substitution on U.
	x := make([]hval, f.m)
	for k := f.m - 1; k >= 0; k-- {
		acc := t[f.rowPerm[k]]
		for n, c := range f.uIdx[k] {
			xc := x[c]
			if xc.IsZero() {
				continue
			}
			acc = h.fms(acc, f.uVal[k][n], xc)
		}
		if !acc.IsZero() {
			acc = h.quo(acc, f.diag[k])
		}
		x[f.colPerm[k]] = acc
	}
	return x
}

// applyEtas pushes x (indexed by basis position) through the eta
// stack in application order: x_p ← x_p/w_p, then x_i ← x_i − w_i·x_p
// for the off-pivot nonzeros of each eta's column image.
func (f *sparseLU) applyEtas(x []hval) {
	h := f.h
	for i := range f.etas {
		e := &f.etas[i]
		xp := x[e.p]
		if xp.IsZero() {
			continue
		}
		xp = h.quo(xp, e.wp)
		x[e.p] = xp
		for _, w := range e.w {
			x[w.idx] = h.fms(x[w.idx], w.v, xp)
		}
	}
}

// ftran returns B⁻¹ a for the sparse column a (indexed by original
// row); the result is indexed by basis position.
func (f *sparseLU) ftran(col []hTerm) []hval {
	t := make([]hval, f.m)
	for _, e := range col {
		t[e.idx] = e.v
	}
	x := f.applyFactor(t)
	f.applyEtas(x)
	return x
}

// solve returns x (by basis position) with B x = b, b indexed by
// original row.
func (f *sparseLU) solve(b []*big.Rat) []hval {
	t := make([]hval, f.m)
	for i, v := range b {
		t[i] = hvRat(v)
	}
	x := f.applyFactor(t)
	f.applyEtas(x)
	return x
}

// solveTranspose returns y (by original row) with Bᵀ y = c, c indexed
// by basis position: the BTRAN pass. Eta transposes apply in reverse
// order before the factor transpose solve.
func (f *sparseLU) solveTranspose(c []hval) []hval {
	h := f.h
	m := f.m
	d := make([]hval, m)
	copy(d, c)
	for i := len(f.etas) - 1; i >= 0; i-- {
		e := &f.etas[i]
		acc := d[e.p]
		for _, w := range e.w {
			if dv := d[w.idx]; !dv.IsZero() {
				acc = h.fms(acc, w.v, dv)
			}
		}
		d[e.p] = h.quo(acc, e.wp)
	}
	// Uᵀ forward substitution over steps (push style).
	w := make([]hval, m)
	for k := 0; k < m; k++ {
		w[k] = d[f.colPerm[k]]
	}
	for j := 0; j < m; j++ {
		if w[j].IsZero() {
			continue
		}
		w[j] = h.quo(w[j], f.diag[j])
		wj := w[j]
		if wj.IsZero() {
			continue
		}
		for n, c := range f.uIdx[j] {
			k := f.colStep[c]
			w[k] = h.fms(w[k], f.uVal[j][n], wj)
		}
	}
	// Lᵀ back substitution (pull style, descending steps).
	for k := m - 1; k >= 0; k-- {
		acc := w[k]
		for n, i := range f.lRow[k] {
			vi := w[f.rowStep[i]]
			if vi.IsZero() {
				continue
			}
			acc = h.fms(acc, f.lVal[k][n], vi)
		}
		w[k] = acc
	}
	y := make([]hval, m)
	for k := 0; k < m; k++ {
		y[f.rowPerm[k]] = w[k]
	}
	return y
}

// pushEta records the basis change at position p with FTRAN image w,
// charging the eta's widest entry against the refactorization bit
// budget.
func (f *sparseLU) pushEta(p int, w []hval) {
	var nz []hTerm
	maxBits := w[p].Bits()
	for i, v := range w {
		if i == p || v.IsZero() {
			continue
		}
		if b := v.Bits(); b > maxBits {
			maxBits = b
		}
		nz = append(nz, hTerm{idx: int32(i), v: v})
	}
	f.etas = append(f.etas, eta{p: int32(p), w: nz, wp: w[p]})
	f.etaBits += maxBits
}

// --- revised iteration ----------------------------------------------------

// Refactorization trigger. Sparse refactorization is cheap (the
// singleton-first Markowitz ordering keeps fill near zero on the
// mechanism LPs) and — crucially — resets entry growth: the
// refactorized basis entries are ratios of the *current* basis, far
// narrower than the accumulated eta-chain products. FTRAN/BTRAN cost
// grows with every eta and with entry width, so refactorization fires
// on whichever bound is hit first:
//
//   - etaBitBudget: the integrated entry magnitude (sparseLU.etaBits)
//     — the measured-growth trigger. On well-conditioned chains this
//     never fires before the count backstop; on the entry-growth-heavy
//     dual-repair chains of the large-n tailored LPs it fires after a
//     handful of pivots, which is exactly when rebuilding wins.
//   - revisedRefactorCap: a plain pivot-count backstop so bookkeeping
//     cost stays bounded even when every entry is tiny.
const (
	etaBitBudget       = 192
	revisedRefactorCap = 64
)

// needsRefactor reports whether the eta chain should be collapsed
// into a fresh factorization, and whether the magnitude trigger (as
// opposed to the count backstop) is what fired.
func (f *sparseLU) needsRefactor() (refactor, magnitude bool) {
	if f.etaBits >= etaBitBudget {
		return true, true
	}
	return len(f.etas) >= revisedRefactorCap, false
}

// recordRefactor folds one refactorization into the solve stats.
func recordRefactor(opts *SolveOpts, magnitude bool) {
	if opts == nil || opts.Stats == nil {
		return
	}
	opts.Stats.Refactorizations++
	if magnitude {
		opts.Stats.MagnitudeRefactors++
	}
}

// dualRepairCap bounds dual-simplex repair pivots. Repair starts from
// a strictly dual-feasible basis, so the first step is non-degenerate,
// but dual degeneracy can develop mid-run; past the cap the solve
// demotes to the dense fallback rather than risk cycling.
const dualRepairCap = 400

// solveDualRepair restores exact primal feasibility by dual-simplex
// pivoting, starting from a basis that is strictly dual feasible but
// primal infeasible — exactly the shape the perturbed float candidate
// produces on heavily degenerate LPs (floatsimplex.go: the
// anti-degeneracy offsets steer the float solve to a basis optimal
// for the *perturbed* right-hand side, which can be infeasible for
// the true one by a handful of basic variables). Each iteration picks
// the most negative basic variable (ties toward the smaller basis
// index), prices row p of B⁻¹A against every nonbasic column, and
// enters the column minimizing the dual ratio z_j/(−α_pj) — the
// choice that keeps every reduced cost nonnegative, so dual
// feasibility is an invariant and the caller can re-run the strict
// uniqueness certificate afterwards. Per iteration that costs one
// BTRAN (the pricing row β) plus one FTRAN (the entering column); the
// reduced costs and the basic solution are maintained by the standard
// incremental updates z′ = z − θ_D·(−α_p·) and x′_B = x_B − θ_P·w
// rather than recomputed, which is what keeps repair per-pivot cost
// near the crossover's. All arithmetic is exact; ok is false when the
// repair gives up (pivot cap, a singular refactorization, or a row
// proving primal infeasibility — all demoted to the dense fallback,
// whose verdict is canonical).
func (s *standardForm) solveDualRepair(ctx context.Context, basis []int, xB []hval, lu *sparseLU, h *hstats, opts *SolveOpts) (*sparseLU, []hval, bool, error) {
	m := s.nrows
	one := hvRat(rational.One())
	cols := s.columns()
	cvals := make([]hval, s.ncols)
	for j, c := range s.c {
		cvals[j] = hvRat(c)
	}
	hcols := make([][]hTerm, s.ncols)
	colView := func(j int) []hTerm {
		if hcols[j] == nil {
			hc := make([]hTerm, len(cols[j]))
			for n, e := range cols[j] {
				hc[n] = hTerm{idx: int32(e.idx), v: hvRat(e.v)}
			}
			hcols[j] = hc
		}
		return hcols[j]
	}
	inBasis := make([]bool, s.ncols)
	for _, j := range basis {
		inBasis[j] = true
	}
	// Reduced costs z_j = c_j − y·A_j, computed once from a single
	// BTRAN and thereafter maintained incrementally. Basic entries
	// stay identically zero.
	cB := make([]hval, m)
	for k, j := range basis {
		cB[k] = cvals[j]
	}
	y := lu.solveTranspose(cB)
	z := make([]hval, s.ncols)
	for j := 0; j < s.ncols; j++ {
		if inBasis[j] {
			continue
		}
		zj := cvals[j]
		for _, e := range colView(j) {
			if yv := y[e.idx]; !yv.IsZero() {
				zj = h.fms(zj, e.v, yv)
			}
		}
		z[j] = zj
	}
	ep := make([]hval, m)
	negAlpha := make([]hval, s.ncols) // −α_pj for the current pricing row
	for pivots := 0; ; pivots++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, false, err
		}
		// Leaving row: most negative basic, ties toward the smaller
		// basis index (deterministic, like the primal ratio test).
		leave := -1
		for k := 0; k < m; k++ {
			if xB[k].Sign() >= 0 {
				continue
			}
			if leave < 0 || xB[k].Cmp(xB[leave]) < 0 ||
				(xB[k].Cmp(xB[leave]) == 0 && basis[k] < basis[leave]) {
				leave = k
			}
		}
		if leave < 0 {
			return lu, xB, true, nil // primal feasible: repaired
		}
		if pivots >= dualRepairCap {
			return nil, nil, false, nil
		}
		// Row `leave` of B⁻¹A: βᵀ = e_leaveᵀ B⁻¹ via BTRAN, then one
		// sparse dot per nonbasic column. fms accumulates
		// −Σ a_ij·β_i = −α_pj directly — exactly the ratio denominator.
		for k := range ep {
			ep[k] = hval{}
		}
		ep[leave] = one
		beta := lu.solveTranspose(ep)
		enter := -1
		var bestNum, bestDen hval // best ratio z/(−α) as a fraction, bestDen > 0
		for j := 0; j < s.ncols; j++ {
			negAlpha[j] = hval{}
			if inBasis[j] {
				continue
			}
			var na hval
			for _, e := range colView(j) {
				if bv := beta[e.idx]; !bv.IsZero() {
					na = h.fms(na, e.v, bv)
				}
			}
			negAlpha[j] = na
			if na.Sign() <= 0 {
				continue // only α_pj < 0 columns can absorb the deficit
			}
			if enter < 0 {
				enter, bestNum, bestDen = j, z[j], na
				continue
			}
			// z/na < bestNum/bestDen ⟺ z·bestDen < bestNum·na (positive
			// denominators): a fused product comparison, no quotient or
			// normalization. First-wins keeps ties on the smaller column
			// index.
			if h.CmpMul(z[j], bestDen, bestNum, na) < 0 {
				enter, bestNum, bestDen = j, z[j], na
			}
		}
		if enter < 0 {
			// Row `leave` proves infeasibility; let the dense path
			// derive the canonical verdict.
			return nil, nil, false, nil
		}
		w := lu.ftran(colView(enter))
		if w[leave].Sign() >= 0 {
			// w[leave] is α_p,enter and must be negative; anything else
			// means the factorization and the pricing row disagree.
			return nil, nil, false, nil
		}
		// Dual update: θ_D = z_enter/(−α_p,enter) ≥ 0, and for every
		// nonbasic j, z′_j = z_j − θ_D·(−α_pj). The entering column's
		// reduced cost becomes 0 (basic); the leaving variable — for
		// which α_pj = 1, as the p-th basic — picks up exactly θ_D.
		thetaD := h.quo(z[enter], negAlpha[enter])
		for j := 0; j < s.ncols; j++ {
			if inBasis[j] || j == enter || negAlpha[j].IsZero() {
				continue
			}
			z[j] = h.fms(z[j], thetaD, negAlpha[j])
		}
		z[enter] = hval{}
		z[basis[leave]] = thetaD
		// Primal update: θ_P = x_p/α_p,enter > 0 (both negative), then
		// x′_B = x_B − θ_P·w off the pivot row and x′_p = θ_P.
		thetaP := h.quo(xB[leave], w[leave])
		for k := 0; k < m; k++ {
			if k == leave || w[k].IsZero() {
				continue
			}
			xB[k] = h.fms(xB[k], thetaP, w[k])
		}
		xB[leave] = thetaP
		inBasis[basis[leave]] = false
		inBasis[enter] = true
		basis[leave] = enter
		if opts != nil && opts.Stats != nil {
			opts.Stats.RevisedPivots++
		}
		lu.pushEta(leave, w)
		if refac, mag := lu.needsRefactor(); refac {
			nlu, ok := s.factorizeSparse(basis, h)
			if !ok {
				return nil, nil, false, nil
			}
			lu = nlu
			recordRefactor(opts, mag)
		}
	}
}

// solveRevised resumes exact phase-2 pivoting from a primal-feasible
// basis via the revised simplex. Pivot rules mirror tableau.iterate —
// Dantzig entering column (first wins ties) switching to Bland's rule
// after stallLimit degenerate pivots, leaving row by minimum ratio
// with ties toward the smaller basis index — and reduced costs are
// the same exact rationals a dense tableau would carry, so the two
// paths walk the same vertex sequence. The result is still gated: it
// is returned only when the final basis passes the strict-uniqueness
// dual certificate; a tied optimal face reports done=false and the
// caller falls back to the full-tableau solve, whose vertex choice
// defines the canonical answer.
//
// An Unbounded verdict is trustworthy: it is reached from an
// exactly-feasible vertex by exact pivoting.
func (s *standardForm) solveRevised(ctx context.Context, basis []int, xB []hval, lu *sparseLU, h *hstats, opts *SolveOpts) (sol *Solution, done bool, err error) {
	const stallLimit = 12 // keep in lockstep with tableau.iterate
	m := s.nrows
	cols := s.columns()
	cvals := make([]hval, s.ncols)
	for j, c := range s.c {
		cvals[j] = hvRat(c)
	}
	// Sparse hval column view for pricing and FTRAN.
	hcols := make([][]hTerm, s.ncols)
	colView := func(j int) []hTerm {
		if hcols[j] == nil {
			hc := make([]hTerm, len(cols[j]))
			for n, e := range cols[j] {
				hc[n] = hTerm{idx: int32(e.idx), v: hvRat(e.v)}
			}
			hcols[j] = hc
		}
		return hcols[j]
	}
	cB := make([]hval, m)
	inBasis := make([]bool, s.ncols)
	for k, j := range basis {
		cB[k] = cvals[j]
		inBasis[j] = true
	}
	stalled := 0
	// Partial (candidate-list) pricing: each Dantzig iteration prices a
	// rotating window of nonbasic columns, expanding window by window
	// until some window holds an eligible column; only an iteration
	// that wraps the full column range with no candidate declares
	// optimality (and only such a full sweep is trusted for the
	// tied-optimum check). The entering choice is the window-local
	// Dantzig winner, so the vertex path may differ from the dense
	// solver's — harmless, because the result is only returned under
	// the strict-uniqueness dual certificate below, and a unique
	// optimum leaves no room for the paths to land on different
	// answers. Bland mode keeps a full smallest-index scan: its
	// anti-cycling guarantee needs the global minimum eligible index.
	priceWindow := s.ncols / 8
	if priceWindow < 64 {
		priceWindow = 64
	}
	priceStart := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		y := lu.solveTranspose(cB)
		useBland := stalled >= stallLimit
		enter := -1
		var bestZ hval
		tied := false
		price := func(j int) hval {
			z := cvals[j]
			for _, e := range colView(j) {
				ye := y[e.idx]
				if ye.IsZero() {
					continue
				}
				z = h.fms(z, e.v, ye)
			}
			return z
		}
		if useBland {
			for j := 0; j < s.ncols; j++ {
				if inBasis[j] {
					continue
				}
				switch z := price(j); z.Sign() {
				case 0:
					tied = true
				case -1:
					enter = j
				}
				if enter >= 0 {
					break // Bland: smallest eligible index
				}
			}
		} else {
			scanned := 0
			j := priceStart
			for scanned < s.ncols {
				windowEnd := scanned + priceWindow
				if windowEnd > s.ncols {
					windowEnd = s.ncols
				}
				for ; scanned < windowEnd; scanned++ {
					jj := j
					if j++; j >= s.ncols {
						j = 0
					}
					if inBasis[jj] {
						continue
					}
					z := price(jj)
					sgn := z.Sign()
					if sgn == 0 {
						tied = true
						continue
					}
					if sgn > 0 {
						continue
					}
					if enter < 0 || z.Cmp(bestZ) < 0 {
						enter = jj
						bestZ = z
					}
				}
				if enter >= 0 {
					// Rotate: the next iteration starts where this window
					// ended, so every column is priced regularly.
					priceStart = j
					break
				}
			}
		}
		if enter < 0 {
			if tied {
				// Optimal but possibly not unique: only the cold path's
				// own vertex choice is guaranteed to match the cold path.
				return nil, false, nil
			}
			colVal := rational.Vector(s.ncols)
			for k, j := range basis {
				colVal[j] = xB[k].Rat()
			}
			return s.solution(s.extractFromCols(colVal)), true, nil
		}
		w := lu.ftran(colView(enter))
		leave := -1
		var bestRatio hval
		for k := 0; k < m; k++ {
			if w[k].Sign() <= 0 {
				continue
			}
			ratio := h.quo(xB[k], w[k])
			if leave < 0 || ratio.Cmp(bestRatio) < 0 ||
				(ratio.Cmp(bestRatio) == 0 && basis[k] < basis[leave]) {
				leave = k
				bestRatio = ratio
			}
		}
		if leave < 0 {
			return &Solution{Status: Unbounded}, true, nil
		}
		theta := bestRatio
		degenerate := theta.IsZero()
		for k := 0; k < m; k++ {
			if k == leave || w[k].IsZero() || theta.IsZero() {
				continue
			}
			xB[k] = h.fms(xB[k], w[k], theta)
		}
		xB[leave] = theta
		inBasis[basis[leave]] = false
		inBasis[enter] = true
		basis[leave] = enter
		cB[leave] = cvals[enter]
		if opts != nil && opts.Stats != nil {
			opts.Stats.RevisedPivots++
		}
		lu.pushEta(leave, w)
		if refac, mag := lu.needsRefactor(); refac {
			nlu, ok := s.factorizeSparse(basis, h)
			if !ok {
				return nil, false, nil // should not happen; dense path decides
			}
			lu = nlu
			recordRefactor(opts, mag)
			// Recompute the basic solution from scratch: exact values, so
			// this is a representation refresh, not a numeric repair —
			// and it sheds the wide representations the eta chain
			// accumulated, which is half the point of refactorizing.
			xB = lu.solve(s.b)
		}
		if degenerate {
			stalled++
		} else {
			stalled = 0
		}
	}
}
