package lp

import (
	"math/big"
	"strings"
	"testing"

	"minimaxdp/internal/rational"
)

func TestVerifyAcceptsOptimal(t *testing.T) {
	p := buildClassic()
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Verify(p); err != nil {
		t.Errorf("valid solution rejected: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	p := buildClassic()
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with a variable: constraint violation.
	bad := &Solution{Status: Optimal, Objective: sol.Objective, X: rational.CloneVector(sol.X)}
	bad.X[0] = rational.Int(100)
	if err := bad.Verify(p); err == nil || !strings.Contains(err.Error(), "constraint") {
		t.Errorf("tampered variable accepted: %v", err)
	}
	// Tamper with the objective value only.
	bad2 := &Solution{Status: Optimal, Objective: rational.Int(999), X: rational.CloneVector(sol.X)}
	if err := bad2.Verify(p); err == nil || !strings.Contains(err.Error(), "objective") {
		t.Errorf("tampered objective accepted: %v", err)
	}
}

func TestVerifyRejectsNegativeVariable(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.NewVariable("x")
	p.SetObjective(TInt(x, 1))
	p.AddConstraint([]Term{TInt(x, 1)}, LE, r("5"))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	bad := &Solution{Status: Optimal, Objective: rational.Int(-1), X: []*big.Rat{rational.Int(-1)}}
	if err := bad.Verify(p); err == nil || !strings.Contains(err.Error(), "non-negativity") {
		t.Errorf("negative variable accepted: %v", err)
	}
	_ = sol
}

func TestVerifyRejectsNonOptimalStatusAndShape(t *testing.T) {
	p := buildClassic()
	infeasible := &Solution{Status: Infeasible}
	if err := infeasible.Verify(p); err == nil {
		t.Error("infeasible solution verified")
	}
	short := &Solution{Status: Optimal, Objective: rational.Zero(), X: rational.Vector(1)}
	if err := short.Verify(p); err == nil {
		t.Error("wrong-length solution verified")
	}
}

func TestBoundCertificate(t *testing.T) {
	p := buildClassic() // max 3x+5y, optimum 36 at (2,6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// A feasible but worse candidate certifies nothing.
	if err := sol.BoundCertificate(p, []*big.Rat{rational.Int(0), rational.Int(0)}); err != nil {
		t.Errorf("worse feasible candidate raised: %v", err)
	}
	// An infeasible candidate certifies nothing.
	if err := sol.BoundCertificate(p, []*big.Rat{rational.Int(100), rational.Int(100)}); err != nil {
		t.Errorf("infeasible candidate raised: %v", err)
	}
	// A fraudulent "optimum" is exposed by the true optimal point.
	fraud := &Solution{Status: Optimal, Objective: rational.Int(30),
		X: []*big.Rat{rational.Int(0), rational.Int(6)}}
	if err := fraud.BoundCertificate(p, sol.X); err == nil {
		t.Error("fraudulent optimum not exposed by a better feasible point")
	}
	// Shape/status validation.
	if err := (&Solution{Status: Unbounded}).BoundCertificate(p, sol.X); err == nil {
		t.Error("unbounded status accepted")
	}
	if err := sol.BoundCertificate(p, sol.X[:1]); err == nil {
		t.Error("wrong-length candidate accepted")
	}
}
