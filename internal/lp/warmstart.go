// Float-guided exact solving: the warm-start crossover.
//
// The float64 simplex (floatsimplex.go) locates a candidate optimal
// basis in microseconds; this file certifies that basis in exact
// rational arithmetic. Nothing numeric survives into the result — the
// float solver contributes only a list of column indices, and every
// quantity in the returned Solution is recomputed over big.Rat and
// checked against the simplex optimality conditions as true rational
// inequalities:
//
//	primal feasibility:  x_B = B⁻¹ b ≥ 0        (componentwise, exact)
//	dual optimality:     z_j = c_j − y·A_j > 0   with  Bᵀy = c_B
//
// The dual check is deliberately *strict* on every nonbasic column:
// strict dual non-degeneracy certifies not just optimality but
// uniqueness of the optimal point, which is what lets the warm path
// promise byte-identical results to the cold exact solver — a unique
// optimum leaves no vertex for the two paths to disagree on. When the
// certificate holds, the solution is returned directly (a "hit": zero
// exact pivots). When some reduced cost is negative but the basis is
// still primal feasible, exact phase-2 pivoting resumes from it —
// still strictly cheaper than a cold phase 1 — and its final tableau
// must pass the same strict certificate. A tie (some nonbasic reduced
// cost exactly zero, so the optimal face may be an edge or larger)
// falls back to the full two-phase solve: correctness would survive
// returning the tied vertex, identity with the cold path might not.
// Primal-infeasible, singular, or artificial-containing bases, and a
// float solver that fails outright, also take the fallback. In every
// case the answer carries the same exact certificate as the cold
// solver's.
package lp

import (
	"context"

	"minimaxdp/internal/rational"
)

// Strategy selects how Solve locates the optimal basis.
type Strategy int

const (
	// StrategyWarmStart — the default — runs the float64 simplex
	// first and certifies its final basis in exact arithmetic,
	// falling back to the pure exact solve when the certificate
	// fails. The result is identical to StrategyExact's.
	StrategyWarmStart Strategy = iota
	// StrategyExact forces the cold two-phase exact solve: the
	// ablation baseline, and a cross-check against the warm path.
	StrategyExact
)

// SolveOpts configures SolveWithOpts. The zero value is the
// production default: warm start on, parallel pivoting on.
type SolveOpts struct {
	Strategy Strategy
	// NoParallelPivot disables the multi-goroutine row-elimination
	// kernel, keeping every pivot on the calling goroutine.
	NoParallelPivot bool
	// NoPresolve skips the exact presolve reductions (presolve.go),
	// solving the problem as modelled. StrategyExact never presolves
	// regardless, so this knob only affects the warm-start strategy.
	NoPresolve bool
	// Stats, when non-nil, is reset at the start of the solve and
	// filled with counters describing what the solver actually did.
	Stats *SolveStats
}

// SolveStats reports, per solve, which path ran and how much work it
// did. Exactly one of WarmStartHit / CrossoverResumed / Fallback is
// set on a StrategyWarmStart solve that returns a Solution; a
// StrategyExact solve sets none of them.
type SolveStats struct {
	FloatPivots    int // pivots of the float64 basis-locating solve
	ExactPivots    int // exact dense-tableau pivots (fallback path)
	RevisedPivots  int // exact revised-simplex pivots (crossover resume + dual repair)
	ParallelPivots int // exact pivots whose elimination ran parallel

	// Hybrid-kernel tier counters for the sparse LU / revised path:
	// how many exact rational operations ran on the int64
	// rational.Small fast path, how many on the 128-bit rational.Wide
	// tier, and how many fell all the way back to big.Rat (see
	// revised.go and internal/rational/hybrid.go).
	SmallOps     int64
	WideOps      int64
	BigFallbacks int64

	// Basis refactorizations during revised pivoting (primal resume +
	// dual repair). MagnitudeRefactors counts the subset forced by the
	// eta-chain entry-magnitude trigger rather than the pivot-count
	// backstop (see sparseLU.needsRefactor).
	Refactorizations   int
	MagnitudeRefactors int

	// Presolve reductions applied before the solve (presolve.go).
	PresolveRows int // constraint rows eliminated
	PresolveCols int // variables eliminated

	WarmStartHit     bool // float basis certified optimal and unique; zero exact pivots
	CrossoverResumed bool // exact pivoting resumed (primal resume or dual repair)
	Fallback         bool // full two-phase exact solve ran (incl. tied-optimum demotions)
}

// solveWarmStart attempts the float-guided path. done=false (with nil
// error) means the caller must run the full two-phase fallback; when
// done=true, sol is the certified result.
func (s *standardForm) solveWarmStart(ctx context.Context, opts *SolveOpts) (sol *Solution, done bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	basis, floatPivots, ok := s.floatCandidateBasis()
	if opts.Stats != nil {
		opts.Stats.FloatPivots = floatPivots
	}
	if !ok {
		return nil, false, nil
	}
	var h hstats
	defer func() { h.fold(opts.Stats) }()
	lu, ok := s.factorizeSparse(basis, &h)
	if !ok {
		return nil, false, nil // singular basis: the float path lost the plot
	}
	xB := lu.solve(s.b)
	repaired := false
	hasNeg := false
	for _, v := range xB {
		if v.Sign() < 0 {
			hasNeg = true
			break
		}
	}
	if hasNeg {
		// The anti-degeneracy perturbation (floatsimplex.go) can steer
		// the float solve to a basis optimal for the *perturbed*
		// right-hand side but infeasible for the true one by a handful
		// of basic variables. When that basis is strictly dual
		// feasible — on the tailored family it always is, the
		// perturbation only shifts which optimal-face vertex gets
		// picked — it is exactly the starting state the dual simplex
		// wants: repair primal feasibility by exact dual pivoting
		// (solveDualRepair), preserving dual feasibility throughout,
		// then fall through to the usual certification below. Any
		// other shape of infeasibility still takes the dense fallback.
		cB := make([]hval, s.nrows)
		for k, j := range basis {
			cB[k] = hvRat(s.c[j])
		}
		yh := lu.solveTranspose(cB)
		if s.dualCertificate(basis, yh, &h) != dualStrict {
			return nil, false, nil // not repairable: certificate failed
		}
		lu, xB, ok, err = s.solveDualRepair(ctx, basis, xB, lu, &h, opts)
		if err != nil || !ok {
			return nil, false, err
		}
		repaired = true
	}
	// The basis is an exactly-feasible vertex. Check dual optimality:
	// solve Bᵀy = c_B, then price every nonbasic column.
	cB := make([]hval, s.nrows)
	for k, j := range basis {
		cB[k] = hvRat(s.c[j])
	}
	yh := lu.solveTranspose(cB)
	switch s.dualCertificate(basis, yh, &h) {
	case dualStrict:
		if opts.Stats != nil {
			// A repaired basis ran exact pivots to get here, so it
			// reports as a resume; a hit means zero exact pivots.
			if repaired {
				opts.Stats.CrossoverResumed = true
			} else {
				opts.Stats.WarmStartHit = true
			}
		}
		colVal := rational.Vector(s.ncols)
		for k, j := range basis {
			colVal[j] = xB[k].Rat()
		}
		return s.solution(s.extractFromCols(colVal)), true, nil
	case dualDegenerate:
		// Optimal but possibly not unique: only the cold path's own
		// vertex choice is guaranteed to match the cold path.
		return nil, false, nil
	}
	// Feasible but not optimal: resume exact revised-simplex pivoting
	// from this vertex against the factorization, skipping phase 1
	// entirely (revised.go).
	sol, done, err = s.solveRevised(ctx, basis, xB, lu, &h, opts)
	if err != nil || !done {
		return nil, done, err
	}
	if opts.Stats != nil {
		opts.Stats.CrossoverResumed = true
	}
	return sol, true, nil
}

// dualVerdict classifies the reduced costs of the nonbasic columns.
type dualVerdict int

const (
	dualInfeasible dualVerdict = iota // some z_j < 0: basis not optimal
	dualDegenerate                    // all z_j ≥ 0, some exactly 0: optimal, maybe not unique
	dualStrict                        // all z_j > 0: optimal and unique
)

// dualCertificate prices every nonbasic column against the dual
// vector y and classifies the basis. Pricing runs on the hybrid
// Small/big kernels: on the mechanism LPs both y and the matrix
// entries fit int64 rationals, so the sweep is allocation-free.
func (s *standardForm) dualCertificate(basis []int, y []hval, h *hstats) dualVerdict {
	inBasis := make([]bool, s.ncols)
	for _, j := range basis {
		inBasis[j] = true
	}
	verdict := dualStrict
	cols := s.columns()
	for j := 0; j < s.ncols; j++ {
		if inBasis[j] {
			continue // z_j = 0 by construction of y
		}
		z := hvRat(s.c[j])
		for _, e := range cols[j] {
			if yv := y[e.idx]; !yv.IsZero() {
				z = h.fms(z, hvRat(e.v), yv)
			}
		}
		switch z.Sign() {
		case -1:
			return dualInfeasible
		case 0:
			verdict = dualDegenerate
		}
	}
	return verdict
}

// strictlyOptimal reports whether the (already optimal) tableau's
// nonbasic structural reduced costs are all strictly positive — the
// uniqueness certificate the presolve path requires before trusting
// vertex identity with a solve of the unreduced problem. Artificial
// columns are excluded: they are banned from entering, so their
// reduced costs carry no information about alternative optima.
func (t *tableau) strictlyOptimal() bool {
	inBasis := make([]bool, t.ncols)
	for _, bi := range t.basis {
		inBasis[bi] = true
	}
	for j := 0; j < t.art; j++ {
		if inBasis[j] {
			continue
		}
		if t.z[j].Sign() == 0 {
			return false
		}
	}
	return true
}

// solveCertified solves p through the warm-start pipeline and
// additionally reports whether an Optimal result is certified
// *unique* (strict dual non-degeneracy). The warm paths only return
// under that certificate; the dense fallback reads it off its final
// tableau. The presolve driver requires uniqueness before mapping a
// reduced solution back to the original problem, because only a
// unique optimum is guaranteed to coincide with what a direct solve
// of the original would have returned.
func (p *Problem) solveCertified(ctx context.Context, opts *SolveOpts) (*Solution, bool, error) {
	s := newStandardForm(p)
	sol, done, err := s.solveWarmStart(ctx, opts)
	if err != nil {
		return nil, false, err
	}
	if done {
		return sol, true, nil
	}
	if opts.Stats != nil {
		opts.Stats.Fallback = true
	}
	tab, status, err := s.phase1(ctx, opts)
	if err != nil {
		return nil, false, err
	}
	if status == Infeasible {
		return &Solution{Status: Infeasible}, false, nil
	}
	status, err = s.phase2(ctx, tab)
	if err != nil {
		return nil, false, err
	}
	if status == Unbounded {
		return &Solution{Status: Unbounded}, false, nil
	}
	return s.solution(s.extract(tab)), tab.strictlyOptimal(), nil
}
