// Float-guided exact solving: the warm-start crossover.
//
// The float64 simplex (floatsimplex.go) locates a candidate optimal
// basis in microseconds; this file certifies that basis in exact
// rational arithmetic. Nothing numeric survives into the result — the
// float solver contributes only a list of column indices, and every
// quantity in the returned Solution is recomputed over big.Rat and
// checked against the simplex optimality conditions as true rational
// inequalities:
//
//	primal feasibility:  x_B = B⁻¹ b ≥ 0        (componentwise, exact)
//	dual optimality:     z_j = c_j − y·A_j > 0   with  Bᵀy = c_B
//
// The dual check is deliberately *strict* on every nonbasic column:
// strict dual non-degeneracy certifies not just optimality but
// uniqueness of the optimal point, which is what lets the warm path
// promise byte-identical results to the cold exact solver — a unique
// optimum leaves no vertex for the two paths to disagree on. When the
// certificate holds, the solution is returned directly (a "hit": zero
// exact pivots). When some reduced cost is negative but the basis is
// still primal feasible, exact phase-2 pivoting resumes from it —
// still strictly cheaper than a cold phase 1 — and its final tableau
// must pass the same strict certificate. A tie (some nonbasic reduced
// cost exactly zero, so the optimal face may be an edge or larger)
// falls back to the full two-phase solve: correctness would survive
// returning the tied vertex, identity with the cold path might not.
// Primal-infeasible, singular, or artificial-containing bases, and a
// float solver that fails outright, also take the fallback. In every
// case the answer carries the same exact certificate as the cold
// solver's.
package lp

import (
	"context"
	"math/big"

	"minimaxdp/internal/rational"
)

// Strategy selects how Solve locates the optimal basis.
type Strategy int

const (
	// StrategyWarmStart — the default — runs the float64 simplex
	// first and certifies its final basis in exact arithmetic,
	// falling back to the pure exact solve when the certificate
	// fails. The result is identical to StrategyExact's.
	StrategyWarmStart Strategy = iota
	// StrategyExact forces the cold two-phase exact solve: the
	// ablation baseline, and a cross-check against the warm path.
	StrategyExact
)

// SolveOpts configures SolveWithOpts. The zero value is the
// production default: warm start on, parallel pivoting on.
type SolveOpts struct {
	Strategy Strategy
	// NoParallelPivot disables the multi-goroutine row-elimination
	// kernel, keeping every pivot on the calling goroutine.
	NoParallelPivot bool
	// Stats, when non-nil, is reset at the start of the solve and
	// filled with counters describing what the solver actually did.
	Stats *SolveStats
}

// SolveStats reports, per solve, which path ran and how much work it
// did. Exactly one of WarmStartHit / CrossoverResumed / Fallback is
// set on a StrategyWarmStart solve that returns a Solution; a
// StrategyExact solve sets none of them.
type SolveStats struct {
	FloatPivots    int // pivots of the float64 basis-locating solve
	ExactPivots    int // exact big.Rat pivots (crossover resume or fallback)
	ParallelPivots int // exact pivots whose elimination ran parallel

	WarmStartHit     bool // float basis certified optimal and unique; zero exact pivots
	CrossoverResumed bool // basis feasible but not optimal; exact pivoting resumed
	Fallback         bool // full two-phase exact solve ran (incl. tied-optimum demotions)
}

// solveWarmStart attempts the float-guided path. done=false (with nil
// error) means the caller must run the full two-phase fallback; when
// done=true, sol is the certified result.
func (s *standardForm) solveWarmStart(ctx context.Context, opts *SolveOpts) (sol *Solution, done bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	basis, floatPivots, ok := s.floatCandidateBasis()
	if opts.Stats != nil {
		opts.Stats.FloatPivots = floatPivots
	}
	if !ok {
		return nil, false, nil
	}
	lu, ok := s.factorizeBasis(basis)
	if !ok {
		return nil, false, nil // singular basis: the float path lost the plot
	}
	xB := lu.solve(s.b)
	for _, v := range xB {
		if v.Sign() < 0 {
			return nil, false, nil // primal infeasible: certificate failed
		}
	}
	// The basis is an exactly-feasible vertex. Check dual optimality:
	// solve Bᵀy = c_B, then price every nonbasic column.
	cB := make([]*big.Rat, s.nrows)
	for k, j := range basis {
		cB[k] = s.c[j]
	}
	y := lu.solveTranspose(cB)
	switch s.dualCertificate(basis, y) {
	case dualStrict:
		if opts.Stats != nil {
			opts.Stats.WarmStartHit = true
		}
		colVal := rational.Vector(s.ncols)
		for k, j := range basis {
			colVal[j] = xB[k]
		}
		return s.solution(s.extractFromCols(colVal)), true, nil
	case dualDegenerate:
		// Optimal but possibly not unique: only the cold path's own
		// vertex choice is guaranteed to match the cold path.
		return nil, false, nil
	}
	// Feasible but not optimal: resume exact pivoting from this
	// vertex, skipping phase 1 entirely.
	t, ok := s.tableauFromBasis(basis, opts)
	if !ok {
		return nil, false, nil
	}
	status, err := s.phase2(ctx, t)
	if err != nil {
		return nil, false, err
	}
	if status == Unbounded {
		// Exact verdict: reached from an exactly-feasible vertex by
		// exact pivoting, so it is trustworthy (unlike a float claim).
		if opts.Stats != nil {
			opts.Stats.CrossoverResumed = true
		}
		return &Solution{Status: Unbounded}, true, nil
	}
	// The resumed optimum must pass the same uniqueness bar as a hit;
	// a tied face falls back so the answer matches the cold path.
	if !t.strictlyOptimal() {
		return nil, false, nil
	}
	if opts.Stats != nil {
		opts.Stats.CrossoverResumed = true
	}
	return s.solution(s.extract(t)), true, nil
}

// dualVerdict classifies the reduced costs of the nonbasic columns.
type dualVerdict int

const (
	dualInfeasible dualVerdict = iota // some z_j < 0: basis not optimal
	dualDegenerate                    // all z_j ≥ 0, some exactly 0: optimal, maybe not unique
	dualStrict                        // all z_j > 0: optimal and unique
)

// dualCertificate prices every nonbasic column against the dual
// vector y and classifies the basis.
func (s *standardForm) dualCertificate(basis []int, y []*big.Rat) dualVerdict {
	inBasis := make([]bool, s.ncols)
	for _, j := range basis {
		inBasis[j] = true
	}
	verdict := dualStrict
	z := new(big.Rat)
	tmp := new(big.Rat)
	for j := 0; j < s.ncols; j++ {
		if inBasis[j] {
			continue // z_j = 0 by construction of y
		}
		z.Set(s.c[j])
		for r := 0; r < s.nrows; r++ {
			if y[r].Sign() == 0 || s.a[r][j].Sign() == 0 {
				continue
			}
			tmp.Mul(y[r], s.a[r][j])
			z.Sub(z, tmp)
		}
		switch z.Sign() {
		case -1:
			return dualInfeasible
		case 0:
			verdict = dualDegenerate
		}
	}
	return verdict
}

// strictlyOptimal reports whether the (already optimal) tableau's
// nonbasic reduced costs are all strictly positive — the uniqueness
// certificate the warm path requires before trusting vertex identity
// with the cold solver.
func (t *tableau) strictlyOptimal() bool {
	inBasis := make([]bool, t.ncols)
	for _, bi := range t.basis {
		inBasis[bi] = true
	}
	for j := 0; j < t.ncols; j++ {
		if inBasis[j] {
			continue
		}
		if t.z[j].Sign() == 0 {
			return false
		}
	}
	return true
}

// luFactors is an exact PB = LU factorization of the m×m basis-column
// matrix: lu row k holds, packed in place, the unit-lower-triangular
// multipliers (below the diagonal) and U (on and above it); lu row k
// corresponds to original constraint row perm[k].
type luFactors struct {
	lu   [][]*big.Rat
	perm []int
	m    int
}

// factorizeBasis LU-factorizes the basis columns with row pivoting
// (first nonzero — over exact rationals any nonzero pivot is valid).
// ok=false reports a singular basis. Cost is ~m³/3 rational
// multiplies, the dominant cost of a warm-start hit and roughly one
// third of a single full-tableau refactorization.
func (s *standardForm) factorizeBasis(basis []int) (*luFactors, bool) {
	m := s.nrows
	if len(basis) != m {
		return nil, false
	}
	lu := make([][]*big.Rat, m)
	for r := 0; r < m; r++ {
		row := make([]*big.Rat, m)
		for k, j := range basis {
			row[k] = rational.Clone(s.a[r][j])
		}
		lu[r] = row
	}
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	tmp := new(big.Rat)
	for k := 0; k < m; k++ {
		p := -1
		for r := k; r < m; r++ {
			if lu[r][k].Sign() != 0 {
				p = r
				break
			}
		}
		if p < 0 {
			return nil, false
		}
		lu[k], lu[p] = lu[p], lu[k]
		perm[k], perm[p] = perm[p], perm[k]
		piv := lu[k][k]
		for r := k + 1; r < m; r++ {
			if lu[r][k].Sign() == 0 {
				continue
			}
			lu[r][k].Quo(lu[r][k], piv) // the L multiplier, stored in place
			for c := k + 1; c < m; c++ {
				if lu[k][c].Sign() == 0 {
					continue
				}
				tmp.Mul(lu[r][k], lu[k][c])
				lu[r][c].Sub(lu[r][c], tmp)
			}
		}
	}
	return &luFactors{lu: lu, perm: perm, m: m}, true
}

// solve returns x with B·x = b, b given in original row order.
func (f *luFactors) solve(b []*big.Rat) []*big.Rat {
	m := f.m
	x := make([]*big.Rat, m)
	tmp := new(big.Rat)
	// Forward substitution: L·t = P·b (L unit lower triangular).
	for k := 0; k < m; k++ {
		x[k] = rational.Clone(b[f.perm[k]])
		for c := 0; c < k; c++ {
			if f.lu[k][c].Sign() == 0 || x[c].Sign() == 0 {
				continue
			}
			tmp.Mul(f.lu[k][c], x[c])
			x[k].Sub(x[k], tmp)
		}
	}
	// Back substitution: U·x = t.
	for k := m - 1; k >= 0; k-- {
		for c := k + 1; c < m; c++ {
			if f.lu[k][c].Sign() == 0 || x[c].Sign() == 0 {
				continue
			}
			tmp.Mul(f.lu[k][c], x[c])
			x[k].Sub(x[k], tmp)
		}
		x[k].Quo(x[k], f.lu[k][k])
	}
	return x
}

// solveTranspose returns y with Bᵀ·y = c, y in original row order.
// With B = PᵀLU this is UᵀLᵀP·y = c: forward-substitute Uᵀ (lower
// triangular with U's diagonal), back-substitute Lᵀ (unit upper),
// then undo the permutation.
func (f *luFactors) solveTranspose(c []*big.Rat) []*big.Rat {
	m := f.m
	u := make([]*big.Rat, m)
	tmp := new(big.Rat)
	for k := 0; k < m; k++ {
		u[k] = rational.Clone(c[k])
		for r := 0; r < k; r++ {
			if f.lu[r][k].Sign() == 0 || u[r].Sign() == 0 {
				continue
			}
			tmp.Mul(f.lu[r][k], u[r])
			u[k].Sub(u[k], tmp)
		}
		u[k].Quo(u[k], f.lu[k][k])
	}
	for k := m - 1; k >= 0; k-- {
		for r := k + 1; r < m; r++ {
			if f.lu[r][k].Sign() == 0 || u[r].Sign() == 0 {
				continue
			}
			tmp.Mul(f.lu[r][k], u[r])
			u[k].Sub(u[k], tmp)
		}
	}
	y := make([]*big.Rat, m)
	for k := 0; k < m; k++ {
		y[f.perm[k]] = u[k]
	}
	return y
}

// tableauFromBasis constructs the exact simplex tableau whose basis
// is the given (exactly primal-feasible) column set, by Gauss–Jordan
// elimination on the basis columns: one refactorization instead of a
// whole phase 1. ok=false reports a basis that cannot be completed (a
// singular column set — should not happen after factorizeBasis
// succeeded, but guarded anyway).
func (s *standardForm) tableauFromBasis(basis []int, opts *SolveOpts) (*tableau, bool) {
	t := &tableau{art: s.ncols, ncols: s.ncols}
	t.initScratch(opts)
	t.basis = make([]int, s.nrows)
	t.rows = make([][]*big.Rat, s.nrows)
	for r := 0; r < s.nrows; r++ {
		row := make([]*big.Rat, t.ncols+1)
		for j := 0; j < s.ncols; j++ {
			row[j] = rational.Clone(s.a[r][j])
		}
		row[t.ncols] = rational.Clone(s.b[r])
		t.rows[r] = row
		t.basis[r] = -1
	}
	// The z-row is rebuilt by phase2 afterwards; keep it inert here so
	// the Gauss–Jordan pivots below touch only the constraint rows.
	t.z = rational.Vector(t.ncols)
	t.obj = rational.Zero()
	for _, j := range basis {
		// Pick a pivot row for column j among rows not yet assigned.
		pr := -1
		for r := 0; r < s.nrows; r++ {
			if t.basis[r] < 0 && t.rows[r][j].Sign() != 0 {
				pr = r
				break
			}
		}
		if pr < 0 {
			return nil, false
		}
		t.pivot(pr, j)
	}
	return t, true
}
