// Package lp implements an exact linear-programming solver over
// rationals (math/big.Rat), together with a small modelling layer.
//
// The paper's two central computations are linear programs:
//
//   - the optimal consumer interaction T* against a deployed mechanism
//     (Section 2.4.3), and
//   - the optimal α-differentially-private mechanism tailored to a
//     known consumer (Section 2.5).
//
// Go's standard library has no LP solver, so this package provides a
// two-phase primal simplex method. All pivoting is exact, and Bland's
// anti-cycling rule guarantees termination, so the solver needs no
// numeric tolerances: feasibility and optimality certificates are true
// rational equalities.
//
// By default Solve does not run the two-phase method cold: it first
// lets a dense float64 simplex (floatsimplex.go) locate a candidate
// optimal basis in microseconds, then certifies that basis in exact
// arithmetic and only falls back to exact pivoting when the
// certificate fails (warmstart.go). The result is bit-for-bit the
// same class of certified rational solution at a fraction of the
// rational-arithmetic cost; SolveOpts selects the pure exact strategy
// for ablations and cross-checks.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"

	"minimaxdp/internal/rational"
)

// Sense selects minimization or maximization of the objective.
type Sense int

// Objective senses.
const (
	Minimize Sense = iota
	Maximize
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // Σ aᵢxᵢ ≤ b
	GE           // Σ aᵢxᵢ ≥ b
	EQ           // Σ aᵢxᵢ = b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Var identifies a decision variable within its Problem.
type Var int

// Term is one coefficient·variable pair of a linear expression.
type Term struct {
	Var   Var
	Coeff *big.Rat
}

// T builds a Term; a convenience for call sites.
func T(v Var, coeff *big.Rat) Term { return Term{Var: v, Coeff: coeff} }

// TInt builds a Term with an integer coefficient.
func TInt(v Var, coeff int64) Term { return Term{Var: v, Coeff: rational.Int(coeff)} }

// Status reports the outcome of Solve.
type Status int

// Solver outcomes. NoStatus is deliberately the zero value: a solve
// that was canceled or errored reports NoStatus, so a caller that
// (incorrectly) consults the status before the error can never
// mistake an aborted solve for a certified Optimal one.
const (
	NoStatus Status = iota // no verdict: the solve was canceled or errored
	Optimal
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case NoStatus:
		return "none"
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Solution holds the result of solving a Problem.
type Solution struct {
	Status Status
	// Objective is the optimal objective value in the problem's own
	// sense (only meaningful when Status == Optimal).
	Objective *big.Rat
	// X holds the optimal value of every variable, indexed by Var.
	X []*big.Rat
}

// Value returns the optimal value of v.
func (s *Solution) Value(v Var) *big.Rat {
	return rational.Clone(s.X[int(v)])
}

type variable struct {
	name string
	free bool
}

type constraint struct {
	terms []Term
	op    Op
	rhs   *big.Rat
}

// Problem is a linear program under construction. Variables are
// non-negative unless declared with FreeVariable.
type Problem struct {
	sense     Sense
	vars      []variable
	objective []*big.Rat // dense, indexed by Var
	cons      []constraint
}

// NewProblem returns an empty problem with the given objective sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// NewVariable adds a non-negative decision variable.
func (p *Problem) NewVariable(name string) Var {
	p.vars = append(p.vars, variable{name: name})
	p.objective = append(p.objective, rational.Zero())
	return Var(len(p.vars) - 1)
}

// FreeVariable adds an unrestricted (possibly negative) variable.
func (p *Problem) FreeVariable(name string) Var {
	p.vars = append(p.vars, variable{name: name, free: true})
	p.objective = append(p.objective, rational.Zero())
	return Var(len(p.vars) - 1)
}

// NumVariables returns the number of declared variables.
func (p *Problem) NumVariables() int { return len(p.vars) }

// NumConstraints returns the number of added constraints.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetObjectiveCoeff sets the objective coefficient of v.
func (p *Problem) SetObjectiveCoeff(v Var, c *big.Rat) {
	p.objective[int(v)] = rational.Clone(c)
}

// SetObjective replaces the whole objective with the given terms.
func (p *Problem) SetObjective(terms ...Term) {
	for i := range p.objective {
		p.objective[i] = rational.Zero()
	}
	for _, t := range terms {
		p.objective[int(t.Var)].Add(p.objective[int(t.Var)], t.Coeff)
	}
}

// AddConstraint adds Σ terms (op) rhs. Terms referencing the same
// variable are accumulated.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs *big.Rat) {
	cp := make([]Term, len(terms))
	for i, t := range terms {
		cp[i] = Term{Var: t.Var, Coeff: rational.Clone(t.Coeff)}
	}
	p.cons = append(p.cons, constraint{terms: cp, op: op, rhs: rational.Clone(rhs)})
}

// Solve runs the exact solver with default options and returns the
// solution. It is SolveCtx with a background (never-canceled) context.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveCtx(context.Background())
}

// SolveCtx runs the exact solver with default options
// (float-guided warm start, parallel pivoting) under ctx. The pivot
// loop checks ctx between pivots, so a canceled or deadline-expired
// context aborts the solve within one pivot's worth of work and
// returns ctx.Err(). The paper's LPs cost seconds-to-minutes of pure
// rational arithmetic at serving sizes; this checkpoint is what makes
// them deadline-bounded behind a serving surface.
func (p *Problem) SolveCtx(ctx context.Context) (*Solution, error) {
	return p.SolveWithOpts(ctx, SolveOpts{})
}

// SolveWithOpts runs the exact solver under ctx with explicit
// options. The zero SolveOpts is the production default: an exact
// presolve (presolve.go) strips rows and columns resolvable by
// inspection, the float-guided warm start locates a candidate basis
// for what remains, an exact crossover certifies it (warmstart.go),
// and the full two-phase rational simplex runs only as a fallback.
// StrategyExact forces the cold two-phase solve on the untouched
// problem (the ablation baseline and byte-identity oracle). Whatever
// the strategy, the returned Solution is certified by exact
// arithmetic.
func (p *Problem) SolveWithOpts(ctx context.Context, opts SolveOpts) (*Solution, error) {
	if len(p.vars) == 0 {
		return nil, errors.New("lp: no variables")
	}
	if opts.Stats != nil {
		*opts.Stats = SolveStats{}
	}
	if opts.Strategy == StrategyWarmStart && !opts.NoPresolve {
		sol, done, err := p.solvePresolved(ctx, &opts)
		if err != nil {
			return nil, err
		}
		if done {
			return sol, nil
		}
		// Presolve either fired nothing or could not certify a unique
		// optimum through the reductions: solve the original problem.
	}
	s := newStandardForm(p)
	if opts.Strategy == StrategyWarmStart {
		sol, done, err := s.solveWarmStart(ctx, &opts)
		if err != nil {
			return nil, err
		}
		if done {
			return sol, nil
		}
		if opts.Stats != nil {
			opts.Stats.Fallback = true
		}
	}
	tab, status, err := s.phase1(ctx, &opts)
	if err != nil {
		return nil, err
	}
	if status == Infeasible {
		return &Solution{Status: Infeasible}, nil
	}
	status, err = s.phase2(ctx, tab)
	if err != nil {
		return nil, err
	}
	if status == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}
	return s.solution(s.extract(tab)), nil
}

// solution wraps an original-variable assignment as an Optimal
// Solution, computing the objective in the problem's own sense.
func (s *standardForm) solution(x []*big.Rat) *Solution {
	return s.p.optimalSolution(x)
}

// optimalSolution wraps x as an Optimal Solution with the objective
// evaluated over p's own coefficients and sense.
func (p *Problem) optimalSolution(x []*big.Rat) *Solution {
	obj := rational.Zero()
	tmp := rational.Zero()
	for i, c := range p.objective {
		tmp.Mul(c, x[i])
		obj.Add(obj, tmp)
	}
	return &Solution{Status: Optimal, Objective: obj, X: x}
}

// --- standard form and tableau ------------------------------------------

// spTerm is one nonzero of a sparse standard-form row (idx = column)
// or of the lazily built column view (idx = row). The *big.Rat values
// are shared between the two views and are read-only after
// construction: every consumer clones before mutating.
type spTerm struct {
	idx int
	v   *big.Rat
}

// standardForm rewrites the problem as
//
//	min c·y   s.t.  A y = b,  y ≥ 0,  b ≥ 0
//
// with column bookkeeping mapping original variables to standard-form
// columns (free variables split as y⁺ − y⁻). The constraint matrix is
// stored sparsely — the paper's LPs have a handful of nonzeros per
// row, and the dense [][]*big.Rat this replaces dominated the cost of
// a warm-start solve just being allocated and scanned.
type standardForm struct {
	p          *Problem
	ncols      int // structural + slack/surplus columns (artificials appended after)
	nart       int
	nrows      int
	structural int        // number of structural columns; slack/surplus follow
	colPos     []int      // original var -> positive part column
	colNeg     []int      // original var -> negative part column (-1 if non-free)
	rows       [][]spTerm // sparse rows of A, sorted by column index
	slack      []int      // per row: the +1 slack column seeding the basis, or -1
	b          []*big.Rat
	c          []*big.Rat // phase-2 cost over structural+slack columns, minimization sense
	artOffset  int

	cols [][]spTerm // lazy column view of rows (see columns)
}

func newStandardForm(p *Problem) *standardForm {
	s := &standardForm{p: p}
	s.colPos = make([]int, len(p.vars))
	s.colNeg = make([]int, len(p.vars))
	col := 0
	for i, v := range p.vars {
		s.colPos[i] = col
		col++
		if v.free {
			s.colNeg[i] = col
			col++
		} else {
			s.colNeg[i] = -1
		}
	}
	structural := col
	s.structural = structural
	// Count slack/surplus columns.
	for _, con := range p.cons {
		if con.op != EQ {
			col++
		}
	}
	s.ncols = col
	s.nrows = len(p.cons)
	s.artOffset = s.ncols
	s.rows = make([][]spTerm, s.nrows)
	s.slack = make([]int, s.nrows)
	s.b = make([]*big.Rat, s.nrows)

	// Per-row accumulation scratch over structural columns: entries are
	// handed off into the sparse row and the slot nil'ed, so the scratch
	// is clean for the next row without a dense sweep.
	scratch := make([]*big.Rat, structural)
	touched := make([]int, 0, 16)
	seen := make([]int, structural) // duplicate-mention stamps, row index + 1
	slackCol := structural
	for r, con := range p.cons {
		rhs := rational.Clone(con.rhs)
		op := con.op
		neg := false
		if rhs.Sign() < 0 {
			neg = true
			rhs.Neg(rhs)
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		// A "≥ 0" row is equivalently "≤ 0" negated; the LE form gets a
		// slack column that can seed the starting basis, avoiding an
		// artificial variable (and a phase-1 pivot) per such row. The
		// optimal-mechanism LPs are dominated by these rows.
		if op == GE && rhs.Sign() == 0 {
			neg = !neg
			op = LE
		}
		// Fast path: no duplicate variable mentions, no zero
		// coefficients, and the row is not negated. Then every
		// coefficient passes through unchanged, so the sparse row can
		// alias the Problem's own *big.Rat values — spTerm values are
		// read-only by contract — instead of paying an allocation and
		// an Add per term. Free variables still clone their negated
		// half. The optimal-mechanism LPs take this path on every row.
		alias := !neg
		if alias {
			for _, t := range con.terms {
				j := s.colPos[t.Var]
				if t.Coeff.Sign() == 0 || seen[j] == r+1 {
					alias = false
					break
				}
				seen[j] = r + 1
			}
		}
		var row []spTerm
		if alias {
			row = make([]spTerm, 0, 2*len(con.terms)+1)
			for _, t := range con.terms {
				row = append(row, spTerm{idx: s.colPos[t.Var], v: t.Coeff})
				if jn := s.colNeg[t.Var]; jn >= 0 {
					row = append(row, spTerm{idx: jn, v: rational.Neg(t.Coeff)})
				}
			}
			sort.Slice(row, func(a, b int) bool { return row[a].idx < row[b].idx })
		} else {
			touched = touched[:0]
			for _, t := range con.terms {
				jp := s.colPos[t.Var]
				if scratch[jp] == nil {
					scratch[jp] = new(big.Rat)
					touched = append(touched, jp)
				}
				scratch[jp].Add(scratch[jp], t.Coeff)
				if jn := s.colNeg[t.Var]; jn >= 0 {
					if scratch[jn] == nil {
						scratch[jn] = new(big.Rat)
						touched = append(touched, jn)
					}
					scratch[jn].Sub(scratch[jn], t.Coeff)
				}
			}
			sort.Ints(touched)
			row = make([]spTerm, 0, len(touched)+1)
			for _, j := range touched {
				v := scratch[j]
				scratch[j] = nil
				if v.Sign() == 0 {
					continue
				}
				if neg {
					v.Neg(v)
				}
				row = append(row, spTerm{idx: j, v: v})
			}
		}
		s.slack[r] = -1
		switch op {
		case LE:
			// The slack column index exceeds every structural index, so
			// appending keeps the row sorted.
			row = append(row, spTerm{idx: slackCol, v: rational.One()})
			s.slack[r] = slackCol
			slackCol++
		case GE:
			row = append(row, spTerm{idx: slackCol, v: rational.New(-1, 1)})
			slackCol++
		}
		s.rows[r] = row
		s.b[r] = rhs
	}

	// Phase-2 cost vector in minimization sense.
	s.c = rational.Vector(s.ncols)
	for i, coef := range p.objective {
		cc := rational.Clone(coef)
		if p.sense == Maximize {
			cc.Neg(cc)
		}
		s.c[s.colPos[i]].Add(s.c[s.colPos[i]], cc)
		if s.colNeg[i] >= 0 {
			s.c[s.colNeg[i]].Sub(s.c[s.colNeg[i]], cc)
		}
	}
	return s
}

// columns returns the column view of the sparse constraint matrix,
// building it on first use: cols[j] lists (row, value) pairs in
// ascending row order, sharing the row view's *big.Rat values.
func (s *standardForm) columns() [][]spTerm {
	if s.cols == nil {
		cols := make([][]spTerm, s.ncols)
		for r, row := range s.rows {
			for _, e := range row {
				cols[e.idx] = append(cols[e.idx], spTerm{idx: r, v: e.v})
			}
		}
		s.cols = cols
	}
	return s.cols
}

// tableau is a simplex dictionary: rows of [A | b] with basis indices
// and a reduced-cost row z of len totalCols, plus current (negated)
// objective value.
type tableau struct {
	rows  [][]*big.Rat // nrows × (totalCols+1); last entry is rhs
	basis []int
	z     []*big.Rat // reduced costs, len totalCols
	obj   *big.Rat   // current objective value (minimization sense)
	ncols int        // total columns, incl. artificials
	art   int        // first artificial column (== len without artificials)

	stats    *SolveStats // optional solve counters (nil = not recorded)
	parallel bool        // allow parallel row elimination in pivot

	// Pooled scratch for the ratio-test and pivot inner loops, reused
	// across pivots so the hot rational kernels do not allocate per
	// row per pivot.
	inv, zf, f, tmp *big.Rat
	ratio, best     *big.Rat
	nz              []int
}

// initScratch attaches opts-driven knobs and allocates the pooled
// scratch. Every tableau constructor must call it before pivoting.
func (t *tableau) initScratch(opts *SolveOpts) {
	if opts != nil {
		t.stats = opts.Stats
		t.parallel = !opts.NoParallelPivot
	}
	t.inv = new(big.Rat)
	t.zf = new(big.Rat)
	t.f = new(big.Rat)
	t.tmp = new(big.Rat)
	t.ratio = new(big.Rat)
	t.best = new(big.Rat)
	t.nz = make([]int, 0, t.ncols+1)
}

// phase1 builds the initial tableau with artificial variables where
// needed, minimizes their sum, and reports Infeasible if it cannot be
// driven to zero.
func (s *standardForm) phase1(ctx context.Context, opts *SolveOpts) (*tableau, Status, error) {
	// Decide per-row whether a slack can serve as the initial basic
	// variable (only for LE rows after sign normalisation, where the
	// slack has +1 coefficient).
	t := &tableau{art: s.ncols}
	t.basis = make([]int, s.nrows)
	nart := 0
	basisFromSlack := s.initialBasis()
	for r := 0; r < s.nrows; r++ {
		if basisFromSlack[r] < 0 {
			nart++
		}
	}
	s.nart = nart
	t.ncols = s.ncols + nart
	t.initScratch(opts)
	t.rows = make([][]*big.Rat, s.nrows)
	artCol := s.ncols
	for r := 0; r < s.nrows; r++ {
		row := make([]*big.Rat, t.ncols+1)
		for j := range row {
			row[j] = new(big.Rat)
		}
		for _, e := range s.rows[r] {
			row[e.idx].Set(e.v)
		}
		row[t.ncols].Set(s.b[r])
		if basisFromSlack[r] >= 0 {
			t.basis[r] = basisFromSlack[r]
		} else {
			row[artCol] = rational.One()
			t.basis[r] = artCol
			artCol++
		}
		t.rows[r] = row
	}
	// Phase-1 cost: minimize sum of artificials. Reduced costs:
	// z_j = c_j − Σ_{basic rows} c_B · a_rj, with c = 1 on artificials.
	t.z = rational.Vector(t.ncols)
	t.obj = rational.Zero()
	for j := s.ncols; j < t.ncols; j++ {
		t.z[j] = rational.One()
	}
	for r := 0; r < s.nrows; r++ {
		if t.basis[r] >= s.ncols { // artificial basic: subtract its row
			for j := 0; j < t.ncols; j++ {
				t.z[j].Sub(t.z[j], t.rows[r][j])
			}
			t.obj.Sub(t.obj, t.rows[r][t.ncols])
		}
	}
	status, err := t.iterate(ctx, nil)
	if err != nil {
		return nil, NoStatus, err
	}
	if status == Unbounded {
		// Phase 1 is bounded below by 0; unbounded cannot happen, but
		// guard anyway.
		return nil, Infeasible, nil
	}
	// Feasible iff artificial sum is zero. obj holds −(current value).
	if t.obj.Sign() != 0 {
		return nil, Infeasible, nil
	}
	// Drive any artificial variables remaining in the basis out.
	for r := 0; r < s.nrows; r++ {
		if t.basis[r] < s.ncols {
			continue
		}
		pivoted := false
		for j := 0; j < s.ncols; j++ {
			if t.rows[r][j].Sign() != 0 {
				t.pivot(r, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero out; its artificial stays basic at 0
			// and will never re-enter because phase 2 bans artificial
			// columns from entering.
			continue
		}
	}
	return t, Optimal, nil
}

func (s *standardForm) isSlackColumn(j int) bool {
	// Slack/surplus columns are those after the structural block.
	return j >= s.structural
}

// initialBasis returns, per row, the slack column usable as that
// row's initial basic variable, or −1 where the row needs an
// artificial. The candidate is recorded during construction: each
// slack/surplus column appears in exactly one row, so a row's own
// +1-coefficient slack (LE rows after sign normalization) is the
// unique choice. Both the exact phase 1 and the float solver seed
// their bases from this, which keeps their pivot paths aligned for
// the warm-start crossover.
func (s *standardForm) initialBasis() []int {
	return append([]int(nil), s.slack...)
}

// phase2 swaps in the real cost vector and re-optimizes, forbidding
// artificial columns from entering.
func (s *standardForm) phase2(ctx context.Context, t *tableau) (Status, error) {
	// Rebuild reduced costs for the real objective:
	// z_j = c_j − Σ_r c_{B(r)} a_{rj};  obj = −Σ_r c_{B(r)} b_r.
	t.z = rational.Vector(t.ncols)
	t.obj = rational.Zero()
	for j := 0; j < s.ncols; j++ {
		t.z[j] = rational.Clone(s.c[j])
	}
	tmp := rational.Zero()
	for r := 0; r < s.nrows; r++ {
		bi := t.basis[r]
		var cb *big.Rat
		if bi < s.ncols {
			cb = s.c[bi]
		} else {
			cb = rational.Zero() // leftover artificial pinned at 0
		}
		if cb.Sign() == 0 {
			continue
		}
		for j := 0; j < t.ncols; j++ {
			tmp.Mul(cb, t.rows[r][j])
			t.z[j].Sub(t.z[j], tmp)
		}
		tmp.Mul(cb, t.rows[r][t.ncols])
		t.obj.Sub(t.obj, tmp)
	}
	banned := make([]bool, t.ncols)
	for j := s.ncols; j < t.ncols; j++ {
		banned[j] = true
	}
	return t.iterate(ctx, banned)
}

// iterate runs simplex pivots until optimal, unbounded, or ctx
// cancellation (the solver's cancellation checkpoint: one ctx.Err()
// read per pivot, negligible next to the rational arithmetic of the
// pivot itself). banned marks columns that may not enter (nil =
// none).
//
// Pivot rule: Dantzig (most negative reduced cost) by default — it
// needs far fewer pivots, which matters doubly here because every
// pivot also grows the rational entries — switching to Bland's rule
// whenever the objective has stalled for a while. Bland's rule cannot
// cycle, so the hybrid terminates; degenerate stretches are exactly
// where Dantzig could loop.
func (t *tableau) iterate(ctx context.Context, banned []bool) (Status, error) {
	const stallLimit = 12 // degenerate pivots tolerated before engaging Bland
	stalled := 0
	lastObj := rational.Clone(t.obj)
	for {
		if err := ctx.Err(); err != nil {
			// NoStatus, never Optimal: an aborted solve must not be
			// mistakable for a certified one by a caller that checks the
			// status before the error.
			return NoStatus, err
		}
		useBland := stalled >= stallLimit
		enter := -1
		var best *big.Rat
		for j := 0; j < t.ncols; j++ {
			if banned != nil && banned[j] {
				continue
			}
			if t.z[j].Sign() >= 0 {
				continue
			}
			if useBland {
				enter = j
				break // Bland: smallest eligible index
			}
			if enter < 0 || t.z[j].Cmp(best) < 0 {
				enter = j
				best = t.z[j]
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		leave := -1
		// Two pooled scratch Rats ping-pong between "candidate" and
		// "best so far", so the ratio test allocates nothing.
		ratio, bestRatio := t.ratio, t.best
		for r := range t.rows {
			arj := t.rows[r][enter]
			if arj.Sign() <= 0 {
				continue
			}
			ratio.Quo(t.rows[r][t.ncols], arj)
			if leave < 0 || ratio.Cmp(bestRatio) < 0 ||
				(ratio.Cmp(bestRatio) == 0 && t.basis[r] < t.basis[leave]) {
				leave = r
				ratio, bestRatio = bestRatio, ratio
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		t.pivot(leave, enter)
		if t.obj.Cmp(lastObj) == 0 {
			stalled++
		} else {
			stalled = 0
			lastObj.Set(t.obj)
		}
	}
}

// parallelPivotMinWork is the rows×nonzeros product above which pivot
// row elimination fans out across goroutines. Below it the rational
// arithmetic per pivot is cheaper than goroutine handoff; at the
// serving-size mechanism LPs a single pivot is hundreds of thousands
// of big.Rat multiplies and the fan-out wins decisively.
const parallelPivotMinWork = 2048

// pivot performs a full tableau pivot on (row, col). Only the nonzero
// columns of the pivot row participate in the elimination — simplex
// tableaus on the paper's LPs stay sparse for many iterations, and
// skipping structural zeros is a large constant-factor win for
// rational arithmetic.
//
// The body works entirely in pooled scratch (t.inv, t.zf, t.tmp) —
// the hotpath annotation holds the pool discipline in place.
//
//dpvet:hotpath
func (t *tableau) pivot(row, col int) {
	if t.stats != nil {
		t.stats.ExactPivots++
	}
	pr := t.rows[row]
	t.inv.Inv(pr[col])
	nz := t.nz[:0]
	for j := range pr {
		if pr[j].Sign() == 0 {
			continue
		}
		pr[j].Mul(pr[j], t.inv)
		nz = append(nz, j)
	}
	t.nz = nz
	if t.parallel && (len(t.rows)-1)*len(nz) >= parallelPivotMinWork {
		t.eliminateRowsParallel(row, col, pr, nz)
	} else {
		t.eliminateRows(row, col, pr, nz)
	}
	zf := t.zf
	zf.Set(t.z[col])
	if zf.Sign() != 0 {
		tmp := t.tmp
		for _, j := range nz {
			tmp.Mul(zf, pr[j])
			if j < t.ncols {
				t.z[j].Sub(t.z[j], tmp)
			} else {
				t.obj.Sub(t.obj, tmp)
			}
		}
	}
	t.basis[row] = col
}

// eliminateRows is the serial elimination kernel: subtract
// factor×(pivot row) from every other row with a nonzero in the pivot
// column. The factor is copied into pooled scratch first because
// tr[col] — the factor's own cell — is zeroed mid-loop.
//
//dpvet:hotpath
func (t *tableau) eliminateRows(row, col int, pr []*big.Rat, nz []int) {
	f, tmp := t.f, t.tmp
	for r := range t.rows {
		if r == row {
			continue
		}
		tr := t.rows[r]
		if tr[col].Sign() == 0 {
			continue
		}
		f.Set(tr[col])
		for _, j := range nz {
			tmp.Mul(f, pr[j])
			tr[j].Sub(tr[j], tmp)
		}
	}
}

// eliminateRowsParallel fans the eliminations out across a bounded
// set of goroutines. Safe without locks: each worker owns a disjoint
// chunk of rows and its own scratch Rats, the pivot row pr and nz are
// read-only here (normalized before the fan-out), and the z-row is
// updated serially by the caller afterwards.
func (t *tableau) eliminateRowsParallel(row, col int, pr []*big.Rat, nz []int) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(t.rows) {
		workers = len(t.rows)
	}
	if workers < 2 {
		t.eliminateRows(row, col, pr, nz)
		return
	}
	if t.stats != nil {
		t.stats.ParallelPivots++
	}
	chunk := (len(t.rows) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(t.rows); lo += chunk {
		hi := lo + chunk
		if hi > len(t.rows) {
			hi = len(t.rows)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f := new(big.Rat)
			tmp := new(big.Rat)
			for r := lo; r < hi; r++ {
				if r == row {
					continue
				}
				tr := t.rows[r]
				if tr[col].Sign() == 0 {
					continue
				}
				f.Set(tr[col])
				for _, j := range nz {
					tmp.Mul(f, pr[j])
					tr[j].Sub(tr[j], tmp)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// extract reads the optimal original-variable values out of the final
// tableau.
func (s *standardForm) extract(t *tableau) []*big.Rat {
	colVal := rational.Vector(t.ncols)
	for r, bi := range t.basis {
		colVal[bi] = rational.Clone(t.rows[r][t.ncols])
	}
	return s.extractFromCols(colVal)
}

// extractFromCols maps a per-column value vector (basic variables set,
// everything else zero) back to original problem variables, recombining
// split free variables. colVal may omit artificial columns.
func (s *standardForm) extractFromCols(colVal []*big.Rat) []*big.Rat {
	x := rational.Vector(len(s.p.vars))
	for i := range s.p.vars {
		x[i] = rational.Clone(colVal[s.colPos[i]])
		if s.colNeg[i] >= 0 {
			x[i].Sub(x[i], colVal[s.colNeg[i]])
		}
	}
	return x
}

// DescribeVar returns the name given to v at creation, for debugging.
func (p *Problem) DescribeVar(v Var) string {
	if int(v) < 0 || int(v) >= len(p.vars) {
		return fmt.Sprintf("var#%d", int(v))
	}
	return p.vars[int(v)].name
}
