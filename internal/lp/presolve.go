// Exact presolve: Andersen-style problem reductions over big.Rat.
//
// Before the simplex machinery sees a Problem, the presolver strips
// structure that can be resolved by inspection — empty rows,
// non-binding (activity-redundant) rows, row singletons (forced
// values and variable bounds), column singletons (free variables
// determined by an equation, implied slacks), forced-to-zero rows,
// and empty columns — and records an operation stack whose reverse
// replay reconstructs the full original-variable solution exactly.
// Every reduction is an *exact* correspondence of feasible sets:
//
//   - dropped rows are implied by the remaining system (so feasible
//     sets are literally equal),
//   - fixed variables take their recorded value in every feasible
//     (or every optimal) point,
//   - shifted variables x = x' + l and substituted variables
//     x_j = (b − Σ a_k x_k)/a_j are affine bijections that preserve
//     the objective up to an additive constant.
//
// Because each correspondence is a bijection on *optimal* sets, a
// uniquely-optimal reduced problem pulls back to a uniquely-optimal
// original, which is what lets the presolved path keep the package's
// byte-identity contract: a presolved result is returned only when
// the reduced solve certifies strict dual non-degeneracy (uniqueness)
// — otherwise the solve is demoted to the standard path on the
// original problem, whose own certificate discipline applies. Status
// verdicts (Infeasible, Unbounded) are set-level facts preserved by
// the correspondences and so are always safe to propagate; the
// presolver additionally defers "unbounded if feasible" discoveries
// (an empty column that can improve the objective forever) until the
// remaining system is known feasible, matching the two-phase solver's
// Infeasible-before-Unbounded precedence.
//
// The postsolve stack replays in reverse. The invariant making this
// sound: an operation's stored terms only reference variables that
// were still alive when the operation was pushed, and such variables
// are eliminated later (if at all), hence reconstructed earlier in
// the reverse replay. Stored rows are snapshots, but the reconstructed
// value is invariant under the substitutions applied after the
// snapshot, because those substitutions preserve each variable's
// original-scale value.
package lp

import (
	"context"
	"math/big"

	"minimaxdp/internal/rational"
)

// solvePresolved runs presolve and, when reductions fire, solves the
// reduced problem and maps the result back. done=false (with nil
// error) means the caller should solve the original problem instead —
// either nothing fired, or the reduced optimum could not be certified
// unique, in which case only a direct solve keeps the byte-identity
// contract with the dense oracle.
func (p *Problem) solvePresolved(ctx context.Context, opts *SolveOpts) (*Solution, bool, error) {
	if !p.presolveMayFire() {
		return nil, false, nil
	}
	pr := newPresolver(p)
	if pr.run() == Infeasible {
		pr.recordStats(opts)
		return &Solution{Status: Infeasible}, true, nil
	}
	if !pr.fired() {
		return nil, false, nil
	}
	pr.recordStats(opts)
	if pr.tieResolved {
		// A reduction picked one of several tied optima; only a direct
		// solve of the original problem keeps the identity contract.
		return nil, false, nil
	}
	if pr.colsRemoved == len(pr.elim) {
		// Every variable was resolved by inspection; at fixpoint that
		// means every row was too, so the system is feasible.
		if pr.unboundedRay {
			return &Solution{Status: Unbounded}, true, nil
		}
		return p.optimalSolution(pr.postsolve(nil, nil)), true, nil
	}
	red, varMap := pr.reducedProblem()
	rsol, strict, err := red.solveCertified(ctx, opts)
	if err != nil {
		return nil, false, err
	}
	switch rsol.Status {
	case Infeasible:
		// Infeasibility beats a deferred unbounded ray, matching the
		// two-phase solver's phase-1-first precedence.
		return &Solution{Status: Infeasible}, true, nil
	case Unbounded:
		return &Solution{Status: Unbounded}, true, nil
	}
	if pr.unboundedRay {
		// The reductions held back an improving ray until feasibility
		// of the rest was established; it is established now.
		return &Solution{Status: Unbounded}, true, nil
	}
	if !strict {
		return nil, false, nil // demote: re-solve the original problem
	}
	return p.optimalSolution(pr.postsolve(rsol.X, varMap)), true, nil
}

// presolveMayFire is a no-allocation screen run before the presolver
// is built: it re-checks, over the Problem as modelled, every
// condition under which the first rowPass/colPass sweep could apply a
// reduction. When none can, run() would reach its fixpoint with zero
// changes, so building the presolver — which clones the objective and
// every constraint into big.Rat working copies — is pure overhead;
// the tailored/interaction LPs land here and skip it. The screen errs
// toward true: duplicate variable mentions or zero coefficients in a
// constraint (which term combination could collapse into a smaller
// row) report true rather than reproduce the combination logic, as
// does any structure the mirrored trigger conditions flag. A true
// merely means the presolver runs and decides for itself, exactly as
// before the screen existed.
func (p *Problem) presolveMayFire() bool {
	nv := len(p.vars)
	cnt := make([]int, nv)  // per variable: rows mentioning it
	seen := make([]int, nv) // duplicate-mention stamps, row index + 1
	for r, con := range p.cons {
		if len(con.terms) < 2 {
			return true // empty row or row singleton
		}
		allPos, allNeg := true, true
		for _, t := range con.terms {
			j := int(t.Var)
			if t.Coeff.Sign() == 0 || seen[j] == r+1 {
				return true // combination could shrink the row
			}
			seen[j] = r + 1
			cnt[j]++
			if p.vars[j].free {
				allPos, allNeg = false, false
			} else if t.Coeff.Sign() > 0 {
				allNeg = false
			} else {
				allPos = false
			}
		}
		// Mirror rowPass's activity-analysis triggers (infeasible,
		// non-binding, and forcing rows).
		sgn := con.rhs.Sign()
		switch {
		case allPos && sgn < 0 && (con.op == LE || con.op == EQ),
			allNeg && sgn > 0 && (con.op == GE || con.op == EQ),
			allNeg && sgn >= 0 && con.op == LE,
			allPos && sgn <= 0 && con.op == GE,
			sgn == 0 && ((allPos && con.op != GE) || (allNeg && con.op != LE)):
			return true
		}
	}
	for _, n := range cnt {
		if n < 2 {
			return true // empty column or column singleton
		}
	}
	return false
}

// recordStats publishes the reduction counts. They are recorded even
// when the solve is later demoted to the original problem, so a
// Fallback solve still reports what presolve attempted.
func (pr *presolver) recordStats(opts *SolveOpts) {
	if opts.Stats != nil {
		opts.Stats.PresolveRows = pr.rowsRemoved
		opts.Stats.PresolveCols = pr.colsRemoved
	}
}

// presTerm is one nonzero coefficient of a presolver row, indexed by
// original variable.
type presTerm struct {
	j int
	a *big.Rat
}

// presRow is a mutable working copy of one constraint.
type presRow struct {
	terms []presTerm
	op    Op
	rhs   *big.Rat
	dead  bool
}

// postOpKind tags entries of the postsolve stack.
type postOpKind int

const (
	opFix     postOpKind = iota // X[j] = v
	opShift                     // X[j] += v (variable was rebased x = x' + v)
	opFromRow                   // X[j] = (rhs − Σ terms·X) / a
)

// postOp is one reverse-replayable reconstruction step.
type postOp struct {
	kind  postOpKind
	j     int
	v     *big.Rat   // opFix value / opShift delta
	terms []presTerm // opFromRow: the eliminated row's other terms (snapshot)
	rhs   *big.Rat   // opFromRow: the eliminated row's rhs (snapshot)
	a     *big.Rat   // opFromRow: coefficient of j in that row
}

// presolver holds the mutable reduction state for one Problem.
type presolver struct {
	p    *Problem
	free []bool     // per original var; shifts convert free → non-negative
	cmin []*big.Rat // objective in minimization sense; mutated by substitution folding
	rows []*presRow
	elim []bool  // per original var: eliminated from the reduced problem
	cnt  []int   // per var: live nonzero count across live rows
	use  [][]int // per var: row indices possibly containing it (may be stale)

	ops          []postOp
	unboundedRay bool   // an eliminated column improves the objective without bound
	origEmpty    []bool // per var: column empty in the problem as modelled
	tieResolved  bool   // a reduction chose among tied optima; identity is lost
	rowsRemoved  int
	colsRemoved  int
}

func newPresolver(p *Problem) *presolver {
	pr := &presolver{p: p}
	nv := len(p.vars)
	pr.free = make([]bool, nv)
	for i, v := range p.vars {
		pr.free[i] = v.free
	}
	pr.cmin = make([]*big.Rat, nv)
	for i, c := range p.objective {
		cc := rational.Clone(c)
		if p.sense == Maximize {
			cc.Neg(cc)
		}
		pr.cmin[i] = cc
	}
	pr.elim = make([]bool, nv)
	pr.cnt = make([]int, nv)
	pr.use = make([][]int, nv)
	pr.rows = make([]*presRow, len(p.cons))
	scratch := make([]*big.Rat, nv)
	touched := make([]int, 0, 16)
	for r, con := range p.cons {
		touched = touched[:0]
		for _, t := range con.terms {
			j := int(t.Var)
			if scratch[j] == nil {
				scratch[j] = new(big.Rat)
				touched = append(touched, j)
			}
			scratch[j].Add(scratch[j], t.Coeff)
		}
		row := &presRow{op: con.op, rhs: rational.Clone(con.rhs)}
		for _, j := range touched {
			v := scratch[j]
			scratch[j] = nil
			if v.Sign() == 0 {
				continue
			}
			row.terms = append(row.terms, presTerm{j: j, a: v})
			pr.cnt[j]++
			pr.use[j] = append(pr.use[j], r)
		}
		pr.rows[r] = row
	}
	pr.origEmpty = make([]bool, nv)
	for j, n := range pr.cnt {
		pr.origEmpty[j] = n == 0
	}
	return pr
}

// fired reports whether any reduction was applied.
func (pr *presolver) fired() bool {
	return pr.rowsRemoved > 0 || pr.colsRemoved > 0 || len(pr.ops) > 0
}

// dropRow retires row r and releases its variables' use counts.
func (pr *presolver) dropRow(r int) {
	row := pr.rows[r]
	row.dead = true
	for _, t := range row.terms {
		pr.cnt[t.j]--
	}
	pr.rowsRemoved++
}

// removeTerm deletes variable j's term from row r (no rhs change).
func (pr *presolver) removeTerm(r, j int) {
	row := pr.rows[r]
	for i, t := range row.terms {
		if t.j == j {
			row.terms = append(row.terms[:i], row.terms[i+1:]...)
			pr.cnt[j]--
			return
		}
	}
}

// fix eliminates variable j at the known value v, substituting it out
// of every live row.
func (pr *presolver) fix(j int, v *big.Rat) {
	pr.elim[j] = true
	pr.colsRemoved++
	pr.ops = append(pr.ops, postOp{kind: opFix, j: j, v: rational.Clone(v)})
	if v.Sign() != 0 {
		tmp := new(big.Rat)
		for _, r := range pr.use[j] {
			row := pr.rows[r]
			if row.dead {
				continue
			}
			for _, t := range row.terms {
				if t.j == j {
					tmp.Mul(t.a, v)
					row.rhs.Sub(row.rhs, tmp)
					break
				}
			}
		}
	}
	for _, r := range pr.use[j] {
		if !pr.rows[r].dead {
			pr.removeTerm(r, j)
		}
	}
	pr.use[j] = nil
}

// shift rebases variable j as x = x' + d with x' ≥ 0 (the reduced
// problem keeps j's column; only right-hand sides move).
func (pr *presolver) shift(j int, d *big.Rat) {
	pr.ops = append(pr.ops, postOp{kind: opShift, j: j, v: rational.Clone(d)})
	tmp := new(big.Rat)
	for _, r := range pr.use[j] {
		row := pr.rows[r]
		if row.dead {
			continue
		}
		for _, t := range row.terms {
			if t.j == j {
				tmp.Mul(t.a, d)
				row.rhs.Sub(row.rhs, tmp)
				break
			}
		}
	}
	pr.free[j] = false
}

// snapshotFromRow records the opFromRow reconstruction for variable j
// out of row r (whose terms currently include j with coefficient a).
func (pr *presolver) snapshotFromRow(j int, row *presRow, a *big.Rat) {
	op := postOp{kind: opFromRow, j: j, rhs: rational.Clone(row.rhs), a: rational.Clone(a)}
	for _, t := range row.terms {
		if t.j != j {
			op.terms = append(op.terms, presTerm{j: t.j, a: rational.Clone(t.a)})
		}
	}
	pr.ops = append(pr.ops, op)
}

// run applies reductions to fixpoint. It returns Infeasible when the
// problem is proved infeasible and NoStatus otherwise ("keep going").
func (pr *presolver) run() Status {
	for {
		changed := false
		for r := range pr.rows {
			st, ch := pr.rowPass(r)
			if st == Infeasible {
				return Infeasible
			}
			changed = changed || ch
		}
		for j := range pr.elim {
			st, ch := pr.colPass(j)
			if st == Infeasible {
				return Infeasible
			}
			changed = changed || ch
		}
		if !changed {
			return NoStatus
		}
	}
}

// rowPass applies the row-local reductions to row r.
func (pr *presolver) rowPass(r int) (Status, bool) {
	row := pr.rows[r]
	if row.dead {
		return NoStatus, false
	}
	if len(row.terms) == 0 {
		// Empty row: 0 op rhs either always holds or never does.
		sgn := row.rhs.Sign()
		ok := false
		switch row.op {
		case LE:
			ok = sgn >= 0
		case GE:
			ok = sgn <= 0
		case EQ:
			ok = sgn == 0
		}
		if !ok {
			return Infeasible, false
		}
		pr.dropRow(r)
		return NoStatus, true
	}
	// Activity analysis over sign-restricted variables: with every
	// x ≥ 0, a row whose coefficients share a sign has a one-sided
	// activity range starting at 0. Free variables void the bounds.
	allPos, allNeg := true, true
	for _, t := range row.terms {
		if pr.free[t.j] {
			allPos, allNeg = false, false
			break
		}
		if t.a.Sign() > 0 {
			allNeg = false
		} else {
			allPos = false
		}
	}
	sgn := row.rhs.Sign()
	switch {
	case allPos && sgn < 0 && (row.op == LE || row.op == EQ):
		return Infeasible, false // activity ≥ 0 can never reach rhs < 0
	case allNeg && sgn > 0 && (row.op == GE || row.op == EQ):
		return Infeasible, false // activity ≤ 0 can never reach rhs > 0
	case allNeg && sgn >= 0 && row.op == LE,
		allPos && sgn <= 0 && row.op == GE:
		pr.dropRow(r) // non-binding: activity range satisfies the row outright
		return NoStatus, true
	case sgn == 0 && ((allPos && row.op != GE) || (allNeg && row.op != LE)):
		// Forcing row: activity must equal its own bound of 0, so every
		// participating variable is pinned there.
		fixv := make([]int, 0, len(row.terms))
		for _, t := range row.terms {
			fixv = append(fixv, t.j)
		}
		zero := rational.Zero()
		for _, j := range fixv {
			pr.fix(j, zero)
		}
		pr.dropRow(r)
		return NoStatus, true
	}
	if len(row.terms) != 1 {
		return NoStatus, false
	}
	// Row singleton: a·x op rhs is a bound (or a forced value) on x.
	j, a := row.terms[0].j, row.terms[0].a
	bound := rational.Div(row.rhs, a)
	op := row.op
	if a.Sign() < 0 {
		switch op { // dividing by a < 0 flips the inequality
		case LE:
			op = GE
		case GE:
			op = LE
		}
	}
	switch op {
	case EQ:
		if !pr.free[j] && bound.Sign() < 0 {
			return Infeasible, false
		}
		pr.dropRow(r)
		pr.fix(j, bound)
		return NoStatus, true
	case GE:
		if !pr.free[j] && bound.Sign() <= 0 {
			pr.dropRow(r) // implied by x ≥ 0
			return NoStatus, true
		}
		// Lower bound: rebase x = x' + bound, x' ≥ 0. Also turns a free
		// variable into a sign-restricted one.
		pr.dropRow(r)
		pr.shift(j, bound)
		return NoStatus, true
	case LE:
		if !pr.free[j] {
			switch bound.Sign() {
			case 0:
				pr.dropRow(r)
				pr.fix(j, bound)
				return NoStatus, true
			case -1:
				return Infeasible, false
			}
		}
		// A genuine upper bound needs the row; leave it in place.
	}
	return NoStatus, false
}

// colPass applies the column-local reductions to variable j.
func (pr *presolver) colPass(j int) (Status, bool) {
	if pr.elim[j] {
		return NoStatus, false
	}
	if pr.cnt[j] == 0 {
		// Empty column: unconstrained but for its sign. A cost that
		// rewards growth makes the LP unbounded *if* the rest is
		// feasible. A cost that punishes growth pins the variable at 0
		// in every optimum, so fixing preserves the optimal set. A zero
		// cost is a tie: the dense solver provably leaves a column that
		// was empty *as modelled* nonbasic at 0 (its reduced cost is 0
		// in both phases, never negative), so 0 is identity-safe there —
		// but a column emptied by reductions (a shifted bound variable
		// whose rows were dropped, say) has no such pin, and fixing it
		// resolves a tie the dense solver might resolve differently.
		// The driver demotes such solves to the original problem.
		sgn := pr.cmin[j].Sign()
		if sgn < 0 || (pr.free[j] && sgn != 0) {
			pr.elim[j] = true
			pr.colsRemoved++
			pr.unboundedRay = true
			return NoStatus, true
		}
		if sgn == 0 && !pr.origEmpty[j] {
			pr.tieResolved = true
		}
		pr.fix(j, rational.Zero())
		return NoStatus, true
	}
	if pr.cnt[j] != 1 {
		return NoStatus, false
	}
	// Column singleton: find the single live row holding j.
	var row *presRow
	var a *big.Rat
	for _, r := range pr.use[j] {
		cand := pr.rows[r]
		if cand.dead {
			continue
		}
		for _, t := range cand.terms {
			if t.j == j {
				row, a = cand, t.a
				break
			}
		}
		if row != nil {
			break
		}
	}
	if row == nil || row.op != EQ || len(row.terms) < 2 {
		return NoStatus, false
	}
	switch {
	case pr.free[j]:
		// Free column singleton in an equation: the row determines
		// x_j = (rhs − Σ a_k x_k)/a_j outright, so both the variable and
		// the row leave the problem. Its cost folds onto the remaining
		// variables of the row (the constant term is dropped; the final
		// objective is recomputed over the original problem).
		pr.snapshotFromRow(j, row, a)
		if pr.cmin[j].Sign() != 0 {
			ratio := rational.Div(pr.cmin[j], a)
			tmp := new(big.Rat)
			for _, t := range row.terms {
				if t.j == j {
					continue
				}
				tmp.Mul(ratio, t.a)
				pr.cmin[t.j].Sub(pr.cmin[t.j], tmp)
			}
		}
		pr.elim[j] = true
		pr.colsRemoved++
		rr := -1
		for _, r := range pr.use[j] {
			if pr.rows[r] == row {
				rr = r
				break
			}
		}
		pr.use[j] = nil
		pr.removeTerm(rr, j) // keep counts consistent before the drop
		pr.dropRow(rr)
		return NoStatus, true
	case pr.cmin[j].Sign() == 0:
		// Implied slack: a zero-cost sign-restricted singleton in an
		// equation is exactly a slack variable. Dropping it relaxes the
		// equation to the corresponding inequality, and postsolve
		// recovers its value from the row's final activity.
		pr.snapshotFromRow(j, row, a)
		pr.elim[j] = true
		pr.colsRemoved++
		rr := -1
		for _, r := range pr.use[j] {
			if pr.rows[r] == row {
				rr = r
				break
			}
		}
		pr.use[j] = nil
		pr.removeTerm(rr, j)
		if a.Sign() > 0 {
			row.op = LE // a_j x_j = rhs − Σ' ≥ 0
		} else {
			row.op = GE
		}
		return NoStatus, true
	}
	return NoStatus, false
}

// reducedProblem builds the Problem over the surviving rows and
// variables. varMap[k] is the original index of reduced variable k.
// It must only be called when at least one variable survives.
func (pr *presolver) reducedProblem() (*Problem, []int) {
	red := NewProblem(Minimize)
	varMap := make([]int, 0, len(pr.elim))
	toRed := make([]int, len(pr.elim))
	for j := range pr.elim {
		if pr.elim[j] {
			toRed[j] = -1
			continue
		}
		var v Var
		if pr.free[j] {
			v = red.FreeVariable(pr.p.vars[j].name)
		} else {
			v = red.NewVariable(pr.p.vars[j].name)
		}
		red.SetObjectiveCoeff(v, pr.cmin[j])
		toRed[j] = int(v)
		varMap = append(varMap, j)
	}
	terms := make([]Term, 0, 16)
	for _, row := range pr.rows {
		if row.dead {
			continue
		}
		terms = terms[:0]
		for _, t := range row.terms {
			terms = append(terms, Term{Var: Var(toRed[t.j]), Coeff: t.a})
		}
		red.AddConstraint(terms, row.op, row.rhs)
	}
	return red, varMap
}

// postsolve reconstructs the original-variable assignment from the
// reduced solution (redX indexed by reduced variable, nil when no
// variable survived) by replaying the operation stack in reverse.
func (pr *presolver) postsolve(redX []*big.Rat, varMap []int) []*big.Rat {
	x := make([]*big.Rat, len(pr.elim))
	for k, j := range varMap {
		x[j] = rational.Clone(redX[k])
	}
	tmp := new(big.Rat)
	for i := len(pr.ops) - 1; i >= 0; i-- {
		op := pr.ops[i]
		switch op.kind {
		case opFix:
			x[op.j] = rational.Clone(op.v)
		case opShift:
			x[op.j].Add(x[op.j], op.v)
		case opFromRow:
			v := rational.Clone(op.rhs)
			for _, t := range op.terms {
				tmp.Mul(t.a, x[t.j])
				v.Sub(v, tmp)
			}
			x[op.j] = v.Quo(v, op.a)
		}
	}
	return x
}
