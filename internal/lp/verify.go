package lp

import (
	"fmt"
	"math/big"

	"minimaxdp/internal/rational"
)

// Verify checks, in exact arithmetic, that the solution satisfies
// every constraint of the problem and every variable's sign
// restriction, and that the recorded objective value matches the
// assignment. It is an independent certificate: the checker shares no
// state with the simplex machinery beyond the problem definition, so a
// bug in pivoting cannot hide from it.
func (s *Solution) Verify(p *Problem) error {
	if s.Status != Optimal {
		return fmt.Errorf("lp: cannot verify a %v solution", s.Status)
	}
	if len(s.X) != len(p.vars) {
		return fmt.Errorf("lp: solution has %d values for %d variables", len(s.X), len(p.vars))
	}
	for i, v := range p.vars {
		if !v.free && s.X[i].Sign() < 0 {
			return fmt.Errorf("lp: variable %s = %s violates non-negativity", v.name, s.X[i].RatString())
		}
	}
	lhs := rational.Zero()
	tmp := rational.Zero()
	for ci, con := range p.cons {
		lhs.SetInt64(0)
		for _, t := range con.terms {
			tmp.Mul(t.Coeff, s.X[int(t.Var)])
			lhs.Add(lhs, tmp)
		}
		ok := false
		switch con.op {
		case LE:
			ok = lhs.Cmp(con.rhs) <= 0
		case GE:
			ok = lhs.Cmp(con.rhs) >= 0
		case EQ:
			ok = lhs.Cmp(con.rhs) == 0
		}
		if !ok {
			return fmt.Errorf("lp: constraint %d violated: %s %s %s",
				ci, lhs.RatString(), con.op, con.rhs.RatString())
		}
	}
	obj := rational.Zero()
	for i, c := range p.objective {
		tmp.Mul(c, s.X[i])
		obj.Add(obj, tmp)
	}
	if obj.Cmp(s.Objective) != 0 {
		return fmt.Errorf("lp: recorded objective %s does not match assignment's %s",
			s.Objective.RatString(), obj.RatString())
	}
	return nil
}

// BoundCertificate checks weak duality by hand: for a minimization
// problem, any feasible solution's objective is an upper bound on the
// optimum, so two independently produced solutions can cross-validate
// each other. It returns an error if candidate is feasible yet has a
// strictly better objective than s (which would disprove s's
// optimality).
func (s *Solution) BoundCertificate(p *Problem, candidate []*big.Rat) error {
	if s.Status != Optimal {
		return fmt.Errorf("lp: cannot certify a %v solution", s.Status)
	}
	if len(candidate) != len(p.vars) {
		return fmt.Errorf("lp: candidate has %d values for %d variables", len(candidate), len(p.vars))
	}
	cand := &Solution{Status: Optimal, X: candidate, Objective: rational.Zero()}
	tmp := rational.Zero()
	for i, c := range p.objective {
		tmp.Mul(c, candidate[i])
		cand.Objective.Add(cand.Objective, tmp)
	}
	if err := cand.Verify(p); err != nil {
		return nil // infeasible candidates certify nothing
	}
	better := false
	if p.sense == Minimize {
		better = cand.Objective.Cmp(s.Objective) < 0
	} else {
		better = cand.Objective.Cmp(s.Objective) > 0
	}
	if better {
		return fmt.Errorf("lp: feasible candidate with objective %s beats claimed optimum %s",
			cand.Objective.RatString(), s.Objective.RatString())
	}
	return nil
}
