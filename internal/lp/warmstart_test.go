package lp

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"testing"

	"minimaxdp/internal/rational"
)

// solveBoth runs p under both strategies and returns (exact, warm).
func solveBoth(t *testing.T, p *Problem, warmStats *SolveStats) (*Solution, *Solution) {
	t.Helper()
	exact, err := p.SolveWithOpts(context.Background(), SolveOpts{Strategy: StrategyExact})
	if err != nil {
		t.Fatalf("exact solve: %v", err)
	}
	warm, err := p.SolveWithOpts(context.Background(), SolveOpts{Stats: warmStats})
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	return exact, warm
}

// assertIdentical asserts byte-identical Status/Objective/X between
// the two solutions (Rat.Cmp == 0 everywhere).
func assertIdentical(t *testing.T, exact, warm *Solution) {
	t.Helper()
	if exact.Status != warm.Status {
		t.Fatalf("status: exact %v, warm %v", exact.Status, warm.Status)
	}
	if exact.Status != Optimal {
		return
	}
	if exact.Objective.Cmp(warm.Objective) != 0 {
		t.Fatalf("objective: exact %s, warm %s",
			exact.Objective.RatString(), warm.Objective.RatString())
	}
	if len(exact.X) != len(warm.X) {
		t.Fatalf("len(X): exact %d, warm %d", len(exact.X), len(warm.X))
	}
	for i := range exact.X {
		if exact.X[i].Cmp(warm.X[i]) != 0 {
			t.Fatalf("X[%d]: exact %s, warm %s",
				i, exact.X[i].RatString(), warm.X[i].RatString())
		}
	}
}

// tailoredTestLP hand-builds the §2.5 tailored-mechanism LP for the
// absolute-loss consumer (|i−r| coefficients) at size n — the same
// structure internal/consumer generates, without importing it.
func tailoredTestLP(n int, alpha *big.Rat) *Problem {
	p := NewProblem(Minimize)
	d := p.NewVariable("d")
	xv := make([][]Var, n+1)
	for i := 0; i <= n; i++ {
		xv[i] = make([]Var, n+1)
		for r := 0; r <= n; r++ {
			xv[i][r] = p.NewVariable(fmt.Sprintf("x_%d_%d", i, r))
		}
	}
	p.SetObjective(TInt(d, 1))
	for i := 0; i <= n; i++ {
		terms := []Term{TInt(d, 1)}
		for r := 0; r <= n; r++ {
			dd := int64(i - r)
			if dd < 0 {
				dd = -dd
			}
			if dd != 0 {
				terms = append(terms, T(xv[i][r], rational.Int(-dd)))
			}
		}
		p.AddConstraint(terms, GE, rational.Zero())
	}
	negAlpha := rational.Neg(alpha)
	for i := 0; i < n; i++ {
		for r := 0; r <= n; r++ {
			p.AddConstraint([]Term{TInt(xv[i][r], 1), T(xv[i+1][r], negAlpha)}, GE, rational.Zero())
			p.AddConstraint([]Term{TInt(xv[i+1][r], 1), T(xv[i][r], negAlpha)}, GE, rational.Zero())
		}
	}
	for i := 0; i <= n; i++ {
		terms := make([]Term, 0, n+1)
		for r := 0; r <= n; r++ {
			terms = append(terms, TInt(xv[i][r], 1))
		}
		p.AddConstraint(terms, EQ, rational.One())
	}
	return p
}

// TestWarmStartMatchesExactOnSuite runs every shape the exact solver
// is separately tested on — plus the paper's tailored LPs — through
// both strategies and demands byte-identical results.
func TestWarmStartMatchesExactOnSuite(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Problem
	}{
		{"classic-max", buildClassic},
		{"small", smallLP},
		{"ge-min", func() *Problem {
			p := NewProblem(Minimize)
			x := p.NewVariable("x")
			y := p.NewVariable("y")
			p.SetObjective(TInt(x, 2), TInt(y, 3))
			p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1)}, GE, rational.Int(4))
			p.AddConstraint([]Term{TInt(x, 1), TInt(y, 2)}, GE, rational.Int(6))
			return p
		}},
		{"equality", func() *Problem {
			p := NewProblem(Maximize)
			x := p.NewVariable("x")
			y := p.NewVariable("y")
			p.SetObjective(TInt(x, 1), TInt(y, 2))
			p.AddConstraint([]Term{TInt(x, 1), TInt(y, 1)}, EQ, rational.Int(5))
			p.AddConstraint([]Term{TInt(x, 1)}, LE, rational.Int(3))
			return p
		}},
		{"infeasible", func() *Problem {
			p := NewProblem(Minimize)
			x := p.NewVariable("x")
			p.SetObjective(TInt(x, 1))
			p.AddConstraint([]Term{TInt(x, 1)}, LE, rational.Int(1))
			p.AddConstraint([]Term{TInt(x, 1)}, GE, rational.Int(2))
			return p
		}},
		{"unbounded", func() *Problem {
			p := NewProblem(Maximize)
			x := p.NewVariable("x")
			y := p.NewVariable("y")
			p.SetObjective(TInt(x, 1), TInt(y, 1))
			p.AddConstraint([]Term{TInt(x, 1), TInt(y, -1)}, LE, rational.Int(1))
			return p
		}},
		{"free-var", func() *Problem {
			p := NewProblem(Minimize)
			x := p.FreeVariable("x")
			p.SetObjective(TInt(x, 1))
			p.AddConstraint([]Term{TInt(x, 1)}, GE, rational.Int(-3))
			return p
		}},
		{"degenerate-beale", func() *Problem {
			p := NewProblem(Minimize)
			x1 := p.NewVariable("x1")
			x2 := p.NewVariable("x2")
			x3 := p.NewVariable("x3")
			x4 := p.NewVariable("x4")
			p.SetObjective(T(x1, r("-3/4")), TInt(x2, 150), T(x3, r("-1/50")), TInt(x4, 6))
			p.AddConstraint([]Term{T(x1, r("1/4")), TInt(x2, -60), T(x3, r("-1/25")), TInt(x4, 9)}, LE, rational.Zero())
			p.AddConstraint([]Term{T(x1, r("1/2")), TInt(x2, -90), T(x3, r("-1/50")), TInt(x4, 3)}, LE, rational.Zero())
			p.AddConstraint([]Term{TInt(x3, 1)}, LE, rational.One())
			return p
		}},
		{"tailored-n3", func() *Problem { return tailoredTestLP(3, rational.New(1, 4)) }},
		{"tailored-n4", func() *Problem { return tailoredTestLP(4, rational.New(1, 2)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stats SolveStats
			exact, warm := solveBoth(t, tc.build(), &stats)
			assertIdentical(t, exact, warm)
			t.Logf("stats: %+v", stats)
		})
	}
}

// TestWarmStartHitOnTailoredLPs pins the acceptance criterion that
// the Table 1 LP (n=3, α=1/4) and the serving-size LP (n=8, α=1/2)
// take the crossover hit path — certified from the float basis with
// zero exact pivots — not the resume or fallback paths.
func TestWarmStartHitOnTailoredLPs(t *testing.T) {
	for _, tc := range []struct {
		n     int
		alpha *big.Rat
	}{
		{3, rational.New(1, 4)},
		{8, rational.New(1, 2)},
	} {
		t.Run(fmt.Sprintf("n=%d", tc.n), func(t *testing.T) {
			var stats SolveStats
			sol, err := tailoredTestLP(tc.n, tc.alpha).SolveWithOpts(
				context.Background(), SolveOpts{Stats: &stats})
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != Optimal {
				t.Fatalf("status = %v", sol.Status)
			}
			if !stats.WarmStartHit || stats.CrossoverResumed || stats.Fallback {
				t.Errorf("want pure crossover hit, got %+v", stats)
			}
			if stats.ExactPivots != 0 {
				t.Errorf("hit path made %d exact pivots, want 0", stats.ExactPivots)
			}
			if stats.FloatPivots == 0 {
				t.Error("float solver reported zero pivots")
			}
		})
	}
}

// TestParallelPivotMatchesSerial exercises the parallel elimination
// kernel on a serving-size tailored LP under the race detector and
// asserts it changes nothing about the answer. StrategyExact forces
// real pivoting (the warm hit path would skip it). GOMAXPROCS is
// raised so the kernel fans out even on single-CPU CI runners — the
// race detector observes goroutine interleavings regardless of
// physical parallelism.
func TestParallelPivotMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	build := func() *Problem { return tailoredTestLP(6, rational.New(1, 2)) }
	var parStats, serStats SolveStats
	par, err := build().SolveWithOpts(context.Background(),
		SolveOpts{Strategy: StrategyExact, Stats: &parStats})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := build().SolveWithOpts(context.Background(),
		SolveOpts{Strategy: StrategyExact, NoParallelPivot: true, Stats: &serStats})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, ser, par)
	if parStats.ParallelPivots == 0 {
		t.Error("serving-size LP never crossed the parallel-pivot threshold")
	}
	if serStats.ParallelPivots != 0 {
		t.Errorf("NoParallelPivot still ran %d parallel pivots", serStats.ParallelPivots)
	}
	if parStats.ExactPivots != serStats.ExactPivots {
		t.Errorf("pivot counts diverged: parallel %d, serial %d",
			parStats.ExactPivots, serStats.ExactPivots)
	}
}

// TestIterateCanceledReturnsNoStatus is the regression test for the
// iterate bug where a canceled context was reported alongside an
// Optimal status: the status must be the dedicated NoStatus zero
// value so no caller can misread an aborted solve as certified.
func TestIterateCanceledReturnsNoStatus(t *testing.T) {
	s := newStandardForm(smallLP())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tab, status, err := s.phase1(ctx, &SolveOpts{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if status != NoStatus {
		t.Errorf("status = %v, want NoStatus", status)
	}
	if tab != nil {
		t.Errorf("canceled phase1 returned a tableau")
	}
	if got := NoStatus.String(); got != "none" {
		t.Errorf("NoStatus.String() = %q, want \"none\"", got)
	}
}

// TestSolveStatsReset asserts a reused Stats struct is cleared at the
// start of each solve rather than accumulating.
func TestSolveStatsReset(t *testing.T) {
	var stats SolveStats
	p := tailoredTestLP(3, rational.New(1, 4))
	if _, err := p.SolveWithOpts(context.Background(), SolveOpts{Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	first := stats
	if _, err := smallLP().SolveWithOpts(context.Background(), SolveOpts{Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.FloatPivots >= first.FloatPivots {
		t.Errorf("stats not reset between solves: first %+v, second %+v", first, stats)
	}
}

// FuzzWarmStartMatchesExact generates random LPs — feasible,
// infeasible, and unbounded, with mixed operators, negative RHS, and
// free variables — and asserts the warm-started solve is
// byte-identical to the pure exact solve in Status, Objective, and
// every coordinate of X.
func FuzzWarmStartMatchesExact(f *testing.F) {
	f.Add([]byte{2, 2, 7, 3, 1, 9, 4, 2, 8, 6})
	f.Add([]byte{3, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 1, 255, 128, 64, 32})
	f.Add([]byte{4, 5, 13, 200, 250, 3, 17, 90, 41, 6, 66, 12, 250, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := fuzzProblem(data)
		if p == nil {
			t.Skip()
		}
		exact, errExact := p.SolveWithOpts(context.Background(), SolveOpts{Strategy: StrategyExact})
		warm, errWarm := p.SolveWithOpts(context.Background(), SolveOpts{})
		if (errExact == nil) != (errWarm == nil) {
			t.Fatalf("error mismatch: exact %v, warm %v", errExact, errWarm)
		}
		if errExact != nil {
			return
		}
		if exact.Status != warm.Status {
			t.Fatalf("status: exact %v, warm %v", exact.Status, warm.Status)
		}
		if exact.Status != Optimal {
			return
		}
		if exact.Objective.Cmp(warm.Objective) != 0 {
			t.Fatalf("objective: exact %s, warm %s",
				exact.Objective.RatString(), warm.Objective.RatString())
		}
		for i := range exact.X {
			if exact.X[i].Cmp(warm.X[i]) != 0 {
				t.Fatalf("X[%d]: exact %s, warm %s",
					i, exact.X[i].RatString(), warm.X[i].RatString())
			}
		}
	})
}

// fuzzProblem deterministically decodes an LP from fuzz bytes:
// 1–4 variables (occasionally free), 1–5 constraints with mixed
// LE/GE/EQ operators, small signed coefficients and RHS.
func fuzzProblem(data []byte) *Problem {
	if len(data) < 2 {
		return nil
	}
	nv := 1 + int(data[0]%4)
	nc := 1 + int(data[1]%5)
	idx := 2
	next := func() byte {
		if idx < len(data) {
			b := data[idx]
			idx++
			return b
		}
		return 0
	}
	p := NewProblem(Minimize)
	vars := make([]Var, nv)
	for i := range vars {
		if next()%5 == 0 {
			vars[i] = p.FreeVariable("f")
		} else {
			vars[i] = p.NewVariable("v")
		}
		p.SetObjectiveCoeff(vars[i], rational.Int(int64(next()%13)-4))
	}
	for c := 0; c < nc; c++ {
		terms := make([]Term, nv)
		for i := range vars {
			terms[i] = TInt(vars[i], int64(next()%9)-4)
		}
		op := Op(next() % 3)
		rhs := rational.Int(int64(next()%15) - 5)
		p.AddConstraint(terms, op, rhs)
	}
	return p
}
