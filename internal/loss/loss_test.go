package loss

import (
	"errors"
	"testing"
	"testing/quick"

	"minimaxdp/internal/rational"
)

func TestAbsolute(t *testing.T) {
	var l Absolute
	if l.Loss(3, 7).RatString() != "4" || l.Loss(7, 3).RatString() != "4" || l.Loss(5, 5).Sign() != 0 {
		t.Error("Absolute wrong")
	}
	if l.Name() != "absolute" {
		t.Error("name")
	}
}

func TestSquared(t *testing.T) {
	var l Squared
	if l.Loss(2, 5).RatString() != "9" || l.Loss(5, 2).RatString() != "9" {
		t.Error("Squared wrong")
	}
	if l.Name() != "squared" {
		t.Error("name")
	}
}

func TestZeroOne(t *testing.T) {
	var l ZeroOne
	if l.Loss(4, 4).Sign() != 0 || l.Loss(4, 5).RatString() != "1" {
		t.Error("ZeroOne wrong")
	}
	if l.Name() != "zero-one" {
		t.Error("name")
	}
}

func TestScaled(t *testing.T) {
	l := Scaled{Inner: Absolute{}, C: rational.New(3, 2)}
	if l.Loss(0, 4).RatString() != "6" {
		t.Errorf("Scaled = %s", l.Loss(0, 4).RatString())
	}
	if l.Name() == "" {
		t.Error("name")
	}
}

func TestDeadband(t *testing.T) {
	l := Deadband{Width: 2}
	if l.Loss(5, 6).Sign() != 0 || l.Loss(5, 7).Sign() != 0 {
		t.Error("inside band should be 0")
	}
	if l.Loss(5, 8).RatString() != "1" || l.Loss(5, 1).RatString() != "2" {
		t.Error("outside band wrong")
	}
	if l.Name() != "deadband(2)" {
		t.Error("name")
	}
}

func TestCapped(t *testing.T) {
	l := Capped{Inner: Squared{}, Cap: rational.Int(4)}
	if l.Loss(0, 1).RatString() != "1" {
		t.Error("below cap wrong")
	}
	if l.Loss(0, 5).RatString() != "4" {
		t.Error("cap not applied")
	}
	if l.Name() == "" {
		t.Error("name")
	}
}

func TestPower(t *testing.T) {
	l := Power{K: 3}
	if l.Loss(1, 3).RatString() != "8" {
		t.Errorf("Power = %s", l.Loss(1, 3).RatString())
	}
	if l.Name() == "" {
		t.Error("name")
	}
}

func TestPowerPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K=0 did not panic")
		}
	}()
	Power{K: 0}.Loss(1, 2)
}

func TestAsymmetric(t *testing.T) {
	l := Asymmetric{Over: rational.Int(2), Under: rational.Int(1)}
	if l.Loss(3, 5).RatString() != "4" { // over by 2 → 2·2
		t.Error("over wrong")
	}
	if l.Loss(5, 3).RatString() != "2" { // under by 2 → 1·2
		t.Error("under wrong")
	}
	if l.Name() == "" {
		t.Error("name")
	}
}

func TestTable(t *testing.T) {
	l := Table{Entries: Matrix(Absolute{}, 2), Label: "abs-copy"}
	if l.Loss(0, 2).RatString() != "2" {
		t.Error("Table lookup wrong")
	}
	if l.Name() != "abs-copy" {
		t.Error("label wrong")
	}
	// Loss must return copies, not aliases into the table.
	l.Loss(0, 2).SetInt64(9)
	if l.Entries[0][2].RatString() != "2" {
		t.Error("Table.Loss aliases entries")
	}
}

func TestValidateAcceptsPaperLosses(t *testing.T) {
	for _, l := range []Function{Absolute{}, Squared{}, ZeroOne{}, Deadband{Width: 1},
		Power{K: 2}, Scaled{Inner: Absolute{}, C: rational.New(1, 2)},
		Capped{Inner: Absolute{}, Cap: rational.Int(3)}} {
		if err := Validate(l, 6); err != nil {
			t.Errorf("%s rejected: %v", l.Name(), err)
		}
		if err := ValidateWeak(l, 6); err != nil {
			t.Errorf("%s rejected by weak: %v", l.Name(), err)
		}
	}
}

func TestValidateRejectsAsymmetric(t *testing.T) {
	l := Asymmetric{Over: rational.Int(2), Under: rational.Int(1)}
	err := Validate(l, 4)
	if !errors.Is(err, ErrNotMonotone) {
		t.Errorf("asymmetric loss accepted by strict validator: %v", err)
	}
	// But the weak (one-sided monotone) check passes.
	if err := ValidateWeak(l, 4); err != nil {
		t.Errorf("asymmetric loss rejected by weak validator: %v", err)
	}
}

func TestValidateRejectsDecreasing(t *testing.T) {
	// Loss that rewards distance: l = −|i−r| shifted to stay ≥ 0 at
	// center — decreasing in distance.
	bad := Table{Entries: Matrix(Absolute{}, 3), Label: "bad"}
	// Flip one row to be decreasing: l(0, ·) = 3,2,1,0.
	for rr := 0; rr <= 3; rr++ {
		bad.Entries[0][rr] = rational.Int(int64(3 - rr))
	}
	if err := Validate(bad, 3); !errors.Is(err, ErrNotMonotone) {
		t.Errorf("decreasing loss accepted: %v", err)
	}
	if err := ValidateWeak(bad, 3); !errors.Is(err, ErrNotMonotone) {
		t.Errorf("decreasing loss accepted by weak: %v", err)
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	bad := Table{Entries: Matrix(Absolute{}, 2)}
	bad.Entries[1][1] = rational.Int(-1)
	if err := Validate(bad, 2); !errors.Is(err, ErrNotMonotone) {
		t.Errorf("negative loss accepted: %v", err)
	}
	if err := ValidateWeak(bad, 2); !errors.Is(err, ErrNotMonotone) {
		t.Errorf("negative loss accepted by weak: %v", err)
	}
	if bad.Name() != "table" {
		t.Error("default label wrong")
	}
}

func TestMatrixMaterialization(t *testing.T) {
	m := Matrix(Squared{}, 3)
	if len(m) != 4 || len(m[0]) != 4 {
		t.Fatalf("shape %dx%d", len(m), len(m[0]))
	}
	if m[0][3].RatString() != "9" || m[2][2].Sign() != 0 {
		t.Error("entries wrong")
	}
}

// Property: all shipped symmetric losses satisfy l(i,r) == l(r', i')
// whenever |i−r| == |i'−r'|.
func TestQuickDistanceInvariance(t *testing.T) {
	losses := []Function{Absolute{}, Squared{}, ZeroOne{}, Deadband{Width: 2}, Power{K: 2}}
	f := func(i1, r1, i2, r2 uint8) bool {
		a, b := int(i1%10), int(r1%10)
		c, d := int(i2%10), int(r2%10)
		if abs(a-b) != abs(c-d) {
			return true
		}
		for _, l := range losses {
			if l.Loss(a, b).Cmp(l.Loss(c, d)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
