// The loss-name registry: one canonical table mapping wire names to
// loss constructors, shared by every serving surface (the GET query
// routes and the POST /v1/compare body codec in cmd/dpserver, and the
// experiments CLI). Before this registry each surface carried its own
// name switch, which is exactly how two surfaces drift apart; now the
// accepted names, their aliases, and the canonical list rendered into
// invalid_argument envelopes all come from here.

package loss

import (
	"fmt"
	"sort"
	"strconv"
)

// specEntry is one registry row: the canonical name, its accepted
// aliases, and the constructor. width is the raw width parameter
// (empty = default); only parameterized families consume it.
type specEntry struct {
	canonical string
	aliases   []string
	build     func(width string) (Function, error)
}

// registry is the single source of truth for wire-facing loss names.
// Order fixes the canonical listing in error messages and /v1 docs.
var registry = []specEntry{
	{
		canonical: "absolute",
		aliases:   []string{"abs", ""},
		build: func(width string) (Function, error) {
			if err := rejectWidth("absolute", width); err != nil {
				return nil, err
			}
			return Absolute{}, nil
		},
	},
	{
		canonical: "squared",
		aliases:   []string{"sq"},
		build: func(width string) (Function, error) {
			if err := rejectWidth("squared", width); err != nil {
				return nil, err
			}
			return Squared{}, nil
		},
	},
	{
		canonical: "zero-one",
		aliases:   []string{"zeroone", "01"},
		build: func(width string) (Function, error) {
			if err := rejectWidth("zero-one", width); err != nil {
				return nil, err
			}
			return ZeroOne{}, nil
		},
	},
	{
		canonical: "deadband",
		build: func(width string) (Function, error) {
			w := 1
			if width != "" {
				var err error
				w, err = strconv.Atoi(width)
				if err != nil || w < 0 {
					return nil, fmt.Errorf("loss: width must be a non-negative integer, got %q", width)
				}
			}
			return Deadband{Width: w}, nil
		},
	},
}

// rejectWidth fails when a width parameter reaches a loss family that
// has none — a silently ignored parameter is a spec typo the caller
// should hear about.
func rejectWidth(name, width string) error {
	if width != "" {
		return fmt.Errorf("loss: %q takes no width parameter (got %q)", name, width)
	}
	return nil
}

// Names returns the canonical loss names in registry order, the list
// quoted by invalid_argument error envelopes and route docs.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.canonical
	}
	return out
}

// ParseSpec resolves a wire-facing loss name (canonical or alias;
// empty means absolute) plus its raw width parameter into a Function.
// The error for an unknown name carries the canonical name list so
// serving layers can return it verbatim.
func ParseSpec(name, width string) (Function, error) {
	for _, e := range registry {
		if name == e.canonical {
			return e.build(width)
		}
		for _, a := range e.aliases {
			if name == a {
				return e.build(width)
			}
		}
	}
	return nil, fmt.Errorf("loss: unknown loss %q (want one of %v)", name, Names())
}

// CanonicalName resolves a name or alias to its canonical form
// without building the function; unknown names return an error with
// the canonical list.
func CanonicalName(name string) (string, error) {
	for _, e := range registry {
		if name == e.canonical {
			return e.canonical, nil
		}
		for _, a := range e.aliases {
			if name == a {
				return e.canonical, nil
			}
		}
	}
	return "", fmt.Errorf("loss: unknown loss %q (want one of %v)", name, Names())
}

// aliasIndex is used by tests to assert the registry stays
// well-formed (no duplicate wire names across rows).
func aliasIndex() map[string]string {
	idx := make(map[string]string)
	for _, e := range registry {
		idx[e.canonical] = e.canonical
		for _, a := range e.aliases {
			idx[a] = e.canonical
		}
	}
	return idx
}

// sortedWireNames returns every accepted wire name, sorted; test
// helper for change detection.
func sortedWireNames() []string {
	idx := aliasIndex()
	out := make([]string, 0, len(idx))
	for k := range idx {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
