// Package loss defines the information-consumer loss functions of
// Section 2.3 of the paper and their validity check.
//
// A loss function l(i,r) gives the consumer's loss when the mechanism
// outputs r while the true count-query result is i. The paper assumes
// only that l is monotone non-decreasing in |i−r| for every i; this
// package ships the paper's three worked examples (mean error |i−r|,
// squared error (i−r)², and 0/1 frequency-of-error loss) plus several
// additional monotone families, an arbitrary-table escape hatch for
// tests, and a validator that checks the paper's monotonicity
// assumption on the domain {0..n}.
package loss

import (
	"errors"
	"fmt"
	"math/big"

	"minimaxdp/internal/rational"
)

// Function is a consumer loss function l(i,r) on the query-result
// domain. Implementations must be deterministic and side-effect free.
type Function interface {
	// Loss returns l(i,r) ≥ 0 for inputs i,r ∈ {0..n}.
	Loss(i, r int) *big.Rat
	// Name returns a short identifier for tables and logs.
	Name() string
}

func absDiff(i, r int) int64 {
	d := int64(i) - int64(r)
	if d < 0 {
		return -d
	}
	return d
}

// Absolute is the paper's mean-error loss l(i,r) = |i−r| (the
// government's loss in the running flu example).
type Absolute struct{}

// Loss returns |i−r|.
func (Absolute) Loss(i, r int) *big.Rat { return rational.Int(absDiff(i, r)) }

// Name implements Function.
func (Absolute) Name() string { return "absolute" }

// Squared is the paper's variance loss l(i,r) = (i−r)² (the drug
// company's loss in the running flu example).
type Squared struct{}

// Loss returns (i−r)².
func (Squared) Loss(i, r int) *big.Rat {
	d := absDiff(i, r)
	return rational.Int(d * d)
}

// Name implements Function.
func (Squared) Name() string { return "squared" }

// ZeroOne is the paper's frequency-of-error loss: 0 if i == r, 1
// otherwise.
type ZeroOne struct{}

// Loss returns 0 when i == r and 1 otherwise.
func (ZeroOne) Loss(i, r int) *big.Rat {
	if i == r {
		return rational.Zero()
	}
	return rational.One()
}

// Name implements Function.
func (ZeroOne) Name() string { return "zero-one" }

// Scaled multiplies an inner loss by a positive constant; scaling
// preserves the monotonicity assumption and the induced optimum.
type Scaled struct {
	Inner Function
	C     *big.Rat
}

// Loss returns C·Inner.Loss(i,r).
func (s Scaled) Loss(i, r int) *big.Rat { return rational.Mul(s.C, s.Inner.Loss(i, r)) }

// Name implements Function.
func (s Scaled) Name() string { return fmt.Sprintf("%s×%s", s.C.RatString(), s.Inner.Name()) }

// Deadband is zero within Width of the truth and grows linearly
// beyond: l(i,r) = max(0, |i−r| − Width). Models consumers indifferent
// to small errors.
type Deadband struct {
	Width int
}

// Loss returns max(0, |i−r|−Width).
func (d Deadband) Loss(i, r int) *big.Rat {
	v := absDiff(i, r) - int64(d.Width)
	if v < 0 {
		v = 0
	}
	return rational.Int(v)
}

// Name implements Function.
func (d Deadband) Name() string { return fmt.Sprintf("deadband(%d)", d.Width) }

// Capped clamps an inner loss at Cap: l = min(Inner, Cap). Still
// monotone when Inner is.
type Capped struct {
	Inner Function
	Cap   *big.Rat
}

// Loss returns min(Inner.Loss(i,r), Cap).
func (c Capped) Loss(i, r int) *big.Rat {
	v := c.Inner.Loss(i, r)
	if v.Cmp(c.Cap) > 0 {
		return rational.Clone(c.Cap)
	}
	return v
}

// Name implements Function.
func (c Capped) Name() string { return fmt.Sprintf("min(%s,%s)", c.Inner.Name(), c.Cap.RatString()) }

// Power is l(i,r) = |i−r|^K for K ≥ 1, interpolating between Absolute
// (K=1) and higher-order tail aversion.
type Power struct {
	K int
}

// Loss returns |i−r|^K.
func (p Power) Loss(i, r int) *big.Rat {
	if p.K < 1 {
		panic("loss: Power.K must be ≥ 1")
	}
	return rational.Pow(rational.Int(absDiff(i, r)), p.K)
}

// Name implements Function.
func (p Power) Name() string { return fmt.Sprintf("|i-r|^%d", p.K) }

// Asymmetric penalizes over-estimates and under-estimates at
// different rates: Over·(r−i) when r > i and Under·(i−r) when r < i.
//
// NOTE: unless Over == Under this violates the paper's assumption that
// loss is a monotone function of |i−r| alone; it exists so tests can
// exercise Validate's rejection path and so users can see the
// assumption is load-bearing.
type Asymmetric struct {
	Over, Under *big.Rat
}

// Loss returns the signed-error linear loss.
func (a Asymmetric) Loss(i, r int) *big.Rat {
	if r >= i {
		return rational.Mul(a.Over, rational.Int(int64(r-i)))
	}
	return rational.Mul(a.Under, rational.Int(int64(i-r)))
}

// Name implements Function.
func (a Asymmetric) Name() string {
	return fmt.Sprintf("asym(%s,%s)", a.Over.RatString(), a.Under.RatString())
}

// Table is an arbitrary loss given by an explicit (n+1)×(n+1) table;
// used by tests and by experiment harnesses that perturb losses.
type Table struct {
	Entries [][]*big.Rat
	Label   string
}

// Loss returns Entries[i][r].
func (t Table) Loss(i, r int) *big.Rat { return rational.Clone(t.Entries[i][r]) }

// Name implements Function.
func (t Table) Name() string {
	if t.Label != "" {
		return t.Label
	}
	return "table"
}

// ErrNotMonotone is wrapped by Validate when the paper's assumption
// fails.
var ErrNotMonotone = errors.New("loss: not monotone in |i-r|")

// Validate checks the paper's Section 2.3 assumption on the domain
// {0..n}: for every i, l(i,r) must be non-decreasing in |i−r| (which
// in particular forces l(i, i−d) == l(i, i+d)), and l must be
// non-negative with l(i,i) minimal. It returns a descriptive error on
// the first violation.
func Validate(l Function, n int) error {
	for i := 0; i <= n; i++ {
		if l.Loss(i, i).Sign() < 0 {
			return fmt.Errorf("%w: l(%d,%d) = %s < 0", ErrNotMonotone, i, i, l.Loss(i, i).RatString())
		}
		// Collect loss per distance, requiring a single value per
		// distance and non-decreasing across distances.
		maxD := i
		if n-i > maxD {
			maxD = n - i
		}
		prev := rational.Neg(rational.One()) // sentinel below any valid loss
		for d := 0; d <= maxD; d++ {
			var vals []*big.Rat
			if i-d >= 0 {
				vals = append(vals, l.Loss(i, i-d))
			}
			if i+d <= n && d != 0 {
				vals = append(vals, l.Loss(i, i+d))
			}
			for _, v := range vals {
				if v.Sign() < 0 {
					return fmt.Errorf("%w: negative loss l(%d,·) at distance %d", ErrNotMonotone, i, d)
				}
			}
			if len(vals) == 2 && vals[0].Cmp(vals[1]) != 0 {
				return fmt.Errorf("%w: l(%d,%d)=%s != l(%d,%d)=%s but |i-r| equal",
					ErrNotMonotone, i, i-d, vals[0].RatString(), i, i+d, vals[1].RatString())
			}
			for _, v := range vals {
				if v.Cmp(prev) < 0 {
					return fmt.Errorf("%w: l(%d,·) decreases at distance %d (%s < %s)",
						ErrNotMonotone, i, d, v.RatString(), prev.RatString())
				}
			}
			prev = rational.Clone(vals[0])
		}
	}
	return nil
}

// ValidateWeak checks only the weaker condition actually used in the
// paper's Lemma 5 proof: for every i, moving the output further from i
// (on either side independently) never decreases the loss. Asymmetric
// losses pass ValidateWeak but fail Validate.
func ValidateWeak(l Function, n int) error {
	for i := 0; i <= n; i++ {
		// Right side: r = i..n must be non-decreasing.
		for r := i; r < n; r++ {
			if l.Loss(i, r+1).Cmp(l.Loss(i, r)) < 0 {
				return fmt.Errorf("%w: l(%d,%d) > l(%d,%d)", ErrNotMonotone, i, r, i, r+1)
			}
		}
		// Left side: r = i..0 must be non-decreasing as r moves away.
		for r := i; r > 0; r-- {
			if l.Loss(i, r-1).Cmp(l.Loss(i, r)) < 0 {
				return fmt.Errorf("%w: l(%d,%d) > l(%d,%d)", ErrNotMonotone, i, r, i, r-1)
			}
		}
		if l.Loss(i, i).Sign() < 0 {
			return fmt.Errorf("%w: l(%d,%d) < 0", ErrNotMonotone, i, i)
		}
	}
	return nil
}

// Matrix materializes l on {0..n} as an explicit table, the form the
// LP builders consume.
func Matrix(l Function, n int) [][]*big.Rat {
	out := make([][]*big.Rat, n+1)
	for i := 0; i <= n; i++ {
		out[i] = make([]*big.Rat, n+1)
		for r := 0; r <= n; r++ {
			out[i][r] = l.Loss(i, r)
		}
	}
	return out
}
