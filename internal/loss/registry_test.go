package loss

import (
	"reflect"
	"strings"
	"testing"
)

// Change detector: the wire-facing loss vocabulary. Renaming or
// dropping a name breaks deployed clients of the GET query routes and
// the POST /v1/compare body codec alike — this test makes that an
// explicit decision.
func TestRegistryWireNames(t *testing.T) {
	wantCanonical := []string{"absolute", "squared", "zero-one", "deadband"}
	if got := Names(); !reflect.DeepEqual(got, wantCanonical) {
		t.Fatalf("canonical names = %v, want %v", got, wantCanonical)
	}
	wantWire := []string{"", "01", "abs", "absolute", "deadband", "sq", "squared", "zero-one", "zeroone"}
	if got := sortedWireNames(); !reflect.DeepEqual(got, wantWire) {
		t.Fatalf("wire names = %v, want %v", got, wantWire)
	}
}

func TestRegistryNoDuplicateWireNames(t *testing.T) {
	seen := make(map[string]string)
	for _, e := range registry {
		for _, name := range append([]string{e.canonical}, e.aliases...) {
			if prev, dup := seen[name]; dup {
				t.Fatalf("wire name %q claimed by both %q and %q", name, prev, e.canonical)
			}
			seen[name] = e.canonical
		}
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		name, width string
		wantName    string
	}{
		{"", "", "absolute"},
		{"abs", "", "absolute"},
		{"absolute", "", "absolute"},
		{"sq", "", "squared"},
		{"squared", "", "squared"},
		{"zeroone", "", "zero-one"},
		{"01", "", "zero-one"},
		{"zero-one", "", "zero-one"},
		{"deadband", "", "deadband(1)"},
		{"deadband", "3", "deadband(3)"},
		{"deadband", "0", "deadband(0)"},
	}
	for _, c := range cases {
		fn, err := ParseSpec(c.name, c.width)
		if err != nil {
			t.Fatalf("ParseSpec(%q, %q): %v", c.name, c.width, err)
		}
		if fn.Name() != c.wantName {
			t.Fatalf("ParseSpec(%q, %q).Name() = %q, want %q", c.name, c.width, fn.Name(), c.wantName)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	// Unknown names report the canonical list so serving layers can
	// quote it in invalid_argument envelopes.
	_, err := ParseSpec("huber", "")
	if err == nil {
		t.Fatal("unknown loss accepted")
	}
	for _, want := range Names() {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list canonical name %q", err, want)
		}
	}
	// Width on width-less families is a spec typo, not a no-op.
	for _, name := range []string{"absolute", "squared", "zero-one", "abs", "01"} {
		if _, err := ParseSpec(name, "2"); err == nil {
			t.Fatalf("ParseSpec(%q, \"2\") unexpectedly succeeded", name)
		}
	}
	// Bad deadband widths refuse.
	for _, w := range []string{"x", "-1", "1.5", ""} {
		if w == "" {
			continue
		}
		if _, err := ParseSpec("deadband", w); err == nil {
			t.Fatalf("ParseSpec(deadband, %q) unexpectedly succeeded", w)
		}
	}
}

func TestCanonicalName(t *testing.T) {
	for alias, want := range map[string]string{
		"":         "absolute",
		"abs":      "absolute",
		"sq":       "squared",
		"01":       "zero-one",
		"zeroone":  "zero-one",
		"deadband": "deadband",
	} {
		got, err := CanonicalName(alias)
		if err != nil {
			t.Fatalf("CanonicalName(%q): %v", alias, err)
		}
		if got != want {
			t.Fatalf("CanonicalName(%q) = %q, want %q", alias, got, want)
		}
	}
	if _, err := CanonicalName("huber"); err == nil {
		t.Fatal("unknown name accepted")
	}
}
