package mechanism

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"strings"

	"minimaxdp/internal/rational"
)

// This file provides lossless serialization for mechanisms: a JSON
// form (rational entries as strings, so round-trips are exact) and the
// whitespace text form the privmech CLI exchanges.

// jsonMechanism is the wire form.
type jsonMechanism struct {
	N    int        `json:"n"`
	Rows [][]string `json:"rows"`
}

// MarshalJSON encodes the mechanism with exact rational entries.
func (mc *Mechanism) MarshalJSON() ([]byte, error) {
	n := mc.N()
	out := jsonMechanism{N: n, Rows: make([][]string, n+1)}
	for i := 0; i <= n; i++ {
		out.Rows[i] = make([]string, n+1)
		for r := 0; r <= n; r++ {
			out.Rows[i][r] = mc.m.At(i, r).RatString()
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes and validates a mechanism. The receiver is
// fully replaced on success and untouched on error.
func (mc *Mechanism) UnmarshalJSON(data []byte) error {
	var in jsonMechanism
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("mechanism: decoding JSON: %w", err)
	}
	if len(in.Rows) == 0 {
		return errors.New("mechanism: JSON has no rows")
	}
	if in.N != len(in.Rows)-1 {
		return fmt.Errorf("mechanism: JSON n=%d inconsistent with %d rows", in.N, len(in.Rows))
	}
	decoded, err := FromStrings(in.Rows)
	if err != nil {
		return err
	}
	mc.m = decoded.m
	return nil
}

// WriteText writes the whitespace matrix form (one row per line,
// exact rational entries) accepted by ReadText and the privmech CLI.
func (mc *Mechanism) WriteText(w io.Writer) error {
	n := mc.N()
	for i := 0; i <= n; i++ {
		parts := make([]string, n+1)
		for r := 0; r <= n; r++ {
			parts[r] = mc.m.At(i, r).RatString()
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}

// ReadText parses the whitespace matrix form; blank lines and lines
// starting with '#' are ignored.
func ReadText(r io.Reader) (*Mechanism, error) {
	var rows [][]string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rows = append(rows, strings.Fields(line))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, errors.New("mechanism: empty text input")
	}
	return FromStrings(rows)
}

// Describe returns a one-line summary (size and exact privacy level)
// used by CLI output and logs.
func (mc *Mechanism) Describe() string {
	return fmt.Sprintf("mechanism on {0..%d}, α = %s", mc.N(), mc.BestAlpha().RatString())
}

// ScaleCheck verifies the row-stochastic invariant and returns the
// number of nonzero entries; a cheap health check for decoded
// mechanisms.
func (mc *Mechanism) ScaleCheck() (nonzeros int, err error) {
	if !mc.m.IsStochastic() {
		return 0, ErrNotStochastic
	}
	n := mc.N()
	for i := 0; i <= n; i++ {
		for r := 0; r <= n; r++ {
			if mc.m.At(i, r).Sign() != 0 {
				nonzeros++
			}
		}
	}
	return nonzeros, nil
}

var _ json.Marshaler = (*Mechanism)(nil)
var _ json.Unmarshaler = (*Mechanism)(nil)

// Clone returns an independent copy of the mechanism.
func (mc *Mechanism) Clone() *Mechanism {
	return &Mechanism{m: mc.m.Clone()}
}

// TotalVariationRow returns the total-variation distance between the
// output rows for inputs i and j: ½·Σ_r |x[i][r] − x[j][r]|, exactly.
// Useful for quantifying how distinguishable two true results are
// under the mechanism.
func (mc *Mechanism) TotalVariationRow(i, j int) *big.Rat {
	n := mc.N()
	out := rational.Zero()
	for r := 0; r <= n; r++ {
		d := rational.Sub(mc.m.At(i, r), mc.m.At(j, r))
		out.Add(out, d.Abs(d))
	}
	return out.Mul(out, rational.New(1, 2))
}
