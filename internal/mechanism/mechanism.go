// Package mechanism implements oblivious privacy mechanisms for count
// queries as row-stochastic matrices on {0..n}, the α-differential
// privacy check of Definition 2, and the paper's geometric mechanism
// in both forms: the range-restricted matrix G_{n,α} of Definition 4
// and the unrestricted two-sided geometric noise of Definition 1.
//
// An oblivious mechanism x is stored as an (n+1)×(n+1) matrix with
// x[i][r] = Pr[output r | true query result i]; rows index true
// results and columns index released results, matching the paper's
// notation throughout.
package mechanism

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"sync"

	"minimaxdp/internal/matrix"
	"minimaxdp/internal/rational"
)

// Mechanism is an oblivious privacy mechanism for a count query with
// results in {0..n}. It is immutable after construction.
type Mechanism struct {
	m *matrix.Matrix

	// cdf holds the exact row CDFs, built lazily on first Sample (the
	// only consumer) and immutable afterwards; cdf[i][r] = Σ_{z≤r}
	// m[i][z]. Safe for concurrent Sample calls via cdfOnce.
	cdfOnce sync.Once
	cdf     [][]*big.Rat
}

// ErrNotStochastic is returned when a candidate matrix has a negative
// entry or a row that does not sum to exactly 1.
var ErrNotStochastic = errors.New("mechanism: matrix is not row-stochastic")

// New validates that m is a square row-stochastic matrix and wraps it
// as a Mechanism. The matrix is deep-copied.
func New(m *matrix.Matrix) (*Mechanism, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("mechanism: matrix must be square, got %dx%d", m.Rows(), m.Cols())
	}
	if !m.IsStochastic() {
		return nil, ErrNotStochastic
	}
	return &Mechanism{m: m.Clone()}, nil
}

// FromStrings builds a mechanism from rational string entries; a
// convenience for transcribing the paper's tables.
func FromStrings(rows [][]string) (*Mechanism, error) {
	m, err := matrix.FromStrings(rows)
	if err != nil {
		return nil, err
	}
	return New(m)
}

// N returns the database size n; inputs and outputs range over {0..n}.
func (mc *Mechanism) N() int { return mc.m.Rows() - 1 }

// Size returns n+1, the number of inputs/outputs.
func (mc *Mechanism) Size() int { return mc.m.Rows() }

// Prob returns Pr[output r | true result i].
func (mc *Mechanism) Prob(i, r int) *big.Rat { return rational.Clone(mc.m.At(i, r)) }

// Row returns the output distribution for input i.
func (mc *Mechanism) Row(i int) []*big.Rat { return mc.m.Row(i) }

// Matrix returns a deep copy of the underlying matrix.
func (mc *Mechanism) Matrix() *matrix.Matrix { return mc.m.Clone() }

// Equal reports whether two mechanisms have identical matrices.
func (mc *Mechanism) Equal(o *Mechanism) bool { return mc.m.Equal(o.m) }

// String renders the mechanism's matrix with exact entries.
func (mc *Mechanism) String() string { return mc.m.String() }

// DPViolation describes the first differential-privacy violation
// found by CheckDP.
type DPViolation struct {
	I, R  int      // adjacent inputs (I, I+1) and output R
	Ratio *big.Rat // the offending probability comparison, described in Msg
	Msg   string
}

func (v *DPViolation) Error() string { return v.Msg }

// CheckDP verifies Definition 2: for every i ∈ {0..n−1} and r ∈ N,
// x[i][r] ≥ α·x[i+1][r] and x[i+1][r] ≥ α·x[i][r]. It returns nil when
// the mechanism is α-differentially private and a *DPViolation
// otherwise. α must lie in [0,1].
func (mc *Mechanism) CheckDP(alpha *big.Rat) error {
	if alpha.Sign() < 0 || alpha.Cmp(rational.One()) > 0 {
		return fmt.Errorf("mechanism: α must be in [0,1], got %s", alpha.RatString())
	}
	n := mc.N()
	tmp := rational.Zero()
	for i := 0; i < n; i++ {
		for r := 0; r <= n; r++ {
			a, b := mc.m.At(i, r), mc.m.At(i+1, r)
			tmp.Mul(alpha, b)
			if a.Cmp(tmp) < 0 {
				return &DPViolation{I: i, R: r, Ratio: rational.Clone(a),
					Msg: fmt.Sprintf("mechanism: x[%d][%d]=%s < α·x[%d][%d]=%s", i, r, a.RatString(), i+1, r, tmp.RatString())}
			}
			tmp.Mul(alpha, a)
			if b.Cmp(tmp) < 0 {
				return &DPViolation{I: i, R: r, Ratio: rational.Clone(b),
					Msg: fmt.Sprintf("mechanism: x[%d][%d]=%s < α·x[%d][%d]=%s", i+1, r, b.RatString(), i, r, tmp.RatString())}
			}
		}
	}
	return nil
}

// IsDP reports whether the mechanism is α-differentially private.
func (mc *Mechanism) IsDP(alpha *big.Rat) bool { return mc.CheckDP(alpha) == nil }

// BestAlpha returns the largest α ∈ [0,1] for which the mechanism is
// α-DP: min over adjacent inputs i and outputs r of
// min(x[i][r], x[i+1][r]) / max(x[i][r], x[i+1][r]), where a pair with
// exactly one zero forces α = 0 and a pair of two zeros imposes no
// constraint. (Larger α means a stronger privacy guarantee.)
func (mc *Mechanism) BestAlpha() *big.Rat {
	best := rational.One()
	n := mc.N()
	for i := 0; i < n; i++ {
		for r := 0; r <= n; r++ {
			a, b := mc.m.At(i, r), mc.m.At(i+1, r)
			za, zb := a.Sign() == 0, b.Sign() == 0
			if za && zb {
				continue
			}
			if za || zb {
				return rational.Zero()
			}
			ratio := new(big.Rat).Quo(a, b)
			if ratio.Cmp(rational.One()) > 0 {
				ratio.Inv(ratio)
			}
			if ratio.Cmp(best) < 0 {
				best = ratio
			}
		}
	}
	return rational.Clone(best)
}

// PostProcess applies a consumer interaction T (a row-stochastic
// (n+1)×(n+1) matrix of reinterpretation probabilities, Definition 3)
// and returns the induced mechanism x = y·T.
func (mc *Mechanism) PostProcess(t *matrix.Matrix) (*Mechanism, error) {
	out, _, err := mc.PostProcessStats(t)
	return out, err
}

// PostProcessStats is PostProcess exposing the hybrid tier counters
// of the transition product y·T: probability entries are mostly tiny
// rationals, so the product runs on the Small/Wide fast tiers and the
// stats report the per-call hit rate.
func (mc *Mechanism) PostProcessStats(t *matrix.Matrix) (*Mechanism, rational.HybridStats, error) {
	var h rational.HybridStats
	if !t.IsStochastic() {
		return nil, h, fmt.Errorf("mechanism: post-processing matrix: %w", ErrNotStochastic)
	}
	prod, h, err := mc.m.MulStats(t)
	if err != nil {
		return nil, h, err
	}
	out, err := New(prod)
	return out, h, err
}

// cdfScratch holds the two pooled big.Int operands of the exact
// CDF comparison. Their storage grows to working capacity on the
// first few draws and is reused thereafter, so the steady-state
// sampling path allocates nothing.
type cdfScratch struct {
	lhs, rhs big.Int
}

var cdfPool = sync.Pool{New: func() any { return new(cdfScratch) }}

// cdfRow returns the exact CDF of row i, building every row's CDF
// the first time any row is sampled. The build cost (O(n²) rational
// additions) amortizes over all subsequent draws from the mechanism.
func (mc *Mechanism) cdfRow(i int) []*big.Rat {
	mc.cdfOnce.Do(func() {
		n := mc.N()
		cdf := make([][]*big.Rat, n+1)
		for r := 0; r <= n; r++ {
			row := make([]*big.Rat, n+1)
			acc := new(big.Rat)
			for z := 0; z <= n; z++ {
				acc.Add(acc, mc.m.At(r, z))
				row[z] = rational.Clone(acc)
			}
			cdf[r] = row
		}
		mc.cdf = cdf
	})
	return mc.cdf[i]
}

// Sample draws one released result for true input i using rng. It
// inverts the exact rational CDF of row i against a dyadic uniform
// draw u = k/2⁵³: a binary search for the smallest r with u < CDF(r),
// each comparison done by integer cross-multiplication
// (k·denom < num·2⁵³) on pooled scratch. The sampled law is the
// mechanism's exact row up to the 2⁻⁵³ resolution of the uniform
// variate — no float arithmetic anywhere on the path — and the
// steady-state cost is O(log n) comparisons with zero allocations.
//
// rng is caller-owned and not synchronized; for a concurrency-safe
// high-throughput path use the engine's precompiled samplers.
func (mc *Mechanism) Sample(i int, rng *rand.Rand) int {
	if i < 0 || i > mc.N() {
		panic(fmt.Sprintf("mechanism: input %d out of range [0,%d]", i, mc.N()))
	}
	k := rng.Uint64() >> 11 // 53-bit dyadic uniform: u = k/2⁵³
	cdf := mc.cdfRow(i)
	s := cdfPool.Get().(*cdfScratch)
	// Invariant: u < cdf[hi] (row sums to exactly 1 and u < 1, so the
	// final cell always satisfies the target predicate).
	lo, hi := 0, mc.N()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		// u < cdf[mid]  ⟺  k·Denom < Num·2⁵³ (Denom > 0).
		s.lhs.SetUint64(k)
		s.lhs.Mul(&s.lhs, cdf[mid].Denom())
		s.rhs.Lsh(cdf[mid].Num(), 53)
		if s.lhs.Cmp(&s.rhs) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cdfPool.Put(s)
	return lo
}

// --- the geometric mechanism ---------------------------------------------

// Geometric returns the range-restricted α-geometric mechanism G_{n,α}
// of Definition 4:
//
//	Pr[Z(k) = z] = α^{|z−k|}/(1+α)        for z ∈ {0, n}
//	Pr[Z(k) = z] = α^{|z−k|}·(1−α)/(1+α)  for 0 < z < n
//
// Equivalently: add two-sided geometric noise (Definition 1) to the
// true result k and clamp the sum into [0, n]; the clamped tail mass
// collapses onto the endpoints, giving exactly the boundary masses
// above. α must lie in (0,1) for the matrix form to be well defined.
func Geometric(n int, alpha *big.Rat) (*Mechanism, error) {
	if n < 1 {
		return nil, fmt.Errorf("mechanism: n must be ≥ 1, got %d", n)
	}
	if alpha.Sign() <= 0 || alpha.Cmp(rational.One()) >= 0 {
		return nil, fmt.Errorf("mechanism: geometric needs α ∈ (0,1), got %s", alpha.RatString())
	}
	onePlus := rational.Add(rational.One(), alpha)
	boundary := rational.Div(rational.One(), onePlus)                      // 1/(1+α)
	interior := rational.Div(rational.Sub(rational.One(), alpha), onePlus) // (1−α)/(1+α)
	pow := make([]*big.Rat, n+1)
	for d := 0; d <= n; d++ {
		pow[d] = rational.Pow(alpha, d)
	}
	m := matrix.New(n+1, n+1)
	for k := 0; k <= n; k++ {
		for z := 0; z <= n; z++ {
			d := k - z
			if d < 0 {
				d = -d
			}
			c := interior
			if z == 0 || z == n {
				c = boundary
			}
			m.Set(k, z, rational.Mul(c, pow[d]))
		}
	}
	return New(m)
}

// GeometricPrime returns the paper's G′_{n,α} (Table 2): interior
// columns of G_{n,α} scaled by (1+α)/(1−α) and the boundary columns 0
// and n scaled by (1+α). Both scalings cancel the respective
// normalization factors of G, so G′ is exactly the Toeplitz matrix
// with entries α^{|i−j|}. Used by Lemma 1 and the Table 2
// reproduction.
func GeometricPrime(n int, alpha *big.Rat) (*matrix.Matrix, error) {
	g, err := Geometric(n, alpha)
	if err != nil {
		return nil, err
	}
	onePlus := rational.Add(rational.One(), alpha)
	interiorScale := rational.Div(onePlus, rational.Sub(rational.One(), alpha))
	m := g.Matrix()
	out := matrix.New(n+1, n+1)
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			s := interiorScale
			if j == 0 || j == n {
				s = onePlus
			}
			out.Set(i, j, rational.Mul(m.At(i, j), s))
		}
	}
	return out, nil
}

// GeometricDet returns det G_{n,α} via the closed form proved in
// Lemma 1: det G′ = (1−α²)^{n}, and det G = det G′ / ((1+α)² ·
// ((1+α)/(1−α))^{n−1}). (Here the matrix is (n+1)×(n+1); the paper's
// Lemma 1 indexes by matrix dimension.)
func GeometricDet(n int, alpha *big.Rat) *big.Rat {
	one := rational.One()
	dim := n + 1
	oneMinusSq := rational.Sub(one, rational.Mul(alpha, alpha))
	detPrime := rational.Pow(oneMinusSq, dim-1)
	onePlus := rational.Add(one, alpha)
	scale := rational.Mul(rational.Mul(onePlus, onePlus),
		rational.Pow(rational.Div(onePlus, rational.Sub(one, alpha)), dim-2))
	return rational.Div(detPrime, scale)
}

// --- baselines ------------------------------------------------------------

// Uniform returns the mechanism that ignores its input and outputs a
// uniform element of {0..n}. It is α-DP for every α (including α=1)
// but has no utility; used as a privacy-extreme baseline.
func Uniform(n int) (*Mechanism, error) {
	if n < 1 {
		return nil, fmt.Errorf("mechanism: n must be ≥ 1, got %d", n)
	}
	p := rational.New(1, int64(n+1))
	m := matrix.New(n+1, n+1)
	for i := 0; i <= n; i++ {
		for r := 0; r <= n; r++ {
			m.Set(i, r, p)
		}
	}
	return New(m)
}

// Identity returns the mechanism that releases the true result
// unperturbed. It is 0-DP only; the no-privacy baseline.
func Identity(n int) (*Mechanism, error) {
	if n < 1 {
		return nil, fmt.Errorf("mechanism: n must be ≥ 1, got %d", n)
	}
	return New(matrix.Identity(n + 1))
}

// RandomizedResponse returns the classical randomized-response
// mechanism on {0..n}: with probability p it reports the truth and
// with probability 1−p a uniform value. Its privacy level is
// BestAlpha-computable; used as a non-geometric DP baseline that
// Theorem 2 shows is not always derivable from the geometric
// mechanism.
func RandomizedResponse(n int, p *big.Rat) (*Mechanism, error) {
	if n < 1 {
		return nil, fmt.Errorf("mechanism: n must be ≥ 1, got %d", n)
	}
	if p.Sign() < 0 || p.Cmp(rational.One()) > 0 {
		return nil, fmt.Errorf("mechanism: p must be in [0,1], got %s", p.RatString())
	}
	base := rational.Div(rational.Sub(rational.One(), p), rational.Int(int64(n+1)))
	m := matrix.New(n+1, n+1)
	for i := 0; i <= n; i++ {
		for r := 0; r <= n; r++ {
			v := rational.Clone(base)
			if i == r {
				v.Add(v, p)
			}
			m.Set(i, r, v)
		}
	}
	return New(m)
}

// GeometricInverse returns G_{n,α}⁻¹ in closed form, avoiding O(dim³)
// Gauss–Jordan elimination. Writing G = G′·D, where G′ is the Toeplitz
// matrix α^{|i−j|} (a Kac–Murdock–Szegő matrix) and D the diagonal
// column scaling (1/(1+α) on the boundary columns, (1−α)/(1+α)
// inside), we have G⁻¹ = D⁻¹·G′⁻¹ with the classical tridiagonal
// inverse
//
//	G′⁻¹ = 1/(1−α²) · tridiag(−α, 1+α², −α),
//
// except that the two corner diagonal entries are 1 instead of 1+α².
// Construction is O(dim²) rational operations (dominated by writing
// the output); the matrix itself has only O(dim) nonzero entries.
func GeometricInverse(n int, alpha *big.Rat) (*matrix.Matrix, error) {
	out, _, err := GeometricInverseStats(n, alpha)
	return out, err
}

// GeometricInverseStats is GeometricInverse exposing the hybrid tier
// counters of the construction: every band coefficient and per-entry
// product runs on the rational.Hval ladder, so moderate α
// denominators stay in machine words and the stats report the
// per-call hit rate.
func GeometricInverseStats(n int, alpha *big.Rat) (*matrix.Matrix, rational.HybridStats, error) {
	var h rational.HybridStats
	if n < 1 {
		return nil, h, fmt.Errorf("mechanism: n must be ≥ 1, got %d", n)
	}
	if alpha.Sign() <= 0 || alpha.Cmp(rational.One()) >= 0 {
		return nil, h, fmt.Errorf("mechanism: geometric needs α ∈ (0,1), got %s", alpha.RatString())
	}
	var zero rational.Hval
	one := rational.HvalFromRat(rational.One())
	al := rational.HvalFromRat(alpha)
	alphaSq := h.Mul(al, al)
	oneMinusSq := h.SubH(one, alphaSq)
	diagCorner := h.Quo(one, oneMinusSq)                 // 1/(1−α²)
	diagInner := h.Quo(h.AddH(one, alphaSq), oneMinusSq) // (1+α²)/(1−α²)
	off := h.Quo(h.SubH(zero, al), oneMinusSq)           // −α/(1−α²)
	onePlus := h.AddH(one, al)                           // (1+α)
	dInvBoundary := onePlus                              // (1+α)
	dInvInterior := h.Quo(onePlus, h.SubH(one, al))      // (1+α)/(1−α)

	out := matrix.New(n+1, n+1)
	for i := 0; i <= n; i++ {
		// Row scaling from D⁻¹ (D scaled columns of G′, so D⁻¹ scales
		// rows of G′⁻¹).
		scale := dInvInterior
		if i == 0 || i == n {
			scale = dInvBoundary
		}
		diag := diagInner
		if i == 0 || i == n {
			diag = diagCorner
		}
		out.Set(i, i, h.Mul(scale, diag).Rat())
		if i > 0 {
			out.Set(i, i-1, h.Mul(scale, off).Rat())
		}
		if i < n {
			out.Set(i, i+1, h.Mul(scale, off).Rat())
		}
	}
	return out, h, nil
}
