package mechanism

import (
	"encoding/json"
	"testing"

	"minimaxdp/internal/rational"
)

// FuzzUnmarshalJSON checks the decoder never panics and that every
// accepted payload is a genuine row-stochastic mechanism that
// re-encodes losslessly.
func FuzzUnmarshalJSON(f *testing.F) {
	g, err := Geometric(2, rational.MustParse("1/2"))
	if err != nil {
		f.Fatal(err)
	}
	valid, err := json.Marshal(g)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	f.Add(`{"n":1,"rows":[["1","0"],["0","1"]]}`)
	f.Add(`{"n":1,"rows":[["2","-1"],["0","1"]]}`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, s string) {
		var m Mechanism
		if err := m.UnmarshalJSON([]byte(s)); err != nil {
			return
		}
		if !m.Matrix().IsStochastic() {
			t.Fatalf("decoder accepted a non-stochastic mechanism from %q", s)
		}
		out, err := json.Marshal(&m)
		if err != nil {
			t.Fatalf("accepted mechanism failed to re-encode: %v", err)
		}
		var back Mechanism
		if err := back.UnmarshalJSON(out); err != nil {
			t.Fatalf("re-encoded mechanism failed to decode: %v", err)
		}
		if !back.Equal(&m) {
			t.Fatal("JSON round trip lost exactness")
		}
	})
}
