package mechanism

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"minimaxdp/internal/matrix"
	"minimaxdp/internal/rational"
)

func r(s string) *big.Rat { return rational.MustParse(s) }

func mustGeometric(t *testing.T, n int, alpha string) *Mechanism {
	t.Helper()
	g, err := Geometric(n, r(alpha))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewRejectsNonSquare(t *testing.T) {
	if _, err := New(matrix.New(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}

func TestNewRejectsNonStochastic(t *testing.T) {
	m := matrix.MustFromStrings([][]string{{"1/2", "1/3"}, {"1/2", "1/2"}})
	if _, err := New(m); !errors.Is(err, ErrNotStochastic) {
		t.Errorf("want ErrNotStochastic, got %v", err)
	}
	neg := matrix.MustFromStrings([][]string{{"3/2", "-1/2"}, {"1/2", "1/2"}})
	if _, err := New(neg); !errors.Is(err, ErrNotStochastic) {
		t.Errorf("want ErrNotStochastic for negative entry, got %v", err)
	}
}

func TestNewDeepCopies(t *testing.T) {
	m := matrix.Identity(3)
	mc, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(0, 0, rational.Zero())
	if mc.Prob(0, 0).RatString() != "1" {
		t.Error("New aliases caller's matrix")
	}
}

func TestGeometricRowsAreDistributions(t *testing.T) {
	for _, alpha := range []string{"1/4", "1/2", "2/3", "9/10"} {
		for n := 1; n <= 8; n++ {
			g := mustGeometric(t, n, alpha)
			if !g.Matrix().IsStochastic() {
				t.Errorf("G_{%d,%s} is not stochastic", n, alpha)
			}
		}
	}
}

// Table 1(b): G_{3,1/4} — the paper prints the matrix without the
// (1−α)/(1+α) normalization; multiplying our exact rows by
// (1+α)/(1−α) = 5/3 must reproduce the printed entries.
func TestGeometricMatchesPaperTable1b(t *testing.T) {
	g := mustGeometric(t, 3, "1/4")
	printed := matrix.MustFromStrings([][]string{
		{"4/3", "1/4", "1/16", "1/48"},
		{"1/3", "1", "1/4", "1/12"},
		{"1/12", "1/4", "1", "1/3"},
		{"1/48", "1/16", "1/4", "4/3"},
	})
	scale := r("5/3") // (1+α)/(1−α) at α=1/4
	got := g.Matrix().Scale(scale)
	if !got.Equal(printed) {
		t.Errorf("scaled G_{3,1/4} =\n%s\nwant paper Table 1(b)\n%s", got, printed)
	}
}

// Definition 4 boundary masses: Pr[Z(k)=0] = α^k/(1+α) and
// Pr[Z(k)=n] = α^{n−k}/(1+α).
func TestGeometricBoundaryMass(t *testing.T) {
	alpha := r("1/3")
	n := 5
	g, err := Geometric(n, alpha)
	if err != nil {
		t.Fatal(err)
	}
	onePlus := rational.Add(rational.One(), alpha)
	for k := 0; k <= n; k++ {
		want0 := rational.Div(rational.Pow(alpha, k), onePlus)
		if g.Prob(k, 0).Cmp(want0) != 0 {
			t.Errorf("Pr[Z(%d)=0] = %s, want %s", k, g.Prob(k, 0).RatString(), want0.RatString())
		}
		wantN := rational.Div(rational.Pow(alpha, n-k), onePlus)
		if g.Prob(k, n).Cmp(wantN) != 0 {
			t.Errorf("Pr[Z(%d)=%d] = %s, want %s", k, n, g.Prob(k, n).RatString(), wantN.RatString())
		}
	}
}

func TestGeometricIsAlphaDP(t *testing.T) {
	for _, alpha := range []string{"1/4", "1/2", "3/4"} {
		for n := 1; n <= 6; n++ {
			g := mustGeometric(t, n, alpha)
			if err := g.CheckDP(r(alpha)); err != nil {
				t.Errorf("G_{%d,%s} fails its own DP check: %v", n, alpha, err)
			}
			// And its DP level is exactly α, not better.
			if got := g.BestAlpha(); got.Cmp(r(alpha)) != 0 {
				t.Errorf("BestAlpha(G_{%d,%s}) = %s", n, alpha, got.RatString())
			}
		}
	}
}

func TestGeometricParameterValidation(t *testing.T) {
	if _, err := Geometric(0, r("1/2")); err == nil {
		t.Error("n=0 accepted")
	}
	for _, bad := range []string{"0", "1", "-1/2", "3/2"} {
		if _, err := Geometric(3, r(bad)); err == nil {
			t.Errorf("α=%s accepted", bad)
		}
	}
}

func TestCheckDPValidation(t *testing.T) {
	g := mustGeometric(t, 3, "1/2")
	if err := g.CheckDP(r("-1/2")); err == nil {
		t.Error("negative α accepted")
	}
	if err := g.CheckDP(r("2")); err == nil {
		t.Error("α>1 accepted")
	}
	// Stricter α than the mechanism provides must be rejected with a
	// violation that names the offending cells.
	err := g.CheckDP(r("3/4"))
	var v *DPViolation
	if !errors.As(err, &v) {
		t.Fatalf("want *DPViolation, got %v", err)
	}
	if v.Msg == "" || v.Error() == "" {
		t.Error("violation lacks message")
	}
}

func TestIdentityMechanismDP(t *testing.T) {
	id, err := Identity(3)
	if err != nil {
		t.Fatal(err)
	}
	if !id.IsDP(rational.Zero()) {
		t.Error("identity should be 0-DP")
	}
	if id.IsDP(r("1/2")) {
		t.Error("identity cannot be 1/2-DP")
	}
	if id.BestAlpha().Sign() != 0 {
		t.Error("identity BestAlpha should be 0")
	}
	if _, err := Identity(0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestUniformMechanism(t *testing.T) {
	u, err := Uniform(4)
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsDP(rational.One()) {
		t.Error("uniform should be 1-DP (perfect privacy)")
	}
	if u.BestAlpha().Cmp(rational.One()) != 0 {
		t.Error("uniform BestAlpha should be 1")
	}
	if _, err := Uniform(0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestRandomizedResponse(t *testing.T) {
	rr, err := RandomizedResponse(3, r("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Matrix().IsStochastic() {
		t.Error("randomized response not stochastic")
	}
	// Diagonal gets p + (1−p)/(n+1) = 1/2 + 1/8 = 5/8.
	if rr.Prob(1, 1).RatString() != "5/8" {
		t.Errorf("diag = %s", rr.Prob(1, 1).RatString())
	}
	if rr.Prob(1, 2).RatString() != "1/8" {
		t.Errorf("off-diag = %s", rr.Prob(1, 2).RatString())
	}
	// α level: off/diag = (1/8)/(5/8) = 1/5.
	if rr.BestAlpha().RatString() != "1/5" {
		t.Errorf("BestAlpha = %s", rr.BestAlpha().RatString())
	}
	if _, err := RandomizedResponse(0, r("1/2")); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RandomizedResponse(3, r("2")); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestBestAlphaZeroWhenSupportDiffers(t *testing.T) {
	m := matrix.MustFromStrings([][]string{
		{"1", "0"},
		{"1/2", "1/2"},
	})
	mc, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	if mc.BestAlpha().Sign() != 0 {
		t.Error("support mismatch must force α=0")
	}
}

func TestPostProcess(t *testing.T) {
	g := mustGeometric(t, 3, "1/4")
	// Paper Table 1(c): the consumer interaction matrix.
	tMat := matrix.MustFromStrings([][]string{
		{"9/11", "2/11", "0", "0"},
		{"0", "1", "0", "0"},
		{"0", "0", "1", "0"},
		{"0", "0", "2/11", "9/11"},
	})
	induced, err := g.PostProcess(tMat)
	if err != nil {
		t.Fatal(err)
	}
	if !induced.Matrix().IsStochastic() {
		t.Error("induced mechanism not stochastic")
	}
	// Exact first row of the induced mechanism (the paper's Table 1(a)
	// prints a rounded version; see EXPERIMENTS.md).
	want := []string{"36/55", "13/44", "7/176", "9/880"}
	for j, w := range want {
		if induced.Prob(0, j).Cmp(r(w)) != 0 {
			t.Errorf("induced[0][%d] = %s, want %s", j, induced.Prob(0, j).RatString(), w)
		}
	}
	// Post-processing can only preserve or improve privacy, never
	// degrade it (data-processing inequality for DP).
	if !induced.IsDP(r("1/4")) {
		t.Error("post-processed mechanism lost its 1/4-DP guarantee")
	}
}

func TestPostProcessRejectsBadT(t *testing.T) {
	g := mustGeometric(t, 2, "1/2")
	bad := matrix.MustFromStrings([][]string{{"1/2", "1/3", "0"}, {"0", "1", "0"}, {"0", "0", "1"}})
	if _, err := g.PostProcess(bad); err == nil {
		t.Error("non-stochastic T accepted")
	}
	wrongDim := matrix.Identity(2)
	if _, err := g.PostProcess(wrongDim); err == nil {
		t.Error("dimension-mismatched T accepted")
	}
}

func TestGeometricPrimeStructure(t *testing.T) {
	alpha := r("1/4")
	n := 3
	gp, err := GeometricPrime(n, alpha)
	if err != nil {
		t.Fatal(err)
	}
	// G′ is the pure Toeplitz matrix α^{|i−j|} (Table 2, right): the
	// ×(1+α) boundary-column scaling exactly cancels the boundary
	// factor 1/(1+α) of G.
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			want := rational.Pow(alpha, d)
			if gp.At(i, j).Cmp(want) != 0 {
				t.Errorf("G'[%d][%d] = %s, want %s", i, j, gp.At(i, j).RatString(), want.RatString())
			}
		}
	}
	if _, err := GeometricPrime(3, r("0")); err == nil {
		t.Error("α=0 accepted")
	}
}

// Lemma 1: det G_{n,α} > 0, and the closed form matches direct
// computation.
func TestGeometricDetMatchesLemma1(t *testing.T) {
	for _, alpha := range []string{"1/4", "1/2", "3/5"} {
		for n := 1; n <= 7; n++ {
			g := mustGeometric(t, n, alpha)
			direct, err := g.Matrix().Det()
			if err != nil {
				t.Fatal(err)
			}
			if direct.Sign() <= 0 {
				t.Errorf("det G_{%d,%s} = %s, want > 0", n, alpha, direct.RatString())
			}
			closed := GeometricDet(n, r(alpha))
			if closed.Cmp(direct) != 0 {
				t.Errorf("closed form %s != direct %s for n=%d α=%s",
					closed.RatString(), direct.RatString(), n, alpha)
			}
		}
	}
}

// det G′_{n,α} = (1−α²)^{dim−1} where dim = n+1 (Lemma 1's induction).
func TestGeometricPrimeDet(t *testing.T) {
	for _, alpha := range []string{"1/4", "1/2"} {
		for n := 1; n <= 6; n++ {
			gp, err := GeometricPrime(n, r(alpha))
			if err != nil {
				t.Fatal(err)
			}
			det, err := gp.Det()
			if err != nil {
				t.Fatal(err)
			}
			a := r(alpha)
			want := rational.Pow(rational.Sub(rational.One(), rational.Mul(a, a)), n)
			if det.Cmp(want) != 0 {
				t.Errorf("det G'_{%d,%s} = %s, want %s", n, alpha, det.RatString(), want.RatString())
			}
		}
	}
}

func TestSampleMatchesRowDistribution(t *testing.T) {
	g := mustGeometric(t, 4, "1/2")
	rng := rand.New(rand.NewSource(42))
	const trials = 200000
	counts := make([]int, 5)
	for i := 0; i < trials; i++ {
		counts[g.Sample(2, rng)]++
	}
	for rr := 0; rr <= 4; rr++ {
		want := rational.Float(g.Prob(2, rr))
		got := float64(counts[rr]) / trials
		if diff := got - want; diff > 0.01 || diff < -0.01 {
			t.Errorf("empirical Pr[r=%d] = %.4f, want %.4f", rr, got, want)
		}
	}
}

func TestSampleOutOfRangePanics(t *testing.T) {
	g := mustGeometric(t, 2, "1/2")
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Sample did not panic")
		}
	}()
	g.Sample(5, rand.New(rand.NewSource(1)))
}

func TestFromStrings(t *testing.T) {
	mc, err := FromStrings([][]string{{"1/2", "1/2"}, {"1/2", "1/2"}})
	if err != nil {
		t.Fatal(err)
	}
	if mc.N() != 1 || mc.Size() != 2 {
		t.Error("N/Size wrong")
	}
	if _, err := FromStrings([][]string{{"bogus"}}); err == nil {
		t.Error("bad entry accepted")
	}
	if mc.String() == "" {
		t.Error("empty String")
	}
}

func TestEqualAndRow(t *testing.T) {
	a := mustGeometric(t, 3, "1/2")
	b := mustGeometric(t, 3, "1/2")
	c := mustGeometric(t, 3, "1/4")
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal wrong")
	}
	row := a.Row(0)
	row[0].SetInt64(5)
	if a.Prob(0, 0).RatString() == "5" {
		t.Error("Row aliases mechanism")
	}
}

// Property: for random α and n, the geometric mechanism is symmetric
// under simultaneous input/output reversal (i,j) → (n−i, n−j).
func TestQuickGeometricReversalSymmetry(t *testing.T) {
	f := func(num, den uint8, nn uint8) bool {
		d := int64(den%8) + 2
		p := int64(num%uint8(d-1)) + 1 // 1 ≤ p < d so α ∈ (0,1)
		alpha := rational.New(p, d)
		n := int(nn%5) + 1
		g, err := Geometric(n, alpha)
		if err != nil {
			return false
		}
		for i := 0; i <= n; i++ {
			for j := 0; j <= n; j++ {
				if g.Prob(i, j).Cmp(g.Prob(n-i, n-j)) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: post-processing with any row-stochastic T preserves α-DP
// (the data-processing inequality the whole paper rests on).
func TestQuickPostProcessPreservesDP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		alpha := rational.New(int64(rng.Intn(3)+1), 4) // 1/4, 1/2, 3/4
		g, err := Geometric(n, alpha)
		if err != nil {
			return false
		}
		// Random stochastic T.
		tm := matrix.New(n+1, n+1)
		for i := 0; i <= n; i++ {
			weights := make([]int64, n+1)
			var sum int64
			for j := range weights {
				weights[j] = int64(rng.Intn(5))
				sum += weights[j]
			}
			if sum == 0 {
				weights[0], sum = 1, 1
			}
			for j := range weights {
				tm.Set(i, j, rational.New(weights[j], sum))
			}
		}
		induced, err := g.PostProcess(tm)
		if err != nil {
			return false
		}
		return induced.IsDP(alpha)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The closed-form inverse equals the Gauss–Jordan inverse exactly, for
// a grid of n and α.
func TestGeometricInverseClosedForm(t *testing.T) {
	for _, alpha := range []string{"1/4", "1/2", "2/3", "9/10"} {
		for n := 1; n <= 7; n++ {
			g := mustGeometric(t, n, alpha)
			want, err := g.Matrix().Inverse()
			if err != nil {
				t.Fatal(err)
			}
			got, err := GeometricInverse(n, r(alpha))
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("closed-form inverse differs at n=%d α=%s:\ngot\n%s\nwant\n%s",
					n, alpha, got, want)
			}
		}
	}
}

func TestGeometricInverseValidation(t *testing.T) {
	if _, err := GeometricInverse(0, r("1/2")); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := GeometricInverse(3, r("1")); err == nil {
		t.Error("α=1 accepted")
	}
	if _, err := GeometricInverse(3, r("0")); err == nil {
		t.Error("α=0 accepted")
	}
}

// G·G⁻¹ = I for a larger size where Gauss–Jordan would be slow enough
// to notice.
func TestGeometricInverseLargeRoundTrip(t *testing.T) {
	n := 40
	g := mustGeometric(t, n, "1/2")
	inv, err := GeometricInverse(n, r("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	prod, err := g.Matrix().Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(matrix.Identity(n + 1)) {
		t.Error("G·G⁻¹ != I at n=40")
	}
}

// TestPostProcessStatsHybridEngages pins the hybrid threading of the
// transition product: geometric probability entries are small
// rationals, so the product must run on the fast tiers and match the
// plain PostProcess result exactly.
func TestPostProcessStatsHybridEngages(t *testing.T) {
	g := mustGeometric(t, 3, "1/4")
	tMat := matrix.MustFromStrings([][]string{
		{"9/11", "2/11", "0", "0"},
		{"0", "1", "0", "0"},
		{"0", "0", "1", "0"},
		{"0", "0", "2/11", "9/11"},
	})
	want, err := g.PostProcess(tMat)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := g.PostProcessStats(tMat)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("PostProcessStats disagrees with PostProcess")
	}
	if stats.SmallOps == 0 {
		t.Errorf("stats.SmallOps = 0; transition product never hit the fast tier")
	}
	if stats.BigOps != 0 {
		t.Errorf("stats.BigOps = %d on Table 1 entries; ladder promoted too eagerly", stats.BigOps)
	}
}

// TestGeometricInverseStatsHybridEngages pins the hybrid threading of
// the closed-form inverse construction and its agreement with the
// Gauss–Jordan oracle.
func TestGeometricInverseStatsHybridEngages(t *testing.T) {
	n := 6
	alpha := r("2/3")
	inv, stats, err := GeometricInverseStats(n, alpha)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Geometric(n, alpha)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := g.Matrix().Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Equal(oracle) {
		t.Fatal("GeometricInverseStats disagrees with Gauss–Jordan inverse")
	}
	if stats.SmallOps == 0 {
		t.Errorf("stats.SmallOps = 0; band coefficients never hit the fast tier")
	}
	if stats.BigOps != 0 {
		t.Errorf("stats.BigOps = %d for α=2/3; ladder promoted too eagerly", stats.BigOps)
	}
}
