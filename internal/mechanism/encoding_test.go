package mechanism

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := mustGeometric(t, 4, "1/3")
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"n":4`) {
		t.Errorf("JSON missing n: %s", data)
	}
	var back Mechanism
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Error("JSON round trip lost exactness")
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	var m Mechanism
	cases := []string{
		`{`,                                    // malformed
		`{"n":1,"rows":[]}`,                    // no rows
		`{"n":3,"rows":[["1"],["1"]]}`,         // n inconsistent
		`{"n":1,"rows":[["1","1"],["0","1"]]}`, // row sums 2
		`{"n":1,"rows":[["x","y"],["0","1"]]}`, // bad rationals
	}
	for _, c := range cases {
		if err := m.UnmarshalJSON([]byte(c)); err == nil {
			t.Errorf("accepted %s", c)
		}
	}
}

func TestUnmarshalErrorLeavesReceiverUsable(t *testing.T) {
	g := mustGeometric(t, 2, "1/2")
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var m Mechanism
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if err := m.UnmarshalJSON([]byte(`{"n":0,"rows":[]}`)); err == nil {
		t.Fatal("bad input accepted")
	}
	// Receiver untouched by the failed decode.
	if !m.Equal(g) {
		t.Error("failed decode corrupted the receiver")
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := mustGeometric(t, 3, "1/4")
	var b strings.Builder
	if err := g.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(strings.NewReader("# header comment\n" + b.String() + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Error("text round trip lost exactness")
	}
}

func TestReadTextErrors(t *testing.T) {
	if _, err := ReadText(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadText(strings.NewReader("1/2 1/3\n1 0\n")); err == nil {
		t.Error("non-stochastic input accepted")
	}
}

func TestDescribeAndScaleCheck(t *testing.T) {
	g := mustGeometric(t, 2, "1/2")
	if !strings.Contains(g.Describe(), "{0..2}") || !strings.Contains(g.Describe(), "1/2") {
		t.Errorf("Describe = %q", g.Describe())
	}
	nz, err := g.ScaleCheck()
	if err != nil || nz != 9 {
		t.Errorf("ScaleCheck = %d, %v (geometric has full support)", nz, err)
	}
}

func TestClone(t *testing.T) {
	g := mustGeometric(t, 2, "1/2")
	c := g.Clone()
	if !c.Equal(g) {
		t.Error("clone differs")
	}
}

func TestTotalVariationRow(t *testing.T) {
	id, err := Identity(2)
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint deterministic rows: TV = 1.
	if got := id.TotalVariationRow(0, 2); got.RatString() != "1" {
		t.Errorf("TV(identity rows) = %s", got.RatString())
	}
	// Same row: TV = 0.
	if got := id.TotalVariationRow(1, 1); got.Sign() != 0 {
		t.Errorf("TV(same row) = %s", got.RatString())
	}
	// Geometric adjacent rows at α: TV is strictly between 0 and 1−α.
	g := mustGeometric(t, 3, "1/2")
	tv := g.TotalVariationRow(0, 1)
	if tv.Sign() <= 0 || tv.Cmp(r("1/2")) > 0 {
		t.Errorf("TV(G rows 0,1) = %s, want in (0, 1/2]", tv.RatString())
	}
}
