// Package privacy provides differential-privacy accounting around the
// paper's multiplicative α parameterization.
//
// The paper (following its Definition 2) writes guarantees as
// α ∈ [0,1] with probability ratios confined to [α, 1/α]; the wider
// literature writes ε-differential privacy with ratios in
// [e^{−ε}, e^{ε}]. The two views are related by α = e^{−ε}. This
// package converts between them and implements the standard accounting
// rules in exact α-form:
//
//   - sequential composition: answering k queries at levels α₁…α_k is
//     (α₁·…·α_k)-DP overall;
//   - group privacy: an α-DP mechanism protects groups of g
//     individuals at level α^g;
//   - budget splitting: dividing an ε budget across k queries.
//
// Everything is exact over rationals except the explicitly float-typed
// ε conversions (e is transcendental).
package privacy

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"minimaxdp/internal/rational"
)

// ErrOutOfRange is returned for parameters outside their domain.
var ErrOutOfRange = errors.New("privacy: parameter out of range")

// AlphaFromEpsilon converts an ε-DP guarantee (ε ≥ 0) to the paper's
// α = e^{−ε} ∈ (0,1].
func AlphaFromEpsilon(epsilon float64) (float64, error) {
	if epsilon < 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return 0, fmt.Errorf("%w: ε = %v", ErrOutOfRange, epsilon)
	}
	return math.Exp(-epsilon), nil
}

// EpsilonFromAlpha converts the paper's α ∈ (0,1] to ε = −ln α ≥ 0.
func EpsilonFromAlpha(alpha float64) (float64, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return 0, fmt.Errorf("%w: α = %v", ErrOutOfRange, alpha)
	}
	return -math.Log(alpha), nil
}

// Compose returns the sequential-composition guarantee of releasing
// the outputs of mechanisms at levels alphas on the same database:
// the product Π αᵢ (in ε terms, the familiar Σ εᵢ). Each αᵢ must lie
// in [0,1].
func Compose(alphas []*big.Rat) (*big.Rat, error) {
	if len(alphas) == 0 {
		return nil, fmt.Errorf("%w: empty composition", ErrOutOfRange)
	}
	out := rational.One()
	one := rational.One()
	for i, a := range alphas {
		if a.Sign() < 0 || a.Cmp(one) > 0 {
			return nil, fmt.Errorf("%w: α[%d] = %s", ErrOutOfRange, i, a.RatString())
		}
		out.Mul(out, a)
	}
	return out, nil
}

// Group returns the group-privacy level of an α-DP mechanism for
// groups of g ≥ 1 individuals: α^g. (Changing g rows moves the count
// by at most g, and each unit step costs a factor α.)
func Group(alpha *big.Rat, g int) (*big.Rat, error) {
	if g < 1 {
		return nil, fmt.Errorf("%w: group size %d", ErrOutOfRange, g)
	}
	if alpha.Sign() < 0 || alpha.Cmp(rational.One()) > 0 {
		return nil, fmt.Errorf("%w: α = %s", ErrOutOfRange, alpha.RatString())
	}
	return rational.Pow(alpha, g), nil
}

// SplitBudget divides a total privacy budget (given as the overall
// α_total the curator is willing to guarantee) evenly across k
// queries, returning the per-query level α_query with
// α_query^k = α_total, i.e. α_query = α_total^{1/k}. Because rational
// k-th roots generally do not exist, the result is float64; use
// SplitBudgetRat for an exact per-query rational that is at least as
// protective.
func SplitBudget(alphaTotal float64, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("%w: k = %d", ErrOutOfRange, k)
	}
	if alphaTotal <= 0 || alphaTotal > 1 {
		return 0, fmt.Errorf("%w: α_total = %v", ErrOutOfRange, alphaTotal)
	}
	return math.Pow(alphaTotal, 1/float64(k)), nil
}

// SplitBudgetRat returns an exact rational per-query level whose k-th
// power is ≥ alphaTotal (i.e. the composed guarantee is at least as
// strong as requested), found by rounding the real k-th root up at the
// given denominator resolution.
func SplitBudgetRat(alphaTotal *big.Rat, k int, denom int64) (*big.Rat, error) {
	if k < 1 || denom < 2 {
		return nil, fmt.Errorf("%w: k=%d denom=%d", ErrOutOfRange, k, denom)
	}
	one := rational.One()
	if alphaTotal.Sign() <= 0 || alphaTotal.Cmp(one) > 0 {
		return nil, fmt.Errorf("%w: α_total = %s", ErrOutOfRange, alphaTotal.RatString())
	}
	root := math.Pow(rational.Float(alphaTotal), 1/float64(k))
	// Round up to the next multiple of 1/denom, then nudge further up
	// until the exact power condition α^k ≥ α_total holds (float error
	// can land one step low).
	num := int64(math.Ceil(root * float64(denom)))
	for ; num <= denom; num++ {
		cand := rational.New(num, denom)
		if rational.Pow(cand, k).Cmp(alphaTotal) >= 0 {
			return cand, nil
		}
	}
	return one, nil
}

// Loss bounds ------------------------------------------------------------

// RatioBound returns the multiplicative band [α, 1/α] as floats, the
// form used when explaining a guarantee to non-specialists.
func RatioBound(alpha *big.Rat) (lo, hi float64, err error) {
	if alpha.Sign() <= 0 || alpha.Cmp(rational.One()) > 0 {
		return 0, 0, fmt.Errorf("%w: α = %s", ErrOutOfRange, alpha.RatString())
	}
	f := rational.Float(alpha)
	return f, 1 / f, nil
}

// GeometricTailBound returns Pr[|Z| ≥ t] for the unrestricted
// two-sided geometric noise of Definition 1 with ratio α: the exact
// value 2α^t/(1+α) for t ≥ 1 (and 1 for t ≤ 0). This is the accuracy
// guarantee a curator can quote alongside the privacy level.
func GeometricTailBound(alpha *big.Rat, t int) *big.Rat {
	if t <= 0 {
		return rational.One()
	}
	num := rational.Mul(rational.Int(2), rational.Pow(alpha, t))
	return rational.Div(num, rational.Add(rational.One(), alpha))
}

// GeometricExpectedAbsNoise returns E|Z| for Definition 1 noise:
// 2α/((1−α)(1+α)) exactly.
func GeometricExpectedAbsNoise(alpha *big.Rat) *big.Rat {
	one := rational.One()
	num := rational.Mul(rational.Int(2), alpha)
	den := rational.Mul(rational.Sub(one, alpha), rational.Add(one, alpha))
	return rational.Div(num, den)
}

// GeometricNoiseVariance returns Var(Z) = E[Z²] (the noise has mean
// zero) for Definition 1 noise, exactly: 2α/(1−α)². Derivation:
// E[Z²] = 2·(1−α)/(1+α)·Σ_{k≥1} k²α^k = 2·(1−α)/(1+α)·α(1+α)/(1−α)³.
func GeometricNoiseVariance(alpha *big.Rat) *big.Rat {
	one := rational.One()
	oneMinus := rational.Sub(one, alpha)
	den := rational.Mul(oneMinus, oneMinus)
	return rational.Div(rational.Mul(rational.Int(2), alpha), den)
}
