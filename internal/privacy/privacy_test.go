package privacy

import (
	"errors"
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
)

func r(s string) *big.Rat { return rational.MustParse(s) }

func TestAlphaEpsilonRoundTrip(t *testing.T) {
	for _, eps := range []float64{0, 0.1, 0.5, 1, math.Ln2, 5} {
		a, err := AlphaFromEpsilon(eps)
		if err != nil {
			t.Fatal(err)
		}
		back, err := EpsilonFromAlpha(a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(back-eps) > 1e-12 {
			t.Errorf("round trip %v → %v → %v", eps, a, back)
		}
	}
	// ε = ln 2 ⇔ α = 1/2.
	a, _ := AlphaFromEpsilon(math.Ln2)
	if math.Abs(a-0.5) > 1e-15 {
		t.Errorf("α(ln 2) = %v", a)
	}
}

func TestConversionErrors(t *testing.T) {
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := AlphaFromEpsilon(bad); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("AlphaFromEpsilon(%v) err = %v", bad, err)
		}
	}
	for _, bad := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := EpsilonFromAlpha(bad); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("EpsilonFromAlpha(%v) err = %v", bad, err)
		}
	}
}

func TestCompose(t *testing.T) {
	got, err := Compose([]*big.Rat{r("1/2"), r("1/3")})
	if err != nil {
		t.Fatal(err)
	}
	if got.RatString() != "1/6" {
		t.Errorf("Compose = %s, want 1/6", got.RatString())
	}
	if _, err := Compose(nil); !errors.Is(err, ErrOutOfRange) {
		t.Error("empty composition accepted")
	}
	if _, err := Compose([]*big.Rat{r("3/2")}); !errors.Is(err, ErrOutOfRange) {
		t.Error("α>1 accepted")
	}
}

// In ε terms, composition adds: −ln(Πα) = Σ(−ln α).
func TestComposeMatchesEpsilonAddition(t *testing.T) {
	alphas := []*big.Rat{r("1/2"), r("2/3"), r("3/4")}
	composed, err := Compose(alphas)
	if err != nil {
		t.Fatal(err)
	}
	epsSum := 0.0
	for _, a := range alphas {
		e, err := EpsilonFromAlpha(rational.Float(a))
		if err != nil {
			t.Fatal(err)
		}
		epsSum += e
	}
	got, err := EpsilonFromAlpha(rational.Float(composed))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-epsSum) > 1e-12 {
		t.Errorf("composed ε = %v, sum = %v", got, epsSum)
	}
}

func TestGroup(t *testing.T) {
	got, err := Group(r("1/2"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.RatString() != "1/8" {
		t.Errorf("Group = %s", got.RatString())
	}
	if _, err := Group(r("1/2"), 0); !errors.Is(err, ErrOutOfRange) {
		t.Error("g=0 accepted")
	}
	if _, err := Group(r("2"), 1); !errors.Is(err, ErrOutOfRange) {
		t.Error("α>1 accepted")
	}
	one, err := Group(r("1/2"), 1)
	if err != nil || one.RatString() != "1/2" {
		t.Error("g=1 should be identity")
	}
}

func TestSplitBudget(t *testing.T) {
	got, err := SplitBudget(0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SplitBudget(1/4, 2) = %v, want 0.5", got)
	}
	if _, err := SplitBudget(0.5, 0); !errors.Is(err, ErrOutOfRange) {
		t.Error("k=0 accepted")
	}
	if _, err := SplitBudget(0, 2); !errors.Is(err, ErrOutOfRange) {
		t.Error("α=0 accepted")
	}
	if _, err := SplitBudget(2, 2); !errors.Is(err, ErrOutOfRange) {
		t.Error("α>1 accepted")
	}
}

func TestSplitBudgetRat(t *testing.T) {
	total := r("1/4")
	per, err := SplitBudgetRat(total, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Guarantee must hold exactly: per² ≥ 1/4, i.e. per ≥ 1/2.
	if rational.Pow(per, 2).Cmp(total) < 0 {
		t.Errorf("per-query level %s too weak", per.RatString())
	}
	// And not be wastefully conservative: within 1/1000 of the root.
	if rational.Float(per) > 0.5+0.002 {
		t.Errorf("per-query level %s too conservative", per.RatString())
	}
	if _, err := SplitBudgetRat(total, 0, 1000); !errors.Is(err, ErrOutOfRange) {
		t.Error("k=0 accepted")
	}
	if _, err := SplitBudgetRat(total, 2, 1); !errors.Is(err, ErrOutOfRange) {
		t.Error("denom=1 accepted")
	}
	if _, err := SplitBudgetRat(r("0"), 2, 10); !errors.Is(err, ErrOutOfRange) {
		t.Error("α=0 accepted")
	}
}

// Property: SplitBudgetRat always composes to at least the requested
// guarantee.
func TestQuickSplitBudgetSound(t *testing.T) {
	f := func(num uint8, kk uint8) bool {
		n := int64(num%99) + 1 // α_total = n/100 ∈ (0,1)
		total := rational.New(n, 100)
		k := int(kk%5) + 1
		per, err := SplitBudgetRat(total, k, 10000)
		if err != nil {
			return false
		}
		return rational.Pow(per, k).Cmp(total) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatioBound(t *testing.T) {
	lo, hi, err := RatioBound(r("1/2"))
	if err != nil || lo != 0.5 || hi != 2 {
		t.Errorf("RatioBound = %v %v %v", lo, hi, err)
	}
	if _, _, err := RatioBound(r("0")); !errors.Is(err, ErrOutOfRange) {
		t.Error("α=0 accepted")
	}
}

func TestGeometricTailBound(t *testing.T) {
	alpha := r("1/2")
	if GeometricTailBound(alpha, 0).RatString() != "1" {
		t.Error("t=0 should be 1")
	}
	// Pr[|Z| ≥ 1] = 2·(1/2)/(3/2) = 2/3.
	if got := GeometricTailBound(alpha, 1); got.RatString() != "2/3" {
		t.Errorf("tail(1) = %s", got.RatString())
	}
	// Pr[|Z| ≥ 3] = 2·(1/8)/(3/2) = 1/6.
	if got := GeometricTailBound(alpha, 3); got.RatString() != "1/6" {
		t.Errorf("tail(3) = %s", got.RatString())
	}
}

// Closed-form moments agree with Monte-Carlo sampling of the
// Definition 1 noise.
func TestGeometricMomentsEmpirical(t *testing.T) {
	alpha := r("2/5")
	wantAbs := rational.Float(GeometricExpectedAbsNoise(alpha))
	wantVar := rational.Float(GeometricNoiseVariance(alpha))
	rng := sample.NewRand(19)
	const trials = 400000
	sumAbs, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		z := float64(sample.TwoSidedGeometric(0.4, rng))
		sumAbs += math.Abs(z)
		sumSq += z * z
	}
	gotAbs := sumAbs / trials
	gotVar := sumSq / trials
	if math.Abs(gotAbs-wantAbs) > 0.01 {
		t.Errorf("E|Z| empirical %v, closed form %v", gotAbs, wantAbs)
	}
	if math.Abs(gotVar-wantVar) > 0.05 {
		t.Errorf("Var(Z) empirical %v, closed form %v", gotVar, wantVar)
	}
}

// The tail bound is exactly the tail of the sampled distribution.
func TestGeometricTailEmpirical(t *testing.T) {
	alpha := r("1/2")
	rng := sample.NewRand(23)
	const trials = 300000
	const tt = 2
	count := 0
	for i := 0; i < trials; i++ {
		z := sample.TwoSidedGeometric(0.5, rng)
		if z >= tt || z <= -tt {
			count++
		}
	}
	want := rational.Float(GeometricTailBound(alpha, tt))
	got := float64(count) / trials
	if math.Abs(got-want) > 0.01 {
		t.Errorf("tail empirical %v, exact %v", got, want)
	}
}
