// Package multiquery answers several count queries under one overall
// privacy guarantee, using the paper's single-query geometric
// mechanism as the building block its conclusion suggests ("Our
// results could be used as a building block while answering multiple
// queries").
//
// Two classical accounting regimes are provided:
//
//   - sequential composition, for arbitrary (possibly overlapping)
//     queries: an overall budget α_total is split so that the product
//     of per-query levels still meets α_total;
//   - parallel composition, for disjoint queries (no individual
//     affects more than one query, e.g. a histogram): every query can
//     spend the full budget because a neighbouring database perturbs
//     only one answer.
//
// Every per-query release is an ordinary geometric mechanism, so
// Theorem 1 still holds query-by-query: each consumer can post-process
// each answer optimally for its own loss and side information.
package multiquery

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"

	"minimaxdp/internal/database"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/privacy"
	"minimaxdp/internal/rational"
)

// Workload is an ordered collection of count queries over one
// database.
type Workload struct {
	Queries []database.CountQuery
}

// Size returns the number of queries.
func (w Workload) Size() int { return len(w.Queries) }

// Disjoint reports whether no row of db satisfies more than one of the
// workload's predicates — the precondition for parallel composition.
// (Disjointness is checked against the concrete database, which is
// what the privacy argument needs: a row change can then alter at most
// one true answer.)
func (w Workload) Disjoint(db *database.Database) bool {
	for i := 0; i < db.Size(); i++ {
		row := db.Row(i)
		hits := 0
		for _, q := range w.Queries {
			if q.Pred(row) {
				hits++
				if hits > 1 {
					return false
				}
			}
		}
	}
	return true
}

// Answer is one released query result.
type Answer struct {
	Query    string
	Released int
	// Alpha is the per-query differential-privacy level this answer
	// was released at.
	Alpha *big.Rat
}

// Answerer releases a workload's answers under an overall budget.
type Answerer struct {
	n        int
	total    *big.Rat
	perQuery *big.Rat
	mech     *mechanism.Mechanism
	parallel bool
}

// ErrBudget is returned for invalid privacy budgets.
var ErrBudget = errors.New("multiquery: invalid privacy budget")

// NewSequential prepares an answerer for k arbitrary queries on an
// n-row database under overall level alphaTotal: the budget is split
// as α_query = alphaTotal^{1/k} (rounded up at resolution 1/denom so
// the composed guarantee is exact, see privacy.SplitBudgetRat) and a
// geometric mechanism at α_query is used for every query.
func NewSequential(n, k int, alphaTotal *big.Rat, denom int64) (*Answerer, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: k = %d", ErrBudget, k)
	}
	if alphaTotal.Sign() <= 0 || alphaTotal.Cmp(rational.One()) >= 0 {
		return nil, fmt.Errorf("%w: α_total = %s must be in (0,1)", ErrBudget, alphaTotal.RatString())
	}
	per, err := privacy.SplitBudgetRat(alphaTotal, k, denom)
	if err != nil {
		return nil, err
	}
	if per.Cmp(rational.One()) >= 0 {
		// Rounding pushed the per-query level to 1 (absolute privacy);
		// back off one resolution step — the guarantee check in
		// Answer's accounting still uses the exact per-query value.
		per = rational.Sub(rational.One(), rational.New(1, denom))
	}
	mech, err := mechanism.Geometric(n, per)
	if err != nil {
		return nil, err
	}
	return &Answerer{n: n, total: rational.Clone(alphaTotal), perQuery: per, mech: mech}, nil
}

// NewParallel prepares an answerer for disjoint queries: every query
// is answered at the full level alpha (parallel composition). Answer
// verifies disjointness against the database before releasing.
func NewParallel(n int, alpha *big.Rat) (*Answerer, error) {
	mech, err := mechanism.Geometric(n, alpha)
	if err != nil {
		return nil, err
	}
	return &Answerer{n: n, total: rational.Clone(alpha), perQuery: rational.Clone(alpha),
		mech: mech, parallel: true}, nil
}

// PerQueryAlpha returns the level each individual answer is released
// at.
func (a *Answerer) PerQueryAlpha() *big.Rat { return rational.Clone(a.perQuery) }

// ComposedAlpha returns the overall guarantee for the whole released
// vector of k answers: perQuery^k under sequential composition, or
// perQuery itself under parallel composition.
func (a *Answerer) ComposedAlpha(k int) (*big.Rat, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: k = %d", ErrBudget, k)
	}
	if a.parallel {
		return rational.Clone(a.perQuery), nil
	}
	return rational.Pow(a.perQuery, k), nil
}

// Mechanism returns the per-query geometric mechanism (identical for
// all queries; they share n and α).
func (a *Answerer) Mechanism() *mechanism.Mechanism { return a.mech }

// Answer releases the workload: one geometric draw per query. For a
// parallel answerer the workload must be disjoint on db.
func (a *Answerer) Answer(db *database.Database, w Workload, rng *rand.Rand) ([]Answer, error) {
	if w.Size() == 0 {
		return nil, errors.New("multiquery: empty workload")
	}
	if db.Size() != a.n {
		return nil, fmt.Errorf("multiquery: database size %d, answerer built for %d", db.Size(), a.n)
	}
	if a.parallel && !w.Disjoint(db) {
		return nil, errors.New("multiquery: workload is not disjoint; parallel composition does not apply")
	}
	out := make([]Answer, 0, w.Size())
	for _, q := range w.Queries {
		truth := q.Eval(db)
		out = append(out, Answer{
			Query:    q.Name,
			Released: a.mech.Sample(truth, rng),
			Alpha:    rational.Clone(a.perQuery),
		})
	}
	return out, nil
}

// AgeHistogram builds a disjoint workload bucketing rows by age:
// [0,b1), [b1,b2), …, [b_last, ∞). Buckets must be strictly
// increasing positive bounds.
func AgeHistogram(bounds []int) (Workload, error) {
	if len(bounds) == 0 {
		return Workload{}, errors.New("multiquery: no bucket bounds")
	}
	for i, b := range bounds {
		if b <= 0 || (i > 0 && b <= bounds[i-1]) {
			return Workload{}, fmt.Errorf("multiquery: bounds must be strictly increasing positive, got %v", bounds)
		}
	}
	var w Workload
	lo := 0
	for _, hi := range bounds {
		lo2, hi2 := lo, hi // capture
		w.Queries = append(w.Queries, database.CountQuery{
			Name: fmt.Sprintf("age in [%d,%d)", lo2, hi2),
			Pred: func(r database.Row) bool { return r.Age >= lo2 && r.Age < hi2 },
		})
		lo = hi
	}
	last := lo
	w.Queries = append(w.Queries, database.CountQuery{
		Name: fmt.Sprintf("age >= %d", last),
		Pred: func(r database.Row) bool { return r.Age >= last },
	})
	return w, nil
}

// ExpectedAbsErrorPerQuery returns the exact expected absolute error
// of the unrestricted geometric noise at the answerer's per-query
// level — the accuracy price of the chosen composition regime.
func (a *Answerer) ExpectedAbsErrorPerQuery() *big.Rat {
	return privacy.GeometricExpectedAbsNoise(a.perQuery)
}
