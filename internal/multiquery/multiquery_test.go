package multiquery

import (
	"math"
	"math/big"
	"testing"

	"minimaxdp/internal/database"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
)

func r(s string) *big.Rat { return rational.MustParse(s) }

func testDB(t *testing.T) *database.Database {
	t.Helper()
	return database.Synthetic(30, "San Diego", 0.2, sample.NewRand(5))
}

func fluAndAdults() Workload {
	return Workload{Queries: []database.CountQuery{
		database.FluQuery("San Diego"),
		{Name: "adults", Pred: func(r database.Row) bool { return r.Age >= 18 }},
	}}
}

func TestNewSequentialValidation(t *testing.T) {
	if _, err := NewSequential(30, 0, r("1/2"), 1000); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewSequential(30, 2, r("0"), 1000); err == nil {
		t.Error("α=0 accepted")
	}
	if _, err := NewSequential(30, 2, r("1"), 1000); err == nil {
		t.Error("α=1 accepted")
	}
}

func TestSequentialBudgetSound(t *testing.T) {
	total := r("1/4")
	for k := 1; k <= 6; k++ {
		a, err := NewSequential(30, k, total, 10000)
		if err != nil {
			t.Fatal(err)
		}
		composed, err := a.ComposedAlpha(k)
		if err != nil {
			t.Fatal(err)
		}
		// The composed guarantee must be at least as strong as asked.
		if composed.Cmp(total) < 0 {
			t.Errorf("k=%d: composed %s weaker than requested %s", k, composed.RatString(), total.RatString())
		}
		// Per-query level weakens (grows) with k.
		if k > 1 {
			prev, err := NewSequential(30, k-1, total, 10000)
			if err != nil {
				t.Fatal(err)
			}
			if a.PerQueryAlpha().Cmp(prev.PerQueryAlpha()) < 0 {
				t.Errorf("k=%d: per-query α shrank", k)
			}
		}
	}
}

func TestSequentialAnswer(t *testing.T) {
	db := testDB(t)
	w := fluAndAdults()
	a, err := NewSequential(db.Size(), w.Size(), r("1/2"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	rng := sample.NewRand(1)
	answers, err := a.Answer(db, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("got %d answers", len(answers))
	}
	for _, ans := range answers {
		if ans.Released < 0 || ans.Released > db.Size() {
			t.Errorf("answer %q = %d out of range", ans.Query, ans.Released)
		}
		if ans.Alpha.Cmp(a.PerQueryAlpha()) != 0 {
			t.Errorf("answer %q released at %s, want %s", ans.Query, ans.Alpha.RatString(), a.PerQueryAlpha().RatString())
		}
	}
}

func TestAnswerValidation(t *testing.T) {
	db := testDB(t)
	a, err := NewSequential(db.Size(), 2, r("1/2"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	rng := sample.NewRand(1)
	if _, err := a.Answer(db, Workload{}, rng); err == nil {
		t.Error("empty workload accepted")
	}
	small := database.Synthetic(5, "X", 0.1, sample.NewRand(1))
	if _, err := a.Answer(small, fluAndAdults(), rng); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestParallelRequiresDisjoint(t *testing.T) {
	db := testDB(t)
	a, err := NewParallel(db.Size(), r("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	rng := sample.NewRand(2)
	// Overlapping workload (flu ⊂ adults typically): rejected.
	if _, err := a.Answer(db, fluAndAdults(), rng); err == nil {
		t.Error("overlapping workload accepted by parallel answerer")
	}
	// Histogram workload: accepted.
	hist, err := AgeHistogram([]int{18, 40, 65})
	if err != nil {
		t.Fatal(err)
	}
	if !hist.Disjoint(db) {
		t.Fatal("histogram workload should be disjoint")
	}
	answers, err := a.Answer(db, hist, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 4 {
		t.Fatalf("got %d answers, want 4 buckets", len(answers))
	}
	// Parallel composition: composed guarantee equals the full level.
	composed, err := a.ComposedAlpha(len(answers))
	if err != nil {
		t.Fatal(err)
	}
	if composed.Cmp(r("1/2")) != 0 {
		t.Errorf("parallel composed α = %s, want 1/2", composed.RatString())
	}
}

func TestComposedAlphaValidation(t *testing.T) {
	a, err := NewParallel(10, r("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ComposedAlpha(0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestAgeHistogram(t *testing.T) {
	w, err := AgeHistogram([]int{18, 65})
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 3 {
		t.Fatalf("buckets = %d", w.Size())
	}
	// Bucket counts partition the database.
	db := testDB(t)
	total := 0
	for _, q := range w.Queries {
		total += q.Eval(db)
	}
	if total != db.Size() {
		t.Errorf("bucket counts sum to %d, want %d", total, db.Size())
	}
	if _, err := AgeHistogram(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := AgeHistogram([]int{10, 10}); err == nil {
		t.Error("non-increasing bounds accepted")
	}
	if _, err := AgeHistogram([]int{0}); err == nil {
		t.Error("zero bound accepted")
	}
}

// The accuracy/privacy trade-off across composition regimes: for the
// same overall guarantee, parallel composition (when applicable) has
// strictly less per-query noise than sequential splitting.
func TestParallelBeatsSequentialOnDisjoint(t *testing.T) {
	total := r("1/2")
	const k = 4
	seq, err := NewSequential(50, k, total, 10000)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallel(50, total)
	if err != nil {
		t.Fatal(err)
	}
	seqErr := rational.Float(seq.ExpectedAbsErrorPerQuery())
	parErr := rational.Float(par.ExpectedAbsErrorPerQuery())
	if parErr >= seqErr {
		t.Errorf("parallel E|err| %v should beat sequential %v", parErr, seqErr)
	}
	// Both meet the same overall guarantee.
	cs, err := seq.ComposedAlpha(k)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := par.ComposedAlpha(k)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Cmp(total) < 0 || cp.Cmp(total) < 0 {
		t.Error("a regime failed the overall guarantee")
	}
}

// Empirical error tracks the closed form.
func TestExpectedAbsErrorEmpirical(t *testing.T) {
	db := testDB(t)
	hist, err := AgeHistogram([]int{18})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewParallel(db.Size(), r("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	want := rational.Float(a.ExpectedAbsErrorPerQuery())
	rng := sample.NewRand(9)
	const trials = 30000
	sum := 0.0
	truths := make([]int, hist.Size())
	for i, q := range hist.Queries {
		truths[i] = q.Eval(db)
	}
	for trial := 0; trial < trials; trial++ {
		answers, err := a.Answer(db, hist, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, ans := range answers {
			sum += math.Abs(float64(ans.Released - truths[i]))
		}
	}
	got := sum / float64(trials*hist.Size())
	// The range restriction clips tails, so empirical error is at most
	// the unrestricted closed form and close to it for interior truths.
	if got > want+0.02 {
		t.Errorf("empirical E|err| %v exceeds closed form %v", got, want)
	}
	if got < want*0.5 {
		t.Errorf("empirical E|err| %v implausibly small vs %v", got, want)
	}
}
