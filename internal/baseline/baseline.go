// Package baseline builds the alternative mechanisms Theorem 1's
// universal-optimality claim is measured against. The geometric
// mechanism G_{n,α} (mechanism.Geometric) is the paper's hero; this
// package adds the named neighbors from the related literature as
// exact-rational constructions on {0..n}:
//
//   - Staircase: the Geng–Viswanath staircase mechanism, discretized
//     as banded geometric noise — the noise PMF is constant on bands
//     of `width` consecutive magnitudes and decays by a factor α per
//     band, Pr[D=d] ∝ α^⌈|d|/width⌉ — with the tails clamped onto the
//     endpoints 0 and n exactly as G_{n,α} clamps its tails. Width 1
//     reproduces G_{n,α} identically; wider steps trade fidelity near
//     the truth for heavier shoulders. Staircase is exactly α-DP for
//     every width.
//
//   - TruncatedLaplace: the discrete Laplace (two-sided geometric)
//     distribution truncated to {0..n} and renormalized per row —
//     Pr[z|i] = α^|z−i| / Σ_w α^|w−i|. This is the classic "truncate
//     and renormalize" construction practitioners reach for first,
//     and it is deliberately NOT exactly α-DP: renormalization gives
//     interior rows smaller mass sums than boundary rows, so adjacent
//     likelihood ratios overshoot α. Compare entries expose its true
//     privacy level via mechanism.BestAlpha so the gap tables can
//     show what the shortcut actually costs.
//
// All constructions are exact big.Rat arithmetic end-to-end and
// re-validated through mechanism.New.
package baseline

import (
	"fmt"
	"math/big"
	"sort"
	"strconv"
	"strings"

	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
)

// Kind names a baseline family on the wire.
type Kind string

const (
	// Geometric is G_{n,α} itself, included so a compare request can
	// score the paper's mechanism beside the alternatives.
	Geometric Kind = "geometric"
	// KindStaircase is the banded-geometric staircase family; its
	// Width parameter is the band width (default 2 — width 1 is
	// exactly G_{n,α} and therefore redundant as a default).
	KindStaircase Kind = "staircase"
	// KindLaplace is the truncated-and-renormalized discrete Laplace.
	KindLaplace Kind = "laplace"
)

// Spec identifies one baseline mechanism. Width is only meaningful
// for the staircase family (0 means the family default).
type Spec struct {
	Kind  Kind
	Width int
}

// Kinds returns the canonical baseline kind names, the list quoted by
// invalid_argument error envelopes.
func Kinds() []string {
	return []string{string(Geometric), string(KindStaircase), string(KindLaplace)}
}

// ParseSpec parses a wire-facing baseline name: a kind, optionally
// with a width parameter after a colon ("staircase:3").
func ParseSpec(s string) (Spec, error) {
	name, param := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, param = s[:i], s[i+1:]
	}
	switch Kind(name) {
	case Geometric, KindLaplace:
		if param != "" {
			return Spec{}, fmt.Errorf("baseline: %q takes no parameter (got %q)", name, param)
		}
		return Spec{Kind: Kind(name)}, nil
	case KindStaircase:
		if param == "" {
			return Spec{Kind: KindStaircase}, nil
		}
		w, err := strconv.Atoi(param)
		if err != nil || w < 1 {
			return Spec{}, fmt.Errorf("baseline: staircase width must be a positive integer, got %q", param)
		}
		return Spec{Kind: KindStaircase, Width: w}, nil
	}
	return Spec{}, fmt.Errorf("baseline: unknown baseline %q (want one of %v)", name, Kinds())
}

// String renders the spec in its canonical wire form (the form
// ParseSpec round-trips): width is printed only when it differs from
// the family default.
func (s Spec) String() string {
	if s.Kind == KindStaircase && s.Width != 0 && s.Width != defaultStaircaseWidth {
		return string(s.Kind) + ":" + strconv.Itoa(s.Width)
	}
	return string(s.Kind)
}

const defaultStaircaseWidth = 2

// normalize resolves defaults so equal mechanisms have equal specs.
func (s Spec) normalize() (Spec, error) {
	switch s.Kind {
	case Geometric, KindLaplace:
		if s.Width != 0 {
			return Spec{}, fmt.Errorf("baseline: %q takes no width (got %d)", s.Kind, s.Width)
		}
		return s, nil
	case KindStaircase:
		if s.Width == 0 {
			s.Width = defaultStaircaseWidth
		}
		if s.Width < 1 {
			return Spec{}, fmt.Errorf("baseline: staircase width must be ≥ 1, got %d", s.Width)
		}
		return s, nil
	}
	return Spec{}, fmt.Errorf("baseline: unknown baseline %q (want one of %v)", s.Kind, Kinds())
}

// Build constructs the baseline mechanism on {0..n} at privacy level
// alpha.
func (s Spec) Build(n int, alpha *big.Rat) (*mechanism.Mechanism, error) {
	ns, err := s.normalize()
	if err != nil {
		return nil, err
	}
	switch ns.Kind {
	case Geometric:
		return mechanism.Geometric(n, alpha)
	case KindStaircase:
		return Staircase(n, alpha, ns.Width)
	case KindLaplace:
		return TruncatedLaplace(n, alpha)
	}
	return nil, fmt.Errorf("baseline: unknown baseline %q", ns.Kind)
}

// DefaultSet is the baseline set a compare request gets when it names
// none: the paper's mechanism plus both neighbors.
func DefaultSet() []Spec {
	return []Spec{{Kind: Geometric}, {Kind: KindStaircase}, {Kind: KindLaplace}}
}

// Canonicalize normalizes, deduplicates, and sorts a baseline set so
// behaviorally equal sets share one cache identity (and one response
// order). An empty set means DefaultSet.
func Canonicalize(specs []Spec) ([]Spec, error) {
	if len(specs) == 0 {
		specs = DefaultSet()
	}
	seen := make(map[Spec]bool, len(specs))
	out := make([]Spec, 0, len(specs))
	for _, s := range specs {
		ns, err := s.normalize()
		if err != nil {
			return nil, err
		}
		if seen[ns] {
			continue
		}
		seen[ns] = true
		out = append(out, ns)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Width < out[j].Width
	})
	return out, nil
}

// Staircase builds the width-w banded-geometric staircase mechanism
// on {0..n}: output z = clamp(i + D, 0, n) where the noise PMF is
//
//	Pr[D = d] = c · α^⌈|d|/w⌉,   c = (1−α) / (1−α+2wα),
//
// constant on each band of w consecutive magnitudes. Clamping
// collapses the infinite tails onto 0 and n via the exact tail sums
//
//	T(k) = Σ_{m≥k} α^⌈m/w⌉
//	     = (j₀w − k + 1)·α^{j₀} + w·α^{j₀+1}/(1−α),  j₀ = ⌈k/w⌉, k ≥ 1,
//
// (the first term counts the remainder of band j₀, the second sums
// the full bands after it). Width 1 makes every band a single
// magnitude and the construction collapses to G_{n,α} exactly; the
// per-band decay factor α makes the mechanism exactly α-DP for every
// width. Requires α ∈ (0,1) like mechanism.Geometric.
func Staircase(n int, alpha *big.Rat, w int) (*mechanism.Mechanism, error) {
	if n < 0 {
		return nil, fmt.Errorf("baseline: n must be ≥ 0, got %d", n)
	}
	if w < 1 {
		return nil, fmt.Errorf("baseline: staircase width must be ≥ 1, got %d", w)
	}
	if alpha.Sign() <= 0 || alpha.Cmp(rational.One()) >= 0 {
		return nil, fmt.Errorf("baseline: α must be in (0,1), got %s", alpha.RatString())
	}
	one := rational.One()
	oneMinus := rational.Sub(one, alpha)
	// c = (1−α) / (1−α + 2wα).
	wRat := rational.Int(int64(w))
	denom := rational.Add(oneMinus, rational.Mul(rational.Int(2), rational.Mul(wRat, alpha)))
	c := rational.Div(oneMinus, denom)
	// Band powers α^⌈k/w⌉ for every displacement magnitude we touch,
	// plus the closed-form tail sums for the clamped endpoints.
	pow := func(j int) *big.Rat { return rational.Pow(alpha, j) }
	band := func(k int) *big.Rat {
		if k == 0 {
			return one
		}
		return pow((k + w - 1) / w)
	}
	// tail(k) = Σ_{m≥k} α^⌈m/w⌉ (k ≥ 1), closed form above.
	tail := func(k int) *big.Rat {
		j0 := (k + w - 1) / w
		first := rational.Mul(rational.Int(int64(j0*w-k+1)), pow(j0))
		rest := rational.Div(rational.Mul(wRat, pow(j0+1)), oneMinus)
		return rational.Add(first, rest)
	}
	rows := make([][]*big.Rat, n+1)
	for i := 0; i <= n; i++ {
		row := make([]*big.Rat, n+1)
		for z := 0; z <= n; z++ {
			var mass *big.Rat
			switch {
			case z == 0 && i > 0:
				// All displacements d ≤ −i collapse here.
				mass = tail(i)
			case z == n && i < n:
				mass = tail(n - i)
			default:
				d := z - i
				if d < 0 {
					d = -d
				}
				mass = rational.Clone(band(d))
				// Reaching here with z == 0 means i == 0 (and with
				// z == n means i == n): the endpoint absorbs its own
				// outward tail. On a single-point domain both apply.
				if z == 0 {
					mass = rational.Add(mass, tail(1))
				}
				if z == n {
					mass = rational.Add(mass, tail(1))
				}
			}
			row[z] = rational.Mul(c, mass)
		}
		rows[i] = row
	}
	return mechanismFromRows(rows)
}

// TruncatedLaplace builds the truncated-and-renormalized discrete
// Laplace mechanism on {0..n}:
//
//	Pr[z | i] = α^|z−i| / N_i,   N_i = Σ_{w=0..n} α^|w−i|.
//
// Because N_i is larger for interior i than for boundary i, adjacent
// likelihood ratios exceed α and the mechanism is NOT exactly α-DP —
// that is the point of carrying it as a baseline. Use
// mechanism.BestAlpha to read off the privacy level it actually
// achieves. Requires α ∈ (0,1).
func TruncatedLaplace(n int, alpha *big.Rat) (*mechanism.Mechanism, error) {
	if n < 0 {
		return nil, fmt.Errorf("baseline: n must be ≥ 0, got %d", n)
	}
	if alpha.Sign() <= 0 || alpha.Cmp(rational.One()) >= 0 {
		return nil, fmt.Errorf("baseline: α must be in (0,1), got %s", alpha.RatString())
	}
	// α^k for k = 0..n, computed once.
	pows := make([]*big.Rat, n+1)
	pows[0] = rational.One()
	for k := 1; k <= n; k++ {
		pows[k] = rational.Mul(pows[k-1], alpha)
	}
	rows := make([][]*big.Rat, n+1)
	for i := 0; i <= n; i++ {
		norm := rational.Zero()
		for z := 0; z <= n; z++ {
			d := z - i
			if d < 0 {
				d = -d
			}
			norm.Add(norm, pows[d])
		}
		row := make([]*big.Rat, n+1)
		for z := 0; z <= n; z++ {
			d := z - i
			if d < 0 {
				d = -d
			}
			row[z] = rational.Div(pows[d], norm)
		}
		rows[i] = row
	}
	return mechanismFromRows(rows)
}

// mechanismFromRows funnels a probability table through mechanism.New
// so every baseline is re-validated as row-stochastic.
func mechanismFromRows(rows [][]*big.Rat) (*mechanism.Mechanism, error) {
	n := len(rows) - 1
	m := matrix.New(n+1, n+1)
	for i, row := range rows {
		for z, v := range row {
			m.Set(i, z, v)
		}
	}
	mech, err := mechanism.New(m)
	if err != nil {
		return nil, fmt.Errorf("baseline: construction not row-stochastic: %w", err)
	}
	return mech, nil
}
