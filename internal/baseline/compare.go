// The compare artifact: the value class cached by the engine and
// served by POST /v1/compare. It lives here rather than in
// internal/engine so the disk-store codec (internal/store) can
// encode/decode it without importing the engine.

package baseline

import (
	"fmt"
	"math/big"

	"minimaxdp/internal/rational"
)

// Entry is one baseline's scorecard under a fixed consumer model:
// the mechanism's raw loss, the loss after the consumer's optimal
// post-processing, and the gap between that and the tailored optimum.
// All values are exact rationals.
type Entry struct {
	// Spec is the canonical wire name of the baseline ("geometric",
	// "staircase:3", "laplace").
	Spec string
	// Loss is the consumer's loss for the mechanism used as-is.
	Loss *big.Rat
	// InteractionLoss is the loss after the consumer's optimal
	// post-processing of the mechanism (Section 2.4.3 LP for minimax,
	// deterministic remap for Bayesian).
	InteractionLoss *big.Rat
	// Gap = InteractionLoss − TailoredLoss. Theorem 1 part 2 says
	// this is exactly 0 for the geometric baseline under every
	// minimax consumer; for mechanisms that are not α-DP (laplace)
	// it can be negative, because they buy loss with privacy.
	Gap *big.Rat
	// BestAlpha is the largest α' for which the baseline is α'-DP —
	// the privacy level it actually achieves. Equal to the request α
	// for geometric and staircase; strictly smaller (a weaker
	// guarantee) for the truncated Laplace.
	BestAlpha *big.Rat
}

// Comparison is the full compare artifact for one (n, α, consumer
// model, baseline set): the tailored-optimal loss plus one Entry per
// baseline in canonical order.
type Comparison struct {
	N     int
	Alpha *big.Rat
	// Model is the consumer model family ("minimax", "bayesian").
	Model string
	// TailoredLoss is the consumer's loss under the α-DP mechanism
	// tailored to it (the optimality-gap yardstick).
	TailoredLoss *big.Rat
	Entries      []Entry
}

// Validate re-checks the artifact's internal arithmetic identity
// (Gap = InteractionLoss − TailoredLoss for every entry); decode
// paths run it so corrupted persisted artifacts cannot re-enter the
// cache.
func (c *Comparison) Validate() error {
	if c.TailoredLoss == nil || c.Alpha == nil {
		return fmt.Errorf("baseline: comparison missing alpha or tailored loss")
	}
	for i, e := range c.Entries {
		if e.Loss == nil || e.InteractionLoss == nil || e.Gap == nil || e.BestAlpha == nil {
			return fmt.Errorf("baseline: comparison entry %d (%s) has missing fields", i, e.Spec)
		}
		want := rational.Sub(e.InteractionLoss, c.TailoredLoss)
		if e.Gap.Cmp(want) != 0 {
			return fmt.Errorf("baseline: comparison entry %d (%s) gap %s ≠ interaction − tailored = %s",
				i, e.Spec, e.Gap.RatString(), want.RatString())
		}
	}
	return nil
}
