package baseline

import (
	"math/big"
	"testing"

	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
)

func ratEq(t *testing.T, got, want *big.Rat, msg string) {
	t.Helper()
	if got.Cmp(want) != 0 {
		t.Fatalf("%s: got %s, want %s", msg, got.RatString(), want.RatString())
	}
}

// Width-1 staircase is G_{n,α}, entry for entry, as exact rationals.
func TestStaircaseWidthOneIsGeometric(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, alpha := range []*big.Rat{rational.New(1, 4), rational.New(1, 2), rational.New(2, 3)} {
			st, err := Staircase(n, alpha, 1)
			if err != nil {
				t.Fatalf("Staircase(%d, %s, 1): %v", n, alpha.RatString(), err)
			}
			geo, err := mechanism.Geometric(n, alpha)
			if err != nil {
				t.Fatalf("Geometric(%d, %s): %v", n, alpha.RatString(), err)
			}
			for i := 0; i <= n; i++ {
				for z := 0; z <= n; z++ {
					if st.Prob(i, z).Cmp(geo.Prob(i, z)) != 0 {
						t.Fatalf("n=%d α=%s: staircase[%d][%d] = %s, geometric = %s",
							n, alpha.RatString(), i, z,
							st.Prob(i, z).RatString(), geo.Prob(i, z).RatString())
					}
				}
			}
		}
	}
}

// The staircase is exactly α-DP at every width: adjacent likelihood
// ratios never exceed 1/α, and BestAlpha recovers α exactly.
func TestStaircaseExactlyAlphaDP(t *testing.T) {
	alpha := rational.New(1, 3)
	for _, w := range []int{1, 2, 3, 5} {
		for _, n := range []int{1, 2, 4, 7} {
			st, err := Staircase(n, alpha, w)
			if err != nil {
				t.Fatalf("Staircase(%d, %s, %d): %v", n, alpha.RatString(), w, err)
			}
			if err := st.CheckDP(alpha); err != nil {
				t.Fatalf("width %d, n %d: not α-DP: %v", w, n, err)
			}
			// For n ≥ 2 the band step at |d| = 0→1 is visible at an
			// unclamped output, so the DP level is exactly α; at
			// n = 1 wide bands can leave only clamped tails in view
			// and the mechanism comes out strictly more private.
			if n >= 2 {
				ratEq(t, st.BestAlpha(), alpha, "staircase BestAlpha")
			} else if st.BestAlpha().Cmp(alpha) < 0 {
				t.Fatalf("width %d, n %d: BestAlpha %s below α", w, n, st.BestAlpha().RatString())
			}
		}
	}
}

// Wider bands spread mass: at width w the noise PMF is flat across
// each band, so P[D=0] strictly drops as w grows.
func TestStaircaseWidthSpreadsMass(t *testing.T) {
	alpha := rational.New(1, 2)
	n := 9
	i := n / 2 // interior row, away from the clamped tails
	prev := big.NewRat(2, 1)
	for _, w := range []int{1, 2, 3, 4} {
		st, err := Staircase(n, alpha, w)
		if err != nil {
			t.Fatalf("Staircase: %v", err)
		}
		p0 := st.Prob(i, i)
		if p0.Cmp(prev) >= 0 {
			t.Fatalf("width %d: P[z=i] = %s did not decrease from %s", w, p0.RatString(), prev.RatString())
		}
		prev = p0
	}
}

func TestStaircaseSinglePointDomain(t *testing.T) {
	st, err := Staircase(0, rational.New(1, 2), 3)
	if err != nil {
		t.Fatalf("Staircase(0): %v", err)
	}
	ratEq(t, st.Prob(0, 0), rational.One(), "single-point staircase mass")
}

// The truncated-and-renormalized Laplace is row-stochastic but NOT
// α-DP: its true privacy level BestAlpha is strictly worse (smaller —
// larger α is the stronger guarantee in this repo's convention) than
// the α it was built from.
func TestTruncatedLaplaceNotAlphaDP(t *testing.T) {
	alpha := rational.New(1, 4)
	tl, err := TruncatedLaplace(5, alpha)
	if err != nil {
		t.Fatalf("TruncatedLaplace: %v", err)
	}
	if err := tl.CheckDP(alpha); err == nil {
		t.Fatalf("truncated Laplace unexpectedly satisfies exact α-DP at α=%s", alpha.RatString())
	}
	best := tl.BestAlpha()
	if best.Cmp(alpha) >= 0 {
		t.Fatalf("BestAlpha %s should be strictly below construction α %s", best.RatString(), alpha.RatString())
	}
	if err := tl.CheckDP(best); err != nil {
		t.Fatalf("truncated Laplace not DP at its own BestAlpha %s: %v", best.RatString(), err)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"geometric", Spec{Kind: Geometric}},
		{"laplace", Spec{Kind: KindLaplace}},
		{"staircase", Spec{Kind: KindStaircase}},
		{"staircase:3", Spec{Kind: KindStaircase, Width: 3}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		back, err := ParseSpec(got.String())
		if err != nil {
			t.Fatalf("ParseSpec(String(%q)): %v", c.in, err)
		}
		n1, _ := got.normalize()
		n2, _ := back.normalize()
		if n1 != n2 {
			t.Fatalf("spec %q does not round-trip: %+v vs %+v", c.in, n1, n2)
		}
	}
	for _, bad := range []string{"gauss", "staircase:0", "staircase:-1", "staircase:x", "geometric:2", "laplace:1", ""} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestCanonicalize(t *testing.T) {
	got, err := Canonicalize([]Spec{
		{Kind: KindLaplace},
		{Kind: KindStaircase, Width: 2},
		{Kind: KindStaircase}, // default width 2 — duplicate of the above
		{Kind: Geometric},
		{Kind: Geometric}, // duplicate
	})
	if err != nil {
		t.Fatalf("Canonicalize: %v", err)
	}
	want := []Spec{{Kind: Geometric}, {Kind: KindLaplace}, {Kind: KindStaircase, Width: 2}}
	if len(got) != len(want) {
		t.Fatalf("Canonicalize = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Canonicalize[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Empty set means the default set.
	def, err := Canonicalize(nil)
	if err != nil {
		t.Fatalf("Canonicalize(nil): %v", err)
	}
	if len(def) != len(DefaultSet()) {
		t.Fatalf("Canonicalize(nil) = %+v", def)
	}
	// Invalid widths refuse.
	if _, err := Canonicalize([]Spec{{Kind: Geometric, Width: 2}}); err == nil {
		t.Fatal("geometric with width unexpectedly canonicalized")
	}
}

func TestComparisonValidate(t *testing.T) {
	c := &Comparison{
		N:            2,
		Alpha:        rational.New(1, 2),
		Model:        "minimax",
		TailoredLoss: rational.New(1, 3),
		Entries: []Entry{{
			Spec:            "geometric",
			Loss:            rational.New(1, 2),
			InteractionLoss: rational.New(1, 3),
			Gap:             rational.Zero(),
			BestAlpha:       rational.New(1, 2),
		}},
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	c.Entries[0].Gap = rational.New(1, 100)
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted inconsistent gap")
	}
}
