// Package database is a minimal in-memory row store implementing the
// paper's data model (Section 2.1): a database is a collection of rows
// drawn from an arbitrary domain; a count query is a predicate over
// rows; two databases are neighbours when they differ in exactly one
// row. The package also implements Appendix A's reduction: averaging
// any non-oblivious mechanism over the equivalence classes of
// databases with equal query results yields an oblivious mechanism
// that is still differentially private and no worse for any minimax
// consumer.
package database

import (
	"errors"
	"fmt"
	"math/rand"
)

// Row is one individual's record. The paper's domain D is arbitrary;
// we model the fields the running example needs. Extra attributes can
// be attached via Attrs.
type Row struct {
	Name   string
	Age    int
	City   string
	HasFlu bool
	Attrs  map[string]string
}

// Database is an ordered collection of rows (order is irrelevant to
// queries but fixes neighbour semantics: a neighbour changes one
// position).
type Database struct {
	rows []Row
}

// New returns a database with copies of the given rows.
func New(rows []Row) *Database {
	d := &Database{rows: make([]Row, len(rows))}
	copy(d.rows, rows)
	return d
}

// Size returns the number of rows n.
func (d *Database) Size() int { return len(d.rows) }

// Row returns a copy of the i-th row.
func (d *Database) Row(i int) Row { return d.rows[i] }

// WithRow returns a copy of the database with row i replaced — a
// neighbouring database in the differential-privacy sense.
func (d *Database) WithRow(i int, r Row) (*Database, error) {
	if i < 0 || i >= len(d.rows) {
		return nil, fmt.Errorf("database: row %d out of range [0,%d)", i, len(d.rows))
	}
	out := New(d.rows)
	out.rows[i] = r
	return out, nil
}

// Predicate decides whether a row is counted by a count query.
type Predicate func(Row) bool

// CountQuery is the paper's query class: the number of rows satisfying
// a predicate, an integer in {0..n}.
type CountQuery struct {
	Name string
	Pred Predicate
}

// Eval returns the query result f(d) ∈ {0..n}.
func (q CountQuery) Eval(d *Database) int {
	c := 0
	for _, r := range d.rows {
		if q.Pred(r) {
			c++
		}
	}
	return c
}

// FluQuery is the paper's running example Q: adults from the given
// city who contracted the flu.
func FluQuery(city string) CountQuery {
	return CountQuery{
		Name: fmt.Sprintf("adults in %s with flu", city),
		Pred: func(r Row) bool { return r.Age >= 18 && r.City == city && r.HasFlu },
	}
}

// Neighbors reports whether two databases differ in at most one row.
func Neighbors(a, b *Database) bool {
	if a.Size() != b.Size() {
		return false
	}
	diff := 0
	for i := range a.rows {
		if !rowEqual(a.rows[i], b.rows[i]) {
			diff++
			if diff > 1 {
				return false
			}
		}
	}
	return true
}

func rowEqual(a, b Row) bool {
	if a.Name != b.Name || a.Age != b.Age || a.City != b.City || a.HasFlu != b.HasFlu {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for k, v := range a.Attrs {
		if b.Attrs[k] != v {
			return false
		}
	}
	return true
}

// Synthetic generates a reproducible synthetic survey population for
// the flu example: size rows in the given city (a fluRate fraction of
// adults has the flu). The paper's evaluation needs only the count and
// adjacency structure, which this generator reproduces exactly.
func Synthetic(size int, city string, fluRate float64, rng *rand.Rand) *Database {
	rows := make([]Row, size)
	for i := range rows {
		age := 1 + rng.Intn(90)
		rows[i] = Row{
			Name:   fmt.Sprintf("resident-%04d", i),
			Age:    age,
			City:   city,
			HasFlu: age >= 18 && rng.Float64() < fluRate,
		}
	}
	return New(rows)
}

// --- Appendix A: the oblivious reduction ----------------------------------

// NonOblivious is a mechanism that may depend on the database itself,
// not only on the query result: Probs[d] is the output distribution
// (length n+1, as float64 for generality of tests) for database index
// d in a fixed finite universe of databases.
type NonOblivious struct {
	// Universe is the fixed list of databases the mechanism is defined
	// on (the paper quantifies over all of Dⁿ; experiments use a
	// finite universe closed under the adjacency we audit).
	Universe []*Database
	Query    CountQuery
	Probs    [][]float64 // Probs[di][r]
}

// ErrShape is returned when Probs does not match the universe.
var ErrShape = errors.New("database: probability table shape mismatch")

// Validate checks the shape and stochasticity of the table.
func (m *NonOblivious) Validate(n int) error {
	if len(m.Probs) != len(m.Universe) {
		return ErrShape
	}
	for di, p := range m.Probs {
		if len(p) != n+1 {
			return ErrShape
		}
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				return fmt.Errorf("database: negative probability in row %d", di)
			}
			sum += v
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			return fmt.Errorf("database: row %d sums to %v", di, sum)
		}
	}
	return nil
}

// ObliviousReduction averages the mechanism over equivalence classes
// of equal query results (Appendix A): the returned table o[i][r] is
// the average of Probs[d][r] over databases d with query result i.
// Classes with no representative in the universe get a copy of the
// nearest populated class, which preserves row-stochasticity; the
// paper's argument needs only populated classes.
func (m *NonOblivious) ObliviousReduction(n int) ([][]float64, error) {
	if err := m.Validate(n); err != nil {
		return nil, err
	}
	sums := make([][]float64, n+1)
	counts := make([]int, n+1)
	for i := range sums {
		sums[i] = make([]float64, n+1)
	}
	for di, d := range m.Universe {
		i := m.Query.Eval(d)
		if i < 0 || i > n {
			return nil, fmt.Errorf("database: query result %d out of range", i)
		}
		for r := 0; r <= n; r++ {
			sums[i][r] += m.Probs[di][r]
		}
		counts[i]++
	}
	out := make([][]float64, n+1)
	lastPopulated := -1
	for i := 0; i <= n; i++ {
		out[i] = make([]float64, n+1)
		if counts[i] > 0 {
			for r := 0; r <= n; r++ {
				out[i][r] = sums[i][r] / float64(counts[i])
			}
			lastPopulated = i
			continue
		}
		if lastPopulated >= 0 {
			copy(out[i], out[lastPopulated])
		} else {
			// No populated class yet; fill later from the first one.
			out[i] = nil
		}
	}
	for i := 0; i <= n; i++ {
		if out[i] == nil {
			if lastPopulated < 0 {
				return nil, errors.New("database: empty universe")
			}
			out[i] = append([]float64(nil), out[lastPopulated]...)
		}
	}
	return out, nil
}

// WorstCaseLoss evaluates the minimax objective of Appendix A
// (Equation 5) for a non-oblivious mechanism: max over databases in
// the universe of the expected loss Σ_r Probs[d][r]·l(f(d), r).
func (m *NonOblivious) WorstCaseLoss(n int, lossFn func(i, r int) float64) (float64, error) {
	if err := m.Validate(n); err != nil {
		return 0, err
	}
	worst := 0.0
	for di, d := range m.Universe {
		i := m.Query.Eval(d)
		exp := 0.0
		for r := 0; r <= n; r++ {
			exp += m.Probs[di][r] * lossFn(i, r)
		}
		if exp > worst {
			worst = exp
		}
	}
	return worst, nil
}

// ObliviousWorstCaseLoss evaluates the same objective for an oblivious
// table over the query results realized in the universe.
func (m *NonOblivious) ObliviousWorstCaseLoss(n int, table [][]float64, lossFn func(i, r int) float64) (float64, error) {
	seen := make(map[int]bool)
	for _, d := range m.Universe {
		seen[m.Query.Eval(d)] = true
	}
	worst := 0.0
	for i := range seen {
		exp := 0.0
		for r := 0; r <= n; r++ {
			exp += table[i][r] * lossFn(i, r)
		}
		if exp > worst {
			worst = exp
		}
	}
	return worst, nil
}
