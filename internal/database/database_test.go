package database

import (
	"errors"
	"math"
	"testing"

	"minimaxdp/internal/sample"
)

func sampleRows() []Row {
	return []Row{
		{Name: "ada", Age: 35, City: "San Diego", HasFlu: true},
		{Name: "bob", Age: 17, City: "San Diego", HasFlu: true}, // minor: not counted
		{Name: "eve", Age: 52, City: "San Diego", HasFlu: false},
		{Name: "mia", Age: 41, City: "La Jolla", HasFlu: true}, // other city
		{Name: "sam", Age: 28, City: "San Diego", HasFlu: true},
	}
}

func TestFluQuery(t *testing.T) {
	d := New(sampleRows())
	q := FluQuery("San Diego")
	if got := q.Eval(d); got != 2 {
		t.Errorf("count = %d, want 2 (ada, sam)", got)
	}
	if q.Name == "" {
		t.Error("query name empty")
	}
}

func TestSizeAndRow(t *testing.T) {
	d := New(sampleRows())
	if d.Size() != 5 {
		t.Errorf("Size = %d", d.Size())
	}
	if d.Row(0).Name != "ada" {
		t.Error("Row(0) wrong")
	}
}

func TestNewCopies(t *testing.T) {
	rows := sampleRows()
	d := New(rows)
	rows[0].Name = "mallory"
	if d.Row(0).Name != "ada" {
		t.Error("New aliases caller's slice")
	}
}

func TestWithRowNeighbors(t *testing.T) {
	d := New(sampleRows())
	q := FluQuery("San Diego")
	// Cure ada: count drops by exactly 1.
	cured := d.Row(0)
	cured.HasFlu = false
	d2, err := d.WithRow(0, cured)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Eval(d2); got != 1 {
		t.Errorf("neighbour count = %d, want 1", got)
	}
	if !Neighbors(d, d2) {
		t.Error("WithRow result should be a neighbour")
	}
	if !Neighbors(d, d) {
		t.Error("database should neighbour itself")
	}
	// Original is untouched.
	if q.Eval(d) != 2 {
		t.Error("WithRow mutated the original")
	}
	if _, err := d.WithRow(99, cured); err == nil {
		t.Error("out-of-range row accepted")
	}
}

func TestNeighborsNegativeCases(t *testing.T) {
	d := New(sampleRows())
	other := New(sampleRows()[:4])
	if Neighbors(d, other) {
		t.Error("different sizes accepted")
	}
	twoChanged := New(sampleRows())
	r0 := twoChanged.Row(0)
	r0.Age = 99
	twoChanged, _ = twoChanged.WithRow(0, r0)
	r1 := twoChanged.Row(1)
	r1.Age = 99
	twoChanged, _ = twoChanged.WithRow(1, r1)
	if Neighbors(d, twoChanged) {
		t.Error("two-row difference accepted")
	}
}

func TestRowEqualAttrs(t *testing.T) {
	a := Row{Name: "x", Attrs: map[string]string{"k": "v"}}
	b := Row{Name: "x", Attrs: map[string]string{"k": "v"}}
	c := Row{Name: "x", Attrs: map[string]string{"k": "w"}}
	e := Row{Name: "x"}
	if !rowEqual(a, b) {
		t.Error("equal attrs rejected")
	}
	if rowEqual(a, c) {
		t.Error("different attr values accepted")
	}
	if rowEqual(a, e) {
		t.Error("missing attrs accepted")
	}
}

func TestSynthetic(t *testing.T) {
	rng := sample.NewRand(4)
	d := Synthetic(500, "San Diego", 0.2, rng)
	if d.Size() != 500 {
		t.Fatalf("Size = %d", d.Size())
	}
	q := FluQuery("San Diego")
	count := q.Eval(d)
	if count <= 0 || count >= 500 {
		t.Errorf("synthetic count = %d, want interior value", count)
	}
	// Reproducible for equal seeds.
	d2 := Synthetic(500, "San Diego", 0.2, sample.NewRand(4))
	if q.Eval(d2) != count {
		t.Error("synthetic generation not reproducible")
	}
	// Only adults can be flagged.
	for i := 0; i < d.Size(); i++ {
		r := d.Row(i)
		if r.HasFlu && r.Age < 18 {
			t.Error("minor flagged with flu")
		}
	}
}

// --- Appendix A machinery -------------------------------------------------

// tiny universe: databases of 2 binary rows; query counts ones.
func binaryUniverse() ([]*Database, CountQuery) {
	mk := func(a, b bool) *Database {
		return New([]Row{{Name: "r0", Age: 30, City: "X", HasFlu: a}, {Name: "r1", Age: 30, City: "X", HasFlu: b}})
	}
	q := CountQuery{Name: "ones", Pred: func(r Row) bool { return r.HasFlu }}
	return []*Database{mk(false, false), mk(false, true), mk(true, false), mk(true, true)}, q
}

func TestNonObliviousValidate(t *testing.T) {
	uni, q := binaryUniverse()
	m := &NonOblivious{Universe: uni, Query: q, Probs: [][]float64{
		{1, 0, 0}, {0, 1, 0}, {0, 1, 0}, {0, 0, 1},
	}}
	if err := m.Validate(2); err != nil {
		t.Fatal(err)
	}
	bad := &NonOblivious{Universe: uni, Query: q, Probs: m.Probs[:3]}
	if err := bad.Validate(2); !errors.Is(err, ErrShape) {
		t.Error("short table accepted")
	}
	wrongCols := &NonOblivious{Universe: uni, Query: q, Probs: [][]float64{
		{1, 0}, {0, 1}, {0, 1}, {1, 0},
	}}
	if err := wrongCols.Validate(2); !errors.Is(err, ErrShape) {
		t.Error("wrong column count accepted")
	}
	negative := &NonOblivious{Universe: uni, Query: q, Probs: [][]float64{
		{2, -1, 0}, {0, 1, 0}, {0, 1, 0}, {0, 0, 1},
	}}
	if err := negative.Validate(2); err == nil {
		t.Error("negative probability accepted")
	}
	unnormalized := &NonOblivious{Universe: uni, Query: q, Probs: [][]float64{
		{0.5, 0.4, 0}, {0, 1, 0}, {0, 1, 0}, {0, 0, 1},
	}}
	if err := unnormalized.Validate(2); err == nil {
		t.Error("non-normalized row accepted")
	}
}

// The reduction averages rows within equal-result classes and the
// result is row-stochastic.
func TestObliviousReduction(t *testing.T) {
	uni, q := binaryUniverse()
	// Result-1 class has two databases with different rows: the
	// mechanism is genuinely non-oblivious.
	m := &NonOblivious{Universe: uni, Query: q, Probs: [][]float64{
		{0.9, 0.1, 0},   // result 0
		{0.2, 0.8, 0},   // result 1 (variant A)
		{0.0, 0.6, 0.4}, // result 1 (variant B)
		{0, 0.1, 0.9},   // result 2
	}}
	o, err := m.ObliviousReduction(2)
	if err != nil {
		t.Fatal(err)
	}
	want1 := []float64{0.1, 0.7, 0.2}
	for r := 0; r <= 2; r++ {
		if math.Abs(o[1][r]-want1[r]) > 1e-12 {
			t.Errorf("o[1][%d] = %v, want %v", r, o[1][r], want1[r])
		}
	}
	for i := 0; i <= 2; i++ {
		sum := 0.0
		for r := 0; r <= 2; r++ {
			sum += o[i][r]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("reduced row %d sums to %v", i, sum)
		}
	}
}

// Appendix A's Lemma 6: the oblivious reduction never increases the
// minimax loss.
func TestObliviousReductionNeverWorse(t *testing.T) {
	uni, q := binaryUniverse()
	rng := sample.NewRand(8)
	absLoss := func(i, r int) float64 { return math.Abs(float64(i - r)) }
	for trial := 0; trial < 50; trial++ {
		probs := make([][]float64, len(uni))
		for d := range probs {
			row := make([]float64, 3)
			sum := 0.0
			for r := range row {
				row[r] = rng.Float64()
				sum += row[r]
			}
			for r := range row {
				row[r] /= sum
			}
			probs[d] = row
		}
		m := &NonOblivious{Universe: uni, Query: q, Probs: probs}
		before, err := m.WorstCaseLoss(2, absLoss)
		if err != nil {
			t.Fatal(err)
		}
		reduced, err := m.ObliviousReduction(2)
		if err != nil {
			t.Fatal(err)
		}
		after, err := m.ObliviousWorstCaseLoss(2, reduced, absLoss)
		if err != nil {
			t.Fatal(err)
		}
		if after > before+1e-9 {
			t.Fatalf("trial %d: reduction increased loss %v → %v", trial, before, after)
		}
	}
}

func TestObliviousReductionEmptyClasses(t *testing.T) {
	uni, q := binaryUniverse()
	// Use n = 4 so classes 3 and 4 are unpopulated.
	m := &NonOblivious{Universe: uni, Query: q, Probs: [][]float64{
		{1, 0, 0, 0, 0}, {0, 1, 0, 0, 0}, {0, 1, 0, 0, 0}, {0, 0, 1, 0, 0},
	}}
	o, err := m.ObliviousReduction(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 4; i++ {
		sum := 0.0
		for _, v := range o[i] {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestObliviousReductionErrors(t *testing.T) {
	uni, q := binaryUniverse()
	bad := &NonOblivious{Universe: uni, Query: q, Probs: [][]float64{{1}}}
	if _, err := bad.ObliviousReduction(2); err == nil {
		t.Error("invalid table accepted")
	}
	if _, err := bad.WorstCaseLoss(2, func(i, r int) float64 { return 0 }); err == nil {
		t.Error("invalid table accepted by WorstCaseLoss")
	}
	empty := &NonOblivious{Universe: nil, Query: q, Probs: nil}
	if _, err := empty.ObliviousReduction(2); err == nil {
		t.Error("empty universe accepted")
	}
}
