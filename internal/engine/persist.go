// Disk persistence bindings: the glue between the engine's in-memory
// artifact stores and the content-addressed disk store
// (internal/store, aliased diskstore here because the engine already
// has an internal `store` type). Each persisted class gets a binding
// holding its codec pair; the generic miss path in store.compute
// probes the binding after an in-memory miss and writes back after a
// successful computation, so warm-booting a process against a
// populated store directory serves every previously computed artifact
// — including the LP-backed tailored solutions — with zero solves.
//
// Persisted classes: mechanisms, transitions, plans, tailored,
// compares, samplers — the classes whose keys are pure value
// parameters (n, α ladder, loss name, side set, prior, baseline set).
// Inverses are cheap closed forms served as clones, and interactions
// are recoverable from the tailored optimum (Theorem 1), so neither
// earns disk space.
//
// Failure policy mirrors the disk store's: a binding that cannot
// load, decode, or save an artifact counts a StoreError, emits
// TraceStoreError, and lets the request proceed as if no store were
// configured. Decode goes through the same validating constructors as
// fresh computation (mechanism.FromStrings, release.PlanFromParts,
// sample.DyadicAliasFromTables), so a checksum-valid but semantically
// broken entry is rejected, not served.

package engine

import (
	"minimaxdp/internal/baseline"
	"minimaxdp/internal/consumer"
	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/release"
	diskstore "minimaxdp/internal/store"
)

// diskBinding couples one artifact class to its disk codec. enc must
// accept exactly the concrete type the class caches; dec receives the
// cache key so artifacts that embed engine state (samplers) can be
// recompiled under their identity.
type diskBinding struct {
	db  *diskstore.Store
	enc func(v any) ([]byte, error)
	dec func(key string, payload []byte) (any, error)
}

// diskLoad probes the class's disk binding for key. A verified,
// successfully decoded artifact counts a StoreHit; a decode failure
// counts a StoreError (the envelope was intact — quarantining is the
// store's job, rejecting impossible values is the codec's).
func (s *store) diskLoad(key string) (any, bool) {
	payload, ok := s.disk.db.Get(s.name, key)
	if !ok {
		return nil, false
	}
	v, err := s.disk.dec(key, payload)
	if err != nil {
		s.storeErrors.Add(1)
		s.emit(TraceStoreError, key)
		return nil, false
	}
	s.storeHits.Add(1)
	s.emit(TraceStoreHit, key)
	return v, true
}

// diskSave writes a freshly computed artifact back to the disk store.
// Failures are counted and traced, never surfaced: the computation
// already succeeded and the caller gets its artifact regardless.
func (s *store) diskSave(key string, v any) {
	payload, err := s.disk.enc(v)
	if err == nil {
		err = s.disk.db.Put(s.name, key, payload)
	}
	if err != nil {
		s.storeErrors.Add(1)
		s.emit(TraceStoreError, key)
		return
	}
	s.storeWrites.Add(1)
	s.emit(TraceStoreWrite, key)
}

// bindDisk attaches the disk store to the engine's persisted classes.
// Called once from New; db is non-nil.
func (e *Engine) bindDisk(db *diskstore.Store) {
	e.mechanisms.disk = &diskBinding{
		db: db,
		enc: func(v any) ([]byte, error) {
			return diskstore.EncodeMechanism(v.(*mechanism.Mechanism)), nil
		},
		dec: func(_ string, payload []byte) (any, error) {
			return diskstore.DecodeMechanism(payload)
		},
	}
	e.transitions.disk = &diskBinding{
		db: db,
		enc: func(v any) ([]byte, error) {
			return diskstore.EncodeMatrix(v.(*matrix.Matrix)), nil
		},
		dec: func(_ string, payload []byte) (any, error) {
			return diskstore.DecodeMatrix(payload)
		},
	}
	e.plans.disk = &diskBinding{
		db: db,
		enc: func(v any) ([]byte, error) {
			return diskstore.EncodePlan(v.(*release.Plan))
		},
		dec: func(_ string, payload []byte) (any, error) {
			return diskstore.DecodePlan(payload)
		},
	}
	e.tailored.disk = &diskBinding{
		db: db,
		enc: func(v any) ([]byte, error) {
			return diskstore.EncodeTailored(v.(*consumer.Tailored)), nil
		},
		dec: func(_ string, payload []byte) (any, error) {
			return diskstore.DecodeTailored(payload)
		},
	}
	e.compares.disk = &diskBinding{
		db: db,
		enc: func(v any) ([]byte, error) {
			return diskstore.EncodeCompare(v.(*baseline.Comparison)), nil
		},
		dec: func(_ string, payload []byte) (any, error) {
			return diskstore.DecodeCompare(payload)
		},
	}
	e.samplers.disk = &diskBinding{
		db: db,
		enc: func(v any) ([]byte, error) {
			sp := v.(*Sampler)
			return diskstore.EncodeAliasTables(sp.n, sp.aliasTables())
		},
		dec: func(key string, payload []byte) (any, error) {
			n, rows, err := diskstore.DecodeAliasTables(payload)
			if err != nil {
				return nil, err
			}
			return newSamplerFromTables(e, key, n, rows)
		},
	}
}
