// The compare artifact class: the engine-cached optimality-gap
// scorecard behind POST /v1/compare and the experiments gap sweep.
// One compare artifact fixes (n, α, consumer model, baseline set) and
// answers, all in exact rationals: what does each baseline mechanism
// cost this consumer as deployed, what does it cost after the
// consumer's optimal post-processing, and how far is that from the
// α-DP mechanism tailored to this exact consumer? Theorem 1 part 2 is
// the headline row: for every minimax consumer the geometric entry's
// Gap is exactly zero.
//
// The class composes the existing artifact classes rather than
// re-solving: the tailored optimum and the per-baseline interactions
// are served through the tailored/interactions stores (so a compare
// shares cache and disk entries with the /v1/tailored and
// /v1/interaction routes, and its LP solves are bounded by the same
// in-flight-solve semaphore), and the baseline mechanisms live in the
// mechanisms store. Only the final assembled scorecard is cached — and
// persisted — under the compare class itself.

package engine

import (
	"context"
	"fmt"
	"math/big"
	"strings"

	"minimaxdp/internal/baseline"
	"minimaxdp/internal/consumer"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
)

// CompareSpec names one compare artifact: the domain bound, the
// privacy level, the consumer model (minimax or Bayesian — anything
// implementing consumer.Model), and the baseline set to score. An
// empty baseline set means baseline.DefaultSet (geometric, staircase,
// laplace).
type CompareSpec struct {
	N         int
	Alpha     *big.Rat
	Model     consumer.Model
	Baselines []baseline.Spec
}

// compareKey keys the compare class: level parameters, the model's
// canonical identity, and the canonicalized baseline set.
func compareKey(n int, alpha *big.Rat, mk string, specs []baseline.Spec) string {
	parts := make([]string, len(specs))
	for i, s := range specs {
		parts[i] = s.String()
	}
	return fmt.Sprintf("n=%d|a=%s|%s|vs=%s", n, ratKey(alpha), mk, strings.Join(parts, ","))
}

// Compare computes (once per key) the optimality-gap scorecard for
// spec. It is CompareCtx(context.Background(), ...).
func (e *Engine) Compare(spec CompareSpec) (*baseline.Comparison, error) {
	return e.CompareCtx(context.Background(), spec)
}

// CompareCtx is Compare under a context. The artifact composes one
// tailored solve plus one interaction solve per baseline, each served
// through its own artifact class (cache, disk store, and solve
// semaphore included), so a compare against a warm engine costs no LP
// work at all and a saturated engine sheds the nested solves with
// ErrSaturated exactly like the individual routes. The returned
// Comparison is shared between callers and must be treated as
// read-only.
func (e *Engine) CompareCtx(ctx context.Context, spec CompareSpec) (*baseline.Comparison, error) {
	if err := checkRat("alpha", spec.Alpha); err != nil {
		return nil, err
	}
	if spec.Model == nil {
		return nil, fmt.Errorf("engine: consumer model required")
	}
	mk, err := spec.Model.Key(spec.N)
	if err != nil {
		return nil, err
	}
	specs, err := baseline.Canonicalize(spec.Baselines)
	if err != nil {
		return nil, err
	}
	key := compareKey(spec.N, spec.Alpha, mk, specs)
	if c, ok, err := getCached[*baseline.Comparison](ctx, e.compares, key); ok || err != nil {
		return c, err
	}
	model := spec.Model
	n, alpha := spec.N, spec.Alpha
	return getTyped(ctx, e.compares, key, func(solveCtx context.Context) (*baseline.Comparison, error) {
		return e.buildComparison(solveCtx, model, mk, n, alpha, specs)
	})
}

// buildComparison assembles one compare artifact from the nested
// artifact classes. Loss values copied out of shared cached artifacts
// are cloned: the Comparison is itself cached and later encoded, and
// must not alias rationals owned by other cache entries.
func (e *Engine) buildComparison(ctx context.Context, m consumer.Model, mk string, n int, alpha *big.Rat, specs []baseline.Spec) (*baseline.Comparison, error) {
	tailored, err := e.modelTailoredCtx(ctx, m, mk, n, alpha)
	if err != nil {
		return nil, err
	}
	out := &baseline.Comparison{
		N:            n,
		Alpha:        rational.Clone(alpha),
		Model:        m.ModelName(),
		TailoredLoss: rational.Clone(tailored.Loss),
		Entries:      make([]baseline.Entry, 0, len(specs)),
	}
	for _, bs := range specs {
		mech, err := e.baselineMechanismCtx(ctx, bs, n, alpha)
		if err != nil {
			return nil, err
		}
		rawLoss, err := m.EvalLoss(mech)
		if err != nil {
			return nil, err
		}
		in, err := e.modelInteractionCtx(ctx, m, mk, bs, n, alpha)
		if err != nil {
			return nil, err
		}
		out.Entries = append(out.Entries, baseline.Entry{
			Spec:            bs.String(),
			Loss:            rawLoss,
			InteractionLoss: rational.Clone(in.Loss),
			Gap:             rational.Sub(in.Loss, tailored.Loss),
			BestAlpha:       mech.BestAlpha(),
		})
	}
	return out, nil
}

// modelTailoredCtx serves the tailored optimum for any consumer model
// through the tailored class. mk is the model's Key(n), already
// validated by the caller; for minimax consumers the resulting cache
// key is identical to TailoredCtx's, so the two routes share entries.
func (e *Engine) modelTailoredCtx(ctx context.Context, m consumer.Model, mk string, n int, alpha *big.Rat) (*consumer.Tailored, error) {
	if err := e.checkLPDomain(n); err != nil {
		return nil, err
	}
	key := lpKey(n, alpha, mk)
	if t, ok, err := getCached[*consumer.Tailored](ctx, e.tailored, key); ok || err != nil {
		return t, err
	}
	return getTyped(ctx, e.tailored, key, func(solveCtx context.Context) (*consumer.Tailored, error) {
		opts, stats := e.lpOpts()
		t, err := m.OptimalMechanismCtx(solveCtx, n, alpha, opts)
		e.recordLP(e.tailored, key, stats)
		return t, err
	})
}

// modelInteractionCtx serves the model's optimal interaction with the
// deployed baseline bs through the interactions class. The geometric
// baseline uses the bare lpKey — the same key InteractionCtx uses —
// so compare requests and /v1/interaction requests coalesce onto one
// solve; other baselines append their spec.
func (e *Engine) modelInteractionCtx(ctx context.Context, m consumer.Model, mk string, bs baseline.Spec, n int, alpha *big.Rat) (*consumer.Interaction, error) {
	if err := e.checkLPDomain(n); err != nil {
		return nil, err
	}
	key := lpKey(n, alpha, mk)
	if bs.Kind != baseline.Geometric {
		key += "|vs=" + bs.String()
	}
	if in, ok, err := getCached[*consumer.Interaction](ctx, e.interactions, key); ok || err != nil {
		return in, err
	}
	return getTyped(ctx, e.interactions, key, func(solveCtx context.Context) (*consumer.Interaction, error) {
		deployed, err := e.baselineMechanismCtx(solveCtx, bs, n, alpha)
		if err != nil {
			return nil, err
		}
		opts, stats := e.lpOpts()
		in, err := m.OptimalInteractionCtx(solveCtx, deployed, opts)
		e.recordLP(e.interactions, key, stats)
		return in, err
	})
}

// baselineMechanismCtx serves a baseline mechanism through the
// mechanisms class. The geometric baseline is GeometricCtx itself
// (same cache entry); the others get "bl="-prefixed keys in the same
// store, since they are the same kind of artifact (an immutable
// row-stochastic matrix with an O(n²) build).
func (e *Engine) baselineMechanismCtx(ctx context.Context, bs baseline.Spec, n int, alpha *big.Rat) (*mechanism.Mechanism, error) {
	if bs.Kind == baseline.Geometric {
		return e.GeometricCtx(ctx, n, alpha)
	}
	key := "bl=" + bs.String() + "|" + geometricKey(n, alpha)
	if m, ok, err := getCached[*mechanism.Mechanism](ctx, e.mechanisms, key); ok || err != nil {
		return m, err
	}
	return getTyped(ctx, e.mechanisms, key, func(context.Context) (*mechanism.Mechanism, error) {
		return bs.Build(n, alpha)
	})
}
