package engine

import (
	"context"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"minimaxdp/internal/baseline"
	"minimaxdp/internal/consumer"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/rational"
	diskstore "minimaxdp/internal/store"
)

func openDisk(t testing.TB, dir string) *diskstore.Store {
	t.Helper()
	db, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// warmArtifacts drives one of every persisted artifact class through
// an engine and returns the values, so cold and warm boots can be
// compared exactly.
type warmed struct {
	tailoredLoss *big.Rat
	geomProb     *big.Rat
	planFirst    *big.Rat
	transProb    *big.Rat
	compareGap   *big.Rat
	draws        []int
}

func driveArtifacts(t testing.TB, e *Engine) warmed {
	t.Helper()
	a, b := rational.MustParse("1/3"), rational.MustParse("1/2")
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	tl, err := e.TailoredMechanism(c, 6, a)
	if err != nil {
		t.Fatal(err)
	}
	g, err := e.Geometric(6, a)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Transition(6, a, b)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.ReleasePlan(6, []*big.Rat{a, b})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := p.Marginal(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Sampler(context.Background(), SamplerSpec{N: 6, Alpha: a})
	if err != nil {
		t.Fatal(err)
	}
	// Geometric-only baseline set: the compare shares the tailored
	// solve above and adds exactly one interaction solve, keeping the
	// cold drive fast while still exercising the persisted class.
	cmp, err := e.Compare(CompareSpec{
		N: 6, Alpha: a, Model: c,
		Baselines: []baseline.Spec{{Kind: baseline.Geometric}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return warmed{
		tailoredLoss: tl.Loss,
		geomProb:     g.Prob(3, 3),
		planFirst:    m1.Prob(0, 0),
		transProb:    tr.At(2, 2),
		compareGap:   cmp.Entries[0].Gap,
		draws:        s.SampleN(3, 32),
	}
}

// TestEngineWarmBoot is the tentpole acceptance test: solve every
// persisted artifact class against an empty store, then boot a fresh
// engine on the same directory and re-request everything. The warm
// engine must do ZERO LP solves and serve byte-exact rationals.
func TestEngineWarmBoot(t *testing.T) {
	dir := t.TempDir()

	cold := New(Config{Seed: 1, Store: openDisk(t, dir)})
	want := driveArtifacts(t, cold)
	cm := cold.Metrics()
	if cm.LP.Solves == 0 {
		t.Fatal("cold boot did no LP solves — test premise broken")
	}
	writes := cm.Mechanisms.StoreWrites + cm.Transitions.StoreWrites +
		cm.Plans.StoreWrites + cm.Tailored.StoreWrites + cm.Samplers.StoreWrites
	if writes == 0 {
		t.Fatal("cold boot wrote nothing to the store")
	}
	if cm.Tailored.StoreWrites != 1 {
		t.Errorf("tailored writes = %d, want 1", cm.Tailored.StoreWrites)
	}

	warm := New(Config{Seed: 1, Store: openDisk(t, dir)})
	got := driveArtifacts(t, warm)
	wm := warm.Metrics()
	if wm.LP.Solves != 0 {
		t.Errorf("warm boot did %d LP solves, want 0", wm.LP.Solves)
	}
	hits := wm.Mechanisms.StoreHits + wm.Transitions.StoreHits +
		wm.Plans.StoreHits + wm.Tailored.StoreHits + wm.Samplers.StoreHits
	if hits == 0 {
		t.Error("warm boot hit the store zero times")
	}
	if wm.Compares.StoreHits != 1 {
		t.Errorf("compare store hits = %d, want 1", wm.Compares.StoreHits)
	}
	if wm.Tailored.StoreHits != 1 {
		t.Errorf("tailored store hits = %d, want 1", wm.Tailored.StoreHits)
	}
	for _, cmp := range []struct {
		name       string
		cold, warm *big.Rat
	}{
		{"tailored loss", want.tailoredLoss, got.tailoredLoss},
		{"geometric prob", want.geomProb, got.geomProb},
		{"plan marginal", want.planFirst, got.planFirst},
		{"transition prob", want.transProb, got.transProb},
		{"compare gap", want.compareGap, got.compareGap},
	} {
		if cmp.cold.Cmp(cmp.warm) != 0 {
			t.Errorf("%s: cold %s != warm %s", cmp.name, cmp.cold.RatString(), cmp.warm.RatString())
		}
	}
	// Same seed, same tables, same shard streams: draw-for-draw equal.
	for i := range want.draws {
		if want.draws[i] != got.draws[i] {
			t.Errorf("draw %d: cold %d != warm %d (sampler not faithfully reloaded)",
				i, want.draws[i], got.draws[i])
		}
	}
}

// TestEngineStoreCorruptFallback flips bytes in every stored entry
// and warm-boots: the engine must fall back to solving (correct
// results, nonzero solves), never crash, and the store must
// quarantine, not serve, the damage.
func TestEngineStoreCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	cold := New(Config{Seed: 1, Store: openDisk(t, dir)})
	want := driveArtifacts(t, cold)

	var corrupted int
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".art") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)/2] ^= 0xff
		corrupted++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("no entries to corrupt")
	}

	db := openDisk(t, dir)
	warm := New(Config{Seed: 1, Store: db})
	got := driveArtifacts(t, warm)
	if got.tailoredLoss.Cmp(want.tailoredLoss) != 0 {
		t.Errorf("fallback solve got loss %s, want %s",
			got.tailoredLoss.RatString(), want.tailoredLoss.RatString())
	}
	if wm := warm.Metrics(); wm.LP.Solves == 0 {
		t.Error("corrupt store but zero solves — corrupt entries were served?")
	}
	if st := db.Stats(); st.Corrupt != uint64(corrupted) {
		t.Errorf("quarantined %d entries, corrupted %d", st.Corrupt, corrupted)
	}
	// The write-back repaired the store: a third boot is warm again.
	repaired := New(Config{Seed: 1, Store: openDisk(t, dir)})
	driveArtifacts(t, repaired)
	if rm := repaired.Metrics(); rm.LP.Solves != 0 {
		t.Errorf("store not repaired by write-back: %d solves on third boot", rm.LP.Solves)
	}
}

// TestEngineNoStoreUnchanged pins that a store-less engine still
// works and reports zeroed store counters (the nil-binding path).
func TestEngineNoStoreUnchanged(t *testing.T) {
	e := New(Config{Seed: 1})
	driveArtifacts(t, e)
	m := e.Metrics()
	if m.Tailored.StoreHits != 0 || m.Tailored.StoreWrites != 0 || m.Tailored.StoreErrors != 0 {
		t.Errorf("store counters nonzero without a store: %+v", m.Tailored)
	}
	if m.LP.Solves == 0 {
		t.Error("LP solve counter not incremented")
	}
}

// BenchmarkStoreWarmBoot quantifies the warm-boot win: loading a
// tailored LP solution from the artifact store vs re-running the
// §2.5 solve. Each iteration boots a fresh engine so the in-memory
// cache never short-circuits the path under test.
func BenchmarkStoreWarmBoot(b *testing.B) {
	a := rational.MustParse("1/2")
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	const n = 8

	b.Run("cold-solve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := New(Config{})
			if _, err := e.TailoredMechanism(c, n, a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("store-load", func(b *testing.B) {
		dir := b.TempDir()
		seed := New(Config{Store: openDisk(b, dir)})
		if _, err := seed.TailoredMechanism(c, n, a); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := New(Config{Store: openDisk(b, dir)})
			if _, err := e.TailoredMechanism(c, n, a); err != nil {
				b.Fatal(err)
			}
		}
	})
}
