package engine

import (
	"context"
	"testing"

	"minimaxdp/internal/baseline"
	"minimaxdp/internal/consumer"
	"minimaxdp/internal/loss"
)

// Theorem 1 part 2 as a change detector: for minimax consumers the
// geometric baseline's optimality gap is exactly zero — not small,
// zero — at the paper's Table 1 sizes, across losses and side sets.
func TestCompareMinimaxGeometricGapExactlyZero(t *testing.T) {
	e := New(Config{})
	alpha := rat(t, "1/4")
	consumers := []*consumer.Consumer{
		{Loss: loss.Absolute{}},
		{Loss: loss.Squared{}},
		{Loss: loss.ZeroOne{}},
		{Loss: loss.Deadband{Width: 1}},
		{Loss: loss.Absolute{}, Side: consumer.Interval(1, 3)},
		{Loss: loss.Squared{}, Side: []int{0, 2, 3}},
	}
	for _, c := range consumers {
		cmp, err := e.Compare(CompareSpec{N: 3, Alpha: alpha, Model: c})
		if err != nil {
			t.Fatalf("Compare(%s): %v", c.Loss.Name(), err)
		}
		if cmp.Model != "minimax" {
			t.Fatalf("model = %q", cmp.Model)
		}
		if err := cmp.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		var sawGeometric bool
		for _, entry := range cmp.Entries {
			if entry.Spec != "geometric" {
				continue
			}
			sawGeometric = true
			if entry.Gap.Sign() != 0 {
				t.Fatalf("loss %s: geometric gap = %s, want exactly 0",
					c.Loss.Name(), entry.Gap.RatString())
			}
			if entry.BestAlpha.Cmp(alpha) != 0 {
				t.Fatalf("geometric BestAlpha = %s", entry.BestAlpha.RatString())
			}
		}
		if !sawGeometric {
			t.Fatal("default baseline set lost the geometric entry")
		}
	}
}

// The full default scorecard is internally coherent: per-baseline
// interaction never loses to the raw mechanism, the α-DP baselines
// never beat the tailored optimum, and the not-actually-α-DP
// truncated Laplace reports a weaker BestAlpha.
func TestCompareDefaultScorecard(t *testing.T) {
	e := New(Config{})
	alpha := rat(t, "1/3")
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	cmp, err := e.Compare(CompareSpec{N: 4, Alpha: alpha, Model: c})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Entries) != 3 {
		t.Fatalf("default set has %d entries", len(cmp.Entries))
	}
	for _, entry := range cmp.Entries {
		if entry.InteractionLoss.Cmp(entry.Loss) > 0 {
			t.Errorf("%s: optimal interaction %s worse than raw loss %s",
				entry.Spec, entry.InteractionLoss.RatString(), entry.Loss.RatString())
		}
		switch entry.Spec {
		case "geometric", "staircase":
			if entry.Gap.Sign() < 0 {
				t.Errorf("%s: α-DP baseline has negative gap %s", entry.Spec, entry.Gap.RatString())
			}
			if entry.BestAlpha.Cmp(alpha) != 0 {
				t.Errorf("%s: BestAlpha = %s, want %s", entry.Spec, entry.BestAlpha.RatString(), alpha.RatString())
			}
		case "laplace":
			if entry.BestAlpha.Cmp(alpha) >= 0 {
				t.Errorf("laplace BestAlpha %s should be strictly below α %s",
					entry.BestAlpha.RatString(), alpha.RatString())
			}
		default:
			t.Errorf("unexpected entry %q", entry.Spec)
		}
	}
}

// Bayesian compares flow through the same class: the scorecard is
// arithmetically valid, and the Bayes-tailored optimum is the floor
// for Bayes-interacted α-DP baselines.
func TestCompareBayesian(t *testing.T) {
	e := New(Config{})
	alpha := rat(t, "1/4")
	n := 3
	b := &consumer.Bayesian{Loss: loss.Absolute{}, Prior: consumer.UniformPrior(n)}
	cmp, err := e.Compare(CompareSpec{N: n, Alpha: alpha, Model: b})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Model != "bayesian" {
		t.Fatalf("model = %q", cmp.Model)
	}
	if err := cmp.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, entry := range cmp.Entries {
		if entry.Spec == "laplace" {
			continue // not α-DP, may undercut the tailored floor
		}
		if entry.Gap.Sign() < 0 {
			t.Errorf("%s: Bayesian gap %s negative for an α-DP baseline",
				entry.Spec, entry.Gap.RatString())
		}
	}
	// Minimax and Bayesian compares at the same (n, α) are distinct
	// artifacts: the model identity is part of the key.
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	mm, err := e.Compare(CompareSpec{N: n, Alpha: alpha, Model: c})
	if err != nil {
		t.Fatal(err)
	}
	if mm.Model == cmp.Model {
		t.Fatal("minimax compare served the Bayesian artifact")
	}
}

// A repeat compare is a cache hit, and behaviorally equal specs
// (aliased α, permuted/duplicated baseline set, explicit default
// width) share one artifact.
func TestCompareCachedAndCanonicalized(t *testing.T) {
	e := New(Config{})
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	first, err := e.Compare(CompareSpec{N: 3, Alpha: rat(t, "1/2"), Model: c})
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Compare(CompareSpec{
		N:     3,
		Alpha: rat(t, "2/4"),
		Model: c,
		Baselines: []baseline.Spec{
			{Kind: baseline.KindLaplace},
			{Kind: baseline.KindStaircase, Width: 2},
			{Kind: baseline.Geometric},
			{Kind: baseline.Geometric},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("canonically equal compare specs did not share a cache entry")
	}
	m := e.Metrics()
	if m.Compares.Cache.Hits != 1 || m.Compares.Cache.Misses != 1 || m.Compares.Requests != 2 {
		t.Fatalf("compare stats = %+v", m.Compares)
	}
}

// Compare errors surface before any caching: nil model, bad prior,
// bad baseline, empty side set.
func TestCompareInvalidSpecs(t *testing.T) {
	e := New(Config{})
	alpha := rat(t, "1/2")
	if _, err := e.Compare(CompareSpec{N: 3, Alpha: alpha}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := e.Compare(CompareSpec{N: 3, Model: &consumer.Consumer{Loss: loss.Absolute{}}}); err == nil {
		t.Error("nil alpha accepted")
	}
	badPrior := &consumer.Bayesian{Loss: loss.Absolute{}, Prior: consumer.UniformPrior(5)}
	if _, err := e.Compare(CompareSpec{N: 3, Alpha: alpha, Model: badPrior}); err == nil {
		t.Error("length-mismatched prior accepted")
	}
	emptySide := &consumer.Consumer{Loss: loss.Absolute{}, Side: []int{99}}
	if _, err := e.Compare(CompareSpec{N: 3, Alpha: alpha, Model: emptySide}); err == nil {
		t.Error("empty clipped side set accepted")
	}
	badBaseline := CompareSpec{
		N: 3, Alpha: alpha, Model: &consumer.Consumer{Loss: loss.Absolute{}},
		Baselines: []baseline.Spec{{Kind: baseline.Geometric, Width: 7}},
	}
	if _, err := e.Compare(badBaseline); err == nil {
		t.Error("geometric-with-width baseline accepted")
	}
	if m := e.Metrics(); m.Compares.Cache.Misses != 0 {
		t.Errorf("invalid specs reached the compute path: %+v", m.Compares)
	}
}

// The compare class shares its nested artifacts: a compare after a
// tailored+interaction warm-up runs zero additional LP solves for the
// geometric row, and a tailored request after a compare is a pure
// cache hit.
func TestCompareSharesNestedArtifacts(t *testing.T) {
	e := New(Config{})
	alpha := rat(t, "1/4")
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	ctx := context.Background()
	if _, err := e.TailoredCtx(ctx, c, 3, alpha); err != nil {
		t.Fatal(err)
	}
	if _, err := e.InteractionCtx(ctx, c, 3, alpha); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CompareCtx(ctx, CompareSpec{
		N: 3, Alpha: alpha, Model: c,
		Baselines: []baseline.Spec{{Kind: baseline.Geometric}},
	}); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Tailored.Cache.Misses != 1 {
		t.Errorf("compare re-solved the tailored LP: %+v", m.Tailored.Cache)
	}
	if m.Interactions.Cache.Misses != 1 {
		t.Errorf("compare re-solved the interaction LP: %+v", m.Interactions.Cache)
	}
	if m.Tailored.Cache.Hits < 1 || m.Interactions.Cache.Hits < 1 {
		t.Errorf("compare did not hit the warm LP caches: tailored %+v interactions %+v",
			m.Tailored.Cache, m.Interactions.Cache)
	}
}
