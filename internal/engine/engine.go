// Package engine is the concurrent mechanism-serving layer of
// minimaxdp: it sits between the exact core (mechanism, derive,
// consumer, release) and every serving surface (cmd/dpserver, CLIs,
// library users) and makes the expensive artifacts compute-once.
//
// Every artifact this module produces — the geometric mechanism
// G_{n,α} and its inverse (Lemmas 1–2), the cascade transition
// matrices T_{α,β} (Lemma 3), multi-level release plans
// (Algorithm 1), and the LP optima of §2.4.3/§2.5 — is a
// deterministic, total function of its parameters. Exact rational
// arithmetic has no rounding modes and no environment dependence, so
// the parameters form a sound cache key: two computations with equal
// keys yield equal artifacts, always. The engine exploits this with
// three mechanisms:
//
//   - a keyed artifact cache per artifact class (size-bounded, LRU by
//     generation stamp, hit/miss/eviction counters);
//   - singleflight-style request coalescing, so N concurrent requests
//     for the same not-yet-cached artifact run the computation once
//     and share the result (critical for the LP solves, which cost
//     milliseconds to minutes while a cache hit costs nanoseconds);
//   - precompiled dyadic alias samplers over a GOMAXPROCS-sized
//     array of sampler shards, each shard owning a lock-free
//     splitmix64 stream and its own counters, so concurrent draws
//     never contend on a shared PRNG or a shared cache line.
//
// # Cancellation and admission control
//
// Every artifact method has a context-taking form (GeometricCtx,
// TailoredCtx, ...). Cancellation propagates into the LP pivot loop,
// so abandoning a multi-second solve frees its CPU within one pivot.
// Coalesced requests cancel independently: a waiter that gives up
// detaches without disturbing the shared solve, which is itself
// canceled only once every waiter has gone. Canceled or errored
// computations never enter a cache.
//
// The LP-backed classes (tailored, interactions) additionally pass
// through a bounded in-flight-solve semaphore
// (Config.MaxInFlightSolves). Admission is non-blocking: when the
// bound is reached, new solves fail immediately with ErrSaturated
// rather than queueing, so overload surfaces as a fast, retryable
// rejection. Cache hits and coalesced joins are never shed.
//
// Cached artifacts are shared between callers and must be treated as
// read-only. Immutable types (*mechanism.Mechanism, *release.Plan,
// the solved LP results) are returned directly; raw *matrix.Matrix
// artifacts, which expose a Set method, are returned as clones so no
// caller can corrupt the cache.
//
// Cache keys for LP solves include the consumer's loss function via
// loss.Function.Name(). The built-in losses embed their parameters in
// their names (e.g. "deadband(2)", "1/3×absolute"), making the name a
// faithful identity; users of loss.Table must give distinct tables
// distinct Labels or bypass the engine.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"strings"

	"minimaxdp/internal/baseline"
	"minimaxdp/internal/consumer"
	"minimaxdp/internal/derive"
	"minimaxdp/internal/lp"
	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/release"
	diskstore "minimaxdp/internal/store"
)

// Default cache capacities (entries, not bytes — artifacts are
// O((n+1)²) rationals, so a few hundred entries of moderate n fit
// comfortably in memory).
const (
	DefaultMatrixCacheSize  = 64
	DefaultLPCacheSize      = 256
	DefaultSamplerCacheSize = 64
)

// DefaultMaxInFlightSolves bounds concurrent LP solves when
// Config.MaxInFlightSolves is zero. LP solves are single-threaded and
// CPU-bound, so a bound in the low tens keeps a loaded server
// responsive without starving throughput on typical hardware.
const DefaultMaxInFlightSolves = 16

// ErrSaturated is returned (wrapped) by the LP-backed artifact methods
// when the engine's in-flight solve bound is reached. The request was
// rejected before any work started; it is safe to retry after backoff.
var ErrSaturated = errors.New("engine: too many LP solves in flight")

// DefaultMaxLPDomainN bounds the domain size n of LP-backed artifacts
// when Config.MaxLPDomainN is zero. Even on the presolved float-guided
// revised-simplex path a cold tailored solve scales steeply in n
// (~3ms at n=8, ~0.15s at n=16, ~20s at n=24, ~3.6min at n=32 on the
// dev box), so an unbounded n from untrusted input could pin a solver
// slot for minutes. 32 is the largest size whose worst case is still
// plausibly interactive.
const DefaultMaxLPDomainN = 32

// ErrDomainTooLarge is returned (wrapped) by the LP-backed artifact
// methods when the requested domain size n exceeds Config.MaxLPDomainN.
// The request was rejected before any work started; it will never
// succeed without reconfiguring the engine.
var ErrDomainTooLarge = errors.New("engine: LP domain size exceeds cap")

// Config tunes an Engine. The zero value is ready to use: every
// capacity defaults to the package constants and the sampler pool
// seeds from Seed (default 1).
type Config struct {
	// MatrixCacheSize bounds each of the mechanism, inverse,
	// transition, and release-plan caches.
	MatrixCacheSize int
	// LPCacheSize bounds the tailored-mechanism and interaction
	// caches (LP solutions; the most expensive artifacts).
	LPCacheSize int
	// SamplerCacheSize bounds the precompiled sampler cache.
	SamplerCacheSize int
	// MaxInFlightSolves bounds concurrently running LP solves across
	// the tailored and interaction classes combined. Zero means
	// DefaultMaxInFlightSolves; negative disables shedding entirely.
	MaxInFlightSolves int
	// MaxLPDomainN bounds the domain size n accepted by the LP-backed
	// artifact methods (TailoredMechanism, OptimalInteraction, Compare
	// and their Ctx forms): larger n fails fast with ErrDomainTooLarge
	// before touching cache or solver. Zero means DefaultMaxLPDomainN;
	// negative disables the guard.
	MaxLPDomainN int
	// ExactLPOnly disables the float-guided warm-start path: every LP
	// solve runs the pure exact two-phase simplex from scratch. The
	// default (false) uses lp.StrategyWarmStart. Results are identical
	// either way — the warm path certifies exactly before returning —
	// so this is a diagnostic/benchmarking escape hatch, not a
	// correctness knob.
	ExactLPOnly bool
	// Seed is the base seed for the sampler shards' PRNGs. Shard k
	// draws from splitmix64 stream (Seed, k), so a fixed seed gives a
	// reproducible *set* of streams (though goroutine scheduling still
	// decides which goroutine draws from which stream).
	Seed int64
	// Trace, when non-nil, receives a span event for every cache hit,
	// miss, coalesced join, solve start/finish, and shed rejection.
	// See TraceFunc for the contract.
	Trace TraceFunc
	// Store, when non-nil, backs the mechanisms, transitions, plans,
	// tailored, and samplers classes with the content-addressed disk
	// store: in-memory misses probe the store before computing, and
	// successful computations are written back, so a fresh engine
	// pointed at a populated store directory warm-boots every
	// previously computed artifact — including LP solutions — with
	// zero solves. The store is strictly an accelerator: any load,
	// verify, or write failure degrades to normal computation (see
	// internal/store and the per-class Store* counters).
	Store *diskstore.Store
}

func (c Config) withDefaults() Config {
	if c.MatrixCacheSize <= 0 {
		c.MatrixCacheSize = DefaultMatrixCacheSize
	}
	if c.LPCacheSize <= 0 {
		c.LPCacheSize = DefaultLPCacheSize
	}
	if c.SamplerCacheSize <= 0 {
		c.SamplerCacheSize = DefaultSamplerCacheSize
	}
	if c.MaxLPDomainN == 0 {
		c.MaxLPDomainN = DefaultMaxLPDomainN
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Engine is a concurrency-safe, compute-once serving layer over the
// exact core. All methods are safe for concurrent use; construct one
// Engine per process (or per tenant) and share it.
type Engine struct {
	mechanisms   *store
	inverses     *store
	transitions  *store
	plans        *store
	tailored     *store
	interactions *store
	compares     *store
	samplers     *store

	solves     *solveSem // nil when shedding is disabled
	shards     *shardSet
	batchSizes batchHist
	trace      TraceFunc // nil = tracing off

	lp        lpCounters
	exactOnly bool
	maxLPN    int // < 0 = unguarded
}

// New builds an Engine from cfg (zero value fine; see Config).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		mechanisms:   newStore("mechanisms", cfg.MatrixCacheSize),
		inverses:     newStore("inverses", cfg.MatrixCacheSize),
		transitions:  newStore("transitions", cfg.MatrixCacheSize),
		plans:        newStore("plans", cfg.MatrixCacheSize),
		tailored:     newStore("tailored", cfg.LPCacheSize),
		interactions: newStore("interactions", cfg.LPCacheSize),
		compares:     newStore("compares", cfg.LPCacheSize),
		samplers:     newStore("samplers", cfg.SamplerCacheSize),
		shards:       newShardSet(cfg.Seed),
		trace:        cfg.Trace,
		exactOnly:    cfg.ExactLPOnly,
		maxLPN:       cfg.MaxLPDomainN,
	}
	if cfg.MaxInFlightSolves >= 0 {
		bound := cfg.MaxInFlightSolves
		if bound == 0 {
			bound = DefaultMaxInFlightSolves
		}
		e.solves = newSolveSem(bound)
		// Only the LP-backed classes are expensive enough to shed;
		// matrix artifacts compute in microseconds. The compares class
		// carries no semaphore of its own: its nested tailored and
		// interaction solves pass through those classes' sheddable
		// stores, and double-counting slots for the composite would
		// deadlock a saturated engine against itself.
		e.tailored.sem = e.solves
		e.interactions.sem = e.solves
	}
	for _, s := range []*store{
		e.mechanisms, e.inverses, e.transitions, e.plans,
		e.tailored, e.interactions, e.compares, e.samplers,
	} {
		s.trace = cfg.Trace
	}
	if cfg.Store != nil {
		e.bindDisk(cfg.Store)
	}
	return e
}

// getCached probes s for key on the allocation-free hit path; ok
// reports whether the artifact was served. Engine methods call this
// before building their compute closure — see store.lookup for why
// the probe and the compute must be separate statements.
func getCached[T any](ctx context.Context, s *store, key string) (T, bool, error) {
	v, ok, err := s.lookup(ctx, key)
	if err != nil || !ok {
		var zero T
		return zero, false, err
	}
	return v.(T), true, nil
}

// getTyped adapts the any-typed store's miss path to a concrete
// artifact type. Call only after getCached missed on the same key.
func getTyped[T any](ctx context.Context, s *store, key string, fn func(context.Context) (T, error)) (T, error) {
	v, err := s.compute(ctx, key, func(solveCtx context.Context) (any, error) { return fn(solveCtx) })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// --- cache keys -----------------------------------------------------------

// ratKey renders a rational for key use. big.Rat is always stored in
// lowest terms, so equal rationals render identically ("2/4" and
// "1/2" share a key).
func ratKey(a *big.Rat) string { return a.RatString() }

func checkRat(name string, a *big.Rat) error {
	if a == nil {
		return fmt.Errorf("engine: nil %s", name)
	}
	return nil
}

// The named key builders below are the single source of truth for
// each class's cache identity. They double as the disk store's
// content addresses (internal/store hashes class+key), so changing a
// builder orphans that class's persisted artifacts — harmless
// (orphans are never loaded; the store re-fills under the new keys)
// but worth knowing before renaming a field.

// geometricKey keys G_{n,α} and everything 1:1 with it (inverses,
// compiled samplers).
func geometricKey(n int, alpha *big.Rat) string {
	return fmt.Sprintf("n=%d|a=%s", n, ratKey(alpha))
}

// transitionKey keys the Lemma 3 matrix T_{α,β} on {0..n}.
func transitionKey(n int, alpha, beta *big.Rat) string {
	return fmt.Sprintf("n=%d|a=%s|b=%s", n, ratKey(alpha), ratKey(beta))
}

// planKey keys an Algorithm 1 release plan by its full α-ladder.
func planKey(n int, parts []string) string {
	return fmt.Sprintf("n=%d|a=%s", n, strings.Join(parts, ","))
}

// lpKey keys the LP-backed classes (tailored, interactions): the
// level parameters plus the consumer identity from consumerKey.
func lpKey(n int, alpha *big.Rat, ck string) string {
	return fmt.Sprintf("n=%d|a=%s|%s", n, ratKey(alpha), ck)
}

// consumerKey canonicalizes the cache-relevant identity of a consumer
// model on {0..n}. The Model implementations own the format
// (consumer.(*Consumer).Key, consumer.(*Bayesian).Key); for minimax
// consumers it is the historical "loss=…|side=…" string, so artifacts
// persisted before the Model unification keep their disk addresses.
func consumerKey(m consumer.Model, n int) (string, error) {
	if m == nil {
		return "", fmt.Errorf("engine: consumer with a loss function required")
	}
	return m.Key(n)
}

// --- LP solver plumbing ---------------------------------------------------

// lpOpts builds the per-solve LP options honoring Config.ExactLPOnly,
// with a fresh stats block for recordLP to fold into the engine-wide
// counters afterwards.
func (e *Engine) lpOpts() (lp.SolveOpts, *lp.SolveStats) {
	stats := new(lp.SolveStats)
	opts := lp.SolveOpts{Stats: stats}
	if e.exactOnly {
		opts.Strategy = lp.StrategyExact
	}
	return opts, stats
}

// recordLP folds one solve's stats into the engine counters and emits
// the matching path trace event on the solving store. Pivot counters
// accumulate even for failed or canceled solves (the work was done);
// the path counters are mutually exclusive per solve, and none
// advances when ExactLPOnly skipped the warm-start machinery — the
// zero-value stats report Fallback == false there, by design, so the
// fallback counter keeps meaning "warm start attempted and demoted".
func (e *Engine) recordLP(s *store, key string, stats *lp.SolveStats) {
	e.lp.solves.Add(1)
	e.lp.floatPivots.Add(uint64(stats.FloatPivots))
	e.lp.exactPivots.Add(uint64(stats.ExactPivots))
	e.lp.revisedPivots.Add(uint64(stats.RevisedPivots))
	e.lp.parallelPivots.Add(uint64(stats.ParallelPivots))
	e.lp.smallOps.Add(uint64(stats.SmallOps))
	e.lp.wideOps.Add(uint64(stats.WideOps))
	e.lp.bigFallbacks.Add(uint64(stats.BigFallbacks))
	e.lp.refactorizations.Add(uint64(stats.Refactorizations))
	e.lp.magnitudeRefacts.Add(uint64(stats.MagnitudeRefactors))
	e.lp.presolveRows.Add(uint64(stats.PresolveRows))
	e.lp.presolveCols.Add(uint64(stats.PresolveCols))
	switch {
	case stats.WarmStartHit:
		e.lp.warmStartHits.Add(1)
		s.emit(TraceWarmStartHit, key)
	case stats.CrossoverResumed:
		e.lp.crossoverResumes.Add(1)
		s.emit(TraceWarmStartResume, key)
	case stats.Fallback:
		e.lp.fallbacks.Add(1)
		s.emit(TraceWarmStartFallback, key)
	}
}

// --- exact artifacts ------------------------------------------------------

// Geometric returns the (shared, immutable) geometric mechanism
// G_{n,α}, computing it at most once per (n, α). It is
// GeometricCtx(context.Background(), ...).
func (e *Engine) Geometric(n int, alpha *big.Rat) (*mechanism.Mechanism, error) {
	return e.GeometricCtx(context.Background(), n, alpha)
}

// GeometricCtx is Geometric under a context. Matrix construction is
// fast (no LP), so ctx is checked at entry and between coalesced
// waits but not inside the arithmetic.
func (e *Engine) GeometricCtx(ctx context.Context, n int, alpha *big.Rat) (*mechanism.Mechanism, error) {
	if err := checkRat("alpha", alpha); err != nil {
		return nil, err
	}
	key := geometricKey(n, alpha)
	if m, ok, err := getCached[*mechanism.Mechanism](ctx, e.mechanisms, key); ok || err != nil {
		return m, err
	}
	return getTyped(ctx, e.mechanisms, key, func(context.Context) (*mechanism.Mechanism, error) {
		return mechanism.Geometric(n, alpha)
	})
}

// GeometricInverse returns the Lemma 1/2 inverse of G_{n,α} as a
// fresh clone of the cached matrix (matrices are mutable, so callers
// never see the cache's copy). It is
// GeometricInverseCtx(context.Background(), ...).
func (e *Engine) GeometricInverse(n int, alpha *big.Rat) (*matrix.Matrix, error) {
	return e.GeometricInverseCtx(context.Background(), n, alpha)
}

// GeometricInverseCtx is GeometricInverse under a context.
func (e *Engine) GeometricInverseCtx(ctx context.Context, n int, alpha *big.Rat) (*matrix.Matrix, error) {
	if err := checkRat("alpha", alpha); err != nil {
		return nil, err
	}
	key := geometricKey(n, alpha)
	m, ok, err := getCached[*matrix.Matrix](ctx, e.inverses, key)
	if err != nil {
		return nil, err
	}
	if !ok {
		m, err = getTyped(ctx, e.inverses, key, func(context.Context) (*matrix.Matrix, error) {
			return mechanism.GeometricInverse(n, alpha)
		})
		if err != nil {
			return nil, err
		}
	}
	return m.Clone(), nil
}

// Transition returns the Lemma 3 stochastic matrix T_{α,β} with
// G_{n,β} = G_{n,α}·T_{α,β} as a fresh clone of the cached matrix.
// It is TransitionCtx(context.Background(), ...).
func (e *Engine) Transition(n int, alpha, beta *big.Rat) (*matrix.Matrix, error) {
	return e.TransitionCtx(context.Background(), n, alpha, beta)
}

// TransitionCtx is Transition under a context.
func (e *Engine) TransitionCtx(ctx context.Context, n int, alpha, beta *big.Rat) (*matrix.Matrix, error) {
	if err := checkRat("alpha", alpha); err != nil {
		return nil, err
	}
	if err := checkRat("beta", beta); err != nil {
		return nil, err
	}
	key := transitionKey(n, alpha, beta)
	m, ok, err := getCached[*matrix.Matrix](ctx, e.transitions, key)
	if err != nil {
		return nil, err
	}
	if !ok {
		m, err = getTyped(ctx, e.transitions, key, func(context.Context) (*matrix.Matrix, error) {
			return derive.Transition(n, alpha, beta)
		})
		if err != nil {
			return nil, err
		}
	}
	return m.Clone(), nil
}

// ReleasePlan returns the (shared) Algorithm 1 release plan for the
// privacy levels α₁ < … < α_k, computing the cascade chain at most
// once per (n, levels). Plans expose no mutators and are safe to
// share between goroutines; sampling from a plan still requires a
// caller-owned PRNG. It is ReleasePlanCtx(context.Background(), ...).
func (e *Engine) ReleasePlan(n int, alphas []*big.Rat) (*release.Plan, error) {
	return e.ReleasePlanCtx(context.Background(), n, alphas)
}

// ReleasePlanCtx is ReleasePlan under a context.
func (e *Engine) ReleasePlanCtx(ctx context.Context, n int, alphas []*big.Rat) (*release.Plan, error) {
	parts := make([]string, len(alphas))
	for i, a := range alphas {
		if err := checkRat(fmt.Sprintf("level %d", i+1), a); err != nil {
			return nil, err
		}
		parts[i] = ratKey(a)
	}
	key := planKey(n, parts)
	if p, ok, err := getCached[*release.Plan](ctx, e.plans, key); ok || err != nil {
		return p, err
	}
	return getTyped(ctx, e.plans, key, func(context.Context) (*release.Plan, error) {
		return release.NewPlan(n, alphas)
	})
}

// checkLPDomain enforces the engine-side domain-size cap on the
// LP-backed routes (Config.MaxLPDomainN). It runs before the cache
// probe: a cap change must apply uniformly, not depend on what some
// earlier, larger-capped engine happened to leave in a shared store.
func (e *Engine) checkLPDomain(n int) error {
	if e.maxLPN >= 0 && n > e.maxLPN {
		return fmt.Errorf("engine: n %d exceeds the LP domain cap %d: %w", n, e.maxLPN, ErrDomainTooLarge)
	}
	return nil
}

// TailoredMechanism solves (once per key) the tailored-optimum
// problem for consumer model m on {0..n}: the §2.5 LP for minimax
// consumers, the Ghosh-et-al. analogue for Bayesian ones. The
// returned Tailored is shared between callers and must be treated as
// read-only. It is TailoredCtx(context.Background(), ...).
func (e *Engine) TailoredMechanism(m consumer.Model, n int, alpha *big.Rat) (*consumer.Tailored, error) {
	return e.TailoredCtx(context.Background(), m, n, alpha)
}

// TailoredCtx is TailoredMechanism under a context. The context
// reaches the LP pivot loop: canceling it aborts the solve at the
// next pivot (unless other coalesced callers still want the result —
// then only this caller detaches). A canceled solve is never cached;
// the next request recomputes from scratch. When the engine's
// in-flight solve bound is hit, the error wraps ErrSaturated.
func (e *Engine) TailoredCtx(ctx context.Context, m consumer.Model, n int, alpha *big.Rat) (*consumer.Tailored, error) {
	if err := checkRat("alpha", alpha); err != nil {
		return nil, err
	}
	ck, err := consumerKey(m, n)
	if err != nil {
		return nil, err
	}
	return e.modelTailoredCtx(ctx, m, ck, n, alpha)
}

// OptimalInteraction solves (once per key) the consumer model's
// optimal reaction to the deployed geometric mechanism G_{n,α}: the
// §2.4.3 post-processing LP for minimax consumers, the deterministic
// posterior remap for Bayesian ones. By Theorem 1 a minimax model's
// Loss here equals the tailored optimum, so a warm engine can answer
// "what does this consumer lose at level α?" from cache along either
// route. The returned Interaction is shared and must be treated as
// read-only. It is InteractionCtx(context.Background(), ...).
func (e *Engine) OptimalInteraction(m consumer.Model, n int, alpha *big.Rat) (*consumer.Interaction, error) {
	return e.InteractionCtx(context.Background(), m, n, alpha)
}

// InteractionCtx is OptimalInteraction under a context, with the same
// cancellation and load-shedding behavior as TailoredCtx.
func (e *Engine) InteractionCtx(ctx context.Context, m consumer.Model, n int, alpha *big.Rat) (*consumer.Interaction, error) {
	if err := checkRat("alpha", alpha); err != nil {
		return nil, err
	}
	ck, err := consumerKey(m, n)
	if err != nil {
		return nil, err
	}
	return e.modelInteractionCtx(ctx, m, ck, baseline.Spec{Kind: baseline.Geometric}, n, alpha)
}

// Metrics snapshots the engine's counters (see Metrics for the JSON
// shape).
func (e *Engine) Metrics() Metrics {
	return Metrics{
		Mechanisms:        e.mechanisms.stats(),
		Inverses:          e.inverses.stats(),
		Transitions:       e.transitions.stats(),
		Plans:             e.plans.stats(),
		Tailored:          e.tailored.stats(),
		Interactions:      e.interactions.stats(),
		Compares:          e.compares.stats(),
		Samplers:          e.samplers.stats(),
		SamplerDraws:      e.shards.drawCount(),
		SamplerBatches:    e.shards.batchCount(),
		SamplerBatchSizes: e.batchSizes.snapshot(),
		InFlightSolves:    e.solves.inFlight(),
		LP:                e.lp.snapshot(),
	}
}
