// Package engine is the concurrent mechanism-serving layer of
// minimaxdp: it sits between the exact core (mechanism, derive,
// consumer, release) and every serving surface (cmd/dpserver, CLIs,
// library users) and makes the expensive artifacts compute-once.
//
// Every artifact this module produces — the geometric mechanism
// G_{n,α} and its inverse (Lemmas 1–2), the cascade transition
// matrices T_{α,β} (Lemma 3), multi-level release plans
// (Algorithm 1), and the LP optima of §2.4.3/§2.5 — is a
// deterministic, total function of its parameters. Exact rational
// arithmetic has no rounding modes and no environment dependence, so
// the parameters form a sound cache key: two computations with equal
// keys yield equal artifacts, always. The engine exploits this with
// three mechanisms:
//
//   - a keyed artifact cache per artifact class (size-bounded, LRU by
//     generation stamp, hit/miss/eviction counters);
//   - singleflight-style request coalescing, so N concurrent requests
//     for the same not-yet-cached artifact run the computation once
//     and share the result (critical for the LP solves, which cost
//     milliseconds to seconds while a cache hit costs nanoseconds);
//   - a pool of precompiled alias-table samplers with per-goroutine
//     PRNGs (sample.NewRand returns a *rand.Rand that is NOT
//     goroutine-safe; the pool hands each goroutine its own).
//
// Cached artifacts are shared between callers and must be treated as
// read-only. Immutable types (*mechanism.Mechanism, *release.Plan,
// the solved LP results) are returned directly; raw *matrix.Matrix
// artifacts, which expose a Set method, are returned as clones so no
// caller can corrupt the cache.
//
// Cache keys for LP solves include the consumer's loss function via
// loss.Function.Name(). The built-in losses embed their parameters in
// their names (e.g. "deadband(2)", "1/3×absolute"), making the name a
// faithful identity; users of loss.Table must give distinct tables
// distinct Labels or bypass the engine.
package engine

import (
	"fmt"
	"math/big"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/derive"
	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/release"
)

// Default cache capacities (entries, not bytes — artifacts are
// O((n+1)²) rationals, so a few hundred entries of moderate n fit
// comfortably in memory).
const (
	DefaultMatrixCacheSize  = 64
	DefaultLPCacheSize      = 256
	DefaultSamplerCacheSize = 64
)

// Config tunes an Engine. The zero value is ready to use: every
// capacity defaults to the package constants and the sampler pool
// seeds from Seed (default 1).
type Config struct {
	// MatrixCacheSize bounds each of the mechanism, inverse,
	// transition, and release-plan caches.
	MatrixCacheSize int
	// LPCacheSize bounds the tailored-mechanism and interaction
	// caches (LP solutions; the most expensive artifacts).
	LPCacheSize int
	// SamplerCacheSize bounds the precompiled sampler cache.
	SamplerCacheSize int
	// Seed is the base seed for the sampler pool's PRNGs. Pool PRNG
	// k is seeded with Seed+k, so a fixed seed gives a reproducible
	// *set* of streams (though goroutine scheduling still decides
	// which goroutine draws from which stream).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MatrixCacheSize <= 0 {
		c.MatrixCacheSize = DefaultMatrixCacheSize
	}
	if c.LPCacheSize <= 0 {
		c.LPCacheSize = DefaultLPCacheSize
	}
	if c.SamplerCacheSize <= 0 {
		c.SamplerCacheSize = DefaultSamplerCacheSize
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Engine is a concurrency-safe, compute-once serving layer over the
// exact core. All methods are safe for concurrent use; construct one
// Engine per process (or per tenant) and share it.
type Engine struct {
	mechanisms   *store
	inverses     *store
	transitions  *store
	plans        *store
	tailored     *store
	interactions *store
	samplers     *store

	rngs         *rngPool
	samplerDraws atomic.Uint64
}

// New builds an Engine from cfg (zero value fine; see Config).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		mechanisms:   newStore(cfg.MatrixCacheSize),
		inverses:     newStore(cfg.MatrixCacheSize),
		transitions:  newStore(cfg.MatrixCacheSize),
		plans:        newStore(cfg.MatrixCacheSize),
		tailored:     newStore(cfg.LPCacheSize),
		interactions: newStore(cfg.LPCacheSize),
		samplers:     newStore(cfg.SamplerCacheSize),
		rngs:         newRNGPool(cfg.Seed),
	}
}

// getTyped adapts the any-typed store to a concrete artifact type.
func getTyped[T any](s *store, key string, fn func() (T, error)) (T, error) {
	v, err := s.getOrCompute(key, func() (any, error) { return fn() })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// --- cache keys -----------------------------------------------------------

// ratKey renders a rational for key use. big.Rat is always stored in
// lowest terms, so equal rationals render identically ("2/4" and
// "1/2" share a key).
func ratKey(a *big.Rat) string { return a.RatString() }

func checkRat(name string, a *big.Rat) error {
	if a == nil {
		return fmt.Errorf("engine: nil %s", name)
	}
	return nil
}

// consumerKey canonicalizes the cache-relevant identity of a minimax
// consumer on {0..n}: the loss function's name plus the sorted,
// deduplicated side-information set clipped to the domain (matching
// how the LP builders themselves normalize side information). The
// display Name of the consumer is deliberately excluded.
func consumerKey(c *consumer.Consumer, n int) (string, error) {
	if c == nil || c.Loss == nil {
		return "", fmt.Errorf("engine: consumer with a loss function required")
	}
	var b strings.Builder
	b.WriteString("loss=")
	b.WriteString(c.Loss.Name())
	b.WriteString("|side=")
	if len(c.Side) == 0 {
		b.WriteString("full")
		return b.String(), nil
	}
	side := make([]int, 0, len(c.Side))
	seen := make(map[int]bool, len(c.Side))
	for _, i := range c.Side {
		if i < 0 || i > n || seen[i] {
			continue
		}
		seen[i] = true
		side = append(side, i)
	}
	sort.Ints(side)
	for k, i := range side {
		if k > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(i))
	}
	return b.String(), nil
}

// --- exact artifacts ------------------------------------------------------

// Geometric returns the (shared, immutable) geometric mechanism
// G_{n,α}, computing it at most once per (n, α).
func (e *Engine) Geometric(n int, alpha *big.Rat) (*mechanism.Mechanism, error) {
	if err := checkRat("alpha", alpha); err != nil {
		return nil, err
	}
	key := fmt.Sprintf("n=%d|a=%s", n, ratKey(alpha))
	return getTyped(e.mechanisms, key, func() (*mechanism.Mechanism, error) {
		return mechanism.Geometric(n, alpha)
	})
}

// GeometricInverse returns the Lemma 1/2 inverse of G_{n,α} as a
// fresh clone of the cached matrix (matrices are mutable, so callers
// never see the cache's copy).
func (e *Engine) GeometricInverse(n int, alpha *big.Rat) (*matrix.Matrix, error) {
	if err := checkRat("alpha", alpha); err != nil {
		return nil, err
	}
	key := fmt.Sprintf("n=%d|a=%s", n, ratKey(alpha))
	m, err := getTyped(e.inverses, key, func() (*matrix.Matrix, error) {
		return mechanism.GeometricInverse(n, alpha)
	})
	if err != nil {
		return nil, err
	}
	return m.Clone(), nil
}

// Transition returns the Lemma 3 stochastic matrix T_{α,β} with
// G_{n,β} = G_{n,α}·T_{α,β} as a fresh clone of the cached matrix.
func (e *Engine) Transition(n int, alpha, beta *big.Rat) (*matrix.Matrix, error) {
	if err := checkRat("alpha", alpha); err != nil {
		return nil, err
	}
	if err := checkRat("beta", beta); err != nil {
		return nil, err
	}
	key := fmt.Sprintf("n=%d|a=%s|b=%s", n, ratKey(alpha), ratKey(beta))
	m, err := getTyped(e.transitions, key, func() (*matrix.Matrix, error) {
		return derive.Transition(n, alpha, beta)
	})
	if err != nil {
		return nil, err
	}
	return m.Clone(), nil
}

// ReleasePlan returns the (shared) Algorithm 1 release plan for the
// privacy levels α₁ < … < α_k, computing the cascade chain at most
// once per (n, levels). Plans expose no mutators and are safe to
// share between goroutines; sampling from a plan still requires a
// caller-owned PRNG.
func (e *Engine) ReleasePlan(n int, alphas []*big.Rat) (*release.Plan, error) {
	parts := make([]string, len(alphas))
	for i, a := range alphas {
		if err := checkRat(fmt.Sprintf("level %d", i+1), a); err != nil {
			return nil, err
		}
		parts[i] = ratKey(a)
	}
	key := fmt.Sprintf("n=%d|a=%s", n, strings.Join(parts, ","))
	return getTyped(e.plans, key, func() (*release.Plan, error) {
		return release.NewPlan(n, alphas)
	})
}

// TailoredMechanism solves (once per key) the §2.5 LP: the optimal
// α-DP mechanism for consumer c on {0..n}. The returned Tailored is
// shared between callers and must be treated as read-only.
func (e *Engine) TailoredMechanism(c *consumer.Consumer, n int, alpha *big.Rat) (*consumer.Tailored, error) {
	if err := checkRat("alpha", alpha); err != nil {
		return nil, err
	}
	ck, err := consumerKey(c, n)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("n=%d|a=%s|%s", n, ratKey(alpha), ck)
	return getTyped(e.tailored, key, func() (*consumer.Tailored, error) {
		return consumer.OptimalMechanism(c, n, alpha)
	})
}

// OptimalInteraction solves (once per key) the §2.4.3 LP: consumer
// c's optimal post-processing of the deployed geometric mechanism
// G_{n,α}. By Theorem 1 its Loss equals the tailored optimum, so a
// warm engine can answer "what does consumer c lose at level α?"
// from cache along either route. The returned Interaction is shared
// and must be treated as read-only.
func (e *Engine) OptimalInteraction(c *consumer.Consumer, n int, alpha *big.Rat) (*consumer.Interaction, error) {
	if err := checkRat("alpha", alpha); err != nil {
		return nil, err
	}
	ck, err := consumerKey(c, n)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("n=%d|a=%s|%s", n, ratKey(alpha), ck)
	return getTyped(e.interactions, key, func() (*consumer.Interaction, error) {
		deployed, err := e.Geometric(n, alpha)
		if err != nil {
			return nil, err
		}
		return consumer.OptimalInteraction(c, deployed)
	})
}

// Metrics snapshots the engine's counters (see Metrics for the JSON
// shape).
func (e *Engine) Metrics() Metrics {
	return Metrics{
		Mechanisms:   e.mechanisms.stats(),
		Inverses:     e.inverses.stats(),
		Transitions:  e.transitions.stats(),
		Plans:        e.plans.stats(),
		Tailored:     e.tailored.stats(),
		Interactions: e.interactions.stats(),
		Samplers:     e.samplers.stats(),
		SamplerDraws: e.samplerDraws.Load(),
	}
}
