// Parallel throughput benchmarks for the serving engine. These back
// the subsystem's claim: the artifact cache turns repeat LP solves
// and mechanism constructions into lookups. Compare
// BenchmarkEngineTailoredCached against
// BenchmarkEngineTailoredUncached (the raw §2.5 solve) — the gap is
// several orders of magnitude. scripts/check.sh runs every Engine
// benchmark once as a compile-and-smoke gate.
package engine

import (
	"testing"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/rational"
)

func BenchmarkEngineTailoredCached(b *testing.B) {
	e := New(Config{})
	a := rational.MustParse("1/2")
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	if _, err := e.TailoredMechanism(c, 8, a); err != nil { // warm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.TailoredMechanism(c, 8, a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEngineTailoredUncached(b *testing.B) {
	a := rational.MustParse("1/2")
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := consumer.OptimalMechanism(c, 8, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineGeometricCached(b *testing.B) {
	e := New(Config{})
	a := rational.MustParse("1/2")
	if _, err := e.Geometric(64, a); err != nil { // warm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Geometric(64, a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEngineSamplerParallel(b *testing.B) {
	e := New(Config{})
	s, err := e.GeometricSampler(64, rational.MustParse("1/2"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = s.Sample(32)
		}
	})
}

// BenchmarkEngineSamplerVsCDF quantifies the alias-table win over the
// exact inverse-CDF walk used by mechanism.Sample (O(1) vs O(n) per
// draw, plus no per-call PRNG contention).
func BenchmarkEngineSamplerVsCDF(b *testing.B) {
	e := New(Config{})
	a := rational.MustParse("1/2")
	s, err := e.GeometricSampler(64, a)
	if err != nil {
		b.Fatal(err)
	}
	g, err := e.Geometric(64, a)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("alias-pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Sample(32)
		}
	})
	b.Run("exact-cdf", func(b *testing.B) {
		rng := newRNGPool(1).get()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.Sample(32, rng)
		}
	})
}
