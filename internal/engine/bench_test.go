// Parallel throughput benchmarks for the serving engine. These back
// the subsystem's claim: the artifact cache turns repeat LP solves
// and mechanism constructions into lookups. Compare
// BenchmarkEngineTailoredCached against
// BenchmarkEngineTailoredUncached (the raw §2.5 solve) — the gap is
// several orders of magnitude. scripts/check.sh runs every Engine
// benchmark once as a compile-and-smoke gate.
package engine

import (
	"context"
	"os"
	"testing"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
)

func BenchmarkEngineTailoredCached(b *testing.B) {
	e := New(Config{})
	a := rational.MustParse("1/2")
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	if _, err := e.TailoredMechanism(c, 8, a); err != nil { // warm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.TailoredMechanism(c, 8, a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEngineTailoredUncached(b *testing.B) {
	a := rational.MustParse("1/2")
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := consumer.OptimalMechanism(c, 8, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTailoredUncachedN16 is the large-n cold solve the
// revised-simplex pipeline made servable (it exceeded the old
// full-tableau solver's practical range): the float-guided basis plus
// exact dual-simplex repair at n=16. Roughly 50× the n=8 cost — the
// scale BENCH_lp.json tracks so the large-n serving cap stays honest.
func BenchmarkEngineTailoredUncachedN16(b *testing.B) {
	a := rational.MustParse("1/2")
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := consumer.OptimalMechanism(c, 16, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTailoredUncachedN24 is the entry-growth wall the
// three-tier rational ladder (Small → Wide → big.Rat), Markowitz
// refactorization, and the float-side dual cleanup broke: before
// them, this cold solve spent ~20s in big.Rat allocation (≈2.1M big
// fallbacks); now it rides the machine-word tiers end to end.
// BENCH_lp.json pins it so the large-n regime stays honest.
func BenchmarkEngineTailoredUncachedN24(b *testing.B) {
	a := rational.MustParse("1/2")
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := consumer.OptimalMechanism(c, 24, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTailoredUncachedN32 probes the next scale step.
// Opt-in: minutes-scale before the Wide tier, so it stays out of the
// default suites and the regression gate.
//
//	BENCH_N32=1 go test -run='^$' -bench=UncachedN32 -benchtime=1x \
//	    -timeout=30m ./internal/engine
func BenchmarkEngineTailoredUncachedN32(b *testing.B) {
	if os.Getenv("BENCH_N32") == "" {
		b.Skip("opt-in: set BENCH_N32=1 and raise -timeout")
	}
	a := rational.MustParse("1/2")
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := consumer.OptimalMechanism(c, 32, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineGeometricCached(b *testing.B) {
	e := New(Config{})
	a := rational.MustParse("1/2")
	if _, err := e.Geometric(64, a); err != nil { // warm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Geometric(64, a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSampler compiles the standard benchmark sampler: G_{64,1/2},
// drawn at the central input 32.
func benchSampler(b *testing.B) *Sampler {
	b.Helper()
	s, err := New(Config{}).Sampler(context.Background(), SamplerSpec{N: 64, Alpha: rational.MustParse("1/2")})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkEngineSamplerSingle is the cached single-draw hot path:
// one shard pick, one PRNG word, one table compare. Target: ≤100ns
// and 0 allocs per op (ISSUE 5 acceptance criteria).
func BenchmarkEngineSamplerSingle(b *testing.B) {
	s := benchSampler(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(32)
	}
}

// BenchmarkEngineSamplerBatch drives SampleInto with a 1024-draw
// buffer; ns/op is per *batch*, so per-draw cost is ns/op ÷ 1024.
// This is the path behind /v1/sample?count=N.
func BenchmarkEngineSamplerBatch(b *testing.B) {
	s := benchSampler(b)
	dst := make([]int, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleInto(32, dst)
	}
}

// BenchmarkEngineSamplerParallel hammers single draws from all Ps at
// once; the sharded PRNGs and padded counters should keep per-draw
// cost flat (or falling) relative to the serial single-draw bench.
func BenchmarkEngineSamplerParallel(b *testing.B) {
	s := benchSampler(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = s.Sample(32)
		}
	})
}

// BenchmarkEngineSamplerBatchParallel is the serving worst case —
// every P streaming batches concurrently — and the headline
// throughput number (draws/s = 1024 × ops/s).
func BenchmarkEngineSamplerBatchParallel(b *testing.B) {
	s := benchSampler(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		dst := make([]int, 1024)
		for pb.Next() {
			s.SampleInto(32, dst)
		}
	})
}

// BenchmarkEngineSamplerVsCDF quantifies the dyadic alias win over
// the exact inverse-CDF walk used by mechanism.Sample (O(1) integer
// compare vs O(n) rational walk per draw).
func BenchmarkEngineSamplerVsCDF(b *testing.B) {
	e := New(Config{})
	a := rational.MustParse("1/2")
	s, err := e.Sampler(context.Background(), SamplerSpec{N: 64, Alpha: a})
	if err != nil {
		b.Fatal(err)
	}
	g, err := e.Geometric(64, a)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("alias-dyadic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Sample(32)
		}
	})
	b.Run("exact-cdf", func(b *testing.B) {
		rng := sample.NewRand(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.Sample(32, rng)
		}
	})
}

// BenchmarkEngineCompare measures the cached compare scorecard path —
// the POST /v1/compare hot path once the first request has paid for
// the nested LP solves. The warm request is a single cache probe on
// the compares class; the regression gate (BENCH_compare.json) pins
// it beside the other cached artifact reads.
func BenchmarkEngineCompare(b *testing.B) {
	e := New(Config{})
	spec := CompareSpec{
		N:     8,
		Alpha: rational.MustParse("1/2"),
		Model: &consumer.Consumer{Loss: loss.Absolute{}},
	}
	if _, err := e.Compare(spec); err != nil { // warm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Compare(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}
