package engine

import (
	"sync/atomic"
	"time"
)

// CacheStats is a point-in-time snapshot of one artifact cache.
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
}

// ArtifactStats aggregates the serving counters for one artifact
// class: how many times it was requested, how long the cache-miss
// computations took in total, and the cache behavior. Misses count
// actual computations, so under request coalescing N concurrent
// identical requests contribute N to Requests, 1 to Misses, and N−1
// to Coalesced.
type ArtifactStats struct {
	Requests     uint64     `json:"requests"`
	ComputeNanos uint64     `json:"compute_nanos"`
	Cache        CacheStats `json:"cache"`
}

// Metrics is the engine's expvar-style metrics surface: a plain
// struct that marshals directly to JSON. Counters are monotone over
// the engine's lifetime; snapshots are internally consistent per
// counter but not across counters (each is read atomically, the
// struct is not a transaction).
type Metrics struct {
	Mechanisms   ArtifactStats `json:"mechanisms"`
	Inverses     ArtifactStats `json:"inverses"`
	Transitions  ArtifactStats `json:"transitions"`
	Plans        ArtifactStats `json:"plans"`
	Tailored     ArtifactStats `json:"tailored"`
	Interactions ArtifactStats `json:"interactions"`
	Samplers     ArtifactStats `json:"samplers"`
	SamplerDraws uint64        `json:"sampler_draws"`
}

// store couples one artifact cache with a flight group and its
// counters. All engine artifact lookups go through getOrCompute.
type store struct {
	cache  *cache
	flight flightGroup

	requests     atomic.Uint64
	hits         atomic.Uint64
	misses       atomic.Uint64
	coalesced    atomic.Uint64
	evictions    atomic.Uint64
	computeNanos atomic.Uint64
}

func newStore(capacity int) *store {
	return &store{cache: newCache(capacity)}
}

// getOrCompute is the engine's core serving primitive: cache lookup,
// then coalesced compute-and-fill on miss. Errors are returned to
// every coalesced caller and never cached (the artifacts here are
// deterministic, so an error is a caller mistake — bad parameters —
// and retrying with the same key would fail identically anyway).
func (s *store) getOrCompute(key string, fn func() (any, error)) (any, error) {
	s.requests.Add(1)
	if v, ok := s.cache.get(key); ok {
		s.hits.Add(1)
		return v, nil
	}
	v, leader, err := s.flight.do(key, func() (any, error) {
		// Re-check under the flight: a previous leader may have
		// filled the cache between our lookup and joining the group.
		if v, ok := s.cache.get(key); ok {
			s.hits.Add(1)
			return v, nil
		}
		s.misses.Add(1)
		start := time.Now()
		v, err := fn()
		if err != nil {
			return nil, err
		}
		s.computeNanos.Add(uint64(time.Since(start).Nanoseconds()))
		s.evictions.Add(uint64(s.cache.put(key, v)))
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	if !leader {
		s.coalesced.Add(1)
	}
	return v, nil
}

// stats snapshots the store's counters.
func (s *store) stats() ArtifactStats {
	return ArtifactStats{
		Requests:     s.requests.Load(),
		ComputeNanos: s.computeNanos.Load(),
		Cache: CacheStats{
			Size:      s.cache.size(),
			Capacity:  s.cache.capacity,
			Hits:      s.hits.Load(),
			Misses:    s.misses.Load(),
			Coalesced: s.coalesced.Load(),
			Evictions: s.evictions.Load(),
		},
	}
}
