package engine

import (
	"context"
	"sync/atomic"
	"time"
)

// CacheStats is a point-in-time snapshot of one artifact cache.
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
}

// Latency histogram buckets: inclusive upper bounds in nanoseconds,
// one decade apart from 100µs to 10s, with a final unbounded bucket.
// The exact artifacts span nanosecond cache hits to minute-long LP
// solves, so decades resolve the shape without per-request cost.
const histBuckets = 7

var histBoundsNanos = [histBuckets - 1]uint64{
	100_000,        // 100µs
	1_000_000,      // 1ms
	10_000_000,     // 10ms
	100_000_000,    // 100ms
	1_000_000_000,  // 1s
	10_000_000_000, // 10s
}

// histogram is the live, atomically-updated bucket array.
type histogram struct {
	counts [histBuckets]atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	for i, bound := range histBoundsNanos {
		if ns <= bound {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[histBuckets-1].Add(1)
}

// LatencyHistogram is the JSON-marshalable snapshot of a histogram:
// Counts[i] observations fell at or below BoundsNanos[i]; the final
// count (len(BoundsNanos) == len(Counts)−1) is the unbounded
// overflow bucket.
type LatencyHistogram struct {
	BoundsNanos []uint64 `json:"bounds_nanos"`
	Counts      []uint64 `json:"counts"`
}

func (h *histogram) snapshot() LatencyHistogram {
	out := LatencyHistogram{
		BoundsNanos: histBoundsNanos[:],
		Counts:      make([]uint64, histBuckets),
	}
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}

// ArtifactStats aggregates the serving counters for one artifact
// class: how many times it was requested, how long the cache-miss
// computations took (total and as a latency histogram), how many
// requests were shed by the solve semaphore, and the cache behavior.
// Misses count actual computations, so under request coalescing N
// concurrent identical requests contribute N to Requests, 1 to
// Misses, and N−1 to Coalesced.
// StoreHits / StoreWrites / StoreErrors count the class's disk-store
// traffic (all zero unless Config.Store is set): misses served by a
// verified disk load instead of a computation, computed artifacts
// persisted back, and non-fatal load/decode/write failures.
type ArtifactStats struct {
	Requests       uint64           `json:"requests"`
	ComputeNanos   uint64           `json:"compute_nanos"`
	Shed           uint64           `json:"shed"`
	StoreHits      uint64           `json:"store_hits"`
	StoreWrites    uint64           `json:"store_writes"`
	StoreErrors    uint64           `json:"store_errors"`
	ComputeLatency LatencyHistogram `json:"compute_latency"`
	Cache          CacheStats       `json:"cache"`
}

// LPSolveStats aggregates the float-guided exact LP solver's behavior
// across every solve the engine ran (tailored and interaction classes
// combined). Exactly one of the three path counters advances per
// solve: a hit means the float-located basis was certified optimal
// and unique with zero exact pivots; a resume means exact pivoting
// continued from that basis; a fallback means the full exact
// two-phase simplex ran from scratch (float failure, infeasible or
// unbounded verdicts, or a tied optimum — see lp.SolveStats).
// Solves counts LP solver invocations (successful or not) across the
// engine's lifetime; a warm boot that answers every request from the
// disk store reports Solves == 0, which is exactly what the restart
// smoke asserts.
type LPSolveStats struct {
	Solves           uint64 `json:"solves"`
	WarmStartHits    uint64 `json:"warm_start_hits"`
	CrossoverResumes uint64 `json:"crossover_resumes"`
	Fallbacks        uint64 `json:"fallbacks"`
	FloatPivots      uint64 `json:"float_pivots"`
	ExactPivots      uint64 `json:"exact_pivots"`
	RevisedPivots    uint64 `json:"revised_pivots"`
	ParallelPivots   uint64 `json:"parallel_pivots"`

	// Hybrid-kernel tier split for the sparse LU / revised-simplex
	// path: exact rational operations served by the int64
	// rational.Small fast path, by the 128-bit rational.Wide tier, and
	// demoted all the way to big.Rat. (SmallOps+WideOps)/(SmallOps+
	// WideOps+BigFallbacks) is the fleet-wide allocation-free hit rate.
	SmallOps     uint64 `json:"small_ops"`
	WideOps      uint64 `json:"wide_ops"`
	BigFallbacks uint64 `json:"big_fallbacks"`

	// Basis refactorizations during revised pivoting, with the subset
	// forced by the eta-chain entry-magnitude trigger rather than the
	// pivot-count backstop (lp/revised.go: needsRefactor).
	Refactorizations   uint64 `json:"refactorizations"`
	MagnitudeRefactors uint64 `json:"magnitude_refactors"`

	// Presolve reductions applied before solves: constraint rows and
	// variables eliminated exactly (lp/presolve.go).
	PresolveRows uint64 `json:"presolve_rows_removed"`
	PresolveCols uint64 `json:"presolve_cols_removed"`
}

// lpCounters is the live, atomically-updated form of LPSolveStats.
type lpCounters struct {
	solves           atomic.Uint64
	warmStartHits    atomic.Uint64
	crossoverResumes atomic.Uint64
	fallbacks        atomic.Uint64
	floatPivots      atomic.Uint64
	exactPivots      atomic.Uint64
	revisedPivots    atomic.Uint64
	parallelPivots   atomic.Uint64
	smallOps         atomic.Uint64
	wideOps          atomic.Uint64
	bigFallbacks     atomic.Uint64
	refactorizations atomic.Uint64
	magnitudeRefacts atomic.Uint64
	presolveRows     atomic.Uint64
	presolveCols     atomic.Uint64
}

func (c *lpCounters) snapshot() LPSolveStats {
	return LPSolveStats{
		Solves:             c.solves.Load(),
		WarmStartHits:      c.warmStartHits.Load(),
		CrossoverResumes:   c.crossoverResumes.Load(),
		Fallbacks:          c.fallbacks.Load(),
		FloatPivots:        c.floatPivots.Load(),
		ExactPivots:        c.exactPivots.Load(),
		RevisedPivots:      c.revisedPivots.Load(),
		ParallelPivots:     c.parallelPivots.Load(),
		SmallOps:           c.smallOps.Load(),
		WideOps:            c.wideOps.Load(),
		BigFallbacks:       c.bigFallbacks.Load(),
		Refactorizations:   c.refactorizations.Load(),
		MagnitudeRefactors: c.magnitudeRefacts.Load(),
		PresolveRows:       c.presolveRows.Load(),
		PresolveCols:       c.presolveCols.Load(),
	}
}

// Metrics is the engine's expvar-style metrics surface: a plain
// struct that marshals directly to JSON. Counters are monotone over
// the engine's lifetime (InFlightSolves is the one gauge); snapshots
// are internally consistent per counter but not across counters (each
// is read atomically, the struct is not a transaction).
type Metrics struct {
	Mechanisms   ArtifactStats `json:"mechanisms"`
	Inverses     ArtifactStats `json:"inverses"`
	Transitions  ArtifactStats `json:"transitions"`
	Plans        ArtifactStats `json:"plans"`
	Tailored     ArtifactStats `json:"tailored"`
	Interactions ArtifactStats `json:"interactions"`
	Compares     ArtifactStats `json:"compares"`
	Samplers     ArtifactStats `json:"samplers"`
	// SamplerDraws counts individual draws across every sampler the
	// engine compiled; SamplerBatches counts batch-API calls
	// (SampleInto/SampleN), and SamplerBatchSizes is the distribution
	// of draws per batch call. Both are summed over the sampler shards.
	SamplerDraws      uint64             `json:"sampler_draws"`
	SamplerBatches    uint64             `json:"sampler_batches"`
	SamplerBatchSizes BatchSizeHistogram `json:"sampler_batch_sizes"`
	InFlightSolves    int                `json:"in_flight_solves"`
	LP                LPSolveStats       `json:"lp"`
}

// solveSem is the engine-wide bound on concurrently running LP
// solves. Admission is non-blocking by design: a request that cannot
// get a slot is shed immediately (ErrSaturated) rather than queued,
// so overload surfaces as fast 429s at the HTTP layer instead of a
// growing convoy of multi-second solves.
type solveSem struct {
	slots chan struct{}
}

func newSolveSem(capacity int) *solveSem {
	return &solveSem{slots: make(chan struct{}, capacity)}
}

func (s *solveSem) tryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *solveSem) release() { <-s.slots }

func (s *solveSem) inFlight() int {
	if s == nil {
		return 0
	}
	return len(s.slots)
}

// store couples one artifact cache with a flight group and its
// counters. All engine artifact access goes through the lookup
// (hit) / compute (miss) pair.
type store struct {
	name   string // artifact class, used in trace events
	cache  *cache
	flight flightGroup
	trace  TraceFunc    // nil = tracing off
	sem    *solveSem    // nil = this class is never shed
	disk   *diskBinding // nil = this class is not persisted

	requests     atomic.Uint64
	hits         atomic.Uint64
	misses       atomic.Uint64
	coalesced    atomic.Uint64
	evictions    atomic.Uint64
	shed         atomic.Uint64
	storeHits    atomic.Uint64
	storeWrites  atomic.Uint64
	storeErrors  atomic.Uint64
	computeNanos atomic.Uint64
	hist         histogram
}

func newStore(name string, capacity int) *store {
	return &store{name: name, cache: newCache(capacity)}
}

// emit sends a bare span event to the trace hook, if any. The nil
// check keeps the traced-off fast path to a single branch.
func (s *store) emit(kind TraceKind, key string) {
	if s.trace != nil {
		s.trace(TraceEvent{Artifact: s.name, Key: key, Kind: kind})
	}
}

func (s *store) emitDone(key string, d time.Duration, err error) {
	if s.trace != nil {
		s.trace(TraceEvent{Artifact: s.name, Key: key, Kind: TraceSolveDone, Duration: d, Err: err})
	}
}

// lookup is the hit path of the lookup/compute pair: a
// counter-counted cache probe under ctx. It owns the requests
// counter, so every compute call must be preceded by a lookup miss.
// It exists separately from compute so engine methods can probe
// before constructing their compute closures: the miss path's
// closures escape to the solve goroutine and are therefore
// heap-allocated at the point they are built, and building them
// eagerly would charge two allocations to every nanosecond cache hit.
func (s *store) lookup(ctx context.Context, key string) (any, bool, error) {
	s.requests.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	if v, ok := s.cache.get(key); ok {
		s.hits.Add(1)
		s.emit(TraceHit, key)
		return v, true, nil
	}
	return nil, false, nil
}

// compute is the miss path of the lookup/compute pair: coalesced
// compute-and-fill under ctx. The caller must have just missed in
// lookup (which counted the request).
//
// Cancellation semantics: a caller whose ctx is canceled gets
// ctx.Err() back promptly — before any work if already canceled, or
// by detaching from the in-flight computation otherwise (see
// flightGroup). The computation itself is canceled only when every
// caller has detached.
//
// Nothing canceled or errored ever enters the cache: fn errors
// (including ctx.Err() from an abandoned solve) skip the cache fill,
// and a computation that completes after all its waiters left is
// discarded by the explicit computation-context check. Errors are
// returned to every coalesced caller (deterministic artifacts mean a
// parameter error would fail identically on retry anyway).
func (s *store) compute(ctx context.Context, key string, fn func(context.Context) (any, error)) (any, error) {
	v, started, err := s.flight.do(ctx, key, func(solveCtx context.Context) (any, error) {
		// Re-check under the flight: a previous computation may have
		// filled the cache between our lookup and registering.
		if v, ok := s.cache.get(key); ok {
			s.hits.Add(1)
			s.emit(TraceHit, key)
			return v, nil
		}
		s.misses.Add(1)
		s.emit(TraceMiss, key)
		// Disk probe between the in-memory miss and the solve: a
		// verified load replaces the computation entirely, so it is
		// never shed (no solve slot is needed) and records no solve
		// latency. Load failures of any kind degrade to a normal miss.
		if s.disk != nil {
			if v, ok := s.diskLoad(key); ok {
				s.evictions.Add(uint64(s.cache.put(key, v)))
				return v, nil
			}
		}
		if s.sem != nil {
			if !s.sem.tryAcquire() {
				s.shed.Add(1)
				s.emit(TraceShed, key)
				return nil, ErrSaturated
			}
			defer s.sem.release()
		}
		s.emit(TraceSolveStart, key)
		start := time.Now()
		v, err := fn(solveCtx)
		elapsed := time.Since(start)
		if err == nil {
			// A solve abandoned by every waiter may still race to a
			// result; the computation context is canceled in that case,
			// and its result must not enter the cache.
			err = solveCtx.Err()
		}
		s.emitDone(key, elapsed, err)
		if err != nil {
			return nil, err
		}
		s.computeNanos.Add(uint64(elapsed.Nanoseconds()))
		s.hist.observe(elapsed)
		s.evictions.Add(uint64(s.cache.put(key, v)))
		if s.disk != nil {
			s.diskSave(key, v)
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	if !started {
		s.coalesced.Add(1)
		s.emit(TraceCoalesced, key)
	}
	return v, nil
}

// stats snapshots the store's counters.
func (s *store) stats() ArtifactStats {
	return ArtifactStats{
		Requests:       s.requests.Load(),
		ComputeNanos:   s.computeNanos.Load(),
		Shed:           s.shed.Load(),
		StoreHits:      s.storeHits.Load(),
		StoreWrites:    s.storeWrites.Load(),
		StoreErrors:    s.storeErrors.Load(),
		ComputeLatency: s.hist.snapshot(),
		Cache: CacheStats{
			Size:      s.cache.size(),
			Capacity:  s.cache.capacity,
			Hits:      s.hits.Load(),
			Misses:    s.misses.Load(),
			Coalesced: s.coalesced.Load(),
			Evictions: s.evictions.Load(),
		},
	}
}
