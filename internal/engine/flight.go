package engine

import "sync"

// flightGroup coalesces concurrent computations of the same key:
// while one goroutine (the leader) runs the compute function, every
// other goroutine asking for the same key blocks until the leader
// finishes and then shares its result. This is the classic
// "singleflight" pattern, implemented in-package because the module
// is stdlib-only.
//
// Results are not retained after the leader returns — long-term
// storage is the cache's job; the flight group only spans the window
// in which duplicate work could start.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// do runs fn once per key per in-flight window. The returned leader
// flag reports whether this goroutine ran fn itself (true) or was
// coalesced onto another goroutine's call (false).
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, leader bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, false, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	close(c.done)

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	return c.val, true, c.err
}
