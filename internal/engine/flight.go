package engine

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent computations of the same key:
// while one computation runs, every goroutine asking for the same key
// waits for it and shares its result. This is the classic
// "singleflight" pattern, implemented in-package because the module
// is stdlib-only — with one serving-grade refinement: the computation
// runs on its own goroutine under a context that is canceled only
// when *every* waiter has gone away.
//
// That detachment gives the cancellation semantics the serving layer
// needs:
//
//   - a waiter whose own ctx is canceled returns ctx.Err()
//     immediately, without killing the shared computation for the
//     waiters that remain;
//   - when the last waiter detaches, the computation's context is
//     canceled, so a solve nobody wants anymore aborts at its next
//     cancellation checkpoint instead of burning CPU to fill a cache
//     entry nobody asked to keep;
//   - an abandoned call is retired from the group immediately, so the
//     next request for the key starts a fresh computation rather than
//     joining a dying one.
//
// Results are not retained after the call completes — long-term
// storage is the cache's job; the flight group only spans the window
// in which duplicate work could start.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	val     any
	err     error
	waiters int                // guarded by flightGroup.mu
	cancel  context.CancelFunc // cancels the computation's context
}

// do returns the shared result for key, running fn at most once per
// in-flight window. fn receives the detached computation context
// described on flightGroup. The returned started flag reports whether
// this call began the computation (true) or was coalesced onto one
// already in flight (false).
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) (any, error)) (val any, started bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		return g.wait(ctx, key, c, false)
	}
	solveCtx, cancel := context.WithCancel(context.Background())
	c := &flightCall{done: make(chan struct{}), cancel: cancel, waiters: 1}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		c.val, c.err = fn(solveCtx)
		close(c.done)
		cancel()
		g.mu.Lock()
		// The call may already have been retired by the last waiter
		// detaching (and a fresh call registered since); only remove
		// our own entry.
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
	}()
	return g.wait(ctx, key, c, true)
}

// wait blocks until the call completes or ctx is canceled. The last
// waiter to detach cancels the computation and retires the call so a
// later request for the key starts fresh.
func (g *flightGroup) wait(ctx context.Context, key string, c *flightCall, started bool) (any, bool, error) {
	select {
	case <-c.done:
		return c.val, started, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			c.cancel()
			if g.calls[key] == c {
				delete(g.calls, key)
			}
		}
		g.mu.Unlock()
		return nil, started, ctx.Err()
	}
}
