package engine

import (
	"context"
	"errors"
	"math/big"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/loss"
)

// --- flightGroup unit tests ----------------------------------------------
//
// These drive the group with hand-built fns blocking on channels, so
// every interleaving the engine relies on is forced deterministically
// rather than raced against real LP solve times.

// TestFlightDetachedWaiterDoesNotKillSolve: two waiters share a
// computation; the one that cancels detaches with its own ctx.Err()
// while the computation keeps running for the survivor.
func TestFlightDetachedWaiterDoesNotKillSolve(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(solveCtx context.Context) (any, error) {
		close(started)
		select {
		case <-release:
			return "result", nil
		case <-solveCtx.Done():
			return nil, solveCtx.Err()
		}
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	type res struct {
		val     any
		started bool
		err     error
	}
	ch1 := make(chan res, 1)
	go func() {
		v, s, err := g.do(ctx1, "k", fn)
		ch1 <- res{v, s, err}
	}()
	<-started

	ch2 := make(chan res, 1)
	go func() {
		v, s, err := g.do(context.Background(), "k", fn)
		ch2 <- res{v, s, err}
	}()
	// Wait for the second caller to register as a waiter before
	// detaching the first, so cancel1 cannot be the last waiter.
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		c := g.calls["k"]
		return c != nil && c.waiters == 2
	})

	cancel1()
	r1 := <-ch1
	if !errors.Is(r1.err, context.Canceled) {
		t.Fatalf("detached waiter err = %v, want context.Canceled", r1.err)
	}

	close(release)
	r2 := <-ch2
	if r2.err != nil || r2.val != "result" {
		t.Fatalf("surviving waiter = (%v, %v), want (result, nil)", r2.val, r2.err)
	}
	if r2.started {
		t.Error("second caller reported started=true, want coalesced")
	}
}

// TestFlightLastWaiterCancelsSolve: when every waiter detaches, the
// computation's context is canceled and the call is retired, so the
// next request starts a fresh computation.
func TestFlightLastWaiterCancelsSolve(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	solveCanceled := make(chan struct{})
	fn := func(solveCtx context.Context) (any, error) {
		close(started)
		<-solveCtx.Done()
		close(solveCanceled)
		return nil, solveCtx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := g.do(ctx, "k", fn)
		errCh <- err
	}()
	<-started
	cancel()

	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("sole waiter err = %v, want context.Canceled", err)
	}
	select {
	case <-solveCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("computation context was not canceled after last waiter detached")
	}

	// The abandoned call must be retired: a fresh request starts anew.
	v, startedFresh, err := g.do(context.Background(), "k",
		func(context.Context) (any, error) { return "fresh", nil })
	if err != nil || v != "fresh" || !startedFresh {
		t.Fatalf("post-abandon do = (%v, %v, %v), want (fresh, true, nil)", v, startedFresh, err)
	}
}

// --- engine-level cancellation -------------------------------------------

func absConsumer() *consumer.Consumer {
	return &consumer.Consumer{Name: "test", Loss: loss.Absolute{}}
}

// traceCancel cancels the context whose cancel func is currently
// armed, exactly once, when a solve-start event for the artifact
// class fires. Arming from the test goroutine before the engine call
// and firing from the solve goroutine is race-free: the solve
// goroutine is (transitively) spawned by the engine call.
//
// When holdSolve is non-nil the hook then blocks the solve goroutine
// on it. Closing the channel after the engine call has returned
// guarantees the solve starts only after the last waiter detached —
// i.e. with its computation context already canceled. Without the
// hold the warm-started LP path can finish in microseconds, racing
// the detach and turning the never-cache-canceled assertion flaky.
type traceCancel struct {
	armed     atomic.Pointer[context.CancelFunc]
	holdSolve chan struct{}
}

func (tc *traceCancel) hook(ev TraceEvent) {
	if ev.Kind != TraceSolveStart {
		return
	}
	if cancel := tc.armed.Swap(nil); cancel != nil {
		(*cancel)()
		if tc.holdSolve != nil {
			<-tc.holdSolve
		}
	}
}

// TestTailoredCtxCanceledNotCachedThenRecomputes is the tentpole
// contract: a solve canceled mid-flight returns context.Canceled,
// leaves nothing in the cache, and the next request for the same key
// recomputes from scratch (one more miss).
func TestTailoredCtxCanceledNotCachedThenRecomputes(t *testing.T) {
	tc := &traceCancel{holdSolve: make(chan struct{})}
	e := New(Config{Trace: tc.hook})
	c := absConsumer()
	alpha := big.NewRat(1, 2)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tc.armed.Store(&cancel)

	if _, err := e.TailoredCtx(ctx, c, 6, alpha); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled TailoredCtx err = %v, want context.Canceled", err)
	}
	// TailoredCtx returning means the last waiter detached, which
	// cancels the computation context; only now let the solve proceed,
	// so it deterministically observes cancellation.
	close(tc.holdSolve)
	m := e.Metrics().Tailored
	if m.Cache.Size != 0 {
		t.Fatalf("canceled solve was cached: size = %d, want 0", m.Cache.Size)
	}
	if m.Cache.Misses != 1 {
		t.Fatalf("misses = %d, want 1", m.Cache.Misses)
	}

	// Same key again, uncanceled: must recompute (miss +1) and succeed.
	got, err := e.TailoredCtx(context.Background(), c, 6, alpha)
	if err != nil {
		t.Fatalf("recompute after cancel: %v", err)
	}
	if got == nil || got.Loss == nil {
		t.Fatal("recompute returned empty result")
	}
	m = e.Metrics().Tailored
	if m.Cache.Misses != 2 {
		t.Errorf("misses after recompute = %d, want 2", m.Cache.Misses)
	}
	if m.Cache.Size != 1 {
		t.Errorf("cache size after recompute = %d, want 1", m.Cache.Size)
	}
}

// TestTailoredCtxCancelAbortsLargeSolvePromptly asserts the pivot
// checkpoints actually bite: n=14 solves in minutes uncanceled, but a
// cancel landing at solve start must return well under that.
func TestTailoredCtxCancelAbortsLargeSolvePromptly(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n solve abort test skipped in -short mode")
	}
	tc := &traceCancel{}
	e := New(Config{Trace: tc.hook})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tc.armed.Store(&cancel)

	start := time.Now()
	_, err := e.TailoredCtx(ctx, absConsumer(), 14, big.NewRat(1, 2))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Uncanceled n=14 takes ~90s on CI-class hardware; the abort must
	// land orders of magnitude sooner (LP construction + one pivot).
	if elapsed > 30*time.Second {
		t.Errorf("canceled solve took %v, want prompt abort", elapsed)
	}
	if size := e.Metrics().Tailored.Cache.Size; size != 0 {
		t.Errorf("canceled large solve was cached: size = %d", size)
	}
}

// TestPreCanceledCtxShortCircuits: an already-canceled context never
// reaches the miss path.
func TestPreCanceledCtxShortCircuits(t *testing.T) {
	e := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.TailoredCtx(ctx, absConsumer(), 6, big.NewRat(1, 2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	m := e.Metrics().Tailored
	if m.Cache.Misses != 0 {
		t.Errorf("pre-canceled request counted a miss: %d", m.Cache.Misses)
	}
	if m.Requests != 1 {
		t.Errorf("requests = %d, want 1", m.Requests)
	}
}

// --- load shedding --------------------------------------------------------

// TestEngineShedsWhenSaturated: with a single solve slot occupied, a
// second solve for a different key fails fast with ErrSaturated and
// is counted, while the occupant is undisturbed.
func TestEngineShedsWhenSaturated(t *testing.T) {
	solveStarted := make(chan struct{}, 1)
	e := New(Config{
		MaxInFlightSolves: 1,
		Trace: func(ev TraceEvent) {
			if ev.Kind == TraceSolveStart && ev.Artifact == "tailored" {
				select {
				case solveStarted <- struct{}{}:
				default:
				}
			}
		},
	})
	c := absConsumer()

	// Occupy the only slot with a large solve we can abort afterward.
	occCtx, occCancel := context.WithCancel(context.Background())
	occDone := make(chan error, 1)
	go func() {
		_, err := e.TailoredCtx(occCtx, c, 14, big.NewRat(1, 2))
		occDone <- err
	}()
	select {
	case <-solveStarted:
	case <-time.After(30 * time.Second):
		occCancel()
		t.Fatal("occupying solve never started")
	}

	start := time.Now()
	_, err := e.TailoredCtx(context.Background(), c, 6, big.NewRat(2, 3))
	if !errors.Is(err, ErrSaturated) {
		occCancel()
		t.Fatalf("saturated TailoredCtx err = %v, want ErrSaturated", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("shed took %v, want fast-fail", elapsed)
	}
	m := e.Metrics()
	if m.Tailored.Shed != 1 {
		t.Errorf("shed count = %d, want 1", m.Tailored.Shed)
	}
	if m.InFlightSolves != 1 {
		t.Errorf("in-flight solves = %d, want 1", m.InFlightSolves)
	}

	occCancel()
	if err := <-occDone; !errors.Is(err, context.Canceled) {
		t.Errorf("occupying solve err = %v, want context.Canceled", err)
	}
	waitFor(t, func() bool { return e.Metrics().InFlightSolves == 0 })
}

// TestUnlimitedSolvesDisablesShedding: negative MaxInFlightSolves
// removes the semaphore entirely.
func TestUnlimitedSolvesDisablesShedding(t *testing.T) {
	e := New(Config{MaxInFlightSolves: -1})
	if e.solves != nil {
		t.Fatal("negative MaxInFlightSolves still built a semaphore")
	}
	if _, err := e.TailoredMechanism(absConsumer(), 6, big.NewRat(1, 2)); err != nil {
		t.Fatal(err)
	}
	if m := e.Metrics(); m.InFlightSolves != 0 {
		t.Errorf("in-flight solves = %d, want 0", m.InFlightSolves)
	}
}

// --- observability --------------------------------------------------------

// TestLatencyHistogramRecordsSolves: a completed solve lands in
// exactly one histogram bucket; shape matches the JSON contract.
func TestLatencyHistogramRecordsSolves(t *testing.T) {
	e := New(Config{})
	if _, err := e.TailoredMechanism(absConsumer(), 6, big.NewRat(1, 2)); err != nil {
		t.Fatal(err)
	}
	h := e.Metrics().Tailored.ComputeLatency
	if len(h.Counts) != histBuckets || len(h.BoundsNanos) != histBuckets-1 {
		t.Fatalf("histogram shape = %d counts / %d bounds, want %d/%d",
			len(h.Counts), len(h.BoundsNanos), histBuckets, histBuckets-1)
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total != 1 {
		t.Errorf("histogram total = %d, want 1 observation", total)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	var h histogram
	h.observe(50 * time.Microsecond)  // bucket 0 (≤100µs)
	h.observe(100 * time.Microsecond) // bucket 0 (inclusive bound)
	h.observe(5 * time.Millisecond)   // bucket 2 (≤10ms)
	h.observe(time.Minute)            // overflow bucket
	s := h.snapshot()
	want := []uint64{2, 0, 1, 0, 0, 0, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (full: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
}

// TestTraceEventSequence: cold then warm requests emit
// miss → solve-start → solve-done, then hit.
func TestTraceEventSequence(t *testing.T) {
	var mu sync.Mutex
	var kinds []TraceKind
	e := New(Config{Trace: func(ev TraceEvent) {
		if ev.Artifact != "mechanisms" {
			return
		}
		mu.Lock()
		kinds = append(kinds, ev.Kind)
		mu.Unlock()
	}})
	if _, err := e.Geometric(8, big.NewRat(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Geometric(8, big.NewRat(1, 2)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []TraceKind{TraceMiss, TraceSolveStart, TraceSolveDone, TraceHit}
	if len(kinds) != len(want) {
		t.Fatalf("trace kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trace kinds = %v, want %v", kinds, want)
		}
	}
}

// --- unified sampler ------------------------------------------------------

func TestSamplerSpecGeometricCached(t *testing.T) {
	e := New(Config{})
	s1, err := e.Sampler(context.Background(), SamplerSpec{N: 16, Alpha: big.NewRat(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if s1.N() != 16 {
		t.Fatalf("N = %d, want 16", s1.N())
	}
	// A second spec with equal parameters must hit the same cache entry.
	s2, err := e.Sampler(context.Background(), SamplerSpec{N: 16, Alpha: big.NewRat(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("equal SamplerSpec did not share the cache entry")
	}
	if hits := e.Metrics().Samplers.Cache.Hits; hits != 1 {
		t.Errorf("sampler cache hits = %d, want 1", hits)
	}
}

func TestSamplerSpecMechanismUncached(t *testing.T) {
	e := New(Config{})
	g, err := e.Geometric(8, big.NewRat(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Sampler(context.Background(), SamplerSpec{Mechanism: g})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Sample(3); r < 0 || r > 8 {
		t.Errorf("sample %d out of range [0,8]", r)
	}
}

func TestSamplerSpecValidation(t *testing.T) {
	e := New(Config{})
	g, err := e.Geometric(4, big.NewRat(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sampler(context.Background(), SamplerSpec{Mechanism: g, Alpha: big.NewRat(1, 2)}); err == nil {
		t.Error("SamplerSpec with both Mechanism and Alpha accepted")
	}
	if _, err := e.Sampler(context.Background(), SamplerSpec{N: 4}); err == nil {
		t.Error("SamplerSpec with neither Mechanism nor Alpha accepted")
	}
}

// --- helpers --------------------------------------------------------------

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 10s")
}

// --- LP domain cap --------------------------------------------------------

// TestLPDomainCap: every LP-backed route fails fast with
// ErrDomainTooLarge above Config.MaxLPDomainN, a negative cap
// disables the guard, and the non-LP routes are unaffected.
func TestLPDomainCap(t *testing.T) {
	e := New(Config{MaxLPDomainN: 4})
	c := absConsumer()
	half := big.NewRat(1, 2)

	if _, err := e.TailoredCtx(context.Background(), c, 5, half); !errors.Is(err, ErrDomainTooLarge) {
		t.Errorf("TailoredCtx(n=5) err = %v, want ErrDomainTooLarge", err)
	}
	if _, err := e.InteractionCtx(context.Background(), c, 5, half); !errors.Is(err, ErrDomainTooLarge) {
		t.Errorf("InteractionCtx(n=5) err = %v, want ErrDomainTooLarge", err)
	}
	if _, err := e.CompareCtx(context.Background(), CompareSpec{N: 5, Alpha: half, Model: c}); !errors.Is(err, ErrDomainTooLarge) {
		t.Errorf("CompareCtx(n=5) err = %v, want ErrDomainTooLarge", err)
	}
	if _, err := e.TailoredCtx(context.Background(), c, 4, half); err != nil {
		t.Errorf("TailoredCtx(n=4) under the cap failed: %v", err)
	}
	// Geometric is a matrix artifact, not LP-backed: no cap.
	if _, err := e.Geometric(5, half); err != nil {
		t.Errorf("Geometric(n=5) hit the LP cap: %v", err)
	}

	unguarded := New(Config{MaxLPDomainN: -1})
	if _, err := unguarded.TailoredCtx(context.Background(), c, 5, half); err != nil {
		t.Errorf("unguarded TailoredCtx(n=5) failed: %v", err)
	}
}
