// Per-shard sampler state. The engine's draw path used to borrow a
// *rand.Rand from a sync.Pool and bump one global atomic per draw;
// under parallel load both the pool bookkeeping and the shared
// counter cache line dominated the cost of the actual table lookup.
// This file replaces them with a fixed, GOMAXPROCS-sized array of
// shards, each owning a lock-free splitmix64 stream and its own draw
// counters, padded so no two shards share a cache line.

package engine

import (
	"runtime"
	"sync/atomic"
	"unsafe"

	"minimaxdp/internal/sample"
)

// samplerShard is one lane of the sampler substrate: a concurrent
// splitmix64 stream plus this lane's share of the draw/batch
// counters. The padding rounds the struct to 128 bytes (two cache
// lines on common hardware) so concurrent lanes never false-share.
type samplerShard struct {
	rng     sample.AtomicSplitmix
	draws   atomic.Uint64
	batches atomic.Uint64
	_       [104]byte
}

// shardSet is the engine-wide shard array. Its length is the power of
// two covering GOMAXPROCS at engine construction, so under full
// parallelism each P tends to get a lane to itself.
type shardSet struct {
	shards []samplerShard
	mask   uintptr
}

func newShardSet(seed int64) *shardSet {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	ss := &shardSet{shards: make([]samplerShard, n), mask: uintptr(n - 1)}
	for i := range ss.shards {
		// Stream k of the seed, matching the documented determinism
		// contract: a fixed Config.Seed fixes the *set* of streams;
		// which goroutine draws from which stream is scheduling- and
		// stack-layout-dependent, exactly as with the old PRNG pool.
		ss.shards[i].rng.SeedStream(seed, uint64(i))
	}
	return ss
}

// pick selects a shard for the calling goroutine without any shared
// write: it hashes the address of a stack variable. Distinct
// goroutines have distinct stacks (allocated ≥ 2 KiB apart), so the
// address bits above the frame spread goroutines across lanes; a
// goroutine keeps hitting the same lane for the duration of a call
// chain, which is all the affinity the sampler needs. Collisions are
// benign — every shard field is updated atomically — they only cost
// a little contention. The unsafe.Pointer→uintptr conversion is the
// legal direction (the result is used as an integer, never converted
// back to a pointer).
func (ss *shardSet) pick() *samplerShard {
	var marker byte
	addr := uintptr(unsafe.Pointer(&marker))
	return &ss.shards[(addr>>11)&ss.mask]
}

// draws sums the per-shard draw counters.
func (ss *shardSet) drawCount() uint64 {
	var total uint64
	for i := range ss.shards {
		total += ss.shards[i].draws.Load()
	}
	return total
}

// batchCount sums the per-shard batch counters (one per batch-API
// call, not per draw).
func (ss *shardSet) batchCount() uint64 {
	var total uint64
	for i := range ss.shards {
		total += ss.shards[i].batches.Load()
	}
	return total
}

// Batch-size histogram bucket bounds (inclusive upper bounds, in
// draws per batch call); the final bucket is unbounded. Powers of
// eight resolve the interesting range — single draws, small UI
// batches, and the /v1/sample cap — in five buckets.
var batchSizeBounds = [...]uint64{1, 8, 64, 512, 4096}

const batchSizeBuckets = len(batchSizeBounds) + 1

// batchHist is the live batch-size histogram, updated once per
// batch-API call (never per draw).
type batchHist struct {
	counts [batchSizeBuckets]atomic.Uint64
}

func (h *batchHist) observe(n int) {
	size := uint64(n)
	for i, bound := range batchSizeBounds {
		if size <= bound {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[batchSizeBuckets-1].Add(1)
}

// BatchSizeHistogram is the JSON snapshot of the batch-size
// distribution: Counts[i] batch calls drew at most Bounds[i] values;
// the final count is the unbounded overflow bucket.
type BatchSizeHistogram struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
}

func (h *batchHist) snapshot() BatchSizeHistogram {
	out := BatchSizeHistogram{
		Bounds: batchSizeBounds[:],
		Counts: make([]uint64, batchSizeBuckets),
	}
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}
