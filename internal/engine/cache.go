package engine

import (
	"sync"
	"sync/atomic"
)

// cache is a size-bounded, generation-stamped artifact cache. Every
// access stamps the entry with a fresh tick from a global logical
// clock; when an insert pushes the cache past capacity, the entry
// with the oldest stamp is evicted (least-recently-used, implemented
// as a linear scan — caches here hold at most a few hundred entries,
// so the scan is noise next to the artifact computations they avoid).
//
// Reads take only the RLock: the generation stamp lives in an atomic
// inside the entry so a hit never needs the write lock.
type cache struct {
	capacity int
	clock    atomic.Uint64

	mu      sync.RWMutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	val any
	gen atomic.Uint64
}

func newCache(capacity int) *cache {
	return &cache{capacity: capacity, entries: make(map[string]*cacheEntry)}
}

// get returns the cached value for key, refreshing its generation
// stamp so hot entries survive eviction.
func (c *cache) get(key string) (any, bool) {
	c.mu.RLock()
	e := c.entries[key]
	c.mu.RUnlock()
	if e == nil {
		return nil, false
	}
	e.gen.Store(c.clock.Add(1))
	return e.val, true
}

// put inserts key→val and returns how many entries were evicted to
// stay within capacity. If the key is already present the existing
// value is kept (first writer wins; artifacts are deterministic, so
// both values are equal anyway).
func (c *cache) put(key string, val any) (evicted int) {
	e := &cacheEntry{val: val}
	e.gen.Store(c.clock.Add(1))
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return 0
	}
	c.entries[key] = e
	for c.capacity > 0 && len(c.entries) > c.capacity {
		victim := ""
		var oldest uint64
		for k, cand := range c.entries {
			if k == key {
				continue // never evict the entry just inserted
			}
			if g := cand.gen.Load(); victim == "" || g < oldest {
				victim, oldest = k, g
			}
		}
		if victim == "" {
			break // capacity 1 and only the new entry present
		}
		delete(c.entries, victim)
		evicted++
	}
	return evicted
}

// size returns the current number of cached entries.
func (c *cache) size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
