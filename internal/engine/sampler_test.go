package engine

import (
	"context"
	"math"
	"sync"
	"testing"

	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
)

func TestGeometricSamplerDistribution(t *testing.T) {
	e := New(Config{Seed: 7})
	a := rational.MustParse("1/2")
	s, err := e.Sampler(context.Background(), SamplerSpec{N: 8, Alpha: a})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	const trials = 50000
	counts := make([]int, 9)
	for _, r := range s.SampleN(4, trials) {
		counts[r]++
	}
	pmf := sample.EmpiricalPMF(counts)
	g, err := e.Geometric(8, a)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r <= 8; r++ {
		want := rational.Float(g.Prob(4, r))
		if math.Abs(pmf[r]-want) > 0.01 {
			t.Errorf("Pr[release %d] = %.4f, want %.4f ± 0.01", r, pmf[r], want)
		}
	}
	if got := e.Metrics().SamplerDraws; got != trials {
		t.Errorf("sampler draws = %d, want %d", got, trials)
	}
}

func TestSamplerCachedPerKey(t *testing.T) {
	e := New(Config{})
	a := rational.MustParse("1/3")
	s1, err := e.Sampler(context.Background(), SamplerSpec{N: 6, Alpha: a})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.Sampler(context.Background(), SamplerSpec{N: 6, Alpha: a})
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("sampler not cached")
	}
	m := e.Metrics()
	if m.Samplers.Cache.Misses != 1 || m.Samplers.Cache.Hits != 1 {
		t.Errorf("sampler stats = %+v", m.Samplers)
	}
}

func TestSamplerConcurrentDraws(t *testing.T) {
	e := New(Config{Seed: 3})
	s, err := e.Sampler(context.Background(), SamplerSpec{N: 10, Alpha: rational.MustParse("2/3")})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 16, 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				r := s.Sample(w % 11)
				if r < 0 || r > 10 {
					t.Errorf("draw %d out of range", r)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := e.Metrics().SamplerDraws; got != workers*perWorker {
		t.Errorf("draws = %d, want %d", got, workers*perWorker)
	}
}

func TestSamplerBoundsPanics(t *testing.T) {
	e := New(Config{})
	s, err := e.Sampler(context.Background(), SamplerSpec{N: 4, Alpha: rational.MustParse("1/2")})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sample(%d) did not panic", bad)
				}
			}()
			s.Sample(bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative count did not panic")
			}
		}()
		s.SampleN(0, -1)
	}()
}

func TestMechanismSamplerArbitrary(t *testing.T) {
	e := New(Config{})
	g, err := e.Geometric(5, rational.MustParse("1/4"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Sampler(context.Background(), SamplerSpec{Mechanism: g})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Sample(2); r < 0 || r > 5 {
		t.Errorf("draw %d out of range", r)
	}
}

// TestSamplerBatchChiSquare drives the full engine batch path —
// sharded PRNG, block reservation, dyadic table — and checks the
// draws fit the exact rational PMF at the 10^−3 level. Together with
// the construction-time certificate (sample.NewDyadicAlias) and
// sample's own kernel-level chi-square test, this pins the engine
// wiring: if SampleInto mixed up rows, shards, or block iteration,
// the fit would collapse.
func TestSamplerBatchChiSquare(t *testing.T) {
	const n, trials = 12, 200000
	e := New(Config{Seed: 99})
	a := rational.MustParse("1/3")
	s, err := e.Sampler(context.Background(), SamplerSpec{N: n, Alpha: a})
	if err != nil {
		t.Fatal(err)
	}
	g, err := e.Geometric(n, a)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n+1)
	dst := make([]int, 1000)
	for batch := 0; batch < trials/len(dst); batch++ {
		s.SampleInto(3, dst)
		for _, r := range dst {
			counts[r]++
		}
	}
	expected := make([]float64, n+1)
	for r := 0; r <= n; r++ {
		expected[r] = rational.Float(g.Prob(3, r))
	}
	// Cells with expected count < 5 would break Pearson's
	// approximation; G_{12,1/3} at input 3 keeps every cell above
	// that with 200k trials except the far tail, which we pool.
	obs, exp := counts[:n], expected[:n]
	obs[n-1] += counts[n]
	exp[n-1] += expected[n]
	chi := 0.0
	for i := range obs {
		e := float64(trials) * exp[i]
		d := float64(obs[i]) - e
		chi += d * d / e
	}
	// 0.999 quantile of χ²(df=11) ≈ 31.3.
	if chi > 31.3 {
		t.Errorf("χ² = %.1f > 31.3 (df=%d): batch path does not fit exact PMF", chi, len(obs)-1)
	}
}

func TestSamplerBatchMetricsAndTrace(t *testing.T) {
	var mu sync.Mutex
	var batchEvents []TraceEvent
	e := New(Config{Trace: func(ev TraceEvent) {
		if ev.Kind == TraceSampleBatch {
			mu.Lock()
			batchEvents = append(batchEvents, ev)
			mu.Unlock()
		}
	}})
	s, err := e.Sampler(context.Background(), SamplerSpec{N: 6, Alpha: rational.MustParse("1/2")})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int, 100)
	s.SampleInto(2, dst)
	s.SampleInto(2, dst[:7])
	_ = s.SampleN(2, 3)
	s.SampleInto(2, nil) // empty batch: no draws, no batch count, no event
	_ = s.Sample(2)      // single draw: counts a draw, not a batch

	m := e.Metrics()
	if m.SamplerDraws != 100+7+3+1 {
		t.Errorf("draws = %d, want 111", m.SamplerDraws)
	}
	if m.SamplerBatches != 3 {
		t.Errorf("batches = %d, want 3", m.SamplerBatches)
	}
	var histTotal uint64
	for _, c := range m.SamplerBatchSizes.Counts {
		histTotal += c
	}
	if histTotal != 3 {
		t.Errorf("batch-size histogram total = %d, want 3", histTotal)
	}
	if len(m.SamplerBatchSizes.Bounds)+1 != len(m.SamplerBatchSizes.Counts) {
		t.Errorf("histogram shape: %d bounds, %d counts",
			len(m.SamplerBatchSizes.Bounds), len(m.SamplerBatchSizes.Counts))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batchEvents) != 3 {
		t.Fatalf("got %d sample-batch trace events, want 3", len(batchEvents))
	}
	sizes := map[int]bool{}
	for _, ev := range batchEvents {
		if ev.Artifact != "samplers" {
			t.Errorf("trace artifact = %q, want samplers", ev.Artifact)
		}
		sizes[ev.Draws] = true
	}
	for _, want := range []int{100, 7, 3} {
		if !sizes[want] {
			t.Errorf("no trace event with Draws=%d", want)
		}
	}
}

// TestSampleIntoZeroAlloc pins the zero-allocation contract of the
// hot path (the acceptance criterion behind the <100ns single-draw
// target: an allocation would dwarf the draw itself).
func TestSampleIntoZeroAlloc(t *testing.T) {
	s, err := New(Config{}).Sampler(context.Background(), SamplerSpec{N: 16, Alpha: rational.MustParse("1/2")})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int, 64)
	if avg := testing.AllocsPerRun(100, func() { s.SampleInto(5, dst) }); avg != 0 {
		t.Errorf("SampleInto allocates %.1f objects per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { _ = s.Sample(5) }); avg != 0 {
		t.Errorf("Sample allocates %.1f objects per call, want 0", avg)
	}
	// SampleN's contract is exactly one allocation: the result slice.
	if avg := testing.AllocsPerRun(100, func() { _ = s.SampleN(5, 64) }); avg != 1 {
		t.Errorf("SampleN allocates %.1f objects per call, want exactly 1", avg)
	}
}

// TestSamplerSeedDeterminism documents the determinism contract: a
// fixed Config.Seed fixes the set of shard streams, so a
// single-goroutine draw sequence is reproducible across engines with
// the same seed and GOMAXPROCS.
func TestSamplerSeedDeterminism(t *testing.T) {
	draw := func() []int {
		s, err := New(Config{Seed: 42}).Sampler(context.Background(), SamplerSpec{N: 8, Alpha: rational.MustParse("1/2")})
		if err != nil {
			t.Fatal(err)
		}
		return s.SampleN(4, 64)
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identically-seeded engines: %d vs %d", i, a[i], b[i])
		}
	}
}
