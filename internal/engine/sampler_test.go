package engine

import (
	"math"
	"sync"
	"testing"

	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
)

func TestGeometricSamplerDistribution(t *testing.T) {
	e := New(Config{Seed: 7})
	a := rational.MustParse("1/2")
	s, err := e.GeometricSampler(8, a)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	const trials = 50000
	counts := make([]int, 9)
	for _, r := range s.SampleN(4, trials) {
		counts[r]++
	}
	pmf := sample.EmpiricalPMF(counts)
	g, err := e.Geometric(8, a)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r <= 8; r++ {
		want := rational.Float(g.Prob(4, r))
		if math.Abs(pmf[r]-want) > 0.01 {
			t.Errorf("Pr[release %d] = %.4f, want %.4f ± 0.01", r, pmf[r], want)
		}
	}
	if got := e.Metrics().SamplerDraws; got != trials {
		t.Errorf("sampler draws = %d, want %d", got, trials)
	}
}

func TestSamplerCachedPerKey(t *testing.T) {
	e := New(Config{})
	a := rational.MustParse("1/3")
	s1, err := e.GeometricSampler(6, a)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.GeometricSampler(6, a)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("sampler not cached")
	}
	m := e.Metrics()
	if m.Samplers.Cache.Misses != 1 || m.Samplers.Cache.Hits != 1 {
		t.Errorf("sampler stats = %+v", m.Samplers)
	}
}

func TestSamplerConcurrentDraws(t *testing.T) {
	e := New(Config{Seed: 3})
	s, err := e.GeometricSampler(10, rational.MustParse("2/3"))
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 16, 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				r := s.Sample(w % 11)
				if r < 0 || r > 10 {
					t.Errorf("draw %d out of range", r)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := e.Metrics().SamplerDraws; got != workers*perWorker {
		t.Errorf("draws = %d, want %d", got, workers*perWorker)
	}
}

func TestSamplerBoundsPanics(t *testing.T) {
	e := New(Config{})
	s, err := e.GeometricSampler(4, rational.MustParse("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sample(%d) did not panic", bad)
				}
			}()
			s.Sample(bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative count did not panic")
			}
		}()
		s.SampleN(0, -1)
	}()
}

func TestMechanismSamplerArbitrary(t *testing.T) {
	e := New(Config{})
	g, err := e.Geometric(5, rational.MustParse("1/4"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.MechanismSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Sample(2); r < 0 || r > 5 {
		t.Errorf("draw %d out of range", r)
	}
}
