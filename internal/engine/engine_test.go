package engine

import (
	"math/big"
	"sync"
	"testing"
	"time"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
)

func rat(t testing.TB, s string) *big.Rat {
	t.Helper()
	return rational.MustParse(s)
}

func TestGeometricCachedAndShared(t *testing.T) {
	e := New(Config{})
	a := rat(t, "1/2")
	g1, err := e.Geometric(8, a)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := e.Geometric(8, a)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("second Geometric call did not return the cached instance")
	}
	// Non-lowest-terms alpha hits the same key.
	g3, err := e.Geometric(8, rat(t, "2/4"))
	if err != nil {
		t.Fatal(err)
	}
	if g3 != g1 {
		t.Error("2/4 and 1/2 should share a cache entry")
	}
	direct, err := mechanism.Geometric(8, a)
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(direct) {
		t.Error("cached mechanism differs from direct construction")
	}
	m := e.Metrics()
	if m.Mechanisms.Requests != 3 || m.Mechanisms.Cache.Hits != 2 || m.Mechanisms.Cache.Misses != 1 {
		t.Errorf("mechanism stats = %+v", m.Mechanisms)
	}
}

func TestMatrixArtifactsAreCloned(t *testing.T) {
	e := New(Config{})
	a, b := rat(t, "1/2"), rat(t, "2/3")
	tr1, err := e.Transition(5, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the returned copy; the cache must be unaffected.
	tr1.Set(0, 0, rational.Int(42))
	tr2, err := e.Transition(5, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.At(0, 0).Cmp(rational.Int(42)) == 0 {
		t.Fatal("cache returned the caller-mutated matrix")
	}
	inv1, err := e.GeometricInverse(5, a)
	if err != nil {
		t.Fatal(err)
	}
	inv1.Set(0, 0, rational.Int(42))
	inv2, err := e.GeometricInverse(5, a)
	if err != nil {
		t.Fatal(err)
	}
	if inv2.At(0, 0).Cmp(rational.Int(42)) == 0 {
		t.Fatal("cache returned the caller-mutated inverse")
	}
}

func TestTailoredMatchesDirectSolve(t *testing.T) {
	e := New(Config{})
	a := rat(t, "1/3")
	c := &consumer.Consumer{Loss: loss.Absolute{}, Side: consumer.Interval(0, 6)}
	got, err := e.TailoredMechanism(c, 6, a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := consumer.OptimalMechanism(c, 6, a)
	if err != nil {
		t.Fatal(err)
	}
	if got.Loss.Cmp(want.Loss) != 0 {
		t.Errorf("cached tailored loss %s, direct %s", got.Loss.RatString(), want.Loss.RatString())
	}
	// Theorem 1 through the engine: the cached interaction against
	// cached G_{n,α} achieves the same loss.
	inter, err := e.OptimalInteraction(c, 6, a)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Loss.Cmp(want.Loss) != 0 {
		t.Errorf("interaction loss %s, tailored %s", inter.Loss.RatString(), want.Loss.RatString())
	}
}

func TestConsumerKeyCanonicalization(t *testing.T) {
	e := New(Config{})
	a := rat(t, "1/2")
	// Side sets that normalize identically must share a cache entry.
	c1 := &consumer.Consumer{Loss: loss.Absolute{}, Side: []int{3, 1, 2, 1, 99}}
	c2 := &consumer.Consumer{Loss: loss.Absolute{}, Side: []int{1, 2, 3}, Name: "other display name"}
	if _, err := e.TailoredMechanism(c1, 5, a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.TailoredMechanism(c2, 5, a); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Tailored.Cache.Misses != 1 || m.Tailored.Cache.Hits != 1 {
		t.Errorf("tailored stats = %+v (want one miss, one hit)", m.Tailored)
	}
	// A consumer without a loss is rejected, not cached.
	if _, err := e.TailoredMechanism(&consumer.Consumer{}, 5, a); err == nil {
		t.Error("nil loss accepted")
	}
	if _, err := e.TailoredMechanism(nil, 5, a); err == nil {
		t.Error("nil consumer accepted")
	}
}

func TestCoalescingCollapsesConcurrentSolves(t *testing.T) {
	e := New(Config{})
	a := rat(t, "1/2")
	c := &consumer.Consumer{Loss: loss.Squared{}}
	const workers = 32
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(workers)
	losses := make([]*big.Rat, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer done.Done()
			start.Wait()
			tl, err := e.TailoredMechanism(c, 8, a)
			if err != nil {
				errs[w] = err
				return
			}
			losses[w] = tl.Loss
		}(w)
	}
	start.Done()
	done.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 1; w < workers; w++ {
		if losses[w].Cmp(losses[0]) != 0 {
			t.Fatalf("worker %d saw loss %s, worker 0 saw %s", w, losses[w].RatString(), losses[0].RatString())
		}
	}
	m := e.Metrics()
	if m.Tailored.Cache.Misses != 1 {
		t.Errorf("misses = %d, want 1 (coalescer must collapse duplicate concurrent solves)", m.Tailored.Cache.Misses)
	}
	if m.Tailored.Requests != workers {
		t.Errorf("requests = %d, want %d", m.Tailored.Requests, workers)
	}
	if got := m.Tailored.Cache.Hits + m.Tailored.Cache.Coalesced; got != workers-1 {
		t.Errorf("hits+coalesced = %d, want %d", got, workers-1)
	}
	if m.Tailored.ComputeNanos == 0 {
		t.Error("compute_nanos not recorded")
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	e := New(Config{MatrixCacheSize: 2})
	a1, a2, a3 := rat(t, "1/2"), rat(t, "1/3"), rat(t, "1/4")
	for _, a := range []*big.Rat{a1, a2, a3} {
		if _, err := e.Geometric(4, a); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.Mechanisms.Cache.Evictions != 1 || m.Mechanisms.Cache.Size != 2 {
		t.Fatalf("after overflow: %+v", m.Mechanisms.Cache)
	}
	// a1 was least recently used and must be gone; a2/a3 must hit.
	if _, err := e.Geometric(4, a2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Geometric(4, a3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Geometric(4, a1); err != nil {
		t.Fatal(err)
	}
	m = e.Metrics()
	if m.Mechanisms.Cache.Hits != 2 {
		t.Errorf("hits = %d, want 2 (a2 and a3 retained)", m.Mechanisms.Cache.Hits)
	}
	if m.Mechanisms.Cache.Misses != 4 {
		t.Errorf("misses = %d, want 4 (a1 evicted and recomputed)", m.Mechanisms.Cache.Misses)
	}
}

func TestReleasePlanCached(t *testing.T) {
	e := New(Config{})
	alphas := []*big.Rat{rat(t, "1/2"), rat(t, "2/3")}
	p1, err := e.ReleasePlan(10, alphas)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.ReleasePlan(10, alphas)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("release plan not cached")
	}
	if _, err := e.ReleasePlan(10, []*big.Rat{rat(t, "2/3"), rat(t, "1/2")}); err == nil {
		t.Error("decreasing levels accepted")
	}
}

func TestEngineErrorsNotCached(t *testing.T) {
	e := New(Config{})
	if _, err := e.Geometric(0, rat(t, "1/2")); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := e.Geometric(0, rat(t, "1/2")); err == nil {
		t.Fatal("n=0 accepted on retry")
	}
	m := e.Metrics()
	if m.Mechanisms.Cache.Size != 0 {
		t.Errorf("error outcome was cached: %+v", m.Mechanisms.Cache)
	}
	if m.Mechanisms.Cache.Misses != 2 {
		t.Errorf("misses = %d, want 2 (each failed request recomputes)", m.Mechanisms.Cache.Misses)
	}
	if _, err := e.Geometric(4, nil); err == nil {
		t.Fatal("nil alpha accepted")
	}
}

// TestEngineCachedSpeedup backs the PR's headline claim: a warm
// engine answers repeat tailored-LP requests at least 10x faster
// than solving the LP. The real ratio is 4–6 orders of magnitude
// (nanoseconds vs milliseconds), so 10x leaves enormous slack for
// noisy CI machines.
func TestEngineCachedSpeedup(t *testing.T) {
	e := New(Config{})
	a := rat(t, "1/2")
	c := &consumer.Consumer{Loss: loss.Absolute{}}

	uncachedStart := time.Now()
	if _, err := consumer.OptimalMechanism(c, 8, a); err != nil {
		t.Fatal(err)
	}
	uncached := time.Since(uncachedStart)

	if _, err := e.TailoredMechanism(c, 8, a); err != nil { // warm the cache
		t.Fatal(err)
	}
	const lookups = 1000
	cachedStart := time.Now()
	for i := 0; i < lookups; i++ {
		if _, err := e.TailoredMechanism(c, 8, a); err != nil {
			t.Fatal(err)
		}
	}
	cachedPerOp := time.Since(cachedStart) / lookups

	if cachedPerOp <= 0 {
		cachedPerOp = 1
	}
	if ratio := float64(uncached) / float64(cachedPerOp); ratio < 10 {
		t.Errorf("cached lookup only %.1fx faster than LP solve (uncached %v, cached %v); want ≥10x",
			ratio, uncached, cachedPerOp)
	}
}
