package engine

import "time"

// TraceKind labels one span event on the engine's serving path.
type TraceKind string

// Span events emitted per request and per computation. A fully
// cache-warm request emits a single TraceHit; a cold request emits
// TraceMiss, TraceSolveStart, and TraceSolveDone on the computing
// goroutine, plus TraceCoalesced on every request that shared the
// computation without starting it.
const (
	TraceHit        TraceKind = "hit"         // served from cache
	TraceMiss       TraceKind = "miss"        // not cached; a computation will run
	TraceCoalesced  TraceKind = "coalesce"    // shared another request's computation
	TraceSolveStart TraceKind = "solve-start" // computation begins (after admission)
	TraceSolveDone  TraceKind = "solve-done"  // computation finished; Duration/Err set
	TraceShed       TraceKind = "shed"        // rejected: solve semaphore saturated

	// LP-backed computations (tailored, interactions) additionally
	// emit exactly one of the following after the solve returns,
	// reporting which path of the float-guided exact solver served it.
	TraceWarmStartHit      TraceKind = "warmstart-hit"      // crossover certified the float basis; zero exact pivots
	TraceWarmStartResume   TraceKind = "warmstart-resume"   // basis needed exact pivots to finish, no restart
	TraceWarmStartFallback TraceKind = "warmstart-fallback" // full exact two-phase solve ran from scratch

	// Disk-store traffic (Config.Store). A store hit replaces the
	// solve entirely: the request emits TraceMiss then TraceStoreHit,
	// and no solve-start/solve-done pair. A computed artifact's
	// write-back emits TraceStoreWrite after TraceSolveDone; a failed
	// load-decode or write emits TraceStoreError and the request
	// proceeds as if the store did not exist.
	TraceStoreHit   TraceKind = "store-hit"   // loaded and verified from the disk store
	TraceStoreWrite TraceKind = "store-write" // computed artifact persisted to the disk store
	TraceStoreError TraceKind = "store-error" // disk store load/decode/write failure (non-fatal)

	// Sampler batch draws (Sampler.SampleInto / SampleN) emit one
	// event per batch on the drawing goroutine, with Draws set to the
	// batch size. Single-draw Sample calls are deliberately untraced:
	// at sub-100ns per draw even a nil-check-plus-call hook would
	// dominate the operation being traced.
	TraceSampleBatch TraceKind = "sample-batch"
)

// TraceEvent is one span event. Events carry the artifact class
// ("tailored", "mechanisms", ...), the cache key, and — for
// TraceSolveDone — the compute duration and the error (nil on
// success; context.Canceled when the solve was abandoned by every
// waiter).
type TraceEvent struct {
	Artifact string
	Key      string
	Kind     TraceKind
	Duration time.Duration
	Draws    int // batch size, set only for TraceSampleBatch
	Err      error
}

// TraceFunc receives every span event of an Engine. Hooks are invoked
// synchronously on the serving goroutine — including the cache-hit
// fast path — so they must be cheap and safe for concurrent use;
// forward to a channel or an append-only buffer for anything heavier.
type TraceFunc func(TraceEvent)
