// Sampling lives on the float side of the exact-arithmetic boundary
// (DESIGN.md §7): alias tables are built from float64 projections of
// the exact row distributions, exactly like mechanism.Sample's
// inverse-CDF walk. This file is therefore exempt from the floatexact
// analyzer (see internal/analysis/floatexact.DefaultAllowFiles);
// everything else in the package stays exact.

package engine

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"sync/atomic"

	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
)

// rngPool hands out per-goroutine PRNGs. sample.NewRand returns a
// *rand.Rand that is not safe for concurrent use, so concurrent
// samplers must never share one; the pool gives each borrowing
// goroutine its own stream, seeded base+k for the k-th stream ever
// created (deterministic stream *set*, scheduler-dependent
// assignment).
type rngPool struct {
	base int64
	seq  atomic.Int64
	pool sync.Pool
}

func newRNGPool(seed int64) *rngPool {
	p := &rngPool{base: seed}
	p.pool.New = func() any {
		return sample.NewRand(p.base + p.seq.Add(1))
	}
	return p
}

func (p *rngPool) get() *rand.Rand  { return p.pool.Get().(*rand.Rand) }
func (p *rngPool) put(r *rand.Rand) { p.pool.Put(r) }

// Sampler draws from a fixed mechanism in O(1) per draw: one Walker
// alias table per mechanism row, precompiled at construction. Unlike
// mechanism.Sample (which takes a caller-owned *rand.Rand and walks
// the CDF in O(n)), Sampler methods are safe for concurrent use —
// each draw borrows a PRNG from the engine's pool.
type Sampler struct {
	n     int
	rows  []*sample.Alias
	pool  *rngPool
	draws *atomic.Uint64
}

func newSampler(m *mechanism.Mechanism, pool *rngPool, draws *atomic.Uint64) (*Sampler, error) {
	n := m.N()
	rows := make([]*sample.Alias, n+1)
	for i := 0; i <= n; i++ {
		row := m.Row(i)
		w := make([]float64, len(row))
		for j, p := range row {
			w[j] = rational.Float(p)
		}
		a, err := sample.NewAlias(w)
		if err != nil {
			return nil, fmt.Errorf("engine: sampler row %d: %w", i, err)
		}
		rows[i] = a
	}
	return &Sampler{n: n, rows: rows, pool: pool, draws: draws}, nil
}

// N returns the mechanism's domain bound (results lie in {0..n}).
func (s *Sampler) N() int { return s.n }

// Sample draws one released result for true input i.
func (s *Sampler) Sample(i int) int {
	s.check(i)
	rng := s.pool.get()
	r := s.rows[i].Sample(rng)
	s.pool.put(rng)
	s.draws.Add(1)
	return r
}

// SampleN draws count released results for true input i, borrowing
// one pooled PRNG for the whole batch.
func (s *Sampler) SampleN(i, count int) []int {
	s.check(i)
	if count < 0 {
		panic(fmt.Sprintf("engine: negative sample count %d", count))
	}
	out := make([]int, count)
	rng := s.pool.get()
	for k := range out {
		out[k] = s.rows[i].Sample(rng)
	}
	s.pool.put(rng)
	s.draws.Add(uint64(count))
	return out
}

func (s *Sampler) check(i int) {
	if i < 0 || i > s.n {
		panic(fmt.Sprintf("engine: input %d out of range [0,%d]", i, s.n))
	}
}

// SamplerSpec selects which mechanism Engine.Sampler compiles. Set
// exactly one of:
//
//   - N and Alpha: the geometric mechanism G_{n,α}. The compiled
//     sampler is cached and shared (the engine can key it).
//   - Mechanism: an arbitrary mechanism. The compiled sampler is NOT
//     cached (arbitrary mechanisms have no sound cache key); retain
//     the returned Sampler for reuse.
//
// Setting both (or neither) is an error.
type SamplerSpec struct {
	N         int
	Alpha     *big.Rat
	Mechanism *mechanism.Mechanism
}

// Sampler returns a concurrency-safe precompiled alias-table sampler
// for the mechanism selected by spec (see SamplerSpec for the
// caching contract). Compilation is cheap relative to LP solves but
// ctx is still honored at entry and across coalesced waits.
func (e *Engine) Sampler(ctx context.Context, spec SamplerSpec) (*Sampler, error) {
	if spec.Mechanism != nil {
		if spec.Alpha != nil {
			return nil, fmt.Errorf("engine: SamplerSpec sets both Mechanism and Alpha")
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return newSampler(spec.Mechanism, e.rngs, &e.samplerDraws)
	}
	if err := checkRat("alpha", spec.Alpha); err != nil {
		return nil, err
	}
	key := fmt.Sprintf("n=%d|a=%s", spec.N, ratKey(spec.Alpha))
	if s, ok, err := getCached[*Sampler](ctx, e.samplers, key); ok || err != nil {
		return s, err
	}
	return getTyped(ctx, e.samplers, key, func(solveCtx context.Context) (*Sampler, error) {
		g, err := e.GeometricCtx(solveCtx, spec.N, spec.Alpha)
		if err != nil {
			return nil, err
		}
		return newSampler(g, e.rngs, &e.samplerDraws)
	})
}

// GeometricSampler returns the (shared, concurrency-safe) precompiled
// sampler for G_{n,α}, building the alias tables at most once per
// (n, α).
//
// Deprecated: use Sampler with SamplerSpec{N: n, Alpha: alpha}. Kept
// as a thin wrapper for callers of the pre-/v1 API.
func (e *Engine) GeometricSampler(n int, alpha *big.Rat) (*Sampler, error) {
	return e.Sampler(context.Background(), SamplerSpec{N: n, Alpha: alpha})
}

// MechanismSampler precompiles a concurrency-safe sampler for an
// arbitrary mechanism. The result is not cached (the engine cannot
// key arbitrary mechanisms); callers should retain it.
//
// Deprecated: use Sampler with SamplerSpec{Mechanism: m}. Kept as a
// thin wrapper for callers of the pre-/v1 API.
func (e *Engine) MechanismSampler(m *mechanism.Mechanism) (*Sampler, error) {
	return e.Sampler(context.Background(), SamplerSpec{Mechanism: m})
}
