// The serving hot path: once the engine's caches are warm, every user
// request reduces to one draw from a cached mechanism row (the
// Theorem 1/§4.2 deployment story — publish G_{n,α}, let each
// consumer post-process). Draws therefore go through the dyadic alias
// kernel (sample.DyadicAlias): integer tables built *exactly* from
// the mechanism's rational rows and certified against the rational
// PMF at construction, sampled with one PRNG word, one index, one
// compare — no float math, no locks, no allocation. This file is
// fully exact-side under the floatexact analyzer (DESIGN.md §7/§11);
// the former float64 projection of the rows is gone.

package engine

import (
	"context"
	"fmt"
	"math/big"

	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/sample"
)

// aliasTables exports the per-row integer tables for persistence
// (engine/persist.go).
func (s *Sampler) aliasTables() []sample.AliasTables {
	out := make([]sample.AliasTables, len(s.rows))
	for i, r := range s.rows {
		out[i] = r.Tables()
	}
	return out
}

// newSamplerFromTables recompiles a persisted sampler: the integer
// alias tables are validated and re-wrapped around the engine's live
// shard set under the original cache key. The mechanism itself is not
// needed — the tables were certified against its rational rows when
// first built, and they round-trip exactly.
func newSamplerFromTables(e *Engine, key string, n int, rows []sample.AliasTables) (*Sampler, error) {
	if len(rows) != n+1 {
		return nil, fmt.Errorf("engine: %d sampler rows for n=%d", len(rows), n)
	}
	compiled := make([]*sample.DyadicAlias, len(rows))
	for i := range rows {
		d, err := sample.DyadicAliasFromTables(rows[i])
		if err != nil {
			return nil, fmt.Errorf("engine: sampler row %d: %w", i, err)
		}
		compiled[i] = d
	}
	return &Sampler{
		n:      n,
		rows:   compiled,
		shards: e.shards,
		hist:   &e.batchSizes,
		trace:  e.trace,
		key:    key,
	}, nil
}

// Sampler draws from a fixed mechanism in O(1) per draw: one
// certified dyadic alias table per mechanism row, precompiled at
// construction. Unlike mechanism.Sample (which takes a caller-owned
// *rand.Rand and walks the exact CDF in O(n)), Sampler methods are
// safe for concurrent use: randomness comes from the engine's
// GOMAXPROCS-sized shard array, each shard owning a lock-free
// splitmix64 stream, so concurrent draws touch no shared mutable
// state beyond one per-shard atomic.
type Sampler struct {
	n      int
	rows   []*sample.DyadicAlias
	shards *shardSet
	hist   *batchHist
	trace  TraceFunc // nil = tracing off
	key    string    // cache key (or "adhoc") for trace events
}

func newSampler(m *mechanism.Mechanism, e *Engine, key string) (*Sampler, error) {
	n := m.N()
	rows := make([]*sample.DyadicAlias, n+1)
	for i := 0; i <= n; i++ {
		a, err := sample.NewDyadicAlias(m.Row(i))
		if err != nil {
			return nil, fmt.Errorf("engine: sampler row %d: %w", i, err)
		}
		rows[i] = a
	}
	return &Sampler{
		n:      n,
		rows:   rows,
		shards: e.shards,
		hist:   &e.batchSizes,
		trace:  e.trace,
		key:    key,
	}, nil
}

// N returns the mechanism's domain bound (results lie in {0..n}).
func (s *Sampler) N() int { return s.n }

// Sample draws one released result for true input i. Cost: one shard
// pick, one atomic add on the shard's PRNG, one table lookup, one
// atomic add on the shard's draw counter. Zero allocations.
//
//dpvet:hotpath
func (s *Sampler) Sample(i int) int {
	s.check(i)
	sh := s.shards.pick()
	r := s.rows[i].SampleWord(sh.rng.Uint64())
	sh.draws.Add(1)
	return r
}

// SampleInto fills dst with len(dst) released results for true input
// i. The whole batch reserves one contiguous block of the shard's
// PRNG stream with a single atomic add, counts draws with a single
// atomic add, and allocates nothing; this is the bulk form behind
// /v1/sample?count=N and the ≥50× win over per-draw sampling.
//
//dpvet:hotpath
func (s *Sampler) SampleInto(i int, dst []int) {
	s.check(i)
	if len(dst) == 0 {
		return
	}
	sh := s.shards.pick()
	blk := sh.rng.Block(len(dst))
	row := s.rows[i]
	for k := range dst {
		dst[k] = row.SampleWord(blk.Next())
	}
	sh.draws.Add(uint64(len(dst)))
	sh.batches.Add(1)
	s.hist.observe(len(dst))
	if s.trace != nil {
		s.trace(TraceEvent{Artifact: "samplers", Key: s.key, Kind: TraceSampleBatch, Draws: len(dst)})
	}
}

// SampleN draws count released results for true input i. It is
// SampleInto with a single result-slice allocation.
func (s *Sampler) SampleN(i, count int) []int {
	if count < 0 {
		panic(fmt.Sprintf("engine: negative sample count %d", count))
	}
	out := make([]int, count)
	s.SampleInto(i, out)
	return out
}

// check is the cold bounds-failure path of the hotpath samplers.
// noinline: inlined into Sample/SampleInto, the fmt.Sprintf would
// charge its heap allocations to their lines and trip the hotpath
// escape gate.
//
//go:noinline
func (s *Sampler) check(i int) {
	if i < 0 || i > s.n {
		panic(fmt.Sprintf("engine: input %d out of range [0,%d]", i, s.n))
	}
}

// SamplerSpec selects which mechanism Engine.Sampler compiles. Set
// exactly one of:
//
//   - N and Alpha: the geometric mechanism G_{n,α}. The compiled
//     sampler is cached and shared (the engine can key it).
//   - Mechanism: an arbitrary mechanism. The compiled sampler is NOT
//     cached (arbitrary mechanisms have no sound cache key); retain
//     the returned Sampler for reuse.
//
// Setting both (or neither) is an error.
type SamplerSpec struct {
	N         int
	Alpha     *big.Rat
	Mechanism *mechanism.Mechanism
}

// Sampler returns a concurrency-safe precompiled dyadic alias sampler
// for the mechanism selected by spec (see SamplerSpec for the
// caching contract). Compilation is cheap relative to LP solves but
// ctx is still honored at entry and across coalesced waits.
func (e *Engine) Sampler(ctx context.Context, spec SamplerSpec) (*Sampler, error) {
	if spec.Mechanism != nil {
		if spec.Alpha != nil {
			return nil, fmt.Errorf("engine: SamplerSpec sets both Mechanism and Alpha")
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return newSampler(spec.Mechanism, e, "adhoc")
	}
	if err := checkRat("alpha", spec.Alpha); err != nil {
		return nil, err
	}
	key := geometricKey(spec.N, spec.Alpha)
	if s, ok, err := getCached[*Sampler](ctx, e.samplers, key); ok || err != nil {
		return s, err
	}
	return getTyped(ctx, e.samplers, key, func(solveCtx context.Context) (*Sampler, error) {
		g, err := e.GeometricCtx(solveCtx, spec.N, spec.Alpha)
		if err != nil {
			return nil, err
		}
		return newSampler(g, e, key)
	})
}
