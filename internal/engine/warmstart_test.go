package engine

import (
	"math/big"
	"testing"
	"time"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/lp"
)

// TestWarmStartColdPathGate compares a default (warm-started) engine
// against an ExactLPOnly engine on the serving-size tailored LP from
// the benchmarks (absolute loss, n=8, α=1/2). It pins down three
// things: the warm path actually engages (nonzero warm-start hits and
// zero exact pivots), both engines return byte-identical artifacts,
// and the warm path is faster by a comfortable margin. The speed
// assertion is deliberately loose (≥2×, versus ~7× measured on idle
// hardware) so scheduler noise and -race overhead cannot flake it;
// the precise factor is logged for humans reading the test output.
func TestWarmStartColdPathGate(t *testing.T) {
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	n, alpha := 8, big.NewRat(1, 2)

	warm := New(Config{})
	start := time.Now()
	tw, err := warm.TailoredMechanism(c, n, alpha)
	warmDur := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	mw := warm.Metrics().LP
	if mw.WarmStartHits != 1 || mw.CrossoverResumes != 0 || mw.Fallbacks != 0 {
		t.Fatalf("warm engine LP stats = %+v, want exactly one warm-start hit", mw)
	}
	if mw.ExactPivots != 0 {
		t.Errorf("warm-start hit ran %d exact pivots, want 0", mw.ExactPivots)
	}
	if mw.FloatPivots == 0 {
		t.Error("warm engine reports zero float pivots")
	}
	if mw.SmallOps == 0 {
		t.Error("warm-start hit reports zero Small fast-path ops; the hybrid LU kernels should dominate certification")
	}

	exact := New(Config{ExactLPOnly: true})
	start = time.Now()
	te, err := exact.TailoredMechanism(c, n, alpha)
	exactDur := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	me := exact.Metrics().LP
	if me.WarmStartHits != 0 || me.CrossoverResumes != 0 || me.Fallbacks != 0 {
		t.Fatalf("ExactLPOnly engine LP stats = %+v, want all path counters zero", me)
	}
	if me.ExactPivots == 0 {
		t.Error("ExactLPOnly engine reports zero exact pivots")
	}

	if tw.Loss.Cmp(te.Loss) != 0 {
		t.Fatalf("loss differs: warm %s, exact %s", tw.Loss.RatString(), te.Loss.RatString())
	}
	if !tw.Mechanism.Equal(te.Mechanism) {
		t.Fatal("warm-started and exact-only engines produced different mechanisms")
	}

	factor := float64(exactDur) / float64(warmDur)
	t.Logf("tailored n=%d α=%s: exact-only %v, warm-started %v (%.1f× faster)",
		n, alpha.RatString(), exactDur, warmDur, factor)
	if factor < 2 {
		t.Errorf("warm-started solve only %.2f× faster than exact (exact %v, warm %v); expected ≥2× at this size",
			factor, exactDur, warmDur)
	}
}

// TestRecordLPFoldsAllCounters feeds recordLP a synthetic stats block
// with every field set and reads the full set back through the JSON
// metrics surface: a counter added to lp.SolveStats but not plumbed
// into lpCounters/snapshot would silently report zero forever.
func TestRecordLPFoldsAllCounters(t *testing.T) {
	e := New(Config{})
	e.recordLP(e.tailored, "synthetic", &lp.SolveStats{
		FloatPivots:        3,
		ExactPivots:        5,
		RevisedPivots:      7,
		ParallelPivots:     2,
		SmallOps:           11,
		WideOps:            23,
		BigFallbacks:       13,
		Refactorizations:   29,
		MagnitudeRefactors: 31,
		PresolveRows:       17,
		PresolveCols:       19,
		Fallback:           true,
	})
	m := e.Metrics().LP
	want := LPSolveStats{
		Solves: 1, Fallbacks: 1,
		FloatPivots: 3, ExactPivots: 5, RevisedPivots: 7, ParallelPivots: 2,
		SmallOps: 11, WideOps: 23, BigFallbacks: 13,
		Refactorizations: 29, MagnitudeRefactors: 31,
		PresolveRows: 17, PresolveCols: 19,
	}
	if m != want {
		t.Fatalf("LP metrics after synthetic fold = %+v, want %+v", m, want)
	}
}

// TestInteractionRecordsLPStats covers the interactions class of the
// LP counter plumbing: the §2.4.3 post-processing LP must advance
// exactly one path counter, and the trace hook must see the matching
// warm-start event.
func TestInteractionRecordsLPStats(t *testing.T) {
	var kinds []TraceKind
	e := New(Config{Trace: func(ev TraceEvent) {
		switch ev.Kind {
		case TraceWarmStartHit, TraceWarmStartResume, TraceWarmStartFallback:
			kinds = append(kinds, ev.Kind)
		}
	}})
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	if _, err := e.OptimalInteraction(c, 6, big.NewRat(1, 2)); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics().LP
	paths := m.WarmStartHits + m.CrossoverResumes + m.Fallbacks
	if paths != 1 {
		t.Fatalf("LP path counters sum to %d, want 1 (stats %+v)", paths, m)
	}
	if len(kinds) != 1 {
		t.Fatalf("saw %d warm-start trace events, want 1 (%v)", len(kinds), kinds)
	}
}
