package consumer

import (
	"testing"

	"minimaxdp/internal/loss"
	"minimaxdp/internal/mechanism"
)

// The geometric mechanism satisfies Lemma 5 with zero slack: for rows
// (i, i+1), columns 0..i are tight downward and columns i+1..n tight
// upward (c2 = c1 + 1).
func TestLemma5GeometricZeroSlack(t *testing.T) {
	for _, as := range []string{"1/4", "1/2", "3/4"} {
		alpha := r(as)
		for n := 1; n <= 6; n++ {
			g, err := mechanism.Geometric(n, alpha)
			if err != nil {
				t.Fatal(err)
			}
			structs, err := CheckLemma5(g, alpha)
			if err != nil {
				t.Fatalf("G_{%d,%s}: %v", n, as, err)
			}
			for _, s := range structs {
				if s.C1 != s.I || s.C2 != s.I+1 || s.Slack() != 0 {
					t.Errorf("G_{%d,%s} rows (%d,%d): c1=%d c2=%d, want (%d,%d)",
						n, as, s.I, s.I+1, s.C1, s.C2, s.I, s.I+1)
				}
			}
		}
	}
}

// Lemma 5 is an existence statement: SOME optimal mechanism has the
// structure. The paper's proof selects it by lexicographic (L, L′)
// optimization; OptimalMechanismRefined implements exactly that
// selection, and its output must satisfy the checker on every
// instance. (The unrefined LP vertex may legitimately violate the
// pattern when the optimum is non-unique.)
func TestLemma5OnRefinedOptima(t *testing.T) {
	n := 4
	losses := []loss.Function{loss.Absolute{}, loss.Squared{}, loss.ZeroOne{}}
	sides := [][]int{nil, Interval(1, 4), Interval(0, 2)}
	for _, lf := range losses {
		for _, s := range sides {
			for _, as := range []string{"1/4", "1/2"} {
				alpha := r(as)
				c := &Consumer{Loss: lf, Side: s}
				plain, err := OptimalMechanism(c, n, alpha)
				if err != nil {
					t.Fatal(err)
				}
				tl, err := OptimalMechanismRefined(c, n, alpha)
				if err != nil {
					t.Fatal(err)
				}
				// Refinement must preserve primary optimality exactly.
				direct, err := c.MinimaxLoss(tl.Mechanism)
				if err != nil {
					t.Fatal(err)
				}
				if direct.Cmp(plain.Loss) > 0 {
					t.Fatalf("refinement worsened loss: %s > %s", direct.RatString(), plain.Loss.RatString())
				}
				if err := tl.Mechanism.CheckDP(alpha); err != nil {
					t.Fatalf("refined mechanism lost DP: %v", err)
				}
				if _, err := CheckLemma5(tl.Mechanism, alpha); err != nil {
					t.Errorf("loss=%s side=%v α=%s: %v\n%s", lf.Name(), s, as, err, tl.Mechanism)
				}
			}
		}
	}
}

// The Table 1 optimum has the specific signature computed in the
// paper's proof walk-through: boundary pair slack 1 (c2 = c1+2).
func TestLemma5Table1Signature(t *testing.T) {
	alpha := r("1/4")
	c := &Consumer{Loss: loss.Absolute{}}
	tl, err := OptimalMechanism(c, 3, alpha)
	if err != nil {
		t.Fatal(err)
	}
	structs, err := CheckLemma5(tl.Mechanism, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(structs) != 3 {
		t.Fatalf("got %d pairs", len(structs))
	}
	// Rows (0,1): prefix tight at column 0, suffix tight from column 2.
	if structs[0].C1 != 0 || structs[0].C2 != 2 {
		t.Errorf("pair (0,1): c1=%d c2=%d, want 0,2", structs[0].C1, structs[0].C2)
	}
}

// The uniform mechanism (all rows equal) violates the structure for
// α < 1: no constraint is tight anywhere.
func TestLemma5RejectsUniform(t *testing.T) {
	u, err := mechanism.Uniform(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckLemma5(u, r("1/2")); err == nil {
		t.Error("uniform mechanism accepted by Lemma 5 checker at α=1/2")
	}
	// At α = 1 every entry pair is tight in both directions: the
	// prefix/suffix overlap fully and the structure holds trivially.
	if _, err := CheckLemma5(u, r("1")); err != nil {
		t.Errorf("uniform at α=1: %v", err)
	}
}

// Deterministic interactions are a strict subset: never better than
// the randomized optimum, and strictly worse on the Table 1 instance
// (the value of randomization for minimax consumers, §2.7).
func TestDeterministicInteractionValueOfRandomization(t *testing.T) {
	g, err := mechanism.Geometric(3, r("1/4"))
	if err != nil {
		t.Fatal(err)
	}
	c := &Consumer{Loss: loss.Absolute{}}
	randOpt, err := OptimalInteraction(c, g)
	if err != nil {
		t.Fatal(err)
	}
	detOpt, err := OptimalDeterministicInteraction(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if detOpt.Loss.Cmp(randOpt.Loss) < 0 {
		t.Fatalf("deterministic %s beat randomized %s", detOpt.Loss.RatString(), randOpt.Loss.RatString())
	}
	if detOpt.Loss.Cmp(randOpt.Loss) == 0 {
		t.Errorf("expected strict gap on the Table 1 instance, both %s", detOpt.Loss.RatString())
	}
	// The deterministic T really is deterministic.
	for rr := 0; rr <= 3; rr++ {
		ones := 0
		for rp := 0; rp <= 3; rp++ {
			if detOpt.T.At(rr, rp).Sign() != 0 {
				ones++
			}
		}
		if ones != 1 {
			t.Errorf("row %d of deterministic T has %d nonzeros", rr, ones)
		}
	}
}

func TestDeterministicInteractionValidation(t *testing.T) {
	big1, err := mechanism.Geometric(7, r("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	c := &Consumer{Loss: loss.Absolute{}}
	if _, err := OptimalDeterministicInteraction(c, big1); err == nil {
		t.Error("n=7 enumeration accepted")
	}
	bad := &Consumer{Loss: loss.Absolute{}, Side: []int{99}}
	g, err := mechanism.Geometric(3, r("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimalDeterministicInteraction(bad, g); err == nil {
		t.Error("empty side accepted")
	}
}

// For Bayesian consumers determinism is free (Ghosh et al.): the
// deterministic Bayes remap equals the LP optimum — contrast check via
// the minimax enumerator on a Bayesian-like point side set.
func TestDeterministicOptimalForSingletonSide(t *testing.T) {
	// With side info {i} the minimax consumer knows the answer set is a
	// single input; the best remap maps everything to the best single
	// output — deterministic, so the gap vanishes.
	g, err := mechanism.Geometric(3, r("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	c := &Consumer{Loss: loss.Absolute{}, Side: []int{2}}
	randOpt, err := OptimalInteraction(c, g)
	if err != nil {
		t.Fatal(err)
	}
	detOpt, err := OptimalDeterministicInteraction(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if detOpt.Loss.Cmp(randOpt.Loss) != 0 {
		t.Errorf("singleton side info should close the gap: det %s vs rand %s",
			detOpt.Loss.RatString(), randOpt.Loss.RatString())
	}
}
