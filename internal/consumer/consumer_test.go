package consumer

import (
	"errors"
	"math/big"
	"testing"

	"minimaxdp/internal/loss"
	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
)

func r(s string) *big.Rat { return rational.MustParse(s) }

func geo(t *testing.T, n int, alpha string) *mechanism.Mechanism {
	t.Helper()
	g, err := mechanism.Geometric(n, r(alpha))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestInterval(t *testing.T) {
	if got := Interval(2, 4); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("Interval(2,4) = %v", got)
	}
	if got := Interval(3, 2); got != nil {
		t.Errorf("Interval(3,2) = %v, want nil", got)
	}
}

func TestSideNormalization(t *testing.T) {
	c := &Consumer{Loss: loss.Absolute{}, Side: []int{5, 1, 1, -3, 99}}
	s, err := c.side(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || s[0] != 1 || s[1] != 5 {
		t.Errorf("side = %v", s)
	}
	empty := &Consumer{Loss: loss.Absolute{}, Side: []int{-1, 99}}
	if _, err := empty.side(3); !errors.Is(err, ErrEmptySide) {
		t.Errorf("want ErrEmptySide, got %v", err)
	}
	full := &Consumer{Loss: loss.Absolute{}}
	s, err = full.side(3)
	if err != nil || len(s) != 4 {
		t.Errorf("default side = %v, %v", s, err)
	}
}

func TestExpectedAndMinimaxLoss(t *testing.T) {
	// Uniform mechanism on {0..2}, absolute loss. Expected loss at
	// i=0: (0+1+2)/3 = 1; at i=1: (1+0+1)/3 = 2/3. Minimax = 1.
	u, err := mechanism.Uniform(2)
	if err != nil {
		t.Fatal(err)
	}
	c := &Consumer{Loss: loss.Absolute{}}
	if got := c.ExpectedLoss(u, 0); got.Cmp(r("1")) != 0 {
		t.Errorf("ExpectedLoss(0) = %s", got.RatString())
	}
	if got := c.ExpectedLoss(u, 1); got.Cmp(r("2/3")) != 0 {
		t.Errorf("ExpectedLoss(1) = %s", got.RatString())
	}
	mm, err := c.MinimaxLoss(u)
	if err != nil {
		t.Fatal(err)
	}
	if mm.Cmp(r("1")) != 0 {
		t.Errorf("MinimaxLoss = %s", mm.RatString())
	}
	// With side info {1} the worst case shrinks to 2/3.
	c2 := &Consumer{Loss: loss.Absolute{}, Side: []int{1}}
	mm, err = c2.MinimaxLoss(u)
	if err != nil {
		t.Fatal(err)
	}
	if mm.Cmp(r("2/3")) != 0 {
		t.Errorf("MinimaxLoss with side = %s", mm.RatString())
	}
}

// The paper's Table 1 instance: n=3, α=1/4, l=|i−r|, S={0..3}.
// The tailored LP optimum must equal the loss the consumer achieves by
// optimally post-processing the deployed geometric mechanism
// (Theorem 1 part 2 on this instance), and both must equal the loss of
// the paper's printed interaction matrix Table 1(c).
func TestTable1Instance(t *testing.T) {
	c := &Consumer{Loss: loss.Absolute{}, Name: "table1"}
	alpha := r("1/4")
	g := geo(t, 3, "1/4")

	tailored, err := OptimalMechanism(c, 3, alpha)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := OptimalInteraction(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if tailored.Loss.Cmp(inter.Loss) != 0 {
		t.Fatalf("universal optimality fails on Table 1 instance: tailored %s vs interaction %s",
			tailored.Loss.RatString(), inter.Loss.RatString())
	}

	// The paper's printed interaction matrix (Table 1(c)). Our exact
	// LP shows the printed values are slightly off: they achieve
	// 357/880 ≈ 0.4057 while the true optimum is 168/415 ≈ 0.4048
	// (Table 1(a) also has rows summing to more than 1, so Table 1 is
	// known to carry transcription errors; see EXPERIMENTS.md T1).
	paperT := matrix.MustFromStrings([][]string{
		{"9/11", "2/11", "0", "0"},
		{"0", "1", "0", "0"},
		{"0", "0", "1", "0"},
		{"0", "0", "2/11", "9/11"},
	})
	induced, err := g.PostProcess(paperT)
	if err != nil {
		t.Fatal(err)
	}
	paperLoss, err := c.MinimaxLoss(induced)
	if err != nil {
		t.Fatal(err)
	}
	if paperLoss.Cmp(r("357/880")) != 0 {
		t.Errorf("paper's Table 1(c) interaction achieves %s, expected 357/880", paperLoss.RatString())
	}
	if tailored.Loss.Cmp(r("168/415")) != 0 {
		t.Errorf("Table 1 exact optimum = %s, want 168/415", tailored.Loss.RatString())
	}
	if tailored.Loss.Cmp(paperLoss) > 0 {
		t.Errorf("LP optimum %s worse than the paper's printed interaction %s",
			tailored.Loss.RatString(), paperLoss.RatString())
	}
	// The optimal interaction has the paper's *shape*: interior rows
	// map to themselves deterministically; boundary rows randomize
	// between the boundary output and its neighbour (exact values
	// 68/83 and 15/83).
	if inter.T.At(1, 1).Cmp(rational.One()) != 0 || inter.T.At(2, 2).Cmp(rational.One()) != 0 {
		t.Errorf("interior rows of optimal T are not identity:\n%s", inter.T)
	}
	if inter.T.At(0, 0).Cmp(r("68/83")) != 0 || inter.T.At(0, 1).Cmp(r("15/83")) != 0 {
		t.Errorf("boundary row of optimal T = (%s, %s), want (68/83, 15/83)",
			inter.T.At(0, 0).RatString(), inter.T.At(0, 1).RatString())
	}
	// Minimax optimality equalizes the per-input losses: every row of
	// the tailored mechanism attains exactly the optimum.
	for i := 0; i <= 3; i++ {
		if got := c.ExpectedLoss(tailored.Mechanism, i); got.Cmp(tailored.Loss) != 0 {
			t.Errorf("row %d loss %s not equalized at %s", i, got.RatString(), tailored.Loss.RatString())
		}
	}
	// Sanity: the tailored mechanism is a valid α-DP mechanism.
	if err := tailored.Mechanism.CheckDP(alpha); err != nil {
		t.Errorf("tailored mechanism not α-DP: %v", err)
	}
	// And the minimax loss it reports matches direct evaluation.
	direct, err := c.MinimaxLoss(tailored.Mechanism)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cmp(tailored.Loss) != 0 {
		t.Errorf("reported loss %s != evaluated loss %s", tailored.Loss.RatString(), direct.RatString())
	}
}

// Universal optimality (Theorem 1 part 2) across a grid of losses,
// side-information sets, and privacy levels: interacting with the
// deployed geometric mechanism always matches the tailored optimum.
func TestUniversalOptimalityGrid(t *testing.T) {
	n := 3
	losses := []loss.Function{loss.Absolute{}, loss.Squared{}, loss.ZeroOne{}, loss.Deadband{Width: 1}}
	sides := [][]int{nil, Interval(1, 3), Interval(0, 1), {0, 2}}
	alphas := []string{"1/4", "1/2", "2/3"}
	for _, lf := range losses {
		for _, s := range sides {
			for _, as := range alphas {
				c := &Consumer{Loss: lf, Side: s}
				alpha := r(as)
				g := geo(t, n, as)
				tailored, err := OptimalMechanism(c, n, alpha)
				if err != nil {
					t.Fatalf("%s/%v/%s tailored: %v", lf.Name(), s, as, err)
				}
				inter, err := OptimalInteraction(c, g)
				if err != nil {
					t.Fatalf("%s/%v/%s interaction: %v", lf.Name(), s, as, err)
				}
				if tailored.Loss.Cmp(inter.Loss) != 0 {
					t.Errorf("loss=%s side=%v α=%s: tailored %s != interaction %s",
						lf.Name(), s, as, tailored.Loss.RatString(), inter.Loss.RatString())
				}
			}
		}
	}
}

// No interaction can beat the tailored LP optimum (the LP really is a
// lower bound over derived mechanisms): clamping — the naive remap
// from Example 1 — is never better, and is strictly worse somewhere.
func TestClampingIsSuboptimal(t *testing.T) {
	n := 4
	g := geo(t, n, "1/2")
	// Consumer knows result ≥ 2 (drug-company lower bound).
	c := &Consumer{Loss: loss.Absolute{}, Side: Interval(2, 4)}
	inter, err := OptimalInteraction(c, g)
	if err != nil {
		t.Fatal(err)
	}
	// Naive clamp into [2,4].
	clamp := matrix.New(n+1, n+1)
	for rr := 0; rr <= n; rr++ {
		target := rr
		if target < 2 {
			target = 2
		}
		clamp.Set(rr, target, rational.One())
	}
	clamped, err := g.PostProcess(clamp)
	if err != nil {
		t.Fatal(err)
	}
	clampLoss, err := c.MinimaxLoss(clamped)
	if err != nil {
		t.Fatal(err)
	}
	if clampLoss.Cmp(inter.Loss) < 0 {
		t.Fatalf("clamping (%s) beat the LP optimum (%s)", clampLoss.RatString(), inter.Loss.RatString())
	}
}

// The optimal minimax interaction is genuinely randomized on the
// Table 1 instance (Section 2.7's contrast with Bayesian consumers):
// some row of T has two or more non-zero entries.
func TestMinimaxInteractionIsRandomized(t *testing.T) {
	c := &Consumer{Loss: loss.Absolute{}}
	g := geo(t, 3, "1/4")
	inter, err := OptimalInteraction(c, g)
	if err != nil {
		t.Fatal(err)
	}
	randomized := false
	for rr := 0; rr <= 3 && !randomized; rr++ {
		nz := 0
		for rp := 0; rp <= 3; rp++ {
			if inter.T.At(rr, rp).Sign() != 0 {
				nz++
			}
		}
		if nz > 1 {
			randomized = true
		}
	}
	if !randomized {
		t.Errorf("optimal minimax interaction is deterministic:\n%s", inter.T)
	}
}

func TestOptimalMechanismValidation(t *testing.T) {
	c := &Consumer{Loss: loss.Absolute{}}
	if _, err := OptimalMechanism(c, 0, r("1/2")); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := OptimalMechanism(c, 3, r("2")); err == nil {
		t.Error("α>1 accepted")
	}
	bad := &Consumer{Loss: loss.Absolute{}, Side: []int{-5}}
	if _, err := OptimalMechanism(bad, 3, r("1/2")); !errors.Is(err, ErrEmptySide) {
		t.Errorf("want ErrEmptySide, got %v", err)
	}
	if _, err := OptimalInteraction(bad, geo(t, 3, "1/2")); !errors.Is(err, ErrEmptySide) {
		t.Errorf("want ErrEmptySide, got %v", err)
	}
	mm := &Consumer{Loss: loss.Absolute{}, Side: []int{9}}
	if _, err := mm.MinimaxLoss(geo(t, 3, "1/2")); !errors.Is(err, ErrEmptySide) {
		t.Errorf("want ErrEmptySide, got %v", err)
	}
}

// α = 1 forces all rows identical; the optimal mechanism degenerates
// to a constant distribution and the optimum equals the best constant
// response's worst-case loss.
func TestPerfectPrivacyDegenerates(t *testing.T) {
	c := &Consumer{Loss: loss.Absolute{}}
	tl, err := OptimalMechanism(c, 2, rational.One())
	if err != nil {
		t.Fatal(err)
	}
	// All rows must be identical.
	m := tl.Mechanism
	for rr := 0; rr <= 2; rr++ {
		if m.Prob(0, rr).Cmp(m.Prob(1, rr)) != 0 || m.Prob(1, rr).Cmp(m.Prob(2, rr)) != 0 {
			t.Fatalf("α=1 mechanism has input-dependent rows:\n%s", m)
		}
	}
	// Best constant answer for |i−r| on {0,1,2} is r=1 with worst loss 1.
	if tl.Loss.Cmp(r("1")) != 0 {
		t.Errorf("α=1 optimum = %s, want 1", tl.Loss.RatString())
	}
}

// α = 0 imposes no DP constraint; the identity mechanism is feasible
// and the optimum is 0.
func TestNoPrivacyIsFree(t *testing.T) {
	c := &Consumer{Loss: loss.Squared{}}
	tl, err := OptimalMechanism(c, 3, rational.Zero())
	if err != nil {
		t.Fatal(err)
	}
	if tl.Loss.Sign() != 0 {
		t.Errorf("α=0 optimum = %s, want 0", tl.Loss.RatString())
	}
}

// --- Bayesian model -------------------------------------------------------

func TestUniformPriorAndValidate(t *testing.T) {
	b := &Bayesian{Loss: loss.Absolute{}, Prior: UniformPrior(3)}
	if err := b.ValidatePrior(3); err != nil {
		t.Fatal(err)
	}
	if err := b.ValidatePrior(4); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := &Bayesian{Loss: loss.Absolute{}, Prior: []*big.Rat{r("1/2"), r("1/4")}}
	if err := bad.ValidatePrior(1); err == nil {
		t.Error("non-normalized prior accepted")
	}
	neg := &Bayesian{Loss: loss.Absolute{}, Prior: []*big.Rat{r("3/2"), r("-1/2")}}
	if err := neg.ValidatePrior(1); err == nil {
		t.Error("negative prior accepted")
	}
}

func TestBayesianExpectedLoss(t *testing.T) {
	u, err := mechanism.Uniform(2)
	if err != nil {
		t.Fatal(err)
	}
	b := &Bayesian{Loss: loss.Absolute{}, Prior: UniformPrior(2)}
	got, err := b.ExpectedLoss(u)
	if err != nil {
		t.Fatal(err)
	}
	// (1 + 2/3 + 1)/3 = 8/9.
	if got.Cmp(r("8/9")) != 0 {
		t.Errorf("Bayesian expected loss = %s, want 8/9", got.RatString())
	}
	badPrior := &Bayesian{Loss: loss.Absolute{}, Prior: UniformPrior(5)}
	if _, err := badPrior.ExpectedLoss(u); err == nil {
		t.Error("prior length mismatch accepted")
	}
}

// Ghosh et al.'s theorem, reproduced through our machinery: for every
// Bayesian consumer, deterministically post-processing the geometric
// mechanism matches the Bayesian-optimal tailored DP mechanism.
func TestBayesianUniversalOptimality(t *testing.T) {
	n := 3
	priors := [][]*big.Rat{
		UniformPrior(n),
		{r("1/2"), r("1/4"), r("1/8"), r("1/8")},
		{r("0"), r("0"), r("1/2"), r("1/2")},
	}
	losses := []loss.Function{loss.Absolute{}, loss.Squared{}, loss.ZeroOne{}}
	for _, prior := range priors {
		for _, lf := range losses {
			for _, as := range []string{"1/4", "1/2"} {
				b := &Bayesian{Loss: lf, Prior: prior}
				g := geo(t, n, as)
				inter, err := OptimalBayesianInteraction(b, g)
				if err != nil {
					t.Fatal(err)
				}
				tailored, err := OptimalBayesianMechanism(b, n, r(as))
				if err != nil {
					t.Fatal(err)
				}
				if inter.Loss.Cmp(tailored.Loss) != 0 {
					t.Errorf("loss=%s α=%s: Bayesian interaction %s != tailored %s",
						lf.Name(), as, inter.Loss.RatString(), tailored.Loss.RatString())
				}
			}
		}
	}
}

// Bayesian post-processing is deterministic by construction: T must be
// a 0/1 matrix with exactly one 1 per row, matching Remap.
func TestBayesianInteractionDeterministic(t *testing.T) {
	b := &Bayesian{Loss: loss.Absolute{}, Prior: UniformPrior(3)}
	g := geo(t, 3, "1/4")
	inter, err := OptimalBayesianInteraction(b, g)
	if err != nil {
		t.Fatal(err)
	}
	for rr := 0; rr <= 3; rr++ {
		ones := 0
		for rp := 0; rp <= 3; rp++ {
			v := inter.T.At(rr, rp)
			switch {
			case v.Sign() == 0:
			case v.Cmp(rational.One()) == 0:
				ones++
				if inter.Remap[rr] != rp {
					t.Errorf("Remap[%d] = %d but T has 1 at %d", rr, inter.Remap[rr], rp)
				}
			default:
				t.Errorf("T[%d][%d] = %s is fractional", rr, rp, v.RatString())
			}
		}
		if ones != 1 {
			t.Errorf("row %d has %d ones", rr, ones)
		}
	}
}

func TestOptimalBayesianValidation(t *testing.T) {
	b := &Bayesian{Loss: loss.Absolute{}, Prior: UniformPrior(2)}
	if _, err := OptimalBayesianMechanism(b, 3, r("1/2")); err == nil {
		t.Error("prior/n mismatch accepted")
	}
	if _, err := OptimalBayesianInteraction(b, geo(t, 3, "1/2")); err == nil {
		t.Error("prior/n mismatch accepted in interaction")
	}
}

// Property: the optimal interaction never does worse than taking the
// deployed mechanism at face value (post-processing can only help a
// rational consumer).
func TestInteractionNeverWorseThanFaceValue(t *testing.T) {
	for _, lf := range []loss.Function{loss.Absolute{}, loss.Squared{}, loss.ZeroOne{}} {
		for _, as := range []string{"1/4", "1/2", "3/4"} {
			for _, side := range [][]int{nil, Interval(1, 3), {0, 4}} {
				c := &Consumer{Loss: lf, Side: side}
				g := geo(t, 4, as)
				face, err := c.MinimaxLoss(g)
				if err != nil {
					t.Fatal(err)
				}
				inter, err := OptimalInteraction(c, g)
				if err != nil {
					t.Fatal(err)
				}
				if inter.Loss.Cmp(face) > 0 {
					t.Errorf("loss=%s α=%s side=%v: interaction %s worse than face value %s",
						lf.Name(), as, side, inter.Loss.RatString(), face.RatString())
				}
			}
		}
	}
}

// Property: shrinking side information (more knowledge) never hurts
// the optimal interaction.
func TestMoreSideInformationNeverHurts(t *testing.T) {
	g := geo(t, 4, "1/2")
	lf := loss.Absolute{}
	full := &Consumer{Loss: lf}
	informed := &Consumer{Loss: lf, Side: Interval(1, 3)}
	fullInter, err := OptimalInteraction(full, g)
	if err != nil {
		t.Fatal(err)
	}
	informedInter, err := OptimalInteraction(informed, g)
	if err != nil {
		t.Fatal(err)
	}
	if informedInter.Loss.Cmp(fullInter.Loss) > 0 {
		t.Errorf("more side info gave worse loss: %s > %s",
			informedInter.Loss.RatString(), fullInter.Loss.RatString())
	}
}
