package consumer

import (
	"fmt"
	"math/big"

	"minimaxdp/internal/lp"
	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
)

// This file implements the structural check of the paper's Lemma 5:
// there always exists an optimal mechanism in which every pair of
// adjacent rows is "maximally squeezed" by the privacy constraints —
// a prefix of columns has the downward constraint tight
// (α·x[i][j] = x[i+1][j]), a suffix has the upward constraint tight
// (x[i][j] = α·x[i+1][j]), and at most two middle columns are slack.

// RowPairStructure describes how one adjacent row pair (i, i+1)
// satisfies Lemma 5.
type RowPairStructure struct {
	I  int // the pair is rows (I, I+1)
	C1 int // last column of the tight-prefix (−1 if empty)
	C2 int // first column of the tight-suffix (n+1 if empty)
}

// Slack returns the number of interior columns that are tight in
// neither direction (Lemma 5 allows at most one: c2 ∈ {c1+1, c1+2}).
func (s RowPairStructure) Slack() int { return s.C2 - s.C1 - 1 }

// CheckLemma5 verifies that the mechanism has the Lemma 5 structure:
// for every adjacent row pair there exist column indices c1 < c2 with
//
//	α·x[i][j] = x[i+1][j]  for all j ≤ c1,
//	x[i][j] = α·x[i+1][j]  for all j ≥ c2,
//	c2 − c1 ∈ {1, 2}.
//
// It returns the per-pair structure on success, or a descriptive error
// on the first pair that violates the pattern. The geometric mechanism
// satisfies it with zero slack (c2 = c1+1), and LP vertices produced
// by OptimalMechanism satisfy it with slack ≤ 1 — this checker is how
// the test suite validates Lemma 5 computationally.
func CheckLemma5(m *mechanism.Mechanism, alpha *big.Rat) ([]RowPairStructure, error) {
	n := m.N()
	out := make([]RowPairStructure, 0, n)
	for i := 0; i < n; i++ {
		// Longest prefix with α·x[i][j] == x[i+1][j].
		c1 := -1
		for j := 0; j <= n; j++ {
			if rational.Mul(alpha, m.Prob(i, j)).Cmp(m.Prob(i+1, j)) != 0 {
				break
			}
			c1 = j
		}
		// Longest suffix with x[i][j] == α·x[i+1][j].
		c2 := n + 1
		for j := n; j >= 0; j-- {
			if m.Prob(i, j).Cmp(rational.Mul(alpha, m.Prob(i+1, j))) != 0 {
				break
			}
			c2 = j
		}
		s := RowPairStructure{I: i, C1: c1, C2: c2}
		// Negative slack means prefix and suffix overlap (possible only
		// through shared zero entries); any c1, c2 inside the overlap
		// then witness the lemma, so only slack > 1 is a violation.
		if s.Slack() > 1 {
			return nil, fmt.Errorf("consumer: Lemma 5 structure fails at rows (%d,%d): prefix ends %d, suffix starts %d (%d slack columns)",
				i, i+1, c1, c2, s.Slack())
		}
		out = append(out, s)
	}
	return out, nil
}

// OptimalMechanismRefined implements the tie-breaking used in the
// proof of Lemma 5: among all mechanisms minimizing the consumer's
// minimax loss L, it selects one that additionally minimizes the
// secondary objective L′(x) = Σ_i Σ_r x[i][r]·|i−r| (lexicographic
// (L, L′) optimization, realized as two LP solves). The paper proves
// every such lexicographic optimum has the Lemma 5 adjacent-row
// structure; CheckLemma5 verifies it computationally.
func OptimalMechanismRefined(c *Consumer, n int, alpha *big.Rat) (*Tailored, error) {
	first, err := OptimalMechanism(c, n, alpha)
	if err != nil {
		return nil, err
	}
	s, err := c.side(n)
	if err != nil {
		return nil, err
	}
	p := lp.NewProblem(lp.Minimize)
	xv := make([][]lp.Var, n+1)
	for i := 0; i <= n; i++ {
		xv[i] = make([]lp.Var, n+1)
		for r := 0; r <= n; r++ {
			xv[i][r] = p.NewVariable(fmt.Sprintf("x[%d][%d]", i, r))
		}
	}
	// Secondary objective L′ over all rows.
	var obj []lp.Term
	for i := 0; i <= n; i++ {
		for r := 0; r <= n; r++ {
			d := int64(i - r)
			if d < 0 {
				d = -d
			}
			if d != 0 {
				obj = append(obj, lp.T(xv[i][r], rational.Int(d)))
			}
		}
	}
	p.SetObjective(obj...)
	// Primary optimality pinned: per-row loss ≤ L* for i ∈ S.
	for _, i := range s {
		var terms []lp.Term
		for r := 0; r <= n; r++ {
			coef := c.Loss.Loss(i, r)
			if coef.Sign() != 0 {
				terms = append(terms, lp.T(xv[i][r], coef))
			}
		}
		if len(terms) == 0 {
			continue
		}
		p.AddConstraint(terms, lp.LE, first.Loss)
	}
	negAlpha := rational.Neg(alpha)
	for i := 0; i < n; i++ {
		for r := 0; r <= n; r++ {
			p.AddConstraint([]lp.Term{lp.TInt(xv[i][r], 1), lp.T(xv[i+1][r], negAlpha)}, lp.GE, rational.Zero())
			p.AddConstraint([]lp.Term{lp.TInt(xv[i+1][r], 1), lp.T(xv[i][r], negAlpha)}, lp.GE, rational.Zero())
		}
	}
	for i := 0; i <= n; i++ {
		terms := make([]lp.Term, 0, n+1)
		for r := 0; r <= n; r++ {
			terms = append(terms, lp.TInt(xv[i][r], 1))
		}
		p.AddConstraint(terms, lp.EQ, rational.One())
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("consumer: refinement LP status %v", sol.Status)
	}
	xm := matrix.New(n+1, n+1)
	for i := 0; i <= n; i++ {
		for r := 0; r <= n; r++ {
			xm.Set(i, r, sol.Value(xv[i][r]))
		}
	}
	mech, err := mechanism.New(xm)
	if err != nil {
		return nil, fmt.Errorf("consumer: refined LP solution not a mechanism: %w", err)
	}
	return &Tailored{Mechanism: mech, Loss: first.Loss}, nil
}

// OptimalDeterministicInteraction finds, by exhaustive enumeration,
// the best DETERMINISTIC reinterpretation of the deployed mechanism's
// outputs for a minimax consumer — the restriction Section 2.7
// contrasts with: Bayesian consumers lose nothing by determinism,
// minimax consumers generally do. The search space has (n+1)^(n+1)
// maps, so the domain is limited to n ≤ 6; use OptimalInteraction for
// the unrestricted (randomized) optimum.
func OptimalDeterministicInteraction(c *Consumer, deployed *mechanism.Mechanism) (*Interaction, error) {
	n := deployed.N()
	if n > 6 {
		return nil, fmt.Errorf("consumer: deterministic enumeration limited to n ≤ 6, got %d", n)
	}
	s, err := c.side(n)
	if err != nil {
		return nil, err
	}
	// Precompute loss table and deployed rows to keep the inner loop
	// cheap.
	lossTab := make([][]*big.Rat, n+1)
	for i := 0; i <= n; i++ {
		lossTab[i] = make([]*big.Rat, n+1)
		for r := 0; r <= n; r++ {
			lossTab[i][r] = c.Loss.Loss(i, r)
		}
	}
	remap := make([]int, n+1)
	best := make([]int, n+1)
	var bestLoss *big.Rat
	tmp := rational.Zero()
	for {
		// Evaluate minimax loss of this remap.
		var worst *big.Rat
		for _, i := range s {
			rowLoss := rational.Zero()
			for r := 0; r <= n; r++ {
				p := deployed.Prob(i, r)
				if p.Sign() == 0 {
					continue
				}
				tmp.Mul(p, lossTab[i][remap[r]])
				rowLoss.Add(rowLoss, tmp)
			}
			if worst == nil || rowLoss.Cmp(worst) > 0 {
				worst = rowLoss
			}
		}
		if bestLoss == nil || worst.Cmp(bestLoss) < 0 {
			bestLoss = worst
			copy(best, remap)
		}
		// Next remap in mixed-radix order.
		pos := 0
		for pos <= n {
			remap[pos]++
			if remap[pos] <= n {
				break
			}
			remap[pos] = 0
			pos++
		}
		if pos > n {
			break
		}
	}
	tm := matrix.New(n+1, n+1)
	for r := 0; r <= n; r++ {
		tm.Set(r, best[r], rational.One())
	}
	induced, err := deployed.PostProcess(tm)
	if err != nil {
		return nil, err
	}
	return &Interaction{T: tm, Induced: induced, Loss: bestLoss}, nil
}
