// Package consumer implements the paper's information-consumer models:
// minimax (risk-averse) consumers with side information (Section 2.3),
// their optimal interaction with a deployed mechanism (the LP of
// Section 2.4.3), the optimal tailored differentially-private
// mechanism for a known consumer (the LP of Section 2.5), and — for
// the Section 2.7 comparison — Bayesian consumers in the model of
// Ghosh, Roughgarden and Sundararajan (STOC 2009).
package consumer

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"

	"minimaxdp/internal/loss"
	"minimaxdp/internal/lp"
	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
)

// Consumer is a minimax information consumer: a monotone loss function
// plus side information S ⊆ {0..n} (the consumer knows the true result
// lies in S). A nil or empty Side means S = {0..n}.
type Consumer struct {
	Loss loss.Function
	Side []int
	Name string
}

// ErrEmptySide is returned when the side-information set has no
// element inside {0..n}.
var ErrEmptySide = errors.New("consumer: side information set is empty on {0..n}")

// side returns the sorted, deduplicated side-information set clipped
// to {0..n}, defaulting to the full set.
func (c *Consumer) side(n int) ([]int, error) {
	if len(c.Side) == 0 {
		out := make([]int, n+1)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	seen := make(map[int]bool, len(c.Side))
	var out []int
	for _, i := range c.Side {
		if i < 0 || i > n || seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, i)
	}
	if len(out) == 0 {
		return nil, ErrEmptySide
	}
	sort.Ints(out)
	return out, nil
}

// Interval is a convenience constructor for contiguous side
// information {lo..hi}, the form side information takes in the paper's
// examples (population upper bounds, drug-sales lower bounds).
func Interval(lo, hi int) []int {
	if hi < lo {
		return nil
	}
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

// ExpectedLoss returns Σ_r l(i,r)·x[i][r], the consumer's expected
// loss when the true result is i (Section 2.3).
func (c *Consumer) ExpectedLoss(m *mechanism.Mechanism, i int) *big.Rat {
	n := m.N()
	out := rational.Zero()
	tmp := rational.Zero()
	for r := 0; r <= n; r++ {
		tmp.Mul(c.Loss.Loss(i, r), m.Prob(i, r))
		out.Add(out, tmp)
	}
	return out
}

// MinimaxLoss returns Equation (1): max over i ∈ S of the expected
// loss — the risk-averse consumer's dis-utility for mechanism m.
func (c *Consumer) MinimaxLoss(m *mechanism.Mechanism) (*big.Rat, error) {
	s, err := c.side(m.N())
	if err != nil {
		return nil, err
	}
	var worst *big.Rat
	for _, i := range s {
		l := c.ExpectedLoss(m, i)
		if worst == nil || l.Cmp(worst) > 0 {
			worst = l
		}
	}
	return worst, nil
}

// Interaction is a consumer's optimal reaction to a deployed
// mechanism: the reinterpretation T of its outputs, the induced
// mechanism y·T, and the induced loss under that consumer's own
// objective. For minimax consumers this is the solution of the
// Section 2.4.3 LP and T is randomized; for Bayesian consumers the
// optimal reaction is a deterministic posterior remap and Remap
// records it (Remap is non-nil exactly in the deterministic case).
type Interaction struct {
	T       *matrix.Matrix
	Induced *mechanism.Mechanism
	Loss    *big.Rat
	Remap   []int
}

// OptimalInteraction solves the consumer's post-processing LP against
// the deployed mechanism y (Section 2.4.3). It is
// OptimalInteractionCtx with a background context.
func OptimalInteraction(c *Consumer, deployed *mechanism.Mechanism) (*Interaction, error) {
	return OptimalInteractionCtx(context.Background(), c, deployed)
}

// OptimalInteractionCtx solves the consumer's post-processing LP
// against the deployed mechanism y (Section 2.4.3):
//
//	minimize  max_{i∈S} Σ_{r'} x[i][r']·l(i,r')
//	where     x[i][r'] = Σ_r y[i][r]·T[r][r']
//	s.t.      each row of T is a probability distribution.
//
// The solve is the hot serving path behind Theorem 1 and can run for
// seconds at realistic n; ctx cancellation aborts it between simplex
// pivots and returns ctx.Err().
func OptimalInteractionCtx(ctx context.Context, c *Consumer, deployed *mechanism.Mechanism) (*Interaction, error) {
	return OptimalInteractionOpts(ctx, c, deployed, lp.SolveOpts{})
}

// OptimalInteractionOpts is OptimalInteractionCtx with explicit LP
// solver options: strategy selection (warm-start vs pure exact) and
// per-solve statistics for the serving layer's metrics.
func OptimalInteractionOpts(ctx context.Context, c *Consumer, deployed *mechanism.Mechanism, opts lp.SolveOpts) (*Interaction, error) {
	n := deployed.N()
	s, err := c.side(n)
	if err != nil {
		return nil, err
	}
	p := lp.NewProblem(lp.Minimize)
	d := p.NewVariable("d") // worst-case loss bound; losses are ≥ 0
	tv := make([][]lp.Var, n+1)
	for r := 0; r <= n; r++ {
		tv[r] = make([]lp.Var, n+1)
		for rp := 0; rp <= n; rp++ {
			tv[r][rp] = p.NewVariable(fmt.Sprintf("T[%d][%d]", r, rp))
		}
	}
	p.SetObjective(lp.TInt(d, 1))
	// d − Σ_{r,r'} y[i][r]·l(i,r')·T[r][r'] ≥ 0 for every i ∈ S.
	for _, i := range s {
		terms := []lp.Term{lp.TInt(d, 1)}
		for r := 0; r <= n; r++ {
			yir := deployed.Prob(i, r)
			if yir.Sign() == 0 {
				continue
			}
			for rp := 0; rp <= n; rp++ {
				coef := rational.Mul(yir, c.Loss.Loss(i, rp))
				if coef.Sign() == 0 {
					continue
				}
				terms = append(terms, lp.T(tv[r][rp], rational.Neg(coef)))
			}
		}
		p.AddConstraint(terms, lp.GE, rational.Zero())
	}
	// Row-stochasticity of T.
	for r := 0; r <= n; r++ {
		terms := make([]lp.Term, 0, n+1)
		for rp := 0; rp <= n; rp++ {
			terms = append(terms, lp.TInt(tv[r][rp], 1))
		}
		p.AddConstraint(terms, lp.EQ, rational.One())
	}
	sol, err := p.SolveWithOpts(ctx, opts)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("consumer: interaction LP status %v", sol.Status)
	}
	tm := matrix.New(n+1, n+1)
	for r := 0; r <= n; r++ {
		for rp := 0; rp <= n; rp++ {
			tm.Set(r, rp, sol.Value(tv[r][rp]))
		}
	}
	induced, err := deployed.PostProcess(tm)
	if err != nil {
		return nil, fmt.Errorf("consumer: induced mechanism invalid: %w", err)
	}
	return &Interaction{T: tm, Induced: induced, Loss: sol.Objective}, nil
}

// Tailored is the result of solving the Section 2.5 LP: the optimal
// α-differentially-private mechanism for a known consumer, with its
// minimax loss.
type Tailored struct {
	Mechanism *mechanism.Mechanism
	Loss      *big.Rat
}

// OptimalMechanism solves the Section 2.5 LP over all oblivious α-DP
// mechanisms on {0..n}. It is OptimalMechanismCtx with a background
// context.
func OptimalMechanism(c *Consumer, n int, alpha *big.Rat) (*Tailored, error) {
	return OptimalMechanismCtx(context.Background(), c, n, alpha)
}

// OptimalMechanismCtx solves the Section 2.5 LP over all oblivious
// α-DP mechanisms on {0..n}:
//
//	minimize  d
//	s.t.      d − Σ_r x[i][r]·l(i,r) ≥ 0            ∀ i ∈ S
//	          x[i][r] − α·x[i+1][r] ≥ 0             ∀ i < n, r
//	          x[i+1][r] − α·x[i][r] ≥ 0             ∀ i < n, r
//	          Σ_r x[i][r] = 1                        ∀ i
//	          x ≥ 0.
//
// The LP has (n+1)²+1 variables and its solve time grows roughly as
// n⁴; ctx cancellation aborts it between simplex pivots and returns
// ctx.Err().
func OptimalMechanismCtx(ctx context.Context, c *Consumer, n int, alpha *big.Rat) (*Tailored, error) {
	return OptimalMechanismOpts(ctx, c, n, alpha, lp.SolveOpts{})
}

// OptimalMechanismOpts is OptimalMechanismCtx with explicit LP solver
// options: strategy selection (warm-start vs pure exact) and
// per-solve statistics for the serving layer's metrics.
func OptimalMechanismOpts(ctx context.Context, c *Consumer, n int, alpha *big.Rat, opts lp.SolveOpts) (*Tailored, error) {
	if n < 1 {
		return nil, fmt.Errorf("consumer: n must be ≥ 1, got %d", n)
	}
	if alpha.Sign() < 0 || alpha.Cmp(rational.One()) > 0 {
		return nil, fmt.Errorf("consumer: α must be in [0,1], got %s", alpha.RatString())
	}
	s, err := c.side(n)
	if err != nil {
		return nil, err
	}
	p := lp.NewProblem(lp.Minimize)
	d := p.NewVariable("d")
	xv := make([][]lp.Var, n+1)
	for i := 0; i <= n; i++ {
		xv[i] = make([]lp.Var, n+1)
		for r := 0; r <= n; r++ {
			xv[i][r] = p.NewVariable(fmt.Sprintf("x[%d][%d]", i, r))
		}
	}
	p.SetObjective(lp.TInt(d, 1))
	for _, i := range s {
		terms := []lp.Term{lp.TInt(d, 1)}
		for r := 0; r <= n; r++ {
			coef := c.Loss.Loss(i, r)
			if coef.Sign() == 0 {
				continue
			}
			terms = append(terms, lp.T(xv[i][r], rational.Neg(coef)))
		}
		p.AddConstraint(terms, lp.GE, rational.Zero())
	}
	negAlpha := rational.Neg(alpha)
	for i := 0; i < n; i++ {
		for r := 0; r <= n; r++ {
			p.AddConstraint([]lp.Term{lp.TInt(xv[i][r], 1), lp.T(xv[i+1][r], negAlpha)}, lp.GE, rational.Zero())
			p.AddConstraint([]lp.Term{lp.TInt(xv[i+1][r], 1), lp.T(xv[i][r], negAlpha)}, lp.GE, rational.Zero())
		}
	}
	for i := 0; i <= n; i++ {
		terms := make([]lp.Term, 0, n+1)
		for r := 0; r <= n; r++ {
			terms = append(terms, lp.TInt(xv[i][r], 1))
		}
		p.AddConstraint(terms, lp.EQ, rational.One())
	}
	sol, err := p.SolveWithOpts(ctx, opts)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("consumer: tailored-mechanism LP status %v", sol.Status)
	}
	xm := matrix.New(n+1, n+1)
	for i := 0; i <= n; i++ {
		for r := 0; r <= n; r++ {
			xm.Set(i, r, sol.Value(xv[i][r]))
		}
	}
	mech, err := mechanism.New(xm)
	if err != nil {
		return nil, fmt.Errorf("consumer: LP solution not a mechanism: %w", err)
	}
	return &Tailored{Mechanism: mech, Loss: sol.Objective}, nil
}

// --- Bayesian consumers (Section 2.7 comparison) --------------------------

// Bayesian is an information consumer in the Ghosh et al. model: a
// prior over true results plus a loss function. Bayesian consumers
// minimize expected (prior-weighted) loss instead of worst-case loss.
type Bayesian struct {
	Loss  loss.Function
	Prior []*big.Rat // length n+1, non-negative, sums to 1
	Name  string
}

// ValidatePrior checks the prior is a distribution on {0..n}.
func (b *Bayesian) ValidatePrior(n int) error {
	if len(b.Prior) != n+1 {
		return fmt.Errorf("consumer: prior length %d, want %d", len(b.Prior), n+1)
	}
	sum := rational.Zero()
	for i, p := range b.Prior {
		if p.Sign() < 0 {
			return fmt.Errorf("consumer: prior[%d] = %s < 0", i, p.RatString())
		}
		sum.Add(sum, p)
	}
	if sum.Cmp(rational.One()) != 0 {
		return fmt.Errorf("consumer: prior sums to %s, want 1", sum.RatString())
	}
	return nil
}

// UniformPrior returns the uniform prior on {0..n}.
func UniformPrior(n int) []*big.Rat {
	out := make([]*big.Rat, n+1)
	for i := range out {
		out[i] = rational.New(1, int64(n+1))
	}
	return out
}

// ExpectedLoss returns the Bayesian consumer's prior-weighted expected
// loss Σ_i prior[i]·Σ_r x[i][r]·l(i,r) under mechanism m.
func (b *Bayesian) ExpectedLoss(m *mechanism.Mechanism) (*big.Rat, error) {
	n := m.N()
	if err := b.ValidatePrior(n); err != nil {
		return nil, err
	}
	out := rational.Zero()
	tmp := rational.Zero()
	for i := 0; i <= n; i++ {
		if b.Prior[i].Sign() == 0 {
			continue
		}
		inner := rational.Zero()
		for r := 0; r <= n; r++ {
			tmp.Mul(b.Loss.Loss(i, r), m.Prob(i, r))
			inner.Add(inner, tmp)
		}
		tmp.Mul(b.Prior[i], inner)
		out.Add(out, tmp)
	}
	return out, nil
}

// BayesianInteraction is the Bayesian consumer's optimal
// post-processing of a deployed mechanism. As Section 2.7 notes,
// Bayesian post-processing is deterministic: each received output r is
// remapped to the single r' minimizing posterior expected loss, so T
// is a 0/1 matrix. Remap[r] records that choice.
type BayesianInteraction struct {
	Remap   []int
	T       *matrix.Matrix
	Induced *mechanism.Mechanism
	Loss    *big.Rat
}

// OptimalBayesianInteraction computes the Bayes-optimal deterministic
// remap of the deployed mechanism's outputs. It is
// OptimalBayesianInteractionCtx with a background context.
func OptimalBayesianInteraction(b *Bayesian, deployed *mechanism.Mechanism) (*BayesianInteraction, error) {
	return OptimalBayesianInteractionCtx(context.Background(), b, deployed)
}

// OptimalBayesianInteractionCtx computes the Bayes-optimal
// deterministic remap of the deployed mechanism's outputs: for each
// output r,
//
//	remap(r) = argmin_{r'} Σ_i prior[i]·y[i][r]·l(i,r')
//
// (posterior expected loss; ties broken toward the smallest r').
// The scan is O(n²) rational work per output; ctx cancellation aborts
// it between outputs and returns ctx.Err().
func OptimalBayesianInteractionCtx(ctx context.Context, b *Bayesian, deployed *mechanism.Mechanism) (*BayesianInteraction, error) {
	return OptimalBayesianInteractionOpts(ctx, b, deployed, lp.SolveOpts{})
}

// OptimalBayesianInteractionOpts is OptimalBayesianInteractionCtx with
// explicit LP solver options, accepted for uniformity with the minimax
// API (consumer.Model threads one option set through every optimum).
// The Bayesian remap is an argmin scan rather than an LP, so the
// options are ignored.
func OptimalBayesianInteractionOpts(ctx context.Context, b *Bayesian, deployed *mechanism.Mechanism, _ lp.SolveOpts) (*BayesianInteraction, error) {
	n := deployed.N()
	if err := b.ValidatePrior(n); err != nil {
		return nil, err
	}
	remap := make([]int, n+1)
	tmp := rational.Zero()
	for r := 0; r <= n; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var bestVal *big.Rat
		best := 0
		for rp := 0; rp <= n; rp++ {
			val := rational.Zero()
			for i := 0; i <= n; i++ {
				if b.Prior[i].Sign() == 0 {
					continue
				}
				tmp.Mul(b.Prior[i], deployed.Prob(i, r))
				tmp.Mul(tmp, b.Loss.Loss(i, rp))
				val.Add(val, tmp)
			}
			if bestVal == nil || val.Cmp(bestVal) < 0 {
				bestVal, best = val, rp
			}
		}
		remap[r] = best
	}
	tm := matrix.New(n+1, n+1)
	for r := 0; r <= n; r++ {
		tm.Set(r, remap[r], rational.One())
	}
	induced, err := deployed.PostProcess(tm)
	if err != nil {
		return nil, err
	}
	l, err := b.ExpectedLoss(induced)
	if err != nil {
		return nil, err
	}
	return &BayesianInteraction{Remap: remap, T: tm, Induced: induced, Loss: l}, nil
}

// OptimalBayesianMechanism solves the Ghosh-et-al. analogue of the
// Section 2.5 LP: minimize prior-weighted expected loss over all
// oblivious α-DP mechanisms. It is OptimalBayesianMechanismCtx with a
// background context.
func OptimalBayesianMechanism(b *Bayesian, n int, alpha *big.Rat) (*Tailored, error) {
	return OptimalBayesianMechanismCtx(context.Background(), b, n, alpha)
}

// OptimalBayesianMechanismCtx solves the Ghosh-et-al. analogue of the
// Section 2.5 LP over all oblivious α-DP mechanisms on {0..n}:
//
//	minimize  Σ_i prior[i]·Σ_r x[i][r]·l(i,r)
//	s.t.      x[i][r] − α·x[i+1][r] ≥ 0             ∀ i < n, r
//	          x[i+1][r] − α·x[i][r] ≥ 0             ∀ i < n, r
//	          Σ_r x[i][r] = 1                        ∀ i
//	          x ≥ 0.
//
// The LP is the same size as the minimax tailored LP (minus the
// epigraph variable); ctx cancellation aborts it between simplex
// pivots and returns ctx.Err().
func OptimalBayesianMechanismCtx(ctx context.Context, b *Bayesian, n int, alpha *big.Rat) (*Tailored, error) {
	return OptimalBayesianMechanismOpts(ctx, b, n, alpha, lp.SolveOpts{})
}

// OptimalBayesianMechanismOpts is OptimalBayesianMechanismCtx with
// explicit LP solver options: strategy selection (warm-start vs pure
// exact) and per-solve statistics for the serving layer's metrics.
func OptimalBayesianMechanismOpts(ctx context.Context, b *Bayesian, n int, alpha *big.Rat, opts lp.SolveOpts) (*Tailored, error) {
	if n < 1 {
		return nil, fmt.Errorf("consumer: n must be ≥ 1, got %d", n)
	}
	if alpha.Sign() < 0 || alpha.Cmp(rational.One()) > 0 {
		return nil, fmt.Errorf("consumer: α must be in [0,1], got %s", alpha.RatString())
	}
	if err := b.ValidatePrior(n); err != nil {
		return nil, err
	}
	p := lp.NewProblem(lp.Minimize)
	xv := make([][]lp.Var, n+1)
	for i := 0; i <= n; i++ {
		xv[i] = make([]lp.Var, n+1)
		for r := 0; r <= n; r++ {
			xv[i][r] = p.NewVariable(fmt.Sprintf("x[%d][%d]", i, r))
		}
	}
	var obj []lp.Term
	for i := 0; i <= n; i++ {
		for r := 0; r <= n; r++ {
			coef := rational.Mul(b.Prior[i], b.Loss.Loss(i, r))
			if coef.Sign() != 0 {
				obj = append(obj, lp.T(xv[i][r], coef))
			}
		}
	}
	p.SetObjective(obj...)
	negAlpha := rational.Neg(alpha)
	for i := 0; i < n; i++ {
		for r := 0; r <= n; r++ {
			p.AddConstraint([]lp.Term{lp.TInt(xv[i][r], 1), lp.T(xv[i+1][r], negAlpha)}, lp.GE, rational.Zero())
			p.AddConstraint([]lp.Term{lp.TInt(xv[i+1][r], 1), lp.T(xv[i][r], negAlpha)}, lp.GE, rational.Zero())
		}
	}
	for i := 0; i <= n; i++ {
		terms := make([]lp.Term, 0, n+1)
		for r := 0; r <= n; r++ {
			terms = append(terms, lp.TInt(xv[i][r], 1))
		}
		p.AddConstraint(terms, lp.EQ, rational.One())
	}
	sol, err := p.SolveWithOpts(ctx, opts)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("consumer: Bayesian LP status %v", sol.Status)
	}
	xm := matrix.New(n+1, n+1)
	for i := 0; i <= n; i++ {
		for r := 0; r <= n; r++ {
			xm.Set(i, r, sol.Value(xv[i][r]))
		}
	}
	mech, err := mechanism.New(xm)
	if err != nil {
		return nil, err
	}
	return &Tailored{Mechanism: mech, Loss: sol.Objective}, nil
}
