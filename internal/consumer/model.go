// The unified consumer-model abstraction. The paper studies two kinds
// of information consumer: the minimax (risk-averse) consumer of
// Section 2.3 and — for the Section 2.7 contrast — the Bayesian
// consumer of Ghosh, Roughgarden and Sundararajan. Both are "a way to
// score a mechanism, plus an optimal reaction to a deployed one", and
// the serving layer (engine compare artifacts, POST /v1/compare, the
// gap sweep) treats them uniformly through the Model interface:
// exact-rational loss evaluation, context-first LP-backed optima with
// lp.SolveOpts threading, and a canonical cache identity.
//
// Conventions shared by both implementations:
//
//   - EvalLoss scores a deployed mechanism as-is (no post-processing);
//   - OptimalInteractionCtx is the consumer's best reaction to a
//     deployed mechanism (randomized post-processing LP for minimax,
//     deterministic posterior remap for Bayesian — both returned as a
//     *Interaction, with Remap non-nil exactly when the reaction is
//     deterministic);
//   - OptimalMechanismCtx is the α-DP mechanism a mechanism designer
//     would tailor to this one consumer, the yardstick optimality
//     gaps are measured against;
//   - Key is the canonical cache identity on {0..n}, stable across
//     processes (the engine hashes it into disk-store addresses).

package consumer

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strconv"
	"strings"

	"minimaxdp/internal/lp"
	"minimaxdp/internal/mechanism"
)

// Model is the unified consumer-model interface: anything that can
// score a mechanism exactly, react optimally to a deployed one, and
// name the tailored optimum it would be served by a mechanism
// designer who knew it. *Consumer (minimax) and *Bayesian implement
// it.
//
// All methods are exact-rational. The Ctx methods are context-first
// and thread lp.SolveOpts so the serving layer's warm-start strategy
// and per-solve statistics flow through uniformly; implementations
// whose optimum needs no LP (the Bayesian deterministic remap) accept
// and ignore the options.
type Model interface {
	// ModelName identifies the model family ("minimax", "bayesian")
	// for cache keys, API responses, and experiment tables.
	ModelName() string

	// Key returns the model's canonical cache identity on {0..n}:
	// equal keys iff the models are behaviorally identical on that
	// domain. It validates the model's parameters against n.
	Key(n int) (string, error)

	// EvalLoss scores the deployed mechanism as-is: worst-case
	// expected loss over the side set for minimax, prior-weighted
	// expected loss for Bayesian.
	EvalLoss(m *mechanism.Mechanism) (*big.Rat, error)

	// OptimalInteractionCtx computes the consumer's optimal reaction
	// to the deployed mechanism. Remap is non-nil exactly when the
	// optimal reaction is deterministic.
	OptimalInteractionCtx(ctx context.Context, deployed *mechanism.Mechanism, opts lp.SolveOpts) (*Interaction, error)

	// OptimalMechanismCtx computes the α-DP mechanism tailored to
	// this consumer on {0..n} — the optimality-gap yardstick.
	OptimalMechanismCtx(ctx context.Context, n int, alpha *big.Rat, opts lp.SolveOpts) (*Tailored, error)
}

// --- minimax implementation ----------------------------------------------

// ModelName implements Model: the paper's risk-averse consumer.
func (c *Consumer) ModelName() string { return "minimax" }

// Key implements Model. The identity is the loss function's name plus
// the sorted, deduplicated side-information set clipped to {0..n}
// (matching how the LP builders normalize side information); the
// display Name is deliberately excluded. This string is also the
// engine's historical cache identity for minimax consumers, so
// artifacts persisted before the Model unification keep their disk
// addresses.
func (c *Consumer) Key(n int) (string, error) {
	if c == nil || c.Loss == nil {
		return "", fmt.Errorf("consumer: consumer with a loss function required")
	}
	var b strings.Builder
	b.WriteString("loss=")
	b.WriteString(c.Loss.Name())
	b.WriteString("|side=")
	if len(c.Side) == 0 {
		b.WriteString("full")
		return b.String(), nil
	}
	side := make([]int, 0, len(c.Side))
	seen := make(map[int]bool, len(c.Side))
	for _, i := range c.Side {
		if i < 0 || i > n || seen[i] {
			continue
		}
		seen[i] = true
		side = append(side, i)
	}
	if len(side) == 0 {
		return "", ErrEmptySide
	}
	sort.Ints(side)
	for k, i := range side {
		if k > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(i))
	}
	return b.String(), nil
}

// EvalLoss implements Model: Equation (1), the minimax loss.
func (c *Consumer) EvalLoss(m *mechanism.Mechanism) (*big.Rat, error) {
	return c.MinimaxLoss(m)
}

// OptimalInteractionCtx implements Model via the Section 2.4.3
// post-processing LP (OptimalInteractionOpts).
func (c *Consumer) OptimalInteractionCtx(ctx context.Context, deployed *mechanism.Mechanism, opts lp.SolveOpts) (*Interaction, error) {
	return OptimalInteractionOpts(ctx, c, deployed, opts)
}

// OptimalMechanismCtx implements Model via the Section 2.5 LP
// (OptimalMechanismOpts).
func (c *Consumer) OptimalMechanismCtx(ctx context.Context, n int, alpha *big.Rat, opts lp.SolveOpts) (*Tailored, error) {
	return OptimalMechanismOpts(ctx, c, n, alpha, opts)
}

// --- Bayesian implementation ---------------------------------------------

// ModelName implements Model: the Ghosh-et-al. expected-loss consumer.
func (b *Bayesian) ModelName() string { return "bayesian" }

// Key implements Model: the loss name plus the full prior in lowest
// terms. Validates the prior is a distribution on {0..n}.
func (b *Bayesian) Key(n int) (string, error) {
	if b == nil || b.Loss == nil {
		return "", fmt.Errorf("consumer: Bayesian consumer with a loss function required")
	}
	if err := b.ValidatePrior(n); err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("bayes|loss=")
	sb.WriteString(b.Loss.Name())
	sb.WriteString("|prior=")
	for i, p := range b.Prior {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.RatString())
	}
	return sb.String(), nil
}

// EvalLoss implements Model: prior-weighted expected loss.
func (b *Bayesian) EvalLoss(m *mechanism.Mechanism) (*big.Rat, error) {
	return b.ExpectedLoss(m)
}

// OptimalInteractionCtx implements Model: the Bayes-optimal
// deterministic remap, wrapped into the unified Interaction shape
// with Remap set. The remap is an argmin scan, not an LP, so opts is
// accepted for interface uniformity and ignored.
func (b *Bayesian) OptimalInteractionCtx(ctx context.Context, deployed *mechanism.Mechanism, opts lp.SolveOpts) (*Interaction, error) {
	bi, err := OptimalBayesianInteractionOpts(ctx, b, deployed, opts)
	if err != nil {
		return nil, err
	}
	return &Interaction{T: bi.T, Induced: bi.Induced, Loss: bi.Loss, Remap: bi.Remap}, nil
}

// OptimalMechanismCtx implements Model via the Ghosh-et-al. analogue
// of the Section 2.5 LP (OptimalBayesianMechanismOpts).
func (b *Bayesian) OptimalMechanismCtx(ctx context.Context, n int, alpha *big.Rat, opts lp.SolveOpts) (*Tailored, error) {
	return OptimalBayesianMechanismOpts(ctx, b, n, alpha, opts)
}

// Compile-time interface conformance pins: both consumer families
// stay behind the one Model abstraction.
var (
	_ Model = (*Consumer)(nil)
	_ Model = (*Bayesian)(nil)
)
