package store

import (
	"bytes"
	"math/big"
	"os"
	"path/filepath"
	"testing"

	"minimaxdp/internal/baseline"
	"minimaxdp/internal/consumer"
	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/release"
	"minimaxdp/internal/sample"
)

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTemp(t)
	payload := []byte("mechanism 2\n1/2 1/4 1/4\n1/4 1/2 1/4\n1/4 1/4 1/2\n")
	if err := s.Put("mechanisms", "n=2|a=1/2", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("mechanisms", "n=2|a=1/2")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Same class, different key: miss, not the other entry.
	if _, ok := s.Get("mechanisms", "n=2|a=1/3"); ok {
		t.Error("phantom hit on different key")
	}
	// Same key, different class: also a miss.
	if _, ok := s.Get("transitions", "n=2|a=1/2"); ok {
		t.Error("phantom hit on different class")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Writes != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPutOverwrite(t *testing.T) {
	s := openTemp(t)
	for _, payload := range []string{"first", "second"} {
		if err := s.Put("plans", "k", []byte(payload)); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.Get("plans", "k")
	if !ok || string(got) != "second" {
		t.Fatalf("Get after overwrite = %q, %v", got, ok)
	}
}

func TestClassValidation(t *testing.T) {
	s := openTemp(t)
	for _, bad := range []string{"", "Upper", "has space", "dot.dot", "quarantine", "a/b", "../x"} {
		if err := s.Put(bad, "k", []byte("p")); err == nil {
			t.Errorf("Put accepted class %q", bad)
		}
		if _, ok := s.Get(bad, "k"); ok {
			t.Errorf("Get hit on class %q", bad)
		}
	}
}

// entryFile finds the single on-disk entry for (class, key).
func entryFile(t *testing.T, s *Store, class, key string) string {
	t.Helper()
	_, path := s.entryPath(class, key)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("entry not on disk: %v", err)
	}
	return path
}

func TestCorruptEntryQuarantined(t *testing.T) {
	s := openTemp(t)
	if err := s.Put("mechanisms", "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, s, "mechanisms", "k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // break the checksum
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("mechanisms", "k"); ok {
		t.Fatal("corrupt entry served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry still at its address")
	}
	q, err := filepath.Glob(filepath.Join(s.Root(), "quarantine", "*.corrupt"))
	if err != nil || len(q) != 1 {
		t.Errorf("quarantine contents = %v, %v", q, err)
	}
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Errorf("corrupt counter = %d", st.Corrupt)
	}
	// The store self-heals: a fresh Put re-creates the entry.
	if err := s.Put("mechanisms", "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("mechanisms", "k"); !ok || string(got) != "payload" {
		t.Fatalf("repaired entry = %q, %v", got, ok)
	}
}

func TestTruncatedEntryIsMiss(t *testing.T) {
	s := openTemp(t)
	if err := s.Put("plans", "k", []byte("some payload bytes")); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, s, "plans", "k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("plans", "k"); ok {
		t.Fatal("truncated entry served")
	}
}

func TestVersionMismatchIsMiss(t *testing.T) {
	s := openTemp(t)
	if err := s.Put("tailored", "k", []byte("p")); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, s, "tailored", "k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Version is the u16 right after the 4-byte magic.
	data[4], data[5] = 0xff, 0xfe
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("tailored", "k"); ok {
		t.Fatal("future-version entry served")
	}
}

// TestMovedEntryRejected pins the identity check: a byte-valid
// envelope copied to another key's address must not be served as that
// key (this is what makes the content addressing trustworthy).
func TestMovedEntryRejected(t *testing.T) {
	s := openTemp(t)
	if err := s.Put("mechanisms", "n=4|a=1/2", []byte("mech for 1/2")); err != nil {
		t.Fatal(err)
	}
	src := entryFile(t, s, "mechanisms", "n=4|a=1/2")
	dir, dst := s.entryPath("mechanisms", "n=4|a=1/3")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("mechanisms", "n=4|a=1/3"); ok {
		t.Fatal("entry served under the wrong key")
	}
	// The original is untouched and still valid.
	if got, ok := s.Get("mechanisms", "n=4|a=1/2"); !ok || string(got) != "mech for 1/2" {
		t.Fatalf("original entry = %q, %v", got, ok)
	}
}

// --- codec round trips ----------------------------------------------------
//
// The acceptance criterion is byte-level determinism on rationals:
// decode(encode(x)) must equal x exactly AND re-encoding the decoded
// value must reproduce the identical bytes (so content addresses and
// checksums are stable across boots).

func TestMatrixCodecRoundTrip(t *testing.T) {
	m := matrix.MustFromStrings([][]string{
		{"1/3", "2/3", "0"},
		{"-7/2", "22/7", "1"},
	})
	enc := EncodeMatrix(m)
	dec, err := DecodeMatrix(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(m) {
		t.Fatal("decoded matrix differs")
	}
	if !bytes.Equal(EncodeMatrix(dec), enc) {
		t.Fatal("re-encode not byte-identical")
	}
	if _, err := DecodeMatrix([]byte("matrix 2 2\n1/2 1/2\n")); err == nil {
		t.Error("short matrix accepted")
	}
}

func TestMechanismCodecRoundTrip(t *testing.T) {
	g, err := mechanism.Geometric(6, rational.MustParse("1/3"))
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeMechanism(g)
	dec, err := DecodeMechanism(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(g) {
		t.Fatal("decoded mechanism differs")
	}
	if !bytes.Equal(EncodeMechanism(dec), enc) {
		t.Fatal("re-encode not byte-identical")
	}
	// Validation runs on decode: a non-stochastic payload is rejected.
	if _, err := DecodeMechanism([]byte("mechanism 1\n1/2 1/3\n1/2 1/2\n")); err == nil {
		t.Error("non-stochastic mechanism accepted")
	}
}

func TestTailoredCodecRoundTrip(t *testing.T) {
	tl, err := consumer.OptimalMechanism(&consumer.Consumer{Loss: lossAbs{}}, 3, rational.MustParse("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeTailored(tl)
	dec, err := DecodeTailored(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Loss.Cmp(tl.Loss) != 0 || !dec.Mechanism.Equal(tl.Mechanism) {
		t.Fatal("decoded tailored solution differs")
	}
	if !bytes.Equal(EncodeTailored(dec), enc) {
		t.Fatal("re-encode not byte-identical")
	}
	if _, err := DecodeTailored([]byte("tailored 0\nloss -1\n1\n")); err == nil {
		t.Error("negative loss accepted")
	}
}

// lossAbs is a local absolute loss so the test does not depend on
// internal/loss exporting one under a particular name.
type lossAbs struct{}

func (lossAbs) Name() string { return "absolute" }
func (lossAbs) Loss(i, r int) *big.Rat {
	d := i - r
	if d < 0 {
		d = -d
	}
	return big.NewRat(int64(d), 1)
}

func TestPlanCodecRoundTrip(t *testing.T) {
	alphas := []*big.Rat{rational.MustParse("1/4"), rational.MustParse("1/2"), rational.MustParse("3/4")}
	p, err := release.NewPlan(6, alphas)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodePlan(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.N() != 6 || dec.Levels() != 3 {
		t.Fatalf("decoded plan geometry %d/%d", dec.N(), dec.Levels())
	}
	for lvl := 1; lvl <= 3; lvl++ {
		pa, err := p.Alpha(lvl)
		if err != nil {
			t.Fatal(err)
		}
		da, err := dec.Alpha(lvl)
		if err != nil {
			t.Fatal(err)
		}
		if pa.Cmp(da) != 0 {
			t.Errorf("level %d alpha %s != %s", lvl, da.RatString(), pa.RatString())
		}
		pm, err := p.Marginal(lvl)
		if err != nil {
			t.Fatal(err)
		}
		dm, err := dec.Marginal(lvl)
		if err != nil {
			t.Fatal(err)
		}
		if !pm.Equal(dm) {
			t.Errorf("level %d marginal differs after round trip", lvl)
		}
	}
	for lvl := 1; lvl <= 2; lvl++ {
		pt, err := p.Transition(lvl)
		if err != nil {
			t.Fatal(err)
		}
		dt, err := dec.Transition(lvl)
		if err != nil {
			t.Fatal(err)
		}
		if !pt.Equal(dt) {
			t.Errorf("level %d transition differs after round trip", lvl)
		}
	}
	reenc, err := EncodePlan(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, enc) {
		t.Fatal("re-encode not byte-identical")
	}
}

func TestAliasTablesCodecRoundTrip(t *testing.T) {
	g, err := mechanism.Geometric(5, rational.MustParse("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]sample.AliasTables, g.Size())
	for i := range rows {
		d, err := sample.NewDyadicAlias(g.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = d.Tables()
	}
	enc, err := EncodeAliasTables(5, rows)
	if err != nil {
		t.Fatal(err)
	}
	n, decRows, err := DecodeAliasTables(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || len(decRows) != 6 {
		t.Fatalf("decoded n=%d rows=%d", n, len(decRows))
	}
	for i, r := range decRows {
		// Compiling the decoded tables must reproduce the exact same
		// sampler: same induced dyadic PMF as the original row.
		d, err := sample.DyadicAliasFromTables(r)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		orig, err := sample.NewDyadicAlias(g.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		op, dp := orig.InducedPMF(6), d.InducedPMF(6)
		for j := range op {
			if op[j].Cmp(dp[j]) != 0 {
				t.Fatalf("row %d outcome %d PMF %s != %s", i, j, dp[j].RatString(), op[j].RatString())
			}
		}
	}
	reenc, err := EncodeAliasTables(n, decRows)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, enc) {
		t.Fatal("re-encode not byte-identical")
	}
}

// TestStoredArtifactFullCycle drives codec + envelope + disk together
// for a mechanism, as the engine does.
func TestStoredArtifactFullCycle(t *testing.T) {
	s := openTemp(t)
	g, err := mechanism.Geometric(8, rational.MustParse("2/5"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("mechanisms", "n=8|a=2/5", EncodeMechanism(g)); err != nil {
		t.Fatal(err)
	}
	payload, ok := s.Get("mechanisms", "n=8|a=2/5")
	if !ok {
		t.Fatal("stored mechanism missing")
	}
	dec, err := DecodeMechanism(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(g) {
		t.Fatal("mechanism changed through the store")
	}
}

func TestCompareCodecRoundTrip(t *testing.T) {
	c := &baseline.Comparison{
		N:            3,
		Alpha:        rational.MustParse("1/4"),
		Model:        "minimax",
		TailoredLoss: rational.MustParse("5/7"),
		Entries: []baseline.Entry{
			{
				Spec:            "geometric",
				Loss:            rational.MustParse("6/7"),
				InteractionLoss: rational.MustParse("5/7"),
				Gap:             rational.MustParse("0"),
				BestAlpha:       rational.MustParse("1/4"),
			},
			{
				Spec:            "staircase:3",
				Loss:            rational.MustParse("9/7"),
				InteractionLoss: rational.MustParse("6/7"),
				Gap:             rational.MustParse("1/7"),
				BestAlpha:       rational.MustParse("1/4"),
			},
		},
	}
	enc := EncodeCompare(c)
	dec, err := DecodeCompare(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.N != c.N || dec.Model != c.Model || dec.Alpha.Cmp(c.Alpha) != 0 ||
		dec.TailoredLoss.Cmp(c.TailoredLoss) != 0 || len(dec.Entries) != len(c.Entries) {
		t.Fatalf("decoded comparison differs: %+v", dec)
	}
	for i := range c.Entries {
		if dec.Entries[i].Spec != c.Entries[i].Spec ||
			dec.Entries[i].Gap.Cmp(c.Entries[i].Gap) != 0 ||
			dec.Entries[i].BestAlpha.Cmp(c.Entries[i].BestAlpha) != 0 {
			t.Fatalf("entry %d differs: %+v", i, dec.Entries[i])
		}
	}
	if !bytes.Equal(EncodeCompare(dec), enc) {
		t.Fatal("re-encode not byte-identical")
	}
}

// A checksum-valid compare payload whose gap arithmetic does not hold
// must be rejected by the decoder, not served.
func TestCompareCodecRejectsInconsistentGap(t *testing.T) {
	bad := []byte("compare 3 minimax 1/4 1\n" +
		"tailored 5/7\n" +
		"entry geometric 6/7 5/7 1/100 1/4\n")
	if _, err := DecodeCompare(bad); err == nil {
		t.Fatal("inconsistent gap accepted")
	}
	unknown := []byte("compare 3 minimax 1/4 1\n" +
		"tailored 5/7\n" +
		"entry gauss 6/7 5/7 0 1/4\n")
	if _, err := DecodeCompare(unknown); err == nil {
		t.Fatal("unknown baseline spec accepted")
	}
	if _, err := DecodeCompare([]byte("compare 3 minimax 1/4 0\ntailored 5/7\n")); err == nil {
		t.Fatal("zero-entry comparison accepted")
	}
}
