// Package store is the content-addressed, disk-backed artifact store
// behind the engine's warm-boot path. Every expensive exact artifact
// the repo produces — geometric mechanisms, Lemma 3 transitions,
// Algorithm 1 release plans, §2.5 tailored-LP solutions, and the
// dyadic alias sampler tables — is a deterministic, total function of
// its cache key, so a byte-exact copy persisted once is valid forever:
// a restarted server loads instead of re-solving.
//
// Layout: an entry for (class, key) lives at
//
//	root/<class>/<hh>/<sha256(class \x00 key)>.art
//
// where <hh> is the first hex byte of the digest (256-way fan-out so
// directories stay small). The file is a versioned envelope — magic,
// format version, class, key, payload, SHA-256 checksum over all of
// them — so Get can verify both integrity and identity (a file moved
// or renamed to the wrong address is detected, not trusted).
//
// Failure policy: the store is an accelerator, never an authority.
// Get reports a miss for anything it cannot fully verify — wrong
// magic, unknown version, class/key mismatch, bad checksum, truncated
// file — and moves the offending file into root/quarantine/ so the
// next boot does not trip on it again; the caller falls back to
// solving and the write-back repairs the entry. I/O errors on the
// read path are likewise misses (counted, not fatal). Put is atomic
// per entry: temp file, fsync, rename.
//
// Encodings are deterministic and exact — rationals are serialized as
// canonical big.Rat strings (always lowest terms), integers in
// decimal, no floats anywhere on disk — so load(save(x)) == x holds
// identically on rationals and the package stays inside the
// floatflow/floatexact exact world. See codec.go.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// FormatVersion is the on-disk envelope version. Bump it when the
// envelope or any codec changes incompatibly; readers treat files
// from other versions as misses (the artifact is re-solved and
// re-written in the current format).
const FormatVersion = 1

// magic identifies a minimaxdp artifact envelope.
var magic = [4]byte{'M', 'D', 'P', 'A'}

const (
	quarantineDir = "quarantine"
	entrySuffix   = ".art"
)

// Stats is a point-in-time snapshot of the store's counters. Hits and
// Misses partition Get calls (a verification failure is a miss);
// Corrupt counts entries quarantined by Get; WriteErrors counts
// failed Puts.
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Writes      uint64 `json:"writes"`
	WriteErrors uint64 `json:"write_errors"`
	Corrupt     uint64 `json:"corrupt"`
}

// Store is a content-addressed artifact store rooted at one
// directory. All methods are safe for concurrent use; concurrent Puts
// of the same (class, key) are benign (deterministic artifacts make
// last-writer-wins a no-op) because each Put renames a unique temp
// file into place.
type Store struct {
	root string

	hits        atomic.Uint64
	misses      atomic.Uint64
	writes      atomic.Uint64
	writeErrors atomic.Uint64
	corrupt     atomic.Uint64
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty root directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrors.Load(),
		Corrupt:     s.corrupt.Load(),
	}
}

// checkClass rejects class names that would not map to a safe
// directory name. Classes are producer-controlled constants
// ("mechanisms", "tailored", ...), so this is a guard against
// programming errors, not an input sanitizer.
func checkClass(class string) error {
	if class == "" || class == quarantineDir {
		return fmt.Errorf("store: invalid class %q", class)
	}
	for _, c := range class {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return fmt.Errorf("store: invalid class %q (want [a-z0-9-]+)", class)
		}
	}
	return nil
}

// entryPath derives the content address of (class, key): the entry
// directory and the full file path.
func (s *Store) entryPath(class, key string) (dir, path string) {
	sum := sha256.Sum256(addressBytes(class, key))
	hexDigest := fmt.Sprintf("%x", sum)
	dir = filepath.Join(s.root, class, hexDigest[:2])
	return dir, filepath.Join(dir, hexDigest+entrySuffix)
}

// addressBytes is the digest input for the content address: class and
// key, NUL-separated (neither may contain NUL; keys are engine cache
// keys built from decimals and RatStrings).
func addressBytes(class, key string) []byte {
	b := make([]byte, 0, len(class)+1+len(key))
	b = append(b, class...)
	b = append(b, 0)
	b = append(b, key...)
	return b
}

// encodeEnvelope frames a payload: magic, version, lengths, class,
// key, payload, then SHA-256 over everything before the checksum.
func encodeEnvelope(class, key string, payload []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(payload) + len(class) + len(key) + 64)
	buf.Write(magic[:])
	var hdr [16]byte
	binary.BigEndian.PutUint16(hdr[0:2], FormatVersion)
	binary.BigEndian.PutUint16(hdr[2:4], uint16(len(class)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(key)))
	binary.BigEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	buf.Write(hdr[:])
	buf.WriteString(class)
	buf.WriteString(key)
	buf.Write(payload)
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes()
}

// decodeEnvelope verifies an envelope addressed as (class, key) and
// returns its payload. Any verification failure is an error; the
// caller decides whether to quarantine.
func decodeEnvelope(class, key string, data []byte) ([]byte, error) {
	const headerLen = 4 + 16
	if len(data) < headerLen+sha256.Size {
		return nil, fmt.Errorf("store: envelope truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:4], magic[:]) {
		return nil, errors.New("store: bad magic")
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != FormatVersion {
		return nil, fmt.Errorf("store: format version %d (want %d)", v, FormatVersion)
	}
	classLen := int(binary.BigEndian.Uint16(data[6:8]))
	keyLen := int(binary.BigEndian.Uint32(data[8:12]))
	payloadLen := binary.BigEndian.Uint64(data[12:20])
	want := uint64(headerLen) + uint64(classLen) + uint64(keyLen) + payloadLen + sha256.Size
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("store: envelope length %d, header implies %d", len(data), want)
	}
	body := data[:len(data)-sha256.Size]
	var sum [sha256.Size]byte
	copy(sum[:], data[len(data)-sha256.Size:])
	if sha256.Sum256(body) != sum {
		return nil, errors.New("store: checksum mismatch")
	}
	gotClass := string(data[headerLen : headerLen+classLen])
	gotKey := string(data[headerLen+classLen : headerLen+classLen+keyLen])
	if gotClass != class || gotKey != key {
		return nil, fmt.Errorf("store: entry addressed as (%s, %q) holds (%s, %q)",
			class, key, gotClass, gotKey)
	}
	return data[headerLen+classLen+keyLen : len(data)-sha256.Size], nil
}

// Get loads the payload stored for (class, key). ok is false on a
// miss — absent entry, or an entry that failed any verification (the
// file is then quarantined). Get never returns an error to the
// caller: the store's contract is "serve a verified artifact or get
// out of the way", so every failure mode degrades to a miss and the
// caller re-solves.
func (s *Store) Get(class, key string) (payload []byte, ok bool) {
	if err := checkClass(class); err != nil {
		s.misses.Add(1)
		return nil, false
	}
	_, path := s.entryPath(class, key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, err = decodeEnvelope(class, key, data)
	if err != nil {
		s.quarantine(path)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Put persists payload as the artifact for (class, key), atomically
// (temp file + fsync + rename). Errors are returned for the caller's
// counters but are safe to ignore: a failed write only costs a future
// re-solve.
func (s *Store) Put(class, key string, payload []byte) error {
	if err := checkClass(class); err != nil {
		s.writeErrors.Add(1)
		return err
	}
	dir, path := s.entryPath(class, key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	tmp := f.Name()
	cleanup := func() {
		if rmErr := os.Remove(tmp); rmErr != nil && !os.IsNotExist(rmErr) {
			s.writeErrors.Add(1)
		}
	}
	env := encodeEnvelope(class, key, payload)
	if _, err := f.Write(env); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		cleanup()
		s.writeErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	if err := f.Sync(); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		cleanup()
		s.writeErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	if err := f.Close(); err != nil {
		cleanup()
		s.writeErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		cleanup()
		s.writeErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// quarantine moves a failed entry out of the addressable tree so it
// is inspected once, not re-read on every boot. If even the move
// fails the file is deleted; quarantine itself never fails the read
// path.
func (s *Store) quarantine(path string) {
	s.corrupt.Add(1)
	dst := filepath.Join(s.root, quarantineDir, filepath.Base(path)+".corrupt")
	if err := os.Rename(path, dst); err != nil {
		if rmErr := os.Remove(path); rmErr != nil && !os.IsNotExist(rmErr) {
			// Unremovable corrupt entry: nothing left to do on this
			// path; subsequent Gets keep treating it as a miss.
			return
		}
	}
}
